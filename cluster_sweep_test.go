package vwchar_test

import (
	"bytes"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// clusterSweepSpec is a reduced grid of cluster-topology runs: two
// mixes over a replicated, multi-machine, autoscaled deployment.
func clusterSweepSpec(workers int) vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.SweepGrid(
			[]vwchar.Env{vwchar.Virtualized},
			[]vwchar.MixKind{vwchar.MixBrowsing, vwchar.MixBidding},
			func(c *vwchar.Config) {
				c.Clients = 60
				c.Duration = 30 * sim.Second
				c.Dataset.Users = 2000
				c.Dataset.ActiveItems = 600
				c.Dataset.OldItems = 1300
				c.Dataset.BufferPages = 500
				c.Topology = &vwchar.Topology{
					WebReplicas:    2,
					MaxWebReplicas: 3,
					DBReadReplicas: 1,
					Machines:       2,
					LB:             vwchar.LBJoinShortestQueue,
					Autoscaler: &vwchar.AutoscalerSpec{
						SLOMillis:       200,
						BootSeconds:     4,
						CooldownSeconds: 8,
					},
				}
			}),
		Replications: 2,
		RootSeed:     42,
		Workers:      workers,
	}
}

// TestClusterSweepByteIdenticalAcrossWorkers extends the determinism
// contract to cluster topologies: replicated tiers, cross-machine
// paths, DB read replicas, and the in-loop autoscaler must produce
// byte-identical aggregated output at workers=1 and workers=8 for a
// fixed seed, exactly like the paper's degenerate grid.
func TestClusterSweepByteIdenticalAcrossWorkers(t *testing.T) {
	table := func(workers int) ([]byte, *vwchar.SweepResult) {
		sr, err := vwchar.Sweep(clusterSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sr
	}
	seq, sr := table(1)
	par, _ := table(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("cluster sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	// The cluster actually exercised its replicas (the sweep is not
	// vacuous): every point served traffic on both web replicas.
	for i := range sr.Points {
		pr := &sr.Points[i]
		for _, rep := range pr.Reps {
			if len(rep.ReplicaServed) != 3 {
				t.Fatalf("%s: replica split %v", pr.Point.Name, rep.ReplicaServed)
			}
			if rep.ReplicaServed[0] == 0 || rep.ReplicaServed[1] == 0 {
				t.Fatalf("%s: a web replica took no traffic: %v", pr.Point.Name, rep.ReplicaServed)
			}
		}
	}
}
