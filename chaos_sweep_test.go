package vwchar_test

import (
	"bytes"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// chaosSweepSpec is the cluster grid with a fault schedule and the
// full resilience stack armed: a web replica crashes and recovers, the
// DB primary dies for good (forcing a promotion), and the guarded
// serving path retries, ejects, fails over, and sheds through it all.
func chaosSweepSpec(workers int) vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.SweepGrid(
			[]vwchar.Env{vwchar.Virtualized},
			[]vwchar.MixKind{vwchar.MixBrowsing, vwchar.MixBidding},
			func(c *vwchar.Config) {
				c.Clients = 60
				c.Duration = 30 * sim.Second
				c.Dataset.Users = 2000
				c.Dataset.ActiveItems = 600
				c.Dataset.OldItems = 1300
				c.Dataset.BufferPages = 500
				c.Topology = &vwchar.Topology{
					WebReplicas:    2,
					MaxWebReplicas: 3,
					DBReadReplicas: 1,
					Machines:       2,
					LB:             vwchar.LBJoinShortestQueue,
				}
				c.Faults = &vwchar.FaultSchedule{
					WebCrash: &vwchar.FaultComponent{AtSeconds: 8, MTTRSeconds: 6, Targets: []int{1}},
					DBCrash:  &vwchar.FaultComponent{AtSeconds: 12, Targets: []int{0}},
				}
				c.Resilience = &vwchar.ResilienceSpec{
					TimeoutMillis:         800,
					Retries:               2,
					BackoffMillis:         50,
					HealthEverySeconds:    1,
					EjectAfterChecks:      2,
					FailoverDetectSeconds: 2,
					Breaker:               &vwchar.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 32, OpenMillis: 500},
				}
			}),
		Replications: 2,
		RootSeed:     42,
		Workers:      workers,
	}
}

// TestChaosSweepByteIdenticalAcrossWorkers extends the determinism
// contract to fault injection: a fixed seed must produce a
// byte-identical fault timeline and byte-identical aggregated sweep
// output at workers=1 and workers=8, crashes, failover, retries and
// all.
func TestChaosSweepByteIdenticalAcrossWorkers(t *testing.T) {
	table := func(workers int) ([]byte, *vwchar.SweepResult) {
		sr, err := vwchar.Sweep(chaosSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sr
	}
	seq, sr := table(1)
	par, _ := table(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("chaos sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	var totalRetries, totalLost uint64
	for i := range sr.Points {
		pr := &sr.Points[i]
		for _, rep := range pr.Reps {
			// The fault schedule actually expanded and fired: both
			// components hit their targets.
			if len(rep.FaultTimeline) < 3 {
				t.Fatalf("%s: fault timeline %v, want web down+up and db down", pr.Point.Name, rep.FaultTimeline)
			}
			// Request accounting invariant: every issued request ends in
			// exactly one outcome bucket, with in-flight as the remainder.
			rq := rep.Requests
			if rq == nil {
				t.Fatalf("%s: fault run missing request accounting", pr.Point.Name)
			}
			if sum := rq.Served + rq.TimedOut + rq.Shed + rq.Failed + rq.Degraded + rq.InFlight; sum != rq.Issued {
				t.Fatalf("%s: accounting broken: served %d + timed-out %d + shed %d + failed %d + degraded %d + in-flight %d != issued %d",
					pr.Point.Name, rq.Served, rq.TimedOut, rq.Shed, rq.Failed, rq.Degraded, rq.InFlight, rq.Issued)
			}
			// Non-vacuous per rep: the dead primary forced a promotion,
			// traffic was served, and the guard actually intervened.
			if len(rep.Failovers) != 1 {
				t.Fatalf("%s: got %d failovers, want 1", pr.Point.Name, len(rep.Failovers))
			}
			if rq.Served == 0 {
				t.Fatalf("%s: chaos run served nothing: %+v", pr.Point.Name, rq)
			}
			if rep.Guard == nil {
				t.Fatalf("%s: resilience run missing guard stats", pr.Point.Name)
			}
			totalRetries += rep.Guard.Retries
			totalLost += rq.TimedOut + rq.Shed + rq.Failed
		}
	}
	// Across the grid the faults must have cost something: retries
	// fired, and the write-carrying mix lost requests to the dead
	// primary's detection window.
	if totalRetries == 0 {
		t.Fatal("no retries across the whole chaos grid; the faults were vacuous")
	}
	if totalLost == 0 {
		t.Fatal("no request lost across the whole chaos grid; the faults were vacuous")
	}
}
