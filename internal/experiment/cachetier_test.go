package experiment

import (
	"strings"
	"testing"

	"vwchar/internal/cachetier"
	"vwchar/internal/rubis"
)

func TestCacheQueueConfigValidation(t *testing.T) {
	base := func() Config { return shortConfig(Virtualized, MixBidding) }

	cfg := base()
	cfg.Cache = ptrSpec(cachetier.DefaultCacheSpec())
	cfg.Queue = ptrSpec(cachetier.DefaultQueueSpec())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("cache+queue on virtualized rejected: %v", err)
	}

	cfg = shortConfig(Physical, MixBidding)
	cfg.Cache = ptrSpec(cachetier.DefaultCacheSpec())
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "virtualized") {
		t.Fatalf("cache on physical: err = %v, want virtualized-only rejection", err)
	}
	cfg = shortConfig(Physical, MixBidding)
	cfg.Queue = ptrSpec(cachetier.DefaultQueueSpec())
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "virtualized") {
		t.Fatalf("queue on physical: err = %v, want virtualized-only rejection", err)
	}

	cfg = base()
	cfg.Pairs = 2
	cfg.Cache = ptrSpec(cachetier.DefaultCacheSpec())
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "pairs") {
		t.Fatalf("cache with pairs: err = %v, want consolidation rejection", err)
	}

	cfg = base()
	bad := cachetier.DefaultCacheSpec()
	bad.MaxEntries = -1
	cfg.Cache = &bad
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid cache spec passed Validate")
	}
	cfg = base()
	badQ := cachetier.DefaultQueueSpec()
	badQ.MaxDepth = 4
	badQ.BatchSize = 64
	cfg.Queue = &badQ
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid queue spec passed Validate")
	}
}

func ptrSpec[T any](v T) *T { return &v }

func TestCacheQueueConfigJSONRoundTrip(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBidding)
	cache := cachetier.CacheSpec{MaxEntries: 512, MaxMB: 16, TTLSeconds: 8, Leases: true, LeaseTimeoutMillis: 120}
	queue := cachetier.QueueSpec{MaxDepth: 256, BatchSize: 16, DrainEveryMillis: 100}
	cfg.Cache = &cache
	cfg.Queue = &queue
	data, err := cfg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache == nil || *got.Cache != cache {
		t.Fatalf("cache spec round trip: %+v, want %+v", got.Cache, cache)
	}
	if got.Queue == nil || *got.Queue != queue {
		t.Fatalf("queue spec round trip: %+v, want %+v", got.Queue, queue)
	}

	// Nil specs stay nil (the byte-identity contract hinges on it).
	cfg = shortConfig(Virtualized, MixBidding)
	data, err = cfg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache != nil || got.Queue != nil {
		t.Fatal("nil cache/queue specs must survive the round trip as nil")
	}
}

// TestCacheQueueRunEndToEnd is the tier smoke test: a virtualized
// bidding run with both aux tiers serves traffic through the cache,
// publishes writes through the broker, samples both tiers' resources,
// and attributes latency per interaction kind.
func TestCacheQueueRunEndToEnd(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBidding)
	cache := cachetier.DefaultCacheSpec()
	cache.TTLSeconds = 30
	cache.Leases = true
	cfg.Cache = &cache
	cfg.Queue = ptrSpec(cachetier.DefaultQueueSpec())
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", r.Completed, r.Errors)
	}
	if r.Cache == nil || r.Queue == nil {
		t.Fatal("aux tier stats missing from the result")
	}
	if r.Cache.Gets == 0 || r.Cache.Hits == 0 {
		t.Fatalf("cache idle: %+v", r.Cache)
	}
	if hr := r.Cache.HitRatio(); hr <= 0 || hr > 1 {
		t.Fatalf("hit ratio %v out of range", hr)
	}
	if r.Queue.Published == 0 || r.Queue.Drained == 0 {
		t.Fatalf("broker idle: %+v", r.Queue)
	}
	// Both aux tiers are collected like any other tier: 90 s / 2 s = 45.
	for _, tier := range []string{TierCache, TierQueue} {
		if got := r.CPU(tier).Len(); got != 45 {
			t.Fatalf("%s cpu samples = %d, want 45", tier, got)
		}
		if r.Mem(tier).Mean() <= 0 {
			t.Fatalf("%s memory gauge empty", tier)
		}
		if r.Net(tier).Sum() <= 0 {
			t.Fatalf("%s network idle", tier)
		}
	}
	// Window series materialized and aligned with the collector.
	tel := r.Telemetry
	if tel == nil || tel.HitRatio == nil || tel.Stampedes == nil || tel.QueueDepth == nil || tel.QueueLag == nil {
		t.Fatal("cache/queue window series missing")
	}
	if tel.HitRatio.Len() != 45 || tel.QueueDepth.Len() != 45 {
		t.Fatalf("series windows = %d/%d, want 45", tel.HitRatio.Len(), tel.QueueDepth.Len())
	}
	if tel.HitRatio.Max() <= 0 {
		t.Fatal("hit-ratio series never rose above zero")
	}
	// Per-interaction attribution: every completed request lands in
	// exactly one kind bucket, and cacheable kinds saw cache traffic.
	if len(r.PerInteraction) != rubis.NumInteractions {
		t.Fatalf("per-interaction rows = %d, want %d", len(r.PerInteraction), rubis.NumInteractions)
	}
	var total, looked uint64
	for _, il := range r.PerInteraction {
		total += il.Count
		looked += il.CacheHits + il.CacheMisses
		if il.Count > 0 && il.MeanMs <= 0 {
			t.Fatalf("kind %s has %d observations but zero mean", il.Kind, il.Count)
		}
	}
	if total != r.Completed {
		t.Fatalf("per-interaction counts sum to %d, completed %d", total, r.Completed)
	}
	if looked == 0 {
		t.Fatal("no cache lookups attributed to any interaction kind")
	}
}
