package experiment

import (
	"fmt"

	"vwchar/internal/timeseries"
)

// Panel is one sub-figure: the same metric for browse and bid runs of
// one tier, exactly as the paper overlays the two curves per panel.
type Panel struct {
	// Title matches the paper's sub-figure caption, e.g. "Web+App. (VM)".
	Title string
	// Unit labels the Y axis.
	Unit string
	// Browse and Bid are the two overlaid curves. Single-run panels
	// (the saturation figure) may leave Bid nil.
	Browse, Bid *timeseries.Series
	// Overlays are additional curves drawn over the pair — the
	// saturation figure overlays the active-replica count on the
	// CPU/latency pairing.
	Overlays []*timeseries.Series
}

// Series lists the panel's non-nil curves in draw order.
func (p *Panel) Series() []*timeseries.Series {
	out := make([]*timeseries.Series, 0, 2+len(p.Overlays))
	for _, s := range []*timeseries.Series{p.Browse, p.Bid} {
		if s != nil {
			out = append(out, s)
		}
	}
	for _, s := range p.Overlays {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Figure is one of the paper's Figures 1-8.
type Figure struct {
	ID      int
	Caption string
	// Env tells which runs the figure needs.
	Env    Env
	Panels []Panel
}

// FigureSpec describes a figure before results exist.
type FigureSpec struct {
	ID       int
	Caption  string
	Env      Env
	Resource string // "cpu", "ram", "disk", "net"
}

// FigureSpecs lists all eight figures of the paper's evaluation.
func FigureSpecs() []FigureSpec {
	return []FigureSpec{
		{1, "CPU cycle demands by the web/application and database servers in VMs and the hypervisor (dom0)", Virtualized, "cpu"},
		{2, "RAM demands by the web/application and database servers in VMs and the hypervisor", Virtualized, "ram"},
		{3, "Disk read and write by the web/application and database servers in VMs and the hypervisor", Virtualized, "disk"},
		{4, "Network data received and transmitted by the web/application and database servers in VMs and the hypervisor", Virtualized, "net"},
		{5, "CPU cycle demands by the web/application and database servers (physical machines)", Physical, "cpu"},
		{6, "RAM demands by the web/application and database servers (physical machines)", Physical, "ram"},
		{7, "Disk read and write by the web/application and database servers (physical machines)", Physical, "disk"},
		{8, "Network data received and transmitted by the web/application and database servers (physical machines)", Physical, "net"},
	}
}

func seriesFor(r *Result, tier, resource string) *timeseries.Series {
	switch resource {
	case "cpu":
		return r.CPU(tier)
	case "ram":
		return r.Mem(tier)
	case "disk":
		return r.Disk(tier)
	case "net":
		return r.Net(tier)
	default:
		panic(fmt.Sprintf("experiment: unknown resource %q", resource))
	}
}

func unitFor(resource, env string) string {
	prefix := "virtualized"
	if env == string(Physical) {
		prefix = "physical"
	}
	switch resource {
	case "cpu":
		return prefix + " CPU cycles / 2s"
	case "ram":
		return prefix + " used memory (MB)"
	case "disk":
		return prefix + " data read & written (KB / 2s)"
	case "net":
		return prefix + " data received & transmitted (KB / 2s)"
	}
	return ""
}

// normalizedTo clones s under name with values scaled so the peak is
// 1.0, letting series of different units share one axis.
func normalizedTo(s *timeseries.Series, name string) *timeseries.Series {
	c := s.Clone(name)
	c.Unit = "fraction of peak"
	if m := c.Max(); m > 0 {
		for i := range c.Values {
			c.Values[i] /= m
		}
	}
	return c
}

// BuildSaturationFigure assembles the Figure 9-style saturation panel
// from one run: the web tier's CPU demand paired with the per-window
// latency p95 on a shared peak-normalized axis, with the active
// web-replica count overlaid when the run had a cluster topology. The
// paper's Figures 1-8 show resources and the workload separately; this
// panel shows the causal pairing — CPU saturating, latency detaching
// from it, and (with an autoscaler) capacity arriving.
func BuildSaturationFigure(r *Result) (Figure, error) {
	if r.Telemetry == nil || r.Telemetry.LatencyP95 == nil {
		return Figure{}, fmt.Errorf("experiment: saturation figure needs windowed telemetry")
	}
	cpu := r.CPU(TierWeb)
	if cpu == nil {
		return Figure{}, fmt.Errorf("experiment: saturation figure needs a %q collector target", TierWeb)
	}
	panel := Panel{
		Title:  "Web CPU vs latency p95 (peak-normalized)",
		Unit:   "fraction of peak",
		Browse: normalizedTo(cpu, "web_cpu"),
		Bid:    normalizedTo(r.Telemetry.LatencyP95, "latency_p95"),
	}
	fig := Figure{
		ID:      9,
		Caption: "Web-tier CPU demand against per-window latency p95, with the active replica count where the run autoscaled",
		Env:     r.Config.Environment,
	}
	if rep := r.Telemetry.Replicas; rep != nil && rep.Len() > 0 {
		panel.Overlays = append(panel.Overlays, normalizedTo(rep, "replicas"))
		fig.Panels = append(fig.Panels, Panel{
			Title:  "Active web replicas",
			Unit:   "replicas",
			Browse: rep.Clone("replicas"),
		})
	}
	fig.Panels = append([]Panel{panel}, fig.Panels...)
	return fig, nil
}

// BuildFigure assembles figure id from a (browse, bid) run pair of the
// right environment. The run environments must match the figure's.
func BuildFigure(id int, browse, bid *Result) (Figure, error) {
	var spec *FigureSpec
	for _, s := range FigureSpecs() {
		if s.ID == id {
			s := s
			spec = &s
			break
		}
	}
	if spec == nil {
		return Figure{}, fmt.Errorf("experiment: no figure %d", id)
	}
	for _, r := range []*Result{browse, bid} {
		if r.Config.Environment != spec.Env {
			return Figure{}, fmt.Errorf("experiment: figure %d needs %s runs, got %s",
				id, spec.Env, r.Config.Environment)
		}
	}
	fig := Figure{ID: id, Caption: spec.Caption, Env: spec.Env}
	type tierPanel struct{ tier, title string }
	panels := []tierPanel{
		{TierWeb, "Web+App."},
		{TierDB, "Mysql"},
	}
	suffix := " (VM)"
	if spec.Env == Physical {
		suffix = " (PM)"
	}
	for i := range panels {
		panels[i].title += suffix
	}
	if spec.Env == Virtualized {
		panels = append(panels, tierPanel{TierDom0, "Domain0"})
	}
	for _, p := range panels {
		b := seriesFor(browse, p.tier, spec.Resource).Clone("browse")
		d := seriesFor(bid, p.tier, spec.Resource).Clone("bid")
		fig.Panels = append(fig.Panels, Panel{
			Title:  p.title,
			Unit:   unitFor(spec.Resource, string(spec.Env)),
			Browse: b,
			Bid:    d,
		})
	}
	return fig, nil
}
