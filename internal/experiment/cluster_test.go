package experiment

import (
	"reflect"
	"testing"

	"vwchar/internal/load"
	"vwchar/internal/sim"
	"vwchar/internal/tiers"
)

// TestDegenerateTopologyMatchesNil pins the tentpole's compatibility
// contract at the single-run level: an explicit degenerate topology —
// 1 web, 1 DB, 1 machine, round-robin, no autoscaler — takes the
// cluster construction path yet reproduces the nil-topology run
// exactly, scalar for scalar and sample for sample. The golden sweep
// hash pins the same property across the whole grid.
func TestDegenerateTopologyMatchesNil(t *testing.T) {
	base := shortConfig(Virtualized, MixBrowsing)
	base.Clients = 80
	base.Duration = 40 * sim.Second

	run := func(topo *tiers.Topology) *Result {
		cfg := base
		cfg.Topology = topo
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run(nil)
	for _, topo := range []*tiers.Topology{
		{},
		{WebReplicas: 1, MaxWebReplicas: 1, Machines: 1, LB: tiers.LBJoinShortestQueue},
	} {
		deg := run(topo)
		if plain.Completed != deg.Completed || plain.Errors != deg.Errors {
			t.Fatalf("topology %+v: completed/errors %d/%d != %d/%d",
				topo, deg.Completed, deg.Errors, plain.Completed, plain.Errors)
		}
		if plain.MeanRespTime != deg.MeanRespTime || plain.P95RespTime != deg.P95RespTime {
			t.Fatalf("topology %+v: response times diverged: %v/%v != %v/%v",
				topo, deg.MeanRespTime, deg.P95RespTime, plain.MeanRespTime, plain.P95RespTime)
		}
		if !reflect.DeepEqual(plain.Tiers, deg.Tiers) {
			t.Fatalf("topology %+v: tiers %v != %v", topo, deg.Tiers, plain.Tiers)
		}
		// Series comparison uses a 1-ulp-scale relative tolerance: the
		// memory gauges sum map-ordered components, which wobbles the
		// last bit between runs even for identical configs (below the
		// golden hash's formatted precision).
		for _, tier := range []string{TierWeb, TierDB, TierDom0} {
			for name, pick := range map[string]func(*Result) []float64{
				"cpu":  func(r *Result) []float64 { return r.CPU(tier).Values },
				"mem":  func(r *Result) []float64 { return r.Mem(tier).Values },
				"disk": func(r *Result) []float64 { return r.Disk(tier).Values },
				"net":  func(r *Result) []float64 { return r.Net(tier).Values },
			} {
				if !seriesAlmostEqual(pick(plain), pick(deg)) {
					t.Fatalf("topology %+v: %s %s series diverged", topo, tier, name)
				}
			}
		}
		if !seriesAlmostEqual(plain.Telemetry.LatencyP95.Values, deg.Telemetry.LatencyP95.Values) {
			t.Fatalf("topology %+v: latency p95 series diverged", topo)
		}
		if deg.Telemetry.Replicas != nil {
			t.Fatalf("topology %+v: degenerate run materialized a replica series", topo)
		}
		if deg.Scaling != nil || deg.ReplicaServed != nil {
			t.Fatalf("topology %+v: degenerate run reported cluster accounting", topo)
		}
	}
}

// TestClusterTopologyEndToEnd runs a real cluster — replicated web
// tier, a DB read replica, two machines — and checks the per-replica
// accounting and collector targets come out.
func TestClusterTopologyEndToEnd(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Clients = 150
	cfg.Duration = 40 * sim.Second
	cfg.Topology = &tiers.Topology{
		WebReplicas:    2,
		DBReadReplicas: 1,
		LB:             tiers.LBLeastInFlight,
		Machines:       2,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", r.Completed, r.Errors)
	}
	// Per-VM targets, per-machine dom0s, and the classic aggregates.
	want := []string{"webapp-0", "webapp-1", "mysql-primary", "mysql-ro-0",
		"dom0-0", "dom0-1", "dom0", "webapp", "mysql"}
	if !reflect.DeepEqual(r.Tiers, want) {
		t.Fatalf("tiers = %v, want %v", r.Tiers, want)
	}
	// The aggregates sum their members' demand.
	for _, tier := range want {
		if r.CPU(tier) == nil {
			t.Fatalf("no CPU series for %q", tier)
		}
	}
	aggCPU := r.CPU(TierWeb).Sum()
	partsCPU := r.CPU("webapp-0").Sum() + r.CPU("webapp-1").Sum()
	if aggCPU <= 0 || absDiff(aggCPU, partsCPU) > 1e-6*partsCPU {
		t.Fatalf("webapp aggregate CPU %v != sum of replicas %v", aggCPU, partsCPU)
	}
	// Both replicas took traffic, and the split sums to the total.
	if len(r.ReplicaServed) != 2 {
		t.Fatalf("replica served = %v", r.ReplicaServed)
	}
	var sum uint64
	for i, n := range r.ReplicaServed {
		if n == 0 {
			t.Fatalf("replica %d took no traffic", i)
		}
		sum += n
	}
	if sum != r.Completed {
		t.Fatalf("replica dispatches %d != completed %d", sum, r.Completed)
	}
	if r.Scaling == nil || r.Scaling.PeakReplicas != 2 || r.Scaling.ScaleUps != 0 {
		t.Fatalf("scaling stats = %+v", r.Scaling)
	}
	if r.Telemetry.Replicas == nil || r.Telemetry.Replicas.Max() != 2 {
		t.Fatal("replica gauge series missing or wrong")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// seriesAlmostEqual compares two sample series within a relative
// tolerance a few ulps wide.
func seriesAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if d := absDiff(a[i], b[i]); d > 1e-12*(absDiff(a[i], 0)+absDiff(b[i], 0)) {
			return false
		}
	}
	return true
}

// TestAutoscalerScalesUpUnderFlashCrowd closes the loop end to end: an
// open-loop spike against a 1-active/3-max cluster must trigger
// scale-ups mid-run, respect the cooldown between operations, and
// leave the scale-event log and replica gauge consistent.
func TestAutoscalerScalesUpUnderFlashCrowd(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Duration = 120 * sim.Second
	cfg.Load = &load.Spec{
		Kind: load.Spike, Rate: 15, SpikeFactor: 8,
		SpikeAt: 30, SpikeRamp: 10, SpikeHold: 60,
		SessionMean: 10, AbandonAfterSeconds: 5,
	}
	const cooldown = 12.0
	cfg.Topology = &tiers.Topology{
		WebReplicas:    1,
		MaxWebReplicas: 3,
		LB:             tiers.LBJoinShortestQueue,
		Autoscaler: &tiers.AutoscalerSpec{
			SLOMillis:       200,
			BootSeconds:     6,
			CooldownSeconds: cooldown,
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := r.Scaling
	if sc == nil || sc.ScaleUps == 0 {
		t.Fatalf("the spike never triggered a scale-up: %+v", sc)
	}
	if sc.FirstUpAt.Sec() <= 30 {
		t.Fatalf("first scale-up active at t=%.1fs, before the spike began", sc.FirstUpAt.Sec())
	}
	if sc.PeakReplicas < 2 || sc.PeakReplicas > 3 {
		t.Fatalf("peak replicas = %d", sc.PeakReplicas)
	}
	if r.Telemetry.Replicas == nil || int(r.Telemetry.Replicas.Max()) != sc.PeakReplicas {
		t.Fatalf("replica gauge peak disagrees with scaling stats")
	}
	// Scale operations (boot decisions and drains) respect the cooldown.
	var lastOp sim.Time
	seenOp := false
	for _, e := range r.ScaleEvents {
		if e.Kind != "boot" && e.Kind != "down" {
			continue
		}
		if seenOp {
			if gap := (e.At - lastOp).Sec(); gap < cooldown {
				t.Fatalf("scale ops %0.1fs apart, cooldown is %.0fs: %+v", gap, cooldown, r.ScaleEvents)
			}
		}
		lastOp, seenOp = e.At, true
	}
	// Each boot has a matching activation after the boot delay.
	boots, ups := 0, 0
	for _, e := range r.ScaleEvents {
		switch e.Kind {
		case "boot":
			boots++
		case "up":
			ups++
		}
	}
	// A boot decided near run end may not activate before the run
	// finishes, so boots can exceed ups by the still-in-flight ones.
	if ups != sc.ScaleUps || boots < ups {
		t.Fatalf("event log has %d boots / %d ups, scaling stats say %d", boots, ups, sc.ScaleUps)
	}
	// The run histograms split total demand: every abandoned response is
	// also a served response, so the abandoned count can never exceed it.
	if r.ServedHist == nil || r.AbandonedHist == nil {
		t.Fatal("run histograms missing")
	}
	if r.AbandonedHist.Count() > r.ServedHist.Count() {
		t.Fatalf("abandoned %d > served %d", r.AbandonedHist.Count(), r.ServedHist.Count())
	}
}

// TestClusterRunDeterminism: same seed, same cluster topology, same
// trace — including the scale-event log.
func TestClusterRunDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := shortConfig(Virtualized, MixBrowsing)
		cfg.Clients = 100
		cfg.Duration = 40 * sim.Second
		cfg.Topology = &tiers.Topology{
			WebReplicas:    2,
			MaxWebReplicas: 3,
			DBReadReplicas: 1,
			Machines:       2,
			LB:             tiers.LBLeastInFlight,
			Autoscaler:     &tiers.AutoscalerSpec{SLOMillis: 200, BootSeconds: 4, CooldownSeconds: 8},
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Completed != b.Completed {
		t.Fatalf("completed %d vs %d", a.Completed, b.Completed)
	}
	if !reflect.DeepEqual(a.ScaleEvents, b.ScaleEvents) {
		t.Fatalf("scale events diverged:\n  %+v\n  %+v", a.ScaleEvents, b.ScaleEvents)
	}
	if !reflect.DeepEqual(a.ReplicaServed, b.ReplicaServed) {
		t.Fatalf("replica split diverged: %v vs %v", a.ReplicaServed, b.ReplicaServed)
	}
	if !reflect.DeepEqual(a.Telemetry.LatencyP95.Values, b.Telemetry.LatencyP95.Values) {
		t.Fatal("latency series diverged")
	}
}

// TestTopologyConfigValidation covers the config-level rules: clusters
// are virtualized-only and incompatible with consolidated pairs.
func TestTopologyConfigValidation(t *testing.T) {
	cfg := shortConfig(Physical, MixBrowsing)
	cfg.Topology = &tiers.Topology{WebReplicas: 2}
	if err := cfg.Validate(); err == nil {
		t.Fatal("physical cluster topology should be rejected")
	}
	cfg = shortConfig(Physical, MixBrowsing)
	cfg.Topology = &tiers.Topology{} // degenerate: allowed anywhere
	if err := cfg.Validate(); err != nil {
		t.Fatalf("degenerate topology on physical rejected: %v", err)
	}
	cfg = shortConfig(Virtualized, MixBrowsing)
	cfg.Pairs = 2
	cfg.Topology = &tiers.Topology{WebReplicas: 2}
	if err := cfg.Validate(); err == nil {
		t.Fatal("cluster topology with consolidated pairs should be rejected")
	}
	cfg = shortConfig(Virtualized, MixBrowsing)
	cfg.Topology = &tiers.Topology{WebReplicas: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid topology should fail config validation")
	}
}
