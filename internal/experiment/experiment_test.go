package experiment

import (
	"math"
	"testing"

	"vwchar/internal/load"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// shortConfig runs a scaled-down experiment quickly.
func shortConfig(env Env, mix MixKind) Config {
	cfg := DefaultConfig(env, mix)
	cfg.Clients = 200
	cfg.Duration = 90 * sim.Second
	cfg.Dataset = rubis.DatasetConfig{
		Regions: 20, Categories: 10, Users: 1500,
		ActiveItems: 500, OldItems: 900,
		BidsPerItem: 4, CommentsPerUser: 1, BufferPages: 200,
	}
	return cfg
}

func TestRunValidation(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Clients = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero clients should error")
	}
	cfg = shortConfig(Virtualized, MixBrowsing)
	cfg.Environment = "mainframe"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown environment should error")
	}
}

func TestMixModels(t *testing.T) {
	for _, mix := range []MixKind{MixBrowsing, MixBidding, Mix30Browse, Mix50Browse, Mix70Browse} {
		m := mix.Model()
		if m.MixName() == "" {
			t.Fatalf("%s has empty model name", mix)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mix should panic")
		}
	}()
	MixKind("zzz").Model()
}

func TestVirtualizedRunEndToEnd(t *testing.T) {
	r, err := Run(shortConfig(Virtualized, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", r.Completed, r.Errors)
	}
	// 90 s at 2 s sampling = 45 samples.
	for _, tier := range []string{TierWeb, TierDB, TierDom0} {
		if got := r.CPU(tier).Len(); got != 45 {
			t.Fatalf("%s cpu samples = %d", tier, got)
		}
		if r.CPU(tier).Sum() <= 0 {
			t.Fatalf("%s cpu demand is zero", tier)
		}
		if r.Mem(tier).Mean() <= 0 {
			t.Fatalf("%s memory is zero", tier)
		}
		if r.Net(tier).Sum() <= 0 {
			t.Fatalf("%s network is zero", tier)
		}
	}
	// Virtual cycle counters dwarf dom0's physical counters (paper).
	vmCPU := r.CPU(TierWeb).Mean() + r.CPU(TierDB).Mean()
	if vmCPU <= r.CPU(TierDom0).Mean() {
		t.Fatal("VM cycle counters should exceed dom0's")
	}
	if r.GuestPhysCycles <= 0 {
		t.Fatal("guest physical attribution missing")
	}
	if r.Attribution.BackendCycles <= 0 || r.Attribution.OwnCycles <= 0 {
		t.Fatalf("dom0 attribution incomplete: %+v", r.Attribution)
	}
	if len(r.PerfFinal) != 154 {
		t.Fatalf("perf counters = %d", len(r.PerfFinal))
	}
	if r.Dom0BuffersMB <= 0 {
		t.Fatal("dom0 buffers gauge missing")
	}
	if len(r.Interactions) < 5 {
		t.Fatalf("only %d interaction kinds", len(r.Interactions))
	}
}

// TestTelemetryAlignsWithCollector pins the tentpole's alignment
// contract: the windowed latency series rotate on the collector's
// ticker, so they have exactly one window per resource sample, the
// same interval, and the same time axis — resource demand and latency
// can be plotted against each other sample for sample.
func TestTelemetryAlignsWithCollector(t *testing.T) {
	r, err := Run(shortConfig(Virtualized, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("no telemetry on closed-loop result")
	}
	cpu := r.CPU(TierWeb)
	for _, s := range tel.Present() {
		if s.Len() != r.Collector.Samples {
			t.Fatalf("%s has %d windows, collector took %d samples", s.Name, s.Len(), r.Collector.Samples)
		}
		if s.Interval != cpu.Interval {
			t.Fatalf("%s interval %v != resource interval %v", s.Name, s.Interval, cpu.Interval)
		}
		for i := 0; i < s.Len(); i++ {
			if s.TimeAt(i) != cpu.TimeAt(i) {
				t.Fatalf("%s window %d at t=%v, resource sample at t=%v", s.Name, i, s.TimeAt(i), cpu.TimeAt(i))
			}
		}
	}
	// The closed loop serves real traffic, so the windowed pipeline
	// must show it: throughput in most windows, a positive p95 wherever
	// there is throughput, and run totals consistent with the windows.
	var completions float64
	busy := 0
	for i := 0; i < tel.Throughput.Len(); i++ {
		tput := tel.Throughput.At(i)
		completions += tput * tel.Throughput.Interval
		if tput > 0 {
			busy++
			if tel.LatencyP95.At(i) <= 0 {
				t.Fatalf("window %d has throughput %v but p95 %v", i, tput, tel.LatencyP95.At(i))
			}
			if tel.LatencyP95.At(i) < tel.LatencyP50.At(i) {
				t.Fatalf("window %d p95 %v < p50 %v", i, tel.LatencyP95.At(i), tel.LatencyP50.At(i))
			}
		}
	}
	if busy < tel.Throughput.Len()/2 {
		t.Fatalf("only %d of %d windows saw traffic", busy, tel.Throughput.Len())
	}
	// Window completions undercount the run total only by what was
	// still in flight or landed after the last rotation.
	if completions > float64(r.Completed) || completions < float64(r.Completed)*0.9 {
		t.Fatalf("windowed completions %v vs run total %d", completions, r.Completed)
	}
	// Closed loop: fixed population, no session churn.
	if tel.Starts.Sum() != 0 || tel.Ends.Sum() != 0 {
		t.Fatalf("closed-loop run reported session churn: %v starts", tel.Starts.Sum())
	}
}

func TestPhysicalRunEndToEnd(t *testing.T) {
	r, err := Run(shortConfig(Physical, MixBidding))
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
	for _, tier := range []string{TierWeb, TierDB} {
		if r.CPU(tier).Sum() <= 0 {
			t.Fatalf("%s cpu zero", tier)
		}
	}
	if r.Collector.CPU(TierDom0) != nil {
		t.Fatal("physical run should have no dom0 target")
	}
	if r.WebPMCycles <= 0 || r.DBPMCycles <= 0 {
		t.Fatal("PM cumulative cycles missing")
	}
	if r.WriteFraction <= 0 {
		t.Fatal("bidding run should report writes")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(shortConfig(Virtualized, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig(Virtualized, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed {
		t.Fatalf("request counts differ: %d vs %d", a.Completed, b.Completed)
	}
	sa, sb := a.CPU(TierWeb), b.CPU(TierWeb)
	for i := 0; i < sa.Len(); i++ {
		if sa.At(i) != sb.At(i) {
			t.Fatalf("cpu series diverges at sample %d: %v vs %v", i, sa.At(i), sb.At(i))
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 777
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < a.CPU(TierWeb).Len(); i++ {
		if a.CPU(TierWeb).At(i) == b.CPU(TierWeb).At(i) {
			same++
		}
	}
	if same == a.CPU(TierWeb).Len() {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFullCatalogRecording(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.KeepFullCatalog = true
	cfg.Clients = 80
	cfg.Duration = 45 * sim.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Collector.Metric(TierDom0, "%user [all]")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 || s.Max() <= 0 {
		t.Fatal("dom0 %user should be recorded and positive")
	}
	s, err = r.Collector.Metric(TierWeb, "cswch/s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Max() <= 0 {
		t.Fatal("web cswch/s should be positive under load")
	}
}

func TestFigureSpecsAndBuild(t *testing.T) {
	specs := FigureSpecs()
	if len(specs) != 8 {
		t.Fatalf("figure specs = %d", len(specs))
	}
	browse, err := Run(shortConfig(Virtualized, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	bid, err := Run(shortConfig(Virtualized, MixBidding))
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		fig, err := BuildFigure(id, browse, bid)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Panels) != 3 {
			t.Fatalf("figure %d panels = %d, want 3 (web, db, dom0)", id, len(fig.Panels))
		}
		for _, p := range fig.Panels {
			if p.Browse.Len() == 0 || p.Bid.Len() == 0 {
				t.Fatalf("figure %d panel %q has empty series", id, p.Title)
			}
			if p.Browse.Name != "browse" || p.Bid.Name != "bid" {
				t.Fatalf("panel series mislabeled: %q/%q", p.Browse.Name, p.Bid.Name)
			}
		}
	}
	// Environment mismatch is rejected.
	if _, err := BuildFigure(5, browse, bid); err == nil {
		t.Fatal("figure 5 needs physical runs")
	}
	if _, err := BuildFigure(99, browse, bid); err == nil {
		t.Fatal("unknown figure id should error")
	}
}

func TestPhysicalFigures(t *testing.T) {
	browse, err := Run(shortConfig(Physical, MixBrowsing))
	if err != nil {
		t.Fatal(err)
	}
	bid, err := Run(shortConfig(Physical, MixBidding))
	if err != nil {
		t.Fatal(err)
	}
	for id := 5; id <= 8; id++ {
		fig, err := BuildFigure(id, browse, bid)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Panels) != 2 {
			t.Fatalf("figure %d panels = %d, want 2 (no dom0)", id, len(fig.Panels))
		}
	}
}

func TestConsolidationValidation(t *testing.T) {
	cfg := shortConfig(Physical, MixBrowsing)
	cfg.Pairs = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("physical consolidation should error")
	}
	cfg = shortConfig(Virtualized, MixBrowsing)
	cfg.Pairs = 6
	if _, err := Run(cfg); err == nil {
		t.Fatal("six pairs exceed the ten-VM limit and should error")
	}
}

func TestConsolidationRunsMultiplePairs(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Clients = 100
	cfg.Duration = 60 * sim.Second
	cfg.Pairs = 3
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PairStats) != 3 {
		t.Fatalf("pair stats = %d", len(r.PairStats))
	}
	var total uint64
	for i, ps := range r.PairStats {
		if ps.Completed == 0 {
			t.Fatalf("pair %d served nothing", i)
		}
		total += ps.Completed
	}
	if total != r.Completed {
		t.Fatalf("pair sum %d != total %d", total, r.Completed)
	}
	// Consolidation multiplies dom0's backend work versus one pair.
	single := shortConfig(Virtualized, MixBrowsing)
	single.Clients = 100
	single.Duration = 60 * sim.Second
	one, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU(TierDom0).Mean() <= one.CPU(TierDom0).Mean() {
		t.Fatalf("dom0 demand should grow with consolidation: %v vs %v",
			r.CPU(TierDom0).Mean(), one.CPU(TierDom0).Mean())
	}
}

// openSpec is a small open-loop workload for experiment-level tests.
func openSpec() *load.Spec {
	return &load.Spec{
		Kind:        load.Poisson,
		Rate:        1.5,
		SessionMean: 6,
		RampSeconds: 10,
	}
}

// TestOpenLoopRunEndToEnd runs both deployments under the open-loop
// generator and checks the session accounting reaches the Result.
func TestOpenLoopRunEndToEnd(t *testing.T) {
	for _, env := range Envs() {
		cfg := shortConfig(env, MixBrowsing)
		cfg.Duration = 60 * sim.Second
		cfg.Load = openSpec()
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", env, err)
		}
		if r.Sessions == nil {
			t.Fatalf("%s: open-loop run reported no session stats", env)
		}
		if r.Sessions.Started == 0 || r.Completed == 0 {
			t.Fatalf("%s: open-loop run served nothing: %+v", env, r.Sessions)
		}
		if r.Sessions.Started > r.Sessions.Offered {
			t.Fatalf("%s: started %d > offered %d", env, r.Sessions.Started, r.Sessions.Offered)
		}
		if r.CPU(TierWeb).Mean() <= 0 {
			t.Fatalf("%s: no web CPU demand", env)
		}
		// The open loop's session churn reaches the windowed series:
		// per-window starts sum to (at most) the run's admitted
		// sessions, short only of what arrived after the last rotation.
		tel := r.Telemetry
		if tel == nil || tel.Windows() != r.Collector.Samples {
			t.Fatalf("%s: telemetry missing or misaligned", env)
		}
		starts := tel.Starts.Sum()
		if starts == 0 || starts > float64(r.Sessions.Started) {
			t.Fatalf("%s: windowed starts %v vs run total %d", env, starts, r.Sessions.Started)
		}
	}
}

// TestOpenLoopValidation pins config validation: a bad load spec fails
// fast, and open-loop configs do not require a client population.
func TestOpenLoopValidation(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Load = &load.Spec{Kind: "nope"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad load kind should error")
	}
	cfg = shortConfig(Virtualized, MixBrowsing)
	cfg.Duration = 30 * sim.Second
	cfg.Clients = 0 // ignored under open loop
	cfg.Load = openSpec()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("open-loop config with zero clients rejected: %v", err)
	}
}

// TestOpenLoopConsolidatedPairs runs the open-loop generator across
// co-located instances: each pair gets its own arrival process and the
// session stats sum.
func TestOpenLoopConsolidatedPairs(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Duration = 40 * sim.Second
	cfg.Pairs = 2
	cfg.Load = openSpec()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PairStats) != 2 {
		t.Fatalf("pair stats = %d", len(r.PairStats))
	}
	for i, ps := range r.PairStats {
		if ps.Completed == 0 {
			t.Fatalf("pair %d served nothing", i)
		}
	}
	if r.Sessions == nil || r.Sessions.Started == 0 {
		t.Fatal("no aggregated session stats")
	}
}

// TestOpenLoopRunDeterminism pins replay equality through Run.
func TestOpenLoopRunDeterminism(t *testing.T) {
	cfg := shortConfig(Virtualized, MixBrowsing)
	cfg.Duration = 40 * sim.Second
	cfg.Load = &load.Spec{Kind: load.Bursty, Rate: 1, BurstFactor: 6,
		BaseDwell: 20, BurstDwell: 8, SessionMean: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || *a.Sessions != *b.Sessions ||
		a.CPU(TierWeb).Mean() != b.CPU(TierWeb).Mean() {
		t.Fatalf("open-loop replay diverged: %d/%+v vs %d/%+v",
			a.Completed, a.Sessions, b.Completed, b.Sessions)
	}
}

// TestOpenLoopPoissonMatchesClosedLoopDemand is the equivalence check
// the ISSUE asks for: an open-loop Poisson workload offered at the
// closed loop's measured throughput must reproduce the closed loop's
// demand shape within tolerance — same request rate, same web-tier CPU
// per unit time. The closed loop is run first to measure its offered
// load; the open loop is then matched to it.
func TestOpenLoopPoissonMatchesClosedLoopDemand(t *testing.T) {
	closedCfg := shortConfig(Virtualized, MixBrowsing)
	closedCfg.Clients = 40
	closedCfg.Duration = 900 * sim.Second
	closed, err := Run(closedCfg)
	if err != nil {
		t.Fatal(err)
	}
	closedRate := float64(closed.Completed) / closedCfg.Duration.Sec()

	const sessionMean = 10
	openCfg := closedCfg
	openCfg.Load = &load.Spec{
		Kind:        load.Poisson,
		Rate:        closedRate / sessionMean, // sessions/s * interactions/session = req/s
		SessionMean: sessionMean,
	}
	open, err := Run(openCfg)
	if err != nil {
		t.Fatal(err)
	}
	openRate := float64(open.Completed) / openCfg.Duration.Sec()

	// The open loop starts empty and owes the steady state one
	// length-biased session residual (~70 s here), so it undershoots by
	// roughly E[D]/T ~ 8%; 15% bounds that transient plus Poisson
	// spread.
	if rel := math.Abs(openRate-closedRate) / closedRate; rel > 0.15 {
		t.Fatalf("matched open-loop throughput %v req/s vs closed %v req/s (%.0f%% off)",
			openRate, closedRate, rel*100)
	}
	cw, ow := closed.CPU(TierWeb).Mean(), open.CPU(TierWeb).Mean()
	if rel := math.Abs(ow-cw) / cw; rel > 0.25 {
		t.Fatalf("web CPU demand: open %v vs closed %v (%.0f%% off)", ow, cw, rel*100)
	}
	cd, od := closed.CPU(TierDB).Mean(), open.CPU(TierDB).Mean()
	if rel := math.Abs(od-cd) / cd; rel > 0.30 {
		t.Fatalf("db CPU demand: open %v vs closed %v (%.0f%% off)", od, cd, rel*100)
	}
}
