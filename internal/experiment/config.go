package experiment

import (
	"encoding/json"
	"fmt"
)

// Envs lists the supported deployments in presentation order.
func Envs() []Env { return []Env{Virtualized, Physical} }

// Mixes lists the five request compositions in browse-share order.
func Mixes() []MixKind {
	return []MixKind{MixBrowsing, Mix70Browse, Mix50Browse, Mix30Browse, MixBidding}
}

// ParseEnv converts a user-supplied string into an Env.
func ParseEnv(s string) (Env, error) {
	for _, e := range Envs() {
		if string(e) == s {
			return e, nil
		}
	}
	return "", fmt.Errorf("experiment: unknown environment %q (want virtualized or physical)", s)
}

// ParseMix converts a user-supplied string into a MixKind.
func ParseMix(s string) (MixKind, error) {
	for _, m := range Mixes() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("experiment: unknown mix %q (want browsing, bidding, 30/70, 50/50 or 70/30)", s)
}

// Validate reports whether the configuration describes a runnable
// experiment. Run calls it before constructing any simulation state, so
// a sweep over serialized configs fails fast on the bad point instead of
// panicking mid-grid.
func (c Config) Validate() error {
	if _, err := ParseEnv(string(c.Environment)); err != nil {
		return err
	}
	if _, err := ParseMix(string(c.Mix)); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiment: need positive duration")
	}
	if c.Load != nil {
		// Open-loop runs take their population from the arrival process,
		// so Clients is ignored rather than validated.
		if err := c.Load.Validate(); err != nil {
			return err
		}
	} else if c.Clients <= 0 {
		return fmt.Errorf("experiment: closed-loop runs need positive clients")
	}
	if c.Pairs > 5 {
		return fmt.Errorf("experiment: %d pairs exceed the testbed's ten-VM limit", c.Pairs)
	}
	if c.Pairs > 1 && c.Environment != Virtualized {
		return fmt.Errorf("experiment: consolidation requires the virtualized deployment")
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		norm := c.Topology.Normalized()
		if c.Environment != Virtualized && !norm.IsDegenerate() {
			return fmt.Errorf("experiment: cluster topologies require the virtualized deployment")
		}
		if c.Pairs > 1 && !norm.IsDegenerate() {
			return fmt.Errorf("experiment: cluster topologies are incompatible with consolidation pairs")
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if !c.Faults.Empty() {
			if c.Environment != Virtualized {
				return fmt.Errorf("experiment: fault injection requires the virtualized deployment")
			}
			if c.Pairs > 1 {
				return fmt.Errorf("experiment: fault injection is incompatible with consolidation pairs")
			}
		}
	}
	if c.Cache != nil {
		if err := c.Cache.Validate(); err != nil {
			return err
		}
		if c.Environment != Virtualized {
			return fmt.Errorf("experiment: the cache tier requires the virtualized deployment")
		}
		if c.Pairs > 1 {
			return fmt.Errorf("experiment: the cache tier is incompatible with consolidation pairs")
		}
	}
	if c.Queue != nil {
		if err := c.Queue.Validate(); err != nil {
			return err
		}
		if c.Environment != Virtualized {
			return fmt.Errorf("experiment: the queue tier requires the virtualized deployment")
		}
		if c.Pairs > 1 {
			return fmt.Errorf("experiment: the queue tier is incompatible with consolidation pairs")
		}
	}
	if err := c.Resilience.Validate(); err != nil {
		return err
	}
	return nil
}

// MarshalJSON renders the config as a self-contained JSON value, so a
// sweep point can be stored, diffed, and replayed.
func (c Config) MarshalJSON() ([]byte, error) {
	type plain Config // avoid recursing into MarshalJSON
	return json.Marshal(plain(c))
}

// ParseConfig decodes a JSON value produced by MarshalJSON and validates
// it.
func ParseConfig(data []byte) (Config, error) {
	type plain Config
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return Config{}, fmt.Errorf("experiment: parsing config: %w", err)
	}
	cfg := Config(p)
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
