// Package experiment assembles and runs the paper's experiments: the
// RUBiS three-tier system under a chosen client mix, deployed either in
// VMs on one Xen host (Section 4.1) or on two physical servers (Section
// 4.2), profiled by the sysstat collector for 600 two-second samples.
package experiment

import (
	"fmt"

	"vwchar/internal/cachetier"
	"vwchar/internal/faults"
	"vwchar/internal/hw"
	"vwchar/internal/load"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/sysstat"
	"vwchar/internal/telemetry"
	"vwchar/internal/tiers"
	"vwchar/internal/timeseries"
	"vwchar/internal/xen"
)

// Env selects the deployment.
type Env string

// Deployments.
const (
	// Virtualized runs both tiers in VMs on one Xen host (paper §4.1).
	Virtualized Env = "virtualized"
	// Physical runs each tier on its own bare-metal server (paper §4.2).
	Physical Env = "physical"
)

// MixKind selects the client request composition.
type MixKind string

// The five compositions the paper tested.
const (
	MixBrowsing MixKind = "browsing"
	MixBidding  MixKind = "bidding"
	Mix30Browse MixKind = "30/70"
	Mix50Browse MixKind = "50/50"
	Mix70Browse MixKind = "70/30"
)

// Model returns the behaviour model for the mix.
func (m MixKind) Model() rubis.Model {
	switch m {
	case MixBrowsing:
		return rubis.BrowsingMix()
	case MixBidding:
		return rubis.BiddingMix()
	case Mix30Browse:
		return rubis.NewCompositeMix(0.3)
	case Mix50Browse:
		return rubis.NewCompositeMix(0.5)
	case Mix70Browse:
		return rubis.NewCompositeMix(0.7)
	default:
		panic(fmt.Sprintf("experiment: unknown mix %q", m))
	}
}

// Config parameterizes one run. The zero value is not runnable; use
// DefaultConfig.
type Config struct {
	Environment Env
	Mix         MixKind
	// Clients is the closed-loop population (paper: 1000).
	Clients int
	// Duration is the profiled window (paper: ~20 min -> 600 samples).
	Duration sim.Time
	Seed     uint64
	Dataset  rubis.DatasetConfig
	// DatasetSeed, when non-zero, pins the dataset-population seed
	// instead of deriving it from Seed. Runs sharing a DatasetSeed (and
	// Dataset scale) populate one immutable golden snapshot and attach
	// copy-on-write views, so replications skip population entirely; see
	// runner.SweepSpec.SharedDatasets. Zero keeps the historical
	// per-run derivation (each run populates its own dataset stream) —
	// still served through the snapshot cache, just with per-run keys.
	DatasetSeed uint64 `json:",omitempty"`
	// KeepFullCatalog records all 182 metrics per target, not just the
	// headline figure series.
	KeepFullCatalog bool
	// XenParams overrides the hypervisor cost model (nil: calibrated
	// defaults). Used by ablation studies, e.g. zeroing the split-driver
	// costs to isolate dom0's I/O backend share.
	XenParams *xen.Params
	// Pairs co-locates this many independent RUBiS instances (web VM +
	// DB VM each) on the single virtualized host, up to the testbed's
	// ten-VM limit. Zero or one means the paper's single-instance setup;
	// values above one drive the consolidation study. Virtualized only.
	Pairs int
	// Load, when non-nil, replaces the paper's closed-loop client
	// population with the open-loop workload generator the spec
	// describes (arrival process + session lifecycle); Clients is then
	// ignored. Nil preserves the paper's fixed-population behaviour
	// byte for byte.
	Load *load.Spec
	// Topology, when non-nil, replaces the paper's fixed web-VM/DB-VM
	// pair with a replicated cluster: N web replicas behind a load
	// balancer, a DB primary with optional read replicas, explicit
	// VM-to-machine placement, and an optional autoscaler. Nil — or a
	// degenerate 1-web/1-DB/1-machine topology — reproduces the paper's
	// single-pair assembly byte for byte. Virtualized only (the physical
	// testbed is two fixed servers); incompatible with Pairs > 1.
	Topology *tiers.Topology
	// Faults, when non-nil, injects the schedule's crash/degraded-mode
	// timeline into the run (expanded deterministically from Seed).
	// Virtualized only; incompatible with Pairs > 1. Nil injects
	// nothing and leaves the serving path byte-identical.
	Faults *faults.Schedule
	// Resilience, when non-nil, wraps dispatch in a guard (timeouts,
	// retries, optional breaker) and starts health checks driving
	// replica ejection and DB primary failover. Nil leaves the serving
	// path untouched — faults without resilience show the unprotected
	// baseline.
	Resilience *faults.ResilienceSpec
	// Cache, when non-nil, deploys a memcache-like cache VM: cacheable
	// reads consult it first and fall through to the DB on a miss.
	// Virtualized only; incompatible with Pairs > 1. Nil leaves the
	// serving path byte-identical.
	Cache *cachetier.CacheSpec
	// Queue, when non-nil, deploys a write-behind queue VM: write
	// interactions publish their query chains to the broker and complete
	// on the ack, with a periodic batched drain replaying them to the DB
	// primary. Virtualized only; incompatible with Pairs > 1. Nil leaves
	// the serving path byte-identical.
	Queue *cachetier.QueueSpec
}

// DefaultConfig returns the paper's experimental setup for env and mix.
func DefaultConfig(env Env, mix MixKind) Config {
	return Config{
		Environment: env,
		Mix:         mix,
		Clients:     1000,
		Duration:    1200 * sim.Second,
		Seed:        42,
		Dataset:     rubis.DefaultDataset(),
	}
}

// Tier names used for collector targets and figure panels.
const (
	TierWeb   = "webapp"
	TierDB    = "mysql"
	TierDom0  = "dom0"
	TierCache = "memcache"
	TierQueue = "wqueue"
)

// PairStat is the per-instance outcome of a consolidated run.
type PairStat struct {
	Completed    uint64
	MeanRespTime float64
	P95RespTime  float64
}

// ScalingStats summarizes the autoscaler's run: how often it acted,
// how far it grew, and how long the first scale-up took from the start
// of the run — the flash-crowd "time to scale" headline.
type ScalingStats struct {
	ScaleUps     int
	ScaleDowns   int
	PeakReplicas int
	// FirstUpAt is the activation instant of the first scale-up (boot
	// delay included); zero when the autoscaler never fired.
	FirstUpAt sim.Time
}

// RequestStats splits issued requests by outcome. The invariant
// Issued = Served + TimedOut + Shed + Failed + Degraded + InFlight
// always holds (InFlight is demand still in the pipe when the run
// ended).
type RequestStats struct {
	Issued   uint64 `json:"issued"`
	Served   uint64 `json:"served"`
	TimedOut uint64 `json:"timed_out"`
	Shed     uint64 `json:"shed"`
	Failed   uint64 `json:"failed"`
	// Degraded counts requests deliberately answered degraded by the
	// overload controller (brownout drops and over-bound fast-fails).
	Degraded uint64 `json:"degraded"`
	InFlight uint64 `json:"in_flight"`
}

// Result is one completed run.
type Result struct {
	Config    Config
	Collector *sysstat.Collector

	// PairStats has one entry per co-located RUBiS instance (length 1
	// for the paper's default setup).
	PairStats []PairStat

	// Driver outcomes.
	Completed     uint64
	Errors        uint64
	WriteFraction float64
	MeanRespTime  float64
	P95RespTime   float64
	WebGrowths    int

	// Virtualized-only accounting.
	Attribution     xen.Dom0Attribution
	GuestPhysCycles float64
	PerfFinal       []xen.PerfCounter
	// Dom0BuffersMB is dom0's final backend-buffer gauge (grant pools
	// and netback/blkback rings), the I/O-attributed share of its RAM.
	Dom0BuffersMB float64

	// Physical-only accounting (cumulative host CPU cycles).
	WebPMCycles, DBPMCycles float64

	// Interactions tallies per type.
	Interactions map[rubis.Interaction]uint64

	// Telemetry is the primary driver's windowed application-metrics
	// series (per-window latency quantiles, throughput, in-flight
	// concurrency, session churn), rotated on the collector's ticker so
	// every series shares the resource series' 2-second time axis. For
	// consolidated runs it covers instance 0, matching the headline
	// response-time scalars.
	Telemetry *telemetry.WindowSeries

	// Sessions is the open-loop session-churn accounting, summed across
	// co-located instances; nil for closed-loop runs.
	Sessions *tiers.SessionStats

	// Tiers lists the collector targets in registration order — the
	// classic {webapp, mysql, dom0} for degenerate runs, per-replica
	// targets plus tier aggregates for cluster topologies.
	Tiers []string

	// ScaleEvents is the web cluster's scale-event log (boot, up, down)
	// in time order; empty without an autoscaler.
	ScaleEvents []tiers.ScaleEvent
	// Scaling summarizes the scale events; nil for runs without a
	// cluster topology.
	Scaling *ScalingStats
	// ReplicaServed counts dispatched requests per web replica slot;
	// nil for degenerate runs.
	ReplicaServed []uint64

	// ServedHist is the primary driver's run-level response-time
	// histogram over every served response; AbandonedHist is the subset
	// whose latency drove its session away. Together they split SLO debt
	// into served-slow and driven-away (characterize.AnalyzeScaling).
	ServedHist, AbandonedHist *telemetry.Hist

	// Requests splits issued requests by outcome, summed across
	// instances; nil unless faults or resilience were configured.
	Requests *RequestStats
	// Guard snapshots the primary instance's guard counters; nil
	// without a Resilience spec.
	Guard *tiers.GuardStats
	// Failovers is the DB promotion log; empty without failovers.
	Failovers []tiers.FailoverEvent
	// FaultTimeline is the expanded fault schedule the run executed;
	// nil without a Faults schedule.
	FaultTimeline []faults.Event
	// Hazard is the load-coupled crash hazard's accounting; nil unless
	// Faults.Hazard was configured (non-nil even when it never fired).
	Hazard *tiers.HazardStats
	// Brownout is the overload controller's accounting; nil unless
	// Resilience.Brownout was configured.
	Brownout *tiers.BrownoutStats
	// Cache snapshots the cache node's accounting; nil without a Cache
	// spec.
	Cache *tiers.CacheStats
	// Queue snapshots the write-behind broker's accounting; nil without
	// a Queue spec.
	Queue *tiers.QueueStats
	// PerInteraction breaks the primary driver's latency down by RUBiS
	// interaction kind, with per-kind cache outcomes when a cache tier
	// was deployed. Always populated, in rubis dense-index order.
	PerInteraction []InteractionLatency
}

// InteractionLatency is one RUBiS interaction kind's run-level latency
// and cache accounting.
type InteractionLatency struct {
	Kind        string  `json:"kind"`
	Count       uint64  `json:"count"`
	MeanMs      float64 `json:"mean_ms"`
	P95Ms       float64 `json:"p95_ms"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
}

// CPU returns the per-2s cycle demand series for tier ("webapp",
// "mysql", "dom0").
func (r *Result) CPU(tier string) *timeseries.Series { return r.Collector.CPU(tier) }

// Mem returns the used-memory series (MB).
func (r *Result) Mem(tier string) *timeseries.Series { return r.Collector.Mem(tier) }

// Disk returns the per-2s disk read+write series (KB).
func (r *Result) Disk(tier string) *timeseries.Series { return r.Collector.Disk(tier) }

// Net returns the per-2s network rx+tx series (KB).
func (r *Result) Net(tier string) *timeseries.Series { return r.Collector.Net(tier) }

// Run executes the configured experiment to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pairs := cfg.Pairs
	if pairs < 1 {
		pairs = 1
	}
	k := sim.NewKernel()
	src := rng.NewSource(cfg.Seed)
	model := cfg.Mix.Model()
	costs := rubis.DefaultCostParams()

	res := &Result{Config: cfg}
	// Datasets come from the process-wide golden snapshot cache: the
	// first run for a (scale, seed) pair populates and seals it, and
	// every later run attaches a copy-on-write view in microseconds.
	// Views are returned to the snapshot's pool when the run is done
	// (results only hold aggregated numbers, never engine state).
	var attachedApps []*rubis.App
	defer func() {
		for _, a := range attachedApps {
			a.Release()
		}
	}()
	attachApp := func(streamName string, pair int) (*rubis.App, error) {
		seed := src.SeedFor(streamName)
		if cfg.DatasetSeed != 0 {
			if pair == 0 {
				// Pair 0 (and the physical env) share the pinned seed
				// directly, so a sweep's replications — and both
				// environments — reuse one golden.
				seed = cfg.DatasetSeed
			} else {
				seed = rng.NewSource(cfg.DatasetSeed).SeedFor(streamName)
			}
		}
		a, err := rubis.SharedApp(cfg.Dataset, seed)
		if err != nil {
			return nil, err
		}
		attachedApps = append(attachedApps, a)
		return a, nil
	}
	var growthWebs []*tiers.WebAppServer
	var collector *sysstat.Collector
	var hv *xen.Hypervisor
	var drivers []tiers.LoadGen
	var app *rubis.App
	var inst *vmInstance
	var topo tiers.Topology

	// newDriver picks the workload shape: the paper's closed loop when
	// cfg.Load is nil, the open-loop generator otherwise. Each instance
	// gets its own arrival process (they are stateful) and RNG source.
	// With a Resilience spec the dispatch path is wrapped in a guard
	// (timeouts/retries/breaker) per instance; without one the frontend
	// is untouched.
	var guards []*tiers.Guard
	newDriver := func(app *rubis.App, web tiers.Frontend, src *rng.Source) (tiers.LoadGen, error) {
		if cfg.Resilience != nil {
			g := tiers.NewGuard(k, web, *cfg.Resilience, src.Stream("resilience-jitter"))
			guards = append(guards, g)
			web = g
		}
		if cfg.Load == nil {
			return tiers.NewDriver(k, app, model, web, costs, cfg.Clients, src), nil
		}
		p, err := tiers.OpenParamsFromSpec(cfg.Load)
		if err != nil {
			return nil, fmt.Errorf("experiment: building load spec: %w", err)
		}
		return tiers.NewOpenDriver(k, app, model, web, costs, p, src), nil
	}

	switch cfg.Environment {
	case Virtualized:
		if cfg.Topology != nil {
			topo = *cfg.Topology
		}
		topo = topo.Normalized()
		xp := xen.DefaultParams()
		if cfg.XenParams != nil {
			xp = *cfg.XenParams
		}
		hvs := make([]*xen.Hypervisor, topo.Machines)
		for m := range hvs {
			host := hw.NewServer(k, hw.ProLiantSpec(fmt.Sprintf("host%d", m)))
			hvs[m] = xen.New(k, host, xp)
		}
		hv = hvs[0]
		for p := 0; p < pairs; p++ {
			appP, err := attachApp(fmt.Sprintf("dataset-%d", p), p)
			if err != nil {
				return nil, fmt.Errorf("experiment: dataset %d: %w", p, err)
			}
			instP := buildVMInstance(k, hvs, topo, p, appP, cfg.Cache, cfg.Queue)
			drv, err := newDriver(appP, instP.cluster, rng.NewSource(cfg.Seed+uint64(p)*7919))
			if err != nil {
				return nil, err
			}
			drivers = append(drivers, drv)
			growthWebs = append(growthWebs, instP.cluster.Replicas...)
			if p == 0 {
				app = appP
				inst = instP
				if topo.IsDegenerate() {
					// The paper's exact target prefix — the golden sweep
					// hash pins this path; aux-tier targets append after
					// it only when their specs are set.
					targets := []sysstat.Target{
						{Name: TierWeb, Snap: vmSnapshot(k, instP.webDoms[0])},
						{Name: TierDB, Snap: vmSnapshot(k, instP.dbDoms[0])},
						{Name: TierDom0, Snap: dom0Snapshot(k, hv)},
					}
					if instP.cacheDom != nil {
						targets = append(targets, sysstat.Target{Name: TierCache, Snap: vmSnapshot(k, instP.cacheDom)})
					}
					if instP.queueDom != nil {
						targets = append(targets, sysstat.Target{Name: TierQueue, Snap: vmSnapshot(k, instP.queueDom)})
					}
					collector = sysstat.NewCollector(k, cfg.KeepFullCatalog, targets...)
				} else {
					collector = sysstat.NewCollector(k, cfg.KeepFullCatalog, clusterTargets(k, hvs, instP)...)
				}
			}
		}
		_ = app

	case Physical:
		appP, err := attachApp("dataset", 0)
		if err != nil {
			return nil, fmt.Errorf("experiment: dataset: %w", err)
		}
		app = appP
		webSrv := hw.NewServer(k, hw.ProLiantSpec("web-pm"))
		dbSrv := hw.NewServer(k, hw.ProLiantSpec("db-pm"))
		webOS := osmodel.New("web-pm", webSrv.Mem, 140)
		dbOS := osmodel.New("db-pm", dbSrv.Mem, 135)
		webSrv.Mem.Set("kernel", 90e6)
		dbSrv.Mem.Set("kernel", 90e6)

		webBE := tiers.NewPMBackend(k, webSrv, dbSrv, tiers.DefaultPMParams("web"), src.Stream("pm-web-noise"), webOS)
		dbBE := tiers.NewPMBackend(k, dbSrv, webSrv, tiers.DefaultPMParams("db"), src.Stream("pm-db-noise"), dbOS)
		db := tiers.NewDBServer(k, dbBE, app, tiers.DefaultDBParams("pm"))
		dbc := tiers.NewDBCluster(db, nil, 0)
		paths := []tiers.PathPair{{To: tiers.PMPath(webBE), From: tiers.PMPath(dbBE)}}
		webPM := tiers.NewWebAppServer(k, webBE, dbc, paths, tiers.DefaultWebParams("pm"))
		growthWebs = append(growthWebs, webPM)
		drv, err := newDriver(app, tiers.NewWebCluster(k, []*tiers.WebAppServer{webPM}, 1, nil), src)
		if err != nil {
			return nil, err
		}
		drivers = append(drivers, drv)

		collector = sysstat.NewCollector(k, cfg.KeepFullCatalog,
			sysstat.Target{Name: TierWeb, Snap: pmSnapshot(k, webSrv, webOS)},
			sysstat.Target{Name: TierDB, Snap: pmSnapshot(k, dbSrv, dbOS)},
		)
		defer func() {
			res.WebPMCycles = webSrv.CPU.TotalCycles()
			res.DBPMCycles = dbSrv.CPU.TotalCycles()
		}()

	default:
		return nil, fmt.Errorf("experiment: unknown environment %q", cfg.Environment)
	}

	// Fault injection and the reaction side, wired only when
	// configured: the fault timeline is expanded deterministically from
	// the run seed before the kernel starts (injection consumes no
	// randomness at run time), and the health monitor drives replica
	// ejection/readmission and DB primary failover.
	faulty := cfg.Faults != nil || cfg.Resilience != nil
	var monitor *tiers.HealthMonitor
	if cfg.Faults != nil && inst != nil {
		tg := faults.Targets{
			Webs:     topo.MaxWebReplicas,
			DBs:      1 + topo.DBReadReplicas,
			Machines: topo.Machines,
		}
		if inst.cacheSrv != nil {
			tg.Caches = 1
		}
		if inst.queueSrv != nil {
			tg.Queues = 1
		}
		res.FaultTimeline = cfg.Faults.Expand(cfg.Duration, tg, src)
		inj := tiers.NewInjector(k, inst.cluster, inst.dbc, topo, res.FaultTimeline)
		inj.SetAuxTiers(inst.cacheSrv, inst.queueSrv)
		inj.Start()
	}
	if cfg.Resilience != nil && inst != nil {
		monitor = tiers.NewHealthMonitor(k, inst.cluster, inst.dbc, *cfg.Resilience)
		if inst.queueSrv != nil {
			monitor.SetQueue(inst.queueSrv)
		}
		monitor.Start()
	}

	// The endogenous coupling layer: the load-reading crash hazard and
	// the brownout controller both evaluate at window boundaries on the
	// collector ticker (hooks registered below, after the drivers'
	// rotation, in fixed order), so their in-run decisions are as
	// deterministic as the pre-expanded timeline.
	var hazard *tiers.Hazard
	var overload *tiers.Overload
	if cfg.Faults != nil && cfg.Faults.Hazard != nil && inst != nil {
		hazard = tiers.NewHazard(k, inst.cluster, *cfg.Faults.Hazard, src.Stream("fault-hazard"))
	}
	if cfg.Resilience != nil && cfg.Resilience.Brownout != nil && inst != nil {
		overload = tiers.NewOverload(inst.cluster, *cfg.Resilience.Brownout)
		inst.cluster.SetOverload(overload)
		for _, g := range guards {
			g.SetOverload(overload)
		}
	}
	if inst != nil && topo.Autoscaler != nil {
		// Emergency backfill after an ejection pays the same
		// provisioning delay as a scale-up.
		inst.cluster.SetBackfillBoot(sim.Seconds(topo.Autoscaler.BootSeconds))
	}

	// Rotate every driver's telemetry window on the collector's
	// sampling ticker: latency windows and resource samples close at
	// the same instants, in deterministic driver order. Reserving the
	// duration-derived window count up front keeps rotation
	// allocation-free for the whole run.
	windows := int(cfg.Duration / sysstat.SampleInterval)
	if inst != nil && !topo.IsDegenerate() {
		// Materialize the replicas series before capacity is reserved.
		drivers[0].SetReplicaGauge(inst.cluster.ActiveReplicas)
	}
	if faulty {
		// Materialize the fault series before capacity is reserved.
		for i, drv := range drivers {
			var retries func() uint64
			if i < len(guards) {
				retries = guards[i].RetryCount
			}
			drv.EnableFaultTelemetry(retries)
		}
	}
	if inst != nil && inst.cacheSrv != nil {
		// Materialize the cache series before capacity is reserved. The
		// driver differences the cumulative counters per window; store
		// stats survive cold restarts, so the diff stays monotonic.
		cs := inst.cacheSrv
		drivers[0].EnableCacheTelemetry(func() (hits, misses, stampedes uint64) {
			s := cs.Snapshot()
			return s.Hits, s.Misses, s.Stampedes
		})
	}
	if inst != nil && inst.queueSrv != nil {
		// Materialize the queue depth/lag gauges before capacity is
		// reserved.
		qs := inst.queueSrv
		drivers[0].EnableQueueTelemetry(qs.Depth, func() float64 { return qs.LagMs(k.Now()) })
	}
	if hazard != nil || overload != nil {
		// Materialize the degradation series before capacity is
		// reserved.
		var level func() int
		if overload != nil {
			level = overload.Level
		}
		var rate func() float64
		if hazard != nil {
			rate = hazard.WindowRate
		}
		for _, drv := range drivers {
			drv.EnableDegradationTelemetry(level, rate)
		}
	}
	for _, drv := range drivers {
		drv.ReserveWindows(windows)
		collector.OnSample(drv.RotateWindow)
	}
	// Window-boundary actors run after rotation in fixed order: hazard
	// crashes first, then the brownout controller re-levels, then the
	// autoscaler decides — every run sees the identical sequence.
	if hazard != nil {
		collector.OnSample(hazard.OnSample)
	}
	if overload != nil {
		collector.OnSample(overload.OnSample)
	}
	if inst != nil && topo.Autoscaler != nil {
		// Registered after the drivers' RotateWindow hooks, so each
		// sample the autoscaler sees the window that just closed.
		scaler := tiers.NewAutoscaler(inst.cluster, drivers[0].Telemetry(), *topo.Autoscaler)
		collector.OnSample(scaler.OnSample)
	}
	collector.Start()
	startLoadTicker(k, collector)
	for _, drv := range drivers {
		drv.Start()
	}
	k.Run(cfg.Duration)

	res.Collector = collector
	primary := drivers[0]
	for _, drv := range drivers {
		completed, errors := drv.Totals()
		res.Completed += completed
		res.Errors += errors
		res.PairStats = append(res.PairStats, PairStat{
			Completed:    completed,
			MeanRespTime: drv.MeanResponseTime(),
			P95RespTime:  drv.ResponseTimeQuantile(0.95),
		})
		if od, ok := drv.(*tiers.OpenDriver); ok {
			if res.Sessions == nil {
				res.Sessions = &tiers.SessionStats{}
			}
			res.Sessions.Offered += od.Sessions.Offered
			res.Sessions.Started += od.Sessions.Started
			res.Sessions.Finished += od.Sessions.Finished
			res.Sessions.Abandoned += od.Sessions.Abandoned
			res.Sessions.PeakActive += od.Sessions.PeakActive
		}
	}
	res.WriteFraction = primary.WriteFraction()
	res.MeanRespTime = primary.MeanResponseTime()
	res.P95RespTime = primary.ResponseTimeQuantile(0.95)
	res.Telemetry = primary.Telemetry()
	for _, w := range growthWebs {
		res.WebGrowths += w.Growths()
	}
	res.Interactions = primary.InteractionCounts()
	res.Tiers = collector.TargetNames()
	res.ServedHist, res.AbandonedHist = primary.Hists()
	if inst != nil && !topo.IsDegenerate() {
		res.ScaleEvents = inst.cluster.Events
		st := &ScalingStats{PeakReplicas: inst.cluster.PeakActive()}
		for _, e := range inst.cluster.Events {
			switch e.Kind {
			case "up":
				st.ScaleUps++
				if st.FirstUpAt == 0 {
					st.FirstUpAt = e.At
				}
			case "down":
				st.ScaleDowns++
			}
		}
		res.Scaling = st
		for _, w := range inst.cluster.Replicas {
			res.ReplicaServed = append(res.ReplicaServed, w.Dispatched)
		}
	}
	if faulty {
		rs := &RequestStats{}
		for _, drv := range drivers {
			issued, served, timedOut, shed, failed, degraded := drv.RequestTotals()
			rs.Issued += issued
			rs.Served += served
			rs.TimedOut += timedOut
			rs.Shed += shed
			rs.Failed += failed
			rs.Degraded += degraded
		}
		rs.InFlight = rs.Issued - rs.Served - rs.TimedOut - rs.Shed - rs.Failed - rs.Degraded
		res.Requests = rs
	}
	if hazard != nil {
		stats := hazard.Stats
		res.Hazard = &stats
	}
	if overload != nil {
		stats := overload.Stats
		res.Brownout = &stats
	}
	if len(guards) > 0 {
		stats := guards[0].Stats
		res.Guard = &stats
	}
	if monitor != nil {
		res.Failovers = monitor.Failovers
	}
	if inst != nil && inst.cacheSrv != nil {
		stats := inst.cacheSrv.Snapshot()
		res.Cache = &stats
	}
	if inst != nil && inst.queueSrv != nil {
		stats := inst.queueSrv.Snapshot()
		res.Queue = &stats
	}
	for idx := 0; idx < rubis.NumInteractions; idx++ {
		h := primary.KindHist(idx)
		il := InteractionLatency{
			Kind:   string(rubis.InteractionAt(idx)),
			Count:  h.Count(),
			MeanMs: h.Mean() * 1e3,
			P95Ms:  h.Quantile(0.95) * 1e3,
		}
		if inst != nil && inst.cacheSrv != nil {
			il.CacheHits, il.CacheMisses = inst.cacheSrv.KindCounts(uint8(idx))
		}
		res.PerInteraction = append(res.PerInteraction, il)
	}
	if hv != nil {
		res.Attribution = hv.Attribution()
		res.GuestPhysCycles = hv.GuestPhysCycles()
		res.PerfFinal = hv.PerfCounters()
		res.Dom0BuffersMB = hv.Dom0().Mem.Get("backend-buffers") / 1e6
	}
	return res, nil
}

// startLoadTicker advances each monitored OS's load averages every
// sample period (the collector reads them as gauges).
func startLoadTicker(k *sim.Kernel, c *sysstat.Collector) {
	// Load averages are updated inside the snapshot functions; nothing
	// additional is needed here. Kept as a seam for future per-second
	// kernel housekeeping.
	_ = k
	_ = c
}

// vmSnapshot builds the snapshot closure for a guest domain.
func vmSnapshot(k *sim.Kernel, d *xen.Domain) func() sysstat.Snapshot {
	var lastTick sim.Time
	return func() sysstat.Snapshot {
		now := k.Now()
		d.OS.Tick(now - lastTick)
		lastTick = now
		l1, l5, l15 := d.OS.LoadAvg()
		return sysstat.Snapshot{
			At:             now,
			CPUCycles:      d.VirtCycles(),
			CPUBusy:        d.CPU.BusyTime(),
			StealTime:      d.StealTime(),
			Cores:          d.VCPUs,
			FreqHz:         2.8e9,
			MemTotal:       d.Mem.Capacity(),
			MemUsed:        d.Mem.Used(),
			MemBuffers:     d.Mem.Used() * 0.04,
			MemCached:      d.Mem.Get("dbcache") + d.Mem.Get("pagecache"),
			DiskReadBytes:  d.DiskReadBytes,
			DiskWriteBytes: d.DiskWrittenBytes,
			DiskReadOps:    d.DiskOps / 2,
			DiskWriteOps:   d.DiskOps - d.DiskOps/2,
			NetRxBytes:     d.NetRxBytes,
			NetTxBytes:     d.NetTxBytes,
			NetRxPkts:      uint64(d.NetRxBytes/1500) + 1,
			NetTxPkts:      uint64(d.NetTxBytes/1500) + 1,
			CtxSwitches:    d.OS.CtxSwitches,
			Interrupts:     d.OS.Interrupts,
			SoftIRQs:       d.OS.SoftIRQs,
			Forks:          d.OS.Forks,
			Faults:         d.OS.Faults,
			MajFaults:      d.OS.MajFaults,
			PgInBytes:      d.OS.PgInBytes,
			PgOutBytes:     d.OS.PgOutBytes,
			Procs:          d.OS.Procs,
			RunQueue:       d.OS.RunQueue,
			Blocked:        d.OS.Blocked,
			OpenFds:        d.OS.OpenFds,
			TCPSocks:       40 + d.OS.RunQueue*2,
			UDPSocks:       4,
			Load1:          l1, Load5: l5, Load15: l15,
		}
	}
}

// dom0Snapshot builds the snapshot closure for the hypervisor's dom0:
// its own CPU plus the physical disk and NIC it drives for the guests.
func dom0Snapshot(k *sim.Kernel, hv *xen.Hypervisor) func() sysstat.Snapshot {
	var lastTick sim.Time
	d := hv.Dom0()
	host := hv.Host()
	return func() sysstat.Snapshot {
		now := k.Now()
		d.OS.Tick(now - lastTick)
		lastTick = now
		l1, l5, l15 := d.OS.LoadAvg()
		rops, wops := host.Disk.Ops()
		rpk, tpk := host.NIC.Packets()
		return sysstat.Snapshot{
			At:             now,
			CPUCycles:      d.CPU.TotalCycles(),
			CPUBusy:        d.CPU.BusyTime(),
			Cores:          d.VCPUs,
			FreqHz:         host.Spec.FreqHz,
			MemTotal:       d.Mem.Capacity(),
			MemUsed:        d.Mem.Used(),
			MemBuffers:     d.Mem.Get("backend-buffers"),
			MemCached:      d.Mem.Get("pagecache"),
			DiskReadBytes:  host.Disk.ReadBytes(),
			DiskWriteBytes: host.Disk.WrittenBytes(),
			DiskReadOps:    rops,
			DiskWriteOps:   wops,
			DiskBusy:       host.Disk.BusyTime(),
			NetRxBytes:     host.NIC.RxBytes(),
			NetTxBytes:     host.NIC.TxBytes(),
			NetRxPkts:      rpk,
			NetTxPkts:      tpk,
			CtxSwitches:    d.OS.CtxSwitches,
			Interrupts:     d.OS.Interrupts,
			SoftIRQs:       d.OS.SoftIRQs,
			Forks:          d.OS.Forks,
			Faults:         d.OS.Faults,
			MajFaults:      d.OS.MajFaults,
			PgInBytes:      d.OS.PgInBytes,
			PgOutBytes:     d.OS.PgOutBytes,
			Procs:          d.OS.Procs,
			RunQueue:       d.OS.RunQueue,
			Blocked:        d.OS.Blocked,
			OpenFds:        d.OS.OpenFds,
			TCPSocks:       35,
			UDPSocks:       6,
			Load1:          l1, Load5: l5, Load15: l15,
		}
	}
}

// pmSnapshot builds the snapshot closure for a bare-metal server.
func pmSnapshot(k *sim.Kernel, srv *hw.Server, os *osmodel.OS) func() sysstat.Snapshot {
	var lastTick sim.Time
	return func() sysstat.Snapshot {
		now := k.Now()
		os.Tick(now - lastTick)
		lastTick = now
		l1, l5, l15 := os.LoadAvg()
		rops, wops := srv.Disk.Ops()
		rpk, tpk := srv.NIC.Packets()
		return sysstat.Snapshot{
			At:             now,
			CPUCycles:      srv.CPU.TotalCycles(),
			CPUBusy:        srv.CPU.BusyTime(),
			Cores:          srv.Spec.Cores,
			FreqHz:         srv.Spec.FreqHz,
			MemTotal:       srv.Mem.Capacity(),
			MemUsed:        srv.Mem.Used(),
			MemBuffers:     srv.Mem.Used() * 0.05,
			MemCached:      srv.Mem.Get("dbcache") + srv.Mem.Get("pagecache"),
			DiskReadBytes:  srv.Disk.ReadBytes(),
			DiskWriteBytes: srv.Disk.WrittenBytes(),
			DiskReadOps:    rops,
			DiskWriteOps:   wops,
			DiskBusy:       srv.Disk.BusyTime(),
			NetRxBytes:     srv.NIC.RxBytes(),
			NetTxBytes:     srv.NIC.TxBytes(),
			NetRxPkts:      rpk,
			NetTxPkts:      tpk,
			CtxSwitches:    os.CtxSwitches,
			Interrupts:     os.Interrupts,
			SoftIRQs:       os.SoftIRQs,
			Forks:          os.Forks,
			Faults:         os.Faults,
			MajFaults:      os.MajFaults,
			PgInBytes:      os.PgInBytes,
			PgOutBytes:     os.PgOutBytes,
			Procs:          os.Procs,
			RunQueue:       os.RunQueue,
			Blocked:        os.Blocked,
			OpenFds:        os.OpenFds,
			TCPSocks:       60 + os.RunQueue*2,
			UDPSocks:       5,
			Load1:          l1, Load5: l5, Load15: l15,
		}
	}
}
