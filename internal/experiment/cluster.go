package experiment

import (
	"fmt"

	"vwchar/internal/cachetier"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/sysstat"
	"vwchar/internal/tiers"
	"vwchar/internal/xen"
)

// vmInstance is one assembled RUBiS instance on the virtualized
// testbed: the web cluster, its DB tier, the optional cache and
// write-behind queue nodes, and the guest domains backing them (for
// collector targets).
type vmInstance struct {
	cluster *tiers.WebCluster
	dbc     *tiers.DBCluster
	webDoms []*xen.Domain
	dbDoms  []*xen.Domain // primary first, then read replicas

	cacheSrv *tiers.CacheServer
	cacheDom *xen.Domain
	queueSrv *tiers.QueueServer
	queueDom *xen.Domain
}

// buildVMInstance assembles one RUBiS instance for the (normalized)
// topology on the given hypervisors. pair is the consolidation index:
// multi-pair runs place several degenerate instances side by side, so
// guest names stay unique and, for the degenerate single-pair case,
// identical to the pre-topology assembly ("webapp-vm-0", "mysql-vm-0").
//
// Construction order is part of the determinism contract: web guests
// (in replica order), then DB guests (primary, then read replicas),
// then DB servers before web servers — exactly the pre-topology
// sequence when the topology is degenerate, so the golden sweep hash
// pins this path.
func buildVMInstance(k *sim.Kernel, hvs []*xen.Hypervisor, topo tiers.Topology, pair int, app *rubis.App, cache *cachetier.CacheSpec, queue *cachetier.QueueSpec) *vmInstance {
	inst := &vmInstance{}
	hvFor := func(vm int) *xen.Hypervisor { return hvs[topo.MachineFor(vm)] }

	for i := 0; i < topo.MaxWebReplicas; i++ {
		d := hvFor(i).CreateGuest(fmt.Sprintf("webapp-vm-%d", pair*topo.MaxWebReplicas+i), 2, 2<<30, 256)
		inst.webDoms = append(inst.webDoms, d)
	}
	primaryVM := topo.MaxWebReplicas
	primaryDom := hvFor(primaryVM).CreateGuest(fmt.Sprintf("mysql-vm-%d", pair), 2, 2<<30, 256)
	inst.dbDoms = append(inst.dbDoms, primaryDom)
	for j := 0; j < topo.DBReadReplicas; j++ {
		d := hvFor(primaryVM+1+j).CreateGuest(fmt.Sprintf("mysql-ro-vm-%d", j), 2, 2<<30, 256)
		inst.dbDoms = append(inst.dbDoms, d)
	}
	for _, d := range inst.webDoms {
		d.Mem.Set("kernel", 50e6)
	}
	for _, d := range inst.dbDoms {
		d.Mem.Set("kernel", 22e6)
	}

	// DB tier first (its checkpoint ticker precedes the web spill
	// tickers in the event order, as before the refactor). Read
	// replicas carry no engine reference: only the primary checkpoints
	// the shared storage engine.
	primaryBE := &tiers.VMBackend{HV: hvFor(primaryVM), Dom: primaryDom, Peer: inst.webDoms[0]}
	primary := tiers.NewDBServer(k, primaryBE, app, tiers.DefaultDBParams("vm"))
	var replicas []*tiers.DBServer
	for j := 0; j < topo.DBReadReplicas; j++ {
		dom := inst.dbDoms[1+j]
		be := &tiers.VMBackend{HV: hvFor(primaryVM + 1 + j), Dom: dom}
		params := tiers.DefaultDBParams("vm")
		params.CheckpointEvery = 0
		replicas = append(replicas, tiers.NewDBServer(k, be, nil, params))
	}
	inst.dbc = tiers.NewDBCluster(primary, replicas, topo.ReplicaLag())

	webs := make([]*tiers.WebAppServer, 0, topo.MaxWebReplicas)
	for i, dom := range inst.webDoms {
		be := &tiers.VMBackend{HV: hvFor(i), Dom: dom, Peer: primaryDom}
		paths := make([]tiers.PathPair, inst.dbc.Instances())
		for j := range paths {
			dbVM := primaryVM + j
			dbDom := inst.dbDoms[j]
			if topo.MachineFor(i) == topo.MachineFor(dbVM) {
				hv := hvFor(i)
				paths[j] = tiers.PathPair{
					To:   tiers.VMPath(hv, dom, dbDom),
					From: tiers.VMPath(hv, dbDom, dom),
				}
			} else {
				paths[j] = tiers.PathPair{
					To:   tiers.CrossVMPath(k, hvFor(i), dom, hvFor(dbVM), dbDom),
					From: tiers.CrossVMPath(k, hvFor(dbVM), dbDom, hvFor(i), dom),
				}
			}
		}
		webs = append(webs, tiers.NewWebAppServer(k, be, inst.dbc, paths, tiers.DefaultWebParams("vm")))
	}
	inst.cluster = tiers.NewWebCluster(k, webs, topo.WebReplicas, tiers.NewLoadBalancer(topo.LB))
	if cache == nil && queue == nil {
		// The golden path: nothing below runs, no extra guests, no extra
		// events — byte identity with the pre-cache assembly.
		return inst
	}

	// Aux tiers append strictly after the classic guests so the
	// construction prefix (and with nil specs, the whole assembly) stays
	// on the golden sequence. Without an explicit placement the aux VMs
	// round-robin onto the machines after the classic ones; an explicit
	// placement vector does not cover them, so they co-locate with the
	// DB primary (the tier they shield).
	auxMachine := func(i int) int {
		if len(topo.Placement) > 0 {
			return topo.MachineFor(primaryVM)
		}
		return (topo.VMCount() + i) % topo.Machines
	}
	webPath := func(i int, m int, dom *xen.Domain) tiers.PathPair {
		if topo.MachineFor(i) == m {
			return tiers.PathPair{
				To:   tiers.VMPath(hvs[m], inst.webDoms[i], dom),
				From: tiers.VMPath(hvs[m], dom, inst.webDoms[i]),
			}
		}
		return tiers.PathPair{
			To:   tiers.CrossVMPath(k, hvFor(i), inst.webDoms[i], hvs[m], dom),
			From: tiers.CrossVMPath(k, hvs[m], dom, hvFor(i), inst.webDoms[i]),
		}
	}

	if cache != nil {
		m := auxMachine(0)
		dom := hvs[m].CreateGuest(fmt.Sprintf("memcache-vm-%d", pair), 2, 2<<30, 256)
		dom.Mem.Set("kernel", 30e6)
		be := &tiers.VMBackend{HV: hvs[m], Dom: dom, Peer: inst.webDoms[0]}
		inst.cacheSrv = tiers.NewCacheServer(k, be, *cache, tiers.DefaultCacheParams())
		inst.cacheDom = dom
		for i, w := range webs {
			w.SetCacheTier(inst.cacheSrv, webPath(i, m, dom))
		}
	}
	if queue != nil {
		m := auxMachine(1)
		dom := hvs[m].CreateGuest(fmt.Sprintf("wqueue-vm-%d", pair), 2, 2<<30, 256)
		dom.Mem.Set("kernel", 30e6)
		be := &tiers.VMBackend{HV: hvs[m], Dom: dom, Peer: inst.dbDoms[0]}
		qPaths := make([]tiers.PathPair, inst.dbc.Instances())
		for j := range qPaths {
			dbVM := primaryVM + j
			dbDom := inst.dbDoms[j]
			if topo.MachineFor(dbVM) == m {
				qPaths[j] = tiers.PathPair{
					To:   tiers.VMPath(hvs[m], dom, dbDom),
					From: tiers.VMPath(hvs[m], dbDom, dom),
				}
			} else {
				qPaths[j] = tiers.PathPair{
					To:   tiers.CrossVMPath(k, hvs[m], dom, hvFor(dbVM), dbDom),
					From: tiers.CrossVMPath(k, hvFor(dbVM), dbDom, hvs[m], dom),
				}
			}
		}
		inst.queueSrv = tiers.NewQueueServer(k, be, inst.dbc, qPaths, *queue, tiers.DefaultQueueParams())
		inst.queueDom = dom
		for i, w := range webs {
			w.SetQueueTier(inst.queueSrv, webPath(i, m, dom))
		}
	}
	return inst
}

// clusterTargets builds the collector target list for a non-degenerate
// topology: per-VM targets first (their snapshots tick the guest OS
// clocks), then per-machine dom0s when there are several machines, then
// non-ticking aggregates under the classic tier names so every existing
// consumer of "webapp"/"mysql"/"dom0" keeps working at cluster scale.
func clusterTargets(k *sim.Kernel, hvs []*xen.Hypervisor, inst *vmInstance) []sysstat.Target {
	var ts []sysstat.Target
	for i, d := range inst.webDoms {
		ts = append(ts, sysstat.Target{Name: fmt.Sprintf("%s-%d", TierWeb, i), Snap: vmSnapshot(k, d)})
	}
	ts = append(ts, sysstat.Target{Name: TierDB + "-primary", Snap: vmSnapshot(k, inst.dbDoms[0])})
	for j, d := range inst.dbDoms[1:] {
		ts = append(ts, sysstat.Target{Name: fmt.Sprintf("%s-ro-%d", TierDB, j), Snap: vmSnapshot(k, d)})
	}
	if len(hvs) > 1 {
		for m, hv := range hvs {
			ts = append(ts, sysstat.Target{Name: fmt.Sprintf("%s-%d", TierDom0, m), Snap: dom0Snapshot(k, hv)})
		}
		ts = append(ts, sysstat.Target{Name: TierDom0, Snap: dom0AggSnapshot(k, hvs)})
	} else {
		ts = append(ts, sysstat.Target{Name: TierDom0, Snap: dom0Snapshot(k, hvs[0])})
	}
	ts = append(ts,
		sysstat.Target{Name: TierWeb, Snap: vmAggSnapshot(k, inst.webDoms)},
		sysstat.Target{Name: TierDB, Snap: vmAggSnapshot(k, inst.dbDoms)},
	)
	// Aux tiers last, so the classic target prefix is untouched.
	if inst.cacheDom != nil {
		ts = append(ts, sysstat.Target{Name: TierCache, Snap: vmSnapshot(k, inst.cacheDom)})
	}
	if inst.queueDom != nil {
		ts = append(ts, sysstat.Target{Name: TierQueue, Snap: vmSnapshot(k, inst.queueDom)})
	}
	return ts
}

// vmAggSnapshot sums guest-visible counters across doms without
// ticking their OS clocks — the per-VM targets, registered earlier in
// the same collection round, own the ticks.
func vmAggSnapshot(k *sim.Kernel, doms []*xen.Domain) func() sysstat.Snapshot {
	return func() sysstat.Snapshot {
		s := sysstat.Snapshot{At: k.Now(), FreqHz: 2.8e9}
		for _, d := range doms {
			l1, l5, l15 := d.OS.LoadAvg()
			s.CPUCycles += d.VirtCycles()
			s.CPUBusy += d.CPU.BusyTime()
			s.StealTime += d.StealTime()
			s.Cores += d.VCPUs
			s.MemTotal += d.Mem.Capacity()
			s.MemUsed += d.Mem.Used()
			s.MemBuffers += d.Mem.Used() * 0.04
			s.MemCached += d.Mem.Get("dbcache") + d.Mem.Get("pagecache")
			s.DiskReadBytes += d.DiskReadBytes
			s.DiskWriteBytes += d.DiskWrittenBytes
			s.DiskReadOps += d.DiskOps / 2
			s.DiskWriteOps += d.DiskOps - d.DiskOps/2
			s.NetRxBytes += d.NetRxBytes
			s.NetTxBytes += d.NetTxBytes
			s.NetRxPkts += uint64(d.NetRxBytes/1500) + 1
			s.NetTxPkts += uint64(d.NetTxBytes/1500) + 1
			s.CtxSwitches += d.OS.CtxSwitches
			s.Interrupts += d.OS.Interrupts
			s.SoftIRQs += d.OS.SoftIRQs
			s.Forks += d.OS.Forks
			s.Faults += d.OS.Faults
			s.MajFaults += d.OS.MajFaults
			s.PgInBytes += d.OS.PgInBytes
			s.PgOutBytes += d.OS.PgOutBytes
			s.Procs += d.OS.Procs
			s.RunQueue += d.OS.RunQueue
			s.Blocked += d.OS.Blocked
			s.OpenFds += d.OS.OpenFds
			s.TCPSocks += 40 + d.OS.RunQueue*2
			s.UDPSocks += 4
			s.Load1 += l1
			s.Load5 += l5
			s.Load15 += l15
		}
		return s
	}
}

// dom0AggSnapshot sums dom0 and host-device counters across machines
// without ticking (the per-machine dom0 targets own the ticks).
func dom0AggSnapshot(k *sim.Kernel, hvs []*xen.Hypervisor) func() sysstat.Snapshot {
	return func() sysstat.Snapshot {
		var s sysstat.Snapshot
		s.At = k.Now()
		for _, hv := range hvs {
			d := hv.Dom0()
			host := hv.Host()
			l1, l5, l15 := d.OS.LoadAvg()
			rops, wops := host.Disk.Ops()
			rpk, tpk := host.NIC.Packets()
			s.CPUCycles += d.CPU.TotalCycles()
			s.CPUBusy += d.CPU.BusyTime()
			s.Cores += d.VCPUs
			s.FreqHz = host.Spec.FreqHz
			s.MemTotal += d.Mem.Capacity()
			s.MemUsed += d.Mem.Used()
			s.MemBuffers += d.Mem.Get("backend-buffers")
			s.MemCached += d.Mem.Get("pagecache")
			s.DiskReadBytes += host.Disk.ReadBytes()
			s.DiskWriteBytes += host.Disk.WrittenBytes()
			s.DiskReadOps += rops
			s.DiskWriteOps += wops
			s.DiskBusy += host.Disk.BusyTime()
			s.NetRxBytes += host.NIC.RxBytes()
			s.NetTxBytes += host.NIC.TxBytes()
			s.NetRxPkts += rpk
			s.NetTxPkts += tpk
			s.CtxSwitches += d.OS.CtxSwitches
			s.Interrupts += d.OS.Interrupts
			s.SoftIRQs += d.OS.SoftIRQs
			s.Forks += d.OS.Forks
			s.Faults += d.OS.Faults
			s.MajFaults += d.OS.MajFaults
			s.PgInBytes += d.OS.PgInBytes
			s.PgOutBytes += d.OS.PgOutBytes
			s.Procs += d.OS.Procs
			s.RunQueue += d.OS.RunQueue
			s.Blocked += d.OS.Blocked
			s.OpenFds += d.OS.OpenFds
			s.TCPSocks += 35
			s.UDPSocks += 6
			s.Load1 += l1
			s.Load5 += l5
			s.Load15 += l15
		}
		return s
	}
}
