package xen

import (
	"math"
	"testing"

	"vwchar/internal/hw"
	"vwchar/internal/sim"
)

func newTestHV(k *sim.Kernel) *Hypervisor {
	return New(k, hw.NewServer(k, hw.ProLiantSpec("host")), DefaultParams())
}

func TestCreateGuestValidation(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	if g.ID != 1 || g.VCPUs != 2 {
		t.Fatalf("guest: %+v", g)
	}
	if len(hv.Guests()) != 1 {
		t.Fatal("guest not registered")
	}
	for _, fn := range []func(){
		func() { hv.CreateGuest("bad", 0, 1, 1) },
		func() { hv.CreateGuest("bad", 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid guest did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGuestLimitTen(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	for i := 0; i < 10; i++ {
		hv.CreateGuest("vm", 1, 1<<30, 128)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("11th guest should panic (testbed hosts up to ten)")
		}
	}()
	hv.CreateGuest("vm11", 1, 1<<30, 128)
}

func TestVirtVsPhysCycleAccounting(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	g.CPU.Submit(1e9, nil, nil)
	k.Run(10 * sim.Second)
	virt := g.VirtCycles()
	phys := g.PhysCycles()
	if math.Abs(virt-1e9) > 1 {
		t.Fatalf("VirtCycles = %v", virt)
	}
	want := 1e9 / DefaultParams().VirtCycleInflation
	if math.Abs(phys-want) > 1 {
		t.Fatalf("PhysCycles = %v, want %v", phys, want)
	}
	// dom0 cycles are physical (no inflation).
	hv.Dom0().CPU.Submit(1e6, nil, nil)
	k.Run(11 * sim.Second)
	if hv.Dom0().PhysCycles() < 1e6 {
		t.Fatalf("dom0 PhysCycles = %v", hv.Dom0().PhysCycles())
	}
}

func TestSplitDriverDiskRoutesThroughDom0(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	done := false
	hv.GuestDiskIO(g, 100<<10, true, func(any) { done = true }, nil)
	k.Run(10 * sim.Second)
	if !done {
		t.Fatal("disk completion never fired")
	}
	if g.DiskWrittenBytes != 100<<10 {
		t.Fatalf("guest counter = %v", g.DiskWrittenBytes)
	}
	// dom0 sees amplified physical bytes (plus its own logging).
	amp := DefaultParams().BlkWriteAmplification
	own := hv.Attribution().OwnDiskBytes
	if got := hv.Host().Disk.WrittenBytes() - own; math.Abs(got-float64(100<<10)*amp) > 1 {
		t.Fatalf("physical bytes = %v, want %v", got, float64(100<<10)*amp)
	}
	attr := hv.Attribution()
	if attr.BackendCycles <= 0 || attr.BackendDiskBytes <= 0 {
		t.Fatalf("backend attribution missing: %+v", attr)
	}
	// dom0 burned CPU for the backend work.
	if hv.Dom0().CPU.TotalCycles() <= 0 {
		t.Fatal("dom0 CPU should have executed blkback work")
	}
}

func TestSplitDriverNetExternal(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	done := 0
	hv.GuestNetExternal(g, 10000, true, func(any) { done++ }, nil)
	hv.GuestNetExternal(g, 5000, false, func(any) { done++ }, nil)
	k.Run(10 * sim.Second)
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if g.NetRxBytes != 10000 || g.NetTxBytes != 5000 {
		t.Fatalf("guest counters: rx=%v tx=%v", g.NetRxBytes, g.NetTxBytes)
	}
	factor := DefaultParams().NetBridgeFactor
	own := hv.Attribution().OwnNetBytes / 2 // half of management traffic is rx
	if got := hv.Host().NIC.RxBytes() - own; math.Abs(got-10000*factor) > 1 {
		t.Fatalf("host rx = %v", got)
	}
}

func TestInterVMTrafficSkipsPhysicalNICButCountsOnVifs(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	web := hv.CreateGuest("web", 2, 2<<30, 256)
	db := hv.CreateGuest("db", 2, 2<<30, 256)
	done := false
	hv.GuestNetInterVM(web, db, 1000, func(any) { done = true }, nil)
	k.Run(10 * sim.Second)
	if !done {
		t.Fatal("inter-VM transfer never completed")
	}
	if web.NetTxBytes != 1000 || db.NetRxBytes != 1000 {
		t.Fatal("guest vif counters should advance")
	}
	// dom0's sar view counts bridge traffic once per vif (management
	// traffic excluded).
	own := hv.Attribution().OwnNetBytes
	if got := hv.Host().NIC.RxBytes() + hv.Host().NIC.TxBytes() - own; got != 2000 {
		t.Fatalf("dom0 bridge accounting = %v, want 2000", got)
	}
	if hv.Attribution().BackendNetBytes != 2000 {
		t.Fatalf("backend net attribution = %v", hv.Attribution().BackendNetBytes)
	}
}

func TestGuestFsyncChargesDom0(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("db", 2, 2<<30, 256)
	before := hv.Attribution()
	hv.GuestFsync(g, 3)
	hv.GuestFsync(g, 0) // no-op
	k.Run(10 * sim.Second)
	after := hv.Attribution()
	wantCycles := 3 * DefaultParams().FsyncBackendCycles
	if got := after.BackendCycles - before.BackendCycles; math.Abs(got-wantCycles) > 1 {
		t.Fatalf("fsync backend cycles = %v, want %v", got, wantCycles)
	}
	if g.DiskOps != 3 {
		t.Fatalf("guest fsync ops = %d", g.DiskOps)
	}
}

func TestCreditSchedulerNoContentionFullSpeed(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	var doneAt sim.Time
	// 620e6 virtual cycles = 1 s on one VCPU at the default rate.
	g.CPU.Submit(DefaultParams().GuestVCPURate, func(any) { doneAt = k.Now() }, nil)
	k.Run(10 * sim.Second)
	if doneAt == 0 {
		t.Fatal("job never completed")
	}
	// Under no contention the scheduler should not throttle: completion
	// within a quantum of the ideal 1 s.
	if doneAt > sim.Second+2*DefaultParams().Quantum {
		t.Fatalf("uncontended job done at %v, want ~1 s", doneAt)
	}
	if g.StealTime() > 0 {
		t.Fatalf("uncontended guest has steal time %v", g.StealTime())
	}
}

func TestCreditSchedulerContentionProportionalToWeight(t *testing.T) {
	k := sim.NewKernel()
	host := hw.NewServer(k, hw.Spec{
		Name: "small", Cores: 2, FreqHz: 1e9, RAMBytes: 32 << 30,
		DiskSeek: sim.Millisecond, DiskBytesPerS: 100e6,
		NICLatency: sim.Microsecond, NICBytesPerS: 125e6,
	})
	params := DefaultParams()
	params.GuestVCPURate = 1e9
	hv := New(k, host, params)
	heavy := hv.CreateGuest("heavy", 2, 1<<30, 512)
	light := hv.CreateGuest("light", 2, 1<<30, 128)
	// Both domains demand 2 cores on a 2-core host: heavy should get
	// ~4/5 of capacity (512 vs 128 weights).
	var heavyDone, lightDone sim.Time
	for i := 0; i < 2; i++ {
		heavy.CPU.Submit(4e9, func(any) { heavyDone = k.Now() }, nil)
		light.CPU.Submit(4e9, func(any) { lightDone = k.Now() }, nil)
	}
	k.Run(120 * sim.Second)
	if heavyDone >= lightDone {
		t.Fatalf("heavier-weighted domain finished later: heavy=%v light=%v", heavyDone, lightDone)
	}
	if light.StealTime() <= heavy.StealTime() {
		t.Fatalf("light domain should accumulate more steal: %v vs %v",
			light.StealTime(), heavy.StealTime())
	}
}

func TestPerfCountersCatalog(t *testing.T) {
	if got := len(CatalogOnly()); got != PerfCounterCount {
		t.Fatalf("perf catalog has %d counters, want %d", got, PerfCounterCount)
	}
	names := make(map[string]bool)
	for _, c := range CatalogOnly() {
		if names[c.Name] {
			t.Fatalf("duplicate counter %q", c.Name)
		}
		names[c.Name] = true
		if c.Description == "" {
			t.Fatalf("counter %q lacks a description", c.Name)
		}
	}
}

func TestPerfCountersDeriveFromActivity(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	g := hv.CreateGuest("vm1", 2, 2<<30, 256)
	g.CPU.Submit(1e9, nil, nil)
	hv.GuestDiskIO(g, 8192, false, nil, nil)
	k.Run(20 * sim.Second)
	counters := hv.PerfCounters()
	if len(counters) != PerfCounterCount {
		t.Fatalf("live counters = %d", len(counters))
	}
	byName := map[string]float64{}
	for _, c := range counters {
		byName[c.Name] = c.Value
	}
	if byName["cycles"] <= 0 {
		t.Fatal("cycles should be positive after activity")
	}
	if byName["instructions"] <= byName["branch-misses"] {
		t.Fatal("instruction hierarchy violated")
	}
	if byName["xen-sched-runs"] <= 0 {
		t.Fatal("scheduler runs should be counted")
	}
	if byName["xen-hypercalls"] <= 0 {
		t.Fatal("hypercalls should be counted after guest I/O")
	}
	// Empty VM slots read zero.
	if byName["dom5-runstate-running-ms"] != 0 {
		t.Fatal("empty slot should read 0")
	}
	if byName["dom1-runstate-running-ms"] <= 0 {
		t.Fatal("busy guest slot should be positive")
	}
}

func TestDom0OwnActivityAccumulates(t *testing.T) {
	k := sim.NewKernel()
	hv := newTestHV(k)
	k.Run(30 * sim.Second)
	attr := hv.Attribution()
	if attr.OwnCycles <= 0 || attr.OwnDiskBytes <= 0 || attr.OwnNetBytes <= 0 {
		t.Fatalf("dom0 own activity missing: %+v", attr)
	}
	if attr.BackendCycles != 0 {
		t.Fatal("no guests ran: backend should be zero")
	}
	// dom0 memory includes base plus warming page cache.
	if hv.Dom0().Mem.Used() < DefaultParams().Dom0BaseMemBytes {
		t.Fatal("dom0 memory below base")
	}
}
