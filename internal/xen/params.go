// Package xen models the virtualization substrate of the paper's testbed:
// a Xen 3.1.2-style hypervisor with a privileged dom0, a weighted credit
// scheduler, split-driver (netback/blkback) I/O that routes every guest
// disk and network operation through dom0, and the dual view of CPU
// cycles — the guest-visible virtual-time counter versus the physical
// cycles the hypervisor actually charges.
//
// The distinction between dom0's *backend* work (caused by guest I/O) and
// its *own* management activity is first-class: DESIGN.md explains how
// that split reconciles the paper's two non-virtualized-vs-virtualized
// claims, and the characterization layer reports both.
package xen

import "vwchar/internal/sim"

// Params holds the hypervisor cost model. Defaults are calibrated so the
// simulated counters land on the paper's figure axes; see DESIGN.md §4.
type Params struct {
	// Quantum is the credit scheduler time slice (Xen default 30 ms).
	Quantum sim.Time

	// GuestVCPURate is the rate (per second) at which a guest VCPU
	// retires guest-visible "virtual cycles". It is far below the
	// physical clock: paravirtual cycle accounting at the 2-second sar
	// granularity advances much slower than the TSC while costing real
	// wall-clock time, which is what makes VM-reported cycle counts and
	// dom0-reported cycle counts incommensurable in the paper's figures.
	GuestVCPURate float64

	// VirtCycleInflation is the ratio of guest-visible cycle counts to
	// physical cycles charged by the hypervisor. The paper's own numbers
	// (VM CPU aggregate = 16.84x dom0 while dom0 performs all I/O) are
	// only consistent with strongly inflated guest counters.
	VirtCycleInflation float64

	// NetbackCyclesPerByte is dom0 CPU charged per guest network byte
	// (bridge + netback copy).
	NetbackCyclesPerByte float64
	// BlkbackCyclesPerByte is dom0 CPU charged per guest disk byte.
	BlkbackCyclesPerByte float64
	// PerIOBackendCycles is the fixed dom0 CPU cost per guest I/O op
	// (event channel, grant map/unmap).
	PerIOBackendCycles float64
	// HypercallCycles is the physical cost charged to a guest domain per
	// I/O operation for its side of the split driver.
	HypercallCycles float64
	// FsyncBackendCycles is dom0 CPU per synchronous journal flush: a
	// write transaction's fsync chain (guest fs journal -> blkback ->
	// barrier) is the reason bid-heavy workloads demand slightly more
	// physical resources than browse-heavy ones (paper §4.1).
	FsyncBackendCycles float64
	// FsyncBytes is the journal block written per fsync.
	FsyncBytes float64

	// BlkReadAmplification and BlkWriteAmplification scale guest disk
	// bytes into dom0 physical disk bytes (readahead; journaling and
	// metadata writes).
	BlkReadAmplification  float64
	BlkWriteAmplification float64

	// NetBridgeFactor scales guest NIC bytes into dom0-visible bridge
	// traffic. Inter-VM traffic stays on the bridge; external traffic
	// also crosses the physical NIC.
	NetBridgeFactor float64

	// Dom0BaseMemBytes is dom0's resident base (kernel, xenstored,
	// backends) before any I/O buffering.
	Dom0BaseMemBytes float64
	// Dom0BufferBytesPerKBEWMA grows dom0 grant/backend buffers with
	// the EWMA of the guest I/O byte rate (KB units).
	Dom0BufferBytesPerKBEWMA float64
	// Dom0PageCacheCeiling bounds dom0's own page cache (its logging and
	// management files), which warms up over a run.
	Dom0PageCacheCeiling float64
	// Dom0PageCacheFeed multiplies dom0's own disk traffic when warming
	// the page cache (re-reads, log rotation).
	Dom0PageCacheFeed float64
	// ShadowFractionOfGuestMem is the hypervisor-side per-VM memory
	// overhead (shadow/p2m structures) as a fraction of guest RAM.
	ShadowFractionOfGuestMem float64

	// Dom0OwnCyclesPerSecond is dom0's own management activity (xenstored,
	// console, periodic timers), charged independent of guest load.
	Dom0OwnCyclesPerSecond float64
	// Dom0OwnDiskBytesPerSecond is dom0's own logging rate.
	Dom0OwnDiskBytesPerSecond float64
	// Dom0OwnNetBytesPerSecond is dom0 management-plane traffic.
	Dom0OwnNetBytesPerSecond float64
}

// DefaultParams returns the calibrated cost model.
func DefaultParams() Params {
	return Params{
		Quantum:                   30 * sim.Millisecond,
		GuestVCPURate:             620e6,
		VirtCycleInflation:        19.5,
		NetbackCyclesPerByte:      11,
		BlkbackCyclesPerByte:      6,
		PerIOBackendCycles:        7e3,
		HypercallCycles:           2e3,
		FsyncBackendCycles:        150e3,
		FsyncBytes:                2048,
		BlkReadAmplification:      1.35,
		BlkWriteAmplification:     1.9,
		NetBridgeFactor:           0.985,
		Dom0BaseMemBytes:          744e6,
		Dom0BufferBytesPerKBEWMA:  42e3,
		Dom0PageCacheCeiling:      380e6,
		Dom0PageCacheFeed:         8,
		ShadowFractionOfGuestMem:  0.014,
		Dom0OwnCyclesPerSecond:    1.0e6,
		Dom0OwnDiskBytesPerSecond: 100e3,
		Dom0OwnNetBytesPerSecond:  9e3,
	}
}
