package xen

import (
	"fmt"

	"vwchar/internal/hw"
	"vwchar/internal/osmodel"
	"vwchar/internal/sim"
)

// Domain is one Xen domain: dom0 or a paravirtualized guest.
type Domain struct {
	Name   string
	ID     int
	Weight int
	VCPUs  int

	// CPU executes the domain's work. For guests, submitted cycles are
	// in the guest-visible (virtual-time) scale; PhysCycles deflates
	// them. For dom0 the scales coincide.
	CPU *hw.CPU
	// Mem is the domain's allocation-local memory view.
	Mem *hw.Memory
	// OS carries the guest kernel's activity counters.
	OS *osmodel.OS

	hv *Hypervisor

	// Guest-visible I/O counters (what sysstat inside the VM reports).
	DiskReadBytes    float64
	DiskWrittenBytes float64
	NetRxBytes       float64
	NetTxBytes       float64
	DiskOps          uint64

	// hypercallPhys accumulates physical cycles charged for the guest
	// side of split-driver operations.
	hypercallPhys float64
	// stealTime accumulates time runnable-but-not-running.
	stealTime sim.Time

	ioKBEWMA float64
}

// VirtCycles reports the guest-visible cumulative cycle counter.
func (d *Domain) VirtCycles() float64 { return d.CPU.TotalCycles() }

// PhysCycles reports the physical cycles the hypervisor charges to this
// domain: executed cycles deflated by the virtual-time inflation, plus
// hypercall work.
func (d *Domain) PhysCycles() float64 {
	infl := d.hv.params.VirtCycleInflation
	if d.ID == 0 || infl <= 0 {
		infl = 1
	}
	return d.CPU.TotalCycles()/infl + d.hypercallPhys
}

// StealTime reports cumulative runnable-but-descheduled time.
func (d *Domain) StealTime() sim.Time { return d.stealTime }

// Hypervisor owns a physical server and schedules domains onto it.
type Hypervisor struct {
	k      *sim.Kernel
	host   *hw.Server
	params Params

	dom0   *Domain
	guests []*Domain

	// dom0 attribution split (see DESIGN.md §4): backend work is caused
	// by guest I/O; own work is management activity.
	dom0BackendCycles    float64
	dom0OwnCycles        float64
	dom0BackendDiskBytes float64
	dom0OwnDiskBytes     float64
	dom0BackendNetBytes  float64
	dom0OwnNetBytes      float64

	dom0PageCache osmodel.PageCache
	perf          perfState
	schedTicker   *sim.Ticker
	ownTicker     *sim.Ticker

	// fwdFree recycles split-driver forwarding state (see io.go).
	fwdFree sim.FreeList[ioFwd]
	// Quantum-scheduler scratch, reused across ticks so the hottest
	// ticker in the system allocates nothing in steady state.
	schedEntries []schedEntry
	schedAlloc   []float64
	schedRemain  []bool
}

// schedEntry is one runnable domain in a quantum scheduling pass.
type schedEntry struct {
	d      *Domain
	demand float64 // cores wanted this quantum
}

// New builds a hypervisor on host with the given parameters. dom0 is
// created implicitly with weight 512 and 2 VCPUs, as on the testbed.
func New(k *sim.Kernel, host *hw.Server, params Params) *Hypervisor {
	hv := &Hypervisor{k: k, host: host, params: params}
	dom0Mem := hw.NewMemory(4 << 30)
	hv.dom0 = &Domain{
		Name:   "dom0",
		ID:     0,
		Weight: 512,
		VCPUs:  2,
		CPU:    hw.NewCPU(k, "dom0.cpu", 2, host.Spec.FreqHz),
		Mem:    dom0Mem,
		OS:     osmodel.New("dom0", dom0Mem, 95),
		hv:     hv,
	}
	hv.dom0.Mem.Set("base", params.Dom0BaseMemBytes)
	hv.dom0PageCache = osmodel.PageCache{
		Mem:     hv.dom0.Mem,
		Label:   "pagecache",
		Ceiling: params.Dom0PageCacheCeiling,
	}
	hv.schedTicker = k.Every(params.Quantum, params.Quantum, hv.schedule)
	hv.ownTicker = k.Every(sim.Second, sim.Second, hv.dom0OwnActivity)
	return hv
}

// Host exposes the underlying physical server.
func (hv *Hypervisor) Host() *hw.Server { return hv.host }

// Dom0 exposes the privileged domain.
func (hv *Hypervisor) Dom0() *Domain { return hv.dom0 }

// Guests lists the created guest domains.
func (hv *Hypervisor) Guests() []*Domain { return hv.guests }

// Params exposes the cost model.
func (hv *Hypervisor) Params() Params { return hv.params }

// CreateGuest boots a guest domain with the given VCPU count, memory
// allocation, and scheduler weight (testbed default: 2 VCPUs, 2 GB).
func (hv *Hypervisor) CreateGuest(name string, vcpus int, memBytes float64, weight int) *Domain {
	if vcpus <= 0 || memBytes <= 0 {
		panic(fmt.Sprintf("xen: guest %q needs positive vcpus and memory", name))
	}
	if len(hv.guests) >= 10 {
		panic("xen: testbed hosts at most 10 VMs per server")
	}
	mem := hw.NewMemory(memBytes)
	d := &Domain{
		Name:   name,
		ID:     len(hv.guests) + 1,
		Weight: weight,
		VCPUs:  vcpus,
		CPU:    hw.NewCPU(hv.k, name+".vcpu", vcpus, hv.params.GuestVCPURate),
		Mem:    mem,
		OS:     osmodel.New(name, mem, 80),
		hv:     hv,
	}
	hv.guests = append(hv.guests, d)
	// Shadow/p2m overhead lives in dom0's attribution of physical RAM.
	hv.dom0.Mem.Add("shadow", memBytes*hv.params.ShadowFractionOfGuestMem)
	return d
}

// schedule is the credit scheduler quantum: distribute physical cores
// among runnable domains proportionally to weight, capped by each
// domain's demand, then throttle domain CPUs accordingly.
func (hv *Hypervisor) schedule(now sim.Time) {
	entries := hv.schedEntries[:0]
	totalWeight := 0.0
	appendEntry := func(d *Domain) {
		demand := float64(d.CPU.Active())
		if demand > float64(d.VCPUs) {
			demand = float64(d.VCPUs)
		}
		if demand > 0 {
			entries = append(entries, schedEntry{d, demand})
			totalWeight += float64(d.Weight)
		} else {
			d.CPU.SetSpeed(1) // idle domains get full speed on wakeup
		}
	}
	appendEntry(hv.dom0)
	for _, d := range hv.guests {
		appendEntry(d)
	}
	hv.schedEntries = entries[:0]
	if len(entries) == 0 {
		return
	}
	free := float64(hv.host.Spec.Cores)
	alloc := hv.schedAlloc[:0]
	remaining := hv.schedRemain[:0]
	// Progressive filling: satisfy capped domains and redistribute.
	for range entries {
		alloc = append(alloc, 0)
		remaining = append(remaining, true)
	}
	hv.schedAlloc = alloc[:0]
	hv.schedRemain = remaining[:0]
	for pass := 0; pass < len(entries); pass++ {
		weightSum := 0.0
		for i, e := range entries {
			if remaining[i] {
				weightSum += float64(e.d.Weight)
			}
		}
		if weightSum == 0 || free <= 1e-12 {
			break
		}
		progress := false
		for i, e := range entries {
			if !remaining[i] {
				continue
			}
			share := free * float64(e.d.Weight) / weightSum
			if share >= e.demand-alloc[i] {
				grant := e.demand - alloc[i]
				alloc[i] += grant
				free -= grant
				remaining[i] = false
				progress = true
			}
		}
		if !progress {
			// No domain is satisfiable: split what is left by weight.
			for i, e := range entries {
				if remaining[i] {
					grant := free * float64(e.d.Weight) / weightSum
					alloc[i] += grant
				}
			}
			free = 0
			break
		}
	}
	for i, e := range entries {
		speed := alloc[i] / e.demand // demand > 0 here
		if speed > 1 {
			speed = 1
		}
		e.d.CPU.SetSpeed(speed)
		if gap := e.demand - alloc[i]; gap > 1e-12 {
			e.d.stealTime += sim.Time(gap / e.demand * float64(hv.params.Quantum))
		}
		// Each runnable VCPU incurs a scheduling context switch.
		hv.perf.ContextSwitches += uint64(e.demand + 0.5)
	}
	hv.perf.SchedRuns++
}

// dom0OwnActivity injects dom0's management-plane load once per second.
func (hv *Hypervisor) dom0OwnActivity(now sim.Time) {
	p := hv.params
	hv.dom0.CPU.Submit(p.Dom0OwnCyclesPerSecond, nil, nil)
	hv.dom0OwnCycles += p.Dom0OwnCyclesPerSecond
	hv.host.Disk.Account(p.Dom0OwnDiskBytesPerSecond, true)
	hv.dom0OwnDiskBytes += p.Dom0OwnDiskBytesPerSecond
	hv.dom0PageCache.Touch(p.Dom0OwnDiskBytesPerSecond * p.Dom0PageCacheFeed)
	hv.dom0OwnNetBytes += p.Dom0OwnNetBytesPerSecond
	hv.host.NIC.Account(p.Dom0OwnNetBytesPerSecond/2, p.Dom0OwnNetBytesPerSecond/2)
	hv.dom0.OS.NoteContext(140)
	hv.dom0.OS.NoteInterrupts(95, 60)
	// Refresh backend buffer sizing from the guest I/O byte-rate EWMA.
	kb := 0.0
	for _, g := range hv.guests {
		g.ioKBEWMA *= 0.8
		kb += g.ioKBEWMA
	}
	hv.dom0.Mem.Set("backend-buffers", kb*p.Dom0BufferBytesPerKBEWMA)
}

// Dom0Attribution reports the backend/own split of dom0's activity.
type Dom0Attribution struct {
	BackendCycles, OwnCycles       float64
	BackendDiskBytes, OwnDiskBytes float64
	BackendNetBytes, OwnNetBytes   float64
}

// Attribution returns the current dom0 attribution counters.
func (hv *Hypervisor) Attribution() Dom0Attribution {
	return Dom0Attribution{
		BackendCycles:    hv.dom0BackendCycles,
		OwnCycles:        hv.dom0OwnCycles,
		BackendDiskBytes: hv.dom0BackendDiskBytes,
		OwnDiskBytes:     hv.dom0OwnDiskBytes,
		BackendNetBytes:  hv.dom0BackendNetBytes,
		OwnNetBytes:      hv.dom0OwnNetBytes,
	}
}

// GuestPhysCycles sums the physical cycles charged to all guests.
func (hv *Hypervisor) GuestPhysCycles() float64 {
	total := 0.0
	for _, g := range hv.guests {
		total += g.PhysCycles()
	}
	return total
}
