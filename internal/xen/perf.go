package xen

import "fmt"

// perfState accumulates hypervisor-level scheduling activity that feeds
// the synthesized hardware counters.
type perfState struct {
	ContextSwitches uint64
	SchedRuns       uint64
}

// PerfCounter is one hypervisor-level hardware counter sample.
type PerfCounter struct {
	Name        string
	Description string
	Value       float64
}

// perfCounterNameSet builds the fixed catalog of counter identities. The
// paper profiled 154 hardware counters with a modified perf running in
// the Xen hypervisor; this list reproduces that width and is pinned by a
// test, so the catalog cannot silently drift.
func perfCounterNameSet() []struct{ name, desc string } {
	var out []struct{ name, desc string }
	add := func(name, desc string) {
		out = append(out, struct{ name, desc string }{name, desc})
	}
	// 26 architectural events.
	arch := [][2]string{
		{"cycles", "unhalted core cycles (all cores)"},
		{"instructions", "instructions retired"},
		{"branches", "branch instructions retired"},
		{"branch-misses", "mispredicted branches"},
		{"bus-cycles", "bus cycles"},
		{"stalled-cycles-frontend", "cycles with stalled instruction fetch"},
		{"stalled-cycles-backend", "cycles with stalled execution"},
		{"ref-cycles", "reference (unscaled) cycles"},
		{"cache-references", "last-level cache references"},
		{"cache-misses", "last-level cache misses"},
		{"L1-dcache-loads", "L1 data cache loads"},
		{"L1-dcache-load-misses", "L1 data cache load misses"},
		{"L1-dcache-stores", "L1 data cache stores"},
		{"L1-dcache-store-misses", "L1 data cache store misses"},
		{"L1-icache-loads", "L1 instruction cache loads"},
		{"L1-icache-load-misses", "L1 instruction cache load misses"},
		{"LLC-loads", "last-level cache loads"},
		{"LLC-load-misses", "last-level cache load misses"},
		{"LLC-stores", "last-level cache stores"},
		{"LLC-store-misses", "last-level cache store misses"},
		{"dTLB-loads", "data TLB loads"},
		{"dTLB-load-misses", "data TLB load misses"},
		{"dTLB-stores", "data TLB stores"},
		{"dTLB-store-misses", "data TLB store misses"},
		{"iTLB-loads", "instruction TLB loads"},
		{"iTLB-load-misses", "instruction TLB load misses"},
	}
	for _, a := range arch {
		add(a[0], a[1])
	}
	// 9 software events.
	sw := [][2]string{
		{"context-switches", "scheduler context switches"},
		{"cpu-migrations", "VCPU migrations between cores"},
		{"page-faults", "total page faults"},
		{"minor-faults", "minor page faults"},
		{"major-faults", "major page faults"},
		{"alignment-faults", "alignment fixups"},
		{"emulation-faults", "emulated instructions"},
		{"task-clock", "task clock (ms)"},
		{"cpu-clock", "cpu clock (ms)"},
	}
	for _, s := range sw {
		add(s[0], s[1])
	}
	// 6 Xen-specific events.
	xenEv := [][2]string{
		{"xen-hypercalls", "hypercalls serviced"},
		{"xen-grant-table-ops", "grant table map/unmap operations"},
		{"xen-event-channel-notifications", "event channel notifications"},
		{"xen-sched-runs", "credit scheduler invocations"},
		{"xen-steal-time-ms", "cumulative steal time across domains (ms)"},
		{"xen-domain-switches", "domain context switches"},
	}
	for _, x := range xenEv {
		add(x[0], x[1])
	}
	// 8 L2/node events.
	l2 := [][2]string{
		{"L2-loads", "L2 cache loads"},
		{"L2-load-misses", "L2 cache load misses"},
		{"L2-stores", "L2 cache stores"},
		{"L2-store-misses", "L2 cache store misses"},
		{"node-loads", "local memory node loads"},
		{"node-load-misses", "remote memory node loads"},
		{"node-stores", "local memory node stores"},
		{"node-store-misses", "remote memory node stores"},
	}
	for _, e := range l2 {
		add(e[0], e[1])
	}
	// 3 energy meters.
	add("power-pkg-joules", "package energy meter")
	add("power-cores-joules", "core energy meter")
	add("power-dram-joules", "DRAM energy meter")
	// Per-core counters: 8 cores x (cycles, instructions, cache-misses,
	// branch-misses, aperf, mperf, irqs, softirqs) = 64.
	for core := 0; core < 8; core++ {
		add(fmt.Sprintf("cpu%d-cycles", core), fmt.Sprintf("core %d unhalted cycles", core))
		add(fmt.Sprintf("cpu%d-instructions", core), fmt.Sprintf("core %d instructions retired", core))
		add(fmt.Sprintf("cpu%d-cache-misses", core), fmt.Sprintf("core %d LLC misses", core))
		add(fmt.Sprintf("cpu%d-branch-misses", core), fmt.Sprintf("core %d branch misses", core))
		add(fmt.Sprintf("cpu%d-aperf", core), fmt.Sprintf("core %d actual performance clock", core))
		add(fmt.Sprintf("cpu%d-mperf", core), fmt.Sprintf("core %d maximum performance clock", core))
		add(fmt.Sprintf("cpu%d-irqs", core), fmt.Sprintf("core %d hardware interrupts", core))
		add(fmt.Sprintf("cpu%d-softirqs", core), fmt.Sprintf("core %d soft interrupts", core))
		add(fmt.Sprintf("cpu%d-llc-references", core), fmt.Sprintf("core %d LLC references", core))
	}
	// Per-VM-slot runstate counters: 10 slots x 3 = 30 (the testbed
	// hosts up to ten VMs per server; empty slots read zero).
	for slot := 1; slot <= 10; slot++ {
		add(fmt.Sprintf("dom%d-runstate-running-ms", slot), fmt.Sprintf("VM slot %d time running (ms)", slot))
		add(fmt.Sprintf("dom%d-runstate-runnable-ms", slot), fmt.Sprintf("VM slot %d time runnable/stolen (ms)", slot))
		add(fmt.Sprintf("dom%d-runstate-blocked-ms", slot), fmt.Sprintf("VM slot %d time blocked (ms)", slot))
	}
	return out
}

// PerfCounterCount is the number of hypervisor hardware counters, equal
// to the paper's 154.
const PerfCounterCount = 154

// CatalogOnly returns the counter identities with zero values, for code
// that needs the catalog without a live hypervisor (e.g. Table 1).
func CatalogOnly() []PerfCounter {
	names := perfCounterNameSet()
	out := make([]PerfCounter, 0, len(names))
	for _, n := range names {
		out = append(out, PerfCounter{Name: n.name, Description: n.desc})
	}
	return out
}

// micro-architectural derivation ratios for the Xeon-class testbed CPU.
const (
	ipc             = 1.05
	branchFraction  = 0.19
	branchMissRate  = 0.031
	l1LoadPerInstr  = 0.34
	l1MissRate      = 0.028
	llcRefPerInstr  = 0.011
	llcMissRate     = 0.21
	tlbLoadFraction = 0.31
	tlbMissRate     = 0.0042
)

// PerfCounters synthesizes the 154 hypervisor counters from cumulative
// simulation state. Counters are cumulative; the collector differences
// consecutive samples.
func (hv *Hypervisor) PerfCounters() []PerfCounter {
	names := perfCounterNameSet()
	totalPhys := hv.dom0.PhysCycles()
	guestPhys := 0.0
	hypercalls := 0.0
	stealMs := 0.0
	for _, g := range hv.guests {
		guestPhys += g.PhysCycles()
		hypercalls += g.hypercallPhys / hv.params.HypercallCycles
		stealMs += float64(g.StealTime()) / 1e6
	}
	totalPhys += guestPhys
	instr := totalPhys * ipc
	faults := uint64(0)
	majFaults := uint64(0)
	ios := uint64(0)
	for _, d := range append([]*Domain{hv.dom0}, hv.guests...) {
		faults += d.OS.Faults
		majFaults += d.OS.MajFaults
		ios += d.DiskOps
	}

	value := func(name string) float64 {
		switch name {
		case "cycles":
			return totalPhys
		case "instructions":
			return instr
		case "branches":
			return instr * branchFraction
		case "branch-misses":
			return instr * branchFraction * branchMissRate
		case "bus-cycles":
			return totalPhys / 8
		case "stalled-cycles-frontend":
			return totalPhys * 0.12
		case "stalled-cycles-backend":
			return totalPhys * 0.22
		case "ref-cycles":
			return totalPhys
		case "cache-references":
			return instr * llcRefPerInstr
		case "cache-misses":
			return instr * llcRefPerInstr * llcMissRate
		case "L1-dcache-loads":
			return instr * l1LoadPerInstr
		case "L1-dcache-load-misses":
			return instr * l1LoadPerInstr * l1MissRate
		case "L1-dcache-stores":
			return instr * l1LoadPerInstr * 0.55
		case "L1-dcache-store-misses":
			return instr * l1LoadPerInstr * 0.55 * l1MissRate
		case "L1-icache-loads":
			return instr * 0.25
		case "L1-icache-load-misses":
			return instr * 0.25 * 0.011
		case "LLC-loads":
			return instr * llcRefPerInstr * 0.7
		case "LLC-load-misses":
			return instr * llcRefPerInstr * 0.7 * llcMissRate
		case "LLC-stores":
			return instr * llcRefPerInstr * 0.3
		case "LLC-store-misses":
			return instr * llcRefPerInstr * 0.3 * llcMissRate
		case "dTLB-loads":
			return instr * tlbLoadFraction
		case "dTLB-load-misses":
			return instr * tlbLoadFraction * tlbMissRate
		case "dTLB-stores":
			return instr * tlbLoadFraction * 0.5
		case "dTLB-store-misses":
			return instr * tlbLoadFraction * 0.5 * tlbMissRate
		case "iTLB-loads":
			return instr * 0.2
		case "iTLB-load-misses":
			return instr * 0.2 * 0.0011
		case "context-switches":
			return float64(hv.perf.ContextSwitches)
		case "cpu-migrations":
			return float64(hv.perf.SchedRuns) * 0.02
		case "page-faults":
			return float64(faults)
		case "minor-faults":
			return float64(faults - majFaults)
		case "major-faults":
			return float64(majFaults)
		case "alignment-faults", "emulation-faults":
			return 0
		case "task-clock", "cpu-clock":
			return totalPhys / hv.host.Spec.FreqHz * 1e3
		case "xen-hypercalls":
			return hypercalls
		case "xen-grant-table-ops":
			return float64(ios) * 2
		case "xen-event-channel-notifications":
			return float64(ios) * 3
		case "xen-sched-runs":
			return float64(hv.perf.SchedRuns)
		case "xen-steal-time-ms":
			return stealMs
		case "xen-domain-switches":
			return float64(hv.perf.ContextSwitches)
		case "L2-loads":
			return instr * l1LoadPerInstr * l1MissRate
		case "L2-load-misses":
			return instr * l1LoadPerInstr * l1MissRate * 0.3
		case "L2-stores":
			return instr * l1LoadPerInstr * 0.55 * l1MissRate
		case "L2-store-misses":
			return instr * l1LoadPerInstr * 0.55 * l1MissRate * 0.3
		case "node-loads":
			return instr * llcRefPerInstr * llcMissRate * 0.9
		case "node-load-misses":
			return instr * llcRefPerInstr * llcMissRate * 0.1
		case "node-stores":
			return instr * llcRefPerInstr * llcMissRate * 0.4
		case "node-store-misses":
			return instr * llcRefPerInstr * llcMissRate * 0.05
		case "power-pkg-joules":
			return totalPhys / hv.host.Spec.FreqHz * 38
		case "power-cores-joules":
			return totalPhys / hv.host.Spec.FreqHz * 24
		case "power-dram-joules":
			return totalPhys / hv.host.Spec.FreqHz * 7
		}
		// Per-core and per-slot counters.
		var core int
		if n, _ := fmt.Sscanf(name, "cpu%d-", &core); n == 1 {
			perCore := totalPhys / 8
			switch suffixAfterDash(name) {
			case "cycles", "aperf":
				return perCore
			case "instructions":
				return perCore * ipc
			case "cache-misses":
				return perCore * ipc * llcRefPerInstr * llcMissRate
			case "branch-misses":
				return perCore * ipc * branchFraction * branchMissRate
			case "mperf":
				return float64(hv.k.Now()) / 1e9 * hv.host.Spec.FreqHz / 8
			case "irqs":
				return float64(hv.dom0.OS.Interrupts) / 8
			case "softirqs":
				return float64(hv.dom0.OS.SoftIRQs) / 8
			case "llc-references":
				return perCore * ipc * llcRefPerInstr
			}
		}
		var slot int
		if n, _ := fmt.Sscanf(name, "dom%d-", &slot); n == 1 && slot >= 1 {
			if slot > len(hv.guests) {
				return 0
			}
			g := hv.guests[slot-1]
			switch suffixAfterDash(name) {
			case "runstate-running-ms":
				return float64(g.CPU.BusyTime()) / 1e6
			case "runstate-runnable-ms":
				return float64(g.StealTime()) / 1e6
			case "runstate-blocked-ms":
				busy := float64(g.CPU.BusyTime()+g.StealTime()) / 1e6
				total := float64(hv.k.Now()) / 1e6 * float64(g.VCPUs)
				if total < busy {
					return 0
				}
				return total - busy
			}
		}
		return 0
	}

	out := make([]PerfCounter, 0, len(names))
	for _, n := range names {
		out = append(out, PerfCounter{Name: n.name, Description: n.desc, Value: value(n.name)})
	}
	return out
}

// suffixAfterDash returns the part of name after the first '-'.
func suffixAfterDash(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '-' {
			return name[i+1:]
		}
	}
	return ""
}
