package xen

import "vwchar/internal/sim"

// Split-driver I/O: every guest disk and network operation crosses the
// frontend/backend boundary. The guest is charged a hypercall cost, dom0
// is charged backend CPU proportional to bytes plus a per-op cost, and
// the physical device sees amplified traffic (journaling for disk, the
// bridge for networking). Guest-visible counters advance by the logical
// bytes so that VM sysstat and dom0 sysstat diverge exactly as in the
// paper's Figures 3 and 4.

// GuestDiskIO performs a guest block operation of the given size; done
// (optional) fires when the physical transfer completes.
func (hv *Hypervisor) GuestDiskIO(d *Domain, bytes float64, write bool, done func()) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	// Guest-visible accounting.
	if write {
		d.DiskWrittenBytes += bytes
	} else {
		d.DiskReadBytes += bytes
	}
	d.DiskOps++
	d.ioKBEWMA += bytes / 1024
	d.hypercallPhys += p.HypercallCycles
	if write {
		d.OS.NotePaging(0, bytes)
	} else {
		d.OS.NotePaging(bytes, 0)
	}
	d.OS.NoteInterrupts(1, 2)

	// dom0 backend work.
	backend := p.PerIOBackendCycles + p.BlkbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	amp := p.BlkReadAmplification
	if write {
		amp = p.BlkWriteAmplification
	}
	physBytes := bytes * amp
	hv.dom0BackendDiskBytes += physBytes
	if write {
		hv.dom0.OS.NotePaging(0, physBytes)
	} else {
		hv.dom0.OS.NotePaging(physBytes, 0)
	}
	hv.dom0.OS.NoteInterrupts(2, 3)
	hv.dom0.CPU.Submit(backend, func() {
		hv.host.Disk.Submit(physBytes, write, done)
	})
}

// GuestNetExternal transfers bytes between a guest and the outside world
// through the physical NIC and dom0's netback. inbound selects the
// direction (true: world -> guest).
func (hv *Hypervisor) GuestNetExternal(d *Domain, bytes float64, inbound bool, done func()) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	if inbound {
		d.NetRxBytes += bytes
	} else {
		d.NetTxBytes += bytes
	}
	d.ioKBEWMA += bytes / 1024
	d.hypercallPhys += p.HypercallCycles
	d.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)

	backend := p.PerIOBackendCycles + p.NetbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	bridged := bytes * p.NetBridgeFactor
	hv.dom0BackendNetBytes += bridged
	hv.dom0.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	hv.dom0.CPU.Submit(backend, func() {
		if inbound {
			hv.host.NIC.Receive(bridged, done)
		} else {
			hv.host.NIC.Send(bridged, done)
		}
	})
}

// GuestFsync performs n synchronous journal flushes on behalf of the
// guest: each costs dom0 backend CPU and a small journaled write. Write
// transactions (StoreBid and friends) call this, which is why the
// bidding mix demands slightly more physical resources than browsing
// despite lower VM-visible demand (paper §4.1).
func (hv *Hypervisor) GuestFsync(d *Domain, n int) {
	if n <= 0 {
		return
	}
	p := hv.params
	backend := float64(n) * p.FsyncBackendCycles
	hv.dom0BackendCycles += backend
	bytes := float64(n) * p.FsyncBytes * p.BlkWriteAmplification
	hv.dom0BackendDiskBytes += bytes
	d.DiskWrittenBytes += float64(n) * p.FsyncBytes
	d.DiskOps += uint64(n)
	d.hypercallPhys += float64(n) * p.HypercallCycles
	d.OS.NotePaging(0, float64(n)*p.FsyncBytes)
	hv.dom0.OS.NotePaging(0, bytes)
	hv.dom0.CPU.Submit(backend, func() {
		hv.host.Disk.Submit(bytes, true, nil)
	})
}

// GuestNetInterVM transfers bytes between two co-resident guests across
// the software bridge. The physical NIC is not involved — this is the
// virtualized deployment's structural advantage over the two-server
// non-virtualized deployment — but both vifs and dom0's netback pay.
func (hv *Hypervisor) GuestNetInterVM(src, dst *Domain, bytes float64, done func()) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	src.NetTxBytes += bytes
	dst.NetRxBytes += bytes
	src.ioKBEWMA += bytes / 1024
	dst.ioKBEWMA += bytes / 1024
	src.hypercallPhys += p.HypercallCycles
	dst.hypercallPhys += p.HypercallCycles
	src.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	dst.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)

	// Two vif crossings: charge netback once per side. dom0's sar sums
	// all interfaces, so the bridge traffic shows up in dom0's network
	// counters once per vif even though the physical NIC never sees it.
	backend := 2*p.PerIOBackendCycles + 2*p.NetbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	hv.dom0BackendNetBytes += 2 * bytes
	hv.host.NIC.Account(bytes, bytes)
	hv.dom0.OS.NoteInterrupts(2, 4)
	hv.dom0.CPU.Submit(backend, func() {
		// Memory-to-memory copy at bus speed rather than wire speed.
		delay := sim.Time(bytes / 3e9 * float64(sim.Second))
		hv.k.After(delay+40*sim.Microsecond, func() {
			if done != nil {
				done()
			}
		})
	})
}
