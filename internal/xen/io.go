package xen

import "vwchar/internal/sim"

// Split-driver I/O: every guest disk and network operation crosses the
// frontend/backend boundary. The guest is charged a hypercall cost, dom0
// is charged backend CPU proportional to bytes plus a per-op cost, and
// the physical device sees amplified traffic (journaling for disk, the
// bridge for networking). Guest-visible counters advance by the logical
// bytes so that VM sysstat and dom0 sysstat diverge exactly as in the
// paper's Figures 3 and 4.
//
// The dom0 backend stage completes asynchronously (it is CPU work on
// dom0's processor-sharing CPU), so the "what happens after the backend
// ran" state — physical bytes, direction, the caller's completion
// callback — is carried in an ioFwd struct recycled through a
// hypervisor-owned free list rather than a per-operation closure.

// ioFwd carries one in-flight split-driver operation from the dom0
// backend CPU stage to the physical device stage.
type ioFwd struct {
	hv      *Hypervisor
	bytes   float64
	write   bool
	inbound bool
	done    sim.Callback
	darg    any
}

func (hv *Hypervisor) newFwd(bytes float64, write, inbound bool, done sim.Callback, darg any) *ioFwd {
	f := hv.fwdFree.Get()
	f.hv = hv
	f.bytes = bytes
	f.write = write
	f.inbound = inbound
	f.done = done
	f.darg = darg
	return f
}

// fwdDisk runs when dom0's blkback CPU work completes: the amplified
// bytes hit the physical disk. The device copies the completion callback
// into its own event, so the forward slot recycles immediately.
func fwdDisk(arg any) {
	f := arg.(*ioFwd)
	f.hv.host.Disk.Submit(f.bytes, f.write, f.done, f.darg)
	f.hv.fwdFree.Put(f)
}

// fwdNet runs when dom0's netback CPU work completes: the bridged bytes
// cross the physical NIC in the recorded direction.
func fwdNet(arg any) {
	f := arg.(*ioFwd)
	if f.inbound {
		f.hv.host.NIC.Receive(f.bytes, f.done, f.darg)
	} else {
		f.hv.host.NIC.Send(f.bytes, f.done, f.darg)
	}
	f.hv.fwdFree.Put(f)
}

// fwdInterVM runs when dom0's netback CPU work completes for a
// guest-to-guest transfer: a memory-to-memory copy at bus speed rather
// than wire speed, so only a latency event is scheduled.
func fwdInterVM(arg any) {
	f := arg.(*ioFwd)
	if f.done != nil {
		delay := sim.Time(f.bytes / 3e9 * float64(sim.Second))
		f.hv.k.AfterCall(delay+40*sim.Microsecond, f.done, f.darg)
	}
	f.hv.fwdFree.Put(f)
}

// GuestDiskIO performs a guest block operation of the given size;
// done(darg) (optional) fires when the physical transfer completes.
func (hv *Hypervisor) GuestDiskIO(d *Domain, bytes float64, write bool, done sim.Callback, darg any) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	// Guest-visible accounting.
	if write {
		d.DiskWrittenBytes += bytes
	} else {
		d.DiskReadBytes += bytes
	}
	d.DiskOps++
	d.ioKBEWMA += bytes / 1024
	d.hypercallPhys += p.HypercallCycles
	if write {
		d.OS.NotePaging(0, bytes)
	} else {
		d.OS.NotePaging(bytes, 0)
	}
	d.OS.NoteInterrupts(1, 2)

	// dom0 backend work.
	backend := p.PerIOBackendCycles + p.BlkbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	amp := p.BlkReadAmplification
	if write {
		amp = p.BlkWriteAmplification
	}
	physBytes := bytes * amp
	hv.dom0BackendDiskBytes += physBytes
	if write {
		hv.dom0.OS.NotePaging(0, physBytes)
	} else {
		hv.dom0.OS.NotePaging(physBytes, 0)
	}
	hv.dom0.OS.NoteInterrupts(2, 3)
	hv.dom0.CPU.Submit(backend, fwdDisk, hv.newFwd(physBytes, write, false, done, darg))
}

// GuestNetExternal transfers bytes between a guest and the outside world
// through the physical NIC and dom0's netback. inbound selects the
// direction (true: world -> guest).
func (hv *Hypervisor) GuestNetExternal(d *Domain, bytes float64, inbound bool, done sim.Callback, darg any) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	if inbound {
		d.NetRxBytes += bytes
	} else {
		d.NetTxBytes += bytes
	}
	d.ioKBEWMA += bytes / 1024
	d.hypercallPhys += p.HypercallCycles
	d.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)

	backend := p.PerIOBackendCycles + p.NetbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	bridged := bytes * p.NetBridgeFactor
	hv.dom0BackendNetBytes += bridged
	hv.dom0.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	hv.dom0.CPU.Submit(backend, fwdNet, hv.newFwd(bridged, false, inbound, done, darg))
}

// GuestFsync performs n synchronous journal flushes on behalf of the
// guest: each costs dom0 backend CPU and a small journaled write. Write
// transactions (StoreBid and friends) call this, which is why the
// bidding mix demands slightly more physical resources than browsing
// despite lower VM-visible demand (paper §4.1).
func (hv *Hypervisor) GuestFsync(d *Domain, n int) {
	if n <= 0 {
		return
	}
	p := hv.params
	backend := float64(n) * p.FsyncBackendCycles
	hv.dom0BackendCycles += backend
	bytes := float64(n) * p.FsyncBytes * p.BlkWriteAmplification
	hv.dom0BackendDiskBytes += bytes
	d.DiskWrittenBytes += float64(n) * p.FsyncBytes
	d.DiskOps += uint64(n)
	d.hypercallPhys += float64(n) * p.HypercallCycles
	d.OS.NotePaging(0, float64(n)*p.FsyncBytes)
	hv.dom0.OS.NotePaging(0, bytes)
	hv.dom0.CPU.Submit(backend, fwdDisk, hv.newFwd(bytes, true, false, nil, nil))
}

// GuestNetInterVM transfers bytes between two co-resident guests across
// the software bridge. The physical NIC is not involved — this is the
// virtualized deployment's structural advantage over the two-server
// non-virtualized deployment — but both vifs and dom0's netback pay.
func (hv *Hypervisor) GuestNetInterVM(src, dst *Domain, bytes float64, done sim.Callback, darg any) {
	if bytes < 0 {
		bytes = 0
	}
	p := hv.params
	src.NetTxBytes += bytes
	dst.NetRxBytes += bytes
	src.ioKBEWMA += bytes / 1024
	dst.ioKBEWMA += bytes / 1024
	src.hypercallPhys += p.HypercallCycles
	dst.hypercallPhys += p.HypercallCycles
	src.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	dst.OS.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)

	// Two vif crossings: charge netback once per side. dom0's sar sums
	// all interfaces, so the bridge traffic shows up in dom0's network
	// counters once per vif even though the physical NIC never sees it.
	backend := 2*p.PerIOBackendCycles + 2*p.NetbackCyclesPerByte*bytes
	hv.dom0BackendCycles += backend
	hv.dom0BackendNetBytes += 2 * bytes
	hv.host.NIC.Account(bytes, bytes)
	hv.dom0.OS.NoteInterrupts(2, 4)
	hv.dom0.CPU.Submit(backend, fwdInterVM, hv.newFwd(bytes, false, false, done, darg))
}
