package characterize

import (
	"math"
	"strings"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/sim"
	"vwchar/internal/telemetry"
	"vwchar/internal/tiers"
	"vwchar/internal/timeseries"
)

func seriesOf(name, unit string, values ...float64) *timeseries.Series {
	s := timeseries.New(name, unit)
	for _, v := range values {
		s.Append(v)
	}
	return s
}

// A hand-built degraded run: every derived quantity is checkable by
// hand against the documented formulas.
func syntheticFaultResult() *experiment.Result {
	return &experiment.Result{
		Requests: &experiment.RequestStats{
			Issued: 1000, Served: 900, TimedOut: 40, Shed: 30, Failed: 20, InFlight: 10,
		},
		Guard: &tiers.GuardStats{Timeouts: 40, Retries: 55, Sheds: 30, BreakerOpens: 2},
		Failovers: []tiers.FailoverEvent{
			{DetectedAt: sim.Seconds(10), PromotedAt: sim.Seconds(13), NewPrimary: 1},
			{DetectedAt: sim.Seconds(40), PromotedAt: sim.Seconds(45), NewPrimary: 2},
		},
		Telemetry: &telemetry.WindowSeries{
			Availability: seriesOf("availability", "fraction", 1, 1, 0.995, 0.97, 0.95, 1, 0.98, 1),
			LatencyP95:   seriesOf("p95", "ms", 100, 100, 900, 1500, 1500, 100, 400, 100),
			Throughput:   seriesOf("throughput", "req/s", 50, 50, 50, 50, 50, 50, 50, 50),
		},
	}
}

func TestAnalyzeAvailabilitySynthetic(t *testing.T) {
	a := AnalyzeAvailability(syntheticFaultResult(), 500)

	if got, want := a.Delivered, 900.0/990.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Delivered = %v, want %v", got, want)
	}
	if a.Issued != 1000 || a.Served != 900 || a.TimedOut != 40 || a.Shed != 30 || a.Failed != 20 || a.InFlight != 10 {
		t.Errorf("request accounting not copied through: %+v", a)
	}
	if a.Retries != 55 || a.BreakerOpens != 2 {
		t.Errorf("guard counters = %d retries / %d opens, want 55 / 2", a.Retries, a.BreakerOpens)
	}
	if a.Failovers != 2 {
		t.Fatalf("Failovers = %d, want 2", a.Failovers)
	}
	// (13-10 + 45-40) / 2 = 4 s.
	if math.Abs(a.MeanTimeToFailoverSec-4) > 1e-9 {
		t.Errorf("MeanTimeToFailoverSec = %v, want 4", a.MeanTimeToFailoverSec)
	}

	if a.WorstWindowAvailability != 0.95 {
		t.Errorf("WorstWindowAvailability = %v, want 0.95", a.WorstWindowAvailability)
	}
	// Windows below 1.0: indices 2, 3, 4, 6.
	if a.FaultWindows != 4 {
		t.Errorf("FaultWindows = %d, want 4", a.FaultWindows)
	}
	// Below the 0.99 outage threshold: the {0.97, 0.95} run and the
	// lone 0.98 window — two episodes spanning three 2 s windows.
	if a.Outages != 2 {
		t.Errorf("Outages = %d, want 2", a.Outages)
	}
	if math.Abs(a.MTTRObservedSec-3) > 1e-9 {
		t.Errorf("MTTRObservedSec = %v, want 3", a.MTTRObservedSec)
	}
	// Degraded windows over the 500 ms SLO: (900-500)/1e3*50*2 +
	// 2*(1500-500)/1e3*50*2 = 40 + 100 + 100; window 6 (400 ms) adds 0.
	if math.Abs(a.SLODebtFaultSec-240) > 1e-9 {
		t.Errorf("SLODebtFaultSec = %v, want 240", a.SLODebtFaultSec)
	}

	var sb strings.Builder
	if err := a.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"availability: 0.9091 delivered", "2 failover(s)", "2 outage(s)", "MTTR-as-observed 3.0 s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeAvailabilityOpenOutage pins the open-outage flag: a run
// that ends inside an outage must say so, because the observed MTTR is
// then only a lower bound — the system never demonstrated recovery.
func TestAnalyzeAvailabilityOpenOutage(t *testing.T) {
	r := &experiment.Result{
		Requests: &experiment.RequestStats{
			Issued: 100, Served: 60, Failed: 30, Degraded: 10,
		},
		Telemetry: &telemetry.WindowSeries{
			Availability: seriesOf("availability", "fraction", 1, 1, 0.5, 0.4, 0.3),
			LatencyP95:   seriesOf("p95", "ms", 100, 100, 100, 100, 100),
			Throughput:   seriesOf("throughput", "req/s", 50, 50, 50, 50, 50),
		},
	}
	a := AnalyzeAvailability(r, 500)
	if !a.OpenOutageAtEnd {
		t.Fatal("run ends three windows deep in an outage, OpenOutageAtEnd is false")
	}
	if a.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", a.Outages)
	}
	if a.Degraded != 10 {
		t.Fatalf("Degraded = %d, want 10", a.Degraded)
	}
	var sb strings.Builder
	if err := a.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "STILL OPEN at run end") {
		t.Errorf("Write output does not flag the open outage:\n%s", out)
	}
	if !strings.Contains(out, "(10 degraded)") {
		t.Errorf("Write output does not report degraded answers:\n%s", out)
	}

	// The same shape with a recovery window at the end is closed.
	r.Telemetry.Availability = seriesOf("availability", "fraction", 1, 1, 0.5, 0.4, 1)
	if a := AnalyzeAvailability(r, 500); a.OpenOutageAtEnd {
		t.Fatal("outage recovered in the final window, OpenOutageAtEnd is true")
	}
}

func TestAnalyzeAvailabilityFaultFree(t *testing.T) {
	// No request accounting, no guard, no availability series: the
	// analysis must report a fully healthy run, not zeros.
	a := AnalyzeAvailability(&experiment.Result{}, 500)
	if a.Delivered != 1 {
		t.Errorf("Delivered = %v, want 1", a.Delivered)
	}
	if a.WorstWindowAvailability != 1 {
		t.Errorf("WorstWindowAvailability = %v, want 1", a.WorstWindowAvailability)
	}
	if a.Outages != 0 || a.FaultWindows != 0 || a.Failovers != 0 || a.SLODebtFaultSec != 0 {
		t.Errorf("fault-free run reports degradation: %+v", a)
	}
}
