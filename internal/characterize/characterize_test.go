package characterize

import (
	"bytes"
	"strings"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

func shortRun(t *testing.T, env experiment.Env, mix experiment.MixKind, seed uint64) *experiment.Result {
	t.Helper()
	cfg := experiment.DefaultConfig(env, mix)
	cfg.Clients = 250
	cfg.Duration = 120 * sim.Second
	cfg.Seed = seed
	cfg.Dataset = rubis.DatasetConfig{
		Regions: 20, Categories: 10, Users: 2000,
		ActiveItems: 600, OldItems: 1000,
		BidsPerItem: 4, CommentsPerUser: 1, BufferPages: 220,
	}
	r, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The four runs are expensive; build them once for the whole package.
var (
	virtBrowse, virtBid, physBrowse, physBid *experiment.Result
)

func results(t *testing.T) (vb, vd, pb, pd *experiment.Result) {
	t.Helper()
	if virtBrowse == nil {
		virtBrowse = shortRun(t, experiment.Virtualized, experiment.MixBrowsing, 42)
		virtBid = shortRun(t, experiment.Virtualized, experiment.MixBidding, 43)
		physBrowse = shortRun(t, experiment.Physical, experiment.MixBrowsing, 142)
		physBid = shortRun(t, experiment.Physical, experiment.MixBidding, 143)
	}
	return virtBrowse, virtBid, physBrowse, physBid
}

// TestDefaultAnalysisMatchesLegacyOutputs is the satellite's regression
// guard: the package-level analysis functions (which every figure and
// report path uses) are exactly DefaultAnalysis — the configurable
// warm-up refactor changed nothing by default.
func TestDefaultAnalysisMatchesLegacyOutputs(t *testing.T) {
	vb, _, pb, _ := results(t)
	def := DefaultAnalysis()
	if def.WarmupFraction != DefaultWarmupFraction {
		t.Fatalf("default warmup = %v", def.WarmupFraction)
	}
	if got, want := def.TierRatios(vb), TierRatios(vb); got != want {
		t.Fatalf("TierRatios %+v != default-analysis %+v", want, got)
	}
	if got, want := def.VMToDom0Ratios(vb), VMToDom0Ratios(vb); got != want {
		t.Fatalf("VMToDom0Ratios mismatch: %+v vs %+v", got, want)
	}
	if got, want := def.EnvAggregateRatios(vb, pb), EnvAggregateRatios(vb, pb); got != want {
		t.Fatalf("EnvAggregateRatios mismatch: %+v vs %+v", got, want)
	}
	if got, want := def.PhysicalDelta(vb, pb), PhysicalDelta(vb, pb); got != want {
		t.Fatalf("PhysicalDelta mismatch: %+v vs %+v", got, want)
	}
	if got, want := def.DiskVariance(vb, experiment.TierWeb), DiskVariance(vb, experiment.TierWeb); got != want {
		t.Fatalf("DiskVariance mismatch: %v vs %v", got, want)
	}
	// A different warm-up window genuinely changes the analysis (the
	// knob is wired through, not decorative).
	wide := Analysis{WarmupFraction: 0.45}
	if wide.TierRatios(vb) == def.TierRatios(vb) {
		t.Fatal("warm-up fraction has no effect on tier ratios")
	}
}

// TestAnalysisFromTelemetry pins the derived warm-up window: on a real
// run it lands in [0, 0.5], and a closed-loop run that serves from the
// first windows yields a smaller warm-up than the fixed 20% default.
func TestAnalysisFromTelemetry(t *testing.T) {
	vb, _, _, _ := results(t)
	a := AnalysisFromTelemetry(vb)
	if a.WarmupFraction < 0 || a.WarmupFraction > 0.5 {
		t.Fatalf("derived warmup %v out of range", a.WarmupFraction)
	}
	// The closed loop ramps inside its first think period (~7 s), so
	// the throughput-derived warm-up ends well before the fixed 20%
	// of a 120 s run.
	if a.WarmupFraction >= DefaultWarmupFraction {
		t.Fatalf("derived warmup %v not tighter than default %v", a.WarmupFraction, DefaultWarmupFraction)
	}
	// The derived analysis still reproduces the paper's directional
	// findings.
	if r := a.TierRatios(vb); r.CPU < 2 || r.Network < 10 {
		t.Fatalf("derived-warmup tier ratios degenerate: %+v", r)
	}
}

func TestTierRatiosDirection(t *testing.T) {
	vb, _, _, _ := results(t)
	r := TierRatios(vb)
	// §4.1: the front end demands several times more of everything.
	if r.CPU < 2 {
		t.Fatalf("cpu tier ratio = %v, front end should dominate", r.CPU)
	}
	if r.RAM < 1 {
		t.Fatalf("ram tier ratio = %v", r.RAM)
	}
	if r.Network < 10 {
		t.Fatalf("net tier ratio = %v, paper reports 55x", r.Network)
	}
}

func TestVMToDom0Direction(t *testing.T) {
	vb, _, _, _ := results(t)
	r := VMToDom0Ratios(vb)
	// CPU: VM virtual-cycle counters dwarf dom0 (paper 16.84).
	if r.CPU < 5 {
		t.Fatalf("vm/dom0 cpu = %v", r.CPU)
	}
	// RAM and disk: dom0 exceeds the VM aggregate (paper 0.58, 0.47).
	if r.RAM >= 1 {
		t.Fatalf("vm/dom0 ram = %v, dom0 should be bigger", r.RAM)
	}
	if r.Disk >= 1 {
		t.Fatalf("vm/dom0 disk = %v, dom0 does the real I/O", r.Disk)
	}
	// Network: roughly one-to-one (paper 0.98).
	if r.Network < 0.7 || r.Network > 1.4 {
		t.Fatalf("vm/dom0 net = %v", r.Network)
	}
}

func TestEnvAggregateDirection(t *testing.T) {
	vb, _, pb, _ := results(t)
	r := EnvAggregateRatios(vb, pb)
	// Non-virt needs several times dom0's CPU (paper 3.47).
	if r.CPU < 1.5 {
		t.Fatalf("env cpu ratio = %v", r.CPU)
	}
	// RAM and network roughly equal; disk lower non-virt.
	if r.RAM < 0.5 || r.RAM > 2 {
		t.Fatalf("env ram ratio = %v", r.RAM)
	}
	if r.Disk >= 1.2 {
		t.Fatalf("env disk ratio = %v, non-virt should not exceed dom0", r.Disk)
	}
}

func TestPhysicalDeltaDirections(t *testing.T) {
	vb, _, pb, _ := results(t)
	d := PhysicalDelta(vb, pb)
	// Paper: non-virt demands more physical CPU/RAM/net, less disk.
	if d.CPU <= 0 {
		t.Fatalf("cpu delta = %v, non-virt should demand more", d.CPU)
	}
	if d.Disk >= 0.2 {
		t.Fatalf("disk delta = %v, non-virt should not demand much more disk", d.Disk)
	}
	if d.Network < -0.3 || d.Network > 0.3 {
		t.Fatalf("net delta = %v, should be near zero", d.Network)
	}
}

func TestTierLagBounded(t *testing.T) {
	vb, _, _, _ := results(t)
	lag := TierLag(vb)
	if lag.LagSamples < 0 || lag.LagSamples > 10 {
		t.Fatalf("lag = %d samples", lag.LagSamples)
	}
	if lag.Correlation <= 0 {
		t.Fatalf("tiers should be positively correlated, got %v", lag.Correlation)
	}
	if lag.LagSeconds != float64(lag.LagSamples)*2 {
		t.Fatal("seconds/samples inconsistent")
	}
}

func TestRAMJumpDetectionOnRealTraces(t *testing.T) {
	vb, _, _, _ := results(t)
	jumps := RAMJumps(vb, experiment.TierWeb)
	for _, j := range jumps {
		if j.Magnitude() < 50 {
			t.Fatalf("detected jump below threshold: %+v", j)
		}
	}
	// FirstJumpTime agrees with RAMJumps.
	ft := FirstJumpTime(vb)
	if len(jumps) == 0 && ft != -1 {
		t.Fatalf("no jumps but FirstJumpTime = %v", ft)
	}
	if len(jumps) > 0 && ft < 0 {
		t.Fatal("jumps exist but FirstJumpTime negative")
	}
}

func TestDiskVarianceComparison(t *testing.T) {
	vb, _, pb, _ := results(t)
	virtCoV := DiskVariance(vb, experiment.TierWeb)
	physCoV := DiskVariance(pb, experiment.TierWeb)
	// Both traces are strongly bursty; the phys>virt ordering the paper
	// reports emerges at the full 600-sample scale (see EXPERIMENTS.md)
	// and is too noisy to assert on this shortened run.
	if virtCoV <= 0 || physCoV <= 0 {
		t.Fatalf("CoVs: virt=%v phys=%v", virtCoV, physCoV)
	}
}

func TestBuildAndWriteReport(t *testing.T) {
	vb, vd, pb, pd := results(t)
	rep := BuildReport(vb, vd, pb, pd)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Front-end / back-end", "VM aggregate / dom0",
		"Non-virtualized / virtualized", "Physical-demand delta",
		"6.11", "16.84", "3.47", "88%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestResourcesAndGet(t *testing.T) {
	if len(Resources()) != 4 {
		t.Fatal("four resource classes expected")
	}
	r := Ratios{CPU: 1, RAM: 2, Disk: 3, Network: 4}
	if r.Get(CPU) != 1 || r.Get(RAM) != 2 || r.Get(Disk) != 3 || r.Get(Network) != 4 {
		t.Fatal("Get mapping broken")
	}
	if r.Get(Resource("x")) != 0 {
		t.Fatal("unknown resource should be 0")
	}
}
