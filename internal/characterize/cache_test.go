package characterize

import (
	"bytes"
	"strings"
	"testing"

	"vwchar/internal/cachetier"
	"vwchar/internal/experiment"
	"vwchar/internal/sim"
)

func cacheRun(t *testing.T) *experiment.Result {
	t.Helper()
	cfg := experiment.DefaultConfig(experiment.Virtualized, experiment.MixBidding)
	cfg.Clients = 250
	cfg.Duration = 120 * sim.Second
	cfg.Seed = 42
	cache := cachetier.DefaultCacheSpec()
	cache.TTLSeconds = 10 // short TTL: expiries and re-fetches inside the run
	cfg.Cache = &cache
	queue := cachetier.DefaultQueueSpec()
	cfg.Queue = &queue
	r, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAnalyzeCacheEndToEnd pins the analysis on a live cache+queue run:
// the hit ratio matches the raw counters, convergence is detected with
// a plausible warmup, and the queue half reports the broker's ledger.
func TestAnalyzeCacheEndToEnd(t *testing.T) {
	r := cacheRun(t)
	a := AnalyzeCache(r)
	if a.Hits != r.Cache.Hits || a.Misses != r.Cache.Misses {
		t.Fatalf("analysis counters %d/%d != result %d/%d", a.Hits, a.Misses, r.Cache.Hits, r.Cache.Misses)
	}
	if want := r.Cache.HitRatio(); a.HitRatio != want {
		t.Fatalf("hit ratio %v != %v", a.HitRatio, want)
	}
	if a.HitRatio <= 0 || a.HitRatio >= 1 {
		t.Fatalf("hit ratio %v vacuous for a short-TTL run", a.HitRatio)
	}
	if !a.Converged {
		t.Fatal("2-minute steady run should converge to its run-level hit ratio")
	}
	if a.WarmupSec < 0 || a.WarmupSec > 120 {
		t.Fatalf("warmup %v s outside the run", a.WarmupSec)
	}
	if a.DBLoadSpikeFactor < 1 {
		t.Fatalf("DB load spike factor %v below its floor", a.DBLoadSpikeFactor)
	}
	if a.Published != r.Queue.Published || a.Drained != r.Queue.Drained {
		t.Fatalf("queue ledger mismatch: %+v vs %+v", a, r.Queue)
	}
	if a.Published == 0 {
		t.Fatal("bidding run published nothing")
	}

	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hit ratio", "queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeCacheWithoutTiers pins the degenerate form: a run with no
// cache or queue yields the neutral analysis (no spike, drained by
// construction) and a report that renders nothing misleading.
func TestAnalyzeCacheWithoutTiers(t *testing.T) {
	vb, _, _, _ := results(t)
	a := AnalyzeCache(vb)
	if a.Hits != 0 || a.Misses != 0 || a.Published != 0 {
		t.Fatalf("tier-less run produced tier counters: %+v", a)
	}
	if !a.DrainedByEnd || a.DBLoadSpikeFactor != 1 {
		t.Fatalf("neutral defaults wrong: %+v", a)
	}
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
}
