package characterize

import (
	"strings"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/faults"
	"vwchar/internal/sim"
	"vwchar/internal/telemetry"
	"vwchar/internal/tiers"
)

// TestAnalyzeCascadeSynthetic checks the blast-radius sweep, the
// overlap-chained cascade depth, the origin split, and the
// time-to-stabilize window math against a hand-built timeline.
func TestAnalyzeCascadeSynthetic(t *testing.T) {
	avail := seriesOf("availability", "fraction", 1, 1, 1, 1, 1, 0.9, 0.9, 0.9, 0.9, 1)
	p95 := seriesOf("p95", "ms", 100, 100, 100, 100, 100, 100, 100, 100, 100, 100)
	r := &experiment.Result{
		Config: experiment.Config{Duration: 100 * sim.Second},
		FaultTimeline: []faults.Event{
			{At: 10 * sim.Second, Kind: faults.WebDown, Target: 0},
			{At: 20 * sim.Second, Kind: faults.MachineDown, Target: 0, Origin: "rack0"},
			{At: 20 * sim.Second, Kind: faults.MachineDown, Target: 1, Origin: "rack0"},
			{At: 30 * sim.Second, Kind: faults.WebUp, Target: 0},
			{At: 50 * sim.Second, Kind: faults.MachineUp, Target: 0, Origin: "rack0"},
			{At: 50 * sim.Second, Kind: faults.MachineUp, Target: 1, Origin: "rack0"},
			// A storm crash with no matching up: the outage stays open
			// and must close at the horizon.
			{At: 80 * sim.Second, Kind: faults.WebDown, Target: 1, Origin: "squall"},
		},
		Hazard: &tiers.HazardStats{Crashes: []tiers.HazardCrash{
			{At: 25 * sim.Second, Replica: 2, Util: 3, RepairAt: 40 * sim.Second},
		}},
		Brownout: &tiers.BrownoutStats{DegradedWindows: 3, PeakLevel: 2, Dropped: 7},
		Requests: &experiment.RequestStats{Issued: 100, Served: 91, Degraded: 9, Failed: 0},
		Telemetry: &telemetry.WindowSeries{
			Availability: avail,
			LatencyP95:   p95,
			Throughput:   seriesOf("throughput", "req/s", 50, 50, 50, 50, 50, 50, 50, 50, 50, 50),
		},
	}
	a := AnalyzeCascade(r, 500)

	if a.ExogenousCrashes != 4 {
		t.Errorf("ExogenousCrashes = %d, want 4", a.ExogenousCrashes)
	}
	if a.HazardCrashes != 1 {
		t.Errorf("HazardCrashes = %d, want 1", a.HazardCrashes)
	}
	if a.ByOrigin["base"] != 1 || a.ByOrigin["rack0"] != 2 || a.ByOrigin["squall"] != 1 {
		t.Errorf("ByOrigin = %v, want base 1 / rack0 2 / squall 1", a.ByOrigin)
	}
	// t=25..30: web 0 down, both rack0 machines down, hazard crash 2.
	if a.BlastRadius != 4 {
		t.Errorf("BlastRadius = %d, want 4", a.BlastRadius)
	}
	// Spans [10,30] [20,50] [20,50] [25,40] chain by overlap; the
	// horizon-closed [80,100] starts a fresh chain of one.
	if a.CascadeDepth != 4 {
		t.Errorf("CascadeDepth = %d, want 4", a.CascadeDepth)
	}
	if a.FirstFaultSec != 10 {
		t.Errorf("FirstFaultSec = %v, want 10", a.FirstFaultSec)
	}
	// Last unhealthy window is index 8 (avail 0.9), so the unhealthy
	// era ends at (8+1)*2 s = 18 s: 8 s after the first fault, with a
	// healthy final window.
	if a.TimeToStabilizeSec != 8 {
		t.Errorf("TimeToStabilizeSec = %v, want 8", a.TimeToStabilizeSec)
	}
	if !a.Stabilized {
		t.Error("final window is healthy, Stabilized is false")
	}
	if a.DegradedWindows != 3 || a.PeakBrownoutLevel != 2 || a.DroppedOptional != 7 || a.DegradedRequests != 9 {
		t.Errorf("brownout accounting not copied through: %+v", a)
	}

	var sb strings.Builder
	if err := a.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4 exogenous crash(es)", "base 1, rack0 2, squall 1", "blast radius 4", "cascade depth 4", "stabilized"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}

	// An unhealthy final window flips the verdict.
	avail.Values[len(avail.Values)-1] = 0.8
	if a := AnalyzeCascade(r, 500); a.Stabilized {
		t.Error("final window unhealthy, Stabilized is true")
	}
}

// TestAnalyzeCascadeFaultFree pins the healthy-run shape.
func TestAnalyzeCascadeFaultFree(t *testing.T) {
	a := AnalyzeCascade(&experiment.Result{Config: experiment.Config{Duration: 60 * sim.Second}}, 500)
	if a.ExogenousCrashes != 0 || a.HazardCrashes != 0 || a.BlastRadius != 0 || a.CascadeDepth != 0 {
		t.Errorf("fault-free run reports crashes: %+v", a)
	}
	if !a.Stabilized {
		t.Error("fault-free run not stabilized")
	}
}
