package characterize

import (
	"fmt"
	"io"

	"vwchar/internal/timeseries"
)

// TransientConfig parameterizes AnalyzeTransient. The zero value gets
// the defaults below.
type TransientConfig struct {
	// BaselineFraction of the series (from the start) estimates the
	// steady-state p95; default 0.25. The baseline median ignores idle
	// (zero) windows so sparse early traffic does not zero the
	// threshold.
	BaselineFraction float64
	// SaturationFactor times the steady p95 is the saturation
	// threshold; default 10 — an order of magnitude of queueing, the
	// bar the flash-crowd example prints.
	SaturationFactor float64
}

func (c *TransientConfig) defaults() {
	if c.BaselineFraction <= 0 {
		c.BaselineFraction = 0.25
	}
	if c.SaturationFactor <= 1 {
		c.SaturationFactor = 10
	}
}

// Transient is the time-resolved queueing analysis of a per-window
// latency series — what a run-level scalar cannot show: when the
// system saturated, how bad the peak window was, and how long the
// queue took to drain once the spike passed.
type Transient struct {
	// SteadyP95 is the baseline per-window p95 (ms) and Threshold the
	// saturation bar derived from it.
	SteadyP95, Threshold float64
	// PeakP95 is the worst window's p95 (ms) at time PeakAt (s).
	PeakP95, PeakAt float64
	// SaturatedAt is the time (s) of the first window whose p95
	// crossed the threshold — the time to saturation; -1 when the run
	// never saturated.
	SaturatedAt float64
	// DrainedAt is the time (s) of the first post-peak window back
	// under the threshold; -1 while still saturated at series end.
	DrainedAt float64
	// DrainSeconds is DrainedAt - PeakAt (0 when either is undefined).
	DrainSeconds float64
	// SaturatedWindows counts windows above the threshold.
	SaturatedWindows int
}

// Saturated reports whether the series ever crossed the threshold.
func (t Transient) Saturated() bool { return t.SaturatedAt >= 0 }

// AnalyzeTransient computes the queueing transient of a windowed
// latency series (typically Result.Telemetry.LatencyP95). The steady
// baseline is the median of the non-idle prefix windows; saturation is
// the first crossing of factor×steady; drain is the first post-peak
// window back under the threshold.
func AnalyzeTransient(p95 *timeseries.Series, cfg TransientConfig) Transient {
	cfg.defaults()
	out := Transient{SaturatedAt: -1, DrainedAt: -1}
	n := p95.Len()
	if n == 0 {
		return out
	}
	baseLen := int(float64(n) * cfg.BaselineFraction)
	if baseLen < 1 {
		baseLen = 1
	}
	base := make([]float64, 0, baseLen)
	for i := 0; i < baseLen; i++ {
		if v := p95.At(i); v > 0 {
			base = append(base, v)
		}
	}
	baseline := timeseries.Series{Values: base}
	out.SteadyP95 = baseline.Quantile(0.5)
	if out.SteadyP95 <= 0 {
		// No usable baseline (the spike was already underway, or the
		// run never served traffic): report the peak only.
		out.PeakP95, out.PeakAt = peakOf(p95)
		return out
	}
	out.Threshold = out.SteadyP95 * cfg.SaturationFactor

	peakIdx := 0
	for i := 0; i < n; i++ {
		v := p95.At(i)
		if v > p95.At(peakIdx) {
			peakIdx = i
		}
		if v > out.Threshold {
			out.SaturatedWindows++
			if out.SaturatedAt < 0 {
				out.SaturatedAt = p95.TimeAt(i)
			}
		}
	}
	out.PeakP95, out.PeakAt = p95.At(peakIdx), p95.TimeAt(peakIdx)
	if out.SaturatedAt < 0 {
		return out
	}
	for i := peakIdx + 1; i < n; i++ {
		if p95.At(i) <= out.Threshold {
			out.DrainedAt = p95.TimeAt(i)
			out.DrainSeconds = out.DrainedAt - out.PeakAt
			break
		}
	}
	return out
}

func peakOf(s *timeseries.Series) (peak, at float64) {
	for i := 0; i < s.Len(); i++ {
		if v := s.At(i); v > peak {
			peak, at = v, s.TimeAt(i)
		}
	}
	return peak, at
}

// Write renders the transient for reports and the flash-crowd example.
func (t Transient) Write(w io.Writer) error {
	if t.Threshold <= 0 {
		_, err := fmt.Fprintf(w,
			"no usable steady baseline (idle or already-saturated prefix): peak p95 %.1f ms at t=%.0fs\n",
			t.PeakP95, t.PeakAt)
		return err
	}
	if !t.Saturated() {
		_, err := fmt.Fprintf(w,
			"no saturation transient: steady p95 %.1f ms, peak %.1f ms at t=%.0fs (threshold %.1f ms never crossed)\n",
			t.SteadyP95, t.PeakP95, t.PeakAt, t.Threshold)
		return err
	}
	drained := "not drained by series end"
	if t.DrainedAt >= 0 {
		drained = fmt.Sprintf("drained at t=%.0fs (%.0f s after the peak)", t.DrainedAt, t.DrainSeconds)
	}
	_, err := fmt.Fprintf(w,
		"saturation transient: steady p95 %.1f ms -> first crossed %.0fx at t=%.0fs, peak %.1f ms at t=%.0fs, %s (%d windows above threshold)\n",
		t.SteadyP95, t.Threshold/t.SteadyP95, t.SaturatedAt, t.PeakP95, t.PeakAt, drained, t.SaturatedWindows)
	return err
}
