package characterize

import (
	"fmt"
	"io"

	"vwchar/internal/experiment"
)

// CacheAnalysis is the cache-and-queue view of a run: how fast the
// cache warmed up, how hard hot-key expiries hit the DB (the
// thundering-herd miss storm), and how the write-behind broker absorbed
// and drained its backlog. It is the caching counterpart of
// AvailabilityAnalysis and reads the window series AnalyzeCache's
// companions leave in Result.Telemetry.
type CacheAnalysis struct {
	// Run-level cache accounting (zero without a Cache spec).
	HitRatio        float64
	Hits, Misses    uint64
	Stampedes       uint64
	StampedeFetches uint64
	Evictions       uint64
	Invalidations   uint64
	ColdRestarts    uint64

	// Warmup convergence: WarmupSec is when the per-window hit ratio
	// first reached ConvergenceFraction of the run-level ratio and the
	// cold cache stopped dominating DB load. Converged is false when the
	// run ended before that (or there was no cache).
	Converged bool
	WarmupSec float64

	// Miss-storm blast. PeakStampedes is the worst single window's
	// stampede count (herds forming on an expired hot key) and
	// PeakStampedeAtSec its window end. DBLoadSpikeFactor is the peak
	// windowed DB fall-through load (misses per second) relative to the
	// median window — the blast radius a hot-key expiry pushes onto the
	// DB tier; 1 means no storm.
	PeakStampedes     float64
	PeakStampedeAtSec float64
	DBLoadSpikeFactor float64

	// Write-behind accounting (zero without a Queue spec).
	Published    uint64
	Drained      uint64
	Overflows    uint64
	Redeliveries uint64
	PeakDepth    int
	FinalDepth   int
	MaxLagMs     float64

	// Backlog drain: BacklogDrainSec is the time from the peak-depth
	// window until the backlog first emptied again. DrainedByEnd is
	// false when the run ended with backlog still buffered.
	BacklogDrainSec float64
	DrainedByEnd    bool
}

// ConvergenceFraction is the share of the run-level hit ratio a window
// must reach for the cache to count as warmed up.
const ConvergenceFraction = 0.9

// AnalyzeCache computes the cache/queue analysis of a run. On a run
// without Cache or Queue specs everything reports zero (and Converged
// and DrainedByEnd report false/true vacuously).
func AnalyzeCache(r *experiment.Result) CacheAnalysis {
	a := CacheAnalysis{DrainedByEnd: true, DBLoadSpikeFactor: 1}
	if c := r.Cache; c != nil {
		a.HitRatio = c.HitRatio()
		a.Hits, a.Misses = c.Hits, c.Misses
		a.Stampedes = c.Stampedes
		a.StampedeFetches = c.StampedeFetches
		a.Evictions = c.Evictions
		a.Invalidations = c.Invalidations
		a.ColdRestarts = c.ColdRestarts
	}
	if q := r.Queue; q != nil {
		a.Published = q.Published
		a.Drained = q.Drained
		a.Overflows = q.Overflows
		a.Redeliveries = q.Redeliveries
		a.PeakDepth = q.PeakDepth
		a.FinalDepth = q.FinalDepth
		a.MaxLagMs = q.MaxLagMs
		a.DrainedByEnd = q.FinalDepth == 0
	}
	tel := r.Telemetry
	if tel == nil {
		return a
	}
	if hr := tel.HitRatio; hr != nil && r.Cache != nil {
		// Warmup: first window at ConvergenceFraction of the run ratio.
		target := ConvergenceFraction * a.HitRatio
		for i := 0; i < hr.Len(); i++ {
			if hr.At(i) >= target && target > 0 {
				a.Converged = true
				a.WarmupSec = float64(i+1) * hr.Interval
				break
			}
		}
		// Miss-storm blast radius: the peak windowed fall-through load
		// (misses/s = (1-hit ratio) x throughput) against the median
		// window, ignoring the warmup prefix where a cold cache misses
		// by construction.
		tput := tel.Throughput
		start := 0
		if a.Converged {
			start = int(a.WarmupSec/hr.Interval) - 1
		}
		var loads []float64
		for i := start; i < hr.Len() && i < tput.Len(); i++ {
			if tput.At(i) > 0 {
				loads = append(loads, (1-hr.At(i))*tput.At(i))
			}
		}
		if med := median(loads); med > 0 {
			peak := 0.0
			for _, v := range loads {
				if v > peak {
					peak = v
				}
			}
			a.DBLoadSpikeFactor = peak / med
		}
	}
	if st := tel.Stampedes; st != nil && r.Cache != nil {
		for i := 0; i < st.Len(); i++ {
			if v := st.At(i); v > a.PeakStampedes {
				a.PeakStampedes = v
				a.PeakStampedeAtSec = float64(i+1) * st.Interval
			}
		}
	}
	if qd := tel.QueueDepth; qd != nil && r.Queue != nil && a.PeakDepth > 0 {
		peakIdx := -1
		for i := 0; i < qd.Len(); i++ {
			if int(qd.At(i)) >= a.PeakDepth {
				peakIdx = i
				break
			}
		}
		if peakIdx >= 0 {
			for j := peakIdx; j < qd.Len(); j++ {
				if qd.At(j) == 0 {
					a.BacklogDrainSec = float64(j-peakIdx) * qd.Interval
					break
				}
			}
		}
	}
	return a
}

// median returns the middle value of vs (averaging the two middles for
// even lengths) without mutating the input; zero for empty input.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Write renders the analysis for reports and the cachetier example.
func (a CacheAnalysis) Write(w io.Writer) error {
	warm := "never converged"
	if a.Converged {
		warm = fmt.Sprintf("warmed up in %.0f s", a.WarmupSec)
	}
	storm := "no stampedes"
	if a.Stampedes > 0 {
		storm = fmt.Sprintf("%d stampede(s) (%d herd fetches), worst window %.0f at %.0f s",
			a.Stampedes, a.StampedeFetches, a.PeakStampedes, a.PeakStampedeAtSec)
	}
	if _, err := fmt.Fprintf(w,
		"cache: hit ratio %.3f (%d hits / %d misses), %s; %s\n"+
			"       DB load spike factor %.1fx; %d evictions, %d invalidations, %d cold restart(s)\n",
		a.HitRatio, a.Hits, a.Misses, warm, storm,
		a.DBLoadSpikeFactor, a.Evictions, a.Invalidations, a.ColdRestarts); err != nil {
		return err
	}
	if a.Published == 0 && a.Overflows == 0 {
		return nil
	}
	drain := fmt.Sprintf("backlog drained in %.0f s", a.BacklogDrainSec)
	if !a.DrainedByEnd {
		drain = fmt.Sprintf("%d writes STILL BUFFERED at run end", a.FinalDepth)
	}
	_, err := fmt.Fprintf(w,
		"queue: %d published / %d drained (%d overflows, %d redeliveries), peak depth %d, max lag %.0f ms; %s\n",
		a.Published, a.Drained, a.Overflows, a.Redeliveries, a.PeakDepth, a.MaxLagMs, drain)
	return err
}
