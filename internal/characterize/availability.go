package characterize

import (
	"fmt"
	"io"

	"vwchar/internal/experiment"
)

// AvailabilityAnalysis is the fault-injection view of a run: what
// fraction of offered demand was actually delivered, how the rest was
// lost (timeouts, sheds, hard failures), how long outages lasted as
// the clients observed them, how fast failover promoted a new DB
// primary, and how much SLO debt accrued specifically inside degraded
// windows. It is the availability counterpart of ScalingAnalysis.
type AvailabilityAnalysis struct {
	// SLOMillis is the objective fault-attributable debt is accounted
	// against.
	SLOMillis float64

	// Request accounting (from Result.Requests).
	Issued   uint64
	Served   uint64
	TimedOut uint64
	Shed     uint64
	Failed   uint64
	Degraded uint64
	InFlight uint64

	// Delivered is served / (issued - in-flight): the fraction of
	// demand with a concluded outcome that got a real response.
	Delivered float64

	// Guard interventions (zero without a Resilience spec).
	Retries      uint64
	BreakerOpens uint64

	// Failovers counts DB primary promotions;
	// MeanTimeToFailoverSec is the mean promoted-minus-detected gap.
	Failovers             int
	MeanTimeToFailoverSec float64

	// Outages counts maximal runs of telemetry windows whose
	// availability dropped below 99%; MTTRObservedSec is their mean
	// length — repair time as the clients experienced it, not as the
	// fault schedule wrote it. OpenOutageAtEnd reports an outage still
	// in progress when the run's horizon cut it off: its observed
	// length (and so the MTTR mean) is a lower bound, and the system
	// never demonstrated recovery from it.
	Outages         int
	MTTRObservedSec float64
	OpenOutageAtEnd bool

	// WorstWindowAvailability is the minimum per-window availability;
	// FaultWindows counts windows below 100%.
	WorstWindowAvailability float64
	FaultWindows            int

	// SLODebtFaultSec approximates the SLO exceedance accrued inside
	// degraded windows (availability < 1 and window p95 over the SLO):
	// sum of (p95-SLO) x window throughput x interval. Tail latency
	// the faults caused, as opposed to the run-level debt
	// AnalyzeScaling reports.
	SLODebtFaultSec float64
}

// outageThreshold is the per-window availability below which a window
// counts as an outage for MTTR-as-observed accounting.
const outageThreshold = 0.99

// AnalyzeAvailability computes the availability analysis of a run
// against an SLO in milliseconds. It is meaningful for runs with
// Faults or Resilience configured; on a fault-free run everything
// reports healthy (Delivered 1, no outages).
func AnalyzeAvailability(r *experiment.Result, sloMillis float64) AvailabilityAnalysis {
	a := AvailabilityAnalysis{SLOMillis: sloMillis, Delivered: 1, WorstWindowAvailability: 1}
	if rq := r.Requests; rq != nil {
		a.Issued = rq.Issued
		a.Served = rq.Served
		a.TimedOut = rq.TimedOut
		a.Shed = rq.Shed
		a.Failed = rq.Failed
		a.Degraded = rq.Degraded
		a.InFlight = rq.InFlight
		if concluded := rq.Issued - rq.InFlight; concluded > 0 {
			a.Delivered = float64(rq.Served) / float64(concluded)
		}
	}
	if g := r.Guard; g != nil {
		a.Retries = g.Retries
		a.BreakerOpens = g.BreakerOpens
	}
	a.Failovers = len(r.Failovers)
	for _, f := range r.Failovers {
		a.MeanTimeToFailoverSec += (f.PromotedAt - f.DetectedAt).Sec()
	}
	if a.Failovers > 0 {
		a.MeanTimeToFailoverSec /= float64(a.Failovers)
	}
	if r.Telemetry == nil || r.Telemetry.Availability == nil {
		return a
	}
	avail := r.Telemetry.Availability
	p95 := r.Telemetry.LatencyP95
	tput := r.Telemetry.Throughput
	outageWindows := 0
	inOutage := false
	for i := 0; i < avail.Len(); i++ {
		v := avail.At(i)
		if v < a.WorstWindowAvailability {
			a.WorstWindowAvailability = v
		}
		if v < 1 {
			a.FaultWindows++
			if p := p95.At(i); p > sloMillis {
				a.SLODebtFaultSec += (p - sloMillis) / 1e3 * tput.At(i) * avail.Interval
			}
		}
		if v < outageThreshold {
			outageWindows++
			if !inOutage {
				inOutage = true
				a.Outages++
			}
		} else {
			inOutage = false
		}
	}
	a.OpenOutageAtEnd = inOutage
	if a.Outages > 0 {
		a.MTTRObservedSec = float64(outageWindows) * avail.Interval / float64(a.Outages)
	}
	return a
}

// Write renders the analysis for reports and the chaos example.
func (a AvailabilityAnalysis) Write(w io.Writer) error {
	failover := "no failovers"
	if a.Failovers > 0 {
		failover = fmt.Sprintf("%d failover(s), mean time-to-failover %.1f s", a.Failovers, a.MeanTimeToFailoverSec)
	}
	outage := "no outage windows"
	if a.Outages > 0 {
		outage = fmt.Sprintf("%d outage(s), MTTR-as-observed %.1f s", a.Outages, a.MTTRObservedSec)
		if a.OpenOutageAtEnd {
			outage += " (STILL OPEN at run end)"
		}
	}
	degraded := ""
	if a.Degraded > 0 {
		degraded = fmt.Sprintf(" (%d degraded)", a.Degraded)
	}
	_, err := fmt.Fprintf(w,
		"availability: %.4f delivered (%d served / %d timed-out / %d shed / %d failed of %d issued, %d in flight)"+degraded+"\n"+
			"retries %d, breaker opens %d; %s\n"+
			"%s; worst window %.3f, %d degraded windows, fault-attributed SLO debt %.1f s (SLO %.0f ms)\n",
		a.Delivered, a.Served, a.TimedOut, a.Shed, a.Failed, a.Issued, a.InFlight,
		a.Retries, a.BreakerOpens, failover,
		outage, a.WorstWindowAvailability, a.FaultWindows, a.SLODebtFaultSec, a.SLOMillis)
	return err
}
