package characterize

import (
	"strings"
	"testing"

	"vwchar/internal/timeseries"
)

func p95Series(values ...float64) *timeseries.Series {
	return &timeseries.Series{Name: "latency_p95_ms", Unit: "ms", Interval: 2, Values: values}
}

// TestAnalyzeTransientSpike pins the three headline numbers on a
// synthetic flash crowd: time-to-saturation, peak-window p95, and
// drain time after the spike.
func TestAnalyzeTransientSpike(t *testing.T) {
	s := p95Series(
		10, 10, 10, 10, 10, 10, 10, 10, 10, 10, // steady baseline
		150, 900, 2500, 1200, 300, // the spike: crosses 10x at t=20, peaks at t=24
		50, 20, 12, 10, 10, // drained
	)
	tr := AnalyzeTransient(s, TransientConfig{})
	if tr.SteadyP95 != 10 || tr.Threshold != 100 {
		t.Fatalf("baseline %v threshold %v", tr.SteadyP95, tr.Threshold)
	}
	if !tr.Saturated() || tr.SaturatedAt != 20 {
		t.Fatalf("time to saturation = %v, want 20", tr.SaturatedAt)
	}
	if tr.PeakP95 != 2500 || tr.PeakAt != 24 {
		t.Fatalf("peak %v at %v", tr.PeakP95, tr.PeakAt)
	}
	if tr.DrainedAt != 30 || tr.DrainSeconds != 6 {
		t.Fatalf("drain at %v (%v s), want 30 (6 s)", tr.DrainedAt, tr.DrainSeconds)
	}
	if tr.SaturatedWindows != 5 {
		t.Fatalf("saturated windows = %d", tr.SaturatedWindows)
	}
	var b strings.Builder
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t=20s") || !strings.Contains(b.String(), "2500.0 ms") {
		t.Fatalf("rendering lost the numbers: %s", b.String())
	}
}

// TestAnalyzeTransientNoSaturation pins the quiet case: a steady run
// reports its baseline and peak but no transient.
func TestAnalyzeTransientNoSaturation(t *testing.T) {
	s := p95Series(10, 11, 12, 11, 10, 12, 13, 11, 10, 11)
	tr := AnalyzeTransient(s, TransientConfig{})
	if tr.Saturated() || tr.SaturatedWindows != 0 {
		t.Fatalf("steady series saturated: %+v", tr)
	}
	if tr.DrainedAt != -1 || tr.DrainSeconds != 0 {
		t.Fatalf("drain on a steady series: %+v", tr)
	}
	if tr.PeakP95 != 13 {
		t.Fatalf("peak %v", tr.PeakP95)
	}
	var b strings.Builder
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no saturation") {
		t.Fatalf("quiet rendering wrong: %s", b.String())
	}
}

// TestAnalyzeTransientEdgeCases covers empty series, an idle baseline
// (only the peak is reportable), a still-saturated series end, and
// idle windows inside the baseline.
func TestAnalyzeTransientEdgeCases(t *testing.T) {
	if tr := AnalyzeTransient(p95Series(), TransientConfig{}); tr.Saturated() || tr.PeakP95 != 0 {
		t.Fatalf("empty series: %+v", tr)
	}
	// All-zero baseline: no threshold to cross, and the rendering says
	// the baseline was unusable rather than reporting a 0 ms threshold.
	tr := AnalyzeTransient(p95Series(0, 0, 0, 0, 5000, 6000, 4000, 0), TransientConfig{})
	if tr.Saturated() || tr.PeakP95 != 6000 {
		t.Fatalf("idle-baseline series: %+v", tr)
	}
	var b strings.Builder
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no usable steady baseline") {
		t.Fatalf("idle-baseline rendering wrong: %s", b.String())
	}
	// Saturated through the end: no drain observed.
	tr = AnalyzeTransient(p95Series(10, 10, 10, 10, 10, 10, 10, 10, 500, 900, 1500, 1500), TransientConfig{})
	if !tr.Saturated() || tr.DrainedAt != -1 {
		t.Fatalf("undrained series: %+v", tr)
	}
	// Idle windows inside the baseline are skipped, not averaged in.
	tr = AnalyzeTransient(p95Series(0, 10, 0, 10, 10, 10, 10, 10, 10, 10, 10, 10, 300, 10, 10, 10), TransientConfig{})
	if tr.SteadyP95 != 10 {
		t.Fatalf("sparse baseline median = %v, want 10", tr.SteadyP95)
	}
	if !tr.Saturated() || tr.SaturatedAt != 24 {
		t.Fatalf("sparse-baseline transient: %+v", tr)
	}
	// Config knobs are honored.
	tr = AnalyzeTransient(p95Series(10, 10, 10, 10, 40, 40, 10, 10), TransientConfig{BaselineFraction: 0.5, SaturationFactor: 3})
	if !tr.Saturated() || tr.Threshold != 30 {
		t.Fatalf("custom config: %+v", tr)
	}
}
