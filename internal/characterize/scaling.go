package characterize

import (
	"fmt"
	"io"

	"vwchar/internal/experiment"
)

// ScalingAnalysis is the autoscaler-in-the-loop view of a run: how
// long the first capacity addition took, how far the cluster grew, how
// bad the worst window was, and the run's SLO debt split into demand
// served slowly versus demand driven away (sessions abandoning after a
// violating response). The two debt halves answer different questions:
// served-slow is user pain the site absorbed; driven-away is revenue
// the site lost.
type ScalingAnalysis struct {
	// SLOMillis is the objective the debt is accounted against.
	SLOMillis float64

	// TimeToScaleSec is the first scale-up's activation time in seconds
	// from run start (boot delay included); -1 when the run never scaled
	// (no autoscaler, or it never fired).
	TimeToScaleSec float64
	PeakReplicas   int
	ScaleUps       int
	ScaleDowns     int

	// PeakP95 is the worst telemetry window's p95 (ms) at PeakAt (s).
	PeakP95, PeakAt float64

	// Served counts every completed response; SLOViolations those over
	// the objective. DrivenAway is the subset of violations that ended
	// their session (abandonment); ServedSlow the rest.
	Served        uint64
	SLOViolations uint64
	ServedSlow    uint64
	DrivenAway    uint64

	// ServedDebtSec and DrivenAwayDebtSec split the total exceedance
	// sum(max(0, rt-SLO)) in seconds between the two halves, at
	// histogram resolution.
	ServedDebtSec     float64
	DrivenAwayDebtSec float64
}

// Scaled reports whether the run ever added capacity.
func (a ScalingAnalysis) Scaled() bool { return a.TimeToScaleSec >= 0 }

// TotalDebtSec is the run's whole SLO debt in seconds.
func (a ScalingAnalysis) TotalDebtSec() float64 { return a.ServedDebtSec + a.DrivenAwayDebtSec }

// AnalyzeScaling computes the scaling analysis of a run against an SLO
// in milliseconds. It needs the run histograms (always present) and
// uses Result.Scaling when the run had a cluster topology; without one
// the capacity fields report a fixed single replica.
func AnalyzeScaling(r *experiment.Result, sloMillis float64) ScalingAnalysis {
	a := ScalingAnalysis{SLOMillis: sloMillis, TimeToScaleSec: -1, PeakReplicas: 1}
	if r.Scaling != nil {
		a.PeakReplicas = r.Scaling.PeakReplicas
		a.ScaleUps = r.Scaling.ScaleUps
		a.ScaleDowns = r.Scaling.ScaleDowns
		if r.Scaling.ScaleUps > 0 {
			a.TimeToScaleSec = r.Scaling.FirstUpAt.Sec()
		}
	}
	if r.Telemetry != nil {
		a.PeakP95, a.PeakAt = peakOf(r.Telemetry.LatencyP95)
	}
	slo := sloMillis / 1e3
	if served := r.ServedHist; served != nil {
		a.Served = served.Count()
		a.SLOViolations = served.CountAbove(slo)
		debt := served.ExcessAbove(slo)
		if ab := r.AbandonedHist; ab != nil {
			// Abandoned responses are recorded in the served histogram
			// too (they were served, just slowly); subtract them out to
			// split the debt rather than double-count it.
			a.DrivenAway = ab.CountAbove(slo)
			a.DrivenAwayDebtSec = ab.ExcessAbove(slo)
		}
		a.ServedSlow = a.SLOViolations - a.DrivenAway
		a.ServedDebtSec = debt - a.DrivenAwayDebtSec
		if a.ServedDebtSec < 0 {
			a.ServedDebtSec = 0
		}
	}
	return a
}

// Write renders the analysis for reports and the autoscale example.
func (a ScalingAnalysis) Write(w io.Writer) error {
	scale := "never scaled (fixed capacity)"
	if a.Scaled() {
		scale = fmt.Sprintf("first scale-up active at t=%.0fs; %d up / %d down, peak %d replicas",
			a.TimeToScaleSec, a.ScaleUps, a.ScaleDowns, a.PeakReplicas)
	}
	_, err := fmt.Fprintf(w,
		"scaling: %s\npeak window p95 %.1f ms at t=%.0fs\nSLO %.0f ms: %d/%d responses violated; debt %.1f s served-slow + %.1f s driven-away (%d sessions lost)\n",
		scale, a.PeakP95, a.PeakAt,
		a.SLOMillis, a.SLOViolations, a.Served,
		a.ServedDebtSec, a.DrivenAwayDebtSec, a.DrivenAway)
	return err
}
