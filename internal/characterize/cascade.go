package characterize

import (
	"fmt"
	"io"
	"sort"

	"vwchar/internal/experiment"
	"vwchar/internal/faults"
	"vwchar/internal/sim"
)

// CascadeAnalysis is the correlated-failure view of a run: how many
// components went down, how correlated those losses were in time
// (blast radius, cascade depth), where the crashes came from
// (exogenous schedule features vs the load-coupled hazard), and how
// long the system took to deliver healthy service again after the
// first fault. It is the counterpart of AvailabilityAnalysis for runs
// that exercise shared-fate groups, fault storms, conditional
// triggers, or the endogenous crash hazard.
type CascadeAnalysis struct {
	// SLOMillis is the objective "stabilized" is judged against.
	SLOMillis float64

	// ExogenousCrashes counts crash-type down events in the expanded
	// fault timeline (web/db/machine); HazardCrashes counts crashes
	// the load-coupled hazard fired in-run. ByOrigin splits the
	// exogenous crashes by the correlation feature that produced them
	// ("base" for plain per-component events).
	ExogenousCrashes int
	HazardCrashes    int
	ByOrigin         map[string]int

	// BlastRadius is the peak number of components concurrently down
	// at any instant (exogenous outage spans plus hazard crash spans).
	// CascadeDepth is the size of the largest chain of crashes
	// connected by temporal overlap — 1 means every crash healed
	// before the next began; larger values mean losses compounded.
	BlastRadius  int
	CascadeDepth int

	// FirstFaultSec is when the first component went down.
	// TimeToStabilizeSec spans from that instant to the end of the
	// last telemetry window that was still unhealthy (availability
	// below 1 or p95 over the SLO). Stabilized reports whether the
	// run's final window was healthy — when false the time-to-
	// stabilize is a lower bound cut off by the horizon.
	FirstFaultSec      float64
	TimeToStabilizeSec float64
	Stabilized         bool

	// Brownout accounting (zero without an overload controller).
	DegradedWindows   int
	PeakBrownoutLevel int
	DroppedOptional   uint64
	DegradedRequests  uint64
}

// downSpan is one component outage interval on the run clock.
type downSpan struct {
	lo, hi sim.Time
}

// crashDown reports whether k is a crash-type down event; degraded-
// mode events (slow/lag/delay) are not component losses and do not
// count toward the blast radius. crashUp maps an up event back to its
// down kind.
func crashDown(k faults.Kind) bool {
	return k == faults.WebDown || k == faults.DBDown || k == faults.MachineDown
}

func crashUp(k faults.Kind) (faults.Kind, bool) {
	switch k {
	case faults.WebUp:
		return faults.WebDown, true
	case faults.DBUp:
		return faults.DBDown, true
	case faults.MachineUp:
		return faults.MachineDown, true
	}
	return 0, false
}

// AnalyzeCascade computes the correlated-failure analysis of a run
// against an SLO in milliseconds. It is meaningful for runs with a
// fault schedule, correlation, or hazard configured; on a fault-free
// run everything reports healthy (no crashes, Stabilized true).
func AnalyzeCascade(r *experiment.Result, sloMillis float64) CascadeAnalysis {
	a := CascadeAnalysis{SLOMillis: sloMillis, Stabilized: true, ByOrigin: map[string]int{}}
	horizon := r.Config.Duration

	// Collect outage spans: pair each crash-type down event with its
	// matching up event per (kind, target); an outage still open at
	// the horizon closes there.
	var spans []downSpan
	open := map[[2]int]sim.Time{} // (down kind, target) -> down time
	for _, ev := range r.FaultTimeline {
		if crashDown(ev.Kind) {
			key := [2]int{int(ev.Kind), ev.Target}
			if _, dup := open[key]; !dup {
				open[key] = ev.At
			}
			a.ExogenousCrashes++
			origin := ev.Origin
			if origin == "" {
				origin = "base"
			}
			a.ByOrigin[origin]++
		} else if down, ok := crashUp(ev.Kind); ok {
			key := [2]int{int(down), ev.Target}
			if at, ok := open[key]; ok {
				spans = append(spans, downSpan{at, ev.At})
				delete(open, key)
			}
		}
	}
	for _, at := range open {
		spans = append(spans, downSpan{at, horizon})
	}
	if h := r.Hazard; h != nil {
		a.HazardCrashes = len(h.Crashes)
		for _, c := range h.Crashes {
			hi := c.RepairAt
			if hi == 0 || hi > horizon {
				hi = horizon
			}
			spans = append(spans, downSpan{c.At, hi})
		}
	}

	if len(spans) > 0 {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		a.FirstFaultSec = spans[0].lo.Sec()

		// Blast radius: peak overlap via an endpoint sweep.
		type edge struct {
			at    sim.Time
			delta int
		}
		edges := make([]edge, 0, 2*len(spans))
		for _, s := range spans {
			edges = append(edges, edge{s.lo, +1}, edge{s.hi, -1})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].delta < edges[j].delta // close before open at ties
		})
		cur := 0
		for _, e := range edges {
			cur += e.delta
			if cur > a.BlastRadius {
				a.BlastRadius = cur
			}
		}

		// Cascade depth: largest run of spans chained by overlap.
		depth, chainEnd := 0, sim.Time(-1)
		for _, s := range spans {
			if s.lo <= chainEnd {
				depth++
				if s.hi > chainEnd {
					chainEnd = s.hi
				}
			} else {
				depth = 1
				chainEnd = s.hi
			}
			if depth > a.CascadeDepth {
				a.CascadeDepth = depth
			}
		}
	}

	if b := r.Brownout; b != nil {
		a.DegradedWindows = b.DegradedWindows
		a.PeakBrownoutLevel = b.PeakLevel
		a.DroppedOptional = b.Dropped
	}
	if rq := r.Requests; rq != nil {
		a.DegradedRequests = rq.Degraded
	}

	// Time to stabilize: from the first fault to the end of the last
	// unhealthy telemetry window.
	if len(spans) > 0 && r.Telemetry != nil && r.Telemetry.Availability != nil {
		avail, p95 := r.Telemetry.Availability, r.Telemetry.LatencyP95
		lastBad := -1
		for i := 0; i < avail.Len(); i++ {
			if avail.At(i) < 1 || p95.At(i) > sloMillis {
				lastBad = i
			}
		}
		if lastBad >= 0 {
			end := float64(lastBad+1) * avail.Interval
			if end > a.FirstFaultSec {
				a.TimeToStabilizeSec = end - a.FirstFaultSec
			}
			a.Stabilized = lastBad < avail.Len()-1
		}
	}
	return a
}

// Write renders the analysis for reports and the cascade example.
func (a CascadeAnalysis) Write(w io.Writer) error {
	origins := make([]string, 0, len(a.ByOrigin))
	for o := range a.ByOrigin {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	split := ""
	for _, o := range origins {
		if split != "" {
			split += ", "
		}
		split += fmt.Sprintf("%s %d", o, a.ByOrigin[o])
	}
	if split == "" {
		split = "none"
	}
	stable := "stabilized"
	if !a.Stabilized {
		stable = "NOT stabilized at horizon"
	}
	_, err := fmt.Fprintf(w,
		"cascade: %d exogenous crash(es) [%s], %d hazard crash(es); blast radius %d, cascade depth %d\n"+
			"first fault t=%.1f s, time-to-stabilize %.1f s (%s)\n"+
			"brownout: %d degraded window(s), peak level %d, %d optional request(s) dropped, %d answered degraded\n",
		a.ExogenousCrashes, split, a.HazardCrashes, a.BlastRadius, a.CascadeDepth,
		a.FirstFaultSec, a.TimeToStabilizeSec, stable,
		a.DegradedWindows, a.PeakBrownoutLevel, a.DroppedOptional, a.DegradedRequests)
	return err
}
