// Package characterize computes the paper's analyses over collected
// traces: per-resource tier comparisons (§4.1), VM-aggregate versus
// hypervisor ratios (§4.1), virtualized versus non-virtualized
// comparisons (§4.2), inter-tier lag, RAM jump detection, and disk
// variance comparison.
package characterize

import (
	"fmt"
	"io"

	"vwchar/internal/experiment"
	"vwchar/internal/stats"
	"vwchar/internal/timeseries"
)

// Resource names the four resource classes the paper compares.
type Resource string

// The four resources.
const (
	CPU     Resource = "cpu"
	RAM     Resource = "ram"
	Disk    Resource = "disk"
	Network Resource = "network"
)

// Resources lists them in the paper's order.
func Resources() []Resource { return []Resource{CPU, RAM, Disk, Network} }

func tierSeries(r *experiment.Result, tier string, res Resource) *timeseries.Series {
	switch res {
	case CPU:
		return r.CPU(tier)
	case RAM:
		return r.Mem(tier)
	case Disk:
		return r.Disk(tier)
	case Network:
		return r.Net(tier)
	default:
		panic(fmt.Sprintf("characterize: unknown resource %q", res))
	}
}

// DefaultWarmupFraction drops the first fifth of samples so warm-up
// transients (cold buffer pool, page caches filling) do not skew the
// steady-state means the paper reports — the fraction every analysis
// uses unless an Analysis overrides it.
const DefaultWarmupFraction = 0.2

// Analysis carries the tunable parameters of the Section 4 analyses.
// The zero value is not meaningful; use DefaultAnalysis (the paper's
// fixed 20% warm-up skip) or AnalysisFromTelemetry (a warm-up window
// derived from the run's own windowed throughput series).
type Analysis struct {
	// WarmupFraction of every series is discarded before steady-state
	// means are taken, in [0, 1).
	WarmupFraction float64
}

// DefaultAnalysis returns the fixed warm-up skip all package-level
// analysis functions apply; results are unchanged from when the
// fraction was hard-coded.
func DefaultAnalysis() Analysis {
	return Analysis{WarmupFraction: DefaultWarmupFraction}
}

// warmupSustainWindows is how many consecutive windows must hold 90%
// of the steady throughput before warm-up counts as over — a single
// early blip (a burst-state start, a batch completing before a
// cold-cache lull) must not end the warm-up on its own.
const warmupSustainWindows = 3

// AnalysisFromTelemetry derives the warm-up window from the run's own
// windowed throughput series instead of assuming a fixed fraction:
// warm-up ends at the first window opening a run of
// warmupSustainWindows consecutive windows at 90% of the steady-state
// median throughput (the median over the second half of the run). The
// fraction is clamped to [0, 0.5], and a run without usable telemetry
// falls back to DefaultAnalysis.
func AnalysisFromTelemetry(r *experiment.Result) Analysis {
	if r.Telemetry == nil {
		return DefaultAnalysis()
	}
	tput := r.Telemetry.Throughput
	n := tput.Len()
	if n < 2*warmupSustainWindows {
		return DefaultAnalysis()
	}
	steady := tput.Slice(n/2, n).Quantile(0.5)
	if steady <= 0 {
		return DefaultAnalysis()
	}
	idx := n / 2
	run := 0
	for i := 0; i < n; i++ {
		if tput.At(i) >= 0.9*steady {
			run++
			if run == warmupSustainWindows {
				idx = i - (warmupSustainWindows - 1)
				break
			}
		} else {
			run = 0
		}
	}
	frac := float64(idx) / float64(n)
	if frac > 0.5 {
		frac = 0.5
	}
	return Analysis{WarmupFraction: frac}
}

func (a Analysis) steadyMean(s *timeseries.Series) float64 {
	from := int(float64(s.Len()) * a.WarmupFraction)
	return s.Slice(from, s.Len()).Mean()
}

// Ratios holds one value per resource.
type Ratios struct {
	CPU, RAM, Disk, Network float64
}

// Get returns the ratio for a resource.
func (r Ratios) Get(res Resource) float64 {
	switch res {
	case CPU:
		return r.CPU
	case RAM:
		return r.RAM
	case Disk:
		return r.Disk
	case Network:
		return r.Network
	}
	return 0
}

// TierRatios computes the paper's §4.1 front-end/back-end demand ratios
// from a virtualized run: how many times more CPU cycles, RAM, disk
// read/write, and network data the web+application tier demands than the
// database tier (paper: 6.11, 3.29, 5.71, 55.56).
func TierRatios(r *experiment.Result) Ratios { return DefaultAnalysis().TierRatios(r) }

// TierRatios is the §4.1 front-end/back-end ratio analysis under this
// Analysis' warm-up window.
func (a Analysis) TierRatios(r *experiment.Result) Ratios {
	ratio := func(res Resource) float64 {
		front := a.steadyMean(tierSeries(r, experiment.TierWeb, res))
		back := a.steadyMean(tierSeries(r, experiment.TierDB, res))
		if back == 0 {
			return 0
		}
		return front / back
	}
	return Ratios{CPU: ratio(CPU), RAM: ratio(RAM), Disk: ratio(Disk), Network: ratio(Network)}
}

// VMToDom0Ratios computes the paper's §4.1 aggregated-VM versus
// hypervisor ratios from a virtualized run (paper: 16.84, 0.58, 0.47,
// 0.98). Values above 1 mean the VM counters exceed what dom0 observes.
func VMToDom0Ratios(r *experiment.Result) Ratios { return DefaultAnalysis().VMToDom0Ratios(r) }

// VMToDom0Ratios is the §4.1 VM-aggregate/dom0 analysis under this
// Analysis' warm-up window.
func (a Analysis) VMToDom0Ratios(r *experiment.Result) Ratios {
	ratio := func(res Resource) float64 {
		vm := a.steadyMean(tierSeries(r, experiment.TierWeb, res)) +
			a.steadyMean(tierSeries(r, experiment.TierDB, res))
		dom0 := a.steadyMean(tierSeries(r, experiment.TierDom0, res))
		if dom0 == 0 {
			return 0
		}
		return vm / dom0
	}
	return Ratios{CPU: ratio(CPU), RAM: ratio(RAM), Disk: ratio(Disk), Network: ratio(Network)}
}

// EnvAggregateRatios computes the paper's §4.2 non-virtualized versus
// virtualized aggregate ratios: non-virt (web+db physical) totals over
// the dom0-measured totals of the virtualized run (paper: 3.47, 0.97,
// 0.6, 0.98).
func EnvAggregateRatios(virt, phys *experiment.Result) Ratios {
	return DefaultAnalysis().EnvAggregateRatios(virt, phys)
}

// EnvAggregateRatios is the §4.2 cross-environment aggregate analysis
// under this Analysis' warm-up window.
func (a Analysis) EnvAggregateRatios(virt, phys *experiment.Result) Ratios {
	ratio := func(res Resource) float64 {
		nonVirt := a.steadyMean(tierSeries(phys, experiment.TierWeb, res)) +
			a.steadyMean(tierSeries(phys, experiment.TierDB, res))
		dom0 := a.steadyMean(tierSeries(virt, experiment.TierDom0, res))
		if dom0 == 0 {
			return 0
		}
		return nonVirt / dom0
	}
	return Ratios{CPU: ratio(CPU), RAM: ratio(RAM), Disk: ratio(Disk), Network: ratio(Network)}
}

// PhysicalDelta computes the paper's §4.2 physical-demand deltas:
// non-virtualized demand versus the *application-attributed* physical
// demand of the virtualized deployment (guest physical share plus dom0
// backend work, excluding dom0's own management activity). The paper
// reports +88% CPU, +21% RAM, +2% network, and -25% disk. Values are
// (nonVirt/virtApp - 1).
func PhysicalDelta(virt, phys *experiment.Result) Ratios {
	return DefaultAnalysis().PhysicalDelta(virt, phys)
}

// PhysicalDelta is the §4.2 physical-demand delta analysis under this
// Analysis' warm-up window.
func (a Analysis) PhysicalDelta(virt, phys *experiment.Result) Ratios {
	samples := float64(virt.Collector.Samples)
	if samples == 0 {
		return Ratios{}
	}
	attr := virt.Attribution

	nonVirt := func(res Resource) float64 {
		return a.steadyMean(tierSeries(phys, experiment.TierWeb, res)) +
			a.steadyMean(tierSeries(phys, experiment.TierDB, res))
	}

	// Application-attributed virtualized physical demand, averaged per
	// 2-second sample to match the series units.
	virtCPU := (virt.GuestPhysCycles + attr.BackendCycles) / samples
	virtDisk := attr.BackendDiskBytes / samples / 1024 // KB per sample
	virtNet := attr.BackendNetBytes / samples / 1024
	// RAM: guest used + dom0 backend buffers (gauges, not rates).
	virtRAM := a.steadyMean(virt.Mem(experiment.TierWeb)) +
		a.steadyMean(virt.Mem(experiment.TierDB)) +
		virt.Dom0BuffersMB

	delta := func(nv, va float64) float64 {
		if va == 0 {
			return 0
		}
		return nv/va - 1
	}
	return Ratios{
		CPU:     delta(nonVirt(CPU), virtCPU),
		RAM:     delta(nonVirt(RAM), virtRAM),
		Disk:    delta(nonVirt(Disk), virtDisk),
		Network: delta(nonVirt(Network), virtNet),
	}
}

// LagResult is the inter-tier lag estimate.
type LagResult struct {
	// LagSamples is the lag of the DB tier behind the web tier in
	// 2-second samples; LagSeconds converts it.
	LagSamples int
	LagSeconds float64
	// Correlation at the best lag.
	Correlation float64
}

// TierLag estimates how far the DB tier's CPU demand trails the web
// tier's via cross-correlation (paper §4.1: "there exist some lags
// between workload changes of the database server and the web and
// application servers").
func TierLag(r *experiment.Result) LagResult {
	web := r.CPU(experiment.TierWeb)
	db := r.CPU(experiment.TierDB)
	lag, corr := stats.EstimateLag(web.Values, db.Values, 10)
	return LagResult{
		LagSamples:  lag,
		LagSeconds:  float64(lag) * web.Interval,
		Correlation: corr,
	}
}

// RAMJumps detects the abrupt sustained RAM increases of the web tier
// (paper Figures 2 and 6). Window and threshold follow the figures'
// scale: 15 samples (30 s) and 50 MB.
func RAMJumps(r *experiment.Result, tier string) []stats.Jump {
	return stats.DetectJumps(r.Mem(tier).Values, 15, 50)
}

// FirstJumpTime reports the time (seconds) of the earliest detected web
// tier RAM jump, or -1 when none occurred. The paper observes jumps
// happening earlier in the non-virtualized system.
func FirstJumpTime(r *experiment.Result) float64 {
	jumps := RAMJumps(r, experiment.TierWeb)
	if len(jumps) == 0 {
		return -1
	}
	s := r.Mem(experiment.TierWeb)
	return s.TimeAt(jumps[0].Index)
}

// DiskVariance compares disk I/O variability between environments via
// the coefficient of variation of the web tier disk series (paper §4.2:
// "disk read and write workload shows higher variance in the
// non-virtualized system").
func DiskVariance(r *experiment.Result, tier string) float64 {
	return DefaultAnalysis().DiskVariance(r, tier)
}

// DiskVariance is the §4.2 disk-variability analysis under this
// Analysis' warm-up window.
func (a Analysis) DiskVariance(r *experiment.Result, tier string) float64 {
	s := tierSeries(r, tier, Disk)
	from := int(float64(s.Len()) * a.WarmupFraction)
	return stats.Summarize(s.Slice(from, s.Len()).Values).CoV
}

// Report is the full characterization of a browse+bid pair of runs in
// both environments — everything the paper's Section 4 claims, computed
// from our traces.
type Report struct {
	// Virtualized §4.1.
	TierRatiosBrowse, TierRatiosBid Ratios
	VMDom0Browse, VMDom0Bid         Ratios
	LagBrowse, LagBid               LagResult
	WebJumpsBrowseVirt              int
	WebJumpsBidVirt                 int

	// Cross-environment §4.2.
	EnvAggregateBrowse, EnvAggregateBid Ratios
	PhysicalDeltaBrowse                 Ratios
	PhysicalDeltaBid                    Ratios
	DiskCoVVirt, DiskCoVPhys            float64
	FirstJumpVirt, FirstJumpPhys        float64
	WebJumpsBidPhys                     int
}

// BuildReport computes the full characterization from the four runs.
func BuildReport(virtBrowse, virtBid, physBrowse, physBid *experiment.Result) Report {
	return Report{
		TierRatiosBrowse:    TierRatios(virtBrowse),
		TierRatiosBid:       TierRatios(virtBid),
		VMDom0Browse:        VMToDom0Ratios(virtBrowse),
		VMDom0Bid:           VMToDom0Ratios(virtBid),
		LagBrowse:           TierLag(virtBrowse),
		LagBid:              TierLag(virtBid),
		WebJumpsBrowseVirt:  len(RAMJumps(virtBrowse, experiment.TierWeb)),
		WebJumpsBidVirt:     len(RAMJumps(virtBid, experiment.TierWeb)),
		EnvAggregateBrowse:  EnvAggregateRatios(virtBrowse, physBrowse),
		EnvAggregateBid:     EnvAggregateRatios(virtBid, physBid),
		PhysicalDeltaBrowse: PhysicalDelta(virtBrowse, physBrowse),
		PhysicalDeltaBid:    PhysicalDelta(virtBid, physBid),
		DiskCoVVirt:         DiskVariance(virtBrowse, experiment.TierWeb),
		DiskCoVPhys:         DiskVariance(physBrowse, experiment.TierWeb),
		FirstJumpVirt:       FirstJumpTime(virtBrowse),
		FirstJumpPhys:       FirstJumpTime(physBid),
		WebJumpsBidPhys:     len(RAMJumps(physBid, experiment.TierWeb)),
	}
}

// Write renders the report with the paper's reference values alongside.
func (rep Report) Write(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Workload characterization report (paper reference values in brackets)\n\n"); err != nil {
		return err
	}
	row := func(label string, r Ratios, ref [4]float64) error {
		return p("  %-34s cpu %6.2f [%.2f]   ram %5.2f [%.2f]   disk %5.2f [%.2f]   net %6.2f [%.2f]\n",
			label, r.CPU, ref[0], r.RAM, ref[1], r.Disk, ref[2], r.Network, ref[3])
	}
	if err := p("Front-end / back-end demand (virtualized, §4.1):\n"); err != nil {
		return err
	}
	if err := row("browsing", rep.TierRatiosBrowse, [4]float64{6.11, 3.29, 5.71, 55.56}); err != nil {
		return err
	}
	if err := row("bidding", rep.TierRatiosBid, [4]float64{6.11, 3.29, 5.71, 55.56}); err != nil {
		return err
	}
	if err := p("VM aggregate / dom0 (virtualized, §4.1):\n"); err != nil {
		return err
	}
	if err := row("browsing", rep.VMDom0Browse, [4]float64{16.84, 0.58, 0.47, 0.98}); err != nil {
		return err
	}
	if err := row("bidding", rep.VMDom0Bid, [4]float64{16.84, 0.58, 0.47, 0.98}); err != nil {
		return err
	}
	if err := p("Non-virtualized / virtualized aggregate (§4.2):\n"); err != nil {
		return err
	}
	if err := row("browsing", rep.EnvAggregateBrowse, [4]float64{3.47, 0.97, 0.60, 0.98}); err != nil {
		return err
	}
	if err := row("bidding", rep.EnvAggregateBid, [4]float64{3.47, 0.97, 0.60, 0.98}); err != nil {
		return err
	}
	if err := p("Physical-demand delta, non-virt vs app-attributed virt (§4.2, paper: +88%% cpu, +21%% ram, +2%% net, -25%% disk):\n"); err != nil {
		return err
	}
	if err := p("  browsing: cpu %+.0f%%  ram %+.0f%%  disk %+.0f%%  net %+.0f%%\n",
		rep.PhysicalDeltaBrowse.CPU*100, rep.PhysicalDeltaBrowse.RAM*100,
		rep.PhysicalDeltaBrowse.Disk*100, rep.PhysicalDeltaBrowse.Network*100); err != nil {
		return err
	}
	if err := p("Inter-tier lag (DB behind web): browse %.0fs (corr %.2f), bid %.0fs (corr %.2f)\n",
		rep.LagBrowse.LagSeconds, rep.LagBrowse.Correlation,
		rep.LagBid.LagSeconds, rep.LagBid.Correlation); err != nil {
		return err
	}
	if err := p("Web RAM jumps: virt browse %d, virt bid %d, phys bid %d (paper: browse jumps in VMs; phys jumps earlier)\n",
		rep.WebJumpsBrowseVirt, rep.WebJumpsBidVirt, rep.WebJumpsBidPhys); err != nil {
		return err
	}
	if err := p("First web RAM jump: virt %.0fs, phys %.0fs\n", rep.FirstJumpVirt, rep.FirstJumpPhys); err != nil {
		return err
	}
	return p("Disk CoV: virt %.2f vs phys %.2f (paper: higher variance non-virtualized)\n",
		rep.DiskCoVVirt, rep.DiskCoVPhys)
}
