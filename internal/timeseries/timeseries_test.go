package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkSeries(vals ...float64) *Series {
	s := New("test", "KB")
	s.Values = vals
	return s
}

func TestBasicsOnEmpty(t *testing.T) {
	s := New("e", "x")
	if s.Len() != 0 || s.Sum() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty series aggregates should be zero")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestAppendAndTimeAt(t *testing.T) {
	s := New("a", "x")
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TimeAt(0) != 0 || s.TimeAt(1) != 2 {
		t.Fatalf("TimeAt wrong: %v %v", s.TimeAt(0), s.TimeAt(1))
	}
	s.Start = 10
	if s.TimeAt(1) != 12 {
		t.Fatalf("TimeAt with Start: %v", s.TimeAt(1))
	}
}

func TestAggregates(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	if s.Sum() != 10 || s.Mean() != 2.5 || s.Max() != 4 || s.Min() != 1 {
		t.Fatalf("aggregates: sum=%v mean=%v max=%v min=%v", s.Sum(), s.Mean(), s.Max(), s.Min())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mkSeries(1, 2)
	c := s.Clone("copy")
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
	if c.Name != "copy" {
		t.Fatalf("Clone name = %q", c.Name)
	}
	if s.Clone("").Name != "test" {
		t.Fatal("empty name should keep original")
	}
}

func TestSlice(t *testing.T) {
	s := mkSeries(0, 1, 2, 3, 4, 5)
	sub := s.Slice(2, 4)
	if sub.Len() != 2 || sub.At(0) != 2 || sub.At(1) != 3 {
		t.Fatalf("Slice values: %v", sub.Values)
	}
	if sub.Start != 4 {
		t.Fatalf("Slice start = %v, want 4", sub.Start)
	}
	if s.Slice(-5, 100).Len() != 6 {
		t.Fatal("Slice should clamp bounds")
	}
	if s.Slice(4, 2).Len() != 0 {
		t.Fatal("inverted Slice should be empty")
	}
}

func TestAdd(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := mkSeries(10, 20)
	sum := Add("total", a, b)
	if sum.Len() != 2 {
		t.Fatalf("Add should truncate to shortest: %d", sum.Len())
	}
	if sum.At(0) != 11 || sum.At(1) != 22 {
		t.Fatalf("Add values: %v", sum.Values)
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	a := mkSeries(1)
	b := mkSeries(1)
	b.Interval = 4
	defer func() {
		if recover() == nil {
			t.Fatal("Add with interval mismatch did not panic")
		}
	}()
	Add("x", a, b)
}

func TestAddPanicsOnEmptyArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add() did not panic")
		}
	}()
	Add("x")
}

func TestScale(t *testing.T) {
	s := mkSeries(1, 2).Scale(3)
	if s.At(0) != 3 || s.At(1) != 6 {
		t.Fatalf("Scale: %v", s.Values)
	}
}

func TestResample(t *testing.T) {
	s := mkSeries(1, 3, 5, 7, 9)
	r := s.Resample(2)
	if r.Len() != 2 || r.At(0) != 2 || r.At(1) != 6 {
		t.Fatalf("Resample: %v", r.Values)
	}
	if r.Interval != 4 {
		t.Fatalf("Resample interval = %v", r.Interval)
	}
	if s.Resample(1).Len() != 5 {
		t.Fatal("Resample(1) should be identity")
	}
}

func TestDiff(t *testing.T) {
	d := mkSeries(10, 15, 13).Diff()
	if d.Len() != 2 || d.At(0) != 5 || d.At(1) != -2 {
		t.Fatalf("Diff: %v", d.Values)
	}
	if d.Start != 2 {
		t.Fatalf("Diff start = %v", d.Start)
	}
}

func TestQuantile(t *testing.T) {
	s := mkSeries(4, 1, 3, 2)
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); q != 2.5 {
		t.Fatalf("median = %v", q)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := mkSeries(1.5, 2.25, 3)
	s.Start = 4
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip len = %d", got.Len())
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], s.Values[i])
		}
	}
	if got.Start != 4 || got.Interval != 2 {
		t.Fatalf("round trip start=%v interval=%v", got.Start, got.Interval)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("time_s,v\nxx,1\n")); err == nil {
		t.Fatal("bad time should error")
	}
	if _, err := ReadCSV(strings.NewReader("time_s,v\n1,yy\n")); err == nil {
		t.Fatal("bad value should error")
	}
}

func TestWriteTableCSV(t *testing.T) {
	a := mkSeries(1, 2, 3)
	a.Name = "a"
	b := mkSeries(10, 20)
	b.Name = "b"
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rows = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "a (KB)") || !strings.Contains(lines[0], "b (KB)") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[3], ",") {
		t.Fatalf("short series should pad: %q", lines[3])
	}
	if err := WriteTableCSV(&buf); err != nil {
		t.Fatal("empty table should be a no-op")
	}
}

// Property: Add is commutative and Sum distributes over Add.
func TestPropertyAddCommutative(t *testing.T) {
	f := func(av, bv []float64) bool {
		for _, v := range append(append([]float64(nil), av...), bv...) {
			// Values near MaxFloat64 overflow on addition; real demand
			// counters are far below that.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
		}
		a, b := mkSeries(av...), mkSeries(bv...)
		ab := Add("ab", a, b)
		ba := Add("ba", b, a)
		if ab.Len() != ba.Len() {
			return false
		}
		for i := range ab.Values {
			if ab.Values[i] != ba.Values[i] {
				return false
			}
		}
		n := ab.Len()
		want := a.Slice(0, n).Sum() + b.Slice(0, n).Sum()
		return math.Abs(ab.Sum()-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := mkSeries(clean...)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
