// Package timeseries provides the sampled series type shared by the
// collector, the characterization layer, and the figure generators.
//
// A Series is a sequence of (time, value) points with a fixed sampling
// interval, matching the paper's 2-second sysstat sampling. Values are
// float64 regardless of the underlying counter type; unit bookkeeping is
// carried in the Unit field for labeling only.
package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Series is a regularly sampled time series.
type Series struct {
	// Name identifies the series, e.g. "webapp.vm.cpu.cycles".
	Name string
	// Unit labels the values, e.g. "cycles/2s", "MB", "KB/2s".
	Unit string
	// Interval is the sampling interval in seconds (2 for the paper).
	Interval float64
	// Start is the time of the first sample, in seconds.
	Start float64
	// Values holds one sample per interval.
	Values []float64
}

// New returns an empty series with the given identity and 2 s interval.
func New(name, unit string) *Series {
	return &Series{Name: name, Unit: unit, Interval: 2}
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt reports the timestamp (seconds) of sample i.
func (s *Series) TimeAt(i int) float64 { return s.Start + float64(i)*s.Interval }

// Append adds one sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// At returns sample i.
func (s *Series) At(i int) float64 { return s.Values[i] }

// Clone returns a deep copy, optionally renamed.
func (s *Series) Clone(name string) *Series {
	c := &Series{Name: name, Unit: s.Unit, Interval: s.Interval, Start: s.Start}
	if name == "" {
		c.Name = s.Name
	}
	c.Values = append([]float64(nil), s.Values...)
	return c
}

// Slice returns the sub-series covering samples [from,to).
func (s *Series) Slice(from, to int) *Series {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from > to {
		from = to
	}
	return &Series{
		Name:     s.Name,
		Unit:     s.Unit,
		Interval: s.Interval,
		Start:    s.Start + float64(from)*s.Interval,
		Values:   append([]float64(nil), s.Values[from:to]...),
	}
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.Values))
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Scale returns a copy with every sample multiplied by f.
func (s *Series) Scale(f float64) *Series {
	c := s.Clone("")
	for i := range c.Values {
		c.Values[i] *= f
	}
	return c
}

// Add returns the pointwise sum of series with identical intervals. The
// result is truncated to the shortest input. It panics on mismatched
// intervals or an empty input set: aggregating incompatible series is a
// programming error, not a data condition.
func Add(name string, series ...*Series) *Series {
	if len(series) == 0 {
		panic("timeseries: Add of no series")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Interval != series[0].Interval {
			panic(fmt.Sprintf("timeseries: Add interval mismatch %v vs %v",
				s.Interval, series[0].Interval))
		}
		if s.Len() < n {
			n = s.Len()
		}
	}
	out := &Series{
		Name:     name,
		Unit:     series[0].Unit,
		Interval: series[0].Interval,
		Start:    series[0].Start,
		Values:   make([]float64, n),
	}
	for _, s := range series {
		for i := 0; i < n; i++ {
			out.Values[i] += s.Values[i]
		}
	}
	return out
}

// Resample returns a series aggregated into buckets of factor samples
// using the mean of each bucket. A trailing partial bucket is dropped.
func (s *Series) Resample(factor int) *Series {
	if factor <= 1 {
		return s.Clone("")
	}
	n := len(s.Values) / factor
	out := &Series{
		Name:     s.Name,
		Unit:     s.Unit,
		Interval: s.Interval * float64(factor),
		Start:    s.Start,
		Values:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < factor; j++ {
			sum += s.Values[i*factor+j]
		}
		out.Values[i] = sum / float64(factor)
	}
	return out
}

// Diff returns the first difference series (length len-1), useful for
// converting cumulative counters into per-interval demand.
func (s *Series) Diff() *Series {
	out := &Series{
		Name:     s.Name + ".diff",
		Unit:     s.Unit,
		Interval: s.Interval,
		Start:    s.Start + s.Interval,
	}
	for i := 1; i < len(s.Values); i++ {
		out.Values = append(out.Values, s.Values[i]-s.Values[i-1])
	}
	return out
}

// Quantile returns the q-quantile (0<=q<=1) using linear interpolation on
// the sorted samples, or 0 for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WriteCSV writes the series as time,value rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", s.Name + " (" + s.Unit + ")"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(s.TimeAt(i), 'f', 3, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV writes several aligned series as one CSV table with a
// shared time column. Series shorter than the longest are padded with
// empty cells.
func WriteTableCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	header := []string{"time_s"}
	n := 0
	for _, s := range series {
		header = append(header, s.Name+" ("+s.Unit+")")
		if s.Len() > n {
			n = s.Len()
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := make([]string, 0, len(series)+1)
		rec = append(rec, strconv.FormatFloat(series[0].TimeAt(i), 'f', 3, 64))
		for _, s := range series {
			if i < s.Len() {
				rec = append(rec, strconv.FormatFloat(s.Values[i], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a single-series CSV produced by WriteCSV.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeseries: read csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("timeseries: empty csv")
	}
	s := &Series{Name: records[0][1], Interval: 2}
	var times []float64
	for _, rec := range records[1:] {
		if len(rec) < 2 {
			continue
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: bad time %q: %w", rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: bad value %q: %w", rec[1], err)
		}
		times = append(times, t)
		s.Values = append(s.Values, v)
	}
	if len(times) > 0 {
		s.Start = times[0]
	}
	if len(times) > 1 {
		s.Interval = times[1] - times[0]
	}
	return s, nil
}
