package load

import (
	"math"
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// windowCounts drives arr over total seconds and returns per-window
// arrival counts (window seconds each).
func windowCounts(t *testing.T, arr Arrivals, stream *rng.Stream, total, window float64) []int {
	t.Helper()
	n := int(total / window)
	counts := make([]int, n)
	now := sim.Time(0)
	for {
		now = arr.Next(now, stream)
		if now >= sim.MaxTime || now.Sec() >= total {
			return counts
		}
		counts[int(now.Sec()/window)]++
	}
}

// meanVar returns the sample mean and (unbiased) variance of counts.
func meanVar(counts []int) (mean, variance float64) {
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= float64(len(counts))
	for _, c := range counts {
		d := float64(c) - mean
		variance += d * d
	}
	variance /= float64(len(counts) - 1)
	return mean, variance
}

// TestPoissonMeanAndDispersion pins the homogeneous baseline against
// its closed forms: window counts have mean rate*window and index of
// dispersion 1.
func TestPoissonMeanAndDispersion(t *testing.T) {
	const (
		rate   = 2.0
		total  = 40000.0
		window = 20.0
	)
	arr := &PoissonArrivals{Rate: rate}
	counts := windowCounts(t, arr, rng.NewSource(7).Stream("poisson"), total, window)
	mean, variance := meanVar(counts)
	if want := rate * window; math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean count = %v, want %v +-5%%", mean, want)
	}
	if iod := variance / mean; iod < 0.85 || iod > 1.15 {
		t.Fatalf("index of dispersion = %v, want ~1", iod)
	}
}

// TestMMPPMeanAndDispersion checks the two-state MMPP against its
// closed forms: the stationary mean rate and the asymptotic index of
// dispersion of counts (Fischer & Meier-Hellstern),
//
//	IDC = 1 + 2*s1*s2*(l1-l2)^2 / ((s1+s2)^2 * (s2*l1 + s1*l2))
//
// where l1,l2 are the state emission rates and s1,s2 the switching
// rates out of each state.
func TestMMPPMeanAndDispersion(t *testing.T) {
	const (
		base       = 0.5
		factor     = 4.0
		baseDwell  = 20.0
		burstDwell = 10.0
		total      = 300000.0
		window     = 500.0 // >> the chain's ~6.7 s correlation time
	)
	spec := Spec{Kind: Bursty, Rate: base, BurstFactor: factor, BaseDwell: baseDwell, BurstDwell: burstDwell}
	arr, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := windowCounts(t, arr, rng.NewSource(11).Stream("mmpp"), total, window)
	mean, variance := meanVar(counts)

	l1, l2 := base, base*factor
	s1, s2 := 1/baseDwell, 1/burstDwell
	wantRate := spec.MeanRate()
	if pi := s1 / (s1 + s2); math.Abs(wantRate-((1-pi)*l1+pi*l2)) > 1e-12 {
		t.Fatalf("MeanRate() = %v disagrees with the stationary mix", wantRate)
	}
	if got := mean / window; math.Abs(got-wantRate) > 0.08*wantRate {
		t.Fatalf("empirical rate = %v, want %v +-8%%", got, wantRate)
	}
	wantIDC := 1 + 2*s1*s2*(l1-l2)*(l1-l2)/((s1+s2)*(s1+s2)*(s2*l1+s1*l2))
	if iod := variance / mean; iod < 0.7*wantIDC || iod > 1.3*wantIDC {
		t.Fatalf("index of dispersion = %v, want %v +-30%% (closed form)", iod, wantIDC)
	}
}

// TestDiurnalDispersion pins the sinusoidal modulation's two closed
// forms: whole-period counts are exactly Poisson (the sinusoid
// integrates to zero over a period, so IoD ~ 1 at mean rate*period),
// while sub-period bins mix phases and must be overdispersed.
func TestDiurnalDispersion(t *testing.T) {
	const (
		rate      = 2.0
		amplitude = 0.6
		period    = 120.0
		total     = 60000.0
	)
	spec := Spec{Kind: Diurnal, Rate: rate, Amplitude: amplitude, PeriodSeconds: period}
	arr, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	full := windowCounts(t, arr, rng.NewSource(13).Stream("diurnal"), total, period)
	mean, variance := meanVar(full)
	if want := rate * period; math.Abs(mean-want) > 0.05*want {
		t.Fatalf("whole-period mean = %v, want %v +-5%%", mean, want)
	}
	if iod := variance / mean; iod < 0.8 || iod > 1.2 {
		t.Fatalf("whole-period IoD = %v, want ~1 (periods are phase-complete)", iod)
	}

	arr2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	quarter := windowCounts(t, arr2, rng.NewSource(13).Stream("diurnal"), total, period/4)
	qmean, qvar := meanVar(quarter)
	if iod := qvar / qmean; iod < 1.3 {
		t.Fatalf("quarter-period IoD = %v, want > 1.3 (phase mixing overdisperses)", iod)
	}
}

// TestSpikeProfile checks the flash-crowd trapezoid: pre-spike windows
// run at the base rate, the plateau at factor times it.
func TestSpikeProfile(t *testing.T) {
	spec := Spec{Kind: Spike, Rate: 2, SpikeFactor: 6, SpikeAt: 400, SpikeRamp: 50, SpikeHold: 300}
	arr, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewSource(17).Stream("spike")
	var pre, plateau int
	now := sim.Time(0)
	for {
		now = arr.Next(now, stream)
		s := now.Sec()
		if s >= 750 {
			break
		}
		switch {
		case s < 400:
			pre++
		case s >= 450:
			plateau++
		}
	}
	preRate := float64(pre) / 400
	plateauRate := float64(plateau) / 300
	if math.Abs(preRate-2) > 0.2 {
		t.Fatalf("pre-spike rate = %v, want ~2", preRate)
	}
	if math.Abs(plateauRate-12) > 1.2 {
		t.Fatalf("plateau rate = %v, want ~12", plateauRate)
	}
}

// TestArrivalsDeterministic pins the per-stream-seeded determinism
// contract: identical (spec, seed) pairs produce identical arrival
// sequences, for every kind.
func TestArrivalsDeterministic(t *testing.T) {
	specs := []Spec{
		{Kind: Poisson, Rate: 3},
		{Kind: Bursty, Rate: 2, BurstFactor: 5, BaseDwell: 30, BurstDwell: 10},
		{Kind: Diurnal, Rate: 3, Amplitude: 0.5, PeriodSeconds: 60},
		{Kind: Spike, Rate: 2, SpikeFactor: 4, SpikeAt: 20, SpikeRamp: 5, SpikeHold: 30},
		{Kind: Trace, TracePoints: []TracePoint{{0, 1}, {30, 5}, {60, 2}}},
	}
	for _, spec := range specs {
		seq := func() []sim.Time {
			arr, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			stream := rng.NewSource(23).Stream("arr")
			var out []sim.Time
			now := sim.Time(0)
			for i := 0; i < 500; i++ {
				now = arr.Next(now, stream)
				if now >= sim.MaxTime {
					break
				}
				out = append(out, now)
			}
			return out
		}
		a, b := seq(), seq()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", spec.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", spec.Kind, i, a[i], b[i])
			}
		}
	}
}

// TestTraceInterpolation pins the replay's edge cases: hold before the
// first knot, linear interpolation between knots, hold after the last,
// single-point traces, and the rate multiplier.
func TestTraceInterpolation(t *testing.T) {
	ta, err := NewTraceArrivals([]TracePoint{{10, 2}, {20, 6}, {40, 0}, {50, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 2},    // before first knot: first rate holds
		{10, 2},   // exactly at a knot
		{15, 4},   // linear midpoint
		{20, 6},   // knot value
		{30, 3},   // midpoint of a falling segment
		{40, 0},   // knot can be zero mid-trace
		{45, 2},   // rises out of the zero knot
		{50, 4},   // last knot
		{1000, 4}, // after last knot: last rate holds
	}
	for _, c := range cases {
		if got := ta.RateAt(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Rewinding the cursor still answers correctly (cursor cache reset).
	if got := ta.RateAt(15); got != 4 {
		t.Fatalf("RateAt(15) after forward scan = %v, want 4", got)
	}

	scaled, err := NewTraceArrivals([]TracePoint{{0, 2}, {10, 4}}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.RateAt(5); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("scaled RateAt(5) = %v, want 7.5", got)
	}

	single, err := NewTraceArrivals([]TracePoint{{5, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 5, 100} {
		if got := single.RateAt(x); got != 3 {
			t.Fatalf("single-point RateAt(%v) = %v, want 3", x, got)
		}
	}
}

// TestTraceZeroTailEnds pins that a trace decaying to rate zero ends
// the process instead of spinning on rejected thinning candidates.
func TestTraceZeroTailEnds(t *testing.T) {
	ta, err := NewTraceArrivals([]TracePoint{{0, 5}, {20, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewSource(31).Stream("tail")
	now := sim.Time(0)
	n := 0
	for {
		now = ta.Next(now, stream)
		if now >= sim.MaxTime {
			break
		}
		if now.Sec() > 20 {
			t.Fatalf("arrival at %v after the trace hit zero", now)
		}
		n++
		if n > 10000 {
			t.Fatal("trace with zero tail never ended")
		}
	}
	if n == 0 {
		t.Fatal("no arrivals before the zero tail")
	}
	// Once ended, it stays ended.
	if got := ta.Next(30*sim.Second, stream); got < sim.MaxTime {
		t.Fatalf("Next after end = %v, want MaxTime", got)
	}
}

// TestTraceValidation covers the malformed-trace rejections.
func TestTraceValidation(t *testing.T) {
	bad := [][]TracePoint{
		nil,                // empty
		{{0, 1}, {0, 2}},   // non-increasing time
		{{5, 2}, {3, 1}},   // decreasing time
		{{0, -1}, {10, 2}}, // negative rate
		{{-5, 1}, {10, 2}}, // negative time
		{{0, 0}, {10, 0}},  // all-zero
	}
	for i, pts := range bad {
		if _, err := NewTraceArrivals(pts, 0); err == nil {
			t.Fatalf("case %d: trace %v should be rejected", i, pts)
		}
	}
}

// TestExtremeRatesSaturateInsteadOfOverflow pins that validly tiny
// rates (gap draws beyond the representable sim horizon) end the
// process instead of overflowing into negative timestamps.
func TestExtremeRatesSaturateInsteadOfOverflow(t *testing.T) {
	stream := rng.NewSource(41).Stream("overflow")
	p := &PoissonArrivals{Rate: 1e-15}
	for i := 0; i < 50; i++ {
		if got := p.Next(0, stream); got < 0 {
			t.Fatalf("Poisson overflowed to %v", got)
		}
	}
	m := &MMPPArrivals{BaseRate: 1e-15, BurstRate: 2e-15, BaseDwell: 1e15, BurstDwell: 1e15}
	for i := 0; i < 50; i++ {
		if got := m.Next(0, stream); got < 0 {
			t.Fatalf("MMPP overflowed to %v", got)
		}
	}
}
