package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// TracePoint is one knot of a recorded rate trace: at TimeSeconds the
// arrival intensity was Rate sessions/s. Rates between knots are
// linearly interpolated; before the first knot the first rate holds,
// after the last knot the last rate holds.
type TracePoint struct {
	TimeSeconds float64 `json:"t"`
	Rate        float64 `json:"rate"`
}

// validateTrace checks the invariants interpolation relies on.
func validateTrace(points []TracePoint) error {
	if len(points) == 0 {
		return fmt.Errorf("load: trace needs at least one (time, rate) point")
	}
	maxRate := 0.0
	for i, p := range points {
		if p.Rate < 0 {
			return fmt.Errorf("load: trace point %d has negative rate %v", i, p.Rate)
		}
		if p.TimeSeconds < 0 {
			return fmt.Errorf("load: trace point %d has negative time %v", i, p.TimeSeconds)
		}
		if i > 0 && p.TimeSeconds <= points[i-1].TimeSeconds {
			return fmt.Errorf("load: trace times must be strictly increasing (point %d: %v after %v)",
				i, p.TimeSeconds, points[i-1].TimeSeconds)
		}
		if p.Rate > maxRate {
			maxRate = p.Rate
		}
	}
	if maxRate == 0 {
		return fmt.Errorf("load: trace is all-zero rate")
	}
	return nil
}

// traceMeanRate integrates the piecewise-linear trace over its recorded
// span and divides by that span (single-point traces are constant).
func traceMeanRate(points []TracePoint) float64 {
	if len(points) == 0 {
		return 0
	}
	if len(points) == 1 {
		return points[0].Rate
	}
	area := 0.0
	for i := 1; i < len(points); i++ {
		dt := points[i].TimeSeconds - points[i-1].TimeSeconds
		area += dt * (points[i].Rate + points[i-1].Rate) / 2
	}
	return area / (points[len(points)-1].TimeSeconds - points[0].TimeSeconds)
}

// ParseTrace reads a CSV rate trace: one "time_seconds,rate" pair per
// line, in strictly increasing time order. Blank lines and lines
// starting with '#' are skipped; a header line of non-numeric fields is
// tolerated. This is the offline half of trace replay — the parsed
// points travel inside the Spec, so a stored experiment config replays
// without the original file.
func ParseTrace(r io.Reader) ([]TracePoint, error) {
	var points []TracePoint
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("load: trace line %d: want \"time,rate\", got %q", line, text)
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		rate, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err1 != nil || err2 != nil {
			if line == 1 && len(points) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("load: trace line %d: non-numeric fields in %q", line, text)
		}
		points = append(points, TracePoint{TimeSeconds: t, Rate: rate})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: reading trace: %w", err)
	}
	if err := validateTrace(points); err != nil {
		return nil, err
	}
	return points, nil
}

// TraceArrivals replays a recorded rate trace as a nonhomogeneous
// Poisson process: intensity is linearly interpolated between knots and
// held flat beyond the ends. When the trace decays to a zero tail rate,
// the process ends (Next reports sim.MaxTime) instead of spinning on
// rejected candidates.
type TraceArrivals struct {
	points []TracePoint
	scale  float64
	max    float64
	// cursor remembers the last interpolation segment; arrivals move
	// forward in time, so lookup is amortized O(1) instead of a binary
	// search per thinning candidate.
	cursor int
}

// NewTraceArrivals builds a replayer over points with a rate multiplier
// (scale <= 0 means 1).
func NewTraceArrivals(points []TracePoint, scale float64) (*TraceArrivals, error) {
	if err := validateTrace(points); err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	max := 0.0
	for _, p := range points {
		if p.Rate > max {
			max = p.Rate
		}
	}
	return &TraceArrivals{points: points, scale: scale, max: max * scale}, nil
}

// RateAt reports the interpolated intensity at t seconds; exported so
// tests can pin interpolation edge cases directly.
func (ta *TraceArrivals) RateAt(t float64) float64 {
	pts := ta.points
	if t <= pts[0].TimeSeconds {
		return pts[0].Rate * ta.scale
	}
	last := len(pts) - 1
	if t >= pts[last].TimeSeconds {
		return pts[last].Rate * ta.scale
	}
	// Resume from the cached segment; rewind if the caller went back.
	i := ta.cursor
	if i > last-1 || pts[i].TimeSeconds > t {
		i = 0
	}
	for pts[i+1].TimeSeconds < t {
		i++
	}
	ta.cursor = i
	a, b := pts[i], pts[i+1]
	frac := (t - a.TimeSeconds) / (b.TimeSeconds - a.TimeSeconds)
	return (a.Rate + (b.Rate-a.Rate)*frac) * ta.scale
}

func (ta *TraceArrivals) rateAt(t float64) float64 { return ta.RateAt(t) }

func (ta *TraceArrivals) maxRate() float64 { return ta.max }

// end reports the last knot's time and whether the tail rate is zero.
func (ta *TraceArrivals) end() (float64, bool) {
	last := ta.points[len(ta.points)-1]
	return last.TimeSeconds, last.Rate == 0
}

// Next implements Arrivals.
func (ta *TraceArrivals) Next(now sim.Time, r *rng.Stream) sim.Time {
	endAt, endsAtZero := ta.end()
	if endsAtZero && now.Sec() >= endAt {
		return sim.MaxTime
	}
	max := ta.max
	t := now.Sec()
	for {
		t += r.Exp(1 / max)
		if t >= maxSimSeconds || (endsAtZero && t >= endAt) {
			// Past the zero tail nothing can be accepted; report the
			// process ended rather than rejecting candidates forever.
			return sim.MaxTime
		}
		if r.Float64()*max <= ta.RateAt(t) {
			return sim.Seconds(t)
		}
	}
}
