package load

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestSpecValidation covers the per-kind parameter checks.
func TestSpecValidation(t *testing.T) {
	good := []Spec{
		{Kind: Poisson, Rate: 1},
		{Kind: Bursty, Rate: 1, BurstFactor: 4, BaseDwell: 60, BurstDwell: 15},
		{Kind: Diurnal, Rate: 2, Amplitude: 0.5, PeriodSeconds: 600},
		{Kind: Spike, Rate: 1, SpikeFactor: 8, SpikeAt: 100, SpikeRamp: 10, SpikeHold: 60},
		{Kind: Trace, TracePoints: []TracePoint{{0, 1}, {10, 3}}},
		{Kind: Trace, Rate: 2, TracePoints: []TracePoint{{0, 1}}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("good spec %d rejected: %v", i, err)
		}
		if _, err := s.Build(); err != nil {
			t.Fatalf("good spec %d failed to build: %v", i, err)
		}
	}
	bad := []Spec{
		{},                        // no kind
		{Kind: "weird", Rate: 1},  // unknown kind
		{Kind: Poisson},           // no rate
		{Kind: Poisson, Rate: -1}, // negative rate
		{Kind: Bursty, Rate: 1},   // missing burst params
		{Kind: Bursty, Rate: 1, BurstFactor: 0.5, BaseDwell: 1, BurstDwell: 1}, // deburst
		{Kind: Diurnal, Rate: 1, Amplitude: 1.5, PeriodSeconds: 60},            // amplitude >= 1
		{Kind: Diurnal, Rate: 1, Amplitude: 0.5},                               // no period
		{Kind: Spike, Rate: 1, SpikeFactor: 8},                                 // no window
		{Kind: Trace},                                                          // no points
		{Kind: Poisson, Rate: 1, SessionMean: 0.5},                             // sub-1 mean
		{Kind: Poisson, Rate: 1, AbandonAfterSeconds: -1},                      // negative SLO
		{Kind: Poisson, Rate: 1, RampSeconds: -3},                              // negative ramp
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestSpecJSONRoundTrip pins that a spec survives encode/decode intact,
// including an inline trace, so sweep configs can be stored and
// replayed.
func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Spec{
		Kind:                Trace,
		Rate:                1.5,
		TracePoints:         []TracePoint{{0, 1}, {30, 4.5}, {90, 2}},
		TracePath:           "somewhere.csv",
		SessionMean:         8,
		AbandonAfterSeconds: 4,
		RampSeconds:         20,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != orig.Kind || back.Rate != orig.Rate || back.SessionMean != orig.SessionMean ||
		back.AbandonAfterSeconds != orig.AbandonAfterSeconds || back.RampSeconds != orig.RampSeconds ||
		back.TracePath != orig.TracePath || len(back.TracePoints) != len(orig.TracePoints) {
		t.Fatalf("round trip lost fields: %+v -> %+v", orig, back)
	}
	for i := range orig.TracePoints {
		if back.TracePoints[i] != orig.TracePoints[i] {
			t.Fatalf("trace point %d: %v -> %v", i, orig.TracePoints[i], back.TracePoints[i])
		}
	}
	if _, err := ParseSpec([]byte(`{"kind":"poisson","rate":-2}`)); err == nil {
		t.Fatal("ParseSpec accepted an invalid spec")
	}
}

// TestCatalog pins that every built-in scenario validates, builds, and
// round-trips, and that lookups are by-value (no aliasing).
func TestCatalog(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 4 {
		t.Fatalf("catalog has only %d scenarios", len(scs))
	}
	for _, sc := range scs {
		if sc.Name == "" || sc.Summary == "" {
			t.Fatalf("scenario %+v missing name or summary", sc)
		}
		if err := sc.Spec.Validate(); err != nil {
			t.Fatalf("catalog scenario %q invalid: %v", sc.Name, err)
		}
		if _, err := sc.Spec.Build(); err != nil {
			t.Fatalf("catalog scenario %q failed to build: %v", sc.Name, err)
		}
		if sc.Spec.MeanRate() <= 0 {
			t.Fatalf("catalog scenario %q has mean rate %v", sc.Name, sc.Spec.MeanRate())
		}
		got, err := Scenario(sc.Name)
		if err != nil {
			t.Fatal(err)
		}
		got.Rate = -99 // mutating the copy must not touch the catalog
		again, err := Scenario(sc.Name)
		if err != nil {
			t.Fatal(err)
		}
		if again.Rate == -99 {
			t.Fatalf("Scenario(%q) aliases the catalog", sc.Name)
		}
	}
	if _, err := Scenario("no-such-thing"); err == nil || !strings.Contains(err.Error(), "no-such-thing") {
		t.Fatalf("unknown scenario error = %v", err)
	}
	names := ScenarioNames()
	if len(names) != len(scs) {
		t.Fatalf("ScenarioNames has %d entries, catalog %d", len(names), len(scs))
	}
}

// TestParseTraceCSV covers the CSV reader: headers, comments, blanks,
// and malformed lines.
func TestParseTraceCSV(t *testing.T) {
	pts, err := ParseTrace(strings.NewReader(
		"time,rate\n# warmup excluded\n\n0, 1.5\n30,4\n 90 , 2 \n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []TracePoint{{0, 1.5}, {30, 4}, {90, 2}}
	if len(pts) != len(want) {
		t.Fatalf("parsed %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	for _, badCSV := range []string{
		"",                  // empty
		"0;1\n",             // wrong separator
		"0,1\nbogus,line\n", // non-numeric past the header
		"0,1\n10\n",         // missing field
		"10,1\n5,2\n",       // unsorted
		"0,-1\n10,1\n",      // negative rate
	} {
		if _, err := ParseTrace(strings.NewReader(badCSV)); err == nil {
			t.Fatalf("ParseTrace accepted %q", badCSV)
		}
	}
}

// TestMeanRate pins the long-run intensity closed forms the
// equivalence tests and docs rely on.
func TestMeanRate(t *testing.T) {
	cases := []struct {
		spec Spec
		want float64
	}{
		{Spec{Kind: Poisson, Rate: 3}, 3},
		// 2/3 of the time at 1, 1/3 at 4 -> 2.
		{Spec{Kind: Bursty, Rate: 1, BurstFactor: 4, BaseDwell: 20, BurstDwell: 10}, 2},
		{Spec{Kind: Diurnal, Rate: 2.5, Amplitude: 0.9, PeriodSeconds: 60}, 2.5},
		{Spec{Kind: Spike, Rate: 2, SpikeFactor: 8, SpikeAt: 10, SpikeRamp: 5, SpikeHold: 10}, 2},
		// Trapezoid 1->3 over 0..10: area 20 over span 10 -> 2; x1.5.
		{Spec{Kind: Trace, Rate: 1.5, TracePoints: []TracePoint{{0, 1}, {10, 3}}}, 3},
		{Spec{Kind: Trace, TracePoints: []TracePoint{{5, 4}}}, 4},
	}
	for i, c := range cases {
		if got := c.spec.MeanRate(); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d (%s): MeanRate = %v, want %v", i, c.spec.Kind, got, c.want)
		}
	}
}
