// Package load generates open-loop workload: it decouples *who arrives
// when* (an arrival process over session starts) from *what a session
// does* (the rubis client mix the tiers driver already replays).
//
// The closed-loop driver the paper uses holds the client population
// fixed — demand self-throttles as response times grow, which is the
// right model for the paper's figures but cannot express burstiness,
// diurnal intensity, flash crowds, or session churn. This package
// supplies those shapes as deterministic, per-stream-seeded arrival
// processes behind one small interface, plus the session-lifecycle
// parameters (ramp-in, geometric session length, abandonment on a
// response-time SLO) that the open-loop driver in internal/tiers
// consumes.
//
// # Determinism contract
//
// An arrival process draws only from the rng.Stream handed to Next, and
// every stochastic decision is made in a fixed order on the
// single-threaded sim kernel. A (Spec, seed) pair therefore yields a
// byte-identical run regardless of runner worker count — the same
// contract the closed-loop sweep already honors.
//
// # Allocation discipline
//
// Steady-state arrival generation is allocation-free: Next performs
// only floating-point draws and state updates, never allocating, so the
// open-loop driver's arrival re-arm loop (Arrivals.Next + Kernel.AtCall
// on a pooled event) runs at zero allocs per arrival.
package load

import (
	"encoding/json"
	"fmt"
)

// Kind names an arrival-process family.
type Kind string

// The supported arrival processes.
const (
	// Poisson is a homogeneous Poisson process at Rate sessions/s.
	Poisson Kind = "poisson"
	// Bursty is a two-state MMPP: a base state at Rate and a burst state
	// at Rate*BurstFactor, with exponentially distributed dwell times.
	Bursty Kind = "bursty"
	// Diurnal modulates Rate sinusoidally with the given amplitude and
	// period (a compressed day/night cycle).
	Diurnal Kind = "diurnal"
	// Spike is a flash crowd: base Rate, then a linear ramp to
	// Rate*SpikeFactor held for a window and ramped back down.
	Spike Kind = "spike"
	// Trace replays a CSV (time,rate) trace with linear interpolation.
	Trace Kind = "trace"
)

// Kinds lists the arrival families in catalog order.
func Kinds() []Kind { return []Kind{Poisson, Bursty, Diurnal, Spike, Trace} }

// Default session-lifecycle parameters applied by Validate when the
// spec leaves them zero.
const (
	// DefaultSessionMean is the mean session length in interactions.
	DefaultSessionMean = 10.0
)

// Spec is a JSON round-trippable description of one open-loop workload:
// the arrival process plus the session-lifecycle parameters. The zero
// value is not runnable; construct via the catalog or fill Kind and
// Rate explicitly.
type Spec struct {
	// Kind selects the arrival family.
	Kind Kind `json:"kind"`
	// Rate is the base arrival intensity in sessions per second. For
	// Trace it is an optional multiplier on the trace's rates (0 or 1
	// replays the trace as recorded).
	Rate float64 `json:"rate,omitempty"`

	// BurstFactor multiplies Rate in the burst state (Bursty; > 1).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BaseDwell and BurstDwell are the mean seconds spent in the base
	// and burst states (Bursty).
	BaseDwell  float64 `json:"base_dwell_s,omitempty"`
	BurstDwell float64 `json:"burst_dwell_s,omitempty"`

	// Amplitude is the relative modulation depth in [0,1) and
	// PeriodSeconds the cycle length (Diurnal).
	Amplitude     float64 `json:"amplitude,omitempty"`
	PeriodSeconds float64 `json:"period_s,omitempty"`

	// SpikeAt is when the flash crowd begins (seconds), SpikeRamp the
	// linear ramp up/down time, SpikeHold the plateau length, and
	// SpikeFactor the peak multiplier on Rate (Spike).
	SpikeAt     float64 `json:"spike_at_s,omitempty"`
	SpikeRamp   float64 `json:"spike_ramp_s,omitempty"`
	SpikeHold   float64 `json:"spike_hold_s,omitempty"`
	SpikeFactor float64 `json:"spike_factor,omitempty"`

	// TracePoints is the inline (time, rate) trace (Trace). Specs are
	// self-contained values: callers resolve any file into points before
	// building the spec (see ParseTrace), so replaying a stored config
	// never touches the filesystem.
	TracePoints []TracePoint `json:"trace,omitempty"`
	// TracePath records where the trace came from, for provenance only.
	TracePath string `json:"trace_path,omitempty"`

	// SessionMean is the mean session length in interactions (geometric
	// distribution on {1,2,...}); 0 means DefaultSessionMean.
	SessionMean float64 `json:"session_mean,omitempty"`
	// AbandonAfterSeconds ends a session when a response takes longer
	// than this SLO; 0 disables abandonment.
	AbandonAfterSeconds float64 `json:"abandon_after_s,omitempty"`
	// RampSeconds thins arrivals linearly from zero to full intensity
	// over this window, so runs start desynchronized instead of
	// slamming an idle system; 0 disables the ramp.
	RampSeconds float64 `json:"ramp_s,omitempty"`
}

// Validate reports whether the spec describes a runnable workload.
func (s *Spec) Validate() error {
	switch s.Kind {
	case Poisson:
		if s.Rate <= 0 {
			return fmt.Errorf("load: %s needs rate > 0", s.Kind)
		}
	case Bursty:
		if s.Rate <= 0 {
			return fmt.Errorf("load: %s needs rate > 0", s.Kind)
		}
		if s.BurstFactor <= 1 {
			return fmt.Errorf("load: %s needs burst_factor > 1 (got %v)", s.Kind, s.BurstFactor)
		}
		if s.BaseDwell <= 0 || s.BurstDwell <= 0 {
			return fmt.Errorf("load: %s needs positive base and burst dwell times", s.Kind)
		}
	case Diurnal:
		if s.Rate <= 0 {
			return fmt.Errorf("load: %s needs rate > 0", s.Kind)
		}
		if s.Amplitude < 0 || s.Amplitude >= 1 {
			return fmt.Errorf("load: %s needs amplitude in [0,1) (got %v)", s.Kind, s.Amplitude)
		}
		if s.PeriodSeconds <= 0 {
			return fmt.Errorf("load: %s needs period_s > 0", s.Kind)
		}
	case Spike:
		if s.Rate <= 0 {
			return fmt.Errorf("load: %s needs rate > 0", s.Kind)
		}
		if s.SpikeFactor <= 1 {
			return fmt.Errorf("load: %s needs spike_factor > 1 (got %v)", s.Kind, s.SpikeFactor)
		}
		if s.SpikeAt < 0 || s.SpikeRamp < 0 || s.SpikeHold < 0 {
			return fmt.Errorf("load: %s needs non-negative spike timing", s.Kind)
		}
		if s.SpikeRamp == 0 && s.SpikeHold == 0 {
			return fmt.Errorf("load: %s needs a ramp or hold window", s.Kind)
		}
	case Trace:
		if s.Rate < 0 {
			return fmt.Errorf("load: %s rate multiplier must be >= 0", s.Kind)
		}
		if err := validateTrace(s.TracePoints); err != nil {
			return err
		}
	default:
		return fmt.Errorf("load: unknown arrival kind %q (want poisson, bursty, diurnal, spike or trace)", s.Kind)
	}
	if s.SessionMean < 0 || (s.SessionMean > 0 && s.SessionMean < 1) {
		return fmt.Errorf("load: session_mean must be >= 1 (got %v)", s.SessionMean)
	}
	if s.AbandonAfterSeconds < 0 {
		return fmt.Errorf("load: abandon_after_s must be >= 0")
	}
	if s.RampSeconds < 0 {
		return fmt.Errorf("load: ramp_s must be >= 0")
	}
	return nil
}

// EffectiveSessionMean reports the session-length mean with the default
// applied.
func (s *Spec) EffectiveSessionMean() float64 {
	if s.SessionMean <= 0 {
		return DefaultSessionMean
	}
	return s.SessionMean
}

// MeanRate reports the long-run average arrival intensity in sessions/s
// (ignoring the start-up ramp): the offered load a scenario would show
// on an infinitely long run. It is what the open/closed equivalence
// test and the catalog's documentation key off.
func (s *Spec) MeanRate() float64 {
	switch s.Kind {
	case Poisson:
		return s.Rate
	case Bursty:
		// Stationary mix of the two exponential-dwell states.
		pBurst := s.BurstDwell / (s.BaseDwell + s.BurstDwell)
		return s.Rate * (1 - pBurst + pBurst*s.BurstFactor)
	case Diurnal:
		// The sinusoid integrates to zero over a full period.
		return s.Rate
	case Spike:
		// A single transient: the long-run mean is the base rate.
		return s.Rate
	case Trace:
		return traceMeanRate(s.TracePoints) * s.traceScale()
	}
	return 0
}

// traceScale returns the multiplier applied to trace rates.
func (s *Spec) traceScale() float64 {
	if s.Kind == Trace && s.Rate > 0 {
		return s.Rate
	}
	return 1
}

// Build constructs the arrival process the spec describes. The returned
// process is stateful (MMPP phase, trace cursor) and must not be shared
// between drivers; call Build once per driver.
func (s *Spec) Build() (Arrivals, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case Poisson:
		return &PoissonArrivals{Rate: s.Rate}, nil
	case Bursty:
		return &MMPPArrivals{
			BaseRate:   s.Rate,
			BurstRate:  s.Rate * s.BurstFactor,
			BaseDwell:  s.BaseDwell,
			BurstDwell: s.BurstDwell,
		}, nil
	case Diurnal:
		return &DiurnalArrivals{Rate: s.Rate, Amplitude: s.Amplitude, Period: s.PeriodSeconds}, nil
	case Spike:
		return &SpikeArrivals{
			Rate:   s.Rate,
			Factor: s.SpikeFactor,
			At:     s.SpikeAt,
			Ramp:   s.SpikeRamp,
			Hold:   s.SpikeHold,
		}, nil
	case Trace:
		return NewTraceArrivals(s.TracePoints, s.traceScale())
	}
	return nil, fmt.Errorf("load: unknown arrival kind %q", s.Kind)
}

// ParseSpec decodes and validates a JSON spec produced by encoding a
// Spec (the experiment config embeds specs this way).
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("load: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
