package load

import (
	"fmt"
	"sort"
)

// NamedSpec is one catalog entry: a ready-to-run workload scenario.
type NamedSpec struct {
	Name string
	// Summary is a one-line description for CLI help and docs.
	Summary string
	Spec    Spec
}

// catalog lists the built-in open-loop scenarios. Rates are modest
// defaults sized so a scaled experiment saturates nothing; sweeps and
// the -rate flag scale them. Trace has no entry — it needs a file (see
// ParseTrace) — but cmd/rubisim builds one from -trace.
var catalog = []NamedSpec{
	{
		Name:    "steady",
		Summary: "homogeneous Poisson arrivals at the base rate",
		Spec: Spec{
			Kind:        Poisson,
			Rate:        2,
			SessionMean: 10,
			RampSeconds: 30,
		},
	},
	{
		Name:    "bursty",
		Summary: "two-state MMPP: 6x bursts of ~20 s every ~2 min",
		Spec: Spec{
			Kind:        Bursty,
			Rate:        1.5,
			BurstFactor: 6,
			BaseDwell:   120,
			BurstDwell:  20,
			SessionMean: 10,
			RampSeconds: 30,
		},
	},
	{
		Name:    "diurnal",
		Summary: "sinusoidal day/night cycle compressed to 10 min",
		Spec: Spec{
			Kind:          Diurnal,
			Rate:          2,
			Amplitude:     0.6,
			PeriodSeconds: 600,
			SessionMean:   10,
			RampSeconds:   30,
		},
	},
	{
		Name:    "flash-crowd",
		Summary: "8x spike at t=300 s (30 s ramp, 120 s hold), 5 s abandon SLO",
		Spec: Spec{
			Kind:                Spike,
			Rate:                1.5,
			SpikeFactor:         8,
			SpikeAt:             300,
			SpikeRamp:           30,
			SpikeHold:           120,
			SessionMean:         10,
			AbandonAfterSeconds: 5,
			RampSeconds:         30,
		},
	},
	{
		Name:    "cold-cache",
		Summary: "steady load against an empty cache: warmup convergence",
		Spec: Spec{
			Kind:        Poisson,
			Rate:        2.5,
			SessionMean: 12,
			RampSeconds: 10,
		},
	},
	{
		Name:    "hot-key-expiry",
		Summary: "8x spike at t=120 s riding over TTL expiries: herd window",
		Spec: Spec{
			Kind:                Spike,
			Rate:                3,
			SpikeFactor:         8,
			SpikeAt:             120,
			SpikeRamp:           10,
			SpikeHold:           120,
			SessionMean:         12,
			AbandonAfterSeconds: 5,
			RampSeconds:         30,
		},
	},
	{
		Name:    "backlog-drain",
		Summary: "10x write burst of ~45 s at t=200 s: queue absorb + drain",
		Spec: Spec{
			Kind:        Bursty,
			Rate:        1.5,
			BurstFactor: 10,
			BaseDwell:   300,
			BurstDwell:  45,
			SessionMean: 10,
			RampSeconds: 30,
		},
	},
}

// Scenarios returns the built-in scenario catalog in presentation
// order. The slice and its specs are copies; callers may mutate freely.
func Scenarios() []NamedSpec {
	out := make([]NamedSpec, len(catalog))
	copy(out, catalog)
	return out
}

// ScenarioNames lists the catalog names, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(catalog))
	for _, s := range catalog {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Scenario returns the named built-in scenario.
func Scenario(name string) (Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s.Spec, nil
		}
	}
	return Spec{}, fmt.Errorf("load: unknown scenario %q (have %v)", name, ScenarioNames())
}
