package load

import (
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// benchSpecs are one representative spec per arrival family (trace
// included via an inline, never-ending profile).
func benchSpecs() []Spec {
	return []Spec{
		{Kind: Poisson, Rate: 5},
		{Kind: Bursty, Rate: 3, BurstFactor: 6, BaseDwell: 60, BurstDwell: 15},
		{Kind: Diurnal, Rate: 5, Amplitude: 0.6, PeriodSeconds: 300},
		{Kind: Spike, Rate: 3, SpikeFactor: 8, SpikeAt: 100, SpikeRamp: 20, SpikeHold: 60},
		{Kind: Trace, TracePoints: []TracePoint{{0, 2}, {60, 8}, {120, 3}, {300, 5}}},
	}
}

// TestArrivalSchedulingZeroAlloc is the allocation gate on the open-loop
// driver's steady-state arrival scheduling: the exact re-arm loop the
// driver runs — Arrivals.Next plus a pooled-kernel AtCall — must not
// allocate, for every arrival family. The kernel event pool is warmed
// by the first firing (the sim package's own guards cover pool
// steady-state); here the measured window starts after one firing.
func TestArrivalSchedulingZeroAlloc(t *testing.T) {
	for _, spec := range benchSpecs() {
		spec := spec
		t.Run(string(spec.Kind), func(t *testing.T) {
			arr, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			k := sim.NewKernel()
			stream := rng.NewSource(3).Stream("alloc-guard")
			fires := 0
			var rearm sim.Callback
			rearm = func(any) {
				fires++
				if next := arr.Next(k.Now(), stream); next < sim.MaxTime {
					k.AtCall(next, rearm, nil)
				}
			}
			// Warm: one arm+fire round trip fills the event pool.
			k.AtCall(arr.Next(0, stream), rearm, nil)
			if !k.Step() {
				t.Fatal("no first arrival")
			}
			allocs := testing.AllocsPerRun(2000, func() {
				if !k.Step() {
					t.Fatal("arrival loop drained")
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state arrival scheduling allocates %v allocs/op, want 0", allocs)
			}
			if fires < 2000 {
				t.Fatalf("only %d arrivals fired", fires)
			}
		})
	}
}

// BenchmarkArrivalSchedule measures the steady-state arrival re-arm
// loop (Next + AtCall on the pooled kernel) across all five families;
// CI gates its allocs/op at zero alongside the sim ticker gate.
func BenchmarkArrivalSchedule(b *testing.B) {
	specs := benchSpecs()
	arrs := make([]Arrivals, len(specs))
	for i, s := range specs {
		a, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		arrs[i] = a
	}
	k := sim.NewKernel()
	stream := rng.NewSource(5).Stream("bench")
	for _, arr := range arrs {
		arr := arr
		var rearm sim.Callback
		rearm = func(any) {
			if next := arr.Next(k.Now(), stream); next < sim.MaxTime {
				k.AtCall(next, rearm, nil)
			}
		}
		k.AtCall(arr.Next(0, stream), rearm, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("arrival loop drained")
		}
	}
}

// BenchmarkArrivalsNext isolates the draw itself per family.
func BenchmarkArrivalsNext(b *testing.B) {
	for _, spec := range benchSpecs() {
		spec := spec
		b.Run(string(spec.Kind), func(b *testing.B) {
			arr, err := spec.Build()
			if err != nil {
				b.Fatal(err)
			}
			stream := rng.NewSource(9).Stream("next")
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = arr.Next(now, stream)
				if now >= sim.MaxTime {
					b.Fatal("process ended")
				}
			}
		})
	}
}
