package load

import (
	"math"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// Arrivals is an arrival process over session starts. Implementations
// are deterministic given the stream and allocation-free in steady
// state; they may keep internal phase (MMPP state, trace cursor), so
// one instance drives exactly one driver.
type Arrivals interface {
	// Next returns the absolute virtual time of the first arrival
	// strictly after now, drawing from r. It returns sim.MaxTime when
	// the process has ended (a trace that decays to zero rate).
	Next(now sim.Time, r *rng.Stream) sim.Time
}

// rater is a deterministic intensity function with a finite upper
// bound; the shared thinning loop turns one into an exact
// nonhomogeneous Poisson process (Lewis & Shedler).
type rater interface {
	// rateAt reports the intensity at t seconds (>= 0, <= maxRate).
	rateAt(tSec float64) float64
	// maxRate bounds rateAt over all time (> 0).
	maxRate() float64
}

// maxSimSeconds is the largest float64 second count that still converts
// to a valid sim.Time; beyond it a process reports sim.MaxTime (ended).
const maxSimSeconds = float64(1 << 62 / int64(sim.Second))

// thinNext draws the next arrival of the nonhomogeneous process f by
// thinning a homogeneous candidate stream at f.maxRate: each candidate
// survives with probability rate/max. Exact for deterministic rate
// functions, allocation-free, and O(max/mean) candidates per arrival.
func thinNext(f rater, now sim.Time, r *rng.Stream) sim.Time {
	max := f.maxRate()
	t := now.Sec()
	for {
		t += r.Exp(1 / max)
		if t >= maxSimSeconds {
			return sim.MaxTime
		}
		if r.Float64()*max <= f.rateAt(t) {
			return sim.Seconds(t)
		}
	}
}

// PoissonArrivals is a homogeneous Poisson process: independent
// exponential gaps at the given rate. The memoryless baseline every
// other shape is measured against (index of dispersion 1).
type PoissonArrivals struct {
	// Rate is the intensity in arrivals per second.
	Rate float64
}

// Next implements Arrivals.
func (p *PoissonArrivals) Next(now sim.Time, r *rng.Stream) sim.Time {
	return clampTime(now.Sec() + r.Exp(1/p.Rate))
}

// MMPPArrivals is a two-state Markov-modulated Poisson process: a base
// state emitting at BaseRate and a burst state at BurstRate, with
// exponentially distributed dwell times. The classic parsimonious model
// of bursty web traffic — its counts are overdispersed (index of
// dispersion > 1) while each state stays locally Poisson.
type MMPPArrivals struct {
	BaseRate, BurstRate   float64
	BaseDwell, BurstDwell float64 // mean seconds per visit

	// burst and switchAt are the modulating chain's current phase;
	// started lazily so the zero value begins in the base state at the
	// first call.
	burst    bool
	switchAt sim.Time
	started  bool
}

// Next implements Arrivals. Because both the emission and dwell
// distributions are exponential, the process restarts memorylessly at
// every state switch: draw a gap at the current state's rate, and when
// it overshoots the switch time, advance to the switch and redraw.
func (m *MMPPArrivals) Next(now sim.Time, r *rng.Stream) sim.Time {
	if !m.started {
		m.started = true
		m.switchAt = clampTime(now.Sec() + r.Exp(m.BaseDwell))
	}
	for {
		rate := m.BaseRate
		dwellNext := m.BurstDwell
		if m.burst {
			rate = m.BurstRate
			dwellNext = m.BaseDwell
		}
		t := clampTime(now.Sec() + r.Exp(1/rate))
		if t >= sim.MaxTime {
			return sim.MaxTime
		}
		if t < m.switchAt {
			return t
		}
		now = m.switchAt
		m.burst = !m.burst
		m.switchAt = clampTime(now.Sec() + r.Exp(dwellNext))
	}
}

// clampTime converts seconds to sim.Time, saturating at MaxTime so
// extreme (but valid) dwell or gap draws cannot overflow into negative
// timestamps.
func clampTime(tSec float64) sim.Time {
	if tSec >= maxSimSeconds {
		return sim.MaxTime
	}
	return sim.Seconds(tSec)
}

// DiurnalArrivals modulates a base rate sinusoidally:
//
//	rate(t) = Rate * (1 + Amplitude*sin(2*pi*t/Period))
//
// a compressed day/night cycle. Over any whole number of periods the
// integrated intensity is exactly Rate*t, so whole-period counts are
// Poisson with mean Rate*Period — the closed form the tests pin.
type DiurnalArrivals struct {
	Rate      float64
	Amplitude float64 // in [0,1)
	Period    float64 // seconds
}

func (d *DiurnalArrivals) rateAt(t float64) float64 {
	return d.Rate * (1 + d.Amplitude*math.Sin(2*math.Pi*t/d.Period))
}

func (d *DiurnalArrivals) maxRate() float64 { return d.Rate * (1 + d.Amplitude) }

// Next implements Arrivals.
func (d *DiurnalArrivals) Next(now sim.Time, r *rng.Stream) sim.Time {
	return thinNext(d, now, r)
}

// SpikeArrivals is a flash crowd: base rate, then at time At a linear
// ramp over Ramp seconds up to Rate*Factor, held for Hold seconds, and
// ramped back down — the trapezoid profile of a link-driven crowd.
type SpikeArrivals struct {
	Rate   float64
	Factor float64 // peak multiplier, > 1
	At     float64 // spike start, seconds
	Ramp   float64 // ramp up/down duration, seconds
	Hold   float64 // plateau duration, seconds
}

func (s *SpikeArrivals) rateAt(t float64) float64 {
	peak := s.Rate * s.Factor
	switch {
	case t < s.At:
		return s.Rate
	case s.Ramp > 0 && t < s.At+s.Ramp:
		return s.Rate + (peak-s.Rate)*(t-s.At)/s.Ramp
	case t < s.At+s.Ramp+s.Hold:
		return peak
	case s.Ramp > 0 && t < s.At+2*s.Ramp+s.Hold:
		return peak - (peak-s.Rate)*(t-s.At-s.Ramp-s.Hold)/s.Ramp
	default:
		return s.Rate
	}
}

func (s *SpikeArrivals) maxRate() float64 { return s.Rate * s.Factor }

// Next implements Arrivals.
func (s *SpikeArrivals) Next(now sim.Time, r *rng.Stream) sim.Time {
	return thinNext(s, now, r)
}
