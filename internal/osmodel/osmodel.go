// Package osmodel tracks the operating-system-level activity of one OS
// instance (a VM guest, dom0, or a bare-metal host): process and context
// switch counters, interrupts, paging, memory segments, and load
// averages. The sysstat collector samples this state every 2 seconds to
// synthesize its 182 metrics, mirroring what sysstat reads from /proc.
package osmodel

import (
	"vwchar/internal/hw"
	"vwchar/internal/sim"
)

// OS models one operating system instance.
type OS struct {
	// Name identifies the instance, e.g. "webapp-vm" or "dom0".
	Name string
	// Mem is the RAM visible to this OS (the VM allocation for guests).
	Mem *hw.Memory

	// Cumulative activity counters, advanced by the workload models.
	CtxSwitches uint64
	Interrupts  uint64
	SoftIRQs    uint64
	Forks       uint64
	Faults      uint64
	MajFaults   uint64
	// PgInBytes and PgOutBytes count disk-backed paging traffic.
	PgInBytes  float64
	PgOutBytes float64
	// SwapInBytes and SwapOutBytes count swap traffic (zero on the
	// paper's testbed: RAM was never exhausted).
	SwapInBytes  float64
	SwapOutBytes float64

	// Instantaneous state.
	Procs    int
	RunQueue int
	Blocked  int
	OpenFds  int
	TCPSocks int
	UDPSocks int

	load1, load5, load15 float64
}

// New returns an OS with the given memory and a baseline process
// population (kernel threads plus init-style daemons).
func New(name string, mem *hw.Memory, baseProcs int) *OS {
	return &OS{Name: name, Mem: mem, Procs: baseProcs, OpenFds: baseProcs * 8}
}

// Fork records process creations.
func (o *OS) Fork(n int) {
	o.Forks += uint64(n)
	o.Procs += n
}

// Exit records process exits, never dropping below zero.
func (o *OS) Exit(n int) {
	o.Procs -= n
	if o.Procs < 0 {
		o.Procs = 0
	}
}

// NoteContext records n context switches.
func (o *OS) NoteContext(n uint64) { o.CtxSwitches += n }

// NoteInterrupts records hardware interrupts and softirqs.
func (o *OS) NoteInterrupts(hard, soft uint64) {
	o.Interrupts += hard
	o.SoftIRQs += soft
}

// NoteFaults records minor and major page faults.
func (o *OS) NoteFaults(minor, major uint64) {
	o.Faults += minor + major
	o.MajFaults += major
}

// NotePaging records disk-backed page traffic in bytes.
func (o *OS) NotePaging(inBytes, outBytes float64) {
	if inBytes > 0 {
		o.PgInBytes += inBytes
	}
	if outBytes > 0 {
		o.PgOutBytes += outBytes
	}
}

// LoadAvg reports the 1/5/15-minute load averages.
func (o *OS) LoadAvg() (l1, l5, l15 float64) { return o.load1, o.load5, o.load15 }

// Tick advances the load averages given the elapsed interval; call it
// from the collector's sampling loop. The decay constants follow the
// kernel's fixed-point loadavg (exp(-dt/60), etc.).
func (o *OS) Tick(dt sim.Time) {
	secs := dt.Sec()
	if secs <= 0 {
		return
	}
	n := float64(o.RunQueue + o.Blocked)
	decay := func(period float64) float64 {
		// First-order approximation of exp(-secs/period), adequate for
		// 2 s ticks against 60 s+ periods and cheaper to reason about.
		f := 1 - secs/period
		if f < 0 {
			f = 0
		}
		return f
	}
	f1, f5, f15 := decay(60), decay(300), decay(900)
	o.load1 = o.load1*f1 + n*(1-f1)
	o.load5 = o.load5*f5 + n*(1-f5)
	o.load15 = o.load15*f15 + n*(1-f15)
}

// ChunkAllocator grows a labeled memory component in discrete chunks as
// observed load crosses escalating thresholds. This reproduces the
// paper's observation that browsing workloads show abrupt RAM jumps: "as
// more client browsing requests arrive, some requests are backlogged and
// after a certain period of time the server allocates more RAM to
// process those backlogged requests" (Apache spawning worker batches).
//
// The k-th growth triggers when the observed level reaches Threshold*k,
// so each jump requires a new high-water mark — which is why jumps are
// sparse and happen at load-dependent times. Growth is one-way within a
// run: worker pools do not reap quickly relative to the paper's
// 20-minute window.
type ChunkAllocator struct {
	// Mem and Label select the component to grow.
	Mem   *hw.Memory
	Label string
	// Base is the component's initial size in bytes.
	Base float64
	// Chunk is the growth increment in bytes.
	Chunk float64
	// Max bounds Base+growth.
	Max float64
	// Threshold is the load level that triggers the first growth; the
	// k-th growth requires Threshold*k.
	Threshold int
	// Cooldown is the minimum virtual time between growths.
	Cooldown sim.Time

	grown      float64
	lastGrowth sim.Time
	started    bool
	// Growths counts chunk allocations, exposed for jump verification.
	Growths int
}

// Init installs the base allocation; call once before the run starts.
func (a *ChunkAllocator) Init() {
	a.Mem.Set(a.Label, a.Base)
	a.started = true
}

// Observe inspects the load level at virtual time now and grows the
// component when warranted, returning true when a growth occurred.
func (a *ChunkAllocator) Observe(now sim.Time, level int) bool {
	if !a.started {
		a.Init()
	}
	if a.Threshold <= 0 || level < a.Threshold*(a.Growths+1) {
		return false
	}
	if a.Growths > 0 && now-a.lastGrowth < a.Cooldown {
		return false
	}
	if a.Base+a.grown+a.Chunk > a.Max {
		return false
	}
	a.grown += a.Chunk
	a.Growths++
	a.lastGrowth = now
	a.Mem.Set(a.Label, a.Base+a.grown)
	return true
}

// Current reports the component's present size in bytes.
func (a *ChunkAllocator) Current() float64 { return a.Base + a.grown }

// PageCache models an OS page cache that warms toward a ceiling as bytes
// are read, with diminishing returns: each read inserts the fraction of
// its bytes that were not already cached.
type PageCache struct {
	Mem   *hw.Memory
	Label string
	// Ceiling bounds the cache size in bytes.
	Ceiling float64

	size float64
}

// Touch records a read of n bytes, growing the cache, and returns the
// bytes that missed (and therefore hit the disk).
func (p *PageCache) Touch(n float64) (missBytes float64) {
	if n <= 0 {
		return 0
	}
	hitRatio := 0.0
	if p.Ceiling > 0 {
		hitRatio = p.size / p.Ceiling
	}
	miss := n * (1 - hitRatio)
	p.size += miss * 0.5 // half of missed bytes are cacheable pages
	if p.size > p.Ceiling {
		p.size = p.Ceiling
	}
	if p.Mem != nil {
		p.Mem.Set(p.Label, p.size)
	}
	return miss
}

// Size reports current cache bytes.
func (p *PageCache) Size() float64 { return p.size }
