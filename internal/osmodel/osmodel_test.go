package osmodel

import (
	"testing"
	"testing/quick"

	"vwchar/internal/hw"
	"vwchar/internal/sim"
)

func TestOSCounters(t *testing.T) {
	os := New("vm", hw.NewMemory(1<<30), 50)
	if os.Procs != 50 {
		t.Fatalf("base procs = %d", os.Procs)
	}
	os.Fork(8)
	if os.Procs != 58 || os.Forks != 8 {
		t.Fatalf("after fork: procs=%d forks=%d", os.Procs, os.Forks)
	}
	os.Exit(100)
	if os.Procs != 0 {
		t.Fatalf("Exit should clamp at 0, got %d", os.Procs)
	}
	os.NoteContext(5)
	os.NoteInterrupts(3, 4)
	os.NoteFaults(10, 2)
	os.NotePaging(1000, 2000)
	if os.CtxSwitches != 5 || os.Interrupts != 3 || os.SoftIRQs != 4 {
		t.Fatal("context/interrupt counters wrong")
	}
	if os.Faults != 12 || os.MajFaults != 2 {
		t.Fatalf("faults: %d/%d", os.Faults, os.MajFaults)
	}
	if os.PgInBytes != 1000 || os.PgOutBytes != 2000 {
		t.Fatal("paging counters wrong")
	}
	os.NotePaging(-5, -5) // negative ignored
	if os.PgInBytes != 1000 || os.PgOutBytes != 2000 {
		t.Fatal("negative paging should be ignored")
	}
}

func TestLoadAvgConvergesTowardRunQueue(t *testing.T) {
	os := New("vm", hw.NewMemory(1<<30), 10)
	os.RunQueue = 4
	for i := 0; i < 300; i++ { // 600 s of 2 s ticks
		os.Tick(2 * sim.Second)
	}
	l1, l5, l15 := os.LoadAvg()
	if l1 < 3.5 || l1 > 4.5 {
		t.Fatalf("ldavg-1 = %v, want ~4", l1)
	}
	if l5 < 2.5 || l15 < 1 {
		t.Fatalf("slower averages should be converging: %v %v", l5, l15)
	}
	if !(l1 >= l5 && l5 >= l15) {
		t.Fatalf("rising load should order l1>=l5>=l15: %v %v %v", l1, l5, l15)
	}
	os.Tick(0) // no-op
}

func TestChunkAllocatorEscalatingThresholds(t *testing.T) {
	mem := hw.NewMemory(4 << 30)
	a := ChunkAllocator{
		Mem: mem, Label: "apache",
		Base: 100e6, Chunk: 50e6, Max: 300e6,
		Threshold: 4, Cooldown: 10 * sim.Second,
	}
	a.Init()
	if mem.Get("apache") != 100e6 {
		t.Fatal("Init should install base")
	}
	// Below first threshold: no growth.
	if a.Observe(sim.Second, 3) {
		t.Fatal("level 3 < threshold 4 should not grow")
	}
	// First growth at level 4.
	if !a.Observe(2*sim.Second, 4) {
		t.Fatal("level 4 should trigger first growth")
	}
	if a.Current() != 150e6 {
		t.Fatalf("Current = %v", a.Current())
	}
	// Second growth needs level 8, not 4.
	if a.Observe(30*sim.Second, 5) {
		t.Fatal("level 5 should not trigger second growth (needs 8)")
	}
	if !a.Observe(40*sim.Second, 8) {
		t.Fatal("level 8 should trigger second growth")
	}
	if a.Growths != 2 {
		t.Fatalf("Growths = %d", a.Growths)
	}
}

func TestChunkAllocatorCooldown(t *testing.T) {
	a := ChunkAllocator{
		Mem: hw.NewMemory(4 << 30), Label: "x",
		Base: 0, Chunk: 10e6, Max: 100e6,
		Threshold: 1, Cooldown: 60 * sim.Second,
	}
	a.Init()
	if !a.Observe(0, 1) {
		t.Fatal("first growth should fire")
	}
	if a.Observe(30*sim.Second, 10) {
		t.Fatal("growth during cooldown should be suppressed")
	}
	if !a.Observe(61*sim.Second, 2) {
		t.Fatal("growth after cooldown should fire")
	}
}

func TestChunkAllocatorRespectsMax(t *testing.T) {
	a := ChunkAllocator{
		Mem: hw.NewMemory(4 << 30), Label: "x",
		Base: 90e6, Chunk: 20e6, Max: 100e6,
		Threshold: 1,
	}
	a.Init()
	if a.Observe(0, 100) {
		t.Fatal("growth beyond Max should be refused")
	}
}

func TestChunkAllocatorAutoInit(t *testing.T) {
	mem := hw.NewMemory(4 << 30)
	a := ChunkAllocator{Mem: mem, Label: "x", Base: 5e6, Chunk: 1e6, Max: 10e6, Threshold: 1}
	a.Observe(0, 0) // triggers Init lazily
	if mem.Get("x") != 5e6 {
		t.Fatal("Observe should lazily Init")
	}
}

func TestPageCacheWarmsWithDiminishingMisses(t *testing.T) {
	mem := hw.NewMemory(4 << 30)
	pc := PageCache{Mem: mem, Label: "cache", Ceiling: 100e6}
	first := pc.Touch(10e6)
	if first != 10e6 {
		t.Fatalf("cold cache should miss everything, got %v", first)
	}
	var last float64
	for i := 0; i < 200; i++ {
		last = pc.Touch(10e6)
	}
	if last >= first {
		t.Fatalf("misses should shrink as cache warms: %v -> %v", first, last)
	}
	if pc.Size() > 100e6 {
		t.Fatalf("cache exceeded ceiling: %v", pc.Size())
	}
	if mem.Get("cache") != pc.Size() {
		t.Fatal("memory label should track cache size")
	}
	if pc.Touch(0) != 0 || pc.Touch(-5) != 0 {
		t.Fatal("non-positive touches should miss nothing")
	}
}

// Property: cache size is monotone non-decreasing and bounded by the
// ceiling for any read sequence.
func TestPropertyPageCacheMonotoneBounded(t *testing.T) {
	f := func(reads []uint32) bool {
		pc := PageCache{Ceiling: 1e6}
		prev := 0.0
		for _, r := range reads {
			pc.Touch(float64(r))
			if pc.Size() < prev || pc.Size() > 1e6 {
				return false
			}
			prev = pc.Size()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocator growth count is monotone in observed level
// sequence and never exceeds (Max-Base)/Chunk.
func TestPropertyAllocatorBounded(t *testing.T) {
	f := func(levels []uint8) bool {
		a := ChunkAllocator{
			Mem: hw.NewMemory(4 << 30), Label: "x",
			Base: 0, Chunk: 10, Max: 50, Threshold: 2,
		}
		a.Init()
		for i, l := range levels {
			a.Observe(sim.Time(i)*sim.Minute, int(l))
		}
		return a.Growths <= 5 && a.Current() <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
