package model

import (
	"math"
	"strings"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/timeseries"
)

func testDataset() rubis.DatasetConfig {
	return rubis.DatasetConfig{
		Regions: 12, Categories: 8, Users: 800,
		ActiveItems: 250, OldItems: 400,
		BidsPerItem: 3, CommentsPerUser: 1, BufferPages: 128,
	}
}

func testRun(t *testing.T, mix experiment.MixKind) *experiment.Result {
	t.Helper()
	cfg := experiment.DefaultConfig(experiment.Virtualized, mix)
	cfg.Clients = 250
	cfg.Duration = 150 * sim.Second
	cfg.Dataset = testDataset()
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFitSeriesAndSynthesize(t *testing.T) {
	res := testRun(t, experiment.MixBrowsing)
	s := res.CPU(experiment.TierWeb)
	m, err := FitSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean <= 0 || m.Std <= 0 {
		t.Fatalf("moments: %+v", m)
	}
	if m.KS >= 0.5 {
		t.Fatalf("no family fits better than KS %.3f", m.KS)
	}
	if m.Phi <= -1 || m.Phi >= 1 {
		t.Fatalf("phi = %v outside stationary region", m.Phi)
	}
	if !strings.Contains(m.String(), "AR1") {
		t.Fatalf("String() = %q", m.String())
	}
	// Synthesized trace statistically resembles the original.
	synth := m.Synthesize(2000, rng.NewSource(5).Stream("synth"))
	if synth.Len() != 2000 {
		t.Fatalf("synth len = %d", synth.Len())
	}
	if math.Abs(synth.Mean()-m.Mean)/m.Mean > 0.1 {
		t.Fatalf("synth mean %v vs model mean %v", synth.Mean(), m.Mean)
	}
	for _, v := range synth.Values {
		if v < 0 {
			t.Fatal("synthesized demand went negative")
		}
	}
	if m.Synthesize(0, rng.NewSource(5).Stream("x")).Len() != 0 {
		t.Fatal("n=0 should produce empty series")
	}
}

func TestFitSeriesErrors(t *testing.T) {
	short := timeseries.New("short", "x")
	short.Append(1)
	if _, err := FitSeries(short); err == nil {
		t.Fatal("short series should error")
	}
}

func TestFitWorkloadModel(t *testing.T) {
	res := testRun(t, experiment.MixBrowsing)
	wm, err := Fit(res)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Environment != experiment.Virtualized || wm.Mix != experiment.MixBrowsing {
		t.Fatalf("identity: %+v", wm)
	}
	keys := wm.Keys()
	if len(keys) < 8 {
		t.Fatalf("fitted only %d series: %v", len(keys), keys)
	}
	if _, ok := wm.Series["webapp/cpu"]; !ok {
		t.Fatal("webapp/cpu missing from model")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestTransactionFootprints(t *testing.T) {
	tm, err := FitTransactions(testDataset(), 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm.Footprints) != len(rubis.AllInteractions()) {
		t.Fatalf("footprints = %d", len(tm.Footprints))
	}
	view := tm.Footprints[rubis.ViewItem]
	home := tm.Footprints[rubis.Home]
	if view.DBCycles <= home.DBCycles {
		t.Fatal("ViewItem should cost more DB than the static Home page")
	}
	if home.ToDB != 0 {
		t.Fatalf("Home should not talk to the DB, got %v bytes", home.ToDB)
	}
	bid := tm.Footprints[rubis.StoreBid]
	if bid.WriteFraction != 1 {
		t.Fatalf("StoreBid write fraction = %v", bid.WriteFraction)
	}
	if bid.DiskWriteBytes <= 0 {
		t.Fatal("StoreBid should journal to disk")
	}
	if _, err := FitTransactions(testDataset(), 0, 3); err == nil {
		t.Fatal("zero samples should error")
	}
}

func TestStationaryDistribution(t *testing.T) {
	dist := StationaryDistribution(rubis.BrowsingMix(), 100000, 7)
	total := 0.0
	for _, f := range dist {
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("stationary distribution sums to %v", total)
	}
	if dist[rubis.SearchItemsInCategory] < 0.1 {
		t.Fatalf("searches should dominate browsing: %v", dist[rubis.SearchItemsInCategory])
	}
	if dist[rubis.StoreBid] != 0 {
		t.Fatal("browsing mix must not bid")
	}
}

// The headline test for the paper's future-work extension: the
// transaction-level model predicts the simulated web tier CPU demand
// within a modest tolerance, without running the simulation.
func TestTransactionModelPredictsSimulatedDemand(t *testing.T) {
	res := testRun(t, experiment.MixBrowsing)
	tm, err := FitTransactions(testDataset(), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Completed) / res.Config.Duration.Sec()
	pred := tm.Predict(rubis.BrowsingMix(), rate, 200000, 9)

	actualWeb := res.CPU(experiment.TierWeb).Mean()
	if relErr := math.Abs(pred.WebCyclesPer2s-actualWeb) / actualWeb; relErr > 0.25 {
		t.Fatalf("web demand prediction off by %.0f%% (pred %.3g, actual %.3g)",
			relErr*100, pred.WebCyclesPer2s, actualWeb)
	}
	actualDB := res.CPU(experiment.TierDB).Mean()
	if relErr := math.Abs(pred.DBCyclesPer2s-actualDB) / actualDB; relErr > 0.4 {
		t.Fatalf("db demand prediction off by %.0f%% (pred %.3g, actual %.3g)",
			relErr*100, pred.DBCyclesPer2s, actualDB)
	}
	if pred.WriteFraction != 0 {
		t.Fatalf("browsing prediction has writes: %v", pred.WriteFraction)
	}
	// Bidding prediction should carry a write fraction.
	bidPred := tm.Predict(rubis.BiddingMix(), rate, 200000, 9)
	if bidPred.WriteFraction <= 0 {
		t.Fatal("bidding prediction lost its writes")
	}
	if bidPred.DBDiskKBPer2s <= pred.DBDiskKBPer2s {
		t.Fatal("bidding should predict more DB disk demand than browsing")
	}
}
