// Package model implements the paper's stated future work: "design and
// apply formal methods to model the workload dynamics at both resource
// level and transaction level".
//
// Resource level: each collected demand series is fitted with a marginal
// distribution (best of normal/lognormal/exponential by KS distance) plus
// an AR(1) temporal dependence, which together can synthesize new traces
// with the same stationary statistics — the histogram/analytic workload
// models of the paper's references [7] and [13].
//
// Transaction level: each RUBiS interaction type gets a measured resource
// footprint (web cycles, DB cycles, transfer and storage bytes); combined
// with a mix's stationary state distribution this predicts aggregate tier
// demand for any composition and request rate without running the full
// simulation.
package model

import (
	"fmt"
	"math"
	"sort"

	"vwchar/internal/experiment"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/stats"
	"vwchar/internal/timeseries"
)

// SeriesModel is the fitted resource-level model of one demand series.
type SeriesModel struct {
	// Name identifies the modeled series.
	Name string
	// Dist is the fitted marginal distribution.
	Dist stats.Distribution
	// KS is the Kolmogorov-Smirnov distance of the fit.
	KS float64
	// Phi is the lag-1 autocorrelation (AR(1) coefficient).
	Phi float64
	// Mean and Std are the sample moments.
	Mean, Std float64
}

// FitSeries fits the resource-level model to a series.
func FitSeries(s *timeseries.Series) (SeriesModel, error) {
	if s.Len() < 10 {
		return SeriesModel{}, fmt.Errorf("model: series %q too short (%d samples)", s.Name, s.Len())
	}
	sum := stats.Summarize(s.Values)
	dist, ks, err := stats.BestFit(s.Values)
	if err != nil {
		return SeriesModel{}, fmt.Errorf("model: series %q: %w", s.Name, err)
	}
	phi := stats.Autocorrelation(s.Values, 1)
	// Clamp into the stationary region.
	if phi > 0.99 {
		phi = 0.99
	}
	if phi < -0.99 {
		phi = -0.99
	}
	return SeriesModel{
		Name: s.Name,
		Dist: dist,
		KS:   ks,
		Phi:  phi,
		Mean: sum.Mean,
		Std:  sum.Std,
	}, nil
}

// Synthesize generates n samples from the fitted model: an AR(1) process
// with the sample mean/variance and Phi, truncated at zero (demand
// counters are non-negative). The marginal is Gaussian-approximate; the
// fitted Dist records which family described the data best.
func (m SeriesModel) Synthesize(n int, r *rng.Stream) *timeseries.Series {
	out := timeseries.New(m.Name+".synth", "modeled")
	if n <= 0 {
		return out
	}
	innovStd := m.Std * math.Sqrt(1-m.Phi*m.Phi)
	x := m.Mean + m.Std*r.Normal(0, 1)
	for i := 0; i < n; i++ {
		if x < 0 {
			x = 0
		}
		out.Append(x)
		x = m.Mean + m.Phi*(x-m.Mean) + innovStd*r.Normal(0, 1)
	}
	return out
}

// String renders the model for reports.
func (m SeriesModel) String() string {
	return fmt.Sprintf("%s ~ %s(%s), KS=%.3f, AR1 phi=%.2f",
		m.Name, m.Dist.Name(), m.Dist.Params(), m.KS, m.Phi)
}

// WorkloadModel is the resource-level model of one experiment: one
// SeriesModel per tier and resource.
type WorkloadModel struct {
	Environment experiment.Env
	Mix         experiment.MixKind
	// Series is keyed "tier/resource", e.g. "webapp/cpu".
	Series map[string]SeriesModel
}

// resourceSeries enumerates the headline series of a result.
func resourceSeries(res *experiment.Result) map[string]*timeseries.Series {
	tiers := []string{experiment.TierWeb, experiment.TierDB}
	if res.Config.Environment == experiment.Virtualized {
		tiers = append(tiers, experiment.TierDom0)
	}
	out := make(map[string]*timeseries.Series)
	for _, tier := range tiers {
		out[tier+"/cpu"] = res.CPU(tier)
		out[tier+"/ram"] = res.Mem(tier)
		out[tier+"/disk"] = res.Disk(tier)
		out[tier+"/net"] = res.Net(tier)
	}
	return out
}

// Fit builds the workload model from a completed run. Series that no
// distribution family can describe (for example all-zero traces) are
// skipped; at least one series must fit.
func Fit(res *experiment.Result) (*WorkloadModel, error) {
	wm := &WorkloadModel{
		Environment: res.Config.Environment,
		Mix:         res.Config.Mix,
		Series:      make(map[string]SeriesModel),
	}
	for key, s := range resourceSeries(res) {
		m, err := FitSeries(s)
		if err != nil {
			continue
		}
		wm.Series[key] = m
	}
	if len(wm.Series) == 0 {
		return nil, fmt.Errorf("model: no series could be fitted")
	}
	return wm, nil
}

// Keys lists the fitted series keys in sorted order.
func (wm *WorkloadModel) Keys() []string {
	keys := make([]string, 0, len(wm.Series))
	for k := range wm.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TransactionFootprint is the measured mean resource demand of one
// interaction type.
type TransactionFootprint struct {
	Interaction rubis.Interaction
	// Samples is how many executions the footprint averages.
	Samples int
	// WebCycles and DBCycles are per-request compute demands.
	WebCycles, DBCycles float64
	// RequestBytes/ResponseBytes cross the client link; ToDB/FromDB
	// cross the inter-tier link.
	RequestBytes, ResponseBytes float64
	ToDB, FromDB                float64
	// DiskReadBytes/DiskWriteBytes are the DB tier's storage demand.
	DiskReadBytes, DiskWriteBytes float64
	// WriteFraction is 1 for read-write interactions.
	WriteFraction float64
}

// TransactionModel maps every interaction to its footprint plus the
// stationary state distribution of a mix.
type TransactionModel struct {
	Footprints map[rubis.Interaction]TransactionFootprint
}

// FitTransactions measures each interaction's footprint by executing it
// samplesPer times against a fresh application instance.
func FitTransactions(cfg rubis.DatasetConfig, samplesPer int, seed uint64) (*TransactionModel, error) {
	if samplesPer < 1 {
		return nil, fmt.Errorf("model: need at least one sample per interaction")
	}
	src := rng.NewSource(seed)
	app, err := rubis.NewApp(cfg, src.Stream("model-dataset"))
	if err != nil {
		return nil, err
	}
	r := src.Stream("model-exec")
	params := rubis.DefaultCostParams()
	tm := &TransactionModel{Footprints: make(map[rubis.Interaction]TransactionFootprint)}
	sess := &rubis.Session{UserID: 1, ItemID: 1, CategoryID: 0, RegionID: 0, ToUserID: 2}
	for _, kind := range rubis.AllInteractions() {
		fp := TransactionFootprint{Interaction: kind}
		for i := 0; i < samplesPer; i++ {
			// Refresh the session focus so footprints average across the
			// dataset rather than one hot row.
			sess.ItemID = int64(r.Intn(int(app.TotalItems())))
			sess.ToUserID = int64(r.Intn(int(app.TotalUsers())))
			sess.CategoryID = int64(r.Intn(cfg.Categories))
			sess.RegionID = int64(r.Intn(cfg.Regions))
			res, err := app.Execute(kind, sess, r, params)
			if err != nil {
				return nil, fmt.Errorf("model: %s: %w", kind, err)
			}
			fp.Samples++
			fp.WebCycles += res.WebCycles
			fp.DBCycles += res.TotalDBCycles()
			fp.RequestBytes += res.RequestBytes
			fp.ResponseBytes += res.ResponseBytes
			toDB, fromDB := res.DBTransferBytes()
			fp.ToDB += toDB
			fp.FromDB += fromDB
			for _, q := range res.Queries {
				fp.DiskReadBytes += q.Receipt.DiskReadBytes
				fp.DiskWriteBytes += q.Receipt.DiskWriteBytes
			}
			if res.IsWrite {
				fp.WriteFraction++
			}
		}
		n := float64(fp.Samples)
		fp.WebCycles /= n
		fp.DBCycles /= n
		fp.RequestBytes /= n
		fp.ResponseBytes /= n
		fp.ToDB /= n
		fp.FromDB /= n
		fp.DiskReadBytes /= n
		fp.DiskWriteBytes /= n
		fp.WriteFraction /= n
		tm.Footprints[kind] = fp
	}
	return tm, nil
}

// StationaryDistribution estimates the long-run interaction frequencies
// of a mix by walking its chain.
func StationaryDistribution(m rubis.Model, steps int, seed uint64) map[rubis.Interaction]float64 {
	r := rng.NewSource(seed).Stream("stationary")
	counts := make(map[rubis.Interaction]int)
	cur := m.StartState()
	for i := 0; i < steps; i++ {
		cur = m.NextInteraction(cur, r)
		counts[cur]++
	}
	out := make(map[rubis.Interaction]float64, len(counts))
	for k, v := range counts {
		out[k] = float64(v) / float64(steps)
	}
	return out
}

// DemandPrediction is the transaction-level aggregate demand forecast.
type DemandPrediction struct {
	// RequestsPerSecond is the assumed arrival rate.
	RequestsPerSecond float64
	// WebCyclesPer2s and DBCyclesPer2s predict the tier CPU series means.
	WebCyclesPer2s, DBCyclesPer2s float64
	// WebNetKBPer2s and DBNetKBPer2s predict the tier network means.
	WebNetKBPer2s, DBNetKBPer2s float64
	// DBDiskKBPer2s predicts the DB tier's storage demand.
	DBDiskKBPer2s float64
	// WriteFraction predicts the read-write share.
	WriteFraction float64
}

// Predict composes footprints with a mix's stationary distribution at
// the given request rate.
func (tm *TransactionModel) Predict(mix rubis.Model, reqPerSec float64, steps int, seed uint64) DemandPrediction {
	dist := StationaryDistribution(mix, steps, seed)
	var p DemandPrediction
	p.RequestsPerSecond = reqPerSec
	per2s := reqPerSec * 2
	for kind, freq := range dist {
		fp, ok := tm.Footprints[kind]
		if !ok {
			continue
		}
		w := freq * per2s
		p.WebCyclesPer2s += w * fp.WebCycles
		p.DBCyclesPer2s += w * fp.DBCycles
		p.WebNetKBPer2s += w * (fp.RequestBytes + fp.ResponseBytes + fp.ToDB + fp.FromDB) / 1024
		p.DBNetKBPer2s += w * (fp.ToDB + fp.FromDB) / 1024
		p.DBDiskKBPer2s += w * (fp.DiskReadBytes + fp.DiskWriteBytes) / 1024
		p.WriteFraction += freq * fp.WriteFraction
	}
	return p
}
