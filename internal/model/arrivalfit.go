package model

import (
	"fmt"
	"math"

	"vwchar/internal/experiment"
	"vwchar/internal/load"
	"vwchar/internal/stats"
	"vwchar/internal/timeseries"
)

// ArrivalFit is the moment-based fit of an arrival process to a
// windowed arrival-count series — the reverse of trace replay: where
// internal/load turns a Spec into arrivals, FitArrivals turns observed
// per-window arrival counts back into a runnable Spec.
type ArrivalFit struct {
	// Kind is the classified family (Poisson, Bursty, or Diurnal).
	Kind load.Kind
	// Spec is a validated, runnable spec reproducing the fitted
	// moments; feed it to load.Spec.Build or experiment.Config.Load.
	Spec load.Spec
	// MeanRate is the fitted mean intensity (arrivals/s).
	MeanRate float64
	// IoD is the index of dispersion of the window counts (variance
	// over mean): ~1 for Poisson, >1 for bursty or periodic processes.
	IoD float64
	// Period and Amplitude are the detected cycle for Diurnal fits
	// (zero otherwise).
	Period, Amplitude float64
}

// String renders the fit for reports.
func (f ArrivalFit) String() string {
	switch f.Kind {
	case load.Bursty:
		return fmt.Sprintf("bursty: base %.3g/s x%.2f burst, dwell %.3gs/%.3gs (IoD %.2f)",
			f.Spec.Rate, f.Spec.BurstFactor, f.Spec.BaseDwell, f.Spec.BurstDwell, f.IoD)
	case load.Diurnal:
		return fmt.Sprintf("diurnal: %.3g/s, amplitude %.2f, period %.3gs (IoD %.2f)",
			f.Spec.Rate, f.Spec.Amplitude, f.Spec.PeriodSeconds, f.IoD)
	default:
		return fmt.Sprintf("poisson: %.3g/s (IoD %.2f)", f.MeanRate, f.IoD)
	}
}

// Classification thresholds. Window counts of a homogeneous Poisson
// process have IoD 1; sampling noise over a few hundred windows stays
// well inside the band below. A sinusoidal rate adds variance at the
// cycle period, which the spectral projection sees; an MMPP adds
// variance with an exponentially decaying (aperiodic) correlation.
const (
	// poissonIoDBand accepts |IoD-1| below it as Poisson.
	poissonIoDBand = 0.35
	// diurnalMinAmp is the minimum relative spectral amplitude that
	// counts as periodicity.
	diurnalMinAmp = 0.25
	// diurnalExplainedFrac is how much of the IoD-implied amplitude
	// the measured harmonic must reach to classify as diurnal. For a
	// sinusoidal rate the excess dispersion is entirely the harmonic
	// (IoD-1 = mean*A^2/2, so A_iod = sqrt(2*(IoD-1)/mean) equals the
	// spectral amplitude); an MMPP's excess variance is aperiodic, so
	// its incidental spectral peak falls far short of A_iod.
	diurnalExplainedFrac = 0.6
)

// FitArrivals fits an arrival process to a windowed arrival-count
// series (counts per window, as the telemetry pipeline's
// sessions_started series reports): moment-based classification into
// Poisson / bursty MMPP / diurnal from the index of dispersion and the
// dominant-period moments, then family-specific parameter estimation.
func FitArrivals(counts *timeseries.Series) (ArrivalFit, error) {
	n := counts.Len()
	if n < 10 {
		return ArrivalFit{}, fmt.Errorf("model: arrival series %q too short (%d windows)", counts.Name, n)
	}
	w := counts.Interval
	if w <= 0 {
		return ArrivalFit{}, fmt.Errorf("model: arrival series %q has no window length", counts.Name)
	}
	sum := stats.Summarize(counts.Values)
	if sum.Mean <= 0 {
		return ArrivalFit{}, fmt.Errorf("model: arrival series %q is empty", counts.Name)
	}
	fit := ArrivalFit{
		MeanRate: sum.Mean / w,
		IoD:      sum.Variance / sum.Mean,
	}

	period, amp := dominantPeriod(counts)
	// The amplitude the IoD would imply if the excess dispersion were
	// purely sinusoidal.
	ampFromIoD := math.Sqrt(2 * math.Max(0, fit.IoD-1) / sum.Mean)
	switch {
	case fit.IoD > 1+poissonIoDBand && amp >= diurnalMinAmp &&
		amp >= diurnalExplainedFrac*ampFromIoD:
		fit.Kind = load.Diurnal
		fit.Period, fit.Amplitude = period, amp
		if fit.Amplitude >= 0.95 {
			fit.Amplitude = 0.95
		}
		fit.Spec = load.Spec{
			Kind:          load.Diurnal,
			Rate:          fit.MeanRate,
			Amplitude:     fit.Amplitude,
			PeriodSeconds: period,
		}
	case fit.IoD > 1+poissonIoDBand:
		fit.Kind = load.Bursty
		fit.Spec = fitMMPP(counts, fit.MeanRate)
	default:
		fit.Kind = load.Poisson
		fit.Spec = load.Spec{Kind: load.Poisson, Rate: fit.MeanRate}
	}
	if err := fit.Spec.Validate(); err != nil {
		return ArrivalFit{}, fmt.Errorf("model: fitted spec invalid: %w", err)
	}
	return fit, nil
}

// FitArrivalsFromResult fits the arrival process of an open-loop run
// from its telemetry: the per-window session-start counts the recorder
// collected on the collector's 2 s ticker. Windows covered by the
// spec's ramp-in are dropped first — the ramp thins admissions
// deterministically, and its rising prefix would otherwise inflate the
// index of dispersion enough to misclassify a steady process as
// bursty.
func FitArrivalsFromResult(r *experiment.Result) (ArrivalFit, error) {
	if r.Telemetry == nil {
		return ArrivalFit{}, fmt.Errorf("model: result has no telemetry")
	}
	starts := r.Telemetry.Starts
	if l := r.Config.Load; l != nil && l.RampSeconds > 0 && starts.Interval > 0 {
		skip := int(math.Ceil(l.RampSeconds / starts.Interval))
		if skip >= starts.Len() {
			return ArrivalFit{}, fmt.Errorf("model: ramp (%.0f s) covers the whole run", l.RampSeconds)
		}
		starts = starts.Slice(skip, starts.Len())
	}
	return FitArrivals(starts)
}

// dominantPeriod projects the count series onto sine/cosine pairs at
// every candidate whole-window period and returns the period with the
// largest relative amplitude (first-harmonic moment): for a rate
// lambda(t) = lambda*(1 + A*sin(2*pi*t/P)) the projection at P
// recovers A, while aperiodic overdispersion (MMPP) spreads its excess
// variance across all candidates.
func dominantPeriod(counts *timeseries.Series) (period, relAmp float64) {
	n := counts.Len()
	w := counts.Interval
	mean := counts.Mean()
	if mean <= 0 {
		return 0, 0
	}
	for k := 4; k <= n/2; k++ {
		p := float64(k) * w
		var a, b float64
		for i := 0; i < n; i++ {
			// Window i covers [i*w, (i+1)*w); use its midpoint phase.
			phase := 2 * math.Pi * (float64(i) + 0.5) * w / p
			dev := counts.At(i) - mean
			a += dev * math.Sin(phase)
			b += dev * math.Cos(phase)
		}
		amp := 2 * math.Hypot(a, b) / (float64(n) * mean)
		if amp > relAmp {
			relAmp, period = amp, p
		}
	}
	return period, relAmp
}

// fitMMPP estimates a two-state MMPP from the count series by a
// deterministic two-means split (threshold iteration on the window
// counts), then run-length moments: state rates from the class means,
// dwell times from the mean run length of consecutive same-class
// windows. Valid when windows are short relative to dwell times —
// exactly the regime the telemetry's 2 s windows versus tens-of-
// seconds dwells sit in.
func fitMMPP(counts *timeseries.Series, meanRate float64) load.Spec {
	n := counts.Len()
	w := counts.Interval
	// Two-means threshold iteration (deterministic, a few passes).
	lo, hi := counts.Min(), counts.Max()
	thr := (lo + hi) / 2
	for iter := 0; iter < 16; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		for _, v := range counts.Values {
			if v > thr {
				sumHi += v
				nHi++
			} else {
				sumLo += v
				nLo++
			}
		}
		if nLo == 0 || nHi == 0 {
			break
		}
		next := (sumLo/float64(nLo) + sumHi/float64(nHi)) / 2
		if next == thr {
			break
		}
		thr = next
	}

	var sumLo, sumHi float64
	var nLo, nHi int
	var burstRuns, baseRuns, burstWins, baseWins int
	prevBurst := false
	for i, v := range counts.Values {
		burst := v > thr
		if burst {
			sumHi += v
			nHi++
			burstWins++
		} else {
			sumLo += v
			nLo++
			baseWins++
		}
		if i > 0 && burst != prevBurst {
			if prevBurst {
				burstRuns++
			} else {
				baseRuns++
			}
		}
		prevBurst = burst
	}
	if prevBurst {
		burstRuns++
	} else {
		baseRuns++
	}
	if nLo == 0 || nHi == 0 || burstRuns == 0 || baseRuns == 0 {
		// Degenerate split: the series is not two-state separable at
		// this window size; return an overdispersion-matching fallback
		// (mild burst around the mean) rather than failing validation.
		return load.Spec{Kind: load.Bursty, Rate: meanRate * 0.8,
			BurstFactor: 1.5, BaseDwell: float64(n) * w / 4, BurstDwell: float64(n) * w / 4}
	}
	baseRate := sumLo / float64(nLo) / w
	burstRate := sumHi / float64(nHi) / w
	if baseRate <= 0 {
		baseRate = 0.1 * meanRate
	}
	factor := burstRate / baseRate
	if factor <= 1.01 {
		factor = 1.01
	}
	baseDwell := float64(baseWins) / float64(baseRuns) * w
	burstDwell := float64(burstWins) / float64(burstRuns) * w
	return load.Spec{
		Kind:        load.Bursty,
		Rate:        baseRate,
		BurstFactor: factor,
		BaseDwell:   baseDwell,
		BurstDwell:  burstDwell,
	}
}
