package model

import (
	"math"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/load"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/timeseries"
)

// windowCounts generates arrivals from a built load spec and bins them
// into w-second windows — the same shape the telemetry pipeline's
// sessions_started series has.
func windowCounts(t *testing.T, spec load.Spec, seed uint64, durSec, w float64) *timeseries.Series {
	t.Helper()
	arr, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSource(seed).Stream("arrivals")
	out := &timeseries.Series{Name: "arrivals", Unit: "sessions/window",
		Interval: w, Values: make([]float64, int(durSec/w))}
	now := sim.Time(0)
	end := sim.Seconds(durSec)
	for {
		next := arr.Next(now, r)
		if next >= end {
			return out
		}
		out.Values[int(next.Sec()/w)]++
		now = next
	}
}

// TestFitArrivalsPoissonRoundTrip is the generate→fit round trip for
// the memoryless baseline: Poisson counts classify as Poisson with the
// rate recovered and IoD near 1.
func TestFitArrivalsPoissonRoundTrip(t *testing.T) {
	spec := load.Spec{Kind: load.Poisson, Rate: 5}
	counts := windowCounts(t, spec, 101, 2000, 2)
	fit, err := FitArrivals(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != load.Poisson {
		t.Fatalf("classified %s (IoD %.2f), want poisson: %s", fit.Kind, fit.IoD, fit)
	}
	if relErr := math.Abs(fit.MeanRate/spec.Rate - 1); relErr > 0.05 {
		t.Fatalf("rate %.3f vs %v (err %.3f)", fit.MeanRate, spec.Rate, relErr)
	}
	if math.Abs(fit.IoD-1) > poissonIoDBand {
		t.Fatalf("Poisson IoD = %.3f", fit.IoD)
	}
	if fit.Spec.Kind != load.Poisson || fit.Spec.Rate != fit.MeanRate {
		t.Fatalf("spec not runnable round trip: %+v", fit.Spec)
	}
}

// TestFitArrivalsMMPPRoundTrip is the bursty round trip: two-state
// MMPP counts classify as bursty, the state rates and dwell times come
// back within moment-estimation tolerance, and regenerating from the
// fitted spec reproduces the overdispersion.
func TestFitArrivalsMMPPRoundTrip(t *testing.T) {
	spec := load.Spec{Kind: load.Bursty, Rate: 4, BurstFactor: 6,
		BaseDwell: 60, BurstDwell: 20}
	counts := windowCounts(t, spec, 202, 6000, 2)
	fit, err := FitArrivals(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != load.Bursty {
		t.Fatalf("classified %s (IoD %.2f), want bursty: %s", fit.Kind, fit.IoD, fit)
	}
	if fit.IoD < 2 {
		t.Fatalf("MMPP counts should be strongly overdispersed, IoD = %.2f", fit.IoD)
	}
	if relErr := math.Abs(fit.MeanRate/spec.MeanRate() - 1); relErr > 0.15 {
		t.Fatalf("mean rate %.3f vs %.3f", fit.MeanRate, spec.MeanRate())
	}
	if relErr := math.Abs(fit.Spec.Rate/spec.Rate - 1); relErr > 0.25 {
		t.Fatalf("base rate %.3f vs %v", fit.Spec.Rate, spec.Rate)
	}
	if fit.Spec.BurstFactor < 3 || fit.Spec.BurstFactor > 12 {
		t.Fatalf("burst factor %.2f vs %v", fit.Spec.BurstFactor, spec.BurstFactor)
	}
	if fit.Spec.BaseDwell < spec.BaseDwell/2 || fit.Spec.BaseDwell > spec.BaseDwell*2 {
		t.Fatalf("base dwell %.1f vs %v", fit.Spec.BaseDwell, spec.BaseDwell)
	}
	if fit.Spec.BurstDwell < spec.BurstDwell/2 || fit.Spec.BurstDwell > spec.BurstDwell*2 {
		t.Fatalf("burst dwell %.1f vs %v", fit.Spec.BurstDwell, spec.BurstDwell)
	}
	// Generate from the fitted spec: the synthetic process shows the
	// same burstiness regime as the measurement it was fitted to.
	refit, err := FitArrivals(windowCounts(t, fit.Spec, 203, 6000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if refit.Kind != load.Bursty {
		t.Fatalf("refit of fitted spec classified %s", refit.Kind)
	}
	if ratio := refit.IoD / fit.IoD; ratio < 0.5 || ratio > 2 {
		t.Fatalf("regenerated IoD %.2f vs measured %.2f", refit.IoD, fit.IoD)
	}
}

// TestFitArrivalsDiurnalRoundTrip is the periodic round trip: a
// sinusoidally modulated rate classifies as diurnal with period and
// amplitude recovered from the first-harmonic moments.
func TestFitArrivalsDiurnalRoundTrip(t *testing.T) {
	spec := load.Spec{Kind: load.Diurnal, Rate: 6, Amplitude: 0.6, PeriodSeconds: 240}
	counts := windowCounts(t, spec, 303, 4800, 2)
	fit, err := FitArrivals(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != load.Diurnal {
		t.Fatalf("classified %s (IoD %.2f, amp %.2f), want diurnal: %s", fit.Kind, fit.IoD, fit.Amplitude, fit)
	}
	if relErr := math.Abs(fit.MeanRate/spec.Rate - 1); relErr > 0.05 {
		t.Fatalf("rate %.3f vs %v", fit.MeanRate, spec.Rate)
	}
	if math.Abs(fit.Spec.PeriodSeconds/spec.PeriodSeconds-1) > 0.1 {
		t.Fatalf("period %.1f vs %v", fit.Spec.PeriodSeconds, spec.PeriodSeconds)
	}
	if math.Abs(fit.Spec.Amplitude-spec.Amplitude) > 0.15 {
		t.Fatalf("amplitude %.2f vs %v", fit.Spec.Amplitude, spec.Amplitude)
	}
}

// TestFitArrivalsRejectsDegenerate pins the error paths: short series,
// empty series, zero interval.
func TestFitArrivalsRejectsDegenerate(t *testing.T) {
	short := &timeseries.Series{Interval: 2, Values: []float64{1, 2, 3}}
	if _, err := FitArrivals(short); err == nil {
		t.Fatal("short series should error")
	}
	empty := &timeseries.Series{Interval: 2, Values: make([]float64, 50)}
	if _, err := FitArrivals(empty); err == nil {
		t.Fatal("all-zero series should error")
	}
	noInterval := &timeseries.Series{Values: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}
	if _, err := FitArrivals(noInterval); err == nil {
		t.Fatal("zero-interval series should error")
	}
}

// TestFitArrivalsFromResult closes the loop across layers: an
// open-loop experiment's telemetry (per-window session starts recorded
// on the collector ticker) fits back to the Poisson process that
// generated it.
func TestFitArrivalsFromResult(t *testing.T) {
	cfg := experiment.DefaultConfig(experiment.Virtualized, experiment.MixBrowsing)
	cfg.Duration = 160 * sim.Second
	cfg.Dataset = rubis.DatasetConfig{
		Regions: 10, Categories: 8, Users: 400,
		ActiveItems: 150, OldItems: 250,
		BidsPerItem: 3, CommentsPerUser: 1, BufferPages: 256,
	}
	// RampSeconds matches the catalog scenarios' default: the thinned
	// rising prefix must be excluded from the fit, or its deterministic
	// rate trend masquerades as burstiness.
	cfg.Load = &load.Spec{Kind: load.Poisson, Rate: 4, SessionMean: 4, RampSeconds: 30}
	r, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitArrivalsFromResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != load.Poisson {
		t.Fatalf("classified %s (IoD %.2f), want poisson", fit.Kind, fit.IoD)
	}
	if relErr := math.Abs(fit.MeanRate/4 - 1); relErr > 0.25 {
		t.Fatalf("recovered rate %.3f from telemetry, want ~4", fit.MeanRate)
	}
	// A ramp spanning the whole run leaves nothing to fit.
	whole := cfg
	whole.Load = &load.Spec{Kind: load.Poisson, Rate: 4, SessionMean: 4,
		RampSeconds: cfg.Duration.Sec()}
	rw, err := experiment.Run(whole)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitArrivalsFromResult(rw); err == nil {
		t.Fatal("run-long ramp should refuse to fit")
	}
	// Closed-loop runs have no arrival process to fit.
	closed, err := experiment.Run(func() experiment.Config {
		c := cfg
		c.Load = nil
		c.Clients = 20
		c.Duration = 40 * sim.Second
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitArrivalsFromResult(closed); err == nil {
		t.Fatal("closed-loop run (all-zero starts) should not fit an arrival process")
	}
}
