// Package stats implements the statistical toolkit used to characterize
// workload traces: descriptive statistics, histograms, correlation and
// lag estimation, change-point (jump) detection, smoothing, and maximum
// likelihood distribution fits with goodness-of-fit distances.
//
// The paper observes that "the workload dynamics show some patterns that
// can be quantified by formal models"; this package supplies the formal
// models.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1)
	Std      float64
	Min      float64
	Max      float64
	Median   float64
	P25      float64
	P75      float64
	P95      float64
	P99      float64
	// CoV is the coefficient of variation Std/Mean (0 when Mean==0).
	CoV float64
	// Skewness is the adjusted Fisher-Pearson sample skewness.
	Skewness float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sum := 0.0
	s.Min = xs[0]
	s.Max = xs[0]
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		cube := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
			cube += d * d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Variance)
		if s.Std > 0 && s.N > 2 {
			n := float64(s.N)
			m3 := cube / n
			m2 := ss / n
			g1 := m3 / math.Pow(m2, 1.5)
			s.Skewness = math.Sqrt(n*(n-1)) / (n - 2) * g1
		}
	}
	if s.Mean != 0 {
		s.CoV = s.Std / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile of xs with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 { return Summarize(xs).Variance }

// Histogram is a fixed-width binned frequency count.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count out-of-range samples.
	Under, Over int
}

// NewHistogram builds a histogram of xs over [lo,hi) with bins buckets.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / width)
			if i >= bins {
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// Total reports the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Autocorrelation returns the sample autocorrelation at the given lag,
// in [-1,1]; 0 for degenerate inputs.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return 0
	}
	mean := Mean(xs)
	num := 0.0
	den := 0.0
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CrossCorrelation returns the normalized cross-correlation of x and y at
// the given lag (y shifted right by lag relative to x). A positive lag
// means y follows x.
func CrossCorrelation(x, y []float64, lag int) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(x[:n]), Mean(y[:n])
	sx, sy := 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sx += dx * dx
		sy += dy * dy
	}
	if sx == 0 || sy == 0 {
		return 0
	}
	num := 0.0
	for i := 0; i+lag < n; i++ {
		if i+lag < 0 {
			continue
		}
		num += (x[i] - mx) * (y[i+lag] - my)
	}
	return num / math.Sqrt(sx*sy)
}

// EstimateLag scans lags in [0,maxLag] and returns the lag that maximizes
// CrossCorrelation(x,y,lag) together with the correlation at that lag.
// Use it to quantify how far the DB tier trails the web tier.
func EstimateLag(x, y []float64, maxLag int) (bestLag int, bestCorr float64) {
	bestCorr = math.Inf(-1)
	for lag := 0; lag <= maxLag; lag++ {
		c := CrossCorrelation(x, y, lag)
		if c > bestCorr {
			bestCorr = c
			bestLag = lag
		}
	}
	if math.IsInf(bestCorr, -1) {
		bestCorr = 0
	}
	return bestLag, bestCorr
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0,1].
func EWMA(xs []float64, alpha float64) []float64 {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Jump is an abrupt sustained level shift detected in a series.
type Jump struct {
	// Index is the sample index where the shift is detected.
	Index int
	// Before and After are the level estimates around the shift.
	Before, After float64
}

// Magnitude reports After-Before.
func (j Jump) Magnitude() float64 { return j.After - j.Before }

// DetectJumps finds sustained upward or downward level shifts using a
// two-window mean comparison: a shift is reported at i when the mean of
// the window after i differs from the mean of the window before i by more
// than threshold. Consecutive detections are merged, keeping the largest.
// window is in samples; the paper's RAM "jumps" are detected with
// window=15 (30 s) and a threshold of ~50 MB.
func DetectJumps(xs []float64, window int, threshold float64) []Jump {
	if window < 1 || len(xs) < 2*window || threshold <= 0 {
		return nil
	}
	var jumps []Jump
	best := Jump{Index: -1}
	inRun := false
	flush := func() {
		if inRun {
			jumps = append(jumps, best)
			inRun = false
			best = Jump{Index: -1}
		}
	}
	for i := window; i+window <= len(xs); i++ {
		before := Mean(xs[i-window : i])
		after := Mean(xs[i : i+window])
		delta := after - before
		if math.Abs(delta) >= threshold {
			if !inRun || math.Abs(delta) > math.Abs(best.Magnitude()) {
				best = Jump{Index: i, Before: before, After: after}
			}
			inRun = true
		} else {
			flush()
		}
	}
	flush()
	return jumps
}

// LinearFit holds an ordinary least squares line y = A + B*x.
type LinearFit struct {
	A, B float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLinear computes the least-squares line through (xs, ys). It returns
// an error when the inputs are mismatched or degenerate.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear needs >=2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear degenerate x")
	}
	b := sxy / sxx
	a := my - b*mx
	fit := LinearFit{A: a, B: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.A + f.B*x }
