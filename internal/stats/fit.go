package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is a fitted univariate distribution.
type Distribution interface {
	// Name identifies the family, e.g. "normal".
	Name() string
	// CDF evaluates the cumulative distribution function at x.
	CDF(x float64) float64
	// Mean reports the distribution mean.
	Mean() float64
	// Params renders the fitted parameters for reports.
	Params() string
}

// NormalDist is a Gaussian distribution.
type NormalDist struct{ Mu, Sigma float64 }

// Name implements Distribution.
func (d NormalDist) Name() string { return "normal" }

// Mean implements Distribution.
func (d NormalDist) Mean() float64 { return d.Mu }

// Params implements Distribution.
func (d NormalDist) Params() string { return fmt.Sprintf("mu=%.4g sigma=%.4g", d.Mu, d.Sigma) }

// CDF implements Distribution.
func (d NormalDist) CDF(x float64) float64 {
	if d.Sigma <= 0 {
		if x < d.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-d.Mu)/(d.Sigma*math.Sqrt2))
}

// LogNormalDist is a lognormal distribution parameterized by the
// underlying normal.
type LogNormalDist struct{ Mu, Sigma float64 }

// Name implements Distribution.
func (d LogNormalDist) Name() string { return "lognormal" }

// Mean implements Distribution.
func (d LogNormalDist) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Params implements Distribution.
func (d LogNormalDist) Params() string { return fmt.Sprintf("mu=%.4g sigma=%.4g", d.Mu, d.Sigma) }

// CDF implements Distribution.
func (d LogNormalDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalDist{Mu: d.Mu, Sigma: d.Sigma}.CDF(math.Log(x))
}

// ExponentialDist is an exponential distribution with rate Lambda.
type ExponentialDist struct{ Lambda float64 }

// Name implements Distribution.
func (d ExponentialDist) Name() string { return "exponential" }

// Mean implements Distribution.
func (d ExponentialDist) Mean() float64 {
	if d.Lambda == 0 {
		return 0
	}
	return 1 / d.Lambda
}

// Params implements Distribution.
func (d ExponentialDist) Params() string { return fmt.Sprintf("lambda=%.4g", d.Lambda) }

// CDF implements Distribution.
func (d ExponentialDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-d.Lambda*x)
}

// FitNormal fits a Gaussian by maximum likelihood.
func FitNormal(xs []float64) (NormalDist, error) {
	if len(xs) < 2 {
		return NormalDist{}, fmt.Errorf("stats: FitNormal needs >=2 samples, got %d", len(xs))
	}
	s := Summarize(xs)
	// MLE variance uses n, not n-1; the difference is immaterial for the
	// trace lengths used here but we stay faithful to MLE.
	mle := s.Variance * float64(s.N-1) / float64(s.N)
	return NormalDist{Mu: s.Mean, Sigma: math.Sqrt(mle)}, nil
}

// FitLogNormal fits a lognormal by MLE over log(x); all samples must be
// positive.
func FitLogNormal(xs []float64) (LogNormalDist, error) {
	if len(xs) < 2 {
		return LogNormalDist{}, fmt.Errorf("stats: FitLogNormal needs >=2 samples, got %d", len(xs))
	}
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x <= 0 {
			return LogNormalDist{}, fmt.Errorf("stats: FitLogNormal requires positive samples, got %g", x)
		}
		logs = append(logs, math.Log(x))
	}
	n, err := FitNormal(logs)
	if err != nil {
		return LogNormalDist{}, err
	}
	return LogNormalDist{Mu: n.Mu, Sigma: n.Sigma}, nil
}

// FitExponential fits an exponential by MLE (lambda = 1/mean); all
// samples must be non-negative with a positive mean.
func FitExponential(xs []float64) (ExponentialDist, error) {
	if len(xs) == 0 {
		return ExponentialDist{}, fmt.Errorf("stats: FitExponential on empty sample")
	}
	for _, x := range xs {
		if x < 0 {
			return ExponentialDist{}, fmt.Errorf("stats: FitExponential requires non-negative samples, got %g", x)
		}
	}
	m := Mean(xs)
	if m <= 0 {
		return ExponentialDist{}, fmt.Errorf("stats: FitExponential requires positive mean")
	}
	return ExponentialDist{Lambda: 1 / m}, nil
}

// KSDistance computes the Kolmogorov-Smirnov statistic between the
// empirical distribution of xs and d.
func KSDistance(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		cdf := d.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(cdf - lo); diff > maxD {
			maxD = diff
		}
		if diff := math.Abs(cdf - hi); diff > maxD {
			maxD = diff
		}
	}
	return maxD
}

// BestFit fits the normal, lognormal, and exponential families (skipping
// families whose support the data violates) and returns the fit with the
// smallest KS distance. It returns an error when no family is feasible.
func BestFit(xs []float64) (Distribution, float64, error) {
	type cand struct {
		d  Distribution
		ks float64
	}
	var cands []cand
	if d, err := FitNormal(xs); err == nil {
		cands = append(cands, cand{d, KSDistance(xs, d)})
	}
	if d, err := FitLogNormal(xs); err == nil {
		cands = append(cands, cand{d, KSDistance(xs, d)})
	}
	if d, err := FitExponential(xs); err == nil {
		cands = append(cands, cand{d, KSDistance(xs, d)})
	}
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("stats: no distribution family feasible for sample")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.ks < best.ks {
			best = c
		}
	}
	return best.d, best.ks, nil
}
