package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFitNormalRecoversParameters(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 10 + 3*r.NormFloat64()
	}
	d, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.Mu, 10, 0.1) || !almostEq(d.Sigma, 3, 0.1) {
		t.Fatalf("fit = %+v", d)
	}
	if d.Name() != "normal" {
		t.Fatalf("Name = %q", d.Name())
	}
	if !almostEq(d.Mean(), d.Mu, 1e-12) {
		t.Fatal("Mean should be Mu")
	}
	if !strings.Contains(d.Params(), "mu=") {
		t.Fatalf("Params = %q", d.Params())
	}
}

func TestNormalCDF(t *testing.T) {
	d := NormalDist{Mu: 0, Sigma: 1}
	if !almostEq(d.CDF(0), 0.5, 1e-9) {
		t.Fatalf("CDF(0) = %v", d.CDF(0))
	}
	if !almostEq(d.CDF(1.96), 0.975, 1e-3) {
		t.Fatalf("CDF(1.96) = %v", d.CDF(1.96))
	}
	// Degenerate sigma behaves like a step function.
	step := NormalDist{Mu: 5, Sigma: 0}
	if step.CDF(4.9) != 0 || step.CDF(5.1) != 1 {
		t.Fatal("degenerate normal should be a step")
	}
}

func TestFitLogNormal(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = math.Exp(1 + 0.5*r.NormFloat64())
	}
	d, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.Mu, 1, 0.02) || !almostEq(d.Sigma, 0.5, 0.02) {
		t.Fatalf("fit = %+v", d)
	}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Fatal("lognormal CDF must be 0 for x<=0")
	}
	want := math.Exp(1 + 0.125)
	if !almostEq(d.Mean(), want, 0.05*want) {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	if _, err := FitLogNormal([]float64{1, -2}); err == nil {
		t.Fatal("negative sample should error")
	}
	if _, err := FitLogNormal([]float64{1}); err == nil {
		t.Fatal("single sample should error")
	}
}

func TestFitExponential(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 4
	}
	d, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.Lambda, 0.25, 0.01) {
		t.Fatalf("lambda = %v", d.Lambda)
	}
	if !almostEq(d.Mean(), 4, 0.2) {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.CDF(0) != 0 {
		t.Fatal("CDF(0) should be 0")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := FitExponential([]float64{-1, 2}); err == nil {
		t.Fatal("negative sample should error")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Fatal("zero mean should error")
	}
	if (ExponentialDist{}).Mean() != 0 {
		t.Fatal("zero-lambda Mean should be 0")
	}
}

func TestKSDistance(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	good := KSDistance(xs, NormalDist{Mu: 0, Sigma: 1})
	bad := KSDistance(xs, NormalDist{Mu: 3, Sigma: 1})
	if good >= bad {
		t.Fatalf("KS: good=%v should beat bad=%v", good, bad)
	}
	if good > 0.02 {
		t.Fatalf("KS for true distribution = %v", good)
	}
	if KSDistance(nil, NormalDist{}) != 0 {
		t.Fatal("empty KS should be 0")
	}
}

func TestBestFitSelectsRightFamily(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	exp := make([]float64, 20000)
	for i := range exp {
		exp[i] = r.ExpFloat64() * 2
	}
	d, ks, err := BestFit(exp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "exponential" {
		t.Fatalf("BestFit chose %s (ks=%v) for exponential data", d.Name(), ks)
	}

	norm := make([]float64, 20000)
	for i := range norm {
		norm[i] = 100 + 5*r.NormFloat64()
	}
	d, _, err = BestFit(norm)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "normal" {
		t.Fatalf("BestFit chose %s for normal data", d.Name())
	}
}

func TestBestFitInfeasible(t *testing.T) {
	if _, _, err := BestFit([]float64{-5}); err == nil {
		t.Fatal("single negative sample should have no feasible family")
	}
}
