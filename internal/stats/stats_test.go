package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if !almostEq(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEq(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v", s.Median)
	}
	if !almostEq(s.CoV, s.Std/s.Mean, 1e-12) {
		t.Fatalf("CoV = %v", s.CoV)
	}
}

func TestSkewnessSign(t *testing.T) {
	right := Summarize([]float64{1, 1, 1, 1, 2, 2, 3, 10})
	if right.Skewness <= 0 {
		t.Fatalf("right-skewed sample has skewness %v", right.Skewness)
	}
	left := Summarize([]float64{-10, -3, -2, -2, -1, -1, -1, -1})
	if left.Skewness >= 0 {
		t.Fatalf("left-skewed sample has skewness %v", left.Skewness)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, -1) != 1 || Quantile(xs, 0) != 1 {
		t.Fatal("q<=0 should be min")
	}
	if Quantile(xs, 2) != 3 || Quantile(xs, 1) != 3 {
		t.Fatal("q>=1 should be max")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.5, 1, 5, 9.99, 10, 11}, 0, 10, 10)
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d", h.Over)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if !almostEq(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 5, 0)
	if len(h.Counts) != 1 {
		t.Fatal("bins should clamp to 1")
	}
	if h.Hi <= h.Lo {
		t.Fatal("hi should be forced above lo")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant series has zero variance: correlation must be 0.
	if Autocorrelation([]float64{5, 5, 5, 5}, 1) != 0 {
		t.Fatal("constant series should give 0")
	}
	if got := Autocorrelation([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("lag-0 autocorrelation = %v", got)
	}
	// Alternating series should be strongly negative at lag 1.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(alt, 1); got >= 0 {
		t.Fatalf("alternating lag-1 autocorrelation = %v", got)
	}
	if Autocorrelation([]float64{1, 2, 3}, 10) != 0 {
		t.Fatal("lag beyond length should be 0")
	}
}

func TestEstimateLagRecoversShift(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 400
	const shift = 7
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Sin(float64(i)/9) + 0.05*r.NormFloat64()
	}
	for i := shift; i < n; i++ {
		y[i] = x[i-shift] + 0.05*r.NormFloat64()
	}
	lag, corr := EstimateLag(x, y, 30)
	if lag != shift {
		t.Fatalf("EstimateLag = %d, want %d (corr %v)", lag, shift, corr)
	}
	if corr < 0.9 {
		t.Fatalf("correlation at true lag = %v", corr)
	}
}

func TestCrossCorrelationDegenerate(t *testing.T) {
	if CrossCorrelation([]float64{1}, []float64{1}, 0) != 0 {
		t.Fatal("n<2 should give 0")
	}
	if CrossCorrelation([]float64{2, 2, 2}, []float64{1, 2, 3}, 0) != 0 {
		t.Fatal("zero-variance x should give 0")
	}
}

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{10, 0, 0, 0}, 0.5)
	want := []float64{10, 5, 2.5, 1.25}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("EWMA[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if len(EWMA(nil, 0.5)) != 0 {
		t.Fatal("EWMA of empty should be empty")
	}
	// Invalid alpha falls back without panicking.
	if out := EWMA([]float64{1, 2}, -3); len(out) != 2 {
		t.Fatal("invalid alpha should still smooth")
	}
}

func TestDetectJumpsFindsStep(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		if i < 100 {
			xs[i] = 300
		} else {
			xs[i] = 500
		}
	}
	jumps := DetectJumps(xs, 10, 50)
	if len(jumps) != 1 {
		t.Fatalf("found %d jumps, want 1: %+v", len(jumps), jumps)
	}
	j := jumps[0]
	if j.Index < 95 || j.Index > 105 {
		t.Fatalf("jump index = %d, want near 100", j.Index)
	}
	if !almostEq(j.Magnitude(), 200, 25) {
		t.Fatalf("jump magnitude = %v, want ~200", j.Magnitude())
	}
}

func TestDetectJumpsIgnoresNoise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 400 + 5*r.NormFloat64()
	}
	if jumps := DetectJumps(xs, 10, 50); len(jumps) != 0 {
		t.Fatalf("noise produced jumps: %+v", jumps)
	}
}

func TestDetectJumpsDegenerate(t *testing.T) {
	if DetectJumps([]float64{1, 2}, 5, 1) != nil {
		t.Fatal("short series should give nil")
	}
	if DetectJumps(make([]float64, 100), 10, 0) != nil {
		t.Fatal("zero threshold should give nil")
	}
}

func TestFitLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.A, 1, 1e-9) || !almostEq(fit.B, 2, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if !almostEq(fit.Predict(10), 21, 1e-9) {
		t.Fatalf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

// Property: variance is non-negative and mean lies within [min,max].
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				clean = append(clean, v)
			}
		}
		s := Summarize(clean)
		if s.Variance < 0 {
			return false
		}
		if s.N > 0 && (s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: autocorrelation is bounded in [-1,1] for well-formed input.
func TestPropertyAutocorrelationBounded(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		for lag := 0; lag < n; lag++ {
			c := Autocorrelation(xs, lag)
			if c < -1-1e-9 || c > 1+1e-9 {
				t.Fatalf("autocorrelation out of bounds: %v at lag %d", c, lag)
			}
		}
	}
}
