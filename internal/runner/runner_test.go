package runner

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"vwchar/internal/experiment"
	"vwchar/internal/load"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// tinyConfig returns a configuration small enough that a replication
// finishes in tens of milliseconds, so sweep tests stay fast.
func tinyConfig(env experiment.Env, mix experiment.MixKind) experiment.Config {
	cfg := experiment.DefaultConfig(env, mix)
	cfg.Clients = 20
	cfg.Duration = 40 * sim.Second
	cfg.Dataset = rubis.DatasetConfig{
		Regions:         10,
		Categories:      8,
		Users:           400,
		ActiveItems:     150,
		OldItems:        250,
		BidsPerItem:     3,
		CommentsPerUser: 1,
		BufferPages:     256,
	}
	return cfg
}

func tinyPoints() []Point {
	return []Point{
		{Name: "virtualized/browsing", Config: tinyConfig(experiment.Virtualized, experiment.MixBrowsing)},
		{Name: "physical/bidding", Config: tinyConfig(experiment.Physical, experiment.MixBidding)},
	}
}

func TestFullGridShape(t *testing.T) {
	points := FullGrid(nil)
	if len(points) != 10 {
		t.Fatalf("full grid has %d points, want 10 (2 envs x 5 mixes)", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Name] {
			t.Fatalf("duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Config.Validate(); err != nil {
			t.Fatalf("%s: invalid default config: %v", p.Name, err)
		}
	}
	mutated := FullGrid(func(c *experiment.Config) { c.Clients = 77 })
	if mutated[3].Config.Clients != 77 {
		t.Fatalf("mutate not applied: clients = %d", mutated[3].Config.Clients)
	}
}

// TestJobSeedsDependOnlyOnNames pins the seed-derivation contract:
// per-job seeds are a pure function of (root seed, point name, rep), so
// neither worker count nor the presence of other grid points can
// perturb a replication's random stream.
func TestJobSeedsDependOnlyOnNames(t *testing.T) {
	spec := SweepSpec{Points: tinyPoints(), Replications: 3, RootSeed: 99}
	jobs := spec.Jobs()
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	seeds := map[uint64]bool{}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		if seeds[j.Config.Seed] {
			t.Fatalf("duplicate derived seed %d", j.Config.Seed)
		}
		seeds[j.Config.Seed] = true
	}

	// Dropping the first point must leave the second point's seeds
	// untouched (name-keyed derivation, not position-keyed).
	shrunk := SweepSpec{Points: spec.Points[1:], Replications: 3, RootSeed: 99}
	for i, j := range shrunk.Jobs() {
		if want := jobs[3+i].Config.Seed; j.Config.Seed != want {
			t.Fatalf("rep %d seed changed when grid shrank: %d != %d", i, j.Config.Seed, want)
		}
	}

	// A different root seed must move every job seed.
	other := SweepSpec{Points: spec.Points, Replications: 3, RootSeed: 100}
	for i, j := range other.Jobs() {
		if j.Config.Seed == jobs[i].Config.Seed {
			t.Fatalf("job %d seed did not change with root seed", i)
		}
	}
}

// TestSweepByteIdenticalAcrossWorkerCounts is the determinism
// regression test: the same root seed must produce byte-identical
// aggregated output at workers=1 and workers=8.
func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	table := func(workers int) string {
		sr, err := Run(SweepSpec{
			Points:       tinyPoints(),
			Replications: 2,
			RootSeed:     42,
			Workers:      workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := table(1)
	par := table(8)
	if seq != par {
		t.Fatalf("aggregated output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "virtualized/browsing") || !strings.Contains(seq, MetricThroughput) {
		t.Fatalf("table missing expected content:\n%s", seq)
	}
}

// TestSeriesAggregationByteIdenticalAcrossWorkerCounts extends the
// determinism contract to the windowed telemetry aggregates: the
// pointwise mean/CI95 series rendered as CSV must be byte-identical at
// workers=1 and workers=8.
func TestSeriesAggregationByteIdenticalAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		sr, err := Run(SweepSpec{
			Points:       tinyPoints(),
			Replications: 2,
			RootSeed:     42,
			Workers:      workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		for i := range sr.Points {
			fmt.Fprintf(&buf, "# %s\n", sr.Points[i].Point.Name)
			if err := sr.Points[i].WriteSeriesCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("series aggregates differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "latency_p95_ms") {
		t.Fatalf("series CSV missing latency series:\n%.400s", seq)
	}
}

// TestSeriesAggregates pins the shape and content of the windowed
// aggregates: every telemetry series is aggregated over both
// replications, windows align with the replication series, and the
// latency CI is non-degenerate (different seeds produce different
// windows).
func TestSeriesAggregates(t *testing.T) {
	sr, err := Run(SweepSpec{Points: tinyPoints(), Replications: 2, RootSeed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	virt := &sr.Points[0]
	if got, want := len(virt.Series), len(virt.Reps[0].Telemetry.Present()); got != want {
		t.Fatalf("aggregated %d series, want %d (every present series)", got, want)
	}
	p95 := virt.SeriesAgg("latency_p95_ms")
	if p95 == nil || p95.N != 2 {
		t.Fatalf("p95 aggregate = %+v", p95)
	}
	if got, want := p95.Mean.Len(), virt.Reps[0].Telemetry.LatencyP95.Len(); got != want {
		t.Fatalf("aggregate has %d windows, replications have %d", got, want)
	}
	if p95.Mean.Interval != 2 || p95.CI95.Len() != p95.Mean.Len() {
		t.Fatalf("aggregate axis wrong: interval %v, ci len %d", p95.Mean.Interval, p95.CI95.Len())
	}
	if p95.Mean.Max() <= 0 {
		t.Fatal("aggregated p95 series is all zero")
	}
	if p95.CI95.Max() <= 0 {
		t.Fatal("replication seeds identical? CI95 series all zero")
	}
	// Pointwise mean really is the mean of the two replications.
	mid := p95.Mean.Len() / 2
	a := virt.Reps[0].Telemetry.LatencyP95.At(mid)
	b := virt.Reps[1].Telemetry.LatencyP95.At(mid)
	if got, want := p95.Mean.At(mid), (a+b)/2; math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("window %d mean %v, want %v", mid, got, want)
	}
	if virt.SeriesAgg("nope") != nil {
		t.Fatal("unknown series name should be nil")
	}
}

func TestPointMetrics(t *testing.T) {
	sr, err := Run(SweepSpec{Points: tinyPoints(), Replications: 2, RootSeed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	virt, phys := &sr.Points[0], &sr.Points[1]
	if m := virt.Metric(MetricThroughput); m.N != 2 || m.Mean <= 0 {
		t.Fatalf("virt throughput = %+v", m)
	}
	// Two different seeds should not produce the exact same throughput,
	// and the CI must cover the spread.
	if m := virt.Metric(MetricThroughput); m.Std == 0 {
		t.Fatalf("replication seeds identical? std = 0 for %+v", m)
	}
	if m := virt.Metric(MetricCPU(experiment.TierDom0)); m.N != 2 {
		t.Fatalf("virtualized point missing dom0 metrics: %+v", m)
	}
	if m := phys.Metric(MetricCPU(experiment.TierDom0)); m.N != 0 {
		t.Fatalf("physical point reports dom0 metrics: %+v", m)
	}
	if m := phys.Metric(MetricWriteFrac); m.Mean <= 0 {
		t.Fatalf("bidding mix write fraction = %+v", m)
	}
}

func TestProgressReporting(t *testing.T) {
	var events []Progress
	_, err := Run(SweepSpec{
		Points:       tinyPoints(),
		Replications: 2,
		RootSeed:     1,
		Workers:      3,
		OnProgress:   func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d progress events, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 4 {
			t.Fatalf("event %d = %d/%d, want %d/4", i, ev.Done, ev.Total, i+1)
		}
		if ev.Err != nil {
			t.Fatalf("event %d unexpected error: %v", i, ev.Err)
		}
	}
}

// TestPanicCapture injects a panic into one point's replications and
// checks it is confined to that point: the sweep reports the failure,
// aggregates the healthy point, and never crashes the pool.
func TestPanicCapture(t *testing.T) {
	orig := runExperiment
	defer func() { runExperiment = orig }()
	runExperiment = func(cfg experiment.Config) (*experiment.Result, error) {
		if cfg.Mix == experiment.MixBidding {
			panic("injected failure")
		}
		return orig(cfg)
	}

	sr, err := Run(SweepSpec{Points: tinyPoints(), Replications: 2, RootSeed: 5, Workers: 4})
	if err == nil {
		t.Fatal("expected sweep error")
	}
	if !strings.Contains(err.Error(), "2 of 4 replications failed") {
		t.Fatalf("error = %v", err)
	}
	if len(sr.Failures) != 2 {
		t.Fatalf("recorded %d failures, want 2", len(sr.Failures))
	}
	for _, f := range sr.Failures {
		if f.Job.Point != "physical/bidding" || !strings.Contains(f.Err.Error(), "injected failure") {
			t.Fatalf("unexpected failure record: %v", f)
		}
	}
	if m := sr.Points[0].Metric(MetricThroughput); m.N != 2 || m.Mean <= 0 {
		t.Fatalf("healthy point not aggregated: %+v", m)
	}
	if m := sr.Points[1].Metric(MetricThroughput); m.N != 0 {
		t.Fatalf("failed point aggregated from nothing: %+v", m)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(SweepSpec{}); err == nil {
		t.Fatal("empty sweep should fail")
	}
	dup := []Point{
		{Name: "p", Config: tinyConfig(experiment.Virtualized, experiment.MixBrowsing)},
		{Name: "p", Config: tinyConfig(experiment.Physical, experiment.MixBrowsing)},
	}
	if _, err := Run(SweepSpec{Points: dup}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names not rejected: %v", err)
	}
}

func TestSummarizeCI(t *testing.T) {
	m := summarize([]float64{1, 2, 3, 4, 5})
	if m.N != 5 || m.Mean != 3 {
		t.Fatalf("summarize = %+v", m)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(m.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", m.Std, wantStd)
	}
	wantCI := 2.776 * wantStd / math.Sqrt(5)
	if math.Abs(m.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %v, want %v", m.CI95, wantCI)
	}
	if one := summarize([]float64{7}); one.Std != 0 || one.CI95 != 0 || one.Mean != 7 {
		t.Fatalf("single sample = %+v", one)
	}
	if z := summarize(nil); z.N != 0 {
		t.Fatalf("empty sample = %+v", z)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := tinyConfig(experiment.Virtualized, experiment.Mix30Browse)
	cfg.Seed = 1234
	data, err := cfg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := experiment.ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", cfg) {
		t.Fatalf("round trip changed config:\n%+v\n%+v", back, cfg)
	}
	if _, err := experiment.ParseConfig([]byte(`{"Environment":"vax"}`)); err == nil {
		t.Fatal("invalid config parsed successfully")
	}
}

// tinyLoadMutate scales a load-grid config down to test size, including
// the per-kind time parameters so every scenario exercises its shape
// inside the short window.
func tinyLoadMutate(c *experiment.Config) {
	tiny := tinyConfig(c.Environment, c.Mix)
	c.Clients = tiny.Clients
	c.Duration = tiny.Duration
	c.Dataset = tiny.Dataset
	l := c.Load
	l.RampSeconds = 5
	switch l.Kind {
	case load.Diurnal:
		l.PeriodSeconds = 20
	case load.Spike:
		l.SpikeAt, l.SpikeRamp, l.SpikeHold = 10, 4, 10
	case load.Bursty:
		l.BaseDwell, l.BurstDwell = 10, 4
	}
}

// TestLoadGridShape pins the open-loop grid construction: one point per
// env x scenario, per-point spec copies (no catalog aliasing), and
// names unique enough for the runner's duplicate check.
func TestLoadGridShape(t *testing.T) {
	points := FullLoadGrid(experiment.MixBrowsing, tinyLoadMutate)
	want := len(experiment.Envs()) * len(load.Scenarios())
	if len(points) != want {
		t.Fatalf("load grid has %d points, want %d", len(points), want)
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Name] {
			t.Fatalf("duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Config.Load == nil {
			t.Fatalf("point %q lost its load spec", p.Name)
		}
		if err := p.Config.Validate(); err != nil {
			t.Fatalf("point %q invalid: %v", p.Name, err)
		}
	}
	// The mutate wrote through per-point copies, not the shared catalog.
	for _, sc := range load.Scenarios() {
		if sc.Spec.RampSeconds == 5 {
			t.Fatalf("mutate leaked into the catalog: %+v", sc)
		}
	}
}

// TestLoadSweepReportsSessionMetrics runs a small open-loop sweep and
// checks the session metrics surface through aggregation while
// closed-loop points keep their original metric set.
func TestLoadSweepReportsSessionMetrics(t *testing.T) {
	points := LoadGrid([]experiment.Env{experiment.Virtualized}, experiment.MixBrowsing,
		load.Scenarios()[:2], tinyLoadMutate)
	points = append(points, Point{Name: "closed/browsing", Config: tinyConfig(experiment.Virtualized, experiment.MixBrowsing)})
	sr, err := Run(SweepSpec{Points: points, Replications: 2, RootSeed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sr.Points {
		pr := &sr.Points[i]
		started := pr.Metric(MetricSessionsStarted)
		if pr.Point.Config.Load != nil {
			if started.N != 2 || started.Mean <= 0 {
				t.Fatalf("%s: sessions_started = %+v", pr.Point.Name, started)
			}
		} else if started.N != 0 {
			t.Fatalf("closed-loop point reports session metrics: %+v", started)
		}
		if thr := pr.Metric(MetricThroughput); thr.Mean <= 0 {
			t.Fatalf("%s: no throughput", pr.Point.Name)
		}
	}
}
