// Package runner executes experiment sweeps in parallel.
//
// The sim kernel is intentionally single-threaded (see package sim), so
// parallelism lives above it: every replication of every sweep point
// constructs its own isolated kernel inside experiment.Run, and the
// runner fans those independent jobs out over a bounded worker pool.
// Each job derives its own deterministic RNG seed from the sweep's root
// seed and the job's stable name, so the numbers a job produces depend
// only on the spec — never on worker count, scheduling order, or which
// other points are in the grid. Results are collected keyed by job index
// rather than completion order, which makes the aggregated output
// byte-identical at workers=1 and workers=64.
package runner

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sync"

	"vwchar/internal/experiment"
	"vwchar/internal/load"
	"vwchar/internal/rng"
	"vwchar/internal/stats"
	"vwchar/internal/telemetry"
	"vwchar/internal/timeseries"
)

// Point is one sweep coordinate: a named experiment configuration. The
// name doubles as the RNG substream label, so it must be stable and
// unique within a spec.
type Point struct {
	Name   string
	Config experiment.Config
}

// Grid builds the env × mix cartesian product from the paper's default
// configurations. mutate, when non-nil, adjusts each config in place
// (scale clients, shorten duration, ...) before it becomes a point.
func Grid(envs []experiment.Env, mixes []experiment.MixKind, mutate func(*experiment.Config)) []Point {
	points := make([]Point, 0, len(envs)*len(mixes))
	for _, env := range envs {
		for _, mix := range mixes {
			cfg := experiment.DefaultConfig(env, mix)
			if mutate != nil {
				mutate(&cfg)
			}
			points = append(points, Point{
				Name:   fmt.Sprintf("%s/%s", env, mix),
				Config: cfg,
			})
		}
	}
	return points
}

// FullGrid is the paper's complete sweep: both deployments crossed with
// all five request compositions.
func FullGrid(mutate func(*experiment.Config)) []Point {
	return Grid(experiment.Envs(), experiment.Mixes(), mutate)
}

// LoadGrid builds the env × load-scenario cartesian product at a fixed
// mix: the open-loop analogue of Grid. Every point carries its own copy
// of the scenario spec, so mutate (and later sweeps) can adjust rates
// point-locally without aliasing the catalog.
func LoadGrid(envs []experiment.Env, mix experiment.MixKind, scenarios []load.NamedSpec, mutate func(*experiment.Config)) []Point {
	points := make([]Point, 0, len(envs)*len(scenarios))
	for _, env := range envs {
		for _, sc := range scenarios {
			cfg := experiment.DefaultConfig(env, mix)
			spec := sc.Spec
			// Deep-copy the trace so a mutate that rescales knots
			// point-locally cannot write through a backing array shared
			// with other points or the caller's scenario.
			if len(spec.TracePoints) > 0 {
				spec.TracePoints = append([]load.TracePoint(nil), spec.TracePoints...)
			}
			cfg.Load = &spec
			if mutate != nil {
				mutate(&cfg)
			}
			points = append(points, Point{
				Name:   fmt.Sprintf("%s/%s/%s", env, mix, sc.Name),
				Config: cfg,
			})
		}
	}
	return points
}

// FullLoadGrid crosses both deployments with every catalog scenario at
// the given mix.
func FullLoadGrid(mix experiment.MixKind, mutate func(*experiment.Config)) []Point {
	return LoadGrid(experiment.Envs(), mix, load.Scenarios(), mutate)
}

// Progress reports one completed (or failed) job. Callbacks arrive from
// worker goroutines but are serialized by the runner; Done counts jobs
// finished so far out of Total.
type Progress struct {
	Done, Total int
	Job         Job
	Err         error
}

// SweepSpec describes a sweep: every point is run Replications times,
// each replication with an independent seed derived from RootSeed.
type SweepSpec struct {
	Points       []Point
	Replications int // per point; default 1
	RootSeed     uint64
	Workers      int // bounded pool size; default GOMAXPROCS
	// OnProgress, when non-nil, is invoked after every job completes.
	OnProgress func(Progress)
	// SharedDatasets pins one sweep-wide dataset seed (derived from
	// RootSeed) on every job whose point doesn't set its own
	// DatasetSeed, so all replications attach copy-on-write views of a
	// single golden snapshot instead of each populating its own dataset.
	// Output stays deterministic and worker-count independent, but
	// differs from the default because replications no longer draw
	// distinct datasets — which is why the historical per-replication
	// behaviour (false) remains the default.
	SharedDatasets bool
}

// Job is one replication of one point, with its derived seed already
// applied to the config.
type Job struct {
	// Index is the job's position in the deterministic expansion order
	// (point-major, replication-minor); results are keyed by it.
	Index      int
	PointIndex int
	Rep        int
	Point      string
	Config     experiment.Config
}

// JobError records a replication that returned an error or panicked.
type JobError struct {
	Job Job
	Err error
}

func (e JobError) Error() string {
	return fmt.Sprintf("runner: %s rep %d: %v", e.Job.Point, e.Job.Rep, e.Err)
}

// Metric is one scalar aggregated across a point's replications.
type Metric struct {
	N    int
	Mean float64
	Std  float64 // unbiased sample standard deviation (0 when N < 2)
	// CI95 is the half-width of the 95% confidence interval for the
	// mean (Student's t; 0 when N < 2).
	CI95 float64
}

// NamedMetric pairs a metric with its stable name; PointResult keeps an
// ordered slice rather than a map so output iteration is deterministic.
type NamedMetric struct {
	Name   string
	Metric Metric
}

// SeriesAggregate is one windowed telemetry series aggregated
// pointwise across a point's replications: a mean series plus the
// CI95 half-width per window (zero when fewer than two replications
// survive). Series are truncated to the shortest replication.
type SeriesAggregate struct {
	Name string
	// N is the number of replications aggregated.
	N    int
	Mean *timeseries.Series
	CI95 *timeseries.Series
}

// PointResult is one sweep coordinate with its per-replication results
// and across-replication aggregates.
type PointResult struct {
	Point Point
	// Reps holds each replication's full result, indexed by rep; a nil
	// entry marks a failed replication.
	Reps    []*experiment.Result
	Metrics []NamedMetric
	// Series holds the windowed telemetry series aggregated pointwise
	// across replications, in telemetry.SeriesNames order. It is kept
	// out of WriteTable so the paper sweep's scalar output bytes stay
	// pinned by the golden hash; render it with WriteSeriesCSV.
	Series []SeriesAggregate
}

// Metric returns the aggregate for name, or a zero Metric when the
// point does not report it (e.g. dom0 metrics on a physical point).
func (p *PointResult) Metric(name string) Metric {
	for _, nm := range p.Metrics {
		if nm.Name == name {
			return nm.Metric
		}
	}
	return Metric{}
}

// SeriesAgg returns the aggregated series for a telemetry series name
// (see telemetry.SeriesNames), or nil when absent.
func (p *PointResult) SeriesAgg(name string) *SeriesAggregate {
	for i := range p.Series {
		if p.Series[i].Name == name {
			return &p.Series[i]
		}
	}
	return nil
}

// WriteSeriesCSV renders the point's aggregated window series as one
// CSV table: a shared time column, then mean and ci95 columns per
// series. Output depends only on the spec and root seed — the series
// determinism test compares these bytes across worker counts.
func (p *PointResult) WriteSeriesCSV(w io.Writer) error {
	if len(p.Series) == 0 {
		return nil
	}
	cols := make([]*timeseries.Series, 0, 2*len(p.Series))
	for i := range p.Series {
		sa := &p.Series[i]
		cols = append(cols, sa.Mean, sa.CI95)
	}
	return timeseries.WriteTableCSV(w, cols...)
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Spec   SweepSpec
	Points []PointResult
	// Failures lists jobs that errored or panicked, in job-index order.
	Failures []JobError
}

// Point returns the result for the named sweep point, or nil when the
// sweep has no such point. Callers that assemble downstream artifacts
// should look points up by name rather than position, so reordering a
// grid helper cannot silently swap their data.
func (s *SweepResult) Point(name string) *PointResult {
	for i := range s.Points {
		if s.Points[i].Point.Name == name {
			return &s.Points[i]
		}
	}
	return nil
}

// Jobs expands the spec into its deterministic job list: point-major,
// replication-minor, with per-job seeds derived from RootSeed and the
// job name. The expansion is what makes the sweep a value: the same
// spec always yields the same jobs with the same seeds.
func (s *SweepSpec) Jobs() []Job {
	reps := s.Replications
	if reps < 1 {
		reps = 1
	}
	src := rng.NewSource(s.RootSeed)
	jobs := make([]Job, 0, len(s.Points)*reps)
	for pi, p := range s.Points {
		for r := 0; r < reps; r++ {
			cfg := p.Config
			cfg.Seed = src.SeedFor(fmt.Sprintf("%s/rep%03d", p.Name, r))
			if s.SharedDatasets && cfg.DatasetSeed == 0 {
				cfg.DatasetSeed = src.SeedFor("dataset")
			}
			jobs = append(jobs, Job{
				Index:      len(jobs),
				PointIndex: pi,
				Rep:        r,
				Point:      p.Name,
				Config:     cfg,
			})
		}
	}
	return jobs
}

// Run executes the sweep over a bounded worker pool and aggregates the
// results. It returns the (possibly partial) SweepResult together with
// a non-nil error when any replication failed; points with surviving
// replications are still aggregated over those.
func Run(spec SweepSpec) (*SweepResult, error) {
	if len(spec.Points) == 0 {
		return nil, fmt.Errorf("runner: sweep has no points")
	}
	seen := make(map[string]bool, len(spec.Points))
	for _, p := range spec.Points {
		if seen[p.Name] {
			return nil, fmt.Errorf("runner: duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
	}
	jobs := spec.Jobs()
	workers := spec.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]*experiment.Result, len(jobs))
	errs := make([]error, len(jobs))
	queue := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes progress callbacks
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				results[i], errs[i] = runJob(jobs[i])
				if spec.OnProgress != nil {
					mu.Lock()
					done++
					spec.OnProgress(Progress{Done: done, Total: len(jobs), Job: jobs[i], Err: errs[i]})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		queue <- i
	}
	close(queue)
	wg.Wait()

	reps := len(jobs) / len(spec.Points)
	sr := &SweepResult{Spec: spec, Points: make([]PointResult, len(spec.Points))}
	for pi, p := range spec.Points {
		pr := PointResult{Point: p, Reps: results[pi*reps : (pi+1)*reps]}
		pr.Metrics = aggregate(pr.Reps)
		pr.Series = aggregateSeries(pr.Reps)
		sr.Points[pi] = pr
	}
	for i, err := range errs {
		if err != nil {
			sr.Failures = append(sr.Failures, JobError{Job: jobs[i], Err: err})
		}
	}
	if n := len(sr.Failures); n > 0 {
		return sr, fmt.Errorf("runner: %d of %d replications failed (first: %w)", n, len(jobs), sr.Failures[0].Err)
	}
	return sr, nil
}

// runExperiment is swapped out by tests to exercise panic capture.
var runExperiment = experiment.Run

// runJob executes one replication in isolation, converting a panic in
// the simulation stack into an error so one bad point cannot take down
// the rest of the sweep.
func runJob(job Job) (res *experiment.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return runExperiment(job.Config)
}

// Scalar metric names reported for every run; per-tier resource means
// are appended as cpu_<tier>, mem_<tier>_mb, disk_<tier>_kb and
// net_<tier>_kb for each tier the run profiled.
const (
	MetricThroughput = "throughput_rps"
	MetricWriteFrac  = "write_fraction"
	MetricRespMean   = "resp_mean_ms"
	MetricRespP95    = "resp_p95_ms"
	MetricErrors     = "errors"
)

// Session metrics reported only by open-loop runs (Config.Load set);
// closed-loop points omit them, keeping the paper sweep's output bytes
// untouched.
const (
	MetricSessionsStarted   = "sessions_started"
	MetricSessionsFinished  = "sessions_finished"
	MetricSessionsAbandoned = "sessions_abandoned"
	MetricSessionsPeak      = "sessions_peak"
)

// Cluster scaling metrics, present only on runs with a cluster
// topology (Result.Scaling non-nil).
const (
	MetricReplicasPeak = "replicas_peak"
	MetricScaleUps     = "scale_ups"
	MetricScaleDowns   = "scale_downs"
	// MetricTimeToScale is the first scale-up's activation instant in
	// seconds from run start (boot delay included); 0 when the
	// autoscaler never fired.
	MetricTimeToScale = "time_to_scale_s"
)

// Fault-injection metrics, present only on runs with a fault schedule
// or resilience spec (Result.Requests non-nil). Availability is
// served / concluded demand; retries is 0 when no guard is installed.
const (
	MetricTimedOut     = "timed_out"
	MetricShed         = "shed"
	MetricFailedReq    = "failed"
	MetricRetries      = "retries"
	MetricAvailability = "availability"
	MetricFailovers    = "failovers"
)

// MetricDegraded, MetricHazardCrashes, MetricBrownoutPeak and
// MetricBrownoutDropped are the correlated-failure scalars; they are
// emitted only when a crash hazard or overload controller was
// configured (Result.Hazard / Result.Brownout non-nil), so runs
// without them keep their metric set byte-identical.
const (
	MetricDegraded        = "degraded"
	MetricHazardCrashes   = "hazard_crashes"
	MetricBrownoutPeak    = "brownout_peak_level"
	MetricBrownoutDropped = "brownout_dropped"
)

// Cache and write-behind queue metrics, emitted only when the run
// deployed the corresponding tier (Result.Cache / Result.Queue
// non-nil), so runs without them keep their metric set byte-identical.
const (
	MetricCacheHitRatio  = "cache_hit_ratio"
	MetricCacheStampedes = "cache_stampedes"
	MetricCacheEvictions = "cache_evictions"
	MetricQueuePublished = "queue_published"
	MetricQueuePeakDepth = "queue_peak_depth"
	MetricQueueMaxLag    = "queue_lag_max_ms"
	MetricQueueOverflows = "queue_overflows"
)

// MetricCPU, MetricMem, MetricDisk and MetricNet name the per-tier
// aggregates; use these instead of hand-concatenating metric names so a
// typo is a compile-time symbol error, not a silent zero Metric.
func MetricCPU(tier string) string { return "cpu_" + tier }

// MetricMem names a tier's mean used-memory aggregate (MB).
func MetricMem(tier string) string { return "mem_" + tier + "_mb" }

// MetricDisk names a tier's mean disk-traffic aggregate (KB/2s).
func MetricDisk(tier string) string { return "disk_" + tier + "_kb" }

// MetricNet names a tier's mean network-traffic aggregate (KB/2s).
func MetricNet(tier string) string { return "net_" + tier + "_kb" }

// scalars extracts the per-replication metric values in stable order.
func scalars(r *experiment.Result) []NamedMetric {
	out := []NamedMetric{
		{MetricThroughput, Metric{Mean: float64(r.Completed) / r.Config.Duration.Sec()}},
		{MetricWriteFrac, Metric{Mean: r.WriteFraction}},
		{MetricRespMean, Metric{Mean: r.MeanRespTime * 1e3}},
		{MetricRespP95, Metric{Mean: r.P95RespTime * 1e3}},
		{MetricErrors, Metric{Mean: float64(r.Errors)}},
	}
	if r.Sessions != nil {
		out = append(out,
			NamedMetric{MetricSessionsStarted, Metric{Mean: float64(r.Sessions.Started)}},
			NamedMetric{MetricSessionsFinished, Metric{Mean: float64(r.Sessions.Finished)}},
			NamedMetric{MetricSessionsAbandoned, Metric{Mean: float64(r.Sessions.Abandoned)}},
			NamedMetric{MetricSessionsPeak, Metric{Mean: float64(r.Sessions.PeakActive)}},
		)
	}
	if r.Scaling != nil {
		out = append(out,
			NamedMetric{MetricReplicasPeak, Metric{Mean: float64(r.Scaling.PeakReplicas)}},
			NamedMetric{MetricScaleUps, Metric{Mean: float64(r.Scaling.ScaleUps)}},
			NamedMetric{MetricScaleDowns, Metric{Mean: float64(r.Scaling.ScaleDowns)}},
			NamedMetric{MetricTimeToScale, Metric{Mean: r.Scaling.FirstUpAt.Sec()}},
		)
	}
	if rq := r.Requests; rq != nil {
		avail := 1.0
		if concluded := rq.Issued - rq.InFlight; concluded > 0 {
			avail = float64(rq.Served) / float64(concluded)
		}
		var retries uint64
		if r.Guard != nil {
			retries = r.Guard.Retries
		}
		out = append(out,
			NamedMetric{MetricTimedOut, Metric{Mean: float64(rq.TimedOut)}},
			NamedMetric{MetricShed, Metric{Mean: float64(rq.Shed)}},
			NamedMetric{MetricFailedReq, Metric{Mean: float64(rq.Failed)}},
			NamedMetric{MetricRetries, Metric{Mean: float64(retries)}},
			NamedMetric{MetricAvailability, Metric{Mean: avail}},
			NamedMetric{MetricFailovers, Metric{Mean: float64(len(r.Failovers))}},
		)
	}
	if r.Hazard != nil || r.Brownout != nil {
		var degraded uint64
		if r.Requests != nil {
			degraded = r.Requests.Degraded
		}
		out = append(out, NamedMetric{MetricDegraded, Metric{Mean: float64(degraded)}})
	}
	if r.Hazard != nil {
		out = append(out, NamedMetric{MetricHazardCrashes, Metric{Mean: float64(len(r.Hazard.Crashes))}})
	}
	if r.Brownout != nil {
		out = append(out,
			NamedMetric{MetricBrownoutPeak, Metric{Mean: float64(r.Brownout.PeakLevel)}},
			NamedMetric{MetricBrownoutDropped, Metric{Mean: float64(r.Brownout.Dropped)}},
		)
	}
	if c := r.Cache; c != nil {
		out = append(out,
			NamedMetric{MetricCacheHitRatio, Metric{Mean: c.HitRatio()}},
			NamedMetric{MetricCacheStampedes, Metric{Mean: float64(c.Stampedes)}},
			NamedMetric{MetricCacheEvictions, Metric{Mean: float64(c.Evictions)}},
		)
	}
	if q := r.Queue; q != nil {
		out = append(out,
			NamedMetric{MetricQueuePublished, Metric{Mean: float64(q.Published)}},
			NamedMetric{MetricQueuePeakDepth, Metric{Mean: float64(q.PeakDepth)}},
			NamedMetric{MetricQueueMaxLag, Metric{Mean: q.MaxLagMs}},
			NamedMetric{MetricQueueOverflows, Metric{Mean: float64(q.Overflows)}},
		)
	}
	// Resource scalars over the run's actual collector targets — the
	// classic three tiers on degenerate runs, per-replica targets plus
	// tier aggregates on cluster topologies.
	tiers := r.Tiers
	if len(tiers) == 0 {
		tiers = []string{experiment.TierWeb, experiment.TierDB, experiment.TierDom0}
	}
	for _, tier := range tiers {
		if r.CPU(tier) == nil {
			continue
		}
		out = append(out,
			NamedMetric{MetricCPU(tier), Metric{Mean: r.CPU(tier).Mean()}},
			NamedMetric{MetricMem(tier), Metric{Mean: r.Mem(tier).Mean()}},
			NamedMetric{MetricDisk(tier), Metric{Mean: r.Disk(tier).Mean()}},
			NamedMetric{MetricNet(tier), Metric{Mean: r.Net(tier).Mean()}},
		)
	}
	return out
}

// aggregate folds the per-replication scalars of one point into
// mean/std/CI metrics, skipping failed (nil) replications.
func aggregate(reps []*experiment.Result) []NamedMetric {
	var names []string
	samples := make(map[string][]float64)
	for _, r := range reps {
		if r == nil {
			continue
		}
		for _, nm := range scalars(r) {
			if _, ok := samples[nm.Name]; !ok {
				names = append(names, nm.Name)
			}
			samples[nm.Name] = append(samples[nm.Name], nm.Metric.Mean)
		}
	}
	out := make([]NamedMetric, 0, len(names))
	for _, name := range names {
		out = append(out, NamedMetric{Name: name, Metric: summarize(samples[name])})
	}
	return out
}

// aggregateSeries folds the per-replication telemetry series of one
// point into pointwise mean and CI95 series, skipping failed (nil)
// replications and truncating to the shortest surviving replication.
// Iteration is by fixed series order and rep index, so the output is
// deterministic and independent of worker count.
func aggregateSeries(reps []*experiment.Result) []SeriesAggregate {
	out := make([]SeriesAggregate, 0, len(telemetry.SeriesNames))
	for _, name := range telemetry.SeriesNames {
		var cols []*timeseries.Series
		for _, r := range reps {
			if r == nil || r.Telemetry == nil {
				continue
			}
			if s := r.Telemetry.ByName(name); s != nil {
				cols = append(cols, s)
			}
		}
		if len(cols) == 0 {
			continue
		}
		n := cols[0].Len()
		for _, s := range cols[1:] {
			if s.Len() < n {
				n = s.Len()
			}
		}
		sa := SeriesAggregate{
			Name: name,
			N:    len(cols),
			Mean: &timeseries.Series{Name: name, Unit: cols[0].Unit,
				Interval: cols[0].Interval, Start: cols[0].Start,
				Values: make([]float64, n)},
			CI95: &timeseries.Series{Name: name + "_ci95", Unit: cols[0].Unit,
				Interval: cols[0].Interval, Start: cols[0].Start,
				Values: make([]float64, n)},
		}
		xs := make([]float64, len(cols))
		for i := 0; i < n; i++ {
			for j, s := range cols {
				xs[j] = s.At(i)
			}
			m := summarize(xs)
			sa.Mean.Values[i] = m.Mean
			sa.CI95.Values[i] = m.CI95
		}
		out = append(out, sa)
	}
	return out
}

func summarize(xs []float64) Metric {
	s := stats.Summarize(xs)
	m := Metric{N: s.N, Mean: s.Mean, Std: s.Std}
	if m.N > 1 {
		m.CI95 = tCritical95(m.N-1) * m.Std / math.Sqrt(float64(m.N))
	}
	return m
}

// tCritical95 returns the two-sided 95% Student's t critical value for
// df degrees of freedom (normal approximation beyond the table).
func tCritical95(df int) float64 {
	table := []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return 0
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}

// WriteTable renders the aggregated sweep deterministically: points in
// spec order, metrics in extraction order, each as mean ± CI95 with the
// sample standard deviation. The bytes produced depend only on the spec
// and root seed — the determinism regression test compares this output
// across worker counts.
func (s *SweepResult) WriteTable(w io.Writer) error {
	reps := s.Spec.Replications
	if reps < 1 {
		reps = 1
	}
	for i := range s.Points {
		pr := &s.Points[i]
		ok := 0
		for _, r := range pr.Reps {
			if r != nil {
				ok++
			}
		}
		if _, err := fmt.Fprintf(w, "%s  (%d/%d replications, %d clients, %.0f s)\n",
			pr.Point.Name, ok, reps, pr.Point.Config.Clients, pr.Point.Config.Duration.Sec()); err != nil {
			return err
		}
		for _, nm := range pr.Metrics {
			m := nm.Metric
			if _, err := fmt.Fprintf(w, "  %-18s %14.6g ± %-12.6g (std %.6g, n=%d)\n",
				nm.Name, m.Mean, m.CI95, m.Std, m.N); err != nil {
				return err
			}
		}
	}
	for _, f := range s.Failures {
		if _, err := fmt.Fprintf(w, "FAILED %s rep %d: %v\n", f.Job.Point, f.Job.Rep, f.Err); err != nil {
			return err
		}
	}
	return nil
}
