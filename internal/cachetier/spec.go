// Package cachetier models a memcache-like fragment cache and a
// write-behind queue as deterministic components for the simulated
// serving stack. The Store here is pure state (LRU + TTL + single-flight
// leases, no clock of its own, no RNG); internal/tiers wraps it in a
// VM-backed server with wire transfers and CPU costs, and
// internal/experiment wires both behind experiment.Config.Cache/Queue.
package cachetier

import "fmt"

// CacheSpec configures the cache tier. The zero value is invalid; use
// DefaultCacheSpec or WithDefaults.
type CacheSpec struct {
	// MaxEntries bounds the number of resident fragments.
	MaxEntries int `json:"max_entries,omitempty"`
	// MaxMB bounds resident fragment bytes (payload, not metadata).
	MaxMB float64 `json:"max_mb,omitempty"`
	// TTLSeconds is each fragment's time-to-live after population.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// Leases enables single-flight fill leases: on a miss, one request
	// fetches from the DB while followers wait for the fill instead of
	// stampeding the primary.
	Leases bool `json:"leases,omitempty"`
	// LeaseTimeoutMillis bounds how long a follower waits on a lease
	// before falling through to the DB itself.
	LeaseTimeoutMillis float64 `json:"lease_timeout_millis,omitempty"`
}

// DefaultCacheSpec returns a small web-tier cache: 4096 entries, 64 MB,
// 60 s TTL, leases off (the thundering herd is the default behavior you
// opt out of, matching memcached).
func DefaultCacheSpec() CacheSpec {
	return CacheSpec{
		MaxEntries:         4096,
		MaxMB:              64,
		TTLSeconds:         60,
		LeaseTimeoutMillis: 250,
	}
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (s CacheSpec) WithDefaults() CacheSpec {
	d := DefaultCacheSpec()
	if s.MaxEntries == 0 {
		s.MaxEntries = d.MaxEntries
	}
	if s.MaxMB == 0 {
		s.MaxMB = d.MaxMB
	}
	if s.TTLSeconds == 0 {
		s.TTLSeconds = d.TTLSeconds
	}
	if s.LeaseTimeoutMillis == 0 {
		s.LeaseTimeoutMillis = d.LeaseTimeoutMillis
	}
	return s
}

// Validate checks the spec after defaults are applied.
func (s *CacheSpec) Validate() error {
	w := s.WithDefaults()
	if w.MaxEntries < 1 || w.MaxEntries > 1<<22 {
		return fmt.Errorf("cachetier: max_entries %d out of range [1, %d]", w.MaxEntries, 1<<22)
	}
	if w.MaxMB < 0.001 || w.MaxMB > 4096 {
		return fmt.Errorf("cachetier: max_mb %g out of range [0.001, 4096]", w.MaxMB)
	}
	if w.TTLSeconds < 0.1 || w.TTLSeconds > 86400 {
		return fmt.Errorf("cachetier: ttl_seconds %g out of range [0.1, 86400]", w.TTLSeconds)
	}
	if w.LeaseTimeoutMillis < 1 || w.LeaseTimeoutMillis > 60000 {
		return fmt.Errorf("cachetier: lease_timeout_millis %g out of range [1, 60000]", w.LeaseTimeoutMillis)
	}
	return nil
}

// MaxBytes is the byte bound implied by MaxMB.
func (s CacheSpec) MaxBytes() float64 { return s.MaxMB * 1e6 }

// QueueSpec configures the write-behind queue tier. The zero value is
// invalid; use DefaultQueueSpec or WithDefaults.
type QueueSpec struct {
	// MaxDepth bounds buffered write interactions; beyond it, web
	// replicas fall back to synchronous DB writes.
	MaxDepth int `json:"max_depth,omitempty"`
	// BatchSize is the maximum interactions replayed to the DB primary
	// per drain tick.
	BatchSize int `json:"batch_size,omitempty"`
	// DrainEveryMillis is the drain tick period.
	DrainEveryMillis float64 `json:"drain_every_millis,omitempty"`
}

// DefaultQueueSpec returns a queue sized to absorb multi-second write
// bursts: 4096 pending writes, drained 64 at a time every 200 ms.
func DefaultQueueSpec() QueueSpec {
	return QueueSpec{MaxDepth: 4096, BatchSize: 64, DrainEveryMillis: 200}
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (s QueueSpec) WithDefaults() QueueSpec {
	d := DefaultQueueSpec()
	if s.MaxDepth == 0 {
		s.MaxDepth = d.MaxDepth
	}
	if s.BatchSize == 0 {
		s.BatchSize = d.BatchSize
	}
	if s.DrainEveryMillis == 0 {
		s.DrainEveryMillis = d.DrainEveryMillis
	}
	return s
}

// Validate checks the spec after defaults are applied.
func (s *QueueSpec) Validate() error {
	w := s.WithDefaults()
	if w.MaxDepth < 1 || w.MaxDepth > 1<<20 {
		return fmt.Errorf("cachetier: max_depth %d out of range [1, %d]", w.MaxDepth, 1<<20)
	}
	if w.BatchSize < 1 || w.BatchSize > w.MaxDepth {
		return fmt.Errorf("cachetier: batch_size %d out of range [1, max_depth=%d]", w.BatchSize, w.MaxDepth)
	}
	if w.DrainEveryMillis < 1 || w.DrainEveryMillis > 60000 {
		return fmt.Errorf("cachetier: drain_every_millis %g out of range [1, 60000]", w.DrainEveryMillis)
	}
	return nil
}
