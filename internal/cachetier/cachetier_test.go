package cachetier

import (
	"encoding/json"
	"testing"

	"vwchar/internal/sim"
)

func TestSpecDefaultsAndValidate(t *testing.T) {
	if err := ptrTo(CacheSpec{}).Validate(); err != nil {
		t.Fatalf("zero cache spec (defaulted) invalid: %v", err)
	}
	if err := ptrTo(QueueSpec{}).Validate(); err != nil {
		t.Fatalf("zero queue spec (defaulted) invalid: %v", err)
	}
	bad := []CacheSpec{
		{MaxEntries: -1},
		{MaxEntries: 1 << 23},
		{MaxMB: 5000},
		{TTLSeconds: 0.01},
		{LeaseTimeoutMillis: 100000},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad cache spec %d validated: %+v", i, s)
		}
	}
	badQ := []QueueSpec{
		{MaxDepth: -2},
		{MaxDepth: 1 << 21},
		{MaxDepth: 4, BatchSize: 8},
		{DrainEveryMillis: 70000},
	}
	for i, s := range badQ {
		if err := s.Validate(); err == nil {
			t.Errorf("bad queue spec %d validated: %+v", i, s)
		}
	}
}

func ptrTo[T any](v T) *T { return &v }

func TestSpecJSONRoundTrip(t *testing.T) {
	c := CacheSpec{MaxEntries: 128, MaxMB: 8, TTLSeconds: 15, Leases: true, LeaseTimeoutMillis: 100}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var c2 CacheSpec
	if err := json.Unmarshal(b, &c2); err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatalf("cache spec round trip: %+v != %+v", c2, c)
	}
	q := QueueSpec{MaxDepth: 64, BatchSize: 8, DrainEveryMillis: 50}
	b, err = json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var q2 QueueSpec
	if err := json.Unmarshal(b, &q2); err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Fatalf("queue spec round trip: %+v != %+v", q2, q)
	}
}

func key(id int64) Key { return Key{Kind: 3, ID: id} }

func TestStoreHitMissTTL(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 8, MaxMB: 1, TTLSeconds: 10})
	now := sim.Seconds(1)
	if o, _ := s.Lookup(now, key(1)); o != Miss {
		t.Fatalf("cold lookup = %v, want miss", o)
	}
	s.Put(now, key(1), 100)
	if o, b := s.Lookup(now+sim.Second, key(1)); o != Hit || b != 100 {
		t.Fatalf("fresh lookup = %v/%v, want hit/100", o, b)
	}
	// Past TTL the entry expires in place and the toucher refetches.
	if o, _ := s.Lookup(now+sim.Seconds(11), key(1)); o != Miss {
		t.Fatal("expired lookup should miss")
	}
	if s.Stats.Expiries != 1 {
		t.Fatalf("expiries = %d, want 1", s.Stats.Expiries)
	}
	s.Put(now+sim.Seconds(11), key(1), 100)
	if o, _ := s.Lookup(now+sim.Seconds(12), key(1)); o != Hit {
		t.Fatal("refreshed entry should hit")
	}
}

func TestStoreLRUEvictionOrder(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 3, MaxMB: 1, TTLSeconds: 100})
	now := sim.Second
	for id := int64(1); id <= 3; id++ {
		s.Lookup(now, key(id))
		s.Put(now, key(id), 10)
	}
	// Touch 1 so 2 is the cold tail, then insert 4: 2 must go.
	s.Lookup(now, key(1))
	s.Lookup(now, key(4))
	s.Put(now, key(4), 10)
	if s.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Stats.Evictions)
	}
	if o, _ := s.Lookup(now, key(2)); o != Miss {
		t.Fatal("LRU tail (2) should have been evicted")
	}
	if o, _ := s.Lookup(now, key(1)); o != Hit {
		t.Fatal("recently touched key (1) should survive")
	}
	s.AbortFetch(key(2))
}

func TestStoreByteBoundEvicts(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 100, MaxMB: 0.001, TTLSeconds: 100}) // 1000 bytes
	now := sim.Second
	for id := int64(1); id <= 4; id++ {
		s.Lookup(now, key(id))
		s.Put(now, key(id), 400)
	}
	if s.UsedBytes() > 1000 {
		t.Fatalf("resident bytes %v over the 1000-byte bound", s.UsedBytes())
	}
	if s.Stats.Evictions == 0 {
		t.Fatal("byte bound never evicted")
	}
}

func TestStoreStampedeAccounting(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 8, MaxMB: 1, TTLSeconds: 10})
	now := sim.Second
	// Three concurrent fetchers of one cold key: one legitimate fill,
	// two redundant (one thundering-herd episode).
	for i := 0; i < 3; i++ {
		if o, _ := s.Lookup(now, key(7)); o != Miss {
			t.Fatalf("fetcher %d = %v, want miss (leases off)", i, o)
		}
	}
	if s.Stats.Stampedes != 1 || s.Stats.StampedeFetches != 2 {
		t.Fatalf("stampedes/fetches = %d/%d, want 1/2", s.Stats.Stampedes, s.Stats.StampedeFetches)
	}
	s.Put(now, key(7), 10)
	if o, _ := s.Lookup(now, key(7)); o != Hit {
		t.Fatal("filled key should hit")
	}
}

func TestStoreLeases(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 8, MaxMB: 1, TTLSeconds: 10, Leases: true, LeaseTimeoutMillis: 100})
	now := sim.Second
	if o, _ := s.Lookup(now, key(9)); o != Miss {
		t.Fatal("first fetcher should take the lease as a miss")
	}
	if o, _ := s.Lookup(now+sim.Millisecond, key(9)); o != WaitLease {
		t.Fatal("follower inside the lease window should wait")
	}
	if s.Stats.LeaseWaits != 1 {
		t.Fatalf("lease waits = %d, want 1", s.Stats.LeaseWaits)
	}
	// Past the lease timeout the next toucher takes the lease over.
	if o, _ := s.Lookup(now+sim.Seconds(1), key(9)); o != Miss {
		t.Fatal("aged lease should be taken over as a miss")
	}
	if s.Stats.LeaseTakeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", s.Stats.LeaseTakeovers)
	}
}

func TestStoreInvalidate(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 8, MaxMB: 1, TTLSeconds: 10})
	now := sim.Second
	s.Lookup(now, key(1))
	s.Put(now, key(1), 10)
	if !s.Invalidate(key(1)) {
		t.Fatal("resident key should invalidate")
	}
	if s.Invalidate(key(1)) {
		t.Fatal("absent key should not invalidate")
	}
	if o, _ := s.Lookup(now, key(1)); o != Miss {
		t.Fatal("invalidated key should miss")
	}
	// In-flight fill (the miss above) is left alone by Invalidate.
	if s.Invalidate(key(1)) {
		t.Fatal("fetching placeholder should not invalidate")
	}
	s.AbortFetch(key(1))
	if s.Len() != 0 {
		t.Fatalf("len = %d after abort, want 0", s.Len())
	}
}

func TestStoreResetKeepsStats(t *testing.T) {
	s := NewStore(CacheSpec{MaxEntries: 8, MaxMB: 1, TTLSeconds: 10})
	now := sim.Second
	s.Lookup(now, key(1))
	s.Put(now, key(1), 10)
	s.Lookup(now, key(1))
	hits, misses := s.Stats.Hits, s.Stats.Misses
	s.Reset()
	if s.Len() != 0 || s.UsedBytes() != 0 {
		t.Fatal("reset did not flush residency")
	}
	if s.Stats.Hits != hits || s.Stats.Misses != misses {
		t.Fatal("reset must keep cumulative stats (telemetry differences them)")
	}
	if o, _ := s.Lookup(now, key(1)); o != Miss {
		t.Fatal("post-reset lookup should be cold")
	}
}

// FuzzCacheSpecRoundTrip: any JSON that decodes and validates must
// marshal to a fixed point (config files survive rewriting).
func FuzzCacheSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"max_entries":128,"max_mb":8,"ttl_seconds":15}`,
		`{"leases":true,"lease_timeout_millis":100}`,
		`{"max_entries":-1}`,
		`{"ttl_seconds":1e300}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s CacheSpec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		b1, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("marshal after validate: %v", err)
		}
		var s2 CacheSpec
		if err := json.Unmarshal(b1, &s2); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		b2, err := json.Marshal(&s2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("marshal not a fixed point:\n%s\n%s", b1, b2)
		}
		if w := s.WithDefaults(); w.Validate() != nil {
			t.Fatalf("defaulted form of a valid spec invalid: %+v", w)
		}
	})
}

// FuzzQueueSpecRoundTrip mirrors FuzzCacheSpecRoundTrip for the broker.
func FuzzQueueSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"max_depth":64,"batch_size":8,"drain_every_millis":50}`,
		`{"max_depth":4,"batch_size":8}`,
		`{"drain_every_millis":-5}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s QueueSpec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		b1, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("marshal after validate: %v", err)
		}
		var s2 QueueSpec
		if err := json.Unmarshal(b1, &s2); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		b2, err := json.Marshal(&s2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("marshal not a fixed point:\n%s\n%s", b1, b2)
		}
		if w := s.WithDefaults(); w.Validate() != nil {
			t.Fatalf("defaulted form of a valid spec invalid: %+v", w)
		}
	})
}
