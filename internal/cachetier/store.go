package cachetier

import "vwchar/internal/sim"

// Key identifies one cached page fragment: the interaction's dense kind
// index plus the entity id the fragment is keyed on (rubis.CacheRef
// carries the same pair; tiers converts between them without this
// package importing rubis).
type Key struct {
	Kind uint8
	ID   int64
}

// Outcome is the result of one cache lookup.
type Outcome uint8

const (
	// Hit: the fragment is resident and fresh.
	Hit Outcome = iota
	// Miss: the caller must fetch from the DB and Put (or AbortFetch).
	Miss
	// WaitLease: another fetch holds the fill lease; the caller should
	// park until the fill lands or the lease times out.
	WaitLease
)

// String names the outcome for logs and tests.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case WaitLease:
		return "wait-lease"
	}
	return "unknown"
}

// Stats is the store's cumulative accounting. Counters are monotonic
// across Reset (cold restarts) so telemetry can difference them.
type Stats struct {
	Hits, Misses  uint64
	Expiries      uint64
	Evictions     uint64
	Invalidations uint64
	// Stampedes counts keys that ever had a second concurrent fetch in
	// flight (one thundering-herd episode per key fill); StampedeFetches
	// counts every redundant concurrent fetch beyond the first.
	Stampedes, StampedeFetches uint64
	// LeaseWaits counts lookups parked behind a fill lease;
	// LeaseTakeovers counts leases that expired and were re-acquired.
	LeaseWaits, LeaseTakeovers uint64
}

const (
	stateFetching uint8 = iota
	stateValid
)

const nilIdx = int32(-1)

// entry is one slab slot. Valid entries sit on the intrusive LRU list;
// fetching placeholders (a fill in flight) are indexed but unlisted.
type entry struct {
	key        Key
	bytes      float64
	expireAt   sim.Time
	leaseAt    sim.Time
	fetchers   int32
	state      uint8
	prev, next int32
}

// Store is the deterministic cache state machine: bounded LRU over
// entry count and payload bytes, lazy TTL expiry, write invalidation,
// and optional single-flight fill leases. It keeps no clock — callers
// pass the simulated now — and draws no randomness, so identical call
// sequences produce identical state on every run.
type Store struct {
	spec     CacheSpec
	ttl      sim.Time
	leaseTTL sim.Time
	maxBytes float64

	idx        map[Key]int32
	slab       []entry
	free       int32
	head, tail int32
	used       float64
	valid      int

	// Stats is the cumulative accounting; read-only for callers.
	Stats Stats
	// KindHits/KindMisses attribute lookups by Key.Kind.
	KindHits, KindMisses [256]uint64
}

// NewStore builds a store from a spec (defaults applied here).
func NewStore(spec CacheSpec) *Store {
	spec = spec.WithDefaults()
	return &Store{
		spec:     spec,
		ttl:      sim.Seconds(spec.TTLSeconds),
		leaseTTL: sim.Time(spec.LeaseTimeoutMillis * float64(sim.Millisecond)),
		maxBytes: spec.MaxBytes(),
		idx:      make(map[Key]int32, spec.MaxEntries),
		free:     nilIdx,
		head:     nilIdx,
		tail:     nilIdx,
	}
}

// Spec returns the store's effective (defaulted) spec.
func (s *Store) Spec() CacheSpec { return s.spec }

// Len is the number of resident valid fragments.
func (s *Store) Len() int { return s.valid }

// UsedBytes is the resident payload byte total.
func (s *Store) UsedBytes() float64 { return s.used }

// Lookup resolves key at the simulated time now. On Miss the caller
// becomes a filler and must eventually Put or AbortFetch the key.
func (s *Store) Lookup(now sim.Time, k Key) (Outcome, float64) {
	if i, ok := s.idx[k]; ok {
		e := &s.slab[i]
		if e.state == stateValid {
			if now < e.expireAt {
				s.Stats.Hits++
				s.KindHits[k.Kind]++
				s.lruFront(i)
				return Hit, e.bytes
			}
			// Expired in place: first toucher becomes the filler.
			s.Stats.Expiries++
			s.lruRemove(i)
			s.used -= e.bytes
			s.valid--
			e.state = stateFetching
			e.bytes = 0
			e.fetchers = 1
			e.leaseAt = now
			return s.miss(k)
		}
		// A fill is already in flight.
		if s.spec.Leases && now-e.leaseAt < s.leaseTTL {
			s.Stats.LeaseWaits++
			return WaitLease, 0
		}
		// Leases off (stampede) or the lease aged out (takeover).
		e.fetchers++
		if e.fetchers == 2 {
			s.Stats.Stampedes++
		}
		s.Stats.StampedeFetches++
		if s.spec.Leases {
			s.Stats.LeaseTakeovers++
			e.leaseAt = now
		}
		return s.miss(k)
	}
	i := s.alloc(k)
	e := &s.slab[i]
	e.state = stateFetching
	e.fetchers = 1
	e.leaseAt = now
	return s.miss(k)
}

func (s *Store) miss(k Key) (Outcome, float64) {
	s.Stats.Misses++
	s.KindMisses[k.Kind]++
	return Miss, 0
}

// Put lands a fill: the fragment becomes resident for one TTL and the
// LRU evicts from the cold end while over either bound.
func (s *Store) Put(now sim.Time, k Key, bytes float64) {
	i, ok := s.idx[k]
	if !ok {
		i = s.alloc(k)
	}
	e := &s.slab[i]
	if e.state == stateValid {
		// A concurrent filler landed first; refresh in place.
		s.lruRemove(i)
		s.used -= e.bytes
		s.valid--
	}
	e.state = stateValid
	e.fetchers = 0
	e.bytes = bytes
	e.expireAt = now + s.ttl
	s.lruPush(i)
	s.used += bytes
	s.valid++
	for (s.valid > s.spec.MaxEntries || s.used > s.maxBytes) && s.tail != nilIdx {
		s.evictTail()
	}
}

// AbortFetch withdraws a filler that failed (request error, crash)
// without landing data; the placeholder is dropped with the last filler.
func (s *Store) AbortFetch(k Key) {
	i, ok := s.idx[k]
	if !ok {
		return
	}
	e := &s.slab[i]
	if e.state != stateFetching {
		return
	}
	e.fetchers--
	if e.fetchers <= 0 {
		s.release(i)
	}
}

// Invalidate drops a resident fragment (write-through invalidation).
// An in-flight fill is left alone: the fill may land marginally stale
// data, which the next TTL expiry corrects — the same razor-edge
// staleness real delete-on-write memcached deployments accept.
func (s *Store) Invalidate(k Key) bool {
	i, ok := s.idx[k]
	if !ok {
		return false
	}
	e := &s.slab[i]
	if e.state != stateValid {
		return false
	}
	s.lruRemove(i)
	s.used -= e.bytes
	s.valid--
	s.release(i)
	s.Stats.Invalidations++
	return true
}

// Reset flushes all state — a cold restart after a cache node crash.
// Stats stay (monotonic counters survive the crash for telemetry).
func (s *Store) Reset() {
	s.idx = make(map[Key]int32, s.spec.MaxEntries)
	s.slab = s.slab[:0]
	s.free = nilIdx
	s.head, s.tail = nilIdx, nilIdx
	s.used = 0
	s.valid = 0
}

func (s *Store) alloc(k Key) int32 {
	var i int32
	if s.free != nilIdx {
		i = s.free
		s.free = s.slab[i].next
	} else {
		s.slab = append(s.slab, entry{})
		i = int32(len(s.slab) - 1)
	}
	s.slab[i] = entry{key: k, prev: nilIdx, next: nilIdx}
	s.idx[k] = i
	return i
}

func (s *Store) release(i int32) {
	delete(s.idx, s.slab[i].key)
	s.slab[i].next = s.free
	s.free = i
}

func (s *Store) evictTail() {
	i := s.tail
	e := &s.slab[i]
	s.lruRemove(i)
	s.used -= e.bytes
	s.valid--
	s.release(i)
	s.Stats.Evictions++
}

// lruPush inserts i at the hot end.
func (s *Store) lruPush(i int32) {
	e := &s.slab[i]
	e.prev = nilIdx
	e.next = s.head
	if s.head != nilIdx {
		s.slab[s.head].prev = i
	}
	s.head = i
	if s.tail == nilIdx {
		s.tail = i
	}
}

// lruFront moves an already-listed i to the hot end.
func (s *Store) lruFront(i int32) {
	if s.head == i {
		return
	}
	s.lruRemove(i)
	s.lruPush(i)
}

func (s *Store) lruRemove(i int32) {
	e := &s.slab[i]
	if e.prev != nilIdx {
		s.slab[e.prev].next = e.next
	} else if s.head == i {
		s.head = e.next
	}
	if e.next != nilIdx {
		s.slab[e.next].prev = e.prev
	} else if s.tail == i {
		s.tail = e.prev
	}
	e.prev, e.next = nilIdx, nilIdx
}
