package telemetry

import (
	"sort"

	"vwchar/internal/timeseries"
)

// DefaultExactCap bounds the exact response-time reservoir a Recorder
// retains beside its run histogram. While total observations fit, the
// run-level quantile is exact (bit-identical to sorting every
// observation — the paper sweep's golden bytes depend on this); beyond
// it the reservoir stops growing and quantiles come from the merged
// histogram within RelativeErrorBound. 32768 float64s is 256 KB — an
// order of magnitude below the 200k-float reservoir it replaces, and
// fixed rather than proportional to run length.
const DefaultExactCap = 32768

// SeriesNames labels the per-window series a Recorder emits, in
// emission order. The names are shared with the runner's
// cross-replication series aggregation.
var SeriesNames = []string{
	"latency_mean_ms",
	"latency_p50_ms",
	"latency_p95_ms",
	"latency_p99_ms",
	"throughput_rps",
	"inflight",
	"sessions_started",
	"sessions_ended",
	"latency_read_p95_ms",
	"latency_rw_p95_ms",
	"abandoned_sessions",
	"replicas",
	"timeouts",
	"sheds",
	"failures",
	"retries",
	"availability",
	"degraded",
	"brownout_level",
	"hazard_rate",
	"cache_hit_ratio",
	"cache_stampedes",
	"queue_depth",
	"queue_lag_ms",
}

// MaxKinds bounds the per-interaction histogram bank (RUBiS has 26
// kinds; the bank is fixed-size so the record path stays a bounds check
// plus an array index).
const MaxKinds = 32

// WindowSeries is the per-window output of a Recorder: one sample per
// collector tick, sharing the resource series' 2-second time axis.
type WindowSeries struct {
	// LatencyMean is the exact mean response time per window (ms);
	// LatencyP50/P95/P99 are histogram quantiles per window (ms).
	LatencyMean, LatencyP50, LatencyP95, LatencyP99 *timeseries.Series
	// Throughput is completed interactions per second within the window.
	Throughput *timeseries.Series
	// Inflight is the number of requests awaiting a response at the
	// window boundary (a gauge, like the collector's memory series).
	Inflight *timeseries.Series
	// Starts and Ends count session churn within the window; all-zero
	// for the closed-loop driver, whose population is fixed.
	Starts, Ends *timeseries.Series
	// LatencyReadP95 and LatencyRWP95 split the window p95 by
	// interaction class (read-only vs read-write), so figures show which
	// class saturates first.
	LatencyReadP95, LatencyRWP95 *timeseries.Series
	// Abandoned counts sessions driven away within the window by an
	// SLO-violating response.
	Abandoned *timeseries.Series
	// Replicas is the active web-replica gauge at each window boundary;
	// nil unless a replica gauge was wired (cluster runs).
	Replicas *timeseries.Series
	// Timeouts/Sheds/Failures count abnormal request outcomes per
	// window; Retries counts guard re-dispatches per window;
	// Availability is served/(served+abnormal) per window. All nil
	// unless fault telemetry was enabled (fault-injection runs).
	Timeouts, Sheds, Failures, Retries, Availability *timeseries.Series
	// Degraded counts requests answered degraded per window (brownout
	// drops and over-bound fast-fails); BrownoutLevel is the overload
	// controller's degradation-level gauge at each boundary; HazardRate
	// is the load-coupled hazard's armed probability mass for the
	// window that just closed. All nil unless degradation telemetry was
	// enabled (hazard/brownout runs).
	Degraded, BrownoutLevel, HazardRate *timeseries.Series
	// HitRatio is the cache tier's per-window hit fraction and
	// Stampedes its per-window redundant concurrent DB fetches; nil
	// unless cache telemetry was enabled (cache-tier runs).
	HitRatio, Stampedes *timeseries.Series
	// QueueDepth/QueueLag are the write-behind broker's backlog and
	// oldest-entry age gauges at each boundary; nil unless queue
	// telemetry was enabled.
	QueueDepth, QueueLag *timeseries.Series
}

// All lists the series in SeriesNames order. Entries may be nil (the
// replica gauge is only present on cluster runs); Present filters.
func (w *WindowSeries) All() []*timeseries.Series {
	return []*timeseries.Series{
		w.LatencyMean, w.LatencyP50, w.LatencyP95, w.LatencyP99,
		w.Throughput, w.Inflight, w.Starts, w.Ends,
		w.LatencyReadP95, w.LatencyRWP95, w.Abandoned, w.Replicas,
		w.Timeouts, w.Sheds, w.Failures, w.Retries, w.Availability,
		w.Degraded, w.BrownoutLevel, w.HazardRate,
		w.HitRatio, w.Stampedes, w.QueueDepth, w.QueueLag,
	}
}

// Present lists the non-nil series in SeriesNames order.
func (w *WindowSeries) Present() []*timeseries.Series {
	all := w.All()
	out := make([]*timeseries.Series, 0, len(all))
	for _, s := range all {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the named series, or nil for an unknown or absent name.
func (w *WindowSeries) ByName(name string) *timeseries.Series {
	for i, s := range w.All() {
		if SeriesNames[i] == name {
			return s
		}
	}
	return nil
}

// Windows reports the number of closed windows.
func (w *WindowSeries) Windows() int { return w.LatencyP95.Len() }

// Recorder accumulates response-time observations and window-local
// counters, closing one window per Rotate call. The caller rotates it
// from the sysstat collector's sampling ticker, which is what aligns
// the emitted series with the resource series sample for sample.
type Recorder struct {
	windowSec  float64
	windowHint int

	// win is the current window's histogram; run is the whole-run
	// merge, recorded in the same pass (one bin computation shared by
	// every increment).
	win, run Hist

	// winClass/runClass attribute the same observations by interaction
	// class: index 0 is read-only, 1 is read-write.
	winClass, runClass [2]Hist

	// abandon is the run-level histogram of responses whose latency
	// drove their session away (a subset of run); winAbandons counts
	// them within the current window.
	abandon     Hist
	winAbandons uint64

	// replicaGauge, when wired, samples the active web-replica count at
	// each window boundary into the Replicas series.
	replicaGauge func() int

	// Fault accounting (fault-injection runs only): window-local
	// abnormal-outcome counters, plus the guard's cumulative retry
	// source differenced at each window boundary.
	winTimeouts, winSheds, winFails uint64
	retryFn                         func() uint64
	lastRetries                     uint64

	// Degradation accounting (hazard/brownout runs only): window-local
	// degraded-outcome counter plus the level and hazard-rate gauges
	// sampled at each boundary.
	winDegraded uint64
	levelGauge  func() int
	hazardGauge func() float64

	// Cache/queue accounting (cache-tier runs only): the node's
	// cumulative counters differenced at each boundary, plus backlog
	// gauges.
	cacheFn                            func() (hits, misses, stampedes uint64)
	lastHits, lastMisses, lastStampede uint64
	depthGauge                         func() int
	lagGauge                           func() float64

	// kind is the per-interaction run-level histogram bank, indexed by
	// the dense kind index stamped into every rubis.Result.
	kind []Hist

	// exact is the bounded exact reservoir backing small-count
	// run-level quantiles; sorted tracks whether it is currently in
	// ascending order (Quantile sorts it in place and records resume
	// appending, dirtying it again).
	exact    []float64
	exactCap int
	sorted   bool

	starts, ends uint64

	series WindowSeries
}

// NewRecorder builds a recorder with the given window length in
// seconds and a capacity hint in windows (how many Rotate calls the
// run is expected to make; rotation never allocates while within the
// hint). prealloc reserves the exact reservoir up front so steady-state
// recording never allocates either — the open-loop driver's zero-alloc
// discipline.
func NewRecorder(windowSec float64, windowHint int, prealloc bool) *Recorder {
	r := &Recorder{windowSec: windowSec, windowHint: windowHint, exactCap: DefaultExactCap}
	if prealloc {
		r.exact = make([]float64, 0, r.exactCap)
	}
	r.kind = make([]Hist, MaxKinds)
	r.series = WindowSeries{
		LatencyMean:    r.newSeries(SeriesNames[0], "ms"),
		LatencyP50:     r.newSeries(SeriesNames[1], "ms"),
		LatencyP95:     r.newSeries(SeriesNames[2], "ms"),
		LatencyP99:     r.newSeries(SeriesNames[3], "ms"),
		Throughput:     r.newSeries(SeriesNames[4], "req/s"),
		Inflight:       r.newSeries(SeriesNames[5], "requests"),
		Starts:         r.newSeries(SeriesNames[6], "sessions/window"),
		Ends:           r.newSeries(SeriesNames[7], "sessions/window"),
		LatencyReadP95: r.newSeries(SeriesNames[8], "ms"),
		LatencyRWP95:   r.newSeries(SeriesNames[9], "ms"),
		Abandoned:      r.newSeries(SeriesNames[10], "sessions/window"),
	}
	return r
}

func (r *Recorder) newSeries(name, unit string) *timeseries.Series {
	s := &timeseries.Series{Name: name, Unit: unit, Interval: r.windowSec}
	if r.windowHint > 0 {
		s.Values = make([]float64, 0, r.windowHint)
	}
	return s
}

// SetReplicaGauge wires the active-replica gauge and materializes the
// Replicas series; absent a gauge the series stays nil and consumers
// skip it. Cluster assembly calls this before ReserveWindows.
func (r *Recorder) SetReplicaGauge(fn func() int) {
	r.replicaGauge = fn
	if fn != nil && r.series.Replicas == nil {
		r.series.Replicas = r.newSeries(SeriesNames[11], "replicas")
	}
}

// EnableFaultSeries materializes the per-window fault series
// (timeouts, sheds, failures, retries, availability); absent the call
// they stay nil and consumers skip them, which is what keeps fault
// telemetry out of fault-free runs. retries supplies the guard's
// cumulative retry count (nil for a constant zero). Call before
// ReserveWindows.
func (r *Recorder) EnableFaultSeries(retries func() uint64) {
	r.retryFn = retries
	if r.series.Timeouts == nil {
		r.series.Timeouts = r.newSeries(SeriesNames[12], "requests/window")
		r.series.Sheds = r.newSeries(SeriesNames[13], "requests/window")
		r.series.Failures = r.newSeries(SeriesNames[14], "requests/window")
		r.series.Retries = r.newSeries(SeriesNames[15], "retries/window")
		r.series.Availability = r.newSeries(SeriesNames[16], "fraction")
	}
}

// EnableDegradationSeries materializes the per-window degradation
// series (degraded count, brownout level, hazard rate); absent the
// call they stay nil and consumers skip them. level and hazardRate
// supply the controller/hazard gauges sampled at each boundary (nil
// samples as zero; the hazard rate reflects the window that closed at
// the previous boundary, since gauges sample before the hazard's own
// hook runs). Call before ReserveWindows.
func (r *Recorder) EnableDegradationSeries(level func() int, hazardRate func() float64) {
	r.levelGauge = level
	r.hazardGauge = hazardRate
	if r.series.Degraded == nil {
		r.series.Degraded = r.newSeries(SeriesNames[17], "requests/window")
		r.series.BrownoutLevel = r.newSeries(SeriesNames[18], "level")
		r.series.HazardRate = r.newSeries(SeriesNames[19], "crashes/window")
	}
}

// EnableCacheSeries materializes the per-window cache series (hit
// ratio, stampede count); stats supplies the cache node's cumulative
// web-visible hits/misses and redundant stampede fetches, differenced
// at each boundary. Call before ReserveWindows.
func (r *Recorder) EnableCacheSeries(stats func() (hits, misses, stampedes uint64)) {
	r.cacheFn = stats
	if r.series.HitRatio == nil {
		r.series.HitRatio = r.newSeries(SeriesNames[20], "fraction")
		r.series.Stampedes = r.newSeries(SeriesNames[21], "fetches/window")
	}
}

// EnableQueueSeries materializes the per-window queue series (backlog
// depth and oldest-entry lag gauges at each boundary). Call before
// ReserveWindows.
func (r *Recorder) EnableQueueSeries(depth func() int, lagMs func() float64) {
	r.depthGauge = depth
	r.lagGauge = lagMs
	if r.series.QueueDepth == nil {
		r.series.QueueDepth = r.newSeries(SeriesNames[22], "writes")
		r.series.QueueLag = r.newSeries(SeriesNames[23], "ms")
	}
}

// NoteTimeout tallies one timed-out request in the current window.
func (r *Recorder) NoteTimeout() { r.winTimeouts++ }

// NoteShed tallies one breaker-shed request in the current window.
func (r *Recorder) NoteShed() { r.winSheds++ }

// NoteFailure tallies one errored request in the current window.
func (r *Recorder) NoteFailure() { r.winFails++ }

// NoteDegraded tallies one degraded-answered request in the current
// window.
func (r *Recorder) NoteDegraded() { r.winDegraded++ }

// Record adds one response-time observation in seconds, attributed to
// its interaction class (isWrite selects read-write). Allocation-free
// once the reservoir is at capacity (or was preallocated).
func (r *Recorder) Record(rt float64, isWrite bool) {
	r.RecordKind(rt, isWrite, -1)
}

// RecordKind is Record with per-interaction attribution: kind is the
// dense rubis kind index (out-of-range skips the bank, so callers
// without attribution pass -1). Still one logarithm per observation and
// allocation-free — the bank is fixed at construction.
func (r *Recorder) RecordKind(rt float64, isWrite bool, kind int) {
	i := binIndex(rt)
	r.win.recordAt(rt, i)
	r.run.recordAt(rt, i)
	cls := 0
	if isWrite {
		cls = 1
	}
	r.winClass[cls].recordAt(rt, i)
	r.runClass[cls].recordAt(rt, i)
	if kind >= 0 && kind < len(r.kind) {
		r.kind[kind].recordAt(rt, i)
	}
	if len(r.exact) < r.exactCap {
		r.exact = append(r.exact, rt)
		r.sorted = false
	}
}

// NoteAbandon records the response time (seconds) that drove a session
// away. The observation is already in the main histograms via Record;
// this attributes it to demand lost rather than served.
func (r *Recorder) NoteAbandon(rt float64) {
	r.abandon.Record(rt)
	r.winAbandons++
}

// recordAt is Record with the bin precomputed, so the recorder pays
// one logarithm per observation for its two histograms.
func (h *Hist) recordAt(v float64, i int) {
	if h.n == 0 {
		h.min, h.max = v, v
		h.lo, h.hi = i, i
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
		if i < h.lo {
			h.lo = i
		}
		if i > h.hi {
			h.hi = i
		}
	}
	h.n++
	h.sum += v
	h.counts[i]++
}

// NoteStart tallies one session admitted in the current window.
func (r *Recorder) NoteStart() { r.starts++ }

// NoteEnd tallies one session ended (finished or abandoned) in the
// current window.
func (r *Recorder) NoteEnd() { r.ends++ }

// Rotate closes the current window, appending one sample to every
// series: window latency stats, throughput, the inflight gauge passed
// by the caller, and session churn. The window histogram and counters
// reset for the next window.
func (r *Recorder) Rotate(inflight int) {
	w := &r.win
	r.series.LatencyMean.Append(w.Mean() * 1e3)
	r.series.LatencyP50.Append(w.Quantile(0.50) * 1e3)
	r.series.LatencyP95.Append(w.Quantile(0.95) * 1e3)
	r.series.LatencyP99.Append(w.Quantile(0.99) * 1e3)
	r.series.Throughput.Append(float64(w.Count()) / r.windowSec)
	r.series.Inflight.Append(float64(inflight))
	r.series.Starts.Append(float64(r.starts))
	r.series.Ends.Append(float64(r.ends))
	r.series.LatencyReadP95.Append(r.winClass[0].Quantile(0.95) * 1e3)
	r.series.LatencyRWP95.Append(r.winClass[1].Quantile(0.95) * 1e3)
	r.series.Abandoned.Append(float64(r.winAbandons))
	if r.series.Replicas != nil {
		r.series.Replicas.Append(float64(r.replicaGauge()))
	}
	if r.series.Timeouts != nil {
		r.series.Timeouts.Append(float64(r.winTimeouts))
		r.series.Sheds.Append(float64(r.winSheds))
		r.series.Failures.Append(float64(r.winFails))
		var retries uint64
		if r.retryFn != nil {
			cum := r.retryFn()
			retries = cum - r.lastRetries
			r.lastRetries = cum
		}
		r.series.Retries.Append(float64(retries))
		served := float64(w.Count())
		faulted := float64(r.winTimeouts + r.winSheds + r.winFails)
		avail := 1.0
		if served+faulted > 0 {
			avail = served / (served + faulted)
		}
		r.series.Availability.Append(avail)
		r.winTimeouts, r.winSheds, r.winFails = 0, 0, 0
	}
	if r.series.Degraded != nil {
		// Degraded answers are deliberate fast responses, so they count
		// in their own series, not against availability.
		r.series.Degraded.Append(float64(r.winDegraded))
		lvl := 0
		if r.levelGauge != nil {
			lvl = r.levelGauge()
		}
		r.series.BrownoutLevel.Append(float64(lvl))
		hz := 0.0
		if r.hazardGauge != nil {
			hz = r.hazardGauge()
		}
		r.series.HazardRate.Append(hz)
		r.winDegraded = 0
	}
	if r.series.HitRatio != nil {
		var dh, dm, ds uint64
		if r.cacheFn != nil {
			hits, misses, stampedes := r.cacheFn()
			dh = hits - r.lastHits
			dm = misses - r.lastMisses
			ds = stampedes - r.lastStampede
			r.lastHits, r.lastMisses, r.lastStampede = hits, misses, stampedes
		}
		ratio := 0.0
		if dh+dm > 0 {
			ratio = float64(dh) / float64(dh+dm)
		}
		r.series.HitRatio.Append(ratio)
		r.series.Stampedes.Append(float64(ds))
	}
	if r.series.QueueDepth != nil {
		d, lag := 0, 0.0
		if r.depthGauge != nil {
			d = r.depthGauge()
		}
		if r.lagGauge != nil {
			lag = r.lagGauge()
		}
		r.series.QueueDepth.Append(float64(d))
		r.series.QueueLag.Append(lag)
	}
	w.Reset()
	r.winClass[0].Reset()
	r.winClass[1].Reset()
	r.starts, r.ends = 0, 0
	r.winAbandons = 0
}

// ReserveWindows grows every series' capacity to hold n windows, so
// rotation within that horizon never allocates. experiment.Run calls
// it with the run's duration-derived window count before the kernel
// starts; the capacity hint at construction covers callers that know
// the horizon up front.
func (r *Recorder) ReserveWindows(n int) {
	for _, s := range r.series.Present() {
		if cap(s.Values)-len(s.Values) < n {
			grown := make([]float64, len(s.Values), len(s.Values)+n)
			copy(grown, s.Values)
			s.Values = grown
		}
	}
}

// Series exposes the emitted per-window series.
func (r *Recorder) Series() *WindowSeries { return &r.series }

// Count reports total observations recorded.
func (r *Recorder) Count() uint64 { return r.run.Count() }

// Mean reports the exact run-level mean response time in seconds.
func (r *Recorder) Mean() float64 { return r.run.Mean() }

// Quantile reports the run-level q-quantile in seconds. While every
// observation still fits the exact reservoir it reproduces the
// sort-and-index quantile of the reservoir it replaced bit for bit
// (rank floor(q*(n-1)), no interpolation), sorting in place at most
// once per batch of records; beyond the cap it falls back to the
// merged run histogram, within RelativeErrorBound.
func (r *Recorder) Quantile(q float64) float64 {
	n := r.run.Count()
	if n == 0 {
		return 0
	}
	if n > uint64(len(r.exact)) {
		return r.run.Quantile(q)
	}
	if !r.sorted {
		sort.Float64s(r.exact)
		r.sorted = true
	}
	if q <= 0 {
		return r.exact[0]
	}
	if q >= 1 {
		return r.exact[len(r.exact)-1]
	}
	return r.exact[int(q*float64(len(r.exact)-1))]
}

// ExactLen reports how many observations the exact reservoir holds —
// the memory-regression tests pin that it never exceeds DefaultExactCap.
func (r *Recorder) ExactLen() int { return len(r.exact) }

// RunHist exposes the run-level histogram over every served response.
func (r *Recorder) RunHist() *Hist { return &r.run }

// AbandonedHist exposes the run-level histogram of responses that
// drove their session away — the "driven away" half of SLO-debt
// accounting (RunHist minus this is demand served, however slowly).
func (r *Recorder) AbandonedHist() *Hist { return &r.abandon }

// KindHist exposes the run-level histogram for one dense interaction
// kind index, or nil when out of range.
func (r *Recorder) KindHist(kind int) *Hist {
	if kind < 0 || kind >= len(r.kind) {
		return nil
	}
	return &r.kind[kind]
}

// ClassHist exposes the run-level histogram for one interaction class.
func (r *Recorder) ClassHist(isWrite bool) *Hist {
	if isWrite {
		return &r.runClass[1]
	}
	return &r.runClass[0]
}
