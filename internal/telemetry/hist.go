// Package telemetry is the windowed application-metrics pipeline: a
// fixed-bin logarithmic latency histogram with an allocation-free
// record path, and a Recorder that rotates windows on the monitoring
// plane's 2-second sampling ticker, emitting per-window latency,
// throughput, concurrency, and session-churn series that share a time
// axis with the sysstat resource series.
//
// The paper's characterization is built on time-resolved measurement —
// 518 metrics sampled every 2 s — but application-level outcomes
// (response time, throughput, abandonment) were run-level scalars
// until this package: a flash crowd's queueing transient was invisible
// in a single run-mean. Recording into 2 s windows aligned with the
// collector makes "p95 over time" a first-class series the figures,
// the runner's cross-replication aggregation, and the transient
// analyses in internal/characterize can all consume.
//
// # Determinism contract
//
// Recording and rotation perform no random draws and no map
// iteration; given the same observation sequence the emitted series
// are byte-identical, so sweep output remains independent of runner
// worker count.
//
// # Allocation discipline
//
// Hist is a fixed-size value type: Record is pure arithmetic on
// embedded arrays (0 allocs/op, CI-gated via BenchmarkLatencyRecord).
// Recorder rotation appends one sample to each preallocated series;
// with a capacity hint covering the run it is also allocation-free
// (BenchmarkWindowRotate).
package telemetry

import "math"

// Histogram binning. Bins are spaced geometrically: bin i covers
// [histMin*10^(i/binsPerDecade), histMin*10^((i+1)/binsPerDecade)).
// A quantile estimate returns the geometric midpoint of its bin, so
// the worst-case relative error is 10^(1/(2*binsPerDecade))-1 — just
// under 0.9% at 128 bins per decade — for any value inside the binned
// range.
const (
	// histMin is the smallest binnable latency in seconds (1 µs);
	// smaller observations land in the underflow bin and are reported
	// as the tracked exact minimum.
	histMin = 1e-6
	// binsPerDecade fixes the relative resolution.
	binsPerDecade = 128
	// histDecades spans 1 µs .. 1e6 s, far beyond any simulated
	// response time; larger observations land in the overflow bin and
	// are reported as the tracked exact maximum.
	histDecades = 12
	numBins     = binsPerDecade * histDecades
)

// RelativeErrorBound is the worst-case relative error of a Hist
// quantile for values within the binned range [1µs, 1e6s]:
// 10^(1/(2*binsPerDecade)) - 1 ≈ 0.9%.
var RelativeErrorBound = math.Pow(10, 1.0/(2*binsPerDecade)) - 1

// invLog10 avoids a divide on the record path.
var invLog10 = 1 / math.Ln10

// Hist is a fixed-bin logarithmic latency histogram. The zero value is
// ready to use. Hists are mergeable across windows and replications:
// merging the per-window histograms of a run yields bit-identical
// counts to recording the whole run into one histogram.
type Hist struct {
	// counts[0] is the underflow bin (v < histMin), counts[numBins+1]
	// the overflow bin; counts[1..numBins] are the log-spaced bins.
	counts [numBins + 2]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
	// lo/hi bound the touched bin range so Reset clears only what was
	// written — rotation cost tracks window activity, not table size.
	lo, hi int
}

// binIndex maps a latency in seconds to its bin.
func binIndex(v float64) int {
	if v < histMin {
		return 0
	}
	// log10(v/histMin) * binsPerDecade, computed via the natural log to
	// use the single-argument math.Log fast path.
	i := int(math.Log(v/histMin)*invLog10*binsPerDecade) + 1
	if i > numBins+1 {
		i = numBins + 1
	}
	return i
}

// binValue returns the representative latency of bin i: the geometric
// midpoint of its edges.
func binValue(i int) float64 {
	return histMin * math.Pow(10, (float64(i)-0.5)/binsPerDecade)
}

// Record adds one observation in seconds. It never allocates.
func (h *Hist) Record(v float64) { h.recordAt(v, binIndex(v)) }

// Count reports the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Sum reports the exact sum of observations (seconds).
func (h *Hist) Sum() float64 { return h.sum }

// Mean reports the exact mean (seconds), or 0 when empty. The sum is
// accumulated in observation order, so for a single-threaded driver the
// mean is bit-identical to summing a retained slice in that order.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max report the exact extremes (seconds), or 0 when empty.
func (h *Hist) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the exact maximum (seconds), or 0 when empty.
func (h *Hist) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile in seconds. It targets the same
// order statistic as the exact reservoir path (rank floor(q*(n-1))),
// returning the geometric midpoint of the bin holding that rank,
// clamped to the exact observed [min, max]. Relative error is bounded
// by RelativeErrorBound for in-range values; the underflow and
// overflow bins report the exact min and max.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n-1))
	var cum uint64
	for i := h.lo; i <= h.hi; i++ {
		cum += h.counts[i]
		if cum > rank {
			switch i {
			case 0:
				return h.min
			case numBins + 1:
				return h.max
			}
			v := binValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove reports how many observations exceeded v (seconds), at
// histogram resolution: whole bins above v's bin are counted, so the
// boundary is fuzzy by at most RelativeErrorBound. The SLO-debt
// accounting in internal/characterize is built on this.
func (h *Hist) CountAbove(v float64) uint64 {
	if h.n == 0 || v >= h.max {
		return 0
	}
	if v < h.min {
		return h.n
	}
	start := binIndex(v) + 1
	if start < h.lo {
		start = h.lo
	}
	var cum uint64
	for i := start; i <= h.hi; i++ {
		cum += h.counts[i]
	}
	return cum
}

// ExcessAbove reports the summed exceedance sum(max(0, x-v)) in
// seconds over observations above v — the run's SLO debt against
// objective v — using each bin's representative value (midpoint,
// clamped to the exact extremes).
func (h *Hist) ExcessAbove(v float64) float64 {
	if h.n == 0 || v >= h.max {
		return 0
	}
	start := binIndex(v) + 1
	if start < h.lo {
		start = h.lo
	}
	var debt float64
	for i := start; i <= h.hi; i++ {
		if h.counts[i] == 0 {
			continue
		}
		bv := binValue(i)
		switch i {
		case 0:
			bv = h.min
		case numBins + 1:
			bv = h.max
		}
		if bv > h.max {
			bv = h.max
		}
		if bv <= v {
			continue
		}
		debt += float64(h.counts[i]) * (bv - v)
	}
	return debt
}

// Merge folds other into h: counts, totals, and extremes. Merging
// window histograms reproduces the run histogram bit for bit (counts
// are integers; sums are folded in merge order).
func (h *Hist) Merge(other *Hist) {
	if other.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
		h.lo, h.hi = other.lo, other.hi
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
		if other.lo < h.lo {
			h.lo = other.lo
		}
		if other.hi > h.hi {
			h.hi = other.hi
		}
	}
	h.n += other.n
	h.sum += other.sum
	for i := other.lo; i <= other.hi; i++ {
		h.counts[i] += other.counts[i]
	}
}

// Reset clears the histogram for the next window, touching only the
// bin range that was written.
func (h *Hist) Reset() {
	if h.n == 0 {
		return
	}
	for i := h.lo; i <= h.hi; i++ {
		h.counts[i] = 0
	}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	h.lo, h.hi = numBins+1, 0
}
