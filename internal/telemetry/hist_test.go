package telemetry

import (
	"math"
	"sort"
	"testing"

	"vwchar/internal/rng"
)

// oracleQuantile replicates the exact quantile convention the driver
// stats historically used: sort, then index rank floor(q*(n-1)) with
// no interpolation.
func oracleQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestHistQuantileVsOracle is the histogram's accuracy property test:
// across several latency distributions (lognormal service times, heavy
// Pareto tails, bimodal steady/saturated mixes), every quantile must
// land within the stated relative-error bound of the exact order
// statistic.
func TestHistQuantileVsOracle(t *testing.T) {
	src := rng.NewSource(7)
	cases := []struct {
		name string
		draw func(r *rng.Stream) float64
	}{
		{"lognormal", func(r *rng.Stream) float64 { return r.LogNormal(math.Log(0.01), 1.2) }},
		{"pareto-tail", func(r *rng.Stream) float64 { return r.Pareto(0.002, 1.4) }},
		{"bimodal", func(r *rng.Stream) float64 {
			if r.Bernoulli(0.9) {
				return r.Exp(0.008)
			}
			return 2 + r.Exp(3)
		}},
		{"exponential", func(r *rng.Stream) float64 { return r.Exp(0.05) }},
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, tc := range cases {
		r := src.Stream(tc.name)
		var h Hist
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := tc.draw(r)
			h.Record(v)
			xs = append(xs, v)
		}
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := oracleQuantile(xs, q)
			if want <= 0 {
				t.Fatalf("%s q%.3f: oracle %v not positive", tc.name, q, want)
			}
			if relErr := math.Abs(got/want - 1); relErr > RelativeErrorBound {
				t.Errorf("%s q%.3f: hist %.6g vs exact %.6g (rel err %.4f > bound %.4f)",
					tc.name, q, got, want, relErr, RelativeErrorBound)
			}
		}
		if got, want := h.Mean(), mean(xs); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s: mean %v vs %v", tc.name, got, want)
		}
		if h.Min() != minOf(xs) || h.Max() != maxOf(xs) {
			t.Errorf("%s: extremes (%v,%v) vs (%v,%v)", tc.name, h.Min(), h.Max(), minOf(xs), maxOf(xs))
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// TestHistMergeEquivalence pins mergeability: recording a stream split
// across many window histograms and merging them reproduces the
// single-histogram result exactly — counts, sum, extremes, and every
// quantile.
func TestHistMergeEquivalence(t *testing.T) {
	r := rng.NewSource(11).Stream("merge")
	var whole Hist
	parts := make([]Hist, 7)
	for i := 0; i < 9000; i++ {
		v := r.LogNormal(math.Log(0.02), 1.5)
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d vs %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("extremes differ")
	}
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("sum %v vs %v", merged.Sum(), whole.Sum())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("q%.2f: merged %v vs whole %v", q, got, want)
		}
	}
}

// TestHistOutOfRange pins the underflow/overflow bins: out-of-range
// observations are counted and reported via the exact extremes rather
// than clamped into the edge bins' midpoints.
func TestHistOutOfRange(t *testing.T) {
	var h Hist
	h.Record(1e-9) // below histMin
	h.Record(1e8)  // above the binned range
	h.Record(0.01)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Quantile(0); got != 1e-9 {
		t.Fatalf("q0 = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 1e8 {
		t.Fatalf("q1 = %v, want exact max", got)
	}
}

// TestHistReset pins that Reset clears only state, not capacity: a
// reset histogram behaves like a fresh one.
func TestHistReset(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(0.01 * float64(i+1))
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset left state: count=%d sum=%v", h.Count(), h.Sum())
	}
	h.Record(0.5)
	if got := h.Quantile(0.5); math.Abs(got/0.5-1) > RelativeErrorBound {
		t.Fatalf("post-reset quantile %v", got)
	}
	if h.Min() != 0.5 || h.Max() != 0.5 {
		t.Fatalf("post-reset extremes %v %v", h.Min(), h.Max())
	}
}

// TestHistRecordZeroAlloc pins the record path's allocation contract
// under go test (the CI bench gate covers -benchmem regressions).
func TestHistRecordZeroAlloc(t *testing.T) {
	var h Hist
	v := 0.001
	allocs := testing.AllocsPerRun(10000, func() {
		h.Record(v)
		v *= 1.0001
	})
	if allocs != 0 {
		t.Fatalf("Hist.Record allocates %v allocs/op, want 0", allocs)
	}
}
