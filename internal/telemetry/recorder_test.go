package telemetry

import (
	"math"
	"testing"

	"vwchar/internal/rng"
)

// TestRecorderWindowSeries pins the windowed pipeline end to end: two
// windows with known observations produce the expected per-window
// mean/quantile/throughput/churn samples on a shared 2 s axis.
func TestRecorderWindowSeries(t *testing.T) {
	rec := NewRecorder(2, 8, false)

	// Window 1: four fast responses, one session starting and ending.
	rec.NoteStart()
	for _, rt := range []float64{0.010, 0.010, 0.010, 0.030} {
		rec.Record(rt, false)
	}
	rec.NoteEnd()
	rec.Rotate(3)

	// Window 2: two slow responses.
	rec.Record(1.0, false)
	rec.Record(2.0, false)
	rec.Rotate(1)

	s := rec.Series()
	if s.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", s.Windows())
	}
	if got, want := s.LatencyMean.At(0), 15.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("window 1 mean = %v ms, want %v", got, want)
	}
	// Rank convention floor(q*(n-1)): the p95 of four samples is the
	// third smallest, and only q=1 reaches the 30 ms outlier.
	if got := s.LatencyP95.At(0); math.Abs(got/10-1) > RelativeErrorBound {
		t.Errorf("window 1 p95 = %v ms, want ~10", got)
	}
	if got, want := s.Throughput.At(0), 2.0; got != want { // 4 completions / 2 s
		t.Errorf("window 1 throughput = %v, want %v", got, want)
	}
	if s.Inflight.At(0) != 3 || s.Inflight.At(1) != 1 {
		t.Errorf("inflight gauge = %v, %v", s.Inflight.At(0), s.Inflight.At(1))
	}
	if s.Starts.At(0) != 1 || s.Ends.At(0) != 1 || s.Starts.At(1) != 0 {
		t.Errorf("churn series wrong: starts %v ends %v", s.Starts.Values, s.Ends.Values)
	}
	if got := s.LatencyMean.At(1); math.Abs(got-1500) > 1e-9 {
		t.Errorf("window 2 mean = %v ms, want 1500", got)
	}
	// The second window's stats are independent of the first: rotation
	// reset the window histogram.
	if got := s.LatencyP50.At(1); math.Abs(got/1000-1) > RelativeErrorBound {
		t.Errorf("window 2 p50 = %v ms, want ~1000", got)
	}
	// Run-level accounting spans both windows.
	if rec.Count() != 6 {
		t.Errorf("run count = %d, want 6", rec.Count())
	}
	if got, want := rec.Mean(), (0.010*3+0.030+1+2)/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("run mean = %v, want %v", got, want)
	}
	for i := range SeriesNames {
		sr := s.All()[i]
		if sr == nil {
			switch SeriesNames[i] {
			case "replicas", "timeouts", "sheds", "failures", "retries", "availability",
				"degraded", "brownout_level", "hazard_rate",
				"cache_hit_ratio", "cache_stampedes", "queue_depth", "queue_lag_ms":
				// Conditionally materialized (replica gauge / fault /
				// degradation / cache / queue telemetry); absent by
				// default.
			default:
				t.Errorf("series %q absent by default", SeriesNames[i])
			}
			continue
		}
		if sr.Name != SeriesNames[i] {
			t.Errorf("series %d named %q, want %q", i, sr.Name, SeriesNames[i])
		}
		if s.ByName(SeriesNames[i]) != sr {
			t.Errorf("ByName(%q) mismatch", SeriesNames[i])
		}
	}
	if s.ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

// TestRecorderExactQuantileEquivalence pins the golden-bytes contract:
// while observations fit the exact reservoir, Quantile is bit-identical
// to the historical sort-and-index computation over every observation.
func TestRecorderExactQuantileEquivalence(t *testing.T) {
	r := rng.NewSource(3).Stream("exact")
	rec := NewRecorder(2, 0, false)
	var xs []float64
	for i := 0; i < 5000; i++ {
		v := r.LogNormal(math.Log(0.02), 1.0)
		rec.Record(v, false)
		xs = append(xs, v)
		if i%97 == 0 {
			rec.Rotate(0)
		}
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.95, 0.99, 1} {
		if got, want := rec.Quantile(q), oracleQuantile(xs, q); got != want {
			t.Fatalf("q%.2f: recorder %v != exact %v", q, got, want)
		}
	}
	// Interleaving reads and writes keeps the reservoir coherent: a
	// record after a sort dirties it again.
	rec.Record(1e9, false)
	if got, want := rec.Quantile(1), 1e9; got != want {
		t.Fatalf("post-sort record lost: q1 = %v, want %v", got, want)
	}
}

// TestRecorderHistogramFallback pins the over-cap behaviour: past
// DefaultExactCap observations the reservoir stops growing (memory
// stays bounded) and quantiles fall back to the merged run histogram,
// within the stated error bound of the exact answer over ALL
// observations — unlike the replaced reservoir, which silently dropped
// everything after its first 200k samples.
func TestRecorderHistogramFallback(t *testing.T) {
	r := rng.NewSource(5).Stream("fallback")
	rec := NewRecorder(2, 0, true)
	n := DefaultExactCap + 20000
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := r.LogNormal(math.Log(0.05), 0.8)
		rec.Record(v, false)
		xs = append(xs, v)
	}
	if rec.ExactLen() != DefaultExactCap {
		t.Fatalf("reservoir grew to %d, cap %d", rec.ExactLen(), DefaultExactCap)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, want := rec.Quantile(q), oracleQuantile(xs, q)
		if relErr := math.Abs(got/want - 1); relErr > RelativeErrorBound {
			t.Fatalf("q%.2f: hist fallback %v vs exact %v (rel err %v)", q, got, want, relErr)
		}
	}
}

// TestRecorderMemoryBounded is the memory regression test for the
// reservoir replacement: a recorder that has absorbed a million
// observations retains a fixed-size footprint — the two histograms
// plus at most DefaultExactCap reservoir slots — instead of the run-
// length-proportional (or 200k-float) slice it replaced.
func TestRecorderMemoryBounded(t *testing.T) {
	rec := NewRecorder(2, 0, false)
	r := rng.NewSource(9).Stream("mem")
	for i := 0; i < 1_000_000; i++ {
		rec.Record(r.Exp(0.01), false)
	}
	if got := rec.ExactLen(); got > DefaultExactCap {
		t.Fatalf("exact reservoir holds %d > cap %d", got, DefaultExactCap)
	}
	// The retained footprint: reservoir + 2 fixed histograms. Pin it
	// well under the old reservoir's 200000 float64s (1.6 MB).
	histBytes := int(2 * (numBins + 2) * 8)
	if total := rec.ExactLen()*8 + histBytes; total >= 200000*8/2 {
		t.Fatalf("recorder retains ~%d bytes, want < half the old reservoir", total)
	}
	if rec.Count() != 1_000_000 {
		t.Fatalf("count = %d", rec.Count())
	}
}

// TestRecorderSteadyStateZeroAlloc pins that recording (post-prealloc)
// and churn notes never allocate.
func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	rec := NewRecorder(2, 0, true)
	v := 0.001
	allocs := testing.AllocsPerRun(10000, func() {
		rec.NoteStart()
		rec.Record(v, false)
		rec.NoteEnd()
		v *= 1.0002
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}
}

// TestRecorderRotateZeroAllocWithinHint pins that rotation with a
// sufficient window hint never allocates: the per-window series grow
// into preallocated capacity.
func TestRecorderRotateZeroAllocWithinHint(t *testing.T) {
	const hint = 20100
	rec := NewRecorder(2, hint, true)
	allocs := testing.AllocsPerRun(20000, func() {
		rec.Record(0.01, false)
		rec.Record(0.05, false)
		rec.Rotate(1)
	})
	if allocs != 0 {
		t.Fatalf("rotation allocates %v allocs/op within hint, want 0", allocs)
	}
	if rec.Series().Windows() > hint {
		t.Fatalf("guard vacuous: %d windows exceeded the hint", rec.Series().Windows())
	}
}

// TestRecorderReserveWindows pins the path real runs take: a recorder
// constructed without a hint (the drivers don't know the duration)
// gets its horizon reserved by experiment.Run, after which rotation
// never allocates and already-emitted windows are preserved.
func TestRecorderReserveWindows(t *testing.T) {
	rec := NewRecorder(2, 0, true)
	rec.Record(0.25, false)
	rec.Rotate(2) // one window emitted before the reservation
	rec.ReserveWindows(4200)
	if got := rec.Series().LatencyMean.At(0); math.Abs(got-250) > 1e-9 {
		t.Fatalf("reservation lost emitted window: %v", got)
	}
	allocs := testing.AllocsPerRun(4000, func() {
		rec.Record(0.01, false)
		rec.Rotate(1)
	})
	if allocs != 0 {
		t.Fatalf("post-reserve rotation allocates %v allocs/op, want 0", allocs)
	}
}

// TestRecorderEmptyWindows pins that idle windows emit zero samples
// (not stale data) and keep the axis aligned.
func TestRecorderEmptyWindows(t *testing.T) {
	rec := NewRecorder(2, 4, false)
	rec.Record(0.5, false)
	rec.Rotate(0)
	rec.Rotate(0) // empty window
	s := rec.Series()
	if s.Windows() != 2 {
		t.Fatalf("windows = %d", s.Windows())
	}
	if s.LatencyP95.At(1) != 0 || s.Throughput.At(1) != 0 {
		t.Fatalf("idle window leaked data: p95=%v tput=%v", s.LatencyP95.At(1), s.Throughput.At(1))
	}
	if got := s.LatencyP95.TimeAt(1); got != 2 {
		t.Fatalf("window 2 time = %v, want 2", got)
	}
}

// TestRecorderFaultSeries pins the fault telemetry: enabling it
// materializes the five series, windows count abnormal outcomes, the
// retry series differences the cumulative source, and availability is
// served/(served+abnormal) with an idle-window default of 1.
func TestRecorderFaultSeries(t *testing.T) {
	rec := NewRecorder(2, 4, false)
	var cum uint64
	rec.EnableFaultSeries(func() uint64 { return cum })

	// Window 1: two served, one timeout, one failure, three retries.
	rec.Record(0.010, false)
	rec.Record(0.010, false)
	rec.NoteTimeout()
	rec.NoteFailure()
	cum = 3
	rec.Rotate(0)

	// Window 2: all healthy, one more retry.
	rec.Record(0.010, false)
	cum = 4
	rec.Rotate(0)

	// Window 3: idle.
	rec.Rotate(0)

	s := rec.Series()
	if s.Timeouts.At(0) != 1 || s.Failures.At(0) != 1 || s.Sheds.At(0) != 0 {
		t.Fatalf("window 1 outcomes = %v/%v/%v, want 1/1/0",
			s.Timeouts.At(0), s.Failures.At(0), s.Sheds.At(0))
	}
	if s.Retries.At(0) != 3 || s.Retries.At(1) != 1 || s.Retries.At(2) != 0 {
		t.Fatalf("retry series = %v, want [3 1 0]", s.Retries.Values)
	}
	if got := s.Availability.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("window 1 availability = %v, want 0.5", got)
	}
	if s.Availability.At(1) != 1 || s.Availability.At(2) != 1 {
		t.Fatalf("healthy/idle availability = %v/%v, want 1/1",
			s.Availability.At(1), s.Availability.At(2))
	}
	// Counters reset between windows.
	if s.Timeouts.At(1) != 0 || s.Failures.At(1) != 0 {
		t.Fatalf("window 2 outcomes should be zero")
	}
}
