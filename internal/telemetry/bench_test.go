package telemetry

import "testing"

// BenchmarkLatencyRecord times the two-histogram observation path the
// drivers sit on — one logarithm, two bin increments, a bounded
// reservoir append. The CI bench-smoke job gates this at 0 allocs/op
// beside the kernel ticker and arrival-scheduling gates.
func BenchmarkLatencyRecord(b *testing.B) {
	rec := NewRecorder(2, 0, true)
	v := 0.0001
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(v, i&1 == 1)
		v *= 1.000001
		if v > 100 {
			v = 0.0001
		}
	}
	if rec.Count() != uint64(b.N) {
		b.Fatal("lost observations")
	}
}

// BenchmarkWindowRotate times closing one 2 s window: four quantile
// walks over the touched bin range, eight series appends, and the
// window reset. Gated at 0 allocs/op in CI (the series capacity hint
// covers the benchmark's windows, as experiment.Run's duration-derived
// hint covers a run's).
func BenchmarkWindowRotate(b *testing.B) {
	rec := NewRecorder(2, b.N+1, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A plausible window: a burst of mixed fast/slow responses.
		rec.Record(0.004, false)
		rec.Record(0.009, false)
		rec.Record(0.012, false)
		rec.Record(0.250, false)
		rec.NoteStart()
		rec.NoteEnd()
		rec.Rotate(7)
	}
	if rec.Series().Windows() != b.N {
		b.Fatal("window count mismatch")
	}
}
