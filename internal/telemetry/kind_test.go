package telemetry

import (
	"math"
	"testing"

	"vwchar/internal/rng"
)

// TestRecorderKindAttribution pins the per-interaction histogram bank:
// observations route to their dense kind index, out-of-range kinds
// (including the classic -1 "no attribution") only feed the combined
// histograms, and the bank never double-counts the run total.
func TestRecorderKindAttribution(t *testing.T) {
	r := NewRecorder(2.0, 4, false)
	for i := 0; i < 30; i++ {
		r.RecordKind(0.010, false, 3) // a fast read page
	}
	for i := 0; i < 10; i++ {
		r.RecordKind(0.300, true, 7) // a slow write page
	}
	r.RecordKind(0.050, false, -1)          // unattributed
	r.RecordKind(0.050, false, MaxKinds)    // out of range: skipped
	r.RecordKind(0.050, false, MaxKinds+40) // far out of range

	if got := r.KindHist(3).Count(); got != 30 {
		t.Fatalf("kind 3 count = %d, want 30", got)
	}
	if got := r.KindHist(7).Count(); got != 10 {
		t.Fatalf("kind 7 count = %d, want 10", got)
	}
	if got := r.KindHist(0).Count(); got != 0 {
		t.Fatalf("untouched kind holds %d observations", got)
	}
	if r.KindHist(-1) != nil || r.KindHist(MaxKinds) != nil {
		t.Fatal("out-of-range KindHist must be nil")
	}
	if got := r.RunHist().Count(); got != 43 {
		t.Fatalf("combined count = %d, want 43 (bank must not double-count)", got)
	}
	// The bank's quantiles reflect only their own kind.
	if p95 := r.KindHist(7).Quantile(0.95); math.Abs(p95/0.300-1) > RelativeErrorBound {
		t.Fatalf("kind 7 p95 = %v, want ~0.3", p95)
	}
	if mean := r.KindHist(3).Mean(); math.Abs(mean/0.010-1) > RelativeErrorBound {
		t.Fatalf("kind 3 mean = %v, want ~0.01", mean)
	}
}

// TestRecorderKindSurvivesRotation pins that the bank is run-level:
// window rotation must not reset per-kind histograms.
func TestRecorderKindSurvivesRotation(t *testing.T) {
	r := NewRecorder(2.0, 4, false)
	r.RecordKind(0.020, false, 5)
	r.Rotate(0)
	r.RecordKind(0.020, false, 5)
	r.Rotate(0)
	if got := r.KindHist(5).Count(); got != 2 {
		t.Fatalf("kind 5 count across rotations = %d, want 2", got)
	}
}

// TestRecorderKindZeroAlloc extends the record-path allocation gate to
// the attributed form (all 26 interaction kinds ride this path).
func TestRecorderKindZeroAlloc(t *testing.T) {
	rec := NewRecorder(2, 0, true)
	r := rng.NewSource(11).Stream("kinds")
	kind := 0
	v := 0.001
	allocs := testing.AllocsPerRun(10000, func() {
		rec.RecordKind(v, kind&1 == 1, kind)
		kind = (kind + 1) % MaxKinds
		v = 0.001 + 0.01*r.Float64()
	})
	if allocs != 0 {
		t.Fatalf("attributed record path allocates %v allocs/op, want 0", allocs)
	}
}
