package telemetry

import (
	"math"
	"testing"
)

// TestHistCountAboveOracle checks tail counting against an exact
// oracle at the histogram's bin resolution: thresholds on bin
// boundaries split the recorded values exactly; the edges clamp.
func TestHistCountAboveOracle(t *testing.T) {
	var h Hist
	vals := []float64{0.01, 0.02, 0.1, 0.1, 0.4, 0.8, 1.5, 3.0}
	for _, v := range vals {
		h.Record(v)
	}
	cases := []struct {
		slo  float64
		want uint64
	}{
		{0.05, 6},  // 0.1 x2, 0.4, 0.8, 1.5, 3.0
		{0.5, 3},   // 0.8, 1.5, 3.0
		{5.0, 0},   // beyond max
		{0.001, 8}, // below min
	}
	for _, tc := range cases {
		if got := h.CountAbove(tc.slo); got != tc.want {
			t.Errorf("CountAbove(%v) = %d, want %d", tc.slo, got, tc.want)
		}
	}
}

// TestHistExcessAboveOracle checks the exceedance sum against the
// exact oracle within bin-midpoint resolution.
func TestHistExcessAboveOracle(t *testing.T) {
	var h Hist
	vals := []float64{0.1, 0.2, 0.6, 1.0, 2.5}
	for _, v := range vals {
		h.Record(v)
	}
	const slo = 0.5
	exact := 0.0
	for _, v := range vals {
		if v > slo {
			exact += v - slo
		}
	}
	got := h.ExcessAbove(slo)
	// Log-scale bins are a few percent wide; the midpoint estimate must
	// land within 10% of the exact exceedance.
	if math.Abs(got-exact) > 0.10*exact {
		t.Fatalf("ExcessAbove(%v) = %v, exact %v", slo, got, exact)
	}
	if h.ExcessAbove(10) != 0 {
		t.Fatal("exceedance beyond max must be zero")
	}
	below := h.ExcessAbove(0.001)
	if math.Abs(below-(h.Sum()-0.001*float64(h.Count()))) > 0.10*below {
		t.Fatalf("exceedance below min = %v", below)
	}
}

// TestRecorderClassAttribution pins the per-class split: read-only and
// read-write observations land in their own histograms and window p95
// series while the combined histogram sees everything once.
func TestRecorderClassAttribution(t *testing.T) {
	r := NewRecorder(2.0, 4, false)
	for i := 0; i < 40; i++ {
		r.Record(0.010, false) // fast reads
	}
	for i := 0; i < 10; i++ {
		r.Record(0.200, true) // slow writes
	}
	if got := r.ClassHist(false).Count(); got != 40 {
		t.Fatalf("read class count = %d", got)
	}
	if got := r.ClassHist(true).Count(); got != 10 {
		t.Fatalf("write class count = %d", got)
	}
	if got := r.RunHist().Count(); got != 50 {
		t.Fatalf("combined count = %d (classes must not double-count)", got)
	}
	r.Rotate(0)
	s := r.Series()
	read := s.LatencyReadP95.At(0)
	rw := s.LatencyRWP95.At(0)
	if read <= 0 || rw <= 0 || read >= rw {
		t.Fatalf("class p95 split: read %v ms, rw %v ms; want 0 < read < rw", read, rw)
	}
	// The combined window p95 sits at the write latency (10 of 50 =
	// the top 20%, so p95 lands among the writes).
	if p95 := s.LatencyP95.At(0); math.Abs(p95-rw) > 0.2*rw {
		t.Fatalf("combined p95 %v ms should track the slow class %v ms", p95, rw)
	}
	// Class state resets with the window.
	r.Record(0.050, false)
	r.Rotate(0)
	if got := r.ClassHist(false).Count(); got != 41 {
		t.Fatalf("run-level class hist lost observations: %d", got)
	}
	if s.LatencyRWP95.At(1) != 0 {
		t.Fatal("write-class window series should be empty after reset")
	}
}

// TestRecorderAbandonAccounting pins the SLO-debt split's invariant:
// every abandoned response is recorded in the served histogram too, so
// the abandoned histogram is a subset and the per-window Abandoned
// series counts the window's driven-away sessions.
func TestRecorderAbandonAccounting(t *testing.T) {
	r := NewRecorder(2.0, 4, false)
	for i := 0; i < 20; i++ {
		r.Record(0.050, false)
	}
	// Three responses so slow the session gave up.
	for i := 0; i < 3; i++ {
		r.Record(6.0, false)
		r.NoteAbandon(6.0)
	}
	ab := r.AbandonedHist()
	if ab.Count() != 3 {
		t.Fatalf("abandoned count = %d", ab.Count())
	}
	if r.RunHist().Count() != 23 {
		t.Fatalf("served count = %d; abandoned responses must stay in the served histogram", r.RunHist().Count())
	}
	const slo = 1.0
	if served, abandoned := r.RunHist().CountAbove(slo), ab.CountAbove(slo); abandoned > served {
		t.Fatalf("abandoned violations %d > total %d", abandoned, served)
	}
	if servedDebt, abDebt := r.RunHist().ExcessAbove(slo), ab.ExcessAbove(slo); abDebt > servedDebt {
		t.Fatalf("abandoned debt %v > total %v", abDebt, servedDebt)
	}
	r.Rotate(0)
	r.Record(0.050, false)
	r.Rotate(0)
	s := r.Series()
	if s.Abandoned.At(0) != 3 || s.Abandoned.At(1) != 0 {
		t.Fatalf("abandoned series = %v, want [3 0]", s.Abandoned.Values)
	}
}

// TestReplicaGaugeSeries: the replicas series materializes only when a
// gauge is wired and then samples it at every window boundary.
func TestReplicaGaugeSeries(t *testing.T) {
	r := NewRecorder(2.0, 4, false)
	if r.Series().Replicas != nil {
		t.Fatal("replicas series must stay nil without a gauge")
	}
	n := 1
	r.SetReplicaGauge(func() int { return n })
	if r.Series().Replicas == nil {
		t.Fatal("gauge did not materialize the series")
	}
	r.Rotate(0)
	n = 3
	r.Rotate(0)
	s := r.Series().Replicas
	if s.At(0) != 1 || s.At(1) != 3 {
		t.Fatalf("replica gauge series = %v, want [1 3]", s.Values)
	}
	names := make(map[string]bool)
	for _, sr := range r.Series().Present() {
		names[sr.Name] = true
	}
	// The five fault series, three degradation series, two cache series
	// and two queue series stay absent unless enabled; everything else
	// is present once the gauge is wired.
	if !names["replicas"] || len(names) != len(SeriesNames)-12 {
		t.Fatalf("Present() with a gauge = %d series, want %d", len(names), len(SeriesNames)-12)
	}
}
