package plot

import (
	"bytes"
	"strings"
	"testing"

	"vwchar/internal/timeseries"
)

func mkSeries(name string, vals ...float64) *timeseries.Series {
	s := timeseries.New(name, "KB")
	s.Values = vals
	return s
}

func TestRenderBasics(t *testing.T) {
	s := mkSeries("browse", 0, 10, 20, 30, 40, 50, 40, 30, 20, 10)
	var buf bytes.Buffer
	opts := DefaultOptions("Figure 1: Web+App. (VM)", "CPU cycles")
	if err := Render(&buf, opts, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "browse") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < opts.Height {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderMultipleSeriesUsesDistinctMarkers(t *testing.T) {
	a := mkSeries("browse", 1, 2, 3, 4, 5)
	b := mkSeries("bid", 5, 4, 3, 2, 1)
	var buf bytes.Buffer
	if err := Render(&buf, DefaultOptions("x", "y"), a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("expected two marker glyphs")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, DefaultOptions("x", "y")); err == nil {
		t.Fatal("no series should error")
	}
	if err := Render(&buf, DefaultOptions("x", "y"), mkSeries("empty")); err == nil {
		t.Fatal("all-empty series should error")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Zero vertical range must not divide by zero.
	s := mkSeries("flat", 5, 5, 5, 5)
	var buf bytes.Buffer
	if err := Render(&buf, DefaultOptions("flat", "v"), s); err != nil {
		t.Fatal(err)
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	s := mkSeries("s", 1, 2, 3)
	var buf bytes.Buffer
	opts := Options{Width: 1, Height: 1, Markers: []rune{'*'}}
	if err := Render(&buf, opts, s); err != nil {
		t.Fatal(err)
	}
}

func TestRenderLongSeriesDownsamples(t *testing.T) {
	s := timeseries.New("long", "v")
	for i := 0; i < 5000; i++ {
		s.Append(float64(i % 100))
	}
	var buf bytes.Buffer
	opts := DefaultOptions("long", "v")
	if err := Render(&buf, opts, s); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > opts.Width+20 {
			t.Fatalf("line too wide: %d chars", len(line))
		}
	}
}

func TestFormatVal(t *testing.T) {
	cases := map[float64]string{
		5:     "5",
		12345: "12.3k",
		2.5e6: "2.5M",
		3.2e9: "3.2G",
	}
	for in, want := range cases {
		if got := formatVal(in); got != want {
			t.Fatalf("formatVal(%v) = %q, want %q", in, got, want)
		}
	}
}
