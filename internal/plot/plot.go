// Package plot renders time series as ASCII line charts for the
// terminal, which is how this reproduction "draws" the paper's figures
// (the same data is exported as CSV for external plotting).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vwchar/internal/timeseries"
)

// Options controls chart rendering.
type Options struct {
	// Width and Height are the plot area dimensions in characters.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// YLabel names the value axis.
	YLabel string
	// Markers are the glyphs per series, cycled ('*', '+', ...).
	Markers []rune
}

// DefaultOptions returns a terminal-friendly size.
func DefaultOptions(title, ylabel string) Options {
	return Options{Width: 72, Height: 16, Title: title, YLabel: ylabel,
		Markers: []rune{'*', '+', 'o', 'x'}}
}

// Render draws the series overlaid on one chart. Series are resampled
// horizontally by bucket means to fit the width.
func Render(w io.Writer, opts Options, series ...*timeseries.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := opts.Width, opts.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		if v := s.Min(); v < lo {
			lo = v
		}
		if v := s.Max(); v > hi {
			hi = v
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if maxLen == 0 {
		return fmt.Errorf("plot: all series empty")
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := opts.Markers[si%len(opts.Markers)]
		for x := 0; x < width; x++ {
			from := x * s.Len() / width
			to := (x + 1) * s.Len() / width
			if to <= from {
				to = from + 1
			}
			if from >= s.Len() {
				continue
			}
			if to > s.Len() {
				to = s.Len()
			}
			sum := 0.0
			for i := from; i < to; i++ {
				sum += s.At(i)
			}
			v := sum / float64(to-from)
			y := int((v - lo) / (hi - lo) * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[height-1-y][x] = marker
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.Title); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", opts.Markers[si%len(opts.Markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  [%s]\n", strings.Join(legend, "   ")); err != nil {
		return err
	}
	labels := []string{formatVal(hi), formatVal((hi + lo) / 2), formatVal(lo)}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for y, rowRunes := range grid {
		label := strings.Repeat(" ", labelW)
		switch y {
		case 0:
			label = pad(labels[0], labelW)
		case height / 2:
			label = pad(labels[1], labelW)
		case height - 1:
			label = pad(labels[2], labelW)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(rowRunes)); err != nil {
			return err
		}
	}
	first := series[0]
	xlo := first.TimeAt(0)
	xhi := first.TimeAt(maxLen - 1)
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s  %-10s%s%10s  (%s)\n",
		strings.Repeat(" ", labelW), formatVal(xlo)+"s",
		strings.Repeat(" ", max(0, width-22)), formatVal(xhi)+"s", opts.YLabel)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func formatVal(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
