package sysstat

import (
	"bytes"
	"strings"
	"testing"

	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

func TestCatalogHasExactly182Metrics(t *testing.T) {
	cat := Catalog()
	if len(cat) != CatalogSize {
		t.Fatalf("catalog has %d metrics, the paper profiles %d per instance", len(cat), CatalogSize)
	}
	names := make(map[string]bool)
	for _, m := range cat {
		if m.Name == "" || m.Group == "" || m.Description == "" {
			t.Fatalf("incomplete metric: %+v", m)
		}
		if names[m.Name] {
			t.Fatalf("duplicate metric %q", m.Name)
		}
		names[m.Name] = true
		if m.Eval == nil {
			t.Fatalf("metric %q has no evaluator", m.Name)
		}
	}
}

func TestTotalProfiledMetricsIs518(t *testing.T) {
	if got := TotalProfiledMetrics(); got != 518 {
		t.Fatalf("total = %d, paper profiles 518", got)
	}
}

func sampleSnapshots() (Snapshot, Snapshot) {
	prev := Snapshot{
		At: 0, Cores: 2, FreqHz: 2.8e9,
		MemTotal: 2 << 30, MemUsed: 500e6, MemBuffers: 20e6, MemCached: 100e6,
	}
	cur := prev
	cur.At = 2 * sim.Second
	cur.CPUCycles = 1e9
	cur.CPUBusy = 800 * sim.Millisecond
	cur.StealTime = 40 * sim.Millisecond
	cur.DiskReadBytes = 1 << 20
	cur.DiskWriteBytes = 2 << 20
	cur.DiskReadOps = 10
	cur.DiskWriteOps = 20
	cur.DiskBusy = 100 * sim.Millisecond
	cur.NetRxBytes = 3 << 20
	cur.NetTxBytes = 4 << 20
	cur.NetRxPkts = 3000
	cur.NetTxPkts = 4000
	cur.CtxSwitches = 500
	cur.Interrupts = 400
	cur.Forks = 6
	cur.Faults = 100
	cur.MajFaults = 2
	cur.PgInBytes = 1 << 20
	cur.PgOutBytes = 2 << 20
	cur.Procs = 120
	cur.RunQueue = 3
	cur.Load1 = 1.5
	return prev, cur
}

func evalByName(t *testing.T, name string) float64 {
	t.Helper()
	prev, cur := sampleSnapshots()
	for _, m := range Catalog() {
		if m.Name == name {
			return m.Eval(&prev, &cur, 2)
		}
	}
	t.Fatalf("no metric %q", name)
	return 0
}

func TestMetricValues(t *testing.T) {
	if got := evalByName(t, "cswch/s"); got != 250 {
		t.Fatalf("cswch/s = %v", got)
	}
	if got := evalByName(t, "proc/s"); got != 3 {
		t.Fatalf("proc/s = %v", got)
	}
	// busy 0.8 s of 4 core-seconds = 20%; 78% of that is user time.
	if got := evalByName(t, "%user [all]"); got < 15 || got > 16 {
		t.Fatalf("%%user = %v", got)
	}
	if got := evalByName(t, "%steal [all]"); got <= 0 {
		t.Fatalf("%%steal = %v", got)
	}
	idle := evalByName(t, "%idle [all]")
	if idle <= 0 || idle >= 100 {
		t.Fatalf("%%idle = %v", idle)
	}
	if got := evalByName(t, "kbmemused"); got != 500e6/1024 {
		t.Fatalf("kbmemused = %v", got)
	}
	if got := evalByName(t, "rxkB/s [eth0]"); got != (3<<20)/1024/2 {
		t.Fatalf("rxkB/s = %v", got)
	}
	if got := evalByName(t, "rxkB/s [lo]"); got != 0 {
		t.Fatalf("rxkB/s [lo] = %v (loopback should be idle)", got)
	}
	if got := evalByName(t, "bread/s"); got != (1<<20)/512/2 {
		t.Fatalf("bread/s = %v", got)
	}
	if got := evalByName(t, "tps"); got != 15 {
		t.Fatalf("tps = %v", got)
	}
	if got := evalByName(t, "runq-sz"); got != 3 {
		t.Fatalf("runq-sz = %v", got)
	}
	if got := evalByName(t, "MHz"); got != 2800 {
		t.Fatalf("MHz = %v", got)
	}
	if got := evalByName(t, "pswpin/s"); got != 0 {
		t.Fatalf("pswpin/s = %v (testbed never swapped)", got)
	}
}

func TestCollectorProducesHeadlineSeries(t *testing.T) {
	k := sim.NewKernel()
	var cycles float64
	target := Target{Name: "vm", Snap: func() Snapshot {
		return Snapshot{
			At: k.Now(), Cores: 2, FreqHz: 2.8e9,
			CPUCycles: cycles, MemTotal: 2 << 30, MemUsed: 400e6,
		}
	}}
	c := NewCollector(k, false, target)
	c.Start()
	k.Every(sim.Second, sim.Second, func(sim.Time) { cycles += 5e8 })
	k.Run(20 * sim.Second)
	cpu := c.CPU("vm")
	if cpu.Len() != 10 {
		t.Fatalf("cpu samples = %d, want 10", cpu.Len())
	}
	// ~1e9 cycles per 2 s sample.
	for i := 1; i < cpu.Len(); i++ {
		if cpu.At(i) != 1e9 {
			t.Fatalf("sample %d = %v", i, cpu.At(i))
		}
	}
	if mem := c.Mem("vm"); mem.At(0) != 400 {
		t.Fatalf("mem MB = %v", mem.At(0))
	}
	if c.Samples != 10 {
		t.Fatalf("Samples = %d", c.Samples)
	}
	if _, err := c.Metric("vm", "%user [all]"); err == nil {
		t.Fatal("full catalog was not recorded; Metric should error")
	}
}

// TestCollectorOnSampleHook pins the telemetry seam: hooks fire once
// per collection round, after the resource snapshots, at exactly the
// sample times — so anything a hook emits is aligned with the resource
// series window for window.
func TestCollectorOnSampleHook(t *testing.T) {
	k := sim.NewKernel()
	target := Target{Name: "vm", Snap: func() Snapshot {
		return Snapshot{At: k.Now(), Cores: 2, FreqHz: 2.8e9, MemTotal: 1 << 30, MemUsed: 1 << 29}
	}}
	c := NewCollector(k, false, target)
	var times []sim.Time
	var sampleCountAtHook []int
	c.OnSample(func(now sim.Time) {
		times = append(times, now)
		sampleCountAtHook = append(sampleCountAtHook, c.Samples)
	})
	order := 0
	c.OnSample(func(now sim.Time) { order++ })
	c.Start()
	k.Run(10 * sim.Second)
	if len(times) != c.Samples || c.Samples != 5 {
		t.Fatalf("hook fired %d times over %d samples", len(times), c.Samples)
	}
	for i, at := range times {
		if want := sim.Time(i+1) * SampleInterval; at != want {
			t.Fatalf("hook %d fired at %v, want %v", i, at, want)
		}
		// The round's resource samples land before the hook runs.
		if sampleCountAtHook[i] != i+1 {
			t.Fatalf("hook %d saw %d samples recorded, want %d", i, sampleCountAtHook[i], i+1)
		}
	}
	if order != 5 {
		t.Fatalf("second hook fired %d times", order)
	}
	if got := c.CPU("vm").Len(); got != len(times) {
		t.Fatalf("resource series has %d samples vs %d hook firings", got, len(times))
	}
}

func TestCollectorFullCatalog(t *testing.T) {
	k := sim.NewKernel()
	target := Target{Name: "vm", Snap: func() Snapshot {
		return Snapshot{At: k.Now(), Cores: 2, FreqHz: 2.8e9, MemTotal: 1 << 30, MemUsed: 1 << 29}
	}}
	c := NewCollector(k, true, target)
	c.Start()
	k.Run(10 * sim.Second)
	s, err := c.Metric("vm", "%memused")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 || s.At(0) != 50 {
		t.Fatalf("%%memused series: len=%d v0=%v", s.Len(), s.Values)
	}
	if _, err := c.Metric("vm", "no-such-metric"); err == nil {
		t.Fatal("unknown metric should error")
	}
	if len(c.MetricNames()) != CatalogSize {
		t.Fatal("MetricNames should list the whole catalog")
	}
	if got := c.TargetNames(); len(got) != 1 || got[0] != "vm" {
		t.Fatalf("TargetNames = %v", got)
	}
}

func TestCollectorStop(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, false, Target{Name: "x", Snap: func() Snapshot { return Snapshot{} }})
	c.Start()
	k.Run(6 * sim.Second)
	c.Stop()
	k.Run(20 * sim.Second)
	if c.Samples != 3 {
		t.Fatalf("Samples after Stop = %d", c.Samples)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) == 0 {
		t.Fatal("empty Table 1")
	}
	sources := map[string]int{}
	for _, r := range rows {
		if r.Name == "" || r.Description == "" {
			t.Fatalf("incomplete row: %+v", r)
		}
		sources[r.Source]++
	}
	for _, src := range []string{"sysstat (hypervisor)", "sysstat (VM)", "perf (hypervisor)"} {
		if sources[src] == 0 {
			t.Fatalf("Table 1 missing source %q", src)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "518") {
		t.Fatal("Table 1 header should state the 518-metric inventory")
	}
	if !strings.Contains(out, "cswch/s") || !strings.Contains(out, "xen-hypercalls") {
		t.Fatal("Table 1 missing representative metrics")
	}
}

func TestGroupCountsSumToCatalog(t *testing.T) {
	total := 0
	for _, g := range GroupCounts() {
		total += g.Count
	}
	if total != CatalogSize {
		t.Fatalf("group counts sum to %d", total)
	}
}

func TestPerfCatalogAccessibleForTable1(t *testing.T) {
	if len(perfCounterCatalog()) != xen.PerfCounterCount {
		t.Fatal("perf catalog size mismatch")
	}
}
