// Package sysstat reproduces the paper's monitoring plane: a sysstat-like
// collector sampling 182 OS metrics every 2 seconds from each monitored
// instance (the hypervisor/dom0 and each VM, or a physical host), plus
// access to the 154 hypervisor perf counters — 518 profiled metrics in
// total, as in the paper's Section 3.
package sysstat

import (
	"fmt"

	"vwchar/internal/sim"
)

// Snapshot is one instant's view of an OS instance. Cumulative fields
// are differenced between samples to produce rates.
type Snapshot struct {
	At sim.Time

	// CPU
	CPUCycles float64  // cumulative executed cycles (VM: virtual scale)
	CPUBusy   sim.Time // cumulative busy time
	StealTime sim.Time // cumulative runnable-not-running (VMs)
	Cores     int
	FreqHz    float64

	// Memory (bytes)
	MemTotal, MemUsed, MemBuffers, MemCached float64

	// Disk (cumulative)
	DiskReadBytes, DiskWriteBytes float64
	DiskReadOps, DiskWriteOps     uint64
	DiskBusy                      sim.Time

	// Network (cumulative)
	NetRxBytes, NetTxBytes float64
	NetRxPkts, NetTxPkts   uint64

	// Kernel counters (cumulative)
	CtxSwitches, Interrupts, SoftIRQs, Forks uint64
	Faults, MajFaults                        uint64
	PgInBytes, PgOutBytes                    float64

	// Instantaneous
	Procs, RunQueue, Blocked, OpenFds, TCPSocks, UDPSocks int
	Load1, Load5, Load15                                  float64
}

// Metric is one catalog entry: identity plus an evaluator over two
// consecutive snapshots.
type Metric struct {
	// Name follows sar naming (e.g. "%user", "rxkB/s [eth0]").
	Name string
	// Group is the sar section ("cpu", "memory", "disk", ...).
	Group string
	// Unit labels the value.
	Unit string
	// Description explains the metric (Table 1 column).
	Description string
	// Eval computes the sample from (prev, cur) over dt seconds.
	Eval func(prev, cur *Snapshot, dt float64) float64
}

// rate differences a cumulative float64 field per second.
func rate(f func(*Snapshot) float64) func(*Snapshot, *Snapshot, float64) float64 {
	return func(prev, cur *Snapshot, dt float64) float64 {
		if dt <= 0 {
			return 0
		}
		return (f(cur) - f(prev)) / dt
	}
}

func urate(f func(*Snapshot) uint64) func(*Snapshot, *Snapshot, float64) float64 {
	return func(prev, cur *Snapshot, dt float64) float64 {
		if dt <= 0 {
			return 0
		}
		return float64(f(cur)-f(prev)) / dt
	}
}

func gauge(f func(*Snapshot) float64) func(*Snapshot, *Snapshot, float64) float64 {
	return func(_, cur *Snapshot, _ float64) float64 { return f(cur) }
}

func constant(v float64) func(*Snapshot, *Snapshot, float64) float64 {
	return func(*Snapshot, *Snapshot, float64) float64 { return v }
}

// cpuBusyFraction is the busy share of one sampling window.
func cpuBusyFraction(prev, cur *Snapshot, dt float64) float64 {
	if dt <= 0 || cur.Cores == 0 {
		return 0
	}
	f := (cur.CPUBusy - prev.CPUBusy).Sec() / dt / float64(cur.Cores)
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

func stealFraction(prev, cur *Snapshot, dt float64) float64 {
	if dt <= 0 || cur.Cores == 0 {
		return 0
	}
	f := (cur.StealTime - prev.StealTime).Sec() / dt / float64(cur.Cores)
	if f < 0 {
		f = 0
	}
	return f
}

func ioWaitFraction(prev, cur *Snapshot, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	f := (cur.DiskBusy - prev.DiskBusy).Sec() / dt * 0.5
	if f > 0.3 {
		f = 0.3
	}
	return f
}

// Busy-time split between user and system mode for the LAMP-style
// workloads modeled here.
const (
	userShare = 0.78
	sysShare  = 0.22
)

// Catalog builds the 182-metric sysstat catalog. The count is pinned by
// a test; extending the catalog means consciously deciding the paper
// comparison no longer holds.
func Catalog() []Metric {
	var ms []Metric
	add := func(group, name, unit, desc string, eval func(*Snapshot, *Snapshot, float64) float64) {
		ms = append(ms, Metric{Name: name, Group: group, Unit: unit, Description: desc, Eval: eval})
	}

	// --- CPU utilization: "all" plus two logical CPUs, 6 columns each (18).
	for _, cpu := range []string{"all", "0", "1"} {
		cpu := cpu
		add("cpu", "%user ["+cpu+"]", "%", "time in user mode on cpu "+cpu,
			func(p, c *Snapshot, dt float64) float64 { return cpuBusyFraction(p, c, dt) * userShare * 100 })
		add("cpu", "%nice ["+cpu+"]", "%", "time in niced user mode on cpu "+cpu, constant(0))
		add("cpu", "%system ["+cpu+"]", "%", "time in kernel mode on cpu "+cpu,
			func(p, c *Snapshot, dt float64) float64 { return cpuBusyFraction(p, c, dt) * sysShare * 100 })
		add("cpu", "%iowait ["+cpu+"]", "%", "idle time with outstanding disk I/O on cpu "+cpu,
			func(p, c *Snapshot, dt float64) float64 { return ioWaitFraction(p, c, dt) * 100 })
		add("cpu", "%steal ["+cpu+"]", "%", "involuntary wait while the hypervisor served others on cpu "+cpu,
			func(p, c *Snapshot, dt float64) float64 { return stealFraction(p, c, dt) * 100 })
		add("cpu", "%idle ["+cpu+"]", "%", "idle time on cpu "+cpu,
			func(p, c *Snapshot, dt float64) float64 {
				idle := 100 - (cpuBusyFraction(p, c, dt)+ioWaitFraction(p, c, dt)+stealFraction(p, c, dt))*100
				if idle < 0 {
					idle = 0
				}
				return idle
			})
	}

	// --- Task creation and switching (2).
	add("task", "proc/s", "1/s", "tasks created per second", urate(func(s *Snapshot) uint64 { return s.Forks }))
	add("task", "cswch/s", "1/s", "context switches per second", urate(func(s *Snapshot) uint64 { return s.CtxSwitches }))

	// --- Interrupts: total plus 16 IRQ lines (17).
	add("intr", "intr/s [sum]", "1/s", "total interrupts per second", urate(func(s *Snapshot) uint64 { return s.Interrupts }))
	irqShare := []float64{0.52, 0.01, 0, 0.002, 0.001, 0, 0, 0.001, 0, 0.002, 0.003, 0.001, 0.18, 0.002, 0.15, 0.12}
	for i := 0; i < 16; i++ {
		share := irqShare[i]
		add("intr", fmt.Sprintf("intr/s [i%03d]", i), "1/s",
			fmt.Sprintf("interrupts per second on IRQ line %d", i),
			func(p, c *Snapshot, dt float64) float64 {
				if dt <= 0 {
					return 0
				}
				return float64(c.Interrupts-p.Interrupts) / dt * share
			})
	}

	// --- Swapping (2): the testbed never swapped; pinned at zero.
	add("swap", "pswpin/s", "pages/s", "pages swapped in per second", constant(0))
	add("swap", "pswpout/s", "pages/s", "pages swapped out per second", constant(0))

	// --- Paging (9).
	add("paging", "pgpgin/s", "KB/s", "KB paged in from disk per second", rate(func(s *Snapshot) float64 { return s.PgInBytes / 1024 }))
	add("paging", "pgpgout/s", "KB/s", "KB paged out to disk per second", rate(func(s *Snapshot) float64 { return s.PgOutBytes / 1024 }))
	add("paging", "fault/s", "1/s", "page faults per second", urate(func(s *Snapshot) uint64 { return s.Faults }))
	add("paging", "majflt/s", "1/s", "major faults per second", urate(func(s *Snapshot) uint64 { return s.MajFaults }))
	add("paging", "pgfree/s", "pages/s", "pages freed per second",
		func(p, c *Snapshot, dt float64) float64 {
			if dt <= 0 {
				return 0
			}
			return float64(c.Faults-p.Faults) / dt * 1.1
		})
	add("paging", "pgscank/s", "pages/s", "pages scanned by kswapd per second", constant(0))
	add("paging", "pgscand/s", "pages/s", "pages scanned directly per second", constant(0))
	add("paging", "pgsteal/s", "pages/s", "pages reclaimed per second", constant(0))
	add("paging", "%vmeff", "%", "reclaim efficiency", constant(0))

	// --- I/O summary (5).
	add("io", "tps", "1/s", "transfers per second to disk",
		urate(func(s *Snapshot) uint64 { return s.DiskReadOps + s.DiskWriteOps }))
	add("io", "rtps", "1/s", "read requests per second", urate(func(s *Snapshot) uint64 { return s.DiskReadOps }))
	add("io", "wtps", "1/s", "write requests per second", urate(func(s *Snapshot) uint64 { return s.DiskWriteOps }))
	add("io", "bread/s", "sectors/s", "sectors read per second", rate(func(s *Snapshot) float64 { return s.DiskReadBytes / 512 }))
	add("io", "bwrtn/s", "sectors/s", "sectors written per second", rate(func(s *Snapshot) float64 { return s.DiskWriteBytes / 512 }))

	// --- Memory rates (3).
	add("memrate", "frmpg/s", "pages/s", "pages freed (negative: allocated) per second",
		rate(func(s *Snapshot) float64 { return -(s.MemUsed) / 4096 }))
	add("memrate", "bufpg/s", "pages/s", "buffer pages added per second",
		rate(func(s *Snapshot) float64 { return s.MemBuffers / 4096 }))
	add("memrate", "campg/s", "pages/s", "cached pages added per second",
		rate(func(s *Snapshot) float64 { return s.MemCached / 4096 }))

	// --- Memory utilization (10).
	add("memory", "kbmemfree", "KB", "free memory", gauge(func(s *Snapshot) float64 { return (s.MemTotal - s.MemUsed) / 1024 }))
	add("memory", "kbmemused", "KB", "used memory", gauge(func(s *Snapshot) float64 { return s.MemUsed / 1024 }))
	add("memory", "%memused", "%", "used memory share", gauge(func(s *Snapshot) float64 {
		if s.MemTotal == 0 {
			return 0
		}
		return s.MemUsed / s.MemTotal * 100
	}))
	add("memory", "kbbuffers", "KB", "kernel buffer memory", gauge(func(s *Snapshot) float64 { return s.MemBuffers / 1024 }))
	add("memory", "kbcached", "KB", "page cache memory", gauge(func(s *Snapshot) float64 { return s.MemCached / 1024 }))
	add("memory", "kbcommit", "KB", "committed address space", gauge(func(s *Snapshot) float64 { return s.MemUsed * 1.4 / 1024 }))
	add("memory", "%commit", "%", "committed share of memory+swap", gauge(func(s *Snapshot) float64 {
		if s.MemTotal == 0 {
			return 0
		}
		return s.MemUsed * 1.4 / s.MemTotal * 100
	}))
	add("memory", "kbactive", "KB", "active memory", gauge(func(s *Snapshot) float64 { return s.MemUsed * 0.7 / 1024 }))
	add("memory", "kbinact", "KB", "inactive memory", gauge(func(s *Snapshot) float64 { return s.MemUsed * 0.3 / 1024 }))
	add("memory", "kbdirty", "KB", "dirty pages awaiting writeback",
		func(p, c *Snapshot, dt float64) float64 {
			if dt <= 0 {
				return 0
			}
			return (c.DiskWriteBytes - p.DiskWriteBytes) / 1024 * 0.4
		})

	// --- Swap utilization (5): 2 GB swap, unused.
	const swapKB = 2 << 20
	add("swaputil", "kbswpfree", "KB", "free swap", constant(swapKB))
	add("swaputil", "kbswpused", "KB", "used swap", constant(0))
	add("swaputil", "%swpused", "%", "used swap share", constant(0))
	add("swaputil", "kbswpcad", "KB", "cached swap", constant(0))
	add("swaputil", "%swpcad", "%", "cached swap share", constant(0))

	// --- Hugepages (3): not configured on the testbed.
	add("huge", "kbhugfree", "KB", "free hugepage memory", constant(0))
	add("huge", "kbhugused", "KB", "used hugepage memory", constant(0))
	add("huge", "%hugused", "%", "hugepage use share", constant(0))

	// --- Inode/file tables (4).
	add("files", "dentunusd", "count", "unused dentry cache entries",
		gauge(func(s *Snapshot) float64 { return 12000 + float64(s.Procs)*20 }))
	add("files", "file-nr", "count", "open file handles", gauge(func(s *Snapshot) float64 { return float64(s.OpenFds) }))
	add("files", "inode-nr", "count", "cached inodes", gauge(func(s *Snapshot) float64 { return 24000 + float64(s.Procs)*12 }))
	add("files", "pty-nr", "count", "pseudo-terminals in use", constant(2))

	// --- Run queue and load (6).
	add("load", "runq-sz", "tasks", "run queue length", gauge(func(s *Snapshot) float64 { return float64(s.RunQueue) }))
	add("load", "plist-sz", "tasks", "task list size", gauge(func(s *Snapshot) float64 { return float64(s.Procs) }))
	add("load", "ldavg-1", "load", "1-minute load average", gauge(func(s *Snapshot) float64 { return s.Load1 }))
	add("load", "ldavg-5", "load", "5-minute load average", gauge(func(s *Snapshot) float64 { return s.Load5 }))
	add("load", "ldavg-15", "load", "15-minute load average", gauge(func(s *Snapshot) float64 { return s.Load15 }))
	add("load", "blocked", "tasks", "tasks blocked on I/O", gauge(func(s *Snapshot) float64 { return float64(s.Blocked) }))

	// --- TTY (6): headless servers.
	for _, m := range []struct{ n, d string }{
		{"rcvin/s", "serial receive interrupts per second"},
		{"xmtin/s", "serial transmit interrupts per second"},
		{"framerr/s", "serial frame errors per second"},
		{"prtyerr/s", "serial parity errors per second"},
		{"brk/s", "serial breaks per second"},
		{"ovrun/s", "serial overruns per second"},
	} {
		add("tty", m.n, "1/s", m.d, constant(0))
	}

	// --- Per-device disk stats: sda (data) and sdb (idle) x 8 (16).
	diskDev := func(dev string, active bool) {
		act := func(f func(*Snapshot, *Snapshot, float64) float64) func(*Snapshot, *Snapshot, float64) float64 {
			if active {
				return f
			}
			return constant(0)
		}
		add("disk", "tps ["+dev+"]", "1/s", "transfers per second on "+dev,
			act(urate(func(s *Snapshot) uint64 { return s.DiskReadOps + s.DiskWriteOps })))
		add("disk", "rd_sec/s ["+dev+"]", "sectors/s", "sectors read per second on "+dev,
			act(rate(func(s *Snapshot) float64 { return s.DiskReadBytes / 512 })))
		add("disk", "wr_sec/s ["+dev+"]", "sectors/s", "sectors written per second on "+dev,
			act(rate(func(s *Snapshot) float64 { return s.DiskWriteBytes / 512 })))
		add("disk", "avgrq-sz ["+dev+"]", "sectors", "average request size on "+dev,
			act(func(p, c *Snapshot, dt float64) float64 {
				ops := float64((c.DiskReadOps + c.DiskWriteOps) - (p.DiskReadOps + p.DiskWriteOps))
				if ops == 0 {
					return 0
				}
				return ((c.DiskReadBytes + c.DiskWriteBytes) - (p.DiskReadBytes + p.DiskWriteBytes)) / 512 / ops
			}))
		add("disk", "avgqu-sz ["+dev+"]", "requests", "average queue length on "+dev,
			act(func(p, c *Snapshot, dt float64) float64 {
				if dt <= 0 {
					return 0
				}
				return (c.DiskBusy - p.DiskBusy).Sec() / dt * 1.3
			}))
		add("disk", "await ["+dev+"]", "ms", "average request latency on "+dev,
			act(func(p, c *Snapshot, dt float64) float64 {
				ops := float64((c.DiskReadOps + c.DiskWriteOps) - (p.DiskReadOps + p.DiskWriteOps))
				if ops == 0 {
					return 0
				}
				return (c.DiskBusy - p.DiskBusy).Sec() * 1000 / ops * 1.4
			}))
		add("disk", "svctm ["+dev+"]", "ms", "average service time on "+dev,
			act(func(p, c *Snapshot, dt float64) float64 {
				ops := float64((c.DiskReadOps + c.DiskWriteOps) - (p.DiskReadOps + p.DiskWriteOps))
				if ops == 0 {
					return 0
				}
				return (c.DiskBusy - p.DiskBusy).Sec() * 1000 / ops
			}))
		add("disk", "%util ["+dev+"]", "%", "device utilization of "+dev,
			act(func(p, c *Snapshot, dt float64) float64 {
				if dt <= 0 {
					return 0
				}
				return (c.DiskBusy - p.DiskBusy).Sec() / dt * 100
			}))
	}
	diskDev("sda", true)
	diskDev("sdb", false)

	// --- Per-interface network stats: eth0 (all traffic) and lo x 7 (14).
	netDev := func(dev string, active bool) {
		act := func(f func(*Snapshot, *Snapshot, float64) float64) func(*Snapshot, *Snapshot, float64) float64 {
			if active {
				return f
			}
			return constant(0)
		}
		add("net", "rxpck/s ["+dev+"]", "1/s", "packets received per second on "+dev,
			act(urate(func(s *Snapshot) uint64 { return s.NetRxPkts })))
		add("net", "txpck/s ["+dev+"]", "1/s", "packets transmitted per second on "+dev,
			act(urate(func(s *Snapshot) uint64 { return s.NetTxPkts })))
		add("net", "rxkB/s ["+dev+"]", "KB/s", "KB received per second on "+dev,
			act(rate(func(s *Snapshot) float64 { return s.NetRxBytes / 1024 })))
		add("net", "txkB/s ["+dev+"]", "KB/s", "KB transmitted per second on "+dev,
			act(rate(func(s *Snapshot) float64 { return s.NetTxBytes / 1024 })))
		add("net", "rxcmp/s ["+dev+"]", "1/s", "compressed packets received per second on "+dev, constant(0))
		add("net", "txcmp/s ["+dev+"]", "1/s", "compressed packets transmitted per second on "+dev, constant(0))
		add("net", "rxmcst/s ["+dev+"]", "1/s", "multicast packets received per second on "+dev,
			act(constant(0.4)))
	}
	netDev("eth0", true)
	netDev("lo", false)

	// --- Per-interface error stats x 9 (18): a healthy gigabit LAN.
	for _, dev := range []string{"eth0", "lo"} {
		for _, m := range []struct{ n, d string }{
			{"rxerr/s", "receive errors per second"},
			{"txerr/s", "transmit errors per second"},
			{"coll/s", "collisions per second"},
			{"rxdrop/s", "received packets dropped per second"},
			{"txdrop/s", "transmitted packets dropped per second"},
			{"txcarr/s", "carrier errors per second"},
			{"txfifo/s", "transmit FIFO overruns per second"},
			{"rxfifo/s", "receive FIFO overruns per second"},
			{"rxfram/s", "frame alignment errors per second"},
		} {
			add("neterr", m.n+" ["+dev+"]", "1/s", m.d+" on "+dev, constant(0))
		}
	}

	// --- NFS client (6) and server (11): no NFS on the testbed.
	for _, m := range []struct{ n, d string }{
		{"call/s", "NFS client RPC calls per second"},
		{"retrans/s", "NFS client retransmissions per second"},
		{"read/s", "NFS client reads per second"},
		{"write/s", "NFS client writes per second"},
		{"access/s", "NFS client access calls per second"},
		{"getatt/s", "NFS client getattr calls per second"},
	} {
		add("nfs", m.n, "1/s", m.d, constant(0))
	}
	for _, m := range []struct{ n, d string }{
		{"scall/s", "NFS server RPC calls per second"},
		{"badcall/s", "NFS server bad calls per second"},
		{"packet/s", "NFS server packets per second"},
		{"udp/s", "NFS server UDP packets per second"},
		{"tcp/s", "NFS server TCP packets per second"},
		{"hit/s", "NFS server reply-cache hits per second"},
		{"miss/s", "NFS server reply-cache misses per second"},
		{"sread/s", "NFS server reads per second"},
		{"swrite/s", "NFS server writes per second"},
		{"saccess/s", "NFS server access calls per second"},
		{"sgetatt/s", "NFS server getattr calls per second"},
	} {
		add("nfsd", m.n, "1/s", m.d, constant(0))
	}

	// --- Sockets (6).
	add("sock", "totsck", "count", "sockets in use", gauge(func(s *Snapshot) float64 { return float64(s.TCPSocks + s.UDPSocks + 12) }))
	add("sock", "tcpsck", "count", "TCP sockets in use", gauge(func(s *Snapshot) float64 { return float64(s.TCPSocks) }))
	add("sock", "udpsck", "count", "UDP sockets in use", gauge(func(s *Snapshot) float64 { return float64(s.UDPSocks) }))
	add("sock", "rawsck", "count", "raw sockets in use", constant(0))
	add("sock", "ip-frag", "count", "IP fragments queued", constant(0))
	add("sock", "tcp-tw", "count", "TCP sockets in TIME_WAIT",
		func(p, c *Snapshot, dt float64) float64 {
			if dt <= 0 {
				return 0
			}
			return float64(c.NetRxPkts-p.NetRxPkts) / dt * 0.05
		})

	// --- IP (8).
	pktRate := func(scale float64) func(*Snapshot, *Snapshot, float64) float64 {
		return func(p, c *Snapshot, dt float64) float64 {
			if dt <= 0 {
				return 0
			}
			return float64((c.NetRxPkts+c.NetTxPkts)-(p.NetRxPkts+p.NetTxPkts)) / dt * scale
		}
	}
	add("ip", "irec/s", "1/s", "IP datagrams received per second", urate(func(s *Snapshot) uint64 { return s.NetRxPkts }))
	add("ip", "fwddgm/s", "1/s", "IP datagrams forwarded per second", constant(0))
	add("ip", "idel/s", "1/s", "IP datagrams delivered per second", urate(func(s *Snapshot) uint64 { return s.NetRxPkts }))
	add("ip", "orq/s", "1/s", "IP datagrams sent per second", urate(func(s *Snapshot) uint64 { return s.NetTxPkts }))
	add("ip", "asmrq/s", "1/s", "IP fragments needing reassembly per second", constant(0))
	add("ip", "asmok/s", "1/s", "IP datagrams reassembled per second", constant(0))
	add("ip", "fragok/s", "1/s", "IP datagrams fragmented per second", constant(0))
	add("ip", "fragcrt/s", "1/s", "IP fragments created per second", constant(0))

	// --- ICMP (4).
	add("icmp", "imsg/s", "1/s", "ICMP messages received per second", pktRate(0.0004))
	add("icmp", "omsg/s", "1/s", "ICMP messages sent per second", pktRate(0.0004))
	add("icmp", "iech/s", "1/s", "ICMP echo requests received per second", pktRate(0.0002))
	add("icmp", "oech/s", "1/s", "ICMP echo replies sent per second", pktRate(0.0002))

	// --- TCP (4).
	add("tcp", "active/s", "1/s", "active TCP opens per second", pktRate(0.01))
	add("tcp", "passive/s", "1/s", "passive TCP opens per second", pktRate(0.012))
	add("tcp", "iseg/s", "1/s", "TCP segments received per second", urate(func(s *Snapshot) uint64 { return s.NetRxPkts }))
	add("tcp", "oseg/s", "1/s", "TCP segments sent per second", urate(func(s *Snapshot) uint64 { return s.NetTxPkts }))

	// --- UDP (4).
	add("udp", "idgm/s", "1/s", "UDP datagrams received per second", pktRate(0.001))
	add("udp", "odgm/s", "1/s", "UDP datagrams sent per second", pktRate(0.001))
	add("udp", "noport/s", "1/s", "UDP no-port errors per second", constant(0))
	add("udp", "idgmerr/s", "1/s", "UDP datagram errors per second", constant(0))

	// --- Power (1).
	add("power", "MHz", "MHz", "current processor clock", gauge(func(s *Snapshot) float64 { return s.FreqHz / 1e6 }))

	return ms
}

// CatalogSize is the pinned sysstat metric count per monitored instance,
// matching the paper's 182.
const CatalogSize = 182
