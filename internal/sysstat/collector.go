package sysstat

import (
	"fmt"
	"sort"

	"vwchar/internal/sim"
	"vwchar/internal/timeseries"
)

// SampleInterval is the paper's monitoring period.
const SampleInterval = 2 * sim.Second

// Target is one monitored OS instance.
type Target struct {
	// Name labels the instance ("webapp.vm", "mysql.vm", "dom0", ...).
	Name string
	// Snap captures the instance's current state.
	Snap func() Snapshot
}

// Collector samples all targets every 2 seconds, producing both the
// headline per-2s demand series used by the paper's figures and the full
// 182-metric catalog per target.
type Collector struct {
	k       *sim.Kernel
	targets []Target
	catalog []Metric

	prev map[string]Snapshot
	// headline series per target
	cpu, mem, disk, net map[string]*timeseries.Series
	// full catalog series per target, keyed "target/metric"
	full map[string]*timeseries.Series

	ticker *sim.Ticker
	// onSample hooks fire after each collection round, in registration
	// order — the telemetry recorders rotate their windows here, which
	// is what aligns the latency series with the resource series.
	onSample []func(now sim.Time)
	// Samples counts collection rounds.
	Samples int
	// KeepFullCatalog toggles recording all 182 metrics per target
	// (headline series are always kept).
	KeepFullCatalog bool
}

// NewCollector builds a collector over the given targets.
func NewCollector(k *sim.Kernel, keepFull bool, targets ...Target) *Collector {
	c := &Collector{
		k:               k,
		targets:         targets,
		catalog:         Catalog(),
		prev:            make(map[string]Snapshot),
		cpu:             make(map[string]*timeseries.Series),
		mem:             make(map[string]*timeseries.Series),
		disk:            make(map[string]*timeseries.Series),
		net:             make(map[string]*timeseries.Series),
		full:            make(map[string]*timeseries.Series),
		KeepFullCatalog: keepFull,
	}
	for _, t := range targets {
		c.cpu[t.Name] = timeseries.New(t.Name+".cpu.cycles", "cycles/2s")
		c.mem[t.Name] = timeseries.New(t.Name+".mem.used", "MB")
		c.disk[t.Name] = timeseries.New(t.Name+".disk.rw", "KB/2s")
		c.net[t.Name] = timeseries.New(t.Name+".net.rxtx", "KB/2s")
		if keepFull {
			for _, m := range c.catalog {
				key := t.Name + "/" + m.Name
				c.full[key] = timeseries.New(key, m.Unit)
			}
		}
		c.prev[t.Name] = t.Snap()
	}
	return c
}

// OnSample registers a hook invoked after every collection round with
// the sample time. Hooks run on the collector's ticker in registration
// order, so anything they emit shares the resource series' time axis
// sample for sample. Register before Start.
func (c *Collector) OnSample(fn func(now sim.Time)) {
	c.onSample = append(c.onSample, fn)
}

// Start begins sampling (first sample after one interval).
func (c *Collector) Start() {
	c.ticker = c.k.Every(SampleInterval, SampleInterval, c.sample)
}

// Stop halts sampling.
func (c *Collector) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *Collector) sample(now sim.Time) {
	dt := SampleInterval.Sec()
	for _, t := range c.targets {
		cur := t.Snap()
		prev := c.prev[t.Name]
		c.cpu[t.Name].Append(cur.CPUCycles - prev.CPUCycles)
		c.mem[t.Name].Append(cur.MemUsed / 1e6)
		c.disk[t.Name].Append(((cur.DiskReadBytes + cur.DiskWriteBytes) - (prev.DiskReadBytes + prev.DiskWriteBytes)) / 1024)
		c.net[t.Name].Append(((cur.NetRxBytes + cur.NetTxBytes) - (prev.NetRxBytes + prev.NetTxBytes)) / 1024)
		if c.KeepFullCatalog {
			for _, m := range c.catalog {
				c.full[t.Name+"/"+m.Name].Append(m.Eval(&prev, &cur, dt))
			}
		}
		c.prev[t.Name] = cur
	}
	c.Samples++
	for _, fn := range c.onSample {
		fn(now)
	}
}

// CPU returns the per-2s CPU cycle demand series for target name.
func (c *Collector) CPU(name string) *timeseries.Series { return c.cpu[name] }

// Mem returns the used-memory series (MB) for target name.
func (c *Collector) Mem(name string) *timeseries.Series { return c.mem[name] }

// Disk returns the per-2s disk read+write series (KB) for target name.
func (c *Collector) Disk(name string) *timeseries.Series { return c.disk[name] }

// Net returns the per-2s network rx+tx series (KB) for target name.
func (c *Collector) Net(name string) *timeseries.Series { return c.net[name] }

// Metric returns the full-catalog series target/metric, or an error when
// the collector was not recording the full catalog.
func (c *Collector) Metric(target, metric string) (*timeseries.Series, error) {
	if !c.KeepFullCatalog {
		return nil, fmt.Errorf("sysstat: full catalog not recorded")
	}
	s, ok := c.full[target+"/"+metric]
	if !ok {
		return nil, fmt.Errorf("sysstat: no series %q for target %q", metric, target)
	}
	return s, nil
}

// MetricNames lists the catalog metric names in catalog order.
func (c *Collector) MetricNames() []string {
	out := make([]string, len(c.catalog))
	for i, m := range c.catalog {
		out[i] = m.Name
	}
	return out
}

// TargetNames lists monitored targets in registration order.
func (c *Collector) TargetNames() []string {
	out := make([]string, len(c.targets))
	for i, t := range c.targets {
		out[i] = t.Name
	}
	return out
}

// GroupCounts tallies catalog metrics per sar group, sorted by group
// name — used by Table 1 and the catalog tests.
func GroupCounts() []struct {
	Group string
	Count int
} {
	counts := make(map[string]int)
	for _, m := range Catalog() {
		counts[m.Group]++
	}
	groups := make([]string, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	out := make([]struct {
		Group string
		Count int
	}, 0, len(groups))
	for _, g := range groups {
		out = append(out, struct {
			Group string
			Count int
		}{g, counts[g]})
	}
	return out
}
