package sysstat

import (
	"fmt"
	"io"
	"strings"

	"vwchar/internal/xen"
)

// Table1Row is one line of the reproduced Table 1: a representative
// sample of the 518 profiled metrics, with source and description, as in
// the paper's "sample of performance metrics used to characterize
// workload of the RUBiS benchmark system".
type Table1Row struct {
	Source      string // "sysstat (hypervisor)", "sysstat (VM)", "perf (hypervisor)"
	Name        string
	Unit        string
	Description string
}

// table1SysstatPicks selects the representative sysstat metrics shown in
// Table 1 (the full catalog has 182 entries per instance).
var table1SysstatPicks = []string{
	"%user [all]", "%system [all]", "%iowait [all]", "%steal [all]", "%idle [all]",
	"proc/s", "cswch/s", "intr/s [sum]",
	"pgpgin/s", "pgpgout/s", "fault/s",
	"tps", "bread/s", "bwrtn/s",
	"kbmemused", "%memused", "kbbuffers", "kbcached",
	"runq-sz", "ldavg-1",
	"rxkB/s [eth0]", "txkB/s [eth0]", "rxpck/s [eth0]", "txpck/s [eth0]",
	"totsck", "tcpsck",
	"MHz",
}

// table1PerfPicks selects the representative perf counters shown in
// Table 1 (the full set has 154).
var table1PerfPicks = []string{
	"cycles", "instructions", "branches", "branch-misses",
	"cache-references", "cache-misses",
	"dTLB-load-misses", "iTLB-load-misses",
	"context-switches", "page-faults",
	"xen-hypercalls", "xen-grant-table-ops", "xen-steal-time-ms",
}

// Table1 assembles the reproduced Table 1 rows.
func Table1() []Table1Row {
	byName := make(map[string]Metric)
	for _, m := range Catalog() {
		byName[m.Name] = m
	}
	var rows []Table1Row
	for _, src := range []string{"sysstat (hypervisor)", "sysstat (VM)"} {
		for _, name := range table1SysstatPicks {
			m, ok := byName[name]
			if !ok {
				panic(fmt.Sprintf("sysstat: Table 1 references unknown metric %q", name))
			}
			rows = append(rows, Table1Row{Source: src, Name: m.Name, Unit: m.Unit, Description: m.Description})
		}
	}
	perfByName := make(map[string]string)
	for _, c := range perfCounterCatalog() {
		perfByName[c.Name] = c.Description
	}
	for _, name := range table1PerfPicks {
		desc, ok := perfByName[name]
		if !ok {
			panic(fmt.Sprintf("sysstat: Table 1 references unknown perf counter %q", name))
		}
		rows = append(rows, Table1Row{Source: "perf (hypervisor)", Name: name, Unit: "count", Description: desc})
	}
	return rows
}

// perfCounterCatalog obtains the perf counter identities from a throwaway
// hypervisor, so Table 1 stays in sync with the real counter set.
func perfCounterCatalog() []xen.PerfCounter {
	return xen.CatalogOnly()
}

// TotalProfiledMetrics is the paper's metric inventory: 182 sysstat
// metrics in the hypervisor, 182 in the VMs, 154 perf counters.
func TotalProfiledMetrics() int {
	return CatalogSize + CatalogSize + xen.PerfCounterCount
}

// WriteTable1 renders Table 1 as aligned text.
func WriteTable1(w io.Writer) error {
	rows := Table1()
	if _, err := fmt.Fprintf(w,
		"Table 1. A sample of the %d performance metrics used to characterize workload\n"+
			"(182 sysstat metrics in the hypervisor + 182 in VMs + 154 perf counters).\n\n",
		TotalProfiledMetrics()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-22s %-22s %-10s %s\n", "SOURCE", "METRIC", "UNIT", "DESCRIPTION"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 100)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-22s %-22s %-10s %s\n", r.Source, r.Name, r.Unit, r.Description); err != nil {
			return err
		}
	}
	return nil
}
