package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := Duration(3 * time.Millisecond); got != 3*Millisecond {
		t.Fatalf("Duration = %v", got)
	}
	if got := (2 * Second).Sec(); got != 2.0 {
		t.Fatalf("Sec = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Time
	for _, at := range []Time{5 * Second, Second, 3 * Second, 2 * Second} {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	k.Run(MaxTime)
	want := []Time{Second, 2 * Second, 3 * Second, 5 * Second}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Second, func() { order = append(order, i) })
	}
	k.Run(MaxTime)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v not FIFO", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Second, func() {})
	k.Run(MaxTime)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(0, func() {})
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(Second, func() { fired = true })
	if !e.Pending() {
		t.Fatal("Pending() = false for a queued event")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	k.Run(5 * Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("Pending() = true after the run drained")
	}
	// Cancelling a stale handle must not disturb whatever event now
	// occupies the recycled slot.
	e.Cancel()
	refired := false
	k.At(10*Second, func() { refired = true })
	e.Cancel()
	k.Run(20 * Second)
	if !refired {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

func TestRunUntilStopsBeforeLaterEvents(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(Second, func() { count++ })
	k.At(10*Second, func() { count++ })
	k.Run(5 * Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if k.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s (clock advances to until)", k.Now())
	}
	k.Run(MaxTime)
	if count != 2 {
		t.Fatalf("count = %d after draining, want 2", count)
	}
}

func TestStopHaltsLoop(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(Second, func() {
		count++
		k.Stop()
	})
	k.At(2*Second, func() { count++ })
	k.Run(MaxTime)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt)", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.At(Second, func() {
		hits = append(hits, k.Now())
		k.After(Second, func() { hits = append(hits, k.Now()) })
	})
	k.Run(MaxTime)
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestStep(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(Second, func() { count++ })
	k.At(2*Second, func() { count++ })
	if !k.Step() || count != 1 {
		t.Fatalf("first Step: count=%d", count)
	}
	if !k.Step() || count != 2 {
		t.Fatalf("second Step: count=%d", count)
	}
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var fires []Time
	tk := k.Every(2*Second, 2*Second, func(at Time) {
		fires = append(fires, at)
		if len(fires) == 5 {
			// Stop from within the callback must prevent future fires.
			k.Stop()
		}
	})
	k.Run(20 * Second)
	if len(fires) != 5 {
		t.Fatalf("fired %d times, want 5", len(fires))
	}
	for i, at := range fires {
		if want := Time(i+1) * 2 * Second; at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop()
	k.Run(30 * Second)
	if len(fires) != 5 {
		t.Fatalf("ticker fired after Stop: %d", len(fires))
	}
}

func TestTickerStopPreventsRearm(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = k.Every(Second, Second, func(Time) {
		count++
		tk.Stop()
	})
	k.Run(10 * Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestProcessedCountsOnlyExecuted(t *testing.T) {
	k := NewKernel()
	e := k.At(Second, func() {})
	k.At(2*Second, func() {})
	e.Cancel()
	k.Run(MaxTime)
	if k.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1", k.Processed())
	}
}

// Property: for any set of random timestamps, execution order is the
// sorted order of the timestamps.
func TestPropertyExecutionOrderSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := NewKernel()
		var got []Time
		want := make([]Time, 0, len(raw))
		for _, r := range raw {
			at := Time(r)
			want = append(want, at)
			k.At(at, func() { got = append(got, at) })
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		k.Run(MaxTime)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards during any run.
func TestPropertyMonotonicClock(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	k := NewKernel()
	last := Time(-1)
	var schedule func()
	schedule = func() {
		now := k.Now()
		if now < last {
			t.Fatalf("clock went backwards: %v < %v", now, last)
		}
		last = now
		if k.Processed() < 5000 {
			k.After(Time(r.Intn(1000)), schedule)
			if r.Intn(3) == 0 {
				k.After(Time(r.Intn(1000)), schedule)
			}
		}
	}
	k.At(0, schedule)
	k.Run(MaxTime)
	if k.Processed() < 5000 {
		t.Fatalf("ran only %d events", k.Processed())
	}
}
