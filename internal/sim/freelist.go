package sim

// FreeList recycles pointers to T for model-layer state that is pooled
// per scheduling site (CPU jobs, web requests, DB calls, split-driver
// forwards). Put zeroes the struct before parking it, so stale
// callbacks and context arguments can never leak through the pool, and
// callers re-set every field they need after Get. Steady state neither
// Get nor Put allocates.
type FreeList[T any] struct {
	items []*T
}

// Get returns a zeroed *T, recycled when one is parked.
func (f *FreeList[T]) Get() *T {
	if n := len(f.items); n > 0 {
		x := f.items[n-1]
		f.items[n-1] = nil
		f.items = f.items[:n-1]
		return x
	}
	return new(T)
}

// Put zeroes x and parks it for reuse. x must not be used afterwards.
func (f *FreeList[T]) Put(x *T) {
	var zero T
	*x = zero
	f.items = append(f.items, x)
}

// PutReset parks x after the caller has already reset its state.
// Unlike Put it does not zero x, so a caller that owns amortized
// buffers inside T (slices trimmed to length zero) can keep their
// capacity across recycles. The caller carries Put's obligation: every
// pointer and callback field must be cleared before parking.
func (f *FreeList[T]) PutReset(x *T) {
	f.items = append(f.items, x)
}
