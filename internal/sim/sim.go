// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is virtual and measured in nanoseconds from the start of the
// simulation. Events are executed in timestamp order; ties are broken by
// insertion order so that a simulation with a fixed seed is fully
// reproducible across runs and platforms.
//
// The kernel is intentionally single-threaded: determinism matters more
// than parallelism for workload characterization, where an experiment must
// regenerate the exact same trace for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Seconds converts a floating-point number of seconds to a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Duration converts a time.Duration to a virtual time delta.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Sec reports the time as a floating-point number of seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }

// Event is a scheduled callback.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	pos  int // heap index, -1 when not queued
	dead bool
}

// Time reports when the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].pos = i
	q[j].pos = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.pos = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.pos = -1
	*q = old[:n-1]
	return e
}

// Kernel is the simulation event loop.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// Processed counts events executed so far (cancelled events excluded).
	processed uint64
}

// NewKernel returns a kernel at virtual time zero with an empty queue.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed reports how many events have been executed.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream statistic.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn, pos: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Stop halts the run loop after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in order until the queue is empty, Stop is called,
// or the next event is later than until. The clock is left at the time of
// the last executed event, or advanced to until when the queue drains
// early, so that samplers observing Now see a full window.
func (k *Kernel) Run(until Time) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.dead {
			continue
		}
		k.now = next.at
		k.processed++
		next.fn()
	}
	if k.now < until {
		k.now = until
	}
}

// Step executes exactly one non-cancelled event if one exists, returning
// true when an event ran.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			continue
		}
		k.now = e.at
		k.processed++
		e.fn()
		return true
	}
	return false
}

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// Ticker is stopped. fn receives the firing time.
func (k *Kernel) Every(start, period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	tk := &Ticker{k: k, period: period, fn: fn}
	tk.ev = k.At(start, tk.fire)
	return tk
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	k       *Kernel
	period  Time
	fn      func(Time)
	ev      *Event
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	now := t.k.Now()
	t.fn(now)
	if !t.stopped {
		t.ev = t.k.At(now+t.period, t.fire)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
