// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is virtual and measured in nanoseconds from the start of the
// simulation. Events are executed in timestamp order; ties are broken by
// insertion order so that a simulation with a fixed seed is fully
// reproducible across runs and platforms.
//
// The kernel is intentionally single-threaded: determinism matters more
// than parallelism for workload characterization, where an experiment must
// regenerate the exact same trace for a given seed.
//
// # Allocation discipline
//
// Steady-state scheduling performs zero heap allocations. Event structs
// live in a kernel-owned arena and are recycled through a free list; the
// priority queue is a hand-rolled 4-ary min-heap whose (at, seq) keys are
// stored inline in the heap entries, so scheduling never boxes through an
// interface and comparisons never chase an event pointer. Callers that
// schedule in a hot loop should prefer the closure-free AtCall/AfterCall
// path, which passes a callback plus a context argument instead of
// allocating a capturing closure per event.
//
// # Event handle lifetime
//
// At, After, AtCall, and AfterCall return an Event handle (a value, not a
// pointer). The handle stays valid until the event fires, is cancelled and
// collected, or is removed; after that the kernel recycles the slot and
// bumps its generation counter, so a retained stale handle becomes inert:
// Cancel and Reschedule on it are no-ops, Pending reports false. A handle
// can therefore be kept arbitrarily long without corrupting the pool or
// affecting whatever event later reuses the slot — the same handle/pin
// discipline the storage engine's buffer pool uses for frames.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Seconds converts a floating-point number of seconds to a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Duration converts a time.Duration to a virtual time delta.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Sec reports the time as a floating-point number of seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }

// Callback is a closure-free event callback: the kernel passes back the
// arg given at scheduling time. Passing a pointer-typed arg does not
// allocate, which is what makes AtCall/AfterCall allocation-free where a
// capturing closure passed to At/After would not be.
type Callback func(arg any)

// event is one pooled event slot in the kernel arena. The (at, seq)
// ordering key is duplicated into the heap entry so that comparisons
// stay inside the heap slice; the slot keeps at for Event.Time and
// Reschedule.
type event struct {
	at   Time
	fn   func()
	call Callback
	arg  any
	pos  int32 // heap index, -1 when not queued (firing or free)
	gen  uint32
	dead bool
}

// heapEntry is one node of the 4-ary min-heap: the packed (at, seq)
// comparison key plus the arena index it orders.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Event is a handle to a scheduled callback. The zero value refers to no
// event; all methods on it are inert. Handles are values: copy them
// freely, compare against the zero value to test "no event".
type Event struct {
	k   *Kernel
	idx int32
	gen uint32
}

// Time reports when the event is scheduled to fire, or -1 when the
// handle is stale (the event already fired, was cancelled and collected,
// or was removed).
func (e Event) Time() Time {
	k := e.k
	if k == nil {
		return -1
	}
	ev := &k.arena[e.idx]
	if ev.gen != e.gen {
		return -1
	}
	return ev.at
}

// Pending reports whether the handle still refers to a queued live
// event (not yet fired, not cancelled).
func (e Event) Pending() bool {
	k := e.k
	if k == nil {
		return false
	}
	ev := &k.arena[e.idx]
	return ev.gen == e.gen && ev.pos >= 0 && !ev.dead
}

// Cancel prevents a pending event from firing. Cancellation is lazy: the
// slot stays queued until the run loop reaches it or the kernel compacts
// the queue, but the callback will not run. Cancelling a stale handle —
// the event fired or was already collected — is a no-op, even if the
// slot has since been recycled for an unrelated event.
func (e Event) Cancel() {
	k := e.k
	if k == nil {
		return
	}
	ev := &k.arena[e.idx]
	if ev.gen != e.gen || ev.dead {
		return
	}
	ev.dead = true
	if ev.pos >= 0 {
		k.dead++
		if k.dead > compactMinDead && k.dead*2 > len(k.heap) {
			k.compact()
		}
	}
}

// Reschedule moves a still-pending event to absolute time t, reusing its
// pooled slot (a cancelled-but-uncollected event is revived). It returns
// false when the handle is stale or the event is mid-flight, in which
// case the caller must schedule a fresh event. The moved event is
// ordered as if newly scheduled: it fires after anything else already
// scheduled at t.
func (e Event) Reschedule(t Time) bool {
	k := e.k
	if k == nil {
		return false
	}
	ev := &k.arena[e.idx]
	if ev.gen != e.gen || ev.pos < 0 {
		return false
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling at %v before now %v", t, k.now))
	}
	if ev.dead {
		ev.dead = false
		k.dead--
	}
	ev.at = t
	i := ev.pos
	k.heap[i].at = t
	k.heap[i].seq = k.seq
	k.seq++
	k.heapFix(i)
	return true
}

// remove eagerly takes a pending event out of the queue and returns its
// slot to the free list, reporting whether it did. A mid-flight event
// (currently firing) is marked dead instead so the run loop collects it.
func (e Event) remove() bool {
	k := e.k
	if k == nil {
		return false
	}
	ev := &k.arena[e.idx]
	if ev.gen != e.gen {
		return false
	}
	if ev.pos < 0 {
		ev.dead = true
		return false
	}
	if ev.dead {
		k.dead--
	}
	k.heapRemove(ev.pos)
	k.release(e.idx)
	return true
}

// compactMinDead is the queue-size floor below which lazy-cancelled
// events are not worth compacting away.
const compactMinDead = 32

// Kernel is the simulation event loop.
type Kernel struct {
	now   Time
	arena []event
	heap  []heapEntry
	free  []int32 // arena slots ready for reuse
	seq   uint64
	// dead counts lazily-cancelled events still queued.
	dead int
	// firing is the arena index of the event whose callback is running,
	// -1 otherwise; requeueFiring (the Ticker re-arm) targets it.
	firing  int32
	stopped bool
	// processed counts events executed so far (cancelled events excluded).
	processed uint64
}

// NewKernel returns a kernel at virtual time zero with an empty queue.
func NewKernel() *Kernel { return &Kernel{firing: -1} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of live queued events; lazily-cancelled
// events awaiting collection are not counted.
func (k *Kernel) Pending() int { return len(k.heap) - k.dead }

// Processed reports how many events have been executed.
func (k *Kernel) Processed() uint64 { return k.processed }

// schedule grabs a pooled slot, fills it, and queues it.
func (k *Kernel) schedule(t Time, fn func(), call Callback, arg any) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.arena = append(k.arena, event{gen: 1})
		idx = int32(len(k.arena) - 1)
	}
	e := &k.arena[idx]
	e.at = t
	e.fn = fn
	e.call = call
	e.arg = arg
	e.dead = false
	k.heapPush(heapEntry{at: t, seq: k.seq, idx: idx})
	k.seq++
	return Event{k: k, idx: idx, gen: e.gen}
}

// release returns an arena slot to the free list, invalidating every
// outstanding handle to it.
func (k *Kernel) release(idx int32) {
	e := &k.arena[idx]
	e.gen++
	e.fn = nil
	e.call = nil
	e.arg = nil
	e.dead = false
	e.pos = -1
	k.free = append(k.free, idx)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream statistic.
func (k *Kernel) At(t Time, fn func()) Event {
	return k.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.schedule(k.now+d, fn, nil, nil)
}

// AtCall schedules fn(arg) at absolute virtual time t without allocating
// a closure: hot schedulers pass a package-level function plus the model
// object it operates on.
func (k *Kernel) AtCall(t Time, fn Callback, arg any) Event {
	return k.schedule(t, nil, fn, arg)
}

// AfterCall schedules fn(arg) to run d after the current time.
func (k *Kernel) AfterCall(d Time, fn Callback, arg any) Event {
	if d < 0 {
		d = 0
	}
	return k.schedule(k.now+d, nil, fn, arg)
}

// Stop halts the run loop after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in order until the queue is empty, Stop is called,
// or the next event is later than until. The clock is left at the time of
// the last executed event, or advanced to until when the queue drains
// early, so that samplers observing Now see a full window.
func (k *Kernel) Run(until Time) {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		top := k.heap[0]
		if top.at > until {
			break
		}
		idx := k.heapPopRoot()
		e := &k.arena[idx]
		if e.dead {
			k.dead--
			k.release(idx)
			continue
		}
		k.now = top.at
		k.processed++
		k.fire(idx, e)
	}
	if k.now < until {
		k.now = until
	}
}

// Step executes exactly one non-cancelled event if one exists, returning
// true when an event ran.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		top := k.heap[0]
		idx := k.heapPopRoot()
		e := &k.arena[idx]
		if e.dead {
			k.dead--
			k.release(idx)
			continue
		}
		k.now = top.at
		k.processed++
		k.fire(idx, e)
		return true
	}
	return false
}

// fire runs a dequeued event's callback and collects the slot, unless
// the callback requeued it in place (the Ticker re-arm path). The
// callback fields are copied out first: scheduling inside the callback
// may grow the arena and move the slot.
func (k *Kernel) fire(idx int32, e *event) {
	fn, call, arg := e.fn, e.call, e.arg
	prev := k.firing
	k.firing = idx
	if call != nil {
		call(arg)
	} else {
		fn()
	}
	k.firing = prev
	if k.arena[idx].pos < 0 {
		k.release(idx)
	}
}

// requeueFiring re-queues the currently firing event at time t, reusing
// its arena slot and keeping its handles valid. Only meaningful from
// inside an event callback.
func (k *Kernel) requeueFiring(t Time) {
	idx := k.firing
	if idx < 0 {
		panic("sim: requeue outside an event callback")
	}
	e := &k.arena[idx]
	e.at = t
	k.heapPush(heapEntry{at: t, seq: k.seq, idx: idx})
	k.seq++
}

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// Ticker is stopped. fn receives the firing time. Each period the ticker
// re-arms by mutating its pooled event in place rather than scheduling a
// fresh one, so a steady ticker performs zero allocations.
func (k *Kernel) Every(start, period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	tk := &Ticker{k: k, period: period, fn: fn}
	tk.ev = k.AtCall(start, tickerFire, tk)
	return tk
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	k       *Kernel
	period  Time
	fn      func(Time)
	ev      Event
	stopped bool
}

func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	now := t.k.now
	t.fn(now)
	if !t.stopped {
		t.k.requeueFiring(now + t.period)
	}
}

// Stop cancels future firings and immediately returns the ticker's
// pooled event to the kernel free list (it does not linger in the queue
// until its timestamp). Stopping an already-stopped ticker is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.ev.remove()
	t.ev = Event{}
}

// --- intrusive 4-ary min-heap -----------------------------------------
//
// Entries carry their (at, seq) key inline so comparisons never touch
// the arena; the arena's pos field is the back-pointer that makes
// removal and rescheduling O(log n). A 4-ary layout halves the tree
// height of a binary heap: pops do more comparisons per level but far
// fewer cache misses, which is the trade that pays off at the queue
// sizes the tier models sustain.

func (k *Kernel) heapPush(en heapEntry) {
	i := int32(len(k.heap))
	k.heap = append(k.heap, en)
	k.arena[en.idx].pos = i
	k.siftUp(i)
}

// heapPopRoot removes and returns the arena index of the minimum entry.
func (k *Kernel) heapPopRoot() int32 {
	h := k.heap
	idx := h[0].idx
	k.arena[idx].pos = -1
	n := len(h) - 1
	last := h[n]
	k.heap = h[:n]
	if n > 0 {
		k.heap[0] = last
		k.arena[last.idx].pos = 0
		k.siftDown(0)
	}
	return idx
}

// heapRemove deletes the entry at heap position i.
func (k *Kernel) heapRemove(i int32) {
	h := k.heap
	k.arena[h[i].idx].pos = -1
	n := int32(len(h)) - 1
	last := h[n]
	k.heap = h[:n]
	if i < n {
		k.heap[i] = last
		k.arena[last.idx].pos = i
		k.heapFix(i)
	}
}

// heapFix restores heap order after the key at position i changed.
func (k *Kernel) heapFix(i int32) {
	idx := k.heap[i].idx
	k.siftUp(i)
	if k.arena[idx].pos == i {
		k.siftDown(i)
	}
}

func (k *Kernel) siftUp(i int32) {
	h := k.heap
	en := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(en, h[p]) {
			break
		}
		h[i] = h[p]
		k.arena[h[i].idx].pos = i
		i = p
	}
	h[i] = en
	k.arena[en.idx].pos = i
}

func (k *Kernel) siftDown(i int32) {
	h := k.heap
	n := int32(len(h))
	en := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], en) {
			break
		}
		h[i] = h[m]
		k.arena[h[i].idx].pos = i
		i = m
	}
	h[i] = en
	k.arena[en.idx].pos = i
}

// compact rebuilds the heap without its lazily-cancelled entries,
// releasing their slots. Triggered from Cancel once dead events exceed
// half the queue, so the queue never carries more garbage than live
// work; amortized cost per cancelled event is constant.
func (k *Kernel) compact() {
	h := k.heap
	w := int32(0)
	for _, en := range h {
		e := &k.arena[en.idx]
		if e.dead {
			e.pos = -1
			k.release(en.idx)
			continue
		}
		h[w] = en
		e.pos = w
		w++
	}
	k.heap = h[:w]
	for i := (w - 2) >> 2; i >= 0; i-- {
		k.siftDown(i)
	}
	k.dead = 0
}
