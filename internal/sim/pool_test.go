package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// nop is the no-allocation callback used by the guard tests.
func nop(any) {}

// TestStopReleasesTickerEventImmediately pins the satellite fix: Stop
// must return the ticker's pooled event to the free list right away
// instead of leaving a cancelled slot queued until its timestamp.
func TestStopReleasesTickerEventImmediately(t *testing.T) {
	k := NewKernel()
	tk := k.Every(Minute, Minute, func(Time) {})
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	tk.Stop()
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0 (event released eagerly)", k.Pending())
	}
	if len(k.heap) != 0 {
		t.Fatalf("heap still holds %d entries after Stop", len(k.heap))
	}
	tk.Stop() // idempotent
	k.Run(10 * Minute)
	if k.Processed() != 0 {
		t.Fatalf("stopped ticker fired %d times", k.Processed())
	}
}

// TestPendingCountsLiveEventsOnly pins the documented Pending contract:
// lazily-cancelled events awaiting collection are not counted.
func TestPendingCountsLiveEventsOnly(t *testing.T) {
	k := NewKernel()
	a := k.At(Second, func() {})
	k.At(2*Second, func() {})
	a.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (cancelled event excluded)", k.Pending())
	}
	k.Run(MaxTime)
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", k.Pending())
	}
}

func TestReschedule(t *testing.T) {
	k := NewKernel()
	var order []string
	e := k.At(Second, func() { order = append(order, "moved") })
	k.At(2*Second, func() { order = append(order, "fixed") })
	if !e.Reschedule(3 * Second) {
		t.Fatal("Reschedule on a pending event returned false")
	}
	if e.Time() != 3*Second {
		t.Fatalf("Time = %v after Reschedule", e.Time())
	}
	k.Run(MaxTime)
	if len(order) != 2 || order[0] != "fixed" || order[1] != "moved" {
		t.Fatalf("order = %v", order)
	}
	if e.Reschedule(5 * Second) {
		t.Fatal("Reschedule on a fired event returned true")
	}
}

// TestRescheduleRevivesCancelledEvent: moving a cancelled-but-queued
// event revives it, matching the CPU model's cancel/re-arm cycle.
func TestRescheduleRevivesCancelledEvent(t *testing.T) {
	k := NewKernel()
	fired := 0
	e := k.At(Second, func() { fired++ })
	e.Cancel()
	if !e.Reschedule(2 * Second) {
		t.Fatal("Reschedule on a cancelled queued event returned false")
	}
	k.Run(MaxTime)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (revived event)", fired)
	}
}

// TestCompactionReleasesCancelledEvents drives the lazy-cancel path past
// the compaction threshold and checks both bookkeeping and ordering.
func TestCompactionReleasesCancelledEvents(t *testing.T) {
	k := NewKernel()
	var events []Event
	var want []Time
	for i := 0; i < 500; i++ {
		at := Time(i) * Millisecond
		events = append(events, k.At(at, func() {}))
	}
	// Cancel two of every three: well past the half-dead threshold.
	for i, e := range events {
		if i%3 != 0 {
			e.Cancel()
		} else {
			want = append(want, Time(i)*Millisecond)
		}
	}
	if k.Pending() != len(want) {
		t.Fatalf("Pending = %d, want %d", k.Pending(), len(want))
	}
	if len(k.heap) >= 500 {
		t.Fatalf("compaction never ran: heap holds %d entries", len(k.heap))
	}
	var got []Time
	for range want {
		if !k.Step() {
			break
		}
		got = append(got, k.Now())
	}
	k.Run(MaxTime)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("survivor %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

// TestPropertyHeapMatchesOracle runs the intrusive heap against a
// reference sort-by-(at, seq) oracle under random schedule, cancel,
// reschedule, and ticker-stop interleavings.
func TestPropertyHeapMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		k := NewKernel()
		type spec struct {
			at    Time
			order int // logical insertion order (reschedule refreshes it)
			live  bool
		}
		var specs []spec
		var events []Event
		var fired []int
		order := 0
		horizon := Time(1 + r.Intn(2000))
		for op := 0; op < 120; op++ {
			switch c := r.Intn(10); {
			case c <= 5 || len(specs) == 0: // schedule
				at := Time(r.Intn(int(horizon)))
				id := len(specs)
				specs = append(specs, spec{at: at, order: order, live: true})
				order++
				events = append(events, k.At(at, func() { fired = append(fired, id) }))
			case c <= 7: // cancel a random event
				i := r.Intn(len(specs))
				specs[i].live = false
				events[i].Cancel()
			default: // reschedule a random event
				i := r.Intn(len(specs))
				at := Time(r.Intn(int(horizon)))
				if events[i].Reschedule(at) {
					specs[i] = spec{at: at, order: order, live: true}
					order++
				}
			}
		}
		// A few tickers with deterministic stop-after-n-fires behaviour,
		// validated separately from the oracle ordering.
		tickerFires := make([]int, 3)
		tickerWant := make([]int, 3)
		for ti := 0; ti < 3; ti++ {
			ti := ti
			period := Time(1 + r.Intn(200))
			stopAfter := r.Intn(4)
			tickerWant[ti] = stopAfter
			var tk *Ticker
			tk = k.Every(period, period, func(Time) {
				tickerFires[ti]++
				if tickerFires[ti] >= stopAfter {
					tk.Stop()
				}
			})
			if stopAfter == 0 {
				tk.Stop()
				tickerWant[ti] = 0
			}
		}
		k.Run(MaxTime)

		var want []int
		idx := make([]int, 0, len(specs))
		for i, s := range specs {
			if s.live {
				idx = append(idx, i)
			}
		}
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := specs[idx[a]], specs[idx[b]]
			if sa.at != sb.at {
				return sa.at < sb.at
			}
			return sa.order < sb.order
		})
		want = idx
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, oracle wants %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired[%d] = ev%d, oracle wants ev%d", trial, i, fired[i], want[i])
			}
		}
		for ti := range tickerFires {
			if tickerWant[ti] > 0 && tickerFires[ti] != tickerWant[ti] {
				t.Fatalf("trial %d: ticker %d fired %d, want %d", trial, ti, tickerFires[ti], tickerWant[ti])
			}
		}
	}
}

// TestSteadyStateSchedulingIsAllocationFree is the regression guard for
// the kernel's headline property: once the arena is warm, After+Run and
// the closure-free AfterCall path allocate nothing.
func TestSteadyStateSchedulingIsAllocationFree(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 256; i++ {
		k.AfterCall(Time(i)*Microsecond, nop, nil)
	}
	k.Run(k.Now() + Millisecond)

	if allocs := testing.AllocsPerRun(1000, func() {
		k.AfterCall(Microsecond, nop, nil)
		k.Run(k.Now() + 2*Microsecond)
	}); allocs != 0 {
		t.Fatalf("steady-state AfterCall+Run allocates %.1f/op, want 0", allocs)
	}

	noop := func() {}
	if allocs := testing.AllocsPerRun(1000, func() {
		k.After(Microsecond, noop)
		k.Run(k.Now() + 2*Microsecond)
	}); allocs != 0 {
		t.Fatalf("steady-state After+Run allocates %.1f/op, want 0", allocs)
	}
}

// TestTickerReschedulingIsAllocationFree pins the in-place ticker
// re-arm: a warm ticker must sustain firing with zero allocations.
func TestTickerReschedulingIsAllocationFree(t *testing.T) {
	k := NewKernel()
	fires := 0
	k.Every(Microsecond, Microsecond, func(Time) { fires++ })
	k.Run(10 * Microsecond)
	if allocs := testing.AllocsPerRun(1000, func() {
		k.Run(k.Now() + Microsecond)
	}); allocs != 0 {
		t.Fatalf("ticker rescheduling allocates %.1f/op, want 0", allocs)
	}
	if fires == 0 {
		t.Fatal("ticker never fired")
	}
}
