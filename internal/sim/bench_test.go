package sim

import "testing"

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%1000)*Microsecond, func() {})
		if i%1024 == 0 {
			k.Run(k.Now() + Millisecond)
		}
	}
	k.Run(MaxTime)
}

func BenchmarkKernelTickerHeavy(b *testing.B) {
	// The hypervisor's quantum ticker dominates event counts in real
	// runs; this measures the kernel's sustained event throughput.
	k := NewKernel()
	count := 0
	k.Every(Millisecond, Millisecond, func(Time) { count++ })
	b.ResetTimer()
	k.Run(Time(b.N) * Millisecond)
	if count < b.N-1 {
		b.Fatalf("ticker fired %d of %d", count, b.N)
	}
}
