package sim

import "testing"

// benchDepth is the standing queue depth the schedule/drain benchmarks
// operate at: deep enough that heap sifts traverse several levels, and
// fixed so every iteration does the same work regardless of b.N (the
// old combined benchmark mixed scheduling and draining in an
// i%1024-dependent pattern, which made ns/op swing across -benchtime
// values).
const benchDepth = 1024

// BenchmarkKernelSchedule is the schedule-heavy half: each iteration
// pushes one event into a standing queue of benchDepth and pops one via
// Step, so the per-iteration work unit is exactly one push + one pop at
// constant depth.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	for i := 0; i < benchDepth; i++ {
		k.AfterCall(Time(i%997)*Microsecond, nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AfterCall(Time(i%997)*Microsecond, nop, nil)
		k.Step()
	}
}

// BenchmarkKernelDrain is the drain-heavy half: batches of events are
// scheduled with the timer stopped, then Run drains them; only the
// drain is timed.
func BenchmarkKernelDrain(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for scheduled := 0; scheduled < b.N; {
		n := 1 << 14
		if n > b.N-scheduled {
			n = b.N - scheduled
		}
		b.StopTimer()
		for i := 0; i < n; i++ {
			k.AfterCall(Time(i%997)*Microsecond, nop, nil)
		}
		b.StartTimer()
		k.Run(k.Now() + Second)
		scheduled += n
	}
}

func BenchmarkKernelTickerHeavy(b *testing.B) {
	// The hypervisor's quantum ticker dominates event counts in real
	// runs; this measures the kernel's sustained event throughput. The
	// CI bench-smoke job fails if this reports nonzero allocs/op.
	k := NewKernel()
	count := 0
	k.Every(Millisecond, Millisecond, func(Time) { count++ })
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(Time(b.N) * Millisecond)
	if count < b.N-1 {
		b.Fatalf("ticker fired %d of %d", count, b.N)
	}
}

// BenchmarkKernelCancelReschedule exercises the CPU model's dominant
// pattern: a completion event moved in place on every submit.
func BenchmarkKernelCancelReschedule(b *testing.B) {
	k := NewKernel()
	e := k.AfterCall(Millisecond, nop, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Reschedule(k.Now() + Millisecond + Time(i%64)*Microsecond) {
			b.Fatal("completion event went stale")
		}
	}
}
