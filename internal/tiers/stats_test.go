package tiers

import (
	"math"
	"sort"
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/telemetry"
)

// oldReservoirQuantile replicates the computation driverStats performed
// before the telemetry refactor: copy the reservoir, sort, index
// floor(q*(n-1)) with no interpolation.
func oldReservoirQuantile(respTimes []float64, q float64) float64 {
	if len(respTimes) == 0 {
		return 0
	}
	sorted := append([]float64(nil), respTimes...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestDriverStatsQuantileMatchesOldExact pins the golden-bytes
// contract behind the reservoir replacement: below the exact-spill cap
// (which covers every sweep the golden hash pins), ResponseTimeQuantile
// and MeanResponseTime are bit-identical to the old copy-sort-index
// reservoir computation.
func TestDriverStatsQuantileMatchesOldExact(t *testing.T) {
	var s driverStats
	s.initStats(false)
	r := rng.NewSource(17).Stream("rt")
	var old []float64
	sum := 0.0
	for i := 0; i < 4096; i++ {
		rt := r.LogNormal(math.Log(0.015), 1.1)
		s.observeSent()
		s.observe(rt, false, -1)
		old = append(old, rt)
		sum += rt
	}
	for _, q := range []float64{0, 0.05, 0.5, 0.95, 0.99, 1} {
		if got, want := s.ResponseTimeQuantile(q), oldReservoirQuantile(old, q); got != want {
			t.Fatalf("q%.2f: %v != old exact %v", q, got, want)
		}
	}
	if got, want := s.MeanResponseTime(), sum/float64(len(old)); got != want {
		t.Fatalf("mean %v != old exact %v", got, want)
	}
}

// TestDriverStatsQuantileBeyondCap pins the over-cap behaviour: the
// run-level quantile comes from the merged histogram, within the
// histogram's stated relative-error bound of the exact quantile over
// ALL observations (the old reservoir silently ignored everything
// after its 200k-sample cap).
func TestDriverStatsQuantileBeyondCap(t *testing.T) {
	var s driverStats
	s.initStats(true)
	r := rng.NewSource(23).Stream("rt")
	n := telemetry.DefaultExactCap + 10000
	all := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rt := r.LogNormal(math.Log(0.02), 0.9)
		s.observeSent()
		s.observe(rt, false, -1)
		all = append(all, rt)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, want := s.ResponseTimeQuantile(q), oldReservoirQuantile(all, q)
		if relErr := math.Abs(got/want - 1); relErr > telemetry.RelativeErrorBound {
			t.Fatalf("q%.2f: %v vs exact %v (rel err %v > %v)",
				q, got, want, relErr, telemetry.RelativeErrorBound)
		}
	}
	// Memory regression: the spill stayed capped while the run kept
	// recording (run count covers every observation).
	if got := s.rec.ExactLen(); got > telemetry.DefaultExactCap {
		t.Fatalf("exact spill grew to %d", got)
	}
	if got := s.rec.Count(); got != uint64(n) {
		t.Fatalf("run histogram saw %d of %d observations", got, n)
	}
}

// TestDriverStatsWindowChurnSeries pins the windowed pipeline at the
// driver-stats layer: observations and churn land in the window that
// was open when they happened, and the inflight gauge tracks
// sent-minus-completed at each boundary.
func TestDriverStatsWindowChurnSeries(t *testing.T) {
	var s driverStats
	s.initStats(false)

	s.rec.NoteStart()
	s.observeSent()
	s.observeSent()
	s.observe(0.010, false, -1) // one of the two completes in window 1
	s.RotateWindow(0)

	s.observe(0.500, false, -1) // the straggler completes in window 2
	s.rec.NoteEnd()
	s.RotateWindow(0)

	w := s.Telemetry()
	if w.Windows() != 2 {
		t.Fatalf("windows = %d", w.Windows())
	}
	if w.Inflight.At(0) != 1 || w.Inflight.At(1) != 0 {
		t.Fatalf("inflight gauge %v", w.Inflight.Values)
	}
	if w.Starts.At(0) != 1 || w.Ends.At(0) != 0 || w.Ends.At(1) != 1 {
		t.Fatalf("churn starts=%v ends=%v", w.Starts.Values, w.Ends.Values)
	}
	if got := w.LatencyMean.At(1); math.Abs(got-500) > 1e-9 {
		t.Fatalf("window 2 mean %v ms, want 500", got)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d", s.Completed)
	}
}
