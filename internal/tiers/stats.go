package tiers

import (
	"sort"

	"vwchar/internal/rubis"
)

// LoadGen is the driver contract experiment.Run consumes: the
// closed-loop Driver and the open-loop OpenDriver both satisfy it, so
// the deployment assembly is identical whichever workload shape drives
// it.
type LoadGen interface {
	// Start schedules the generator's first events.
	Start()
	// Totals reports completed and failed interactions so far.
	Totals() (completed, errors uint64)
	// WriteFraction reports the share of completed interactions that
	// were read-write.
	WriteFraction() float64
	// MeanResponseTime reports the mean observed response time (s).
	MeanResponseTime() float64
	// ResponseTimeQuantile reports the q-quantile response time (s).
	ResponseTimeQuantile(q float64) float64
	// InteractionCounts returns a copy of the per-interaction tally.
	InteractionCounts() map[rubis.Interaction]uint64
}

// respTimesCap bounds the response-time reservoir per driver.
const respTimesCap = 200000

// driverStats is the outcome accounting shared by the closed-loop and
// open-loop drivers. Embedding keeps the public Completed/Errors fields
// both drivers expose and guarantees the two report identically shaped
// results.
type driverStats struct {
	// Completed counts finished interactions; Errors counts failed ones.
	Completed uint64
	Errors    uint64

	respTimes []float64 // seconds, capped reservoir
	byKind    map[rubis.Interaction]uint64
	writes    uint64
}

// initStats prepares the tally map; prealloc reserves the full
// response-time reservoir up front so steady-state observation never
// reallocates (the open-loop driver's zero-alloc discipline).
func (s *driverStats) initStats(prealloc bool) {
	s.byKind = make(map[rubis.Interaction]uint64)
	if prealloc {
		s.respTimes = make([]float64, 0, respTimesCap)
	}
}

// observe records one completed interaction's response time in seconds.
func (s *driverStats) observe(rt float64) {
	s.Completed++
	if len(s.respTimes) < respTimesCap {
		s.respTimes = append(s.respTimes, rt)
	}
}

// noteInteraction tallies one successfully executed interaction.
func (s *driverStats) noteInteraction(kind rubis.Interaction, isWrite bool) {
	s.byKind[kind]++
	if isWrite {
		s.writes++
	}
}

// Totals implements LoadGen.
func (s *driverStats) Totals() (completed, errors uint64) {
	return s.Completed, s.Errors
}

// WriteFraction reports the share of completed interactions that were
// read-write.
func (s *driverStats) WriteFraction() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.writes) / float64(s.Completed)
}

// InteractionCounts returns a copy of the per-interaction tally.
func (s *driverStats) InteractionCounts() map[rubis.Interaction]uint64 {
	out := make(map[rubis.Interaction]uint64, len(s.byKind))
	for k, v := range s.byKind {
		out[k] = v
	}
	return out
}

// ResponseTimeQuantile reports the q-quantile of observed response times
// in seconds.
func (s *driverStats) ResponseTimeQuantile(q float64) float64 {
	if len(s.respTimes) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.respTimes...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// MeanResponseTime reports the mean response time in seconds.
func (s *driverStats) MeanResponseTime() float64 {
	if len(s.respTimes) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.respTimes {
		sum += v
	}
	return sum / float64(len(s.respTimes))
}
