package tiers

import (
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/sysstat"
	"vwchar/internal/telemetry"
)

// LoadGen is the driver contract experiment.Run consumes: the
// closed-loop Driver and the open-loop OpenDriver both satisfy it, so
// the deployment assembly is identical whichever workload shape drives
// it.
type LoadGen interface {
	// Start schedules the generator's first events.
	Start()
	// Totals reports completed and failed interactions so far.
	Totals() (completed, errors uint64)
	// WriteFraction reports the share of completed interactions that
	// were read-write.
	WriteFraction() float64
	// MeanResponseTime reports the mean observed response time (s).
	MeanResponseTime() float64
	// ResponseTimeQuantile reports the q-quantile response time (s).
	ResponseTimeQuantile(q float64) float64
	// InteractionCounts returns a copy of the per-interaction tally.
	InteractionCounts() map[rubis.Interaction]uint64
	// ReserveWindows preallocates the telemetry series for n windows
	// so steady-state rotation never allocates; experiment.Run derives
	// n from the run duration before starting the kernel.
	ReserveWindows(n int)
	// RotateWindow closes the current telemetry window; experiment.Run
	// hooks it onto the sysstat collector's sampling ticker so the
	// latency series share the resource series' time axis.
	RotateWindow(now sim.Time)
	// Telemetry exposes the per-window latency/throughput/churn series.
	Telemetry() *telemetry.WindowSeries
	// SetReplicaGauge wires the active-replica gauge sampled at each
	// window boundary (cluster runs; nil leaves the series absent).
	SetReplicaGauge(fn func() int)
	// Hists exposes the run-level response-time histograms: every served
	// response, and the subset whose latency drove its session away.
	Hists() (served, abandoned *telemetry.Hist)
	// EnableFaultTelemetry materializes the error/timeout/shed/retry/
	// availability series (fault-injection runs; retries supplies the
	// guard's cumulative retry count, nil for a constant zero).
	EnableFaultTelemetry(retries func() uint64)
	// EnableDegradationTelemetry materializes the degraded/brownout-
	// level/hazard-rate series (hazard or brownout runs; nil gauges
	// sample as zero).
	EnableDegradationTelemetry(level func() int, hazardRate func() float64)
	// EnableCacheTelemetry materializes the hit-ratio/stampede series
	// (cache-tier runs; stats supplies the cache node's cumulative
	// counters, differenced per window).
	EnableCacheTelemetry(stats func() (hits, misses, stampedes uint64))
	// EnableQueueTelemetry materializes the queue depth/lag series
	// (queue-tier runs; gauges sampled at each window boundary).
	EnableQueueTelemetry(depth func() int, lagMs func() float64)
	// KindHist exposes the run-level per-interaction histogram for one
	// dense rubis kind index (nil when out of range).
	KindHist(kind int) *telemetry.Hist
	// RequestTotals splits issued requests by outcome. issued counts
	// requests dispatched into the serving path; the remainder
	// (issued - served - timedOut - shed - failed - degraded) is still
	// in flight.
	RequestTotals() (issued, served, timedOut, shed, failed, degraded uint64)
}

// driverStats is the outcome accounting shared by the closed-loop and
// open-loop drivers. Embedding keeps the public Completed/Errors fields
// both drivers expose and guarantees the two report identically shaped
// results. Response times flow into a telemetry.Recorder: a windowed
// log-histogram pipeline whose run-level mean and quantiles replace the
// run-long []float64 reservoir this struct used to carry (exact while
// observations fit a bounded spill, histogram-accurate beyond it).
type driverStats struct {
	// Completed counts finished interactions; Errors counts failed ones.
	Completed uint64
	Errors    uint64

	// Issued counts requests dispatched into the serving path;
	// TimedOut/Shed/Failed/Degraded split the abnormal outcomes
	// (Completed covers the served remainder). All zero on fault-free
	// runs.
	Issued   uint64
	TimedOut uint64
	Shed     uint64
	Failed   uint64
	Degraded uint64

	rec      *telemetry.Recorder
	inflight int
	byKind   map[rubis.Interaction]uint64
	writes   uint64
}

// initStats prepares the tally map and the telemetry recorder, with
// windows matching the sysstat sampling period; prealloc reserves the
// recorder's exact reservoir up front so steady-state observation never
// allocates (the open-loop driver's zero-alloc discipline). The series
// themselves are sized later, when experiment.Run calls ReserveWindows
// with the duration-derived window count.
func (s *driverStats) initStats(prealloc bool) {
	s.byKind = make(map[rubis.Interaction]uint64)
	s.rec = telemetry.NewRecorder(sysstat.SampleInterval.Sec(), 0, prealloc)
}

// observeSent marks one request leaving the client, for the in-flight
// concurrency gauge and the issued tally.
func (s *driverStats) observeSent() {
	s.inflight++
	s.Issued++
}

// observe records one completed interaction's response time in
// seconds, attributed to its read or read-write class and its dense
// interaction kind.
func (s *driverStats) observe(rt float64, isWrite bool, kind int) {
	s.Completed++
	s.inflight--
	s.rec.RecordKind(rt, isWrite, kind)
}

// observeFault records one request that ended abnormally: it counts
// toward the outcome split and the per-window fault series, but its
// turnaround never enters the latency pipeline (an error response's
// sub-millisecond "latency" would poison the served distribution).
func (s *driverStats) observeFault(o Outcome) {
	s.inflight--
	switch o {
	case OutcomeTimedOut:
		s.TimedOut++
		s.rec.NoteTimeout()
	case OutcomeShed:
		s.Shed++
		s.rec.NoteShed()
	case OutcomeDegraded:
		s.Degraded++
		s.rec.NoteDegraded()
	default:
		s.Failed++
		s.rec.NoteFailure()
	}
}

// EnableFaultTelemetry implements LoadGen.
func (s *driverStats) EnableFaultTelemetry(retries func() uint64) {
	s.rec.EnableFaultSeries(retries)
}

// EnableDegradationTelemetry implements LoadGen.
func (s *driverStats) EnableDegradationTelemetry(level func() int, hazardRate func() float64) {
	s.rec.EnableDegradationSeries(level, hazardRate)
}

// EnableCacheTelemetry implements LoadGen.
func (s *driverStats) EnableCacheTelemetry(stats func() (hits, misses, stampedes uint64)) {
	s.rec.EnableCacheSeries(stats)
}

// EnableQueueTelemetry implements LoadGen.
func (s *driverStats) EnableQueueTelemetry(depth func() int, lagMs func() float64) {
	s.rec.EnableQueueSeries(depth, lagMs)
}

// KindHist implements LoadGen.
func (s *driverStats) KindHist(kind int) *telemetry.Hist { return s.rec.KindHist(kind) }

// RequestTotals implements LoadGen.
func (s *driverStats) RequestTotals() (issued, served, timedOut, shed, failed, degraded uint64) {
	return s.Issued, s.Completed, s.TimedOut, s.Shed, s.Failed, s.Degraded
}

// noteInteraction tallies one successfully executed interaction.
func (s *driverStats) noteInteraction(kind rubis.Interaction, isWrite bool) {
	s.byKind[kind]++
	if isWrite {
		s.writes++
	}
}

// ReserveWindows implements LoadGen.
func (s *driverStats) ReserveWindows(n int) { s.rec.ReserveWindows(n) }

// RotateWindow implements LoadGen: it closes the current telemetry
// window, sampling the in-flight gauge at the boundary.
func (s *driverStats) RotateWindow(now sim.Time) { s.rec.Rotate(s.inflight) }

// Telemetry implements LoadGen.
func (s *driverStats) Telemetry() *telemetry.WindowSeries { return s.rec.Series() }

// SetReplicaGauge implements LoadGen.
func (s *driverStats) SetReplicaGauge(fn func() int) { s.rec.SetReplicaGauge(fn) }

// Hists implements LoadGen.
func (s *driverStats) Hists() (served, abandoned *telemetry.Hist) {
	return s.rec.RunHist(), s.rec.AbandonedHist()
}

// Totals implements LoadGen.
func (s *driverStats) Totals() (completed, errors uint64) {
	return s.Completed, s.Errors
}

// WriteFraction reports the share of completed interactions that were
// read-write.
func (s *driverStats) WriteFraction() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.writes) / float64(s.Completed)
}

// InteractionCounts returns a copy of the per-interaction tally.
func (s *driverStats) InteractionCounts() map[rubis.Interaction]uint64 {
	out := make(map[rubis.Interaction]uint64, len(s.byKind))
	for k, v := range s.byKind {
		out[k] = v
	}
	return out
}

// ResponseTimeQuantile reports the q-quantile of observed response
// times in seconds: exact (bit-identical to the replaced sort-the-
// reservoir computation) while the run fits the recorder's bounded
// exact spill, merged-histogram accurate beyond it.
func (s *driverStats) ResponseTimeQuantile(q float64) float64 {
	return s.rec.Quantile(q)
}

// MeanResponseTime reports the mean response time in seconds, exact
// over every observation via the recorder's running sum.
func (s *driverStats) MeanResponseTime() float64 {
	return s.rec.Mean()
}
