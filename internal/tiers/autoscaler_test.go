package tiers

import (
	"testing"

	"vwchar/internal/sim"
	"vwchar/internal/telemetry"
	"vwchar/internal/timeseries"
)

// collapseTel builds the window series a real collector feeds the
// autoscaler, including the fault series the collapse signal reads.
func collapseTel() *telemetry.WindowSeries {
	return &telemetry.WindowSeries{
		LatencyP95:   timeseries.New("latency_p95", "ms"),
		Throughput:   timeseries.New("throughput", "req/s"),
		Inflight:     timeseries.New("inflight", "requests"),
		Timeouts:     timeseries.New("timeouts", "requests/window"),
		Failures:     timeseries.New("failures", "requests/window"),
		Availability: timeseries.New("availability", "fraction"),
	}
}

// TestAutoscalerScalesDuringCollapse is the overload-robustness
// regression: under total collapse nothing completes, so the
// throughput gate used to classify every window as idle and reset the
// violation streak — the autoscaler could never fire during exactly
// the outage it exists for. The composite signal (demand trapped in
// flight, abnormal outcomes, availability below 1) must keep the
// streak alive and boot the parked replica.
func TestAutoscalerScalesDuringCollapse(t *testing.T) {
	c := pickCluster(LBRoundRobin, 2)
	c.state[1] = ReplicaParked
	c.activeCount, c.peakActive = 1, 1
	tel := collapseTel()
	a := NewAutoscaler(c, tel, AutoscalerSpec{
		SLOMillis:       100,
		ScaleUpWindows:  3,
		CooldownSeconds: 2,
		BootSeconds:     5,
	})

	// Window 1: overloaded but still completing — a classic violation.
	now := 2 * sim.Second
	tel.LatencyP95.Append(500)
	tel.Throughput.Append(10)
	tel.Inflight.Append(30)
	tel.Timeouts.Append(0)
	tel.Failures.Append(0)
	tel.Availability.Append(1)
	a.OnSample(now)

	// Windows 2-3: total collapse. Zero completions, 40 requests
	// trapped in flight, timeouts concluding, availability at zero.
	for i := 0; i < 2; i++ {
		now += 2 * sim.Second
		tel.LatencyP95.Append(0)
		tel.Throughput.Append(0)
		tel.Inflight.Append(40)
		tel.Timeouts.Append(5)
		tel.Failures.Append(2)
		tel.Availability.Append(0)
		a.OnSample(now)
	}

	boots := 0
	for _, e := range c.Events {
		if e.Kind == "boot" {
			boots++
		}
	}
	if boots != 1 || c.Booting() != 1 {
		t.Fatalf("collapse windows did not sustain the streak: boots=%d booting=%d, want 1/1",
			boots, c.Booting())
	}
}

// TestAutoscalerIdleStillResetsStreak pins the other half of the
// contract: a genuinely idle zero-throughput window (nothing in
// flight, no abnormal outcomes, availability 1) carries no overload
// signal and must still break the streak.
func TestAutoscalerIdleStillResetsStreak(t *testing.T) {
	c := pickCluster(LBRoundRobin, 2)
	c.state[1] = ReplicaParked
	c.activeCount, c.peakActive = 1, 1
	tel := collapseTel()
	a := NewAutoscaler(c, tel, AutoscalerSpec{
		SLOMillis:       100,
		ScaleUpWindows:  2,
		CooldownSeconds: 2,
		BootSeconds:     5,
	})

	// Alternate hot and idle windows: the streak never reaches 2.
	now := sim.Time(0)
	for i := 0; i < 6; i++ {
		now += 2 * sim.Second
		if i%2 == 0 {
			tel.LatencyP95.Append(500)
			tel.Throughput.Append(10)
			tel.Inflight.Append(5)
		} else {
			tel.LatencyP95.Append(0)
			tel.Throughput.Append(0)
			tel.Inflight.Append(0)
		}
		tel.Timeouts.Append(0)
		tel.Failures.Append(0)
		tel.Availability.Append(1)
		a.OnSample(now)
	}
	if c.Booting() != 0 {
		t.Fatalf("idle windows no longer reset the streak: %d booting", c.Booting())
	}
}
