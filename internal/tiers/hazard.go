package tiers

import (
	"vwchar/internal/faults"
	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// HazardCrash is one load-induced crash, logged for the cascade
// analysis.
type HazardCrash struct {
	At      sim.Time `json:"at"`
	Replica int      `json:"replica"`
	// Util is the replica utilization (resident requests / workers)
	// that armed the hazard.
	Util float64 `json:"util"`
	// RepairAt is the scheduled restore time; 0 when the crash is
	// permanent.
	RepairAt sim.Time `json:"repair_at,omitempty"`
}

// HazardStats is the hazard's run accounting, carried on
// experiment.Result (non-nil whenever a hazard was configured, even if
// it never fired).
type HazardStats struct {
	// Crashes logs every load-induced crash in order.
	Crashes []HazardCrash `json:"crashes,omitempty"`
	// PeakRate is the largest per-window expected crash count (sum of
	// armed per-replica probabilities) seen during the run.
	PeakRate float64 `json:"peak_rate,omitempty"`
}

// Hazard is the endogenous load-coupled crash process: at every
// telemetry window boundary it walks the web replicas in index order,
// consumes exactly one uniform draw per replica from its dedicated
// substream, and crashes replicas whose utilization is at or above the
// spec threshold with the spec probability. The fixed draw order and
// count are what keep the run byte-identical across worker counts even
// though crashes feed back into load (see faults.HazardSpec).
type Hazard struct {
	k    *sim.Kernel
	web  *WebCluster
	spec faults.HazardSpec
	st   *rng.Stream

	// rate is the armed probability mass of the last evaluated window
	// (the hazard_rate telemetry gauge).
	rate    float64
	repFree sim.FreeList[hazardRepair]

	Stats HazardStats
}

// hazardRepair is the pooled restore-timer payload.
type hazardRepair struct {
	h       *Hazard
	replica int
}

// NewHazard builds the hazard over the cluster's web replicas. st must
// be the dedicated "fault-hazard" substream of the experiment source.
func NewHazard(k *sim.Kernel, web *WebCluster, spec faults.HazardSpec, st *rng.Stream) *Hazard {
	return &Hazard{k: k, web: web, spec: spec, st: st}
}

// WindowRate reports the armed probability mass of the last evaluated
// window (telemetry gauge source).
func (h *Hazard) WindowRate() float64 { return h.rate }

// OnSample evaluates the hazard at a window boundary. It must be
// registered on the sysstat collector so every run sees the same
// window cadence.
func (h *Hazard) OnSample(now sim.Time) {
	h.rate = 0
	capped := h.spec.MaxCrashes > 0 && len(h.Stats.Crashes) >= h.spec.MaxCrashes
	for i, r := range h.web.Replicas {
		// One draw per replica per window, armed or not: the sequence
		// never depends on load, only acceptance does (thinning).
		u := h.st.Float64()
		if capped || h.web.state[i] != ReplicaActive || r.down || r.params.Workers <= 0 {
			continue
		}
		util := float64(r.QueueDepth()) / float64(r.params.Workers)
		if util < h.spec.UtilThreshold {
			continue
		}
		h.rate += h.spec.CrashProb
		if u >= h.spec.CrashProb {
			continue
		}
		var repairAt sim.Time
		if h.spec.MTTRSeconds > 0 {
			delay := sim.Seconds(h.st.Exp(h.spec.MTTRSeconds))
			repairAt = now + delay
			rep := h.repFree.Get()
			rep.h = h
			rep.replica = i
			h.k.AfterCall(delay, hazardRestore, rep)
		}
		h.Stats.Crashes = append(h.Stats.Crashes, HazardCrash{At: now, Replica: i, Util: util, RepairAt: repairAt})
		r.crash()
		if h.spec.MaxCrashes > 0 && len(h.Stats.Crashes) >= h.spec.MaxCrashes {
			capped = true
		}
	}
	if h.rate > h.Stats.PeakRate {
		h.Stats.PeakRate = h.rate
	}
}

// hazardRestore brings a hazard-crashed replica back.
func hazardRestore(arg any) {
	rep := arg.(*hazardRepair)
	h := rep.h
	i := rep.replica
	h.repFree.Put(rep)
	if i >= 0 && i < len(h.web.Replicas) {
		h.web.Replicas[i].restore()
	}
}
