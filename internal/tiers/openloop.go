package tiers

import (
	"vwchar/internal/load"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// OpenParams configures the open-loop driver: the arrival process plus
// the session-lifecycle knobs.
type OpenParams struct {
	// Arrivals produces session-start times; required, and owned by
	// this driver (arrival processes are stateful).
	Arrivals load.Arrivals
	// SessionMean is the mean session length in interactions
	// (geometric; values <= 1 degenerate to single-page sessions).
	SessionMean float64
	// AbandonAfter ends a session whose response exceeded this SLO;
	// 0 disables abandonment.
	AbandonAfter sim.Time
	// Ramp thins arrivals linearly from zero over this window.
	Ramp sim.Time
}

// OpenParamsFromSpec converts a validated load.Spec into driver
// parameters, building its arrival process.
func OpenParamsFromSpec(s *load.Spec) (OpenParams, error) {
	arr, err := s.Build()
	if err != nil {
		return OpenParams{}, err
	}
	return OpenParams{
		Arrivals:     arr,
		SessionMean:  s.EffectiveSessionMean(),
		AbandonAfter: sim.Seconds(s.AbandonAfterSeconds),
		Ramp:         sim.Seconds(s.RampSeconds),
	}, nil
}

// SessionStats is the open-loop driver's session accounting.
type SessionStats struct {
	// Offered counts arrivals the generator produced (including those
	// thinned away by the ramp); Started counts admitted sessions.
	Offered uint64
	Started uint64
	// Finished sessions ran their full drawn length; Abandoned ones
	// quit after an SLO-violating response.
	Finished  uint64
	Abandoned uint64
	// PeakActive is the maximum concurrent session count observed —
	// the population a closed-loop run would have needed.
	PeakActive int
}

// OpenDriver is the open-loop client generator: sessions arrive on an
// external arrival process, run a geometric number of interactions with
// think time between them, and leave — either done or abandoning after
// a response blew the SLO. Unlike the closed loop, offered load does
// not self-throttle when the system saturates, which is what makes
// flash crowds and bursty traces show real saturation behaviour.
//
// Steady-state scheduling is allocation-free: arrivals re-arm a pooled
// kernel event via AtCall, sessions recycle through a sim.FreeList, and
// the response-time reservoir is reserved up front.
type OpenDriver struct {
	k     *sim.Kernel
	app   *rubis.App
	model rubis.Model
	web   Frontend
	costs rubis.CostParams

	arr load.Arrivals
	// arrive feeds the arrival process; life draws ramp admission and
	// session lengths; behave draws interaction picks and think times.
	// Sessions share the driver streams (the kernel is single-threaded,
	// so draw order is deterministic) instead of paying two lagged-
	// Fibonacci seedings per session the way per-client streams would.
	arrive *rng.Stream
	life   *rng.Stream
	behave *rng.Stream

	sessionMean  float64
	abandonAfter sim.Time
	ramp         sim.Time

	sessFree sim.FreeList[openSession]
	active   int
	nextID   int64

	driverStats
	// Sessions is the session-churn accounting.
	Sessions SessionStats
}

// openSession is the pooled per-session state: identity, the Markov
// position, the remaining-interaction budget, the DB routing state,
// and a reused cost breakdown, threaded as the context argument
// through every callback on its request path.
type openSession struct {
	d         *OpenDriver
	sess      rubis.Session
	state     rubis.Interaction
	remaining int
	sentAt    sim.Time
	rt        Route
	res       rubis.Result
}

// NewOpenDriver builds an open-loop driver over the web tier using
// independent named substreams from src.
func NewOpenDriver(k *sim.Kernel, app *rubis.App, model rubis.Model, web Frontend, costs rubis.CostParams, p OpenParams, src *rng.Source) *OpenDriver {
	d := &OpenDriver{
		k:            k,
		app:          app,
		model:        model,
		web:          web,
		costs:        costs,
		arr:          p.Arrivals,
		arrive:       src.Stream("open-arrive"),
		life:         src.Stream("open-life"),
		behave:       src.Stream("open-behave"),
		sessionMean:  p.SessionMean,
		abandonAfter: p.AbandonAfter,
		ramp:         p.Ramp,
	}
	d.initStats(true)
	return d
}

// Start schedules the first arrival.
func (d *OpenDriver) Start() { d.armArrival() }

// armArrival schedules the next session start; a process that has ended
// (trace ran out) stops the loop.
func (d *OpenDriver) armArrival() {
	t := d.arr.Next(d.k.Now(), d.arrive)
	if t >= sim.MaxTime {
		return
	}
	d.k.AtCall(t, openArrive, d)
}

// openArrive fires at each arrival epoch: admit a session (subject to
// the ramp-in thinning) and re-arm.
func openArrive(arg any) {
	d := arg.(*OpenDriver)
	d.Sessions.Offered++
	now := d.k.Now()
	if now >= d.ramp || sim.Seconds(d.life.Float64()*d.ramp.Sec()) < now {
		d.startSession()
	}
	d.armArrival()
}

// startSession admits one session and issues its first interaction
// immediately (the arrival is the first page hit).
func (d *OpenDriver) startSession() {
	s := d.sessFree.Get()
	id := d.nextID
	d.nextID++
	s.d = d
	s.rt.Reset()
	s.state = d.model.StartState()
	s.remaining = d.life.Geometric(d.sessionMean)
	s.sess.UserID = id % d.app.TotalUsers()
	s.sess.ItemID = (id * 7) % d.app.TotalItems()
	s.sess.CategoryID = id % int64(d.app.Config.Categories)
	s.sess.RegionID = id % int64(d.app.Config.Regions)
	s.sess.ToUserID = (id * 13) % d.app.TotalUsers()
	d.Sessions.Started++
	d.rec.NoteStart()
	d.active++
	if d.active > d.Sessions.PeakActive {
		d.Sessions.PeakActive = d.active
	}
	d.issue(s)
}

// openIssue fires when a session's think time elapses.
func openIssue(arg any) {
	s := arg.(*openSession)
	s.d.issue(s)
}

func (d *OpenDriver) issue(s *openSession) {
	s.state = d.model.NextInteraction(s.state, d.behave)
	err := d.app.ExecuteInto(&s.res, s.state, &s.sess, d.behave, d.costs)
	if err != nil {
		// Mirror the closed loop: surface the failure in results and
		// keep the session moving rather than papering over it.
		d.Errors++
		d.afterResponse(s, 0, false)
		return
	}
	d.noteInteraction(s.state, s.res.IsWrite)
	s.sentAt = d.k.Now()
	d.observeSent()
	d.web.Dispatch(&s.res, &s.rt, openDone, s)
}

// openDone fires when the response reached the client.
func openDone(arg any) {
	s := arg.(*openSession)
	d := s.d
	if o := s.rt.Outcome; o != OutcomeServed {
		// Abnormal outcome (fault-injection runs only): count it and
		// clear the stamp; the turnaround never enters the latency
		// pipeline.
		d.observeFault(o)
		s.rt.Outcome = OutcomeServed
		d.afterResponse(s, d.k.Now()-s.sentAt, true)
		return
	}
	rt := (d.k.Now() - s.sentAt).Sec()
	d.observe(rt, s.res.IsWrite, int(s.res.Kind))
	d.afterResponse(s, d.k.Now()-s.sentAt, false)
}

// afterResponse advances the session lifecycle once an interaction
// concluded: leave when the drawn length is exhausted, abandon when the
// response blew the SLO or errored, otherwise think and continue.
func (d *OpenDriver) afterResponse(s *openSession, rt sim.Time, faulted bool) {
	s.remaining--
	if s.remaining <= 0 {
		d.endSession(s, false)
		return
	}
	if faulted {
		// An error page drives the user away like an SLO breach, but it
		// stays out of the abandonment latency histogram: that histogram
		// attributes demand driven away by *slowness* (AnalyzeScaling
		// subtracts it from the SLO-violation count).
		d.endSession(s, true)
		return
	}
	if d.abandonAfter > 0 && rt > d.abandonAfter {
		// The violating response itself is already in the main histogram
		// (it was served, just slowly); the abandonment histogram
		// additionally attributes it as demand driven away.
		d.rec.NoteAbandon(rt.Sec())
		d.endSession(s, true)
		return
	}
	think := d.model.ThinkSeconds(d.behave)
	d.k.AfterCall(sim.Seconds(think), openIssue, s)
}

func (d *OpenDriver) endSession(s *openSession, abandoned bool) {
	if abandoned {
		d.Sessions.Abandoned++
	} else {
		d.Sessions.Finished++
	}
	d.rec.NoteEnd()
	d.active--
	d.sessFree.Put(s)
}

// ActiveSessions reports the current concurrent session count.
func (d *OpenDriver) ActiveSessions() int { return d.active }
