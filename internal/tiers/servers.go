package tiers

import (
	"vwchar/internal/cachetier"
	"vwchar/internal/osmodel"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// WebParams tunes the combined web+application server (Apache+PHP).
type WebParams struct {
	// Workers is the worker pool size; requests beyond it queue.
	Workers int
	// StageSplit is the fraction of an interaction's web CPU spent
	// before the DB calls (parse, session, controller); the rest is
	// template rendering after the data arrives.
	StageSplit float64
	// LogBytesPerRequest is access-log output.
	LogBytesPerRequest float64
	// SessionBytesPerRequest is session-state spill written per request.
	SessionBytesPerRequest float64
	// MemBase/MemChunk/MemMax/SpawnThreshold/SpawnCooldown drive the
	// worker-pool memory allocator (the paper's RAM jumps).
	MemBase        float64
	MemChunk       float64
	MemMax         float64
	SpawnThreshold int
	SpawnCooldown  sim.Time
	// SpawnDiskBytes is the disk burst accompanying a worker-batch
	// spawn (binaries, session directory churn) — the disk spikes the
	// paper pairs with the RAM jumps.
	SpawnDiskBytes float64
}

// DefaultWebParams returns the calibrated web tier for the given
// deployment ("vm" or "pm").
func DefaultWebParams(deployment string) WebParams {
	p := WebParams{
		Workers:                64,
		StageSplit:             0.38,
		LogBytesPerRequest:     210,
		SessionBytesPerRequest: 1600,
		SpawnCooldown:          70 * sim.Second,
		SpawnDiskBytes:         5.5e6,
	}
	switch deployment {
	case "pm":
		// Bare-metal Apache starts bigger (full OS, more spare servers)
		// and spawns earlier relative to its concurrency: the paper sees
		// jumps even for bidding, earlier in time than in VMs.
		p.MemBase = 390e6
		p.MemChunk = 120e6
		p.MemMax = 880e6
		p.SpawnThreshold = 2
	default:
		p.MemBase = 200e6
		p.MemChunk = 135e6
		p.MemMax = 760e6
		p.SpawnThreshold = 5
	}
	return p
}

// WebAppServer is one front-end replica. A replica reaches its DB tier
// through a DBCluster plus one precomputed PathPair per DB instance,
// so the same server works standalone (degenerate topology) or as one
// of N balanced replicas.
type WebAppServer struct {
	k  *sim.Kernel
	be Backend
	db *DBCluster
	// dbPaths[i] links this replica with DB instance i (0 = primary,
	// 1..R = read replicas): To carries queries out, From carries
	// replies back.
	dbPaths []PathPair
	params  WebParams
	alloc   osmodel.ChunkAllocator

	active int
	queue  []*webRequest
	// reqFree recycles webRequest state: one request's whole lifecycle
	// (admission, two CPU stages, the query chain, the response) runs on
	// a single pooled struct threaded through closure-free callbacks.
	reqFree sim.FreeList[webRequest]
	// pendingSpill batches log/session writes until the pdflush-style
	// ticker writes them back (the guest page cache), which is what
	// shapes the web tier's spiky disk trace.
	pendingSpill float64
	// inflight counts requests between cluster dispatch and response —
	// the least-inflight balancer's signal.
	inflight int
	// Served counts completed requests; Dispatched counts requests the
	// balancer routed here; QueuePeak tracks the maximum backlog+active
	// seen.
	Served     uint64
	Dispatched uint64
	QueuePeak  int

	// down marks a crashed replica: new requests fast-fail, and epoch
	// invalidates every in-flight request so its pending stage
	// callbacks turn into error responses instead of touching the
	// reset worker accounting. Both are only written by fault
	// injection; the healthy path reads two predictable branches.
	down  bool
	epoch uint32
	// slow is the fault-injected CPU slowdown factor (> 1 while a
	// slow-node fault is active; 0 otherwise).
	slow float64

	// cache/queue turn the fixed web→DB chain into a backend graph:
	// cacheable reads consult the cache node and fall through to the DB
	// on a miss; writes publish to the write-behind queue when it has
	// room. Both nil by default — the healthy web→DB path reads two
	// predictable nil checks and is otherwise untouched.
	cache     *CacheServer
	cachePath PathPair
	wq        *QueueServer
	wqPath    PathPair
}

// webRequest is the pooled per-request state.
type webRequest struct {
	w    *WebAppServer
	res  *rubis.Result
	rt   *Route
	done sim.Callback
	darg any
	qi   int // index of the next DB query to issue
	dbi  int // DB instance the current query routed to
	// snap is the replica's own copy of the caller's cost breakdown,
	// taken at admission. A guard timeout detaches the caller while
	// this request is still mid-chain, and the caller's session then
	// reuses its Result buffer for the next interaction — so the
	// replica must never read through the caller's pointer after
	// admission. snap.Queries keeps its capacity across recycles.
	snap rubis.Result
	// rtGen snapshots the route's reuse generation at admission; a
	// mismatch means the session moved on (guard timeout), so this
	// request must neither stamp the route's outcome nor record
	// read-your-writes state into it.
	rtGen uint32
	// epoch snapshots the server's crash epoch at admission; a
	// mismatch at any stage means the server crashed underneath the
	// request.
	epoch uint32
	// failed marks the request as ending in an error response.
	failed bool
	// dbsrv/dbEpoch pin the DB instance the current query was issued
	// to (by identity, stable across failover promotion) and its crash
	// epoch at issue time.
	dbsrv   *DBServer
	dbEpoch uint32
	// ckey is the request's cache fragment key; cfill marks this request
	// as the filler that must Put (or abort) the fragment after its DB
	// chain; cres/qres are the caller-owned out-params the cache GET and
	// queue publish resolve into.
	ckey  cachetier.Key
	cfill bool
	cres  CacheGetResult
	qres  QueuePubResult
}

// NewWebAppServer builds one web replica on a backend, wired to its DB
// tier through per-instance paths (len(dbPaths) must equal
// db.Instances()).
func NewWebAppServer(k *sim.Kernel, be Backend, db *DBCluster, dbPaths []PathPair, params WebParams) *WebAppServer {
	w := &WebAppServer{k: k, be: be, db: db, dbPaths: dbPaths, params: params}
	w.alloc = osmodel.ChunkAllocator{
		Mem:       be.Mem(),
		Label:     "apache",
		Base:      params.MemBase,
		Chunk:     params.MemChunk,
		Max:       params.MemMax,
		Threshold: params.SpawnThreshold,
		Cooldown:  params.SpawnCooldown,
	}
	w.alloc.Init()
	be.OS().Fork(params.Workers / 8) // initial spare servers
	k.Every(5*sim.Second, 5*sim.Second, w.flushSpill)
	return w
}

// SetCacheTier wires the replica to a cache node through its own path
// pair (To carries GET/SET/DELETE out, From carries replies back).
func (w *WebAppServer) SetCacheTier(c *CacheServer, path PathPair) {
	w.cache = c
	w.cachePath = path
}

// SetQueueTier wires the replica to the write-behind queue node.
func (w *WebAppServer) SetQueueTier(q *QueueServer, path PathPair) {
	w.wq = q
	w.wqPath = path
}

// flushSpill writes the buffered log/session bytes back every 5 seconds,
// as the guest kernel's periodic writeback does.
func (w *WebAppServer) flushSpill(now sim.Time) {
	if w.pendingSpill <= 0 {
		return
	}
	w.be.DiskIO(w.pendingSpill, true, nil, nil)
	w.pendingSpill = 0
}

// Growths reports how many worker-batch spawns (RAM jumps) occurred.
func (w *WebAppServer) Growths() int { return w.alloc.Growths }

// Backend exposes the tier's backend for client-side transfers.
func (w *WebAppServer) Backend() Backend { return w.be }

// InFlight reports requests between cluster dispatch and response.
func (w *WebAppServer) InFlight() int { return w.inflight }

// QueueDepth reports requests resident at the server (executing plus
// queued) — the join-shortest-queue balancer's signal.
func (w *WebAppServer) QueueDepth() int { return w.active + len(w.queue) }

// HandleRequest processes one parsed interaction; done(arg) fires when
// the response has been transmitted to the client. rt is the session's
// routing state (nil disables read-your-writes stickiness). The res
// cost breakdown is snapshotted at admission, so the caller may reuse
// it as soon as HandleRequest returns.
func (w *WebAppServer) HandleRequest(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	if w.down {
		// Crashed replica: connection refused after a fast turnaround.
		req := w.reqFree.Get()
		req.w = w
		req.res = res
		req.rt = rt
		req.rtGen = rt.generation()
		req.done = done
		req.darg = arg
		req.failed = true
		w.k.AfterCall(errorRespLatency, webRespDone, req)
		return
	}
	level := w.active + len(w.queue) + 1
	if level > w.QueuePeak {
		w.QueuePeak = level
	}
	if w.alloc.Observe(w.k.Now(), level) {
		// Worker-batch spawn: fork children, touch disk.
		w.be.OS().Fork(8)
		w.be.DiskIO(w.params.SpawnDiskBytes, true, nil, nil)
		w.be.OS().NoteFaults(2200, 14)
	}
	req := w.reqFree.Get()
	req.w = w
	// Work from the replica's own snapshot of the cost breakdown: the
	// caller's buffer belongs to its session again the moment a guard
	// timeout detaches it, possibly while this request is still queued
	// or mid-query-chain.
	qbuf := req.snap.Queries[:0]
	req.snap = *res
	req.snap.Queries = append(qbuf, res.Queries...)
	req.res = &req.snap
	req.rt = rt
	req.rtGen = rt.generation()
	req.done = done
	req.darg = arg
	req.qi = 0
	req.epoch = w.epoch
	req.failed = false
	if w.active >= w.params.Workers {
		w.queue = append(w.queue, req)
		return
	}
	w.start(req)
}

func (w *WebAppServer) start(req *webRequest) {
	w.active++
	os := w.be.OS()
	os.RunQueue++
	os.NoteContext(4)
	os.NoteFaults(35, 0)
	stage1 := req.res.WebCycles * w.params.StageSplit
	if w.slow > 1 {
		stage1 *= w.slow
	}
	w.be.SubmitCPU(stage1, webStage1Done, req)
}

// webStage1Done fires after the pre-query CPU stage: begin the backend
// phase (queue publish, cache lookup, or the direct DB chain).
func webStage1Done(arg any) {
	req := arg.(*webRequest)
	if req.w.stale(req) {
		req.w.failRequest(req)
		return
	}
	req.w.beginBackend(req)
}

// beginBackend routes the request's backend work through the graph:
// writes publish to the queue when it has room, cacheable reads consult
// the cache, and everything else (or any fallback) runs the synchronous
// DB chain. With no cache/queue wired this is exactly the old stepQuery
// entry — same branches, same events.
func (w *WebAppServer) beginBackend(req *webRequest) {
	res := req.res
	if len(res.Queries) > 0 {
		if res.IsWrite && w.wq != nil && w.wq.Admit() {
			w.wqPath.To.Transfer(w.wq.PublishBytes(res), webQueuePubSent, req)
			return
		}
		if res.Cacheable && w.cache != nil && !w.cache.down {
			req.ckey = cachetier.Key{Kind: res.CacheKey.Kind, ID: res.CacheKey.ID}
			w.cachePath.To.Transfer(w.cache.params.GetRequestBytes, webCacheGetSent, req)
			return
		}
	}
	w.stepQuery(req)
}

// webCacheGetSent fires when the GET request reached the cache node.
func webCacheGetSent(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	w.cache.HandleGet(req.ckey, &req.cres, w.cachePath.From, webCacheGetDone, req)
}

// webCacheGetDone fires when the cache reply reached the web tier: a
// hit serves the fragment (the whole DB chain is skipped — this is the
// 0-alloc fast path); a miss makes this request the fragment's filler
// and falls through to the DB.
func webCacheGetDone(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	if req.cres.Outcome == cachetier.Hit {
		w.finish(req)
		return
	}
	req.cfill = true
	w.stepQuery(req)
}

// webQueuePubSent fires when the publish payload reached the queue node.
func webQueuePubSent(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	w.wq.HandlePublish(req.res.Queries, &req.qres, w.wqPath.From, webQueueAckDone, req)
}

// webQueueAckDone fires when the publish ack reached the web tier: on
// acceptance the write is durable at the broker and the request
// completes without touching the DB; on refusal (filled up or crashed
// under the publish) it falls back to the synchronous chain.
func webQueueAckDone(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	if req.qres.OK {
		w.invalidate(req)
		w.finish(req)
		return
	}
	w.stepQuery(req)
}

// finishBackend completes the DB chain: a filler ships the fragment to
// the cache, a write fires its invalidations, then rendering starts.
func (w *WebAppServer) finishBackend(req *webRequest) {
	if req.cfill {
		req.cfill = false
		if w.cache != nil && !w.cache.down {
			_, fromDB := req.res.DBTransferBytes()
			w.cache.SendFill(w.cachePath.To, req.ckey, fromDB)
		}
	}
	w.invalidate(req)
	w.finish(req)
}

// invalidate ships the write's declared invalidations to the cache
// node; fire-and-forget, like a delete-on-write memcached client.
func (w *WebAppServer) invalidate(req *webRequest) {
	if w.cache == nil || w.cache.down || req.res.NInval == 0 {
		return
	}
	for i := uint8(0); i < req.res.NInval; i++ {
		ref := req.res.Inval[i]
		w.cache.SendInval(w.cachePath.To, cachetier.Key{Kind: ref.Kind, ID: ref.ID})
	}
}

// abortFill withdraws a failed filler's placeholder so the key does not
// wedge behind a dead lease.
func (w *WebAppServer) abortFill(req *webRequest) {
	if req.cfill {
		req.cfill = false
		if w.cache != nil {
			w.cache.AbortFetch(req.ckey)
		}
	}
}

// stepQuery issues the interaction's DB calls sequentially, as the PHP
// runtime does. Each query routes through the DB cluster — writes to
// the primary, reads fanned across replicas subject to the session's
// read-your-writes window — and travels the precomputed path to the
// chosen instance.
func (w *WebAppServer) stepQuery(req *webRequest) {
	if req.qi >= len(req.res.Queries) {
		w.finishBackend(req)
		return
	}
	q := &req.res.Queries[req.qi]
	rt := req.rt
	if rt.generation() != req.rtGen {
		// The session timed out and moved on: route without stickiness
		// so this straggler neither reads nor records the live
		// interaction's read-your-writes state.
		rt = nil
	}
	req.dbi = w.db.route(q.Receipt.Work.RowsWritten > 0, w.k.Now(), rt)
	srv := w.db.server(req.dbi)
	if srv.down {
		// The routed instance is dead (primary crashed, no failover
		// yet): error out without leaking the worker slot.
		w.errorOut(req)
		return
	}
	req.dbsrv = srv
	req.dbEpoch = srv.epoch
	w.dbPaths[req.dbi].To.Transfer(q.RequestBytes, webQuerySent, req)
}

// webQuerySent fires when the query's request bytes reached the DB tier.
func webQuerySent(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	if req.dbsrv.down || req.dbsrv.epoch != req.dbEpoch {
		// The instance crashed while the query was on the wire.
		w.errorOut(req)
		return
	}
	req.dbsrv.HandleQuery(req.res.Queries[req.qi], w.dbPaths[req.dbi].From, webQueryDone, req)
}

// webQueryDone fires when the DB reply reached the web tier.
func webQueryDone(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	if req.dbsrv.down || req.dbsrv.epoch != req.dbEpoch {
		// The reply is a crashed instance's error marker (or raced the
		// crash): the transaction is lost either way.
		w.errorOut(req)
		return
	}
	req.qi++
	w.stepQuery(req)
}

func (w *WebAppServer) finish(req *webRequest) {
	stage2 := req.res.WebCycles * (1 - w.params.StageSplit)
	if w.slow > 1 {
		stage2 *= w.slow
	}
	w.be.SubmitCPU(stage2, webStage2Done, req)
}

// webStage2Done fires after template rendering: spill bookkeeping, start
// the response transfer, and free the worker slot.
func webStage2Done(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if w.stale(req) {
		w.failRequest(req)
		return
	}
	// Access log + session spill accumulate in the page cache and
	// reach the disk on the writeback tick.
	spill := w.params.SessionBytesPerRequest * (req.res.ResponseBytes / 9000)
	w.pendingSpill += w.params.LogBytesPerRequest + spill
	w.be.NetExternal(req.res.ResponseBytes, false, webRespDone, req)
	w.release()
}

// webRespDone fires when the response reached the client: recycle the
// request slot, then hand off to the caller's completion.
func webRespDone(arg any) {
	req := arg.(*webRequest)
	w := req.w
	if req.failed {
		// Stamp the outcome only while the route is still on this
		// interaction; after a guard timeout the session has moved on
		// and the stamp would misclassify its next request.
		if req.rt != nil && req.rt.generation() == req.rtGen {
			req.rt.Outcome = OutcomeFailed
		}
	} else {
		w.Served++
	}
	// Guard the decrement: tests drive HandleRequest directly without a
	// cluster dispatch having incremented the gauge.
	if w.inflight > 0 {
		w.inflight--
	}
	done, darg := req.done, req.darg
	// Park the slot by hand instead of FreeList.Put so the snapshot's
	// query buffer keeps its capacity across recycles.
	qbuf := req.snap.Queries[:0]
	*req = webRequest{}
	req.snap.Queries = qbuf
	w.reqFree.PutReset(req)
	if done != nil {
		done(darg)
	}
}

// stale reports whether the server crashed since the request was
// admitted: its worker accounting was reset, so pending stage
// callbacks must not touch it.
func (w *WebAppServer) stale(req *webRequest) bool {
	return w.down || w.epoch != req.epoch
}

// failRequest turns a request into an error response without touching
// worker accounting (used for stale requests after a crash, and for
// queued requests flushed by the crash itself).
func (w *WebAppServer) failRequest(req *webRequest) {
	w.abortFill(req)
	req.failed = true
	w.k.AfterCall(errorRespLatency, webRespDone, req)
}

// errorOut fails a live request whose DB instance is unreachable: the
// worker slot frees normally, then the error response goes out.
func (w *WebAppServer) errorOut(req *webRequest) {
	w.abortFill(req)
	w.release()
	req.failed = true
	w.k.AfterCall(errorRespLatency, webRespDone, req)
}

// crash takes the replica down: worker accounting resets, queued
// requests flush as error responses, and the epoch bump detaches every
// in-flight request (each pending stage callback turns into an error
// response, so every caller's done eventually fires).
func (w *WebAppServer) crash() {
	if w.down {
		return
	}
	w.down = true
	w.epoch++
	w.active = 0
	w.inflight = 0
	w.be.OS().RunQueue = 0
	for _, req := range w.queue {
		w.failRequest(req)
	}
	w.queue = w.queue[:0]
}

// restore brings a crashed replica back (empty queue, cold start).
func (w *WebAppServer) restore() {
	if !w.down {
		return
	}
	w.down = false
}

func (w *WebAppServer) release() {
	w.active--
	os := w.be.OS()
	if os.RunQueue > 0 {
		os.RunQueue--
	}
	if len(w.queue) > 0 {
		next := w.queue[0]
		w.queue = w.queue[1:]
		w.start(next)
	}
}

// DBParams tunes the database tier.
type DBParams struct {
	// MemBase is the resident engine base (code, connection pool,
	// dictionaries).
	MemBase float64
	// CacheCeiling bounds the warm page/buffer cache growth.
	CacheCeiling float64
	// CheckpointEvery flushes dirty pages periodically.
	CheckpointEvery sim.Time
}

// DefaultDBParams returns the calibrated DB tier for "vm" or "pm".
func DefaultDBParams(deployment string) DBParams {
	p := DBParams{
		MemBase:         96e6,
		CacheCeiling:    122e6,
		CheckpointEvery: 12 * sim.Second,
	}
	if deployment == "pm" {
		p.MemBase = 430e6
		p.CacheCeiling = 270e6
	}
	return p
}

// DBServer is the back-end tier: it replays storage engine receipts as
// simulated demand and sends projected result bytes back to the web tier.
type DBServer struct {
	k      *sim.Kernel
	be     Backend
	params DBParams
	cache  osmodel.PageCache
	app    *rubis.App

	// callFree recycles per-query call state.
	callFree sim.FreeList[dbCall]

	// Queries counts handled calls.
	Queries uint64

	// down/epoch mirror the web tier's crash semantics: stale query
	// stages send an error marker back instead of finishing, so the
	// calling web replica's query chain always completes.
	down  bool
	epoch uint32
	// slow is the fault-injected CPU slowdown factor.
	slow float64
}

// dbCall is the pooled per-query state: the query cost receipt, the
// reply path back to the calling web replica, and the caller's
// completion, threaded through the CPU and disk stages.
type dbCall struct {
	d     *DBServer
	q     rubis.QueryCost
	reply Path
	done  sim.Callback
	darg  any
	epoch uint32
}

// NewDBServer builds the tier and starts its checkpoint ticker.
func NewDBServer(k *sim.Kernel, be Backend, app *rubis.App, params DBParams) *DBServer {
	d := &DBServer{k: k, be: be, params: params, app: app}
	be.Mem().Set("mysqld", params.MemBase)
	d.cache = osmodel.PageCache{Mem: be.Mem(), Label: "dbcache", Ceiling: params.CacheCeiling}
	be.OS().Fork(12)
	if params.CheckpointEvery > 0 {
		k.Every(params.CheckpointEvery, params.CheckpointEvery, d.checkpoint)
	}
	return d
}

// checkpointPageCap bounds each fuzzy checkpoint's write-back, like
// InnoDB's io-capacity setting; without it the DB tier's disk trace
// would dwarf the web tier's, inverting the paper's 5.71x disk ratio.
const checkpointPageCap = 48

func (d *DBServer) checkpoint(now sim.Time) {
	if d.app == nil {
		return
	}
	flushed, err := d.app.Engine.FuzzyCheckpoint(checkpointPageCap)
	if err != nil || flushed == 0 {
		return
	}
	d.be.DiskIO(float64(flushed)*8192, true, nil, nil)
}

// HandleQuery replays one query receipt; the reply bytes travel back
// along reply, and done(arg) fires when they reached the web replica.
func (d *DBServer) HandleQuery(q rubis.QueryCost, reply Path, done sim.Callback, arg any) {
	if d.down {
		// Crashed instance: bounce an error marker straight back.
		c := d.callFree.Get()
		c.d = d
		c.reply = reply
		c.done = done
		c.darg = arg
		d.errorReply(c)
		return
	}
	d.Queries++
	os := d.be.OS()
	os.RunQueue++
	os.NoteContext(3)
	c := d.callFree.Get()
	c.d = d
	c.q = q
	c.reply = reply
	c.done = done
	c.darg = arg
	c.epoch = d.epoch
	cycles := q.Receipt.CPUCycles
	if d.slow > 1 {
		cycles *= d.slow
	}
	d.be.SubmitCPU(cycles, dbCPUDone, c)
}

// dbCPUDone fires after the query's CPU demand executed: read from disk
// if the receipt says so, then finish.
func dbCPUDone(arg any) {
	c := arg.(*dbCall)
	d := c.d
	if d.down || d.epoch != c.epoch {
		d.errorReply(c)
		return
	}
	if c.q.Receipt.DiskReadBytes > 0 {
		d.cache.Touch(c.q.Receipt.DiskReadBytes * 8)
		d.be.DiskIO(c.q.Receipt.DiskReadBytes, false, dbReadDone, c)
		return
	}
	d.finishQuery(c)
}

// dbReadDone fires when the query's disk read completed.
func dbReadDone(arg any) {
	c := arg.(*dbCall)
	if c.d.down || c.d.epoch != c.epoch {
		c.d.errorReply(c)
		return
	}
	c.d.finishQuery(c)
}

// finishQuery performs the write-side work and sends the reply, then
// recycles the call slot (the reply path copies the completion into its
// own event, so the slot is free as soon as the reply is on its way).
func (d *DBServer) finishQuery(c *dbCall) {
	os := d.be.OS()
	if os.RunQueue > 0 {
		os.RunQueue--
	}
	// WAL/journal traffic is asynchronous group commit, but a
	// write transaction also forces a synchronous fsync chain.
	if c.q.Receipt.DiskWriteBytes > 0 {
		d.be.DiskIO(c.q.Receipt.DiskWriteBytes, true, nil, nil)
	}
	if c.q.Receipt.Work.RowsWritten > 0 {
		d.be.Fsync(2)
	}
	replyBytes, reply, done, darg := c.q.ReplyBytes, c.reply, c.done, c.darg
	d.callFree.Put(c)
	reply.Transfer(replyBytes, done, darg)
}

// errorReply sends a crashed instance's error marker back along the
// reply path (modeling the caller's connection reset) so the web
// tier's query chain always completes; the caller detects the crash
// through the instance's down/epoch state.
func (d *DBServer) errorReply(c *dbCall) {
	reply, done, darg := c.reply, c.done, c.darg
	d.callFree.Put(c)
	reply.Transfer(dbErrorReplyBytes, done, darg)
}

// crash takes the instance down: the epoch bump turns every in-flight
// query stage into an error reply, and run-queue accounting resets.
func (d *DBServer) crash() {
	if d.down {
		return
	}
	d.down = true
	d.epoch++
	d.be.OS().RunQueue = 0
}

// restore brings a crashed instance back.
func (d *DBServer) restore() {
	if !d.down {
		return
	}
	d.down = false
}
