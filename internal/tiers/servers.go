package tiers

import (
	"vwchar/internal/osmodel"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// WebParams tunes the combined web+application server (Apache+PHP).
type WebParams struct {
	// Workers is the worker pool size; requests beyond it queue.
	Workers int
	// StageSplit is the fraction of an interaction's web CPU spent
	// before the DB calls (parse, session, controller); the rest is
	// template rendering after the data arrives.
	StageSplit float64
	// LogBytesPerRequest is access-log output.
	LogBytesPerRequest float64
	// SessionBytesPerRequest is session-state spill written per request.
	SessionBytesPerRequest float64
	// MemBase/MemChunk/MemMax/SpawnThreshold/SpawnCooldown drive the
	// worker-pool memory allocator (the paper's RAM jumps).
	MemBase        float64
	MemChunk       float64
	MemMax         float64
	SpawnThreshold int
	SpawnCooldown  sim.Time
	// SpawnDiskBytes is the disk burst accompanying a worker-batch
	// spawn (binaries, session directory churn) — the disk spikes the
	// paper pairs with the RAM jumps.
	SpawnDiskBytes float64
}

// DefaultWebParams returns the calibrated web tier for the given
// deployment ("vm" or "pm").
func DefaultWebParams(deployment string) WebParams {
	p := WebParams{
		Workers:                64,
		StageSplit:             0.38,
		LogBytesPerRequest:     210,
		SessionBytesPerRequest: 1600,
		SpawnCooldown:          70 * sim.Second,
		SpawnDiskBytes:         5.5e6,
	}
	switch deployment {
	case "pm":
		// Bare-metal Apache starts bigger (full OS, more spare servers)
		// and spawns earlier relative to its concurrency: the paper sees
		// jumps even for bidding, earlier in time than in VMs.
		p.MemBase = 390e6
		p.MemChunk = 120e6
		p.MemMax = 880e6
		p.SpawnThreshold = 2
	default:
		p.MemBase = 200e6
		p.MemChunk = 135e6
		p.MemMax = 760e6
		p.SpawnThreshold = 5
	}
	return p
}

// WebAppServer is one front-end replica. A replica reaches its DB tier
// through a DBCluster plus one precomputed PathPair per DB instance,
// so the same server works standalone (degenerate topology) or as one
// of N balanced replicas.
type WebAppServer struct {
	k  *sim.Kernel
	be Backend
	db *DBCluster
	// dbPaths[i] links this replica with DB instance i (0 = primary,
	// 1..R = read replicas): To carries queries out, From carries
	// replies back.
	dbPaths []PathPair
	params  WebParams
	alloc   osmodel.ChunkAllocator

	active int
	queue  []*webRequest
	// reqFree recycles webRequest state: one request's whole lifecycle
	// (admission, two CPU stages, the query chain, the response) runs on
	// a single pooled struct threaded through closure-free callbacks.
	reqFree sim.FreeList[webRequest]
	// pendingSpill batches log/session writes until the pdflush-style
	// ticker writes them back (the guest page cache), which is what
	// shapes the web tier's spiky disk trace.
	pendingSpill float64
	// inflight counts requests between cluster dispatch and response —
	// the least-inflight balancer's signal.
	inflight int
	// Served counts completed requests; Dispatched counts requests the
	// balancer routed here; QueuePeak tracks the maximum backlog+active
	// seen.
	Served     uint64
	Dispatched uint64
	QueuePeak  int
}

// webRequest is the pooled per-request state.
type webRequest struct {
	w    *WebAppServer
	res  *rubis.Result
	rt   *Route
	done sim.Callback
	darg any
	qi   int // index of the next DB query to issue
	dbi  int // DB instance the current query routed to
}

// NewWebAppServer builds one web replica on a backend, wired to its DB
// tier through per-instance paths (len(dbPaths) must equal
// db.Instances()).
func NewWebAppServer(k *sim.Kernel, be Backend, db *DBCluster, dbPaths []PathPair, params WebParams) *WebAppServer {
	w := &WebAppServer{k: k, be: be, db: db, dbPaths: dbPaths, params: params}
	w.alloc = osmodel.ChunkAllocator{
		Mem:       be.Mem(),
		Label:     "apache",
		Base:      params.MemBase,
		Chunk:     params.MemChunk,
		Max:       params.MemMax,
		Threshold: params.SpawnThreshold,
		Cooldown:  params.SpawnCooldown,
	}
	w.alloc.Init()
	be.OS().Fork(params.Workers / 8) // initial spare servers
	k.Every(5*sim.Second, 5*sim.Second, w.flushSpill)
	return w
}

// flushSpill writes the buffered log/session bytes back every 5 seconds,
// as the guest kernel's periodic writeback does.
func (w *WebAppServer) flushSpill(now sim.Time) {
	if w.pendingSpill <= 0 {
		return
	}
	w.be.DiskIO(w.pendingSpill, true, nil, nil)
	w.pendingSpill = 0
}

// Growths reports how many worker-batch spawns (RAM jumps) occurred.
func (w *WebAppServer) Growths() int { return w.alloc.Growths }

// Backend exposes the tier's backend for client-side transfers.
func (w *WebAppServer) Backend() Backend { return w.be }

// InFlight reports requests between cluster dispatch and response.
func (w *WebAppServer) InFlight() int { return w.inflight }

// QueueDepth reports requests resident at the server (executing plus
// queued) — the join-shortest-queue balancer's signal.
func (w *WebAppServer) QueueDepth() int { return w.active + len(w.queue) }

// HandleRequest processes one parsed interaction; done(arg) fires when
// the response has been transmitted to the client. rt is the session's
// routing state (nil disables read-your-writes stickiness). The res
// cost breakdown must stay untouched by the caller until then.
func (w *WebAppServer) HandleRequest(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	level := w.active + len(w.queue) + 1
	if level > w.QueuePeak {
		w.QueuePeak = level
	}
	if w.alloc.Observe(w.k.Now(), level) {
		// Worker-batch spawn: fork children, touch disk.
		w.be.OS().Fork(8)
		w.be.DiskIO(w.params.SpawnDiskBytes, true, nil, nil)
		w.be.OS().NoteFaults(2200, 14)
	}
	req := w.reqFree.Get()
	req.w = w
	req.res = res
	req.rt = rt
	req.done = done
	req.darg = arg
	req.qi = 0
	if w.active >= w.params.Workers {
		w.queue = append(w.queue, req)
		return
	}
	w.start(req)
}

func (w *WebAppServer) start(req *webRequest) {
	w.active++
	os := w.be.OS()
	os.RunQueue++
	os.NoteContext(4)
	os.NoteFaults(35, 0)
	stage1 := req.res.WebCycles * w.params.StageSplit
	w.be.SubmitCPU(stage1, webStage1Done, req)
}

// webStage1Done fires after the pre-query CPU stage: begin the DB calls.
func webStage1Done(arg any) {
	req := arg.(*webRequest)
	req.w.stepQuery(req)
}

// stepQuery issues the interaction's DB calls sequentially, as the PHP
// runtime does. Each query routes through the DB cluster — writes to
// the primary, reads fanned across replicas subject to the session's
// read-your-writes window — and travels the precomputed path to the
// chosen instance.
func (w *WebAppServer) stepQuery(req *webRequest) {
	if req.qi >= len(req.res.Queries) {
		w.finish(req)
		return
	}
	q := &req.res.Queries[req.qi]
	req.dbi = w.db.route(q.Receipt.Work.RowsWritten > 0, w.k.Now(), req.rt)
	w.dbPaths[req.dbi].To.Transfer(q.RequestBytes, webQuerySent, req)
}

// webQuerySent fires when the query's request bytes reached the DB tier.
func webQuerySent(arg any) {
	req := arg.(*webRequest)
	w := req.w
	w.db.server(req.dbi).HandleQuery(req.res.Queries[req.qi], w.dbPaths[req.dbi].From, webQueryDone, req)
}

// webQueryDone fires when the DB reply reached the web tier.
func webQueryDone(arg any) {
	req := arg.(*webRequest)
	req.qi++
	req.w.stepQuery(req)
}

func (w *WebAppServer) finish(req *webRequest) {
	stage2 := req.res.WebCycles * (1 - w.params.StageSplit)
	w.be.SubmitCPU(stage2, webStage2Done, req)
}

// webStage2Done fires after template rendering: spill bookkeeping, start
// the response transfer, and free the worker slot.
func webStage2Done(arg any) {
	req := arg.(*webRequest)
	w := req.w
	// Access log + session spill accumulate in the page cache and
	// reach the disk on the writeback tick.
	spill := w.params.SessionBytesPerRequest * (req.res.ResponseBytes / 9000)
	w.pendingSpill += w.params.LogBytesPerRequest + spill
	w.be.NetExternal(req.res.ResponseBytes, false, webRespDone, req)
	w.release()
}

// webRespDone fires when the response reached the client: recycle the
// request slot, then hand off to the caller's completion.
func webRespDone(arg any) {
	req := arg.(*webRequest)
	w := req.w
	w.Served++
	// Guard the decrement: tests drive HandleRequest directly without a
	// cluster dispatch having incremented the gauge.
	if w.inflight > 0 {
		w.inflight--
	}
	done, darg := req.done, req.darg
	w.reqFree.Put(req)
	if done != nil {
		done(darg)
	}
}

func (w *WebAppServer) release() {
	w.active--
	os := w.be.OS()
	if os.RunQueue > 0 {
		os.RunQueue--
	}
	if len(w.queue) > 0 {
		next := w.queue[0]
		w.queue = w.queue[1:]
		w.start(next)
	}
}

// DBParams tunes the database tier.
type DBParams struct {
	// MemBase is the resident engine base (code, connection pool,
	// dictionaries).
	MemBase float64
	// CacheCeiling bounds the warm page/buffer cache growth.
	CacheCeiling float64
	// CheckpointEvery flushes dirty pages periodically.
	CheckpointEvery sim.Time
}

// DefaultDBParams returns the calibrated DB tier for "vm" or "pm".
func DefaultDBParams(deployment string) DBParams {
	p := DBParams{
		MemBase:         96e6,
		CacheCeiling:    122e6,
		CheckpointEvery: 12 * sim.Second,
	}
	if deployment == "pm" {
		p.MemBase = 430e6
		p.CacheCeiling = 270e6
	}
	return p
}

// DBServer is the back-end tier: it replays storage engine receipts as
// simulated demand and sends projected result bytes back to the web tier.
type DBServer struct {
	k      *sim.Kernel
	be     Backend
	params DBParams
	cache  osmodel.PageCache
	app    *rubis.App

	// callFree recycles per-query call state.
	callFree sim.FreeList[dbCall]

	// Queries counts handled calls.
	Queries uint64
}

// dbCall is the pooled per-query state: the query cost receipt, the
// reply path back to the calling web replica, and the caller's
// completion, threaded through the CPU and disk stages.
type dbCall struct {
	d     *DBServer
	q     rubis.QueryCost
	reply Path
	done  sim.Callback
	darg  any
}

// NewDBServer builds the tier and starts its checkpoint ticker.
func NewDBServer(k *sim.Kernel, be Backend, app *rubis.App, params DBParams) *DBServer {
	d := &DBServer{k: k, be: be, params: params, app: app}
	be.Mem().Set("mysqld", params.MemBase)
	d.cache = osmodel.PageCache{Mem: be.Mem(), Label: "dbcache", Ceiling: params.CacheCeiling}
	be.OS().Fork(12)
	if params.CheckpointEvery > 0 {
		k.Every(params.CheckpointEvery, params.CheckpointEvery, d.checkpoint)
	}
	return d
}

// checkpointPageCap bounds each fuzzy checkpoint's write-back, like
// InnoDB's io-capacity setting; without it the DB tier's disk trace
// would dwarf the web tier's, inverting the paper's 5.71x disk ratio.
const checkpointPageCap = 48

func (d *DBServer) checkpoint(now sim.Time) {
	if d.app == nil {
		return
	}
	flushed, err := d.app.Engine.FuzzyCheckpoint(checkpointPageCap)
	if err != nil || flushed == 0 {
		return
	}
	d.be.DiskIO(float64(flushed)*8192, true, nil, nil)
}

// HandleQuery replays one query receipt; the reply bytes travel back
// along reply, and done(arg) fires when they reached the web replica.
func (d *DBServer) HandleQuery(q rubis.QueryCost, reply Path, done sim.Callback, arg any) {
	d.Queries++
	os := d.be.OS()
	os.RunQueue++
	os.NoteContext(3)
	c := d.callFree.Get()
	c.d = d
	c.q = q
	c.reply = reply
	c.done = done
	c.darg = arg
	d.be.SubmitCPU(q.Receipt.CPUCycles, dbCPUDone, c)
}

// dbCPUDone fires after the query's CPU demand executed: read from disk
// if the receipt says so, then finish.
func dbCPUDone(arg any) {
	c := arg.(*dbCall)
	d := c.d
	if c.q.Receipt.DiskReadBytes > 0 {
		d.cache.Touch(c.q.Receipt.DiskReadBytes * 8)
		d.be.DiskIO(c.q.Receipt.DiskReadBytes, false, dbReadDone, c)
		return
	}
	d.finishQuery(c)
}

// dbReadDone fires when the query's disk read completed.
func dbReadDone(arg any) {
	c := arg.(*dbCall)
	c.d.finishQuery(c)
}

// finishQuery performs the write-side work and sends the reply, then
// recycles the call slot (the reply path copies the completion into its
// own event, so the slot is free as soon as the reply is on its way).
func (d *DBServer) finishQuery(c *dbCall) {
	os := d.be.OS()
	if os.RunQueue > 0 {
		os.RunQueue--
	}
	// WAL/journal traffic is asynchronous group commit, but a
	// write transaction also forces a synchronous fsync chain.
	if c.q.Receipt.DiskWriteBytes > 0 {
		d.be.DiskIO(c.q.Receipt.DiskWriteBytes, true, nil, nil)
	}
	if c.q.Receipt.Work.RowsWritten > 0 {
		d.be.Fsync(2)
	}
	replyBytes, reply, done, darg := c.q.ReplyBytes, c.reply, c.done, c.darg
	d.callFree.Put(c)
	reply.Transfer(replyBytes, done, darg)
}
