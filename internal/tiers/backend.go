// Package tiers assembles the three-tier RUBiS deployment: the combined
// web+application server (Apache+PHP in the paper) and the database
// server (MySQL), running either inside VMs on a Xen host (virtualized
// experiments) or on two separate physical servers (non-virtualized
// experiments), plus the closed-loop client driver.
//
// All completion callbacks follow the sim kernel's closure-free
// (sim.Callback, arg) convention; per-request state is pooled so the
// steady-state request path schedules without heap allocations.
package tiers

import (
	"vwchar/internal/hw"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

// Backend abstracts where a tier runs. CPU demand is expressed in the
// guest-visible (virtual) cycle scale used by the interaction cost
// models; each backend translates to its own accounting.
type Backend interface {
	// SubmitCPU schedules compute; done(arg) fires when it has executed.
	SubmitCPU(cycles float64, done sim.Callback, arg any)
	// DiskIO performs storage traffic (logical bytes).
	DiskIO(bytes float64, write bool, done sim.Callback, arg any)
	// NetExternal transfers bytes to/from clients outside the testbed.
	NetExternal(bytes float64, inbound bool, done sim.Callback, arg any)
	// Fsync performs n synchronous journal flushes (write transactions).
	Fsync(n int)
	// OS exposes the instance's kernel counters.
	OS() *osmodel.OS
	// Mem exposes the instance's memory view.
	Mem() *hw.Memory
}

// VMBackend runs a tier inside a Xen guest.
type VMBackend struct {
	HV   *xen.Hypervisor
	Dom  *xen.Domain
	Peer *xen.Domain
}

// SubmitCPU implements Backend.
func (b *VMBackend) SubmitCPU(cycles float64, done sim.Callback, arg any) {
	b.Dom.CPU.Submit(cycles, done, arg)
	b.Dom.OS.NoteContext(2)
}

// DiskIO implements Backend.
func (b *VMBackend) DiskIO(bytes float64, write bool, done sim.Callback, arg any) {
	b.HV.GuestDiskIO(b.Dom, bytes, write, done, arg)
}

// NetExternal implements Backend.
func (b *VMBackend) NetExternal(bytes float64, inbound bool, done sim.Callback, arg any) {
	b.HV.GuestNetExternal(b.Dom, bytes, inbound, done, arg)
}

// NetToPeer transfers bytes to the co-resident peer guest across the
// software bridge. Inter-tier traffic normally travels a topology Path
// (VMPath wraps exactly this call); the method remains for direct
// backend use.
func (b *VMBackend) NetToPeer(bytes float64, done sim.Callback, arg any) {
	b.HV.GuestNetInterVM(b.Dom, b.Peer, bytes, done, arg)
}

// Fsync implements Backend.
func (b *VMBackend) Fsync(n int) { b.HV.GuestFsync(b.Dom, n) }

// OS implements Backend.
func (b *VMBackend) OS() *osmodel.OS { return b.Dom.OS }

// Mem implements Backend.
func (b *VMBackend) Mem() *hw.Memory { return b.Dom.Mem }

// PMParams is the physical-deployment cost translation.
type PMParams struct {
	// CycleFactor converts virtual-scale cycles into physical cycles
	// executed on the bare-metal host. Non-virtualized servers pay more
	// physical CPU per request than a guest's physical share: the full
	// per-request network stack and interrupt path runs on the host,
	// and inter-tier traffic crosses a real wire instead of dom0's
	// batched memcpy path (DESIGN.md §4).
	CycleFactor float64
	// NetCyclesPerByte is host CPU burned per network byte.
	NetCyclesPerByte float64
	// DiskReadAmp and DiskWriteAmp scale logical to physical disk bytes
	// (filesystem metadata and journaling on the host's own fs).
	DiskReadAmp, DiskWriteAmp float64
	// DiskNoiseCV adds lognormal noise per disk op; the paper observes
	// visibly higher disk variance on physical servers.
	DiskNoiseCV float64
	// FlushInterval batches buffered writes into periodic bursts.
	FlushInterval sim.Time
	// WireLatency is the one-way inter-server latency.
	WireLatency sim.Time
}

// DefaultPMParams returns the calibrated physical cost translation for
// the given tier role.
func DefaultPMParams(role string) PMParams {
	p := PMParams{
		NetCyclesPerByte: 6,
		DiskReadAmp:      1.1,
		DiskWriteAmp:     1.1,
		DiskNoiseCV:      0.85,
		FlushInterval:    6 * sim.Second,
		WireLatency:      120 * sim.Microsecond,
	}
	switch role {
	case "db":
		p.CycleFactor = 0.44
		p.DiskReadAmp = 1.3
		p.DiskWriteAmp = 1.3
	default: // web
		p.CycleFactor = 0.13
		p.DiskReadAmp = 1.2
		p.DiskWriteAmp = 1.5
	}
	return p
}

// PMBackend runs a tier directly on a physical server.
type PMBackend struct {
	K      *sim.Kernel
	Server *hw.Server
	Peer   *hw.Server
	Params PMParams
	Noise  *rng.Stream
	osinst *osmodel.OS

	bufferedWrites float64
	flusher        *sim.Ticker
	fwdFree        sim.FreeList[pmFwd]
}

// pmFwd carries one inter-server transfer across its three stages (local
// NIC send, wire latency, peer NIC receive), recycled through a
// per-backend free list instead of two nested closures per transfer.
type pmFwd struct {
	b     *PMBackend
	bytes float64
	done  sim.Callback
	darg  any
}

// NewPMBackend wires a physical backend and starts its write flusher.
func NewPMBackend(k *sim.Kernel, srv, peer *hw.Server, params PMParams, noise *rng.Stream, os *osmodel.OS) *PMBackend {
	b := &PMBackend{K: k, Server: srv, Peer: peer, Params: params, Noise: noise, osinst: os}
	b.flusher = k.Every(params.FlushInterval, params.FlushInterval, b.flush)
	return b
}

func (b *PMBackend) flush(now sim.Time) {
	if b.bufferedWrites <= 0 {
		return
	}
	burst := b.bufferedWrites
	b.bufferedWrites = 0
	b.Server.Disk.Submit(burst, true, nil, nil)
	b.osinst.NotePaging(0, burst)
}

// SubmitCPU implements Backend.
func (b *PMBackend) SubmitCPU(cycles float64, done sim.Callback, arg any) {
	b.Server.CPU.Submit(cycles*b.Params.CycleFactor, done, arg)
	b.osinst.NoteContext(2)
}

// DiskIO implements Backend. Reads go straight to the device; writes are
// buffered (page cache) and flushed in periodic bursts, which is what
// gives physical servers their higher disk variance.
func (b *PMBackend) DiskIO(bytes float64, write bool, done sim.Callback, arg any) {
	if write {
		noisy := b.Noise.LogNormalMean(bytes*b.Params.DiskWriteAmp, b.Params.DiskNoiseCV)
		b.bufferedWrites += noisy
		if done != nil {
			b.K.AfterCall(200*sim.Microsecond, done, arg) // buffered write returns fast
		}
		return
	}
	noisy := b.Noise.LogNormalMean(bytes*b.Params.DiskReadAmp, b.Params.DiskNoiseCV)
	b.Server.Disk.Submit(noisy, false, done, arg)
	b.osinst.NotePaging(noisy, 0)
	b.osinst.NoteInterrupts(1, 2)
}

// NetExternal implements Backend.
func (b *PMBackend) NetExternal(bytes float64, inbound bool, done sim.Callback, arg any) {
	b.Server.CPU.Submit(bytes*b.Params.NetCyclesPerByte, nil, nil)
	b.osinst.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	if inbound {
		b.Server.NIC.Receive(bytes, done, arg)
	} else {
		b.Server.NIC.Send(bytes, done, arg)
	}
}

// pmSent fires when the local NIC finished transmitting: start the wire
// latency leg.
func pmSent(arg any) {
	f := arg.(*pmFwd)
	f.b.K.AfterCall(f.b.Params.WireLatency, pmArrived, f)
}

// pmArrived fires when the transfer reaches the peer: charge its NIC and
// hand off the caller's completion, then recycle the forward slot.
func pmArrived(arg any) {
	f := arg.(*pmFwd)
	b := f.b
	b.Peer.NIC.Receive(f.bytes, f.done, f.darg)
	b.fwdFree.Put(f)
}

// NetToPeer transfers bytes to the peer server (PMPath wraps this).
// Both hosts' NICs and CPUs are charged; in the non-virtualized
// deployment inter-tier traffic is real wire traffic.
func (b *PMBackend) NetToPeer(bytes float64, done sim.Callback, arg any) {
	b.Server.CPU.Submit(bytes*b.Params.NetCyclesPerByte, nil, nil)
	b.Peer.CPU.Submit(bytes*b.Params.NetCyclesPerByte, nil, nil)
	b.osinst.NoteInterrupts(uint64(bytes/9000)+1, uint64(bytes/4500)+1)
	f := b.fwdFree.Get()
	f.b = b
	f.bytes = bytes
	f.done = done
	f.darg = arg
	b.Server.NIC.Send(bytes, pmSent, f)
}

// Fsync implements Backend: synchronous journal commits hit the host
// disk directly (seek-bound small writes).
func (b *PMBackend) Fsync(n int) {
	for i := 0; i < n; i++ {
		b.Server.Disk.Submit(4096, true, nil, nil)
	}
	b.osinst.NotePaging(0, float64(n)*4096)
	b.Server.CPU.Submit(float64(n)*60e3, nil, nil)
}

// OS implements Backend.
func (b *PMBackend) OS() *osmodel.OS { return b.osinst }

// Mem implements Backend.
func (b *PMBackend) Mem() *hw.Memory { return b.Server.Mem }
