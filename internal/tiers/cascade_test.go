package tiers

import (
	"testing"

	"vwchar/internal/faults"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/telemetry"
	"vwchar/internal/timeseries"
)

// TestEjectBackfillsMinActive is the autoscaler-vs-failure regression:
// when a health-check ejection would drop the active count below the
// cluster floor and parked headroom exists, a replacement boots —
// ejection cannot starve minActive.
func TestEjectBackfillsMinActive(t *testing.T) {
	c := pickCluster(LBRoundRobin, 2)
	c.state[1] = ReplicaParked
	c.activeCount, c.peakActive = 1, 1
	c.SetBackfillBoot(5 * sim.Second)

	c.Eject(0, "health check")
	if c.ActiveReplicas() != 0 {
		t.Fatalf("active after eject = %d, want 0 (backfill still booting)", c.ActiveReplicas())
	}
	if c.State(1) != ReplicaBooting {
		t.Fatalf("parked replica state = %v, want booting backfill", c.State(1))
	}
	c.k.Run(6 * sim.Second)
	if c.State(1) != ReplicaActive || c.ActiveReplicas() != 1 {
		t.Fatalf("backfill did not land: state=%v active=%d", c.State(1), c.ActiveReplicas())
	}
	backfills := 0
	for _, e := range c.Events {
		if e.Kind == "boot" && e.Reason == "eject backfill" {
			backfills++
		}
	}
	if backfills != 1 {
		t.Fatalf("boot events noted %d backfills, want 1: %+v", backfills, c.Events)
	}

	// Without headroom the ejection stands — nothing to boot — and the
	// cluster reports zero active; the LB then fast-fails.
	c2 := pickCluster(LBRoundRobin, 1)
	c2.Eject(0, "health check")
	if c2.ActiveReplicas() != 0 || c2.Booting() != 0 {
		t.Fatalf("no-headroom eject: active=%d booting=%d, want 0/0", c2.ActiveReplicas(), c2.Booting())
	}
}

// TestAutoscalerNoDoubleProvision is the other half of the satellite:
// while a scale-up is still booting, a continuing hot streak must not
// boot a second replica for the same overload — even after the
// cooldown expires (boot longer than cooldown is the danger zone).
func TestAutoscalerNoDoubleProvision(t *testing.T) {
	c := pickCluster(LBRoundRobin, 3)
	c.state[1], c.state[2] = ReplicaParked, ReplicaParked
	c.activeCount, c.peakActive = 1, 1

	tel := &telemetry.WindowSeries{
		LatencyP95: timeseries.New("latency_p95", "ms"),
		Throughput: timeseries.New("throughput", "req/s"),
	}
	a := NewAutoscaler(c, tel, AutoscalerSpec{
		SLOMillis:       100,
		ScaleUpWindows:  1,
		CooldownSeconds: 2,
		BootSeconds:     40,
	})

	// Every window is hot; sample at the 2 s collector cadence.
	now := sim.Time(0)
	for i := 0; i < 15; i++ {
		now += 2 * sim.Second
		tel.LatencyP95.Append(500)
		tel.Throughput.Append(30)
		a.OnSample(now)
	}
	// 30 s of hot windows with cooldown 2 s: without the guard this
	// boots both parked replicas; with it the second stays parked until
	// the first boot (40 s) lands.
	if got := c.Booting(); got != 1 {
		t.Fatalf("replicas booting = %d, want exactly 1 while the first boot is pending", got)
	}
	boots := 0
	for _, e := range c.Events {
		if e.Kind == "boot" {
			boots++
		}
	}
	if boots != 1 {
		t.Fatalf("boot events = %d, want 1 (no double-provision)", boots)
	}

	// Once the boot lands the guard releases: the still-hot cluster may
	// scale again.
	c.k.Run(45 * sim.Second)
	if c.ActiveReplicas() != 2 {
		t.Fatalf("first boot did not land: active=%d", c.ActiveReplicas())
	}
	now = c.k.Now() + 2*sim.Second
	tel.LatencyP95.Append(500)
	tel.Throughput.Append(30)
	a.OnSample(now)
	if got := c.Booting() + c.ActiveReplicas(); got != 3 {
		t.Fatalf("post-boot hot window did not provision: active+booting=%d, want 3", got)
	}
}

// TestHazardCrashDeterminism pins the hazard's one-draw-per-replica-
// per-window contract: the same rig produces the identical crash log
// twice, and an armed-but-idle hazard (threshold never crossed) leaves
// the serving path's outcome identical to no hazard at all.
func TestHazardCrashDeterminism(t *testing.T) {
	runOnce := func(threshold float64) (HazardStats, uint64) {
		k, drv := newStubClusterRig(t, 3, LBRoundRobin)
		fe := drv.web.(*WebCluster)
		// Single-worker replicas: any request in flight at a window
		// boundary reads as util >= 1, so a floor threshold is crossable.
		for _, r := range fe.Replicas {
			r.params.Workers = 1
		}
		h := NewHazard(k, fe, faults.HazardSpec{
			UtilThreshold: threshold, CrashProb: 0.5, MTTRSeconds: 20, MaxCrashes: 5,
		}, rng.NewSource(5).Stream("fault-hazard"))
		// Sample densely so the fast stub service is actually caught
		// mid-request; the contract under test is determinism, not the
		// production 2 s cadence.
		k.Every(10*sim.Millisecond, 10*sim.Millisecond, h.OnSample)
		drv.Start()
		k.Run(120 * sim.Second)
		return h.Stats, drv.Completed
	}
	s1, c1 := runOnce(0.5)
	s2, c2 := runOnce(0.5)
	if c1 != c2 || len(s1.Crashes) != len(s2.Crashes) {
		t.Fatalf("hazard run not deterministic: %d/%d crashes, %d/%d completed",
			len(s1.Crashes), len(s2.Crashes), c1, c2)
	}
	for i := range s1.Crashes {
		if s1.Crashes[i] != s2.Crashes[i] {
			t.Fatalf("crash %d differs: %+v vs %+v", i, s1.Crashes[i], s2.Crashes[i])
		}
	}
	if len(s1.Crashes) == 0 {
		t.Fatal("hazard never fired at a floor threshold; the determinism check is vacuous")
	}

	// Armed but never firing: the serving path is untouched.
	idle, cIdle := runOnce(1e9)
	if len(idle.Crashes) != 0 || idle.PeakRate != 0 {
		t.Fatalf("unreachable threshold still crashed: %+v", idle)
	}
	k, drv := newStubClusterRig(t, 3, LBRoundRobin)
	for _, r := range drv.web.(*WebCluster).Replicas {
		r.params.Workers = 1
	}
	drv.Start()
	k.Run(120 * sim.Second)
	if drv.Completed != cIdle {
		t.Fatalf("armed-but-idle hazard perturbed the run: %d completed vs %d without", cIdle, drv.Completed)
	}
}

// TestOverloadBrownout pins the controller's semantics on a hand-built
// cluster: the level climbs under sustained overload and falls when it
// clears, optional reads are dropped by error diffusion (writes
// never), and the queue bound fast-fails only while degraded.
func TestOverloadBrownout(t *testing.T) {
	c := pickCluster(LBRoundRobin, 2)
	for _, r := range c.Replicas {
		r.params.Workers = 4
	}
	o := NewOverload(c, faults.BrownoutSpec{EnterUtil: 0.5, ExitUtil: 0.25, DropFraction: 0.5, MaxLevel: 2, QueueBound: 6})

	// Saturate: queue depth 4 of 4 workers on both replicas.
	for _, r := range c.Replicas {
		r.active = 4
	}
	o.OnSample(0)
	o.OnSample(0)
	o.OnSample(0)
	if o.Level() != 2 {
		t.Fatalf("level after 3 hot windows = %d, want capped at 2", o.Level())
	}
	if o.Stats.DegradedWindows != 3 || o.Stats.PeakLevel != 2 {
		t.Fatalf("stats %+v, want 3 degraded windows at peak 2", o.Stats)
	}

	// At max level every optional read is dropped; writes never are.
	drops := 0
	for i := 0; i < 10; i++ {
		if o.admitDrop(&rubis.Result{}) {
			drops++
		}
	}
	if drops != 10 {
		t.Fatalf("max-level brownout dropped %d of 10 optional reads, want all", drops)
	}
	if o.admitDrop(&rubis.Result{IsWrite: true}) {
		t.Fatal("brownout dropped a write")
	}

	// Queue bound: replica 0 is over the bound while degraded.
	c.Replicas[0].queue = make([]*webRequest, 3) // depth 4+3=7 > bound 6
	if !o.boundExceeded(0) {
		t.Fatal("queue bound not enforced while degraded")
	}

	// Recovery: idle windows walk the level back down; healthy level 0
	// admits everything and ignores the bound.
	c.Replicas[0].queue = nil
	for _, r := range c.Replicas {
		r.active = 0
	}
	o.OnSample(0)
	o.OnSample(0)
	if o.Level() != 0 {
		t.Fatalf("level after 2 calm windows = %d, want 0", o.Level())
	}
	if o.admitDrop(&rubis.Result{}) {
		t.Fatal("healthy controller dropped a read")
	}
	if o.boundExceeded(0) {
		t.Fatal("queue bound applied while healthy")
	}
	// Fractional drop at level 1: error diffusion drops every other
	// optional read at DropFraction 0.5.
	for _, r := range c.Replicas {
		r.active = 4
	}
	o.OnSample(0)
	if o.Level() != 1 {
		t.Fatalf("level = %d, want 1", o.Level())
	}
	drops = 0
	for i := 0; i < 10; i++ {
		if o.admitDrop(&rubis.Result{}) {
			drops++
		}
	}
	if drops != 5 {
		t.Fatalf("error diffusion at 0.5 dropped %d of 10, want 5", drops)
	}
}

// TestCascadeDispatchZeroAlloc pins the satellite bar: the dispatch
// path with the hazard armed (ticking every window, never firing) and
// the overload controller consulted on every request allocates nothing
// per event in steady state.
func TestCascadeDispatchZeroAlloc(t *testing.T) {
	spec := faults.ResilienceSpec{
		TimeoutMillis: 1000, Retries: 2, BackoffMillis: 50, RetryBudget: 0.25,
	}
	k, drv, fe, g := newGuardedStubRig(t, 4, spec)
	h := NewHazard(k, fe, faults.HazardSpec{UtilThreshold: 1e9, CrashProb: 0.5, MTTRSeconds: 30},
		rng.NewSource(5).Stream("fault-hazard"))
	o := NewOverload(fe, faults.BrownoutSpec{EnterUtil: 1e9})
	fe.SetOverload(o)
	g.SetOverload(o)
	k.Every(2*sim.Second, 2*sim.Second, h.OnSample)
	k.Every(2*sim.Second, 2*sim.Second, o.OnSample)
	drv.Start()
	k.Run(300 * sim.Second)
	if drv.Completed == 0 {
		t.Fatal("cascade stub rig served nothing; the gate would be vacuous")
	}
	if len(h.Stats.Crashes) != 0 || o.Level() != 0 {
		t.Fatalf("hazard/brownout fired under the unreachable thresholds: %d crashes, level %d",
			len(h.Stats.Crashes), o.Level())
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if !k.Step() {
			t.Fatal("event queue drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("cascade-armed dispatch allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDispatchWithCascade is the CI allocation gate for the
// cascade-armed path (scripts/bench.sh asserts 0 allocs/op): steady-
// state event throughput with the hazard and overload controller
// configured but quiescent.
func BenchmarkDispatchWithCascade(b *testing.B) {
	spec := faults.ResilienceSpec{
		TimeoutMillis: 1000, Retries: 2, BackoffMillis: 50, RetryBudget: 0.25,
	}
	k, drv, fe, g := newGuardedStubRig(b, 4, spec)
	h := NewHazard(k, fe, faults.HazardSpec{UtilThreshold: 1e9, CrashProb: 0.5, MTTRSeconds: 30},
		rng.NewSource(5).Stream("fault-hazard"))
	o := NewOverload(fe, faults.BrownoutSpec{EnterUtil: 1e9})
	fe.SetOverload(o)
	g.SetOverload(o)
	k.Every(2*sim.Second, 2*sim.Second, h.OnSample)
	k.Every(2*sim.Second, 2*sim.Second, o.OnSample)
	drv.Start()
	k.Run(300 * sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("event queue drained")
		}
	}
}
