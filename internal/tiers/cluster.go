package tiers

import (
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

// Path carries inter-tier bytes between two specific endpoints. The
// topology precomputes one Path per (web replica, DB instance, direction)
// at assembly time, so the per-request dispatch path routes through
// plain interface calls with no allocation and no placement lookups.
type Path interface {
	// Transfer moves bytes along the path; done(arg) (optional) fires
	// when they have arrived at the destination endpoint.
	Transfer(bytes float64, done sim.Callback, arg any)
}

// PathPair is the two directions of a web-replica<->DB-instance link:
// To carries the query request toward the DB, From carries the reply
// back to the web replica.
type PathPair struct {
	To, From Path
}

// vmPath links two co-resident guests across the host's software
// bridge — exactly the transfer the pre-topology NetToPeer performed,
// which is what keeps the degenerate topology byte-identical.
type vmPath struct {
	hv       *xen.Hypervisor
	src, dst *xen.Domain
}

func (p vmPath) Transfer(bytes float64, done sim.Callback, arg any) {
	p.hv.GuestNetInterVM(p.src, p.dst, bytes, done, arg)
}

// VMPath builds the co-resident guest-to-guest path.
func VMPath(hv *xen.Hypervisor, src, dst *xen.Domain) Path {
	return vmPath{hv: hv, src: src, dst: dst}
}

// CrossWireLatency is the one-way latency between physical machines for
// guest traffic that leaves the host (same figure as the PM deployment's
// inter-server wire).
const CrossWireLatency = 120 * sim.Microsecond

// crossPath links guests on different physical machines: the bytes
// leave the source host through its NIC and dom0, cross the wire, and
// enter the destination host the same way. In-flight transfers are
// carried by pooled crossFwd slots, keeping dispatch allocation-free.
type crossPath struct {
	k        *sim.Kernel
	srcHV    *xen.Hypervisor
	dstHV    *xen.Hypervisor
	src, dst *xen.Domain
	fwdFree  sim.FreeList[crossFwd]
	// extra is fault-injected additional one-way latency (path_delay
	// degraded mode); zero in healthy operation.
	extra sim.Time
}

type crossFwd struct {
	p     *crossPath
	bytes float64
	done  sim.Callback
	darg  any
}

func (p *crossPath) Transfer(bytes float64, done sim.Callback, arg any) {
	f := p.fwdFree.Get()
	f.p = p
	f.bytes = bytes
	f.done = done
	f.darg = arg
	p.srcHV.GuestNetExternal(p.src, bytes, false, crossSent, f)
}

// crossSent fires when the bytes cleared the source host's NIC: start
// the wire leg.
func crossSent(arg any) {
	f := arg.(*crossFwd)
	f.p.k.AfterCall(CrossWireLatency+f.p.extra, crossArrived, f)
}

// crossArrived fires at the destination machine: deliver through its
// dom0 and NIC, handing the caller's completion to the inbound leg,
// then recycle the forward slot.
func crossArrived(arg any) {
	f := arg.(*crossFwd)
	p := f.p
	done, darg, bytes := f.done, f.darg, f.bytes
	p.fwdFree.Put(f)
	p.dstHV.GuestNetExternal(p.dst, bytes, true, done, darg)
}

// CrossVMPath builds the cross-machine guest-to-guest path.
func CrossVMPath(k *sim.Kernel, srcHV *xen.Hypervisor, src *xen.Domain, dstHV *xen.Hypervisor, dst *xen.Domain) Path {
	return &crossPath{k: k, srcHV: srcHV, dstHV: dstHV, src: src, dst: dst}
}

// pmPath wraps the physical deployment's inter-server wire transfer.
type pmPath struct{ be *PMBackend }

func (p pmPath) Transfer(bytes float64, done sim.Callback, arg any) {
	p.be.NetToPeer(bytes, done, arg)
}

// PMPath builds the physical inter-server path originating at be.
func PMPath(be *PMBackend) Path { return pmPath{be: be} }

// Route is per-session routing state: it remembers the session's last
// write so reads within the replication lag stay on the primary
// (read-your-writes). Both drivers embed one per client/session and
// thread a pointer through the dispatch path; nil is accepted and
// simply disables stickiness.
type Route struct {
	wrote       bool
	lastWriteAt sim.Time
	// Outcome is stamped by the serving path when a request ends
	// abnormally (timeout, shed, error); the zero value is
	// OutcomeServed, and the healthy path never writes it.
	Outcome Outcome
	// gen counts reuses of this route: the guard bumps it when a try
	// times out and the session moves on, and Reset bumps it for slot
	// reuse. A server-side request admitted under an older generation
	// is a straggler and must stop touching the route (see
	// webRequest.rtGen).
	gen uint32
}

// Reset clears the routing state for session reuse.
func (r *Route) Reset() { r.wrote = false; r.lastWriteAt = 0; r.Outcome = OutcomeServed; r.gen++ }

// generation reports the route's reuse generation; nil-safe so request
// paths without routing state (rt == nil) snapshot a stable zero.
func (r *Route) generation() uint32 {
	if r == nil {
		return 0
	}
	return r.gen
}

// DBCluster is the database tier: a primary that takes every write and
// checkpoint, plus optional read replicas that share the read fan-out.
type DBCluster struct {
	Primary  *DBServer
	Replicas []*DBServer
	// Lag is the replication lag window for read-your-writes routing.
	Lag sim.Time

	rr int
}

// NewDBCluster wires the tier. replicas may be empty (the degenerate
// single-DB deployment).
func NewDBCluster(primary *DBServer, replicas []*DBServer, lag sim.Time) *DBCluster {
	return &DBCluster{Primary: primary, Replicas: replicas, Lag: lag}
}

// server returns the instance at routing index i (0 = primary,
// 1..R = read replicas).
func (c *DBCluster) server(i int) *DBServer {
	if i == 0 {
		return c.Primary
	}
	return c.Replicas[i-1]
}

// Instances is the number of routable DB servers (primary + replicas).
func (c *DBCluster) Instances() int { return 1 + len(c.Replicas) }

// Queries sums handled calls across the primary and every replica.
func (c *DBCluster) Queries() uint64 {
	n := c.Primary.Queries
	for _, r := range c.Replicas {
		n += r.Queries
	}
	return n
}

// route picks the instance index for one query. Writes always hit the
// primary and stamp the session's route; reads go to the primary while
// the session is within the replication lag of its last write, and fan
// out round-robin across the live replicas otherwise (a crashed
// replica is skipped without disturbing the rotation counter's
// healthy-path sequence; if every replica is down the read falls back
// to the primary). With no replicas this is a constant — the
// degenerate path touches nothing.
func (c *DBCluster) route(write bool, now sim.Time, rt *Route) int {
	if len(c.Replicas) == 0 {
		return 0
	}
	if write {
		if rt != nil {
			rt.wrote = true
			rt.lastWriteAt = now
		}
		return 0
	}
	if rt != nil && rt.wrote && now-rt.lastWriteAt < c.Lag {
		return 0
	}
	n := len(c.Replicas)
	for j := 0; j < n; j++ {
		i := c.rr
		c.rr++
		if c.rr == n {
			c.rr = 0
		}
		if !c.Replicas[i].down {
			return 1 + i
		}
	}
	return 0
}

// Promote swaps read replica j in as the new primary (DB failover).
// The old primary takes the replica's slot, so routing index 1+j now
// reaches the crashed instance — callers must also swap the matching
// web-side paths (the HealthMonitor does both atomically).
func (c *DBCluster) Promote(j int) {
	c.Primary, c.Replicas[j] = c.Replicas[j], c.Primary
}

// Frontend is the surface a driver pushes requests into: the WebCluster
// implements it; tests substitute a stub to pin driver scheduling in
// isolation from the tier stack.
type Frontend interface {
	// Dispatch routes one parsed interaction to a web replica; done(arg)
	// fires when the response has been transmitted to the client. rt may
	// be nil (no session routing state).
	Dispatch(res *rubis.Result, rt *Route, done sim.Callback, arg any)
}

// LoadBalancer picks which active web replica takes the next request.
// Implementations must be deterministic and allocation-free.
type LoadBalancer interface {
	// Policy names the discipline.
	Policy() LBPolicy
	// Pick returns the index of an Active replica in c, or -1 when no
	// replica is active (every replica ejected by health checks); the
	// cluster then fast-fails the request.
	Pick(c *WebCluster) int
}

// NewLoadBalancer builds the named policy (round-robin for the zero
// value).
func NewLoadBalancer(p LBPolicy) LoadBalancer {
	switch p {
	case LBLeastInFlight:
		return &leastInFlight{}
	case LBJoinShortestQueue:
		return &joinShortestQueue{}
	default:
		return &roundRobin{}
	}
}

type roundRobin struct{ next int }

func (p *roundRobin) Policy() LBPolicy { return LBRoundRobin }

func (p *roundRobin) Pick(c *WebCluster) int {
	n := len(c.Replicas)
	for j := 0; j < n; j++ {
		i := p.next + j
		if i >= n {
			i -= n
		}
		if c.state[i] == ReplicaActive {
			p.next = i + 1
			if p.next == n {
				p.next = 0
			}
			return i
		}
	}
	return -1
}

type leastInFlight struct{}

func (leastInFlight) Policy() LBPolicy { return LBLeastInFlight }

func (leastInFlight) Pick(c *WebCluster) int {
	best, bestLoad := -1, 0
	for i, r := range c.Replicas {
		if c.state[i] != ReplicaActive {
			continue
		}
		if best < 0 || r.inflight < bestLoad {
			best, bestLoad = i, r.inflight
		}
	}
	return best
}

type joinShortestQueue struct{}

func (joinShortestQueue) Policy() LBPolicy { return LBJoinShortestQueue }

func (joinShortestQueue) Pick(c *WebCluster) int {
	best, bestLoad := -1, 0
	for i, r := range c.Replicas {
		if c.state[i] != ReplicaActive {
			continue
		}
		q := r.active + len(r.queue)
		if best < 0 || q < bestLoad {
			best, bestLoad = i, q
		}
	}
	return best
}

// ReplicaState is a web replica's lifecycle position.
type ReplicaState uint8

const (
	// ReplicaParked: provisioned (VM booted, baseline footprint) but not
	// taking traffic; the autoscaler's headroom.
	ReplicaParked ReplicaState = iota
	// ReplicaBooting: a scale-up was decided; the replica takes traffic
	// once the provisioning delay elapses.
	ReplicaBooting
	// ReplicaActive: in the load balancer's rotation.
	ReplicaActive
	// ReplicaDown: ejected by health checks after its server crashed;
	// readmitted when a later check sees it healthy.
	ReplicaDown
)

// ScaleEvent records one autoscaler/cluster transition.
type ScaleEvent struct {
	// At is when the event happened.
	At sim.Time
	// Replica is the web replica index affected.
	Replica int
	// Kind is "boot" (scale-up decided), "up" (replica active), or
	// "down" (replica drained).
	Kind string
	// Active is the active replica count after the event.
	Active int
	// Reason is the policy's explanation.
	Reason string
}

// WebCluster is the front-end tier at cluster scale: MaxWebReplicas
// provisioned web replicas, of which the active subset takes traffic
// through the load balancer. Dispatch is allocation-free on the pooled
// request path; the degenerate single-replica cluster reproduces the
// pre-topology request event sequence exactly.
type WebCluster struct {
	k *sim.Kernel
	// Replicas are the provisioned web servers, active or not.
	Replicas []*WebAppServer
	state    []ReplicaState
	lb       LoadBalancer

	activeCount int
	peakActive  int
	minActive   int

	// ovl is the brownout controller's LB-side consult: while degraded,
	// dispatches onto over-bound queues fast-fail instead of piling in.
	// nil on undegraded clusters (the default path is untouched).
	ovl *Overload
	// backfillBoot is the provisioning delay used when an ejection
	// would starve minActive and a parked replica is booted to cover.
	backfillBoot sim.Time

	// acts backs closure-free delayed activations (one slot per replica).
	acts []activation

	dispFree sim.FreeList[dispatch]

	// Events is the scale-event log, in time order.
	Events []ScaleEvent
}

type activation struct {
	c *WebCluster
	i int
}

// dispatch carries one request from the balancer decision through the
// client->replica network transfer, recycled through the cluster's
// free list.
type dispatch struct {
	r    *WebAppServer
	res  *rubis.Result
	rt   *Route
	done sim.Callback
	darg any
	free *sim.FreeList[dispatch]
}

// NewWebCluster wires the tier: the first initialActive replicas start
// active, the rest parked. The active count never drops below
// initialActive's floor of 1 (the autoscaler cannot drain the last
// replica).
func NewWebCluster(k *sim.Kernel, replicas []*WebAppServer, initialActive int, lb LoadBalancer) *WebCluster {
	if initialActive < 1 {
		initialActive = 1
	}
	if initialActive > len(replicas) {
		initialActive = len(replicas)
	}
	if lb == nil {
		lb = NewLoadBalancer(LBRoundRobin)
	}
	c := &WebCluster{
		k:           k,
		Replicas:    replicas,
		state:       make([]ReplicaState, len(replicas)),
		lb:          lb,
		activeCount: initialActive,
		peakActive:  initialActive,
		minActive:   1,
		acts:        make([]activation, len(replicas)),
	}
	for i := range replicas {
		if i < initialActive {
			c.state[i] = ReplicaActive
		}
		c.acts[i] = activation{c: c, i: i}
	}
	return c
}

// Policy reports the configured balancing discipline.
func (c *WebCluster) Policy() LBPolicy { return c.lb.Policy() }

// ActiveReplicas reports how many replicas currently take traffic.
func (c *WebCluster) ActiveReplicas() int { return c.activeCount }

// PeakActive reports the maximum concurrently active replica count.
func (c *WebCluster) PeakActive() int { return c.peakActive }

// State reports replica i's lifecycle state.
func (c *WebCluster) State(i int) ReplicaState { return c.state[i] }

// Booting reports how many replicas are mid-provisioning (the
// autoscaler's double-provision guard).
func (c *WebCluster) Booting() int {
	n := 0
	for _, st := range c.state {
		if st == ReplicaBooting {
			n++
		}
	}
	return n
}

// SetOverload wires the brownout controller consulted on dispatch;
// nil leaves the path untouched.
func (c *WebCluster) SetOverload(o *Overload) { c.ovl = o }

// SetBackfillBoot sets the provisioning delay for emergency backfill
// activations (ejection below minActive). Zero activates instantly.
func (c *WebCluster) SetBackfillBoot(boot sim.Time) { c.backfillBoot = boot }

// Served sums completed requests across replicas.
func (c *WebCluster) Served() uint64 {
	var n uint64
	for _, r := range c.Replicas {
		n += r.Served
	}
	return n
}

// Dispatch implements Frontend: pick a replica, move the request bytes
// from the client to it, and hand the request over on arrival. When no
// replica is active (all ejected), the request fast-fails with an
// error response after a connection-refused turnaround.
func (c *WebCluster) Dispatch(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	i := c.lb.Pick(c)
	if i < 0 {
		dp := c.dispFree.Get()
		dp.r = nil
		dp.res = res
		dp.rt = rt
		dp.done = done
		dp.darg = arg
		dp.free = &c.dispFree
		c.k.AfterCall(errorRespLatency, dispatchFailed, dp)
		return
	}
	if c.ovl != nil && c.ovl.boundExceeded(i) {
		// Degraded and the chosen queue is over bound: fail fast as
		// degraded rather than feeding metastable queue growth.
		dp := c.dispFree.Get()
		dp.r = nil
		dp.res = res
		dp.rt = rt
		dp.done = done
		dp.darg = arg
		dp.free = &c.dispFree
		c.k.AfterCall(shedRespLatency, dispatchDegraded, dp)
		return
	}
	r := c.Replicas[i]
	r.Dispatched++
	r.inflight++
	dp := c.dispFree.Get()
	dp.r = r
	dp.res = res
	dp.rt = rt
	dp.done = done
	dp.darg = arg
	dp.free = &c.dispFree
	r.be.NetExternal(res.RequestBytes, true, dispatchArrived, dp)
}

// dispatchArrived fires when the request bytes reached the chosen
// replica: recycle the dispatch slot and start request processing.
func dispatchArrived(arg any) {
	dp := arg.(*dispatch)
	r, res, rt, done, darg := dp.r, dp.res, dp.rt, dp.done, dp.darg
	dp.free.Put(dp)
	r.HandleRequest(res, rt, done, darg)
}

// dispatchFailed delivers the no-replica-available error response.
func dispatchFailed(arg any) {
	dp := arg.(*dispatch)
	rt, done, darg := dp.rt, dp.done, dp.darg
	dp.res = nil
	dp.rt = nil
	dp.free.Put(dp)
	if rt != nil {
		rt.Outcome = OutcomeFailed
	}
	if done != nil {
		done(darg)
	}
}

// dispatchDegraded delivers the brownout controller's over-bound
// fast-fail response.
func dispatchDegraded(arg any) {
	dp := arg.(*dispatch)
	rt, done, darg := dp.rt, dp.done, dp.darg
	dp.res = nil
	dp.rt = nil
	dp.free.Put(dp)
	if rt != nil {
		rt.Outcome = OutcomeDegraded
	}
	if done != nil {
		done(darg)
	}
}

// note appends one scale event.
func (c *WebCluster) note(at sim.Time, replica int, kind, reason string) {
	c.Events = append(c.Events, ScaleEvent{
		At: at, Replica: replica, Kind: kind, Active: c.activeCount, Reason: reason,
	})
}

// ScaleUp activates the first parked replica after the provisioning
// delay; it reports false when no headroom remains.
func (c *WebCluster) ScaleUp(boot sim.Time, reason string) bool {
	for i, st := range c.state {
		if st != ReplicaParked {
			continue
		}
		c.state[i] = ReplicaBooting
		c.note(c.k.Now(), i, "boot", reason)
		if boot <= 0 {
			c.activate(i, reason)
		} else {
			c.k.AfterCall(boot, clusterActivate, &c.acts[i])
		}
		return true
	}
	return false
}

// clusterActivate fires when a booting replica's provisioning delay
// elapsed.
func clusterActivate(arg any) {
	a := arg.(*activation)
	a.c.activate(a.i, "boot complete")
}

func (c *WebCluster) activate(i int, reason string) {
	if c.state[i] == ReplicaActive {
		return
	}
	c.state[i] = ReplicaActive
	c.activeCount++
	if c.activeCount > c.peakActive {
		c.peakActive = c.activeCount
	}
	c.note(c.k.Now(), i, "up", reason)
}

// ScaleDown drains the highest-index active replica: the balancer stops
// picking it immediately, outstanding requests finish naturally, and it
// returns to the parked pool. The last active replica never drains.
func (c *WebCluster) ScaleDown(reason string) bool {
	if c.activeCount <= c.minActive {
		return false
	}
	for i := len(c.state) - 1; i >= 0; i-- {
		if c.state[i] != ReplicaActive {
			continue
		}
		c.state[i] = ReplicaParked
		c.activeCount--
		c.note(c.k.Now(), i, "down", reason)
		return true
	}
	return false
}

// Eject removes a crashed replica from the balancer rotation (health
// check failure). When the ejection would starve minActive and parked
// headroom exists, a parked replica is booted to cover (emergency
// backfill); with no headroom the active count may still drop to zero
// and the cluster fast-fails dispatches until a replica recovers or
// boots.
func (c *WebCluster) Eject(i int, reason string) {
	if c.state[i] != ReplicaActive {
		return
	}
	c.state[i] = ReplicaDown
	c.activeCount--
	c.note(c.k.Now(), i, "eject", reason)
	if c.activeCount+c.Booting() < c.minActive {
		c.ScaleUp(c.backfillBoot, "eject backfill")
	}
}

// Readmit returns a recovered replica to the balancer rotation.
func (c *WebCluster) Readmit(i int, reason string) {
	if c.state[i] != ReplicaDown {
		return
	}
	c.state[i] = ReplicaActive
	c.activeCount++
	if c.activeCount > c.peakActive {
		c.peakActive = c.activeCount
	}
	c.note(c.k.Now(), i, "readmit", reason)
}
