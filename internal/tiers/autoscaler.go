package tiers

import (
	"vwchar/internal/sim"
	"vwchar/internal/telemetry"
)

// Autoscaler closes the characterization loop: it watches the driver's
// per-window latency telemetry as the run unfolds and activates or
// drains web replicas through the cluster. experiment.Run hooks
// OnSample onto the sysstat collector after the drivers' window
// rotation, so each decision sees the window that just closed.
//
// The reactive policy scales up after ScaleUpWindows consecutive
// windows whose p95 violated the SLO, and drains after
// ScaleDownWindows consecutive windows comfortably under it. The
// predictive policy additionally fits a least-squares trend to the
// recent p95 history and scales up when the projection
// LookaheadWindows ahead crosses the SLO — buying back the boot delay
// on ramps that the reactive policy only reacts to after the fact.
type Autoscaler struct {
	c    *WebCluster
	tel  *telemetry.WindowSeries
	spec AutoscalerSpec

	cooldown sim.Time
	boot     sim.Time

	hot, calm int
	lastOp    sim.Time
	opped     bool
}

// NewAutoscaler builds an autoscaler driving c from the driver
// telemetry tel. The spec's zero-valued knobs are defaulted.
func NewAutoscaler(c *WebCluster, tel *telemetry.WindowSeries, spec AutoscalerSpec) *Autoscaler {
	spec = spec.withDefaults()
	return &Autoscaler{
		c:        c,
		tel:      tel,
		spec:     spec,
		cooldown: sim.Seconds(spec.CooldownSeconds),
		boot:     sim.Seconds(spec.BootSeconds),
	}
}

// OnSample is the collector hook: classify the window that just closed
// and act when the streak and cooldown allow.
func (a *Autoscaler) OnSample(now sim.Time) {
	n := a.tel.LatencyP95.Len()
	if n == 0 {
		return
	}
	if a.tel.Throughput.Values[n-1] <= 0 {
		if !a.collapsed(n) {
			// Idle windows (no completions, nothing trapped in flight)
			// carry no latency signal; they break a hot streak but do
			// not count as calm either — an idle system should drain on
			// sustained quiet, which the throughput gate still allows
			// once traffic resumes at a trickle.
			a.hot = 0
			return
		}
		// Total collapse: no completions, yet demand is trapped in
		// flight or concluding abnormally. There is no p95 to compare,
		// but treating the window as quiet would reset the very
		// violation streak the detection window needs to fire during
		// the outage — count it as violating instead (composite
		// in-flight/timeout/availability signal).
		a.hot++
		a.calm = 0
	} else {
		p95 := a.tel.LatencyP95.Values[n-1]
		signal := p95
		if a.spec.Policy == AutoscalePredictive {
			if proj := a.projectP95(n); proj > signal {
				signal = proj
			}
		}
		switch {
		case signal > a.spec.SLOMillis:
			a.hot++
			a.calm = 0
		case p95 < a.spec.LowFraction*a.spec.SLOMillis:
			a.calm++
			a.hot = 0
		default:
			a.hot, a.calm = 0, 0
		}
	}
	if a.opped && now-a.lastOp < a.cooldown {
		return
	}
	if a.hot >= a.spec.ScaleUpWindows {
		// Double-provision guard: while a replica is still booting the
		// hot signal is already being acted on — hold the streak and
		// re-decide once it lands, instead of booting a second replica
		// for the same overload.
		if a.c.Booting() > 0 {
			return
		}
		if a.c.ScaleUp(a.boot, "p95 over SLO") {
			a.lastOp, a.opped = now, true
		}
		a.hot = 0
	} else if a.calm >= a.spec.ScaleDownWindows {
		if a.c.ScaleDown("p95 well under SLO") {
			a.lastOp, a.opped = now, true
		}
		a.calm = 0
	}
}

// collapsed distinguishes a genuinely idle zero-throughput window from
// total collapse, using whichever live signals the run carries:
// requests trapped in flight at the boundary, abnormal conclusions
// (timeouts/failures) within the window, or availability below one.
func (a *Autoscaler) collapsed(n int) bool {
	if a.tel.Inflight != nil && n <= a.tel.Inflight.Len() && a.tel.Inflight.Values[n-1] > 0 {
		return true
	}
	if a.tel.Timeouts != nil && n <= a.tel.Timeouts.Len() &&
		a.tel.Timeouts.Values[n-1]+a.tel.Failures.Values[n-1] > 0 {
		return true
	}
	if a.tel.Availability != nil && n <= a.tel.Availability.Len() && a.tel.Availability.Values[n-1] < 1 {
		return true
	}
	return false
}

// projectP95 extrapolates the p95 series LookaheadWindows ahead with an
// ordinary least-squares line over the trailing fit window. Short
// histories fall back to the last observation.
func (a *Autoscaler) projectP95(n int) float64 {
	fit := 2 * a.spec.LookaheadWindows
	if fit < 4 {
		fit = 4
	}
	if n < fit {
		return a.tel.LatencyP95.Values[n-1]
	}
	vals := a.tel.LatencyP95.Values[n-fit : n]
	var sx, sy, sxx, sxy float64
	for i, v := range vals {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	fn := float64(fit)
	den := fn*sxx - sx*sx
	if den == 0 {
		return vals[fit-1]
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn
	return intercept + slope*float64(fit-1+a.spec.LookaheadWindows)
}
