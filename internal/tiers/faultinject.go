package tiers

import (
	"vwchar/internal/faults"
	"vwchar/internal/sim"
)

// Injector applies a pre-expanded fault timeline to a live cluster:
// crashing and restoring web replicas, DB instances, and whole
// machines (via the topology's placement map), and toggling degraded
// modes (slow node, lag spikes, cross-machine path delays). The
// timeline is expanded before the run starts, so injection consumes no
// randomness and stays byte-identical at any worker count.
type Injector struct {
	k   *sim.Kernel
	web *WebCluster
	dbc *DBCluster
	// dbs freezes instance identity at construction ([primary,
	// replicas...] in topology order) so fault targets keep meaning
	// across failover promotions.
	dbs     []*DBServer
	topo    Topology
	baseLag sim.Time

	// cacheSrv/queueSrv, when wired, receive CacheDown/Up and
	// QueueDown/Up events (single-instance tiers).
	cacheSrv *CacheServer
	queueSrv *QueueServer

	events []faults.Event
	idx    int
}

// SetAuxTiers wires the cache and queue nodes into fault injection;
// nil leaves the corresponding events inert.
func (inj *Injector) SetAuxTiers(c *CacheServer, q *QueueServer) {
	inj.cacheSrv = c
	inj.queueSrv = q
}

// NewInjector wires the injector; call Start to arm the timeline.
// events must be sorted by time (faults.Schedule.Expand guarantees it).
func NewInjector(k *sim.Kernel, web *WebCluster, dbc *DBCluster, topo Topology, events []faults.Event) *Injector {
	dbs := make([]*DBServer, 0, dbc.Instances())
	dbs = append(dbs, dbc.Primary)
	dbs = append(dbs, dbc.Replicas...)
	return &Injector{
		k:       k,
		web:     web,
		dbc:     dbc,
		dbs:     dbs,
		topo:    topo,
		baseLag: dbc.Lag,
		events:  events,
	}
}

// Start arms the first timeline event.
func (inj *Injector) Start() {
	if len(inj.events) > 0 {
		inj.k.AtCall(inj.events[0].At, injectorFire, inj)
	}
}

// injectorFire applies every event due now, then re-arms for the next.
func injectorFire(arg any) {
	inj := arg.(*Injector)
	now := inj.k.Now()
	for inj.idx < len(inj.events) && inj.events[inj.idx].At <= now {
		inj.apply(inj.events[inj.idx])
		inj.idx++
	}
	if inj.idx < len(inj.events) {
		inj.k.AtCall(inj.events[inj.idx].At, injectorFire, inj)
	}
}

func (inj *Injector) apply(e faults.Event) {
	switch e.Kind {
	case faults.WebDown:
		if e.Target < len(inj.web.Replicas) {
			inj.web.Replicas[e.Target].crash()
		}
	case faults.WebUp:
		if e.Target < len(inj.web.Replicas) {
			inj.web.Replicas[e.Target].restore()
		}
	case faults.DBDown:
		if e.Target < len(inj.dbs) {
			inj.dbs[e.Target].crash()
		}
	case faults.DBUp:
		if e.Target < len(inj.dbs) {
			inj.dbs[e.Target].restore()
		}
	case faults.MachineDown:
		inj.eachOnMachine(e.Target, func(w *WebAppServer) { w.crash() }, func(d *DBServer) { d.crash() })
	case faults.MachineUp:
		inj.eachOnMachine(e.Target, func(w *WebAppServer) { w.restore() }, func(d *DBServer) { d.restore() })
	case faults.SlowStart:
		inj.eachOnMachine(e.Target,
			func(w *WebAppServer) { w.slow = e.Value },
			func(d *DBServer) { d.slow = e.Value })
	case faults.SlowEnd:
		inj.eachOnMachine(e.Target,
			func(w *WebAppServer) { w.slow = 0 },
			func(d *DBServer) { d.slow = 0 })
	case faults.LagStart:
		inj.dbc.Lag = inj.baseLag + sim.Seconds(e.Value)
	case faults.LagEnd:
		inj.dbc.Lag = inj.baseLag
	case faults.DelayStart:
		inj.setPathDelay(sim.Seconds(e.Value))
	case faults.DelayEnd:
		inj.setPathDelay(0)
	case faults.CacheDown:
		if inj.cacheSrv != nil {
			inj.cacheSrv.crash()
		}
	case faults.CacheUp:
		if inj.cacheSrv != nil {
			inj.cacheSrv.restore()
		}
	case faults.QueueDown:
		if inj.queueSrv != nil {
			inj.queueSrv.crash()
		}
	case faults.QueueUp:
		if inj.queueSrv != nil {
			inj.queueSrv.restore()
		}
	}
}

// eachOnMachine visits every server placed on machine m. VM order
// follows Topology.MachineFor: web replicas 0..MaxWebReplicas-1, then
// the DB primary, then read replicas.
func (inj *Injector) eachOnMachine(m int, webFn func(*WebAppServer), dbFn func(*DBServer)) {
	for i, w := range inj.web.Replicas {
		if inj.topo.MachineFor(i) == m {
			webFn(w)
		}
	}
	for j, d := range inj.dbs {
		if inj.topo.MachineFor(inj.topo.MaxWebReplicas+j) == m {
			dbFn(d)
		}
	}
}

// setPathDelay adds extra one-way latency to every cross-machine path
// in the cluster (packet-loss-like degradation).
func (inj *Injector) setPathDelay(extra sim.Time) {
	for _, w := range inj.web.Replicas {
		for _, pp := range w.dbPaths {
			if cp, ok := pp.To.(*crossPath); ok {
				cp.extra = extra
			}
			if cp, ok := pp.From.(*crossPath); ok {
				cp.extra = extra
			}
		}
	}
}
