package tiers

import (
	"vwchar/internal/cachetier"
	"vwchar/internal/sim"
)

// CacheParams tunes the cache node's service costs. The node is cheap
// by design — a memcached GET is ~10µs of CPU plus the wire — which is
// exactly why the hit path beats the DB chain.
type CacheParams struct {
	// LookupCycles is the per-operation CPU (hash, LRU splice, protocol).
	LookupCycles float64
	// PerByteCycles is the additional CPU per payload byte served.
	PerByteCycles float64
	// GetRequestBytes is the GET request wire size (key + protocol).
	GetRequestBytes float64
	// MissReplyBytes is the miss/END marker reply wire size.
	MissReplyBytes float64
	// SetOverheadBytes is the SET protocol overhead beyond the payload.
	SetOverheadBytes float64
	// InvalBytes is a DELETE request's wire size.
	InvalBytes float64
	// MemBase is the daemon's resident base (slab metadata, hash table).
	MemBase float64
}

// DefaultCacheParams returns the calibrated memcached-like node.
func DefaultCacheParams() CacheParams {
	return CacheParams{
		LookupCycles:     24e3,
		PerByteCycles:    2.2,
		GetRequestBytes:  46,
		MissReplyBytes:   24,
		SetOverheadBytes: 40,
		InvalBytes:       38,
		MemBase:          64e6,
	}
}

// CacheGetResult is the caller-owned out-param a GET resolves into: the
// server writes the outcome and payload size, then replies along the
// wire, so the pooled web request needs no per-GET allocation.
type CacheGetResult struct {
	Outcome cachetier.Outcome
	Bytes   float64
}

// CacheServer is the VM-backed cache node: a deterministic
// cachetier.Store wrapped in wire transfers, CPU costs, lease-wait
// parking, and web-tier crash semantics (a crash is a cold restart —
// the store flushes and every parked waiter resolves as a miss).
type CacheServer struct {
	k      *sim.Kernel
	be     Backend
	store  *cachetier.Store
	params CacheParams

	leases       bool
	leaseTimeout sim.Time

	opFree   sim.FreeList[cacheOp]
	fillFree sim.FreeList[cacheFill]
	// waiters holds lease-parked GETs in arrival order; per-key wakes
	// and crash flushes both walk it front to back, so resolution order
	// is deterministic (map iteration never decides event order).
	waiters  []*cacheWaiter
	waitFree sim.FreeList[cacheWaiter]

	down  bool
	epoch uint32

	// Gets/Sets/Invals count operations; Hits/Misses count web-visible
	// GET outcomes (a lease wait resolves into one or the other).
	Gets, Sets, Invals uint64
	Hits, Misses       uint64
	// LeaseTimeouts counts waiters that gave up and fell through to the
	// DB; ColdRestarts counts crash-induced store flushes.
	LeaseTimeouts uint64
	ColdRestarts  uint64
	// KindHits/KindMisses attribute web-visible outcomes by the cached
	// interaction's dense kind index.
	KindHits, KindMisses [256]uint64
}

// cacheOp is the pooled per-operation state for a resolving GET.
type cacheOp struct {
	c     *CacheServer
	key   cachetier.Key
	bytes float64
	out   *CacheGetResult
	reply Path
	done  sim.Callback
	darg  any
	epoch uint32
	hit   bool
}

// cacheWaiter parks a GET behind a fill lease until the fill lands, the
// lease times out, or the node crashes.
type cacheWaiter struct {
	c     *CacheServer
	key   cachetier.Key
	out   *CacheGetResult
	reply Path
	done  sim.Callback
	darg  any
	timer sim.Event
}

// cacheFill is the pooled carrier for fire-and-forget SET/DELETE
// traffic from a web replica (the replica's request completes
// independently, so it cannot lend its own state).
type cacheFill struct {
	c     *CacheServer
	key   cachetier.Key
	bytes float64
	inval bool
}

// NewCacheServer builds the node on a backend.
func NewCacheServer(k *sim.Kernel, be Backend, spec cachetier.CacheSpec, params CacheParams) *CacheServer {
	spec = spec.WithDefaults()
	c := &CacheServer{
		k:            k,
		be:           be,
		store:        cachetier.NewStore(spec),
		params:       params,
		leases:       spec.Leases,
		leaseTimeout: sim.Time(spec.LeaseTimeoutMillis * float64(sim.Millisecond)),
	}
	be.Mem().Set("memcached", params.MemBase)
	be.OS().Fork(4)
	return c
}

// Store exposes the underlying deterministic store (tests, analysis).
func (c *CacheServer) Store() *cachetier.Store { return c.store }

// Down reports whether the node is crashed.
func (c *CacheServer) Down() bool { return c.down }

// HandleGet resolves one GET: the outcome lands in out, the reply bytes
// travel back along reply, and done(arg) fires when they arrive. A
// lease-parked GET resolves later — as a hit when the fill lands, or as
// a miss on lease timeout or node crash — but done always fires exactly
// once.
func (c *CacheServer) HandleGet(key cachetier.Key, out *CacheGetResult, reply Path, done sim.Callback, arg any) {
	c.Gets++
	if c.down {
		// Connection refused: the web replica falls through to the DB.
		out.Outcome = cachetier.Miss
		c.Misses++
		c.KindMisses[key.Kind]++
		reply.Transfer(c.params.MissReplyBytes, done, arg)
		return
	}
	res, bytes := c.store.Lookup(c.k.Now(), key)
	if res == cachetier.WaitLease {
		w := c.waitFree.Get()
		w.c = c
		w.key = key
		w.out = out
		w.reply = reply
		w.done = done
		w.darg = arg
		w.timer = c.k.AfterCall(c.leaseTimeout, cacheWaitTimeout, w)
		c.waiters = append(c.waiters, w)
		return
	}
	c.resolve(key, res == cachetier.Hit, bytes, out, reply, done, arg)
}

// resolve runs the op's CPU stage and sends the reply.
func (c *CacheServer) resolve(key cachetier.Key, hit bool, bytes float64, out *CacheGetResult, reply Path, done sim.Callback, arg any) {
	op := c.opFree.Get()
	op.c = c
	op.key = key
	op.bytes = bytes
	op.out = out
	op.reply = reply
	op.done = done
	op.darg = arg
	op.epoch = c.epoch
	op.hit = hit
	os := c.be.OS()
	os.RunQueue++
	os.NoteContext(2)
	cycles := c.params.LookupCycles
	if hit {
		cycles += bytes * c.params.PerByteCycles
	}
	c.be.SubmitCPU(cycles, cacheOpDone, op)
}

// cacheOpDone fires after the op's CPU stage: stamp the outcome and put
// the reply on the wire.
func cacheOpDone(arg any) {
	op := arg.(*cacheOp)
	c := op.c
	if !c.down && c.epoch == op.epoch {
		os := c.be.OS()
		if os.RunQueue > 0 {
			os.RunQueue--
		}
	}
	hit := op.hit && !c.down && c.epoch == op.epoch
	out, reply, done, darg := op.out, op.reply, op.done, op.darg
	key, bytes := op.key, op.bytes
	c.opFree.Put(op)
	if hit {
		out.Outcome = cachetier.Hit
		out.Bytes = bytes
		c.Hits++
		c.KindHits[key.Kind]++
		reply.Transfer(bytes+c.params.MissReplyBytes, done, darg)
		return
	}
	out.Outcome = cachetier.Miss
	c.Misses++
	c.KindMisses[key.Kind]++
	reply.Transfer(c.params.MissReplyBytes, done, darg)
}

// cacheWaitTimeout fires when a parked GET's lease aged out: re-decide
// against the store — usually becoming the new filler (lease takeover),
// occasionally finding the fill just landed, or re-parking if another
// timed-out waiter took the lease first this same instant.
func cacheWaitTimeout(arg any) {
	w := arg.(*cacheWaiter)
	c := w.c
	c.unpark(w)
	c.LeaseTimeouts++
	res, bytes := c.store.Lookup(c.k.Now(), w.key)
	if res == cachetier.WaitLease {
		w2 := c.waitFree.Get()
		*w2 = *w
		w2.timer = c.k.AfterCall(c.leaseTimeout, cacheWaitTimeout, w2)
		c.waiters = append(c.waiters, w2)
		c.waitFree.PutReset(w)
		return
	}
	key, out, reply, done, darg := w.key, w.out, w.reply, w.done, w.darg
	c.waitFree.PutReset(w)
	c.resolve(key, res == cachetier.Hit, bytes, out, reply, done, darg)
}

// unpark removes w from the waiter list (its timer is already spent or
// about to be canceled by the caller).
func (c *CacheServer) unpark(w *cacheWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// HandleSet lands a fill: populate the store, account memory, and wake
// every waiter parked on the key as a hit.
func (c *CacheServer) HandleSet(key cachetier.Key, bytes float64) {
	if c.down {
		return
	}
	c.Sets++
	c.store.Put(c.k.Now(), key, bytes)
	c.be.Mem().Set("memcached", c.params.MemBase+c.store.UsedBytes())
	c.be.SubmitCPU(c.params.LookupCycles+bytes*c.params.PerByteCycles, nil, nil)
	c.wake(key, bytes)
}

// wake resolves every waiter parked on key as a hit, in arrival order.
func (c *CacheServer) wake(key cachetier.Key, bytes float64) {
	for i := 0; i < len(c.waiters); {
		w := c.waiters[i]
		if w.key != key {
			i++
			continue
		}
		c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
		w.timer.Cancel()
		out, reply, done, darg := w.out, w.reply, w.done, w.darg
		c.waitFree.PutReset(w)
		c.resolve(key, true, bytes, out, reply, done, darg)
	}
}

// HandleInval drops a fragment on a write's invalidation message.
func (c *CacheServer) HandleInval(key cachetier.Key) {
	if c.down {
		return
	}
	c.Invals++
	if c.store.Invalidate(key) {
		c.be.Mem().Set("memcached", c.params.MemBase+c.store.UsedBytes())
	}
	c.be.SubmitCPU(c.params.LookupCycles, nil, nil)
}

// AbortFetch withdraws a failed filler's placeholder (the web replica's
// request errored mid-chain; its connection to the cache just drops).
func (c *CacheServer) AbortFetch(key cachetier.Key) {
	if c.down {
		return
	}
	c.store.AbortFetch(key)
}

// SendFill ships a fill from a web replica along its path to the node;
// fire-and-forget (the replica's request completes independently).
func (c *CacheServer) SendFill(path Path, key cachetier.Key, bytes float64) {
	f := c.fillFree.Get()
	f.c = c
	f.key = key
	f.bytes = bytes
	f.inval = false
	path.Transfer(c.params.SetOverheadBytes+bytes, cacheFillArrived, f)
}

// SendInval ships a DELETE from a web replica; fire-and-forget.
func (c *CacheServer) SendInval(path Path, key cachetier.Key) {
	f := c.fillFree.Get()
	f.c = c
	f.key = key
	f.inval = true
	path.Transfer(c.params.InvalBytes, cacheFillArrived, f)
}

// cacheFillArrived fires when SET/DELETE bytes reach the node.
func cacheFillArrived(arg any) {
	f := arg.(*cacheFill)
	c := f.c
	key, bytes, inval := f.key, f.bytes, f.inval
	c.fillFree.PutReset(f)
	if inval {
		c.HandleInval(key)
		return
	}
	c.HandleSet(key, bytes)
}

// crash takes the node down: a cache crash is a cold restart — the
// store flushes, and every parked waiter resolves as an immediate miss
// (connection reset) so its web request falls through to the DB.
func (c *CacheServer) crash() {
	if c.down {
		return
	}
	c.down = true
	c.epoch++
	c.be.OS().RunQueue = 0
	for _, w := range c.waiters {
		w.timer.Cancel()
		w.out.Outcome = cachetier.Miss
		c.Misses++
		c.KindMisses[w.key.Kind]++
		reply, done, darg := w.reply, w.done, w.darg
		c.waitFree.PutReset(w)
		reply.Transfer(c.params.MissReplyBytes, done, darg)
	}
	c.waiters = c.waiters[:0]
	c.store.Reset()
	c.be.Mem().Set("memcached", c.params.MemBase)
}

// restore brings the node back cold.
func (c *CacheServer) restore() {
	if !c.down {
		return
	}
	c.down = false
	c.ColdRestarts++
}

// CacheStats is the node's cumulative accounting for results.
type CacheStats struct {
	Gets, Hits, Misses uint64
	Sets, Invals       uint64
	Expiries           uint64
	Evictions          uint64
	Invalidations      uint64
	Stampedes          uint64
	StampedeFetches    uint64
	LeaseWaits         uint64
	LeaseTakeovers     uint64
	LeaseTimeouts      uint64
	ColdRestarts       uint64
}

// Snapshot assembles the node + store accounting.
func (c *CacheServer) Snapshot() CacheStats {
	s := c.store.Stats
	return CacheStats{
		Gets: c.Gets, Hits: c.Hits, Misses: c.Misses,
		Sets: c.Sets, Invals: c.Invals,
		Expiries:  s.Expiries,
		Evictions: s.Evictions, Invalidations: s.Invalidations,
		Stampedes: s.Stampedes, StampedeFetches: s.StampedeFetches,
		LeaseWaits: s.LeaseWaits, LeaseTakeovers: s.LeaseTakeovers,
		LeaseTimeouts: c.LeaseTimeouts, ColdRestarts: c.ColdRestarts,
	}
}

// HitRatio is web-visible hits over resolved GETs.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// KindCounts reports web-visible outcomes for one dense kind index.
func (c *CacheServer) KindCounts(kind uint8) (hits, misses uint64) {
	return c.KindHits[kind], c.KindMisses[kind]
}
