package tiers

import (
	"testing"

	"vwchar/internal/cachetier"
	"vwchar/internal/hw"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

// cacheRig extends the single-host VM rig with an optional cache node
// and write-behind queue node, each in its own guest, wired exactly as
// experiment.Run wires them.
type cacheRig struct {
	k      *sim.Kernel
	hv     *xen.Hypervisor
	web    *WebAppServer
	db     *DBServer
	cs     *CacheServer
	qs     *QueueServer
	driver *Driver
}

func newCacheRig(t testing.TB, clients int, mix rubis.Model, cache *cachetier.CacheSpec, queue *cachetier.QueueSpec) *cacheRig {
	t.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(21)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	host := hw.NewServer(k, hw.ProLiantSpec("host"))
	hv := xen.New(k, host, xen.DefaultParams())
	webDom := hv.CreateGuest("web", 2, 2<<30, 256)
	dbDom := hv.CreateGuest("db", 2, 2<<30, 256)
	webBE := &VMBackend{HV: hv, Dom: webDom, Peer: dbDom}
	dbBE := &VMBackend{HV: hv, Dom: dbDom, Peer: webDom}
	db := NewDBServer(k, dbBE, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(db, nil, 0)
	paths := []PathPair{{To: VMPath(hv, webDom, dbDom), From: VMPath(hv, dbDom, webDom)}}
	web := NewWebAppServer(k, webBE, dbc, paths, DefaultWebParams("vm"))
	rig := &cacheRig{k: k, hv: hv, web: web, db: db}
	if cache != nil {
		cacheDom := hv.CreateGuest("memcache", 2, 2<<30, 256)
		cacheBE := &VMBackend{HV: hv, Dom: cacheDom, Peer: webDom}
		rig.cs = NewCacheServer(k, cacheBE, *cache, DefaultCacheParams())
		web.SetCacheTier(rig.cs, PathPair{
			To:   VMPath(hv, webDom, cacheDom),
			From: VMPath(hv, cacheDom, webDom),
		})
	}
	if queue != nil {
		queueDom := hv.CreateGuest("wqueue", 2, 2<<30, 256)
		queueBE := &VMBackend{HV: hv, Dom: queueDom, Peer: dbDom}
		qPaths := []PathPair{{To: VMPath(hv, queueDom, dbDom), From: VMPath(hv, dbDom, queueDom)}}
		rig.qs = NewQueueServer(k, queueBE, dbc, qPaths, *queue, DefaultQueueParams())
		web.SetQueueTier(rig.qs, PathPair{
			To:   VMPath(hv, webDom, queueDom),
			From: VMPath(hv, queueDom, webDom),
		})
	}
	fe := NewWebCluster(k, []*WebAppServer{web}, 1, nil)
	rig.driver = NewDriver(k, app, mix, fe, rubis.DefaultCostParams(), clients, src)
	return rig
}

// TestCacheHitsSkipDB: with the cache tier in front, cacheable reads
// stop reaching the DB — the same workload issues measurably fewer DB
// queries than the cache-less rig, with zero interaction errors.
func TestCacheHitsSkipDB(t *testing.T) {
	bare := newCacheRig(t, 50, rubis.BrowsingMix(), nil, nil)
	bare.driver.Start()
	bare.k.Run(120 * sim.Second)

	spec := cachetier.DefaultCacheSpec()
	spec.TTLSeconds = 600 // no expiry churn inside the run
	cached := newCacheRig(t, 50, rubis.BrowsingMix(), &spec, nil)
	cached.driver.Start()
	cached.k.Run(120 * sim.Second)

	if cached.driver.Errors != 0 {
		t.Fatalf("%d interaction errors with cache tier", cached.driver.Errors)
	}
	if cached.driver.Completed < 100 {
		t.Fatalf("completed only %d requests", cached.driver.Completed)
	}
	s := cached.cs.Snapshot()
	if s.Gets == 0 || s.Hits == 0 {
		t.Fatalf("cache idle: gets %d hits %d", s.Gets, s.Hits)
	}
	if s.HitRatio() < 0.3 {
		t.Fatalf("hit ratio %.2f too low for a warm browsing cache", s.HitRatio())
	}
	if cached.db.Queries >= bare.db.Queries {
		t.Fatalf("cache did not offload the DB: %d queries with cache >= %d without",
			cached.db.Queries, bare.db.Queries)
	}
}

// TestCacheWriteInvalidation: a write-heavy mix sends DELETEs for the
// entities it mutates, so the cache never serves stale reads and the
// invalidation counters advance.
func TestCacheWriteInvalidation(t *testing.T) {
	spec := cachetier.DefaultCacheSpec()
	spec.TTLSeconds = 600
	rig := newCacheRig(t, 50, rubis.BiddingMix(), &spec, nil)
	rig.driver.Start()
	rig.k.Run(120 * sim.Second)
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors", rig.driver.Errors)
	}
	if rig.driver.WriteFraction() <= 0 {
		t.Fatal("bidding mix issued no writes")
	}
	s := rig.cs.Snapshot()
	if s.Invals == 0 {
		t.Fatal("writes never invalidated the cache")
	}
	if s.Gets == 0 || s.Sets == 0 {
		t.Fatalf("cache idle: gets %d sets %d", s.Gets, s.Sets)
	}
}

// TestCacheStampedeAndLeases drives the node's GET path directly: an
// expired hot key hit by three simultaneous readers is one
// thundering-herd episode (two redundant fetches) without leases, and
// one fetch plus two parked waiters — resolved as hits by the fill —
// with single-flight leases on.
func TestCacheStampedeAndLeases(t *testing.T) {
	build := func(leases bool, leaseMillis float64) (*sim.Kernel, *CacheServer, Path) {
		k := sim.NewKernel()
		host := hw.NewServer(k, hw.ProLiantSpec("host"))
		hv := xen.New(k, host, xen.DefaultParams())
		webDom := hv.CreateGuest("web", 2, 2<<30, 256)
		cacheDom := hv.CreateGuest("memcache", 2, 2<<30, 256)
		be := &VMBackend{HV: hv, Dom: cacheDom, Peer: webDom}
		spec := cachetier.CacheSpec{MaxEntries: 64, MaxMB: 1, TTLSeconds: 1,
			Leases: leases, LeaseTimeoutMillis: leaseMillis}
		cs := NewCacheServer(k, be, spec, DefaultCacheParams())
		return k, cs, VMPath(hv, cacheDom, webDom)
	}
	key := cachetier.Key{Kind: 2, ID: 77}

	t.Run("no-leases", func(t *testing.T) {
		k, cs, reply := build(false, 250)
		outs := make([]CacheGetResult, 4)
		resolved := 0
		count := func(any) { resolved++ }
		k.AfterCall(0, func(any) {
			cs.HandleGet(key, &outs[0], reply, func(any) {
				resolved++
				cs.HandleSet(key, 100) // the filler lands its payload
			}, nil)
		}, nil)
		// Past TTL: three readers arrive together on the expired key.
		k.AfterCall(2*sim.Second, func(any) {
			for i := 1; i <= 3; i++ {
				cs.HandleGet(key, &outs[i], reply, count, nil)
			}
		}, nil)
		k.Run(5 * sim.Second)
		if resolved != 4 {
			t.Fatalf("resolved %d gets, want 4", resolved)
		}
		for i := 1; i <= 3; i++ {
			if outs[i].Outcome != cachetier.Miss {
				t.Fatalf("herd reader %d outcome %v, want every one to miss", i, outs[i].Outcome)
			}
		}
		st := cs.Store().Stats
		if st.Stampedes != 1 || st.StampedeFetches != 2 {
			t.Fatalf("stampedes/redundant fetches = %d/%d, want 1/2", st.Stampedes, st.StampedeFetches)
		}
	})

	t.Run("leases", func(t *testing.T) {
		k, cs, reply := build(true, 250)
		outs := make([]CacheGetResult, 4)
		resolved := 0
		count := func(any) { resolved++ }
		k.AfterCall(0, func(any) {
			cs.HandleGet(key, &outs[0], reply, func(any) {
				resolved++
				cs.HandleSet(key, 100)
			}, nil)
		}, nil)
		k.AfterCall(2*sim.Second, func(any) {
			for i := 1; i <= 3; i++ {
				cs.HandleGet(key, &outs[i], reply, count, nil)
			}
			// The lease holder's refetch lands shortly after.
			k.AfterCall(20*sim.Millisecond, func(any) { cs.HandleSet(key, 100) }, nil)
		}, nil)
		k.Run(5 * sim.Second)
		if resolved != 4 {
			t.Fatalf("resolved %d gets, want 4", resolved)
		}
		if outs[1].Outcome != cachetier.Miss {
			t.Fatalf("lease holder outcome %v, want the one miss", outs[1].Outcome)
		}
		if outs[2].Outcome != cachetier.Hit || outs[3].Outcome != cachetier.Hit {
			t.Fatalf("parked waiters = %v/%v, want hits off the fill", outs[2].Outcome, outs[3].Outcome)
		}
		st := cs.Store().Stats
		if st.StampedeFetches != 0 {
			t.Fatalf("%d redundant fetches with leases, want 0", st.StampedeFetches)
		}
		if st.LeaseWaits != 2 {
			t.Fatalf("lease waits = %d, want 2", st.LeaseWaits)
		}
	})

	t.Run("lease-timeout", func(t *testing.T) {
		k, cs, reply := build(true, 20)
		var holder, waiter CacheGetResult
		resolved := 0
		k.AfterCall(0, func(any) {
			// The lease holder never fills (e.g. its DB fetch is slow);
			// the parked waiter gives up after 20 ms and falls through.
			cs.HandleGet(key, &holder, reply, func(any) {
				cs.HandleGet(key, &waiter, reply, func(any) { resolved++ }, nil)
			}, nil)
		}, nil)
		k.Run(2 * sim.Second)
		if resolved != 1 {
			t.Fatalf("waiter never resolved")
		}
		if waiter.Outcome != cachetier.Miss {
			t.Fatalf("timed-out waiter outcome %v, want miss", waiter.Outcome)
		}
		if cs.LeaseTimeouts != 1 {
			t.Fatalf("lease timeouts = %d, want 1", cs.LeaseTimeouts)
		}
	})
}

// TestCacheColdRestart: a cache crash flushes residency (the restart is
// cold) but keeps cumulative stats monotonic, and the serving path
// rides through it as misses with zero interaction errors.
func TestCacheColdRestart(t *testing.T) {
	spec := cachetier.DefaultCacheSpec()
	spec.TTLSeconds = 600
	spec.Leases = true
	rig := newCacheRig(t, 50, rubis.BrowsingMix(), &spec, nil)
	rig.driver.Start()
	rig.k.Run(60 * sim.Second)
	warm := rig.cs.Snapshot()
	if warm.Hits == 0 {
		t.Fatal("cache never warmed")
	}
	rig.cs.crash()
	if !rig.cs.Down() || rig.cs.Store().Len() != 0 {
		t.Fatal("crash must take the node down and flush the store")
	}
	rig.k.Run(65 * sim.Second)
	rig.cs.restore()
	rig.k.Run(125 * sim.Second)
	s := rig.cs.Snapshot()
	if s.ColdRestarts != 1 {
		t.Fatalf("cold restarts = %d, want 1", s.ColdRestarts)
	}
	if s.Hits <= warm.Hits {
		t.Fatal("cache never re-warmed after the cold restart")
	}
	if s.Gets < warm.Gets {
		t.Fatal("cumulative counters went backwards across the restart")
	}
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors across the cache crash", rig.driver.Errors)
	}
}

// TestQueueAbsorbsAndDrains: with write-behind on, the bidding mix's
// writes publish into the broker and the drain replays them against the
// DB, at-least-once, with zero interaction errors.
func TestQueueAbsorbsAndDrains(t *testing.T) {
	qspec := cachetier.DefaultQueueSpec()
	rig := newCacheRig(t, 50, rubis.BiddingMix(), nil, &qspec)
	rig.driver.Start()
	rig.k.Run(120 * sim.Second)
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors", rig.driver.Errors)
	}
	s := rig.qs.Snapshot()
	if s.Published == 0 {
		t.Fatal("no writes published to the broker")
	}
	if s.Drained == 0 || s.Batches == 0 {
		t.Fatalf("broker never drained: drained %d batches %d", s.Drained, s.Batches)
	}
	if s.Overflows != 0 {
		t.Fatalf("default-depth broker overflowed %d times under nominal load", s.Overflows)
	}
	if rig.db.Queries == 0 {
		t.Fatal("no queries reached the DB")
	}
}

// TestQueueOverflowFallsBack: a tiny broker that never drains inside
// the run fills up; further writes fall back to the synchronous DB
// path, so overflows are counted but no interaction fails.
func TestQueueOverflowFallsBack(t *testing.T) {
	qspec := cachetier.QueueSpec{MaxDepth: 4, BatchSize: 2, DrainEveryMillis: 60000}
	rig := newCacheRig(t, 50, rubis.BiddingMix(), nil, &qspec)
	rig.driver.Start()
	rig.k.Run(50 * sim.Second) // ends before the first 60 s drain tick
	s := rig.qs.Snapshot()
	if s.Overflows == 0 {
		t.Fatal("a depth-4 broker should have refused writes")
	}
	if s.Published == 0 || s.Published > 4 {
		t.Fatalf("published %d, want the 4 slots filled exactly once", s.Published)
	}
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors — overflow must degrade to sync writes, not fail", rig.driver.Errors)
	}
}

// TestQueueCrashRetainsBacklog: a broker crash keeps the journaled
// backlog; after restore the drain works it off.
func TestQueueCrashRetainsBacklog(t *testing.T) {
	qspec := cachetier.QueueSpec{MaxDepth: 4096, BatchSize: 64, DrainEveryMillis: 60000}
	rig := newCacheRig(t, 50, rubis.BiddingMix(), nil, &qspec)
	rig.driver.Start()
	rig.k.Run(30 * sim.Second)
	depth := rig.qs.Depth()
	if depth == 0 {
		t.Fatal("no backlog accumulated before the crash")
	}
	rig.qs.crash()
	if !rig.qs.Down() {
		t.Fatal("crash did not take the broker down")
	}
	if rig.qs.Depth() != depth {
		t.Fatalf("crash lost journaled entries: depth %d -> %d", depth, rig.qs.Depth())
	}
	rig.k.Run(35 * sim.Second)
	rig.qs.restore()
	rig.k.Run(180 * sim.Second) // crosses the 60 s drain ticks
	s := rig.qs.Snapshot()
	// The first drain tick lands at 60 s — after the crash — so every
	// drained entry proves the restored broker replayed its journal.
	if s.Drained == 0 {
		t.Fatal("backlog never drained after restore")
	}
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors across the broker crash", rig.driver.Errors)
	}
}

// warmCacheHitRig builds the steady-state rig for the 0-alloc gate.
// Like the guarded-dispatch gate it excludes the logical interaction
// layer (rubisdb row decoding allocates result rows by design) and
// measures the serving machinery itself: a pre-built cacheable result
// re-dispatched in a closed loop, so after the first fill every event
// in the kernel belongs to the web -> cache -> hit -> render chain.
// The long TTL and single key mean no expiries, evictions, or fills in
// the measured window.
func warmCacheHitRig(t testing.TB) (*sim.Kernel, *CacheServer, *uint64) {
	k := sim.NewKernel()
	src := rng.NewSource(21)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	host := hw.NewServer(k, hw.ProLiantSpec("host"))
	hv := xen.New(k, host, xen.DefaultParams())
	webDom := hv.CreateGuest("web", 2, 2<<30, 256)
	dbDom := hv.CreateGuest("db", 2, 2<<30, 256)
	cacheDom := hv.CreateGuest("memcache", 2, 2<<30, 256)
	webBE := &VMBackend{HV: hv, Dom: webDom, Peer: dbDom}
	dbBE := &VMBackend{HV: hv, Dom: dbDom, Peer: webDom}
	cacheBE := &VMBackend{HV: hv, Dom: cacheDom, Peer: webDom}
	db := NewDBServer(k, dbBE, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(db, nil, 0)
	paths := []PathPair{{To: VMPath(hv, webDom, dbDom), From: VMPath(hv, dbDom, webDom)}}
	web := NewWebAppServer(k, webBE, dbc, paths, DefaultWebParams("vm"))
	spec := cachetier.CacheSpec{MaxEntries: 64, MaxMB: 1, TTLSeconds: 3600}
	cs := NewCacheServer(k, cacheBE, spec, DefaultCacheParams())
	web.SetCacheTier(cs, PathPair{
		To:   VMPath(hv, webDom, cacheDom),
		From: VMPath(hv, cacheDom, webDom),
	})

	idx := rubis.ViewItem.Index()
	res := &rubis.Result{
		Interaction:   rubis.ViewItem,
		RequestBytes:  500,
		ResponseBytes: 8000,
		WebCycles:     2e6,
		Queries:       []rubis.QueryCost{{RequestBytes: 200, ReplyBytes: 4000}},
		Kind:          uint8(idx),
		Cacheable:     true,
		CacheKey:      rubis.CacheRef{Kind: uint8(idx), ID: 42},
	}
	served := new(uint64)
	rt := &Route{}
	rt.Reset()
	var redispatch sim.Callback
	redispatch = func(any) {
		*served++
		web.HandleRequest(res, rt, redispatch, nil)
	}
	k.AfterCall(0, redispatch, nil)
	k.Run(30 * sim.Second)
	return k, cs, served
}

// TestCacheHitDispatchZeroAlloc pins the acceptance criterion: at
// steady state the cache-hit serving path allocates nothing per event.
func TestCacheHitDispatchZeroAlloc(t *testing.T) {
	k, cs, served := warmCacheHitRig(t)
	if cs.Hits == 0 || *served < 500 {
		t.Fatalf("guard vacuous: hits %d served %d", cs.Hits, *served)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if !k.Step() {
			t.Fatal("event queue drained mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit dispatch allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkCacheHitDispatch is the CI-gated form (0 allocs/op).
func BenchmarkCacheHitDispatch(b *testing.B) {
	k, _, _ := warmCacheHitRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("event queue drained")
		}
	}
}
