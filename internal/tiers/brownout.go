package tiers

import (
	"vwchar/internal/faults"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// BrownoutStats is the overload controller's run accounting, carried
// on experiment.Result (non-nil whenever brownout was configured).
type BrownoutStats struct {
	// DegradedWindows counts telemetry windows spent at level >= 1.
	DegradedWindows int `json:"degraded_windows"`
	// PeakLevel is the highest degradation level reached.
	PeakLevel int `json:"peak_level"`
	// Dropped counts requests answered degraded: admission drops of
	// optional reads plus over-bound queue fast-fails.
	Dropped uint64 `json:"dropped"`
}

// Overload is the brownout controller: a degradation level driven by
// the cluster's mean per-replica utilization at window boundaries,
// consulted by the Guard at admission (drop optional read work first)
// and by the cluster's dispatch (fast-fail onto over-bound queues
// instead of feeding metastable queue growth). Level transitions and
// fractional drops are both deterministic — the drop fraction is
// realized by an error-diffusion accumulator, not a coin flip — so the
// controller adds no randomness to the run.
type Overload struct {
	web      *WebCluster
	enter    float64
	exit     float64
	dropFrac float64
	maxLevel int
	bound    int

	level int
	acc   float64

	Stats BrownoutStats
}

// NewOverload builds the controller for the cluster. The spec should
// already carry defaults (WithDefaults); QueueBound defaults to 4x the
// replica worker pool.
func NewOverload(web *WebCluster, spec faults.BrownoutSpec) *Overload {
	spec = spec.WithDefaults()
	bound := spec.QueueBound
	if bound == 0 && len(web.Replicas) > 0 {
		bound = 4 * web.Replicas[0].params.Workers
	}
	if bound < 0 {
		bound = 0 // disabled
	}
	return &Overload{
		web:      web,
		enter:    spec.EnterUtil,
		exit:     spec.ExitUtil,
		dropFrac: spec.DropFraction,
		maxLevel: spec.MaxLevel,
		bound:    bound,
	}
}

// Level reports the current degradation level (telemetry gauge
// source).
func (o *Overload) Level() int { return o.level }

// OnSample re-evaluates the degradation level at a window boundary:
// one step up while mean utilization is at or above EnterUtil, one
// step down while at or below ExitUtil.
func (o *Overload) OnSample(now sim.Time) {
	util := o.meanUtil()
	switch {
	case util >= o.enter:
		if o.level < o.maxLevel {
			o.level++
		}
	case util <= o.exit:
		if o.level > 0 {
			o.level--
		}
	}
	if o.level > o.Stats.PeakLevel {
		o.Stats.PeakLevel = o.level
	}
	if o.level > 0 {
		o.Stats.DegradedWindows++
	}
}

// meanUtil averages resident requests / workers over active replicas.
// With nothing active the cluster is maximally overloaded by
// definition.
func (o *Overload) meanUtil() float64 {
	var sum float64
	n := 0
	for i, r := range o.web.Replicas {
		if o.web.state[i] != ReplicaActive || r.params.Workers <= 0 {
			continue
		}
		sum += float64(r.QueueDepth()) / float64(r.params.Workers)
		n++
	}
	if n == 0 {
		return o.enter
	}
	return sum / float64(n)
}

// admitDrop decides whether to drop this request as optional work at
// the current level. Writes are never optional; level 1 drops
// DropFraction of reads via error diffusion, maxLevel drops them all.
func (o *Overload) admitDrop(res *rubis.Result) bool {
	if o.level == 0 || res == nil || res.IsWrite {
		return false
	}
	if o.level >= o.maxLevel {
		o.Stats.Dropped++
		return true
	}
	o.acc += o.dropFrac
	if o.acc >= 1 {
		o.acc--
		o.Stats.Dropped++
		return true
	}
	return false
}

// boundExceeded reports whether dispatching onto replica i would land
// on an over-bound queue while degraded (the LB-side consult).
func (o *Overload) boundExceeded(i int) bool {
	if o.level == 0 || o.bound <= 0 || i < 0 || i >= len(o.web.Replicas) {
		return false
	}
	if o.web.Replicas[i].QueueDepth() < o.bound {
		return false
	}
	o.Stats.Dropped++
	return true
}
