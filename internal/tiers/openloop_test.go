package tiers

import (
	"testing"

	"vwchar/internal/hw"
	"vwchar/internal/load"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

// newOpenVMRig assembles the VM deployment under the open-loop driver.
func newOpenVMRig(t *testing.T, spec load.Spec, seed uint64) (*vmRig, *OpenDriver) {
	t.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(seed)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	host := hw.NewServer(k, hw.ProLiantSpec("host"))
	hv := xen.New(k, host, xen.DefaultParams())
	webDom := hv.CreateGuest("web", 2, 2<<30, 256)
	dbDom := hv.CreateGuest("db", 2, 2<<30, 256)
	webBE := &VMBackend{HV: hv, Dom: webDom, Peer: dbDom}
	dbBE := &VMBackend{HV: hv, Dom: dbDom, Peer: webDom}
	db := NewDBServer(k, dbBE, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(db, nil, 0)
	paths := []PathPair{{To: VMPath(hv, webDom, dbDom), From: VMPath(hv, dbDom, webDom)}}
	web := NewWebAppServer(k, webBE, dbc, paths, DefaultWebParams("vm"))
	fe := NewWebCluster(k, []*WebAppServer{web}, 1, nil)
	p, err := OpenParamsFromSpec(&spec)
	if err != nil {
		t.Fatal(err)
	}
	drv := NewOpenDriver(k, app, rubis.BrowsingMix(), fe, rubis.DefaultCostParams(), p, src)
	return &vmRig{k: k, hv: hv, app: app, web: web, db: db}, drv
}

// TestOpenLoopServesRequests drives the full VM stack with Poisson
// arrivals and checks the session accounting holds together.
func TestOpenLoopServesRequests(t *testing.T) {
	spec := load.Spec{Kind: load.Poisson, Rate: 2, SessionMean: 6}
	rig, drv := newOpenVMRig(t, spec, 21)
	drv.Start()
	rig.k.Run(120 * sim.Second)

	s := drv.Sessions
	if s.Offered == 0 || s.Started != s.Offered {
		t.Fatalf("with no ramp every arrival is admitted: %+v", s)
	}
	// ~240 expected; Poisson spread makes 150 a safe floor.
	if s.Started < 150 {
		t.Fatalf("only %d sessions started", s.Started)
	}
	if drv.Completed < 4*s.Started/2 {
		t.Fatalf("completed %d interactions over %d sessions; sessions are too short", drv.Completed, s.Started)
	}
	if drv.Errors != 0 {
		t.Fatalf("%d interaction errors", drv.Errors)
	}
	if rig.web.Served != drv.Completed {
		t.Fatalf("web served %d != driver completed %d", rig.web.Served, drv.Completed)
	}
	if s.Abandoned != 0 {
		t.Fatalf("no SLO configured, yet %d sessions abandoned", s.Abandoned)
	}
	ended := s.Finished + s.Abandoned
	if got := int(s.Started-ended) - drv.ActiveSessions(); got != 0 {
		t.Fatalf("session ledger off by %d: %+v active=%d", got, s, drv.ActiveSessions())
	}
	if s.PeakActive <= 0 || s.PeakActive > int(s.Started) {
		t.Fatalf("peak %d out of range", s.PeakActive)
	}
	if drv.MeanResponseTime() <= 0 {
		t.Fatal("no response times recorded")
	}
}

// TestOpenLoopAbandonment pins that an unreachable SLO ends every
// multi-interaction session after its first response.
func TestOpenLoopAbandonment(t *testing.T) {
	spec := load.Spec{Kind: load.Poisson, Rate: 2, SessionMean: 8,
		AbandonAfterSeconds: 1e-9} // every real response violates it
	_, drv := newOpenVMRig(t, spec, 33)
	drv.Start()
	drv.k.Run(90 * sim.Second)

	s := drv.Sessions
	if s.Abandoned == 0 {
		t.Fatal("no sessions abandoned under an unreachable SLO")
	}
	// Sessions of drawn length 1 finish; everything else abandons on
	// the first response, so completed interactions track ended
	// sessions one-to-one.
	if got, want := drv.Completed, uint64(s.Finished+s.Abandoned); got != want {
		t.Fatalf("completed %d interactions, want %d (one per ended session)", got, want)
	}
	if s.Abandoned < 3*s.Finished {
		t.Fatalf("geometric mean 8 should abandon most sessions: %+v", s)
	}
}

// TestOpenLoopRampThins pins ramp-in: with the ramp spanning the whole
// run, a prefix of arrivals is thinned away.
func TestOpenLoopRampThins(t *testing.T) {
	spec := load.Spec{Kind: load.Poisson, Rate: 3, SessionMean: 3, RampSeconds: 120}
	_, drv := newOpenVMRig(t, spec, 44)
	drv.Start()
	drv.k.Run(120 * sim.Second)

	s := drv.Sessions
	if s.Started >= s.Offered {
		t.Fatalf("ramp thinned nothing: %+v", s)
	}
	// A linear 0->1 ramp admits about half the arrivals.
	frac := float64(s.Started) / float64(s.Offered)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("ramp admitted %.0f%% of arrivals, want ~50%%", frac*100)
	}
}

// TestOpenLoopDeterministic pins that identical (spec, seed) pairs
// replay identically through the full stack.
func TestOpenLoopDeterministic(t *testing.T) {
	spec := load.Spec{Kind: load.Bursty, Rate: 1.5, BurstFactor: 5,
		BaseDwell: 30, BurstDwell: 10, SessionMean: 5}
	run := func() (SessionStats, uint64, float64) {
		_, drv := newOpenVMRig(t, spec, 55)
		drv.Start()
		drv.k.Run(90 * sim.Second)
		return drv.Sessions, drv.Completed, drv.MeanResponseTime()
	}
	s1, c1, m1 := run()
	s2, c2, m2 := run()
	if s1 != s2 || c1 != c2 || m1 != m2 {
		t.Fatalf("replay diverged: %+v/%d/%v vs %+v/%d/%v", s1, c1, m1, s2, c2, m2)
	}
}

// --- zero-alloc guard ---------------------------------------------------

// staticModel always serves the static Home page, keeping the app layer
// out of the storage engine so the guard isolates driver scheduling.
type staticModel struct{}

func (staticModel) MixName() string               { return "static" }
func (staticModel) StartState() rubis.Interaction { return rubis.Home }
func (staticModel) NextInteraction(cur rubis.Interaction, r *rng.Stream) rubis.Interaction {
	return rubis.Home
}
func (staticModel) ThinkSeconds(r *rng.Stream) float64 { return r.Exp(0.5) }

// nullBackend satisfies Backend with pure-delay completions.
type nullBackend struct {
	k   *sim.Kernel
	os  *osmodel.OS
	mem *hw.Memory
}

func (b *nullBackend) SubmitCPU(cycles float64, done sim.Callback, arg any) {
	if done != nil {
		b.k.AfterCall(10*sim.Microsecond, done, arg)
	}
}
func (b *nullBackend) DiskIO(bytes float64, write bool, done sim.Callback, arg any) {
	if done != nil {
		b.k.AfterCall(50*sim.Microsecond, done, arg)
	}
}
func (b *nullBackend) NetExternal(bytes float64, inbound bool, done sim.Callback, arg any) {
	if done != nil {
		b.k.AfterCall(20*sim.Microsecond, done, arg)
	}
}
func (b *nullBackend) NetToPeer(bytes float64, done sim.Callback, arg any) {
	if done != nil {
		b.k.AfterCall(20*sim.Microsecond, done, arg)
	}
}
func (b *nullBackend) Fsync(n int)     {}
func (b *nullBackend) OS() *osmodel.OS { return b.os }
func (b *nullBackend) Mem() *hw.Memory { return b.mem }

// nullFrontend responds to every request after a fixed service delay.
type nullFrontend struct {
	k  *sim.Kernel
	be Backend
}

func (f *nullFrontend) Dispatch(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	f.k.AfterCall(2*sim.Millisecond, done, arg)
}

// TestOpenLoopSchedulingZeroAlloc pins the acceptance bar: with the
// storage engine stubbed out (static pages, null web tier), the whole
// open-loop loop — arrival re-arm, session admission and recycling,
// think scheduling, response handling — runs steady state at zero
// allocations per event. The real stack adds engine work on top; the
// driver itself never allocates.
func TestOpenLoopSchedulingZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	src := rng.NewSource(77)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	srv := hw.NewServer(k, hw.ProLiantSpec("stub"))
	be := &nullBackend{k: k, os: osmodel.New("stub", srv.Mem, 10), mem: srv.Mem}
	fe := &nullFrontend{k: k, be: be}
	spec := load.Spec{Kind: load.Bursty, Rate: 20, BurstFactor: 4,
		BaseDwell: 30, BurstDwell: 10, SessionMean: 8, RampSeconds: 5}
	p, err := OpenParamsFromSpec(&spec)
	if err != nil {
		t.Fatal(err)
	}
	drv := NewOpenDriver(k, app, staticModel{}, fe, rubis.DefaultCostParams(), p, src)
	drv.Start()
	// Warm: reach steady state so the session free list and event pool
	// have seen the peak concurrency. Deterministic, so no flakiness.
	k.Run(300 * sim.Second)
	if drv.Completed == 0 || drv.Sessions.Finished == 0 {
		t.Fatal("stub rig served nothing; the guard would be vacuous")
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if !k.Step() {
			t.Fatal("event queue drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("open-loop steady-state scheduling allocates %v allocs/op, want 0", allocs)
	}
}
