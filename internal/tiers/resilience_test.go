package tiers

import (
	"testing"

	"vwchar/internal/faults"
	"vwchar/internal/hw"
	"vwchar/internal/load"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// fakeFE is a controllable Frontend: every dispatch responds after
// delay, stamping OutcomeFailed when fail says so.
type fakeFE struct {
	k     *sim.Kernel
	delay sim.Time
	fail  func(call int) bool
	calls int
}

func (f *fakeFE) Dispatch(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	f.calls++
	if f.fail != nil && f.fail(f.calls) && rt != nil {
		rt.Outcome = OutcomeFailed
	}
	d := f.delay
	if d <= 0 {
		d = sim.Millisecond
	}
	f.k.AfterCall(d, done, arg)
}

func countDone(arg any) { *(arg.(*int))++ }

func newGuard(k *sim.Kernel, fe Frontend, spec faults.ResilienceSpec) *Guard {
	return NewGuard(k, fe, spec, rng.NewSource(1).Stream("jitter"))
}

// TestGuardTimeoutExhaustsRetries pins the timeout path: a black-holed
// backend times out the initial try and both retries, the request ends
// OutcomeTimedOut, and the client callback fires exactly once even
// after the stale responses eventually arrive.
func TestGuardTimeoutExhaustsRetries(t *testing.T) {
	k := sim.NewKernel()
	fe := &fakeFE{k: k, delay: 5 * sim.Second}
	g := newGuard(k, fe, faults.ResilienceSpec{TimeoutMillis: 100, Retries: 2, BackoffMillis: 10, RetryBudget: 100})
	var res rubis.Result
	var rt Route
	rt.Reset()
	n := 0
	g.Dispatch(&res, &rt, countDone, &n)
	k.Run(30 * sim.Second)
	if n != 1 {
		t.Fatalf("done fired %d times, want exactly once", n)
	}
	if rt.Outcome != OutcomeTimedOut {
		t.Fatalf("outcome %v, want timed-out", rt.Outcome)
	}
	if fe.calls != 3 {
		t.Fatalf("backend saw %d tries, want 1 + 2 retries", fe.calls)
	}
	if g.Stats.Timeouts != 3 || g.Stats.Retries != 2 {
		t.Fatalf("stats %+v, want 3 timeouts and 2 retries", g.Stats)
	}
}

// TestGuardRetryRecovers pins the happy retry: first try fails fast,
// second succeeds, the client sees OutcomeServed.
func TestGuardRetryRecovers(t *testing.T) {
	k := sim.NewKernel()
	fe := &fakeFE{k: k, fail: func(call int) bool { return call == 1 }}
	g := newGuard(k, fe, faults.ResilienceSpec{TimeoutMillis: 1000, Retries: 2, BackoffMillis: 10, RetryBudget: 100})
	var res rubis.Result
	var rt Route
	rt.Reset()
	n := 0
	g.Dispatch(&res, &rt, countDone, &n)
	k.Run(10 * sim.Second)
	if n != 1 || rt.Outcome != OutcomeServed {
		t.Fatalf("done=%d outcome=%v, want one served response", n, rt.Outcome)
	}
	if fe.calls != 2 || g.Stats.Retries != 1 {
		t.Fatalf("calls=%d retries=%d, want 2 and 1", fe.calls, g.Stats.Retries)
	}
}

// TestGuardRetryBudget pins the storm brake: with budget 0.1 over 10
// all-failing requests only one retry is allowed in total.
func TestGuardRetryBudget(t *testing.T) {
	k := sim.NewKernel()
	fe := &fakeFE{k: k, fail: func(int) bool { return true }}
	g := newGuard(k, fe, faults.ResilienceSpec{TimeoutMillis: 1000, Retries: 3, BackoffMillis: 10, RetryBudget: 0.1})
	n := 0
	routes := make([]Route, 10)
	results := make([]rubis.Result, 10)
	for i := range routes {
		routes[i].Reset()
		g.Dispatch(&results[i], &routes[i], countDone, &n)
	}
	k.Run(10 * sim.Second)
	if n != 10 {
		t.Fatalf("done fired %d times, want 10", n)
	}
	if g.Stats.Retries != 1 {
		t.Fatalf("budget 0.1 x 10 issued allowed %d retries, want 1", g.Stats.Retries)
	}
	if fe.calls != 11 {
		t.Fatalf("backend saw %d tries, want 10 + 1 budgeted retry", fe.calls)
	}
}

// TestGuardBreaker pins the circuit breaker: a full window of failures
// opens it, open-state requests shed without touching the backend, and
// after the open interval traffic flows again.
func TestGuardBreaker(t *testing.T) {
	k := sim.NewKernel()
	fe := &fakeFE{k: k, fail: func(int) bool { return true }}
	g := newGuard(k, fe, faults.ResilienceSpec{
		Breaker: &faults.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 4, OpenMillis: 500},
	})
	n := 0
	routes := make([]Route, 7)
	results := make([]rubis.Result, 7)
	for i := 0; i < 4; i++ {
		routes[i].Reset()
		g.Dispatch(&results[i], &routes[i], countDone, &n)
	}
	k.Run(100 * sim.Millisecond)
	if g.Stats.BreakerOpens != 1 {
		t.Fatalf("breaker opened %d times after a full failing window, want 1", g.Stats.BreakerOpens)
	}
	for i := 4; i < 6; i++ {
		routes[i].Reset()
		g.Dispatch(&results[i], &routes[i], countDone, &n)
	}
	k.Run(200 * sim.Millisecond)
	if routes[4].Outcome != OutcomeShed || routes[5].Outcome != OutcomeShed {
		t.Fatalf("open-breaker outcomes %v/%v, want shed", routes[4].Outcome, routes[5].Outcome)
	}
	if fe.calls != 4 || g.Stats.Sheds != 2 {
		t.Fatalf("calls=%d sheds=%d: shed requests must not reach the backend", fe.calls, g.Stats.Sheds)
	}
	// Past the open interval the breaker probes again.
	k.Run(700 * sim.Millisecond)
	routes[6].Reset()
	g.Dispatch(&results[6], &routes[6], countDone, &n)
	k.Run(sim.Second)
	if fe.calls != 5 {
		t.Fatalf("post-open request did not reach the backend (calls=%d)", fe.calls)
	}
	if n != 7 {
		t.Fatalf("done fired %d times, want 7", n)
	}
}

// TestClusterFastFailWithNoActiveReplica pins the LB's -1 path: with
// every replica ejected a dispatch fails fast with OutcomeFailed
// instead of hanging.
func TestClusterFastFailWithNoActiveReplica(t *testing.T) {
	k, drv := newStubClusterRig(t, 1, LBRoundRobin)
	fe := drv.web.(*WebCluster)
	fe.Replicas[0].crash()
	fe.Eject(0, "test")
	var res rubis.Result
	var rt Route
	rt.Reset()
	n := 0
	fe.Dispatch(&res, &rt, countDone, &n)
	k.Run(sim.Second)
	if n != 1 || rt.Outcome != OutcomeFailed {
		t.Fatalf("done=%d outcome=%v, want one fast failure", n, rt.Outcome)
	}
}

// TestHealthMonitorEjectReadmit pins ejection after the configured
// number of consecutive failed checks and readmission on recovery.
func TestHealthMonitorEjectReadmit(t *testing.T) {
	k, drv := newStubClusterRig(t, 3, LBRoundRobin)
	fe := drv.web.(*WebCluster)
	hm := NewHealthMonitor(k, fe, nil, faults.ResilienceSpec{HealthEverySeconds: 1, EjectAfterChecks: 2})
	hm.Start()
	drv.Start()
	// Crash off the tick grid so each subsequent Run horizon contains a
	// known number of health checks.
	k.Run(5300 * sim.Millisecond)
	fe.Replicas[1].crash()
	k.Run(6500 * sim.Millisecond)
	if fe.state[1] != ReplicaActive {
		t.Fatalf("replica 1 state %v one check after crash, want still active (EjectAfterChecks=2)", fe.state[1])
	}
	k.Run(10 * sim.Second)
	if fe.state[1] != ReplicaDown || fe.activeCount != 2 {
		t.Fatalf("replica 1 not ejected: state %v, active %d", fe.state[1], fe.activeCount)
	}
	fe.Replicas[1].restore()
	k.Run(15 * sim.Second)
	if fe.state[1] != ReplicaActive || fe.activeCount != 3 {
		t.Fatalf("recovered replica not readmitted: state %v, active %d", fe.state[1], fe.activeCount)
	}
}

// taggedPath is a stub path whose identity survives comparison, so the
// failover test can verify the web-side path swap.
type taggedPath struct {
	k  *sim.Kernel
	id int
}

func (p taggedPath) Transfer(bytes float64, done sim.Callback, arg any) {
	if done != nil {
		p.k.AfterCall(20*sim.Microsecond, done, arg)
	}
}

// TestFailoverPromotion pins DB primary failover: the monitor waits out
// the detection window, promotes the first healthy replica, swaps the
// web-side paths, and read-your-writes routing keeps pointing at the
// live primary (index 0) across the promotion.
func TestFailoverPromotion(t *testing.T) {
	k := sim.NewKernel()
	src := rng.NewSource(9)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	srv := hw.NewServer(k, hw.ProLiantSpec("stub"))
	be := &nullBackend{k: k, os: osmodel.New("stub", srv.Mem, 10), mem: srv.Mem}
	primary := NewDBServer(k, be, app, DefaultDBParams("vm"))
	replica := NewDBServer(k, be, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(primary, []*DBServer{replica}, sim.Second)
	paths := []PathPair{
		{To: taggedPath{k, 0}, From: taggedPath{k, 0}},
		{To: taggedPath{k, 1}, From: taggedPath{k, 1}},
	}
	web := NewWebAppServer(k, be, dbc, paths, DefaultWebParams("vm"))
	fe := NewWebCluster(k, []*WebAppServer{web}, 1, NewLoadBalancer(LBRoundRobin))
	hm := NewHealthMonitor(k, fe, dbc, faults.ResilienceSpec{HealthEverySeconds: 1, FailoverDetectSeconds: 3})
	hm.Start()
	k.Run(2 * sim.Second)
	primary.crash()
	k.Run(20 * sim.Second)

	if len(hm.Failovers) != 1 {
		t.Fatalf("got %d failovers, want 1", len(hm.Failovers))
	}
	f := hm.Failovers[0]
	if f.NewPrimary != 1 {
		t.Fatalf("promoted routing index %d, want 1", f.NewPrimary)
	}
	gap := f.PromotedAt - f.DetectedAt
	if gap < 3*sim.Second || gap > 5*sim.Second {
		t.Fatalf("promotion %.1fs after detection, want the 3s window (+ tick slack)", gap.Sec())
	}
	if dbc.Primary != replica || dbc.Replicas[0] != primary {
		t.Fatal("Promote did not swap the primary and replica slots")
	}
	if web.dbPaths[0].To.(taggedPath).id != 1 {
		t.Fatal("web-side path pair was not swapped with the promotion")
	}

	// Read-your-writes across the promotion: a fresh write routes to
	// index 0, and a lagged read sticks with it — which is now the
	// promoted, healthy instance.
	var rt Route
	rt.Reset()
	now := k.Now()
	if i := dbc.route(true, now, &rt); i != 0 {
		t.Fatalf("write routed to %d, want primary", i)
	}
	if i := dbc.route(false, now+500*sim.Millisecond, &rt); i != 0 {
		t.Fatalf("lagged read routed to %d, want primary", i)
	}
	if dbc.server(0).down {
		t.Fatal("routing index 0 still points at the crashed instance")
	}
}

// newGuardedStubRig is newStubClusterRig with the guard wrapped around
// the cluster: the driver's dispatches flow through timeouts, retries,
// and the optional breaker.
func newGuardedStubRig(tb testing.TB, n int, spec faults.ResilienceSpec) (*sim.Kernel, *OpenDriver, *WebCluster, *Guard) {
	tb.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(77)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		tb.Fatal(err)
	}
	srv := hw.NewServer(k, hw.ProLiantSpec("stub"))
	be := &nullBackend{k: k, os: osmodel.New("stub", srv.Mem, 10), mem: srv.Mem}
	dbc := NewDBCluster(NewDBServer(k, be, app, DefaultDBParams("vm")), nil, 0)
	webs := make([]*WebAppServer, n)
	for i := range webs {
		webs[i] = NewWebAppServer(k, be, dbc, []PathPair{{To: stubPath{k}, From: stubPath{k}}}, DefaultWebParams("vm"))
	}
	fe := NewWebCluster(k, webs, n, NewLoadBalancer(LBRoundRobin))
	g := NewGuard(k, fe, spec, src.Stream("resilience-jitter"))
	ld := load.Spec{Kind: load.Poisson, Rate: 40, SessionMean: 8}
	p, err := OpenParamsFromSpec(&ld)
	if err != nil {
		tb.Fatal(err)
	}
	drv := NewOpenDriver(k, app, staticModel{}, g, rubis.DefaultCostParams(), p, src)
	return k, drv, fe, g
}

// TestRetryStormAmplification is the retry-storm regression: against a
// permanently crashed single replica (no health monitor, so nothing
// ejects it), unbudgeted aggressive retries amplify cluster load by at
// least 2x per client request; the breaker caps the same posture well
// below that.
func TestRetryStormAmplification(t *testing.T) {
	amplification := func(brk *faults.BreakerSpec) float64 {
		spec := faults.ResilienceSpec{TimeoutMillis: 400, Retries: 4, BackoffMillis: 20, RetryBudget: 4, Breaker: brk}
		k, drv, fe, g := newGuardedStubRig(t, 1, spec)
		drv.Start()
		k.Run(60 * sim.Second)
		// Client demand is guard entries plus breaker sheds (sheds never
		// reach the cluster but are offered requests all the same).
		d0, i0 := fe.Replicas[0].Dispatched, g.issued+g.Stats.Sheds
		fe.Replicas[0].crash()
		k.Run(120 * sim.Second)
		di, ii := fe.Replicas[0].Dispatched-d0, g.issued+g.Stats.Sheds-i0
		if ii == 0 {
			t.Fatal("no requests issued during the fault window")
		}
		return float64(di) / float64(ii)
	}
	storm := amplification(nil)
	if storm < 2 {
		t.Fatalf("unbraked retry storm amplified cluster load %.2fx, want >= 2x", storm)
	}
	braked := amplification(&faults.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 32, OpenMillis: 500})
	if braked >= 2 {
		t.Fatalf("breaker left amplification at %.2fx, want < 2x", braked)
	}
	if braked >= storm {
		t.Fatalf("breaker did not reduce amplification: %.2fx vs %.2fx", braked, storm)
	}
}

// TestRequestAccountingInvariant pins the outcome split: every issued
// request ends in exactly one of served / timed-out / shed / failed,
// with in-flight making up the difference at the horizon.
func TestRequestAccountingInvariant(t *testing.T) {
	spec := faults.ResilienceSpec{TimeoutMillis: 400, Retries: 1, BackoffMillis: 20, RetryBudget: 1}
	k, drv, fe, _ := newGuardedStubRig(t, 2, spec)
	drv.Start()
	k.Run(30 * sim.Second)
	fe.Replicas[0].crash()
	k.Run(60 * sim.Second)
	fe.Replicas[0].restore()
	k.Run(90 * sim.Second)
	issued, served, timedOut, shed, failed, degraded := drv.RequestTotals()
	sum := served + timedOut + shed + failed + degraded
	if sum > issued {
		t.Fatalf("outcomes (%d) exceed issued (%d)", sum, issued)
	}
	if served == 0 || failed == 0 {
		t.Fatalf("vacuous run: served=%d failed=%d", served, failed)
	}
	if inflight := issued - sum; inflight > 32 {
		t.Fatalf("%d requests unaccounted at the horizon, want a handful in flight at most", inflight)
	}
}

// TestGuardDispatchZeroAlloc pins the satellite bar: the guarded
// dispatch path — timeout timer armed and cancelled per request,
// breaker fed, free lists cycled — allocates nothing per event when no
// fault is active.
func TestGuardDispatchZeroAlloc(t *testing.T) {
	spec := faults.ResilienceSpec{
		TimeoutMillis: 1000, Retries: 2, BackoffMillis: 50, RetryBudget: 0.25,
		Breaker: &faults.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 64, OpenMillis: 1000},
	}
	k, drv, _, g := newGuardedStubRig(t, 4, spec)
	drv.Start()
	k.Run(300 * sim.Second)
	if drv.Completed == 0 {
		t.Fatal("guarded stub cluster served nothing; the gate would be vacuous")
	}
	if g.Stats.Timeouts != 0 {
		t.Fatalf("healthy rig recorded %d timeouts; the no-fault premise is broken", g.Stats.Timeouts)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if !k.Step() {
			t.Fatal("event queue drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded steady-state dispatch allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDispatchWithFaults is the CI allocation gate for the
// guarded path (scripts/bench.sh asserts 0 allocs/op): steady-state
// event throughput with the full resilience stack armed and no active
// fault.
func BenchmarkDispatchWithFaults(b *testing.B) {
	spec := faults.ResilienceSpec{
		TimeoutMillis: 1000, Retries: 2, BackoffMillis: 50, RetryBudget: 0.25,
		Breaker: &faults.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 64, OpenMillis: 1000},
	}
	k, drv, _, _ := newGuardedStubRig(b, 4, spec)
	drv.Start()
	k.Run(300 * sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("event queue drained")
		}
	}
}
