package tiers

import (
	"fmt"

	"vwchar/internal/sim"
)

// LBPolicy names a load-balancing discipline for dispatching client
// requests across web replicas.
type LBPolicy string

const (
	// LBRoundRobin cycles through the active replicas in index order.
	LBRoundRobin LBPolicy = "round-robin"
	// LBLeastInFlight picks the active replica with the fewest requests
	// between dispatch and response (counts requests still in transit).
	LBLeastInFlight LBPolicy = "least-inflight"
	// LBJoinShortestQueue picks the active replica with the fewest
	// requests resident at the server (executing plus queued).
	LBJoinShortestQueue LBPolicy = "jsq"
)

// Autoscaler policy names.
const (
	// AutoscaleReactive scales on consecutive windows whose p95 crossed
	// the SLO (up) or stayed well under it (down).
	AutoscaleReactive = "reactive"
	// AutoscalePredictive additionally projects the p95 trend a few
	// windows ahead and scales up before the SLO is crossed.
	AutoscalePredictive = "predictive"
)

// Bounds on topology size. They exist to catch config typos (a missing
// placement entry, replicas swapped with clients), not to model real
// rack limits.
const (
	MaxWebReplicaCap    = 32
	MaxDBReadReplicaCap = 8
	MaxMachineCap       = 16
)

// AutoscalerSpec configures the in-loop autoscaler. All window counts
// are in collector sampling windows (2 s each).
type AutoscalerSpec struct {
	// Policy selects the scaling rule: "reactive" (default) or
	// "predictive".
	Policy string `json:"policy,omitempty"`
	// SLOMillis is the per-window p95 response-time objective.
	SLOMillis float64 `json:"slo_millis"`
	// ScaleUpWindows is how many consecutive violating windows trigger a
	// scale-up (default 2); ScaleDownWindows how many calm windows
	// trigger a drain (default 15).
	ScaleUpWindows   int `json:"scale_up_windows,omitempty"`
	ScaleDownWindows int `json:"scale_down_windows,omitempty"`
	// LowFraction marks a window calm when p95 < LowFraction*SLOMillis
	// (default 0.3).
	LowFraction float64 `json:"low_fraction,omitempty"`
	// CooldownSeconds is the minimum time between scaling operations
	// (default 30).
	CooldownSeconds float64 `json:"cooldown_seconds,omitempty"`
	// BootSeconds is the provisioning delay between a scale-up decision
	// and the replica taking traffic (default 20).
	BootSeconds float64 `json:"boot_seconds,omitempty"`
	// LookaheadWindows is how far the predictive policy projects the p95
	// trend (default 5; ignored by the reactive policy).
	LookaheadWindows int `json:"lookahead_windows,omitempty"`
}

// withDefaults returns a copy with zero-valued knobs resolved.
func (a AutoscalerSpec) withDefaults() AutoscalerSpec {
	if a.Policy == "" {
		a.Policy = AutoscaleReactive
	}
	if a.ScaleUpWindows <= 0 {
		a.ScaleUpWindows = 2
	}
	if a.ScaleDownWindows <= 0 {
		a.ScaleDownWindows = 15
	}
	if a.LowFraction <= 0 {
		a.LowFraction = 0.3
	}
	if a.CooldownSeconds <= 0 {
		a.CooldownSeconds = 30
	}
	if a.BootSeconds <= 0 {
		a.BootSeconds = 20
	}
	if a.LookaheadWindows <= 0 {
		a.LookaheadWindows = 5
	}
	return a
}

// Validate checks the spec.
func (a *AutoscalerSpec) Validate() error {
	switch a.Policy {
	case "", AutoscaleReactive, AutoscalePredictive:
	default:
		return fmt.Errorf("autoscaler: unknown policy %q", a.Policy)
	}
	if a.SLOMillis <= 0 {
		return fmt.Errorf("autoscaler: slo_millis must be > 0, got %v", a.SLOMillis)
	}
	if a.ScaleUpWindows < 0 || a.ScaleDownWindows < 0 || a.LookaheadWindows < 0 {
		return fmt.Errorf("autoscaler: window counts must be >= 0")
	}
	if a.LowFraction < 0 || a.LowFraction >= 1 {
		return fmt.Errorf("autoscaler: low_fraction must be in [0,1), got %v", a.LowFraction)
	}
	if a.CooldownSeconds < 0 || a.BootSeconds < 0 {
		return fmt.Errorf("autoscaler: cooldown/boot seconds must be >= 0")
	}
	return nil
}

// Topology describes a cluster-scale deployment: web replicas behind a
// load balancer, a DB primary with read replicas, and the placement of
// those guests onto physical machines. The zero value (normalized)
// is the degenerate 1-web/1-DB single-host pair the paper profiles,
// and runs byte-identical to the pre-topology code path.
type Topology struct {
	// WebReplicas is the number of web replicas taking traffic at t=0.
	WebReplicas int `json:"web_replicas"`
	// MaxWebReplicas is the number of web replicas provisioned (booted
	// VMs the autoscaler may activate); defaults to WebReplicas.
	MaxWebReplicas int `json:"max_web_replicas,omitempty"`
	// DBReadReplicas is the number of DB read replicas behind the
	// primary. Reads fan out round-robin; writes always hit the primary.
	DBReadReplicas int `json:"db_read_replicas,omitempty"`
	// LB selects the dispatch policy (default round-robin).
	LB LBPolicy `json:"lb,omitempty"`
	// Machines is the number of physical machines guests are placed on.
	Machines int `json:"machines,omitempty"`
	// Placement maps VM index -> machine index. VM order: web replicas
	// 0..MaxWebReplicas-1, then the DB primary, then the read replicas.
	// Empty means round-robin: vm i -> machine i mod Machines.
	Placement []int `json:"placement,omitempty"`
	// ReplicaLagSeconds is the replication lag window: a session that
	// wrote within it reads from the primary (read-your-writes).
	ReplicaLagSeconds float64 `json:"replica_lag_seconds,omitempty"`
	// Autoscaler, when set, closes the loop: it watches the telemetry
	// windows mid-run and activates/drains web replicas.
	Autoscaler *AutoscalerSpec `json:"autoscaler,omitempty"`
}

// Normalized returns a copy with defaults resolved: zero replica and
// machine counts become 1, MaxWebReplicas is raised to WebReplicas,
// the LB policy defaults to round-robin, and the replica lag defaults
// to 500 ms when read replicas exist.
func (t Topology) Normalized() Topology {
	if t.WebReplicas <= 0 {
		t.WebReplicas = 1
	}
	if t.MaxWebReplicas < t.WebReplicas {
		t.MaxWebReplicas = t.WebReplicas
	}
	if t.Machines <= 0 {
		t.Machines = 1
	}
	if t.LB == "" {
		t.LB = LBRoundRobin
	}
	if t.DBReadReplicas > 0 && t.ReplicaLagSeconds <= 0 {
		t.ReplicaLagSeconds = 0.5
	}
	if t.Autoscaler != nil {
		a := t.Autoscaler.withDefaults()
		t.Autoscaler = &a
	}
	return t
}

// Validate checks the topology (before normalization).
func (t *Topology) Validate() error {
	if t.WebReplicas < 0 || t.WebReplicas > MaxWebReplicaCap {
		return fmt.Errorf("topology: web_replicas %d out of range [0,%d]", t.WebReplicas, MaxWebReplicaCap)
	}
	if t.MaxWebReplicas != 0 {
		if t.MaxWebReplicas > MaxWebReplicaCap {
			return fmt.Errorf("topology: max_web_replicas %d exceeds cap %d", t.MaxWebReplicas, MaxWebReplicaCap)
		}
		if t.MaxWebReplicas < t.WebReplicas {
			return fmt.Errorf("topology: max_web_replicas %d < web_replicas %d", t.MaxWebReplicas, t.WebReplicas)
		}
	}
	if t.DBReadReplicas < 0 || t.DBReadReplicas > MaxDBReadReplicaCap {
		return fmt.Errorf("topology: db_read_replicas %d out of range [0,%d]", t.DBReadReplicas, MaxDBReadReplicaCap)
	}
	switch t.LB {
	case "", LBRoundRobin, LBLeastInFlight, LBJoinShortestQueue:
	default:
		return fmt.Errorf("topology: unknown lb policy %q", t.LB)
	}
	if t.Machines < 0 || t.Machines > MaxMachineCap {
		return fmt.Errorf("topology: machines %d out of range [0,%d]", t.Machines, MaxMachineCap)
	}
	if t.ReplicaLagSeconds < 0 {
		return fmt.Errorf("topology: replica_lag_seconds must be >= 0")
	}
	if len(t.Placement) > 0 {
		n := t.Normalized()
		if len(t.Placement) != n.VMCount() {
			return fmt.Errorf("topology: placement has %d entries, want %d (max web + primary + read replicas)",
				len(t.Placement), n.VMCount())
		}
		for i, m := range t.Placement {
			if m < 0 || m >= n.Machines {
				return fmt.Errorf("topology: placement[%d]=%d outside [0,%d)", i, m, n.Machines)
			}
		}
	}
	if t.Autoscaler != nil {
		if err := t.Autoscaler.Validate(); err != nil {
			return err
		}
		if t.Autoscaler.SLOMillis > 0 {
			n := t.Normalized()
			if n.MaxWebReplicas <= n.WebReplicas {
				return fmt.Errorf("topology: autoscaler needs max_web_replicas > web_replicas to have headroom")
			}
		}
	}
	return nil
}

// IsDegenerate reports whether the (normalized) topology is the single
// 1-web/1-DB pair on one machine with no autoscaler — the configuration
// whose event sequence is pinned byte-identical to the pre-topology
// code path by the golden sweep hash.
func (t Topology) IsDegenerate() bool {
	n := t.Normalized()
	return n.WebReplicas == 1 && n.MaxWebReplicas == 1 &&
		n.DBReadReplicas == 0 && n.Machines == 1 && n.Autoscaler == nil
}

// VMCount is the number of guests the (normalized) topology provisions:
// every web replica up to the max, the DB primary, and the read
// replicas.
func (t Topology) VMCount() int { return t.MaxWebReplicas + 1 + t.DBReadReplicas }

// MachineFor maps a VM index to its machine index under the explicit
// placement, or round-robin when none is given.
func (t Topology) MachineFor(vm int) int {
	if len(t.Placement) > 0 {
		return t.Placement[vm]
	}
	return vm % t.Machines
}

// ReplicaLag is the replication lag as sim time.
func (t Topology) ReplicaLag() sim.Time { return sim.Seconds(t.ReplicaLagSeconds) }
