package tiers

import (
	"vwchar/internal/cachetier"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// QueueParams tunes the write-behind queue node's service costs.
type QueueParams struct {
	// PublishCycles is the CPU to journal and ack one publish.
	PublishCycles float64
	// DrainCycles is the CPU overhead per query replayed to the DB.
	DrainCycles float64
	// AckBytes is the publish ack wire size.
	AckBytes float64
	// PublishOverheadBytes is the publish envelope beyond the payload.
	PublishOverheadBytes float64
	// JournalFactor scales payload bytes into journal disk writes.
	JournalFactor float64
	// MemBase is the broker's resident base; MemPerEntry is the buffered
	// per-write overhead driving the RAM gauge under backlog.
	MemBase     float64
	MemPerEntry float64
}

// DefaultQueueParams returns the calibrated broker node.
func DefaultQueueParams() QueueParams {
	return QueueParams{
		PublishCycles:        30e3,
		DrainCycles:          12e3,
		AckBytes:             24,
		PublishOverheadBytes: 64,
		JournalFactor:        1.1,
		MemBase:              48e6,
		MemPerEntry:          640,
	}
}

// QueuePubResult is the caller-owned out-param a publish resolves into.
// OK=false (queue down, full, or crashed mid-ack) means the web replica
// must fall back to the synchronous DB chain.
type QueuePubResult struct {
	OK bool
}

// QueueStats is the queue node's cumulative accounting.
type QueueStats struct {
	// Published counts accepted writes; Overflows counts writes turned
	// away (full or down) that fell back to the synchronous chain.
	Published uint64 `json:"published"`
	Overflows uint64 `json:"overflows"`
	// Drained counts writes fully replayed to the DB primary; Batches
	// counts drain rounds; Redeliveries counts writes replayed more than
	// once after a crash interrupted their batch (at-least-once).
	Drained      uint64 `json:"drained"`
	Batches      uint64 `json:"batches"`
	Redeliveries uint64 `json:"redeliveries"`
	// PeakDepth is the maximum buffered backlog; FinalDepth is the
	// backlog at snapshot time; MaxLagMs is the worst enqueue-to-drain
	// latency observed.
	PeakDepth  int     `json:"peak_depth"`
	FinalDepth int     `json:"final_depth"`
	MaxLagMs   float64 `json:"max_lag_ms"`
}

// queueEntry is one buffered write interaction: the DB query chain to
// replay and when it was accepted. The queries slice keeps its capacity
// across ring laps.
type queueEntry struct {
	queries []rubis.QueryCost
	at      sim.Time
}

// queuePub is the pooled per-publish state (journal + CPU + ack).
type queuePub struct {
	q     *QueueServer
	out   *QueuePubResult
	reply Path
	done  sim.Callback
	darg  any
	epoch uint32
}

// queueDrain is the pooled per-batch drain state; the epoch snapshot
// detaches a batch whose queue crashed mid-replay.
type queueDrain struct {
	q       *QueueServer
	epoch   uint32
	srv     *DBServer
	dbEpoch uint32
}

// QueueServer is the VM-backed write-behind broker: web replicas
// publish write interactions here and complete on the ack; a periodic
// drain replays buffered query chains to the current DB primary in
// batches. The backlog is durable (journaled publishes survive a
// crash), so a broker crash shows up as a recovery lag spike, and
// interrupted batches redeliver — at-least-once semantics.
type QueueServer struct {
	k   *sim.Kernel
	be  Backend
	dbc *DBCluster
	// dbPaths[i] links the broker with DB routing index i; index 0 is
	// the current primary (the health monitor swaps pairs on failover,
	// exactly as it does for web replicas).
	dbPaths []PathPair
	spec    cachetier.QueueSpec
	params  QueueParams

	ring    []queueEntry
	head, n int

	pubFree   sim.FreeList[queuePub]
	drainFree sim.FreeList[queueDrain]
	draining  bool
	drainQI   int
	batchLeft int

	down  bool
	epoch uint32

	// Stats is the cumulative accounting (FinalDepth filled by Snapshot).
	Stats QueueStats
}

// NewQueueServer builds the broker and starts its drain ticker.
func NewQueueServer(k *sim.Kernel, be Backend, dbc *DBCluster, dbPaths []PathPair, spec cachetier.QueueSpec, params QueueParams) *QueueServer {
	spec = spec.WithDefaults()
	q := &QueueServer{
		k: k, be: be, dbc: dbc, dbPaths: dbPaths,
		spec: spec, params: params,
		ring: make([]queueEntry, spec.MaxDepth),
	}
	be.Mem().Set("wqueue", params.MemBase)
	be.OS().Fork(4)
	period := sim.Time(spec.DrainEveryMillis * float64(sim.Millisecond))
	k.Every(period, period, q.drainTick)
	return q
}

// Depth is the buffered backlog (telemetry gauge).
func (q *QueueServer) Depth() int { return q.n }

// Down reports whether the broker is crashed.
func (q *QueueServer) Down() bool { return q.down }

// LagMs is the age of the oldest buffered write (telemetry gauge).
func (q *QueueServer) LagMs(now sim.Time) float64 {
	if q.n == 0 {
		return 0
	}
	return float64(now-q.ring[q.head].at) / float64(sim.Millisecond)
}

// Admit is the web replica's fast local check before putting a publish
// on the wire; a refusal counts as an overflow fallback to the
// synchronous chain.
func (q *QueueServer) Admit() bool {
	if q.down || q.n >= len(q.ring) {
		q.Stats.Overflows++
		return false
	}
	return true
}

// PublishBytes is the wire size of one interaction's publish.
func (q *QueueServer) PublishBytes(res *rubis.Result) float64 {
	total := q.params.PublishOverheadBytes
	for i := range res.Queries {
		total += res.Queries[i].RequestBytes
	}
	return total
}

// HandlePublish accepts one write interaction's query chain: journal
// it, buffer it, and ack. The out-param reports acceptance; a refusal
// (filled up while the publish was on the wire, or crashed) acks
// OK=false and the caller falls back to the synchronous chain.
func (q *QueueServer) HandlePublish(queries []rubis.QueryCost, out *QueuePubResult, reply Path, done sim.Callback, arg any) {
	if q.down || q.n >= len(q.ring) {
		q.Stats.Overflows++
		out.OK = false
		reply.Transfer(q.params.AckBytes, done, arg)
		return
	}
	e := &q.ring[(q.head+q.n)%len(q.ring)]
	e.queries = append(e.queries[:0], queries...)
	e.at = q.k.Now()
	q.n++
	q.Stats.Published++
	if q.n > q.Stats.PeakDepth {
		q.Stats.PeakDepth = q.n
	}
	var payload float64
	for i := range queries {
		payload += queries[i].RequestBytes
	}
	q.be.DiskIO(payload*q.params.JournalFactor, true, nil, nil)
	q.be.Fsync(1)
	q.be.Mem().Set("wqueue", q.params.MemBase+float64(q.n)*q.params.MemPerEntry)
	p := q.pubFree.Get()
	p.q = q
	p.out = out
	p.reply = reply
	p.done = done
	p.darg = arg
	p.epoch = q.epoch
	os := q.be.OS()
	os.RunQueue++
	os.NoteContext(2)
	q.be.SubmitCPU(q.params.PublishCycles, queuePubDone, p)
}

// queuePubDone fires after the publish CPU stage: ack the web replica.
// A crash between accept and ack loses the ack — the entry is journaled
// and will drain, but the caller retries synchronously (at-least-once).
func queuePubDone(arg any) {
	p := arg.(*queuePub)
	q := p.q
	ok := !q.down && q.epoch == p.epoch
	if ok {
		os := q.be.OS()
		if os.RunQueue > 0 {
			os.RunQueue--
		}
	}
	out, reply, done, darg := p.out, p.reply, p.done, p.darg
	q.pubFree.Put(p)
	out.OK = ok
	reply.Transfer(q.params.AckBytes, done, darg)
}

// drainTick starts a batch replay if there is backlog and both the
// broker and the DB primary are up.
func (q *QueueServer) drainTick(now sim.Time) {
	if q.down || q.draining || q.n == 0 {
		return
	}
	if q.dbc.server(0).down {
		return
	}
	q.draining = true
	q.batchLeft = q.spec.BatchSize
	if q.batchLeft > q.n {
		q.batchLeft = q.n
	}
	q.drainQI = 0
	d := q.drainFree.Get()
	d.q = q
	d.epoch = q.epoch
	q.drainStep(d)
}

// drainStep advances the batch one query at a time, completing entries
// as their chains finish.
func (q *QueueServer) drainStep(d *queueDrain) {
	for q.drainQI >= len(q.ring[q.head].queries) {
		e := &q.ring[q.head]
		lag := float64(q.k.Now()-e.at) / float64(sim.Millisecond)
		if lag > q.Stats.MaxLagMs {
			q.Stats.MaxLagMs = lag
		}
		q.Stats.Drained++
		q.head = (q.head + 1) % len(q.ring)
		q.n--
		q.drainQI = 0
		q.batchLeft--
		if q.batchLeft <= 0 || q.n == 0 {
			q.be.Mem().Set("wqueue", q.params.MemBase+float64(q.n)*q.params.MemPerEntry)
			q.Stats.Batches++
			q.draining = false
			q.drainFree.Put(d)
			return
		}
	}
	srv := q.dbc.server(0)
	if srv.down {
		q.abortBatch(d)
		return
	}
	d.srv = srv
	d.dbEpoch = srv.epoch
	q.be.SubmitCPU(q.params.DrainCycles, nil, nil)
	q.dbPaths[0].To.Transfer(q.ring[q.head].queries[q.drainQI].RequestBytes, queueDrainSent, d)
}

// queueDrainSent fires when the replayed query reached the DB tier.
func queueDrainSent(arg any) {
	d := arg.(*queueDrain)
	q := d.q
	if q.down || q.epoch != d.epoch {
		q.drainFree.Put(d)
		return
	}
	if d.srv.down || d.srv.epoch != d.dbEpoch {
		q.abortBatch(d)
		return
	}
	d.srv.HandleQuery(q.ring[q.head].queries[q.drainQI], q.dbPaths[0].From, queueDrainReply, d)
}

// queueDrainReply fires when the DB's reply reached the broker.
func queueDrainReply(arg any) {
	d := arg.(*queueDrain)
	q := d.q
	if q.down || q.epoch != d.epoch {
		q.drainFree.Put(d)
		return
	}
	if d.srv.down || d.srv.epoch != d.dbEpoch {
		q.abortBatch(d)
		return
	}
	q.drainQI++
	q.drainStep(d)
}

// abortBatch stops a replay whose DB target died mid-batch; the current
// entry redelivers from its first query on a later tick.
func (q *QueueServer) abortBatch(d *queueDrain) {
	if q.drainQI > 0 {
		q.Stats.Redeliveries++
	}
	q.drainQI = 0
	q.draining = false
	q.drainFree.Put(d)
}

// crash takes the broker down. The journaled backlog survives; drain
// stalls until restore, so the post-recovery lag spike is the crash's
// signature. A batch in flight detaches via the epoch bump and its
// current entry will redeliver.
func (q *QueueServer) crash() {
	if q.down {
		return
	}
	q.down = true
	q.epoch++
	q.be.OS().RunQueue = 0
	if q.draining && q.drainQI > 0 {
		q.Stats.Redeliveries++
	}
	q.draining = false
	q.drainQI = 0
}

// restore brings the broker back; the retained backlog resumes draining
// on the next tick.
func (q *QueueServer) restore() {
	if !q.down {
		return
	}
	q.down = false
}

// Snapshot returns the accounting with the live backlog depth filled.
func (q *QueueServer) Snapshot() QueueStats {
	s := q.Stats
	s.FinalDepth = q.n
	return s
}
