package tiers

import (
	"fmt"

	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// Driver is the closed-loop client emulator: each of N clients thinks,
// issues the next interaction of its session, waits for the response,
// and repeats — the RUBiS client model with exponential think time.
type Driver struct {
	k     *sim.Kernel
	app   *rubis.App
	model rubis.Model
	web   Frontend
	costs rubis.CostParams

	clients []*client
	driverStats
}

// client carries one closed-loop session. Its res cost breakdown is
// reused across interactions (the loop guarantees at most one in
// flight), and the client itself is the context argument for every
// callback on its request path — the steady-state loop allocates
// nothing. rt is the session's DB routing state: a closed-loop client
// is one long session, so read-your-writes stickiness spans the run.
type client struct {
	d      *Driver
	id     int
	sess   rubis.Session
	state  rubis.Interaction
	think  *rng.Stream
	pick   *rng.Stream
	sentAt sim.Time
	rt     Route
	res    rubis.Result
}

// NewDriver builds a driver for n clients using independent named
// substreams from src.
func NewDriver(k *sim.Kernel, app *rubis.App, model rubis.Model, web Frontend, costs rubis.CostParams, n int, src *rng.Source) *Driver {
	d := &Driver{
		k:     k,
		app:   app,
		model: model,
		web:   web,
		costs: costs,
	}
	d.initStats(false)
	for i := 0; i < n; i++ {
		c := &client{
			d:     d,
			id:    i,
			state: model.StartState(),
			think: src.Stream(fmt.Sprintf("client-%d-think", i)),
			pick:  src.Stream(fmt.Sprintf("client-%d-pick", i)),
		}
		c.sess.UserID = int64(i % int(app.TotalUsers()))
		c.sess.ItemID = int64(i*7) % app.TotalItems()
		c.sess.CategoryID = int64(i % app.Config.Categories)
		c.sess.RegionID = int64(i % app.Config.Regions)
		c.sess.ToUserID = int64((i * 13) % int(app.TotalUsers()))
		d.clients = append(d.clients, c)
	}
	return d
}

// Start schedules every client's first request. Clients begin spread
// over one think period so the closed loop starts desynchronized, as
// real load generators ramp.
func (d *Driver) Start() {
	for _, c := range d.clients {
		delay := sim.Seconds(c.think.Float64() * d.model.ThinkSeconds(c.think) / 2)
		d.k.AfterCall(delay, clientIssue, c)
	}
}

// clientIssue fires when a client's think time elapses.
func clientIssue(arg any) {
	c := arg.(*client)
	c.d.issue(c)
}

// clientDone fires when the response reached the client.
func clientDone(arg any) {
	c := arg.(*client)
	d := c.d
	if o := c.rt.Outcome; o != OutcomeServed {
		// Abnormal outcome (fault-injection runs only): count it, clear
		// the stamp for the next interaction, and keep the loop going —
		// a closed-loop client retries after its usual think time.
		d.observeFault(o)
		c.rt.Outcome = OutcomeServed
		d.scheduleNext(c)
		return
	}
	rt := (d.k.Now() - c.sentAt).Sec()
	d.observe(rt, c.res.IsWrite, int(c.res.Kind))
	d.scheduleNext(c)
}

func (d *Driver) issue(c *client) {
	c.state = d.model.NextInteraction(c.state, c.pick)
	err := d.app.ExecuteInto(&c.res, c.state, &c.sess, c.pick, d.costs)
	if err != nil {
		// An interaction failure is a model bug worth surfacing in
		// results rather than a condition to paper over silently.
		d.Errors++
		d.scheduleNext(c)
		return
	}
	d.noteInteraction(c.state, c.res.IsWrite)
	c.sentAt = d.k.Now()
	d.observeSent()
	d.web.Dispatch(&c.res, &c.rt, clientDone, c)
}

func (d *Driver) scheduleNext(c *client) {
	think := d.model.ThinkSeconds(c.think)
	d.k.AfterCall(sim.Seconds(think), clientIssue, c)
}
