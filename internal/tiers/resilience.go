package tiers

import (
	"vwchar/internal/faults"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
)

// Outcome classifies how a dispatched request ended, stamped on the
// session's Route by the serving path. The zero value is Served so the
// no-fault path never writes it.
type Outcome uint8

const (
	// OutcomeServed: the response reached the client normally.
	OutcomeServed Outcome = iota
	// OutcomeTimedOut: every attempt exceeded the guard's timeout.
	OutcomeTimedOut
	// OutcomeShed: the breaker was open; the request fast-failed.
	OutcomeShed
	// OutcomeFailed: a replica or DB instance was down and the error
	// response reached the client.
	OutcomeFailed
	// OutcomeDegraded: the overload controller dropped the request as
	// optional work (brownout) or fast-failed it off an over-bound
	// queue — degraded service, deliberately.
	OutcomeDegraded
)

func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeShed:
		return "shed"
	case OutcomeDegraded:
		return "degraded"
	default:
		return "failed"
	}
}

const (
	// errorRespLatency is the turnaround for a locally generated error
	// response (connection refused / 503): fast, but not instantaneous.
	errorRespLatency = 500 * sim.Microsecond
	// shedRespLatency is the breaker's fast-fail turnaround.
	shedRespLatency = 200 * sim.Microsecond
	// dbErrorReplyBytes is the size of the error marker a crashed DB
	// stage sends back so the web tier's query chain always completes.
	dbErrorReplyBytes = 64
)

// GuardStats counts the guard's interventions.
type GuardStats struct {
	// Timeouts counts attempts cut off by the per-call timeout.
	Timeouts uint64 `json:"timeouts"`
	// Retries counts re-dispatched attempts.
	Retries uint64 `json:"retries"`
	// Sheds counts requests fast-failed by the open breaker.
	Sheds uint64 `json:"sheds"`
	// BreakerOpens counts closed->open breaker transitions.
	BreakerOpens uint64 `json:"breaker_opens"`
}

// Guard wraps a Frontend with per-call timeouts, bounded retries
// (exponential backoff, deterministic jitter, retry budget), and an
// optional circuit breaker. It is only constructed when resilience is
// configured, so the default serving path is untouched.
type Guard struct {
	k          *sim.Kernel
	next       Frontend
	timeout    sim.Time
	maxRetries int
	backoff    sim.Time
	budget     float64
	jitter     *rng.Stream
	brk        *breaker
	ovl        *Overload

	attFree sim.FreeList[attempt]
	tryFree sim.FreeList[tryCtx]

	// issued counts requests entering the guard (the retry budget's
	// denominator).
	issued uint64

	Stats GuardStats
}

// attempt is the pooled per-request guard state, spanning all tries.
type attempt struct {
	g     *Guard
	res   *rubis.Result
	rt    *Route
	done  sim.Callback
	darg  any
	tries int
	cur   *tryCtx
}

// tryCtx is the pooled per-try state. When a try times out it is
// detached (timedOut=true) and left for the eventual underlying
// response to recycle; live responses cancel the timer and recycle it
// immediately.
type tryCtx struct {
	g        *Guard
	a        *attempt
	timedOut bool
	hasTimer bool
	timer    sim.Event
}

// NewGuard wraps next with the spec's reaction knobs. jitter must be a
// dedicated rng stream (deterministic backoff jitter).
func NewGuard(k *sim.Kernel, next Frontend, spec faults.ResilienceSpec, jitter *rng.Stream) *Guard {
	spec = spec.WithDefaults()
	g := &Guard{
		k:          k,
		next:       next,
		timeout:    sim.Seconds(spec.TimeoutMillis / 1e3),
		maxRetries: spec.Retries,
		backoff:    sim.Seconds(spec.BackoffMillis / 1e3),
		budget:     spec.RetryBudget,
		jitter:     jitter,
	}
	if b := spec.Breaker; b != nil {
		g.brk = &breaker{
			win:       make([]bool, b.WindowRequests),
			threshold: b.ErrorThreshold,
			openFor:   sim.Seconds(b.OpenMillis / 1e3),
		}
	}
	return g
}

// RetryCount reports total retries so far (telemetry's cumulative
// retry source).
func (g *Guard) RetryCount() uint64 { return g.Stats.Retries }

// SetOverload wires the brownout controller the guard consults at
// admission; nil leaves the path untouched.
func (g *Guard) SetOverload(o *Overload) { g.ovl = o }

// Dispatch implements Frontend.
func (g *Guard) Dispatch(res *rubis.Result, rt *Route, done sim.Callback, arg any) {
	if g.ovl != nil && g.ovl.admitDrop(res) {
		// Brownout: the request is optional read work at the current
		// degradation level; answer degraded-fast instead of queueing.
		a := g.attFree.Get()
		a.g = g
		a.rt = rt
		a.done = done
		a.darg = arg
		g.k.AfterCall(shedRespLatency, guardDegradeFire, a)
		return
	}
	if g.brk != nil && g.k.Now() < g.brk.openUntil {
		// Breaker open: shed fast-fail without touching the cluster.
		g.Stats.Sheds++
		a := g.attFree.Get()
		a.g = g
		a.rt = rt
		a.done = done
		a.darg = arg
		g.k.AfterCall(shedRespLatency, guardShedFire, a)
		return
	}
	g.issued++
	if rt != nil {
		rt.Outcome = OutcomeServed
	}
	a := g.attFree.Get()
	a.g = g
	a.res = res
	a.rt = rt
	a.done = done
	a.darg = arg
	a.tries = 0
	g.launch(a)
}

// guardShedFire delivers the breaker's fast-fail response.
func guardShedFire(arg any) {
	a := arg.(*attempt)
	if a.rt != nil {
		a.rt.Outcome = OutcomeShed
	}
	a.g.finishNoObserve(a)
}

// guardDegradeFire delivers the brownout controller's degraded
// response.
func guardDegradeFire(arg any) {
	a := arg.(*attempt)
	if a.rt != nil {
		a.rt.Outcome = OutcomeDegraded
	}
	a.g.finishNoObserve(a)
}

func (g *Guard) launch(a *attempt) {
	a.tries++
	t := g.tryFree.Get()
	t.g = g
	t.a = a
	t.timedOut = false
	t.hasTimer = false
	a.cur = t
	if g.timeout > 0 {
		t.timer = g.k.AfterCall(g.timeout, guardTryTimeout, t)
		t.hasTimer = true
	}
	g.next.Dispatch(a.res, a.rt, guardTryDone, t)
}

// guardTryDone fires when the underlying dispatch completed (served or
// errored). For a detached (timed-out) try this is the late response:
// recycle the slot and drop it — the attempt has moved on.
func guardTryDone(arg any) {
	t := arg.(*tryCtx)
	g := t.g
	if t.timedOut {
		g.tryFree.Put(t)
		return
	}
	if t.hasTimer {
		t.timer.Cancel()
	}
	a := t.a
	a.cur = nil
	g.tryFree.Put(t)
	failed := a.rt != nil && a.rt.Outcome != OutcomeServed
	if g.brk != nil {
		g.noteBreaker(failed)
	}
	if failed && g.canRetry(a) {
		g.scheduleRetry(a)
		return
	}
	g.finish(a)
}

// guardTryTimeout fires when an attempt exceeded the timeout: detach
// the try (its eventual completion recycles the slot) and retry or
// fail the request.
func guardTryTimeout(arg any) {
	t := arg.(*tryCtx)
	g := t.g
	t.timedOut = true
	t.hasTimer = false
	a := t.a
	a.cur = nil
	if a.rt != nil {
		// The session is moving on (retry or timeout response) while
		// the abandoned try may still be running server-side: bump the
		// route's generation so the straggler stops writing into it.
		a.rt.gen++
	}
	g.Stats.Timeouts++
	if g.brk != nil {
		g.noteBreaker(true)
	}
	if g.canRetry(a) {
		g.scheduleRetry(a)
		return
	}
	if a.rt != nil {
		a.rt.Outcome = OutcomeTimedOut
	}
	g.finish(a)
}

// canRetry checks the retry count, the budget, and the breaker.
func (g *Guard) canRetry(a *attempt) bool {
	if a.tries > g.maxRetries {
		return false
	}
	if float64(g.Stats.Retries) >= g.budget*float64(g.issued) {
		return false
	}
	if g.brk != nil && g.k.Now() < g.brk.openUntil {
		return false
	}
	return true
}

func (g *Guard) scheduleRetry(a *attempt) {
	g.Stats.Retries++
	d := g.backoff << uint(a.tries-1)
	if g.jitter != nil && d > 0 {
		d += sim.Time(0.5 * float64(d) * g.jitter.Float64())
	}
	if a.rt != nil {
		a.rt.Outcome = OutcomeServed
	}
	g.k.AfterCall(d, guardRetryFire, a)
}

// guardRetryFire relaunches the attempt after its backoff.
func guardRetryFire(arg any) {
	a := arg.(*attempt)
	a.g.launch(a)
}

// finish hands the outcome to the caller and recycles the attempt.
func (g *Guard) finish(a *attempt) {
	g.finishNoObserve(a)
}

func (g *Guard) finishNoObserve(a *attempt) {
	done, darg := a.done, a.darg
	a.res = nil
	a.rt = nil
	a.done = nil
	a.darg = nil
	a.cur = nil
	g.attFree.Put(a)
	if done != nil {
		done(darg)
	}
}

// noteBreaker feeds one outcome into the breaker window; on a
// closed->open transition the open counter bumps.
func (g *Guard) noteBreaker(failed bool) {
	if g.brk.observe(g.k.Now(), failed) {
		g.Stats.BreakerOpens++
	}
}

// breaker is a ring-buffer failure-fraction circuit breaker. When the
// window is full and the failure fraction reaches the threshold it
// opens for openFor; the window resets on open, so after the open
// interval it must refill before tripping again (half-open probing).
type breaker struct {
	win       []bool
	pos       int
	filled    int
	fails     int
	threshold float64
	openFor   sim.Time
	openUntil sim.Time
}

// observe records one outcome; it reports whether the breaker just
// opened.
func (b *breaker) observe(now sim.Time, failed bool) bool {
	if now < b.openUntil {
		return false
	}
	if b.filled == len(b.win) {
		if b.win[b.pos] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.win[b.pos] = failed
	if failed {
		b.fails++
	}
	b.pos++
	if b.pos == len(b.win) {
		b.pos = 0
	}
	if b.filled == len(b.win) && float64(b.fails) >= b.threshold*float64(b.filled) {
		b.openUntil = now + b.openFor
		for i := range b.win {
			b.win[i] = false
		}
		b.pos, b.filled, b.fails = 0, 0, 0
		return true
	}
	return false
}

// FailoverEvent records one DB primary promotion.
type FailoverEvent struct {
	// DetectedAt is when the health monitor first saw the primary down.
	DetectedAt sim.Time `json:"detected_at"`
	// PromotedAt is when a replica was promoted (detection window
	// elapsed).
	PromotedAt sim.Time `json:"promoted_at"`
	// NewPrimary is the promoted replica's pre-promotion routing index
	// (1..R).
	NewPrimary int `json:"new_primary"`
}

// HealthMonitor periodically probes the cluster: dead web replicas are
// ejected from the LB rotation after EjectAfterChecks consecutive
// failures (readmitted on recovery), and a dead DB primary triggers
// replica promotion after the detection window.
type HealthMonitor struct {
	k          *sim.Kernel
	web        *WebCluster
	dbc        *DBCluster
	webs       []*WebAppServer
	every      sim.Time
	ejectAfter int
	detect     sim.Time

	webFails      []int
	primarySeen   bool
	primaryDownAt sim.Time

	// queue, when wired, gets its DB paths swapped on promotion exactly
	// like the web replicas, so drains follow the new primary.
	queue *QueueServer

	// Failovers is the promotion log, in time order.
	Failovers []FailoverEvent
}

// SetQueue wires the write-behind broker into failover path swapping.
func (hm *HealthMonitor) SetQueue(q *QueueServer) { hm.queue = q }

// NewHealthMonitor wires the monitor; call Start to begin probing.
func NewHealthMonitor(k *sim.Kernel, web *WebCluster, dbc *DBCluster, spec faults.ResilienceSpec) *HealthMonitor {
	spec = spec.WithDefaults()
	return &HealthMonitor{
		k:          k,
		web:        web,
		dbc:        dbc,
		every:      sim.Seconds(spec.HealthEverySeconds),
		ejectAfter: spec.EjectAfterChecks,
		detect:     sim.Seconds(spec.FailoverDetectSeconds),
		webFails:   make([]int, len(web.Replicas)),
	}
}

// Start begins the periodic health checks.
func (hm *HealthMonitor) Start() {
	hm.k.Every(hm.every, hm.every, hm.tick)
}

func (hm *HealthMonitor) tick(now sim.Time) {
	for i, r := range hm.web.Replicas {
		if r.down {
			hm.webFails[i]++
			if hm.web.state[i] == ReplicaActive && hm.webFails[i] >= hm.ejectAfter {
				hm.web.Eject(i, "health check failed")
			}
			continue
		}
		hm.webFails[i] = 0
		if hm.web.state[i] == ReplicaDown {
			hm.web.Readmit(i, "health check recovered")
		}
	}
	if hm.dbc == nil {
		return
	}
	if !hm.dbc.Primary.down {
		hm.primarySeen = false
		return
	}
	if !hm.primarySeen {
		hm.primarySeen = true
		hm.primaryDownAt = now
	}
	if now-hm.primaryDownAt < hm.detect {
		return
	}
	for j, rep := range hm.dbc.Replicas {
		if rep.down {
			continue
		}
		hm.promote(now, j)
		return
	}
}

// promote swaps replica j in as the new primary: the DBCluster swaps
// its Primary/Replicas slots and every web replica swaps the matching
// path pair, so routing index 0 points at the promoted instance
// everywhere at once.
func (hm *HealthMonitor) promote(now sim.Time, j int) {
	hm.dbc.Promote(j)
	for _, w := range hm.web.Replicas {
		if len(w.dbPaths) > 1+j {
			w.dbPaths[0], w.dbPaths[1+j] = w.dbPaths[1+j], w.dbPaths[0]
		}
	}
	if hm.queue != nil && len(hm.queue.dbPaths) > 1+j {
		hm.queue.dbPaths[0], hm.queue.dbPaths[1+j] = hm.queue.dbPaths[1+j], hm.queue.dbPaths[0]
	}
	hm.Failovers = append(hm.Failovers, FailoverEvent{
		DetectedAt: hm.primaryDownAt,
		PromotedAt: now,
		NewPrimary: 1 + j,
	})
	hm.primarySeen = false
}
