package tiers

import (
	"encoding/json"
	"reflect"
	"testing"

	"vwchar/internal/hw"
	"vwchar/internal/load"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

func TestTopologyValidate(t *testing.T) {
	valid := func(mut func(*Topology)) error {
		topo := Topology{
			WebReplicas:    2,
			MaxWebReplicas: 4,
			DBReadReplicas: 1,
			LB:             LBJoinShortestQueue,
			Machines:       2,
		}
		if mut != nil {
			mut(&topo)
		}
		return topo.Validate()
	}
	if err := valid(nil); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	if err := (&Topology{}).Validate(); err != nil {
		t.Fatalf("zero topology rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"web replicas over cap", func(p *Topology) { p.WebReplicas = MaxWebReplicaCap + 1; p.MaxWebReplicas = 0 }},
		{"max below initial", func(p *Topology) { p.MaxWebReplicas = 1 }},
		{"db replicas over cap", func(p *Topology) { p.DBReadReplicas = MaxDBReadReplicaCap + 1 }},
		{"unknown lb", func(p *Topology) { p.LB = "random-2" }},
		{"machines over cap", func(p *Topology) { p.Machines = MaxMachineCap + 1 }},
		{"negative lag", func(p *Topology) { p.ReplicaLagSeconds = -1 }},
		{"placement wrong length", func(p *Topology) { p.Placement = []int{0} }},
		{"placement out of range", func(p *Topology) {
			// 4 web + primary + 1 read replica = 6 entries.
			p.Placement = []int{0, 1, 0, 1, 0, 9}
		}},
		{"autoscaler without headroom", func(p *Topology) {
			p.WebReplicas, p.MaxWebReplicas = 2, 2
			p.Autoscaler = &AutoscalerSpec{SLOMillis: 500}
		}},
		{"autoscaler unknown policy", func(p *Topology) {
			p.Autoscaler = &AutoscalerSpec{Policy: "oracle", SLOMillis: 500}
		}},
		{"autoscaler zero slo", func(p *Topology) {
			p.Autoscaler = &AutoscalerSpec{}
		}},
	}
	for _, tc := range cases {
		if err := valid(tc.mut); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	topo := Topology{
		WebReplicas:       2,
		MaxWebReplicas:    6,
		DBReadReplicas:    2,
		LB:                LBLeastInFlight,
		Machines:          3,
		Placement:         []int{0, 1, 2, 0, 1, 2, 0, 1, 2},
		ReplicaLagSeconds: 0.25,
		Autoscaler: &AutoscalerSpec{
			Policy:           AutoscalePredictive,
			SLOMillis:        350,
			ScaleUpWindows:   3,
			ScaleDownWindows: 20,
			LowFraction:      0.2,
			CooldownSeconds:  45,
			BootSeconds:      15,
			LookaheadWindows: 4,
		},
	}
	b, err := json.Marshal(&topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo, back) {
		t.Fatalf("round trip changed the topology:\n  in  %+v\n  out %+v", topo, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped topology invalid: %v", err)
	}
}

func TestTopologyNormalizedAndDegenerate(t *testing.T) {
	n := Topology{}.Normalized()
	want := Topology{WebReplicas: 1, MaxWebReplicas: 1, Machines: 1, LB: LBRoundRobin}
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("zero topology normalized to %+v", n)
	}
	if !(Topology{}).IsDegenerate() {
		t.Fatal("zero topology should be degenerate")
	}
	if !(Topology{WebReplicas: 1, LB: LBJoinShortestQueue}).IsDegenerate() {
		t.Fatal("single replica is degenerate regardless of LB policy")
	}
	for _, topo := range []Topology{
		{WebReplicas: 2},
		{DBReadReplicas: 1},
		{Machines: 2},
		{MaxWebReplicas: 2, Autoscaler: &AutoscalerSpec{SLOMillis: 500}},
	} {
		if topo.IsDegenerate() {
			t.Fatalf("%+v should not be degenerate", topo)
		}
	}
	// Read replicas default to a non-zero lag window.
	if lag := (Topology{DBReadReplicas: 1}).Normalized().ReplicaLagSeconds; lag <= 0 {
		t.Fatalf("replica lag defaulted to %v", lag)
	}
	if n := (Topology{MaxWebReplicas: 3, DBReadReplicas: 2}).Normalized(); n.VMCount() != 6 {
		t.Fatalf("VMCount = %d, want 6", n.VMCount())
	}
}

// pickCluster builds a bare cluster for balancer decision tests: the
// replicas never serve, only their load counters matter.
func pickCluster(lb LBPolicy, n int) *WebCluster {
	k := sim.NewKernel()
	webs := make([]*WebAppServer, n)
	for i := range webs {
		webs[i] = &WebAppServer{}
	}
	return NewWebCluster(k, webs, n, NewLoadBalancer(lb))
}

func TestRoundRobinCyclesActiveOnly(t *testing.T) {
	c := pickCluster(LBRoundRobin, 4)
	c.state[2] = ReplicaParked
	c.activeCount = 3
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, c.lb.Pick(c))
	}
	want := []int{0, 1, 3, 0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-robin picks = %v, want %v", got, want)
	}
}

func TestLeastInFlightPicksLightestReplica(t *testing.T) {
	c := pickCluster(LBLeastInFlight, 3)
	c.Replicas[0].inflight = 5
	c.Replicas[1].inflight = 1
	c.Replicas[2].inflight = 3
	if got := c.lb.Pick(c); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
	// A parked replica is invisible however light it is.
	c.Replicas[1].inflight = 0
	c.state[1] = ReplicaParked
	if got := c.lb.Pick(c); got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
}

func TestJSQPicksShortestQueue(t *testing.T) {
	c := pickCluster(LBJoinShortestQueue, 3)
	c.Replicas[0].active = 2
	c.Replicas[0].queue = make([]*webRequest, 3) // depth 5
	c.Replicas[1].active = 4                     // depth 4
	c.Replicas[2].active = 2
	c.Replicas[2].queue = make([]*webRequest, 4) // depth 6
	if got := c.lb.Pick(c); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestScaleUpDownLifecycle(t *testing.T) {
	c := pickCluster(LBRoundRobin, 3)
	k := c.k
	// Re-park everything above the first replica.
	c.state[1], c.state[2] = ReplicaParked, ReplicaParked
	c.activeCount, c.peakActive = 1, 1

	if !c.ScaleUp(5*sim.Second, "test") {
		t.Fatal("scale-up with headroom refused")
	}
	if c.State(1) != ReplicaBooting || c.ActiveReplicas() != 1 {
		t.Fatalf("booting replica took traffic early: state=%v active=%d", c.State(1), c.ActiveReplicas())
	}
	k.Run(6 * sim.Second)
	if c.State(1) != ReplicaActive || c.ActiveReplicas() != 2 {
		t.Fatalf("boot did not complete: state=%v active=%d", c.State(1), c.ActiveReplicas())
	}
	if !c.ScaleUp(0, "test") || c.ActiveReplicas() != 3 {
		t.Fatal("zero-delay scale-up should activate immediately")
	}
	if c.ScaleUp(0, "test") {
		t.Fatal("scale-up past MaxWebReplicas should refuse")
	}
	if !c.ScaleDown("test") || !c.ScaleDown("test") {
		t.Fatal("drains above the floor refused")
	}
	if c.ScaleDown("test") {
		t.Fatal("the last replica must never drain")
	}
	if c.PeakActive() != 3 {
		t.Fatalf("peak active = %d, want 3", c.PeakActive())
	}
	kinds := make(map[string]int)
	for _, e := range c.Events {
		kinds[e.Kind]++
	}
	if kinds["boot"] != 2 || kinds["up"] != 2 || kinds["down"] != 2 {
		t.Fatalf("event log %v, want 2 boot / 2 up / 2 down", kinds)
	}
}

// newClusterRig assembles the full VM stack with n web replicas behind
// the given balancer, all sharing one DB on one host.
func newClusterRig(tb testing.TB, n, clients int, lb LBPolicy) (*sim.Kernel, *WebCluster, *Driver) {
	tb.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(33)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		tb.Fatal(err)
	}
	host := hw.NewServer(k, hw.ProLiantSpec("host"))
	hv := xen.New(k, host, xen.DefaultParams())
	webDoms := make([]*xen.Domain, n)
	for i := range webDoms {
		webDoms[i] = hv.CreateGuest("web", 2, 2<<30, 256)
	}
	dbDom := hv.CreateGuest("db", 2, 2<<30, 256)
	dbBE := &VMBackend{HV: hv, Dom: dbDom, Peer: webDoms[0]}
	db := NewDBServer(k, dbBE, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(db, nil, 0)
	webs := make([]*WebAppServer, n)
	for i, dom := range webDoms {
		be := &VMBackend{HV: hv, Dom: dom, Peer: dbDom}
		paths := []PathPair{{To: VMPath(hv, dom, dbDom), From: VMPath(hv, dbDom, dom)}}
		webs[i] = NewWebAppServer(k, be, dbc, paths, DefaultWebParams("vm"))
	}
	fe := NewWebCluster(k, webs, n, NewLoadBalancer(lb))
	driver := NewDriver(k, app, rubis.BrowsingMix(), fe, rubis.DefaultCostParams(), clients, src)
	return k, fe, driver
}

// TestJSQNoWorseThanRoundRobinMeanWait is the queueing oracle: with
// variable service times, join-shortest-queue never does worse than
// blind round-robin on mean response time (JSQ is throughput-optimal
// among non-anticipating policies; RR ignores queue state entirely).
// The runs are deterministic, so this is a fixed comparison, not a
// statistical one.
func TestJSQNoWorseThanRoundRobinMeanWait(t *testing.T) {
	meanFor := func(lb LBPolicy) float64 {
		k, fe, driver := newClusterRig(t, 3, 420, lb)
		driver.Start()
		k.Run(90 * sim.Second)
		if driver.Completed < 1000 {
			t.Fatalf("%s completed only %d requests; the comparison would be vacuous", lb, driver.Completed)
		}
		var peak int
		for _, r := range fe.Replicas {
			if r.QueuePeak > peak {
				peak = r.QueuePeak
			}
		}
		if peak < 2 {
			t.Fatalf("%s never queued (peak %d); the oracle needs contention", lb, peak)
		}
		return driver.MeanResponseTime()
	}
	rr := meanFor(LBRoundRobin)
	jsq := meanFor(LBJoinShortestQueue)
	if jsq > rr {
		t.Fatalf("JSQ mean response %.6f s > round-robin %.6f s", jsq, rr)
	}
}

// TestRoundRobinSpreadsLoad checks the balancer actually spreads work:
// with equal replicas, round-robin splits dispatches exactly evenly.
func TestRoundRobinSpreadsLoad(t *testing.T) {
	k, fe, driver := newClusterRig(t, 3, 120, LBRoundRobin)
	driver.Start()
	k.Run(60 * sim.Second)
	var min, max uint64
	for i, r := range fe.Replicas {
		if i == 0 || r.Dispatched < min {
			min = r.Dispatched
		}
		if r.Dispatched > max {
			max = r.Dispatched
		}
	}
	if min == 0 || max-min > 1 {
		t.Fatalf("round-robin dispatch counts spread %d..%d, want within 1", min, max)
	}
	if fe.Served() != driver.Completed {
		t.Fatalf("cluster served %d != driver completed %d", fe.Served(), driver.Completed)
	}
}

// newStubClusterRig is the allocation test bed: real WebCluster and
// WebAppServers over null backends, so the measured path is exactly
// the dispatch machinery (pick, pooled dispatch slot, transfer hops,
// worker accounting) with the engine and hardware stubbed to timers.
func newStubClusterRig(tb testing.TB, n int, lb LBPolicy) (*sim.Kernel, *OpenDriver) {
	tb.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(77)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		tb.Fatal(err)
	}
	srv := hw.NewServer(k, hw.ProLiantSpec("stub"))
	be := &nullBackend{k: k, os: osmodel.New("stub", srv.Mem, 10), mem: srv.Mem}
	dbc := NewDBCluster(NewDBServer(k, be, app, DefaultDBParams("vm")), nil, 0)
	webs := make([]*WebAppServer, n)
	for i := range webs {
		webs[i] = NewWebAppServer(k, be, dbc, []PathPair{{To: stubPath{k}, From: stubPath{k}}}, DefaultWebParams("vm"))
	}
	fe := NewWebCluster(k, webs, n, NewLoadBalancer(lb))
	spec := load.Spec{Kind: load.Poisson, Rate: 40, SessionMean: 8}
	p, err := OpenParamsFromSpec(&spec)
	if err != nil {
		tb.Fatal(err)
	}
	drv := NewOpenDriver(k, app, staticModel{}, fe, rubis.DefaultCostParams(), p, src)
	return k, drv
}

// stubPath moves inter-tier bytes as a bare timer.
type stubPath struct{ k *sim.Kernel }

func (p stubPath) Transfer(bytes float64, done sim.Callback, arg any) {
	if done != nil {
		p.k.AfterCall(20*sim.Microsecond, done, arg)
	}
}

// TestLBDispatchZeroAlloc pins the tentpole's dispatch bar: in steady
// state the balanced request path — every policy — allocates nothing
// per event.
func TestLBDispatchZeroAlloc(t *testing.T) {
	for _, lb := range []LBPolicy{LBRoundRobin, LBLeastInFlight, LBJoinShortestQueue} {
		t.Run(string(lb), func(t *testing.T) {
			k, drv := newStubClusterRig(t, 4, lb)
			drv.Start()
			k.Run(300 * sim.Second)
			if drv.Completed == 0 {
				t.Fatal("stub cluster served nothing; the guard would be vacuous")
			}
			allocs := testing.AllocsPerRun(5000, func() {
				if !k.Step() {
					t.Fatal("event queue drained")
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state dispatch allocates %v allocs/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkLBDispatch is the CI allocation gate (scripts/bench.sh and
// the workflow assert 0 allocs/op): steady-state event throughput of
// the cluster dispatch path per balancer policy.
func BenchmarkLBDispatch(b *testing.B) {
	for _, lb := range []LBPolicy{LBRoundRobin, LBLeastInFlight, LBJoinShortestQueue} {
		b.Run(string(lb), func(b *testing.B) {
			k, drv := newStubClusterRig(b, 4, lb)
			drv.Start()
			k.Run(300 * sim.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !k.Step() {
					b.Fatal("event queue drained")
				}
			}
		})
	}
}

// TestDBClusterRouting pins the read/write routing rules: writes stamp
// the session and stay on the primary, reads inside the lag window
// stick with it (read-your-writes), and cold reads fan out round-robin
// across the replicas.
func TestDBClusterRouting(t *testing.T) {
	c := &DBCluster{
		Primary:  &DBServer{},
		Replicas: []*DBServer{{}, {}},
		Lag:      sim.Second,
	}
	var rt Route
	if got := c.route(true, 10*sim.Second, &rt); got != 0 {
		t.Fatalf("write routed to %d, want primary", got)
	}
	if got := c.route(false, 10*sim.Second+500*sim.Millisecond, &rt); got != 0 {
		t.Fatalf("read inside the lag window routed to %d, want primary", got)
	}
	if got := c.route(false, 12*sim.Second, &rt); got == 0 {
		t.Fatal("cold read should fan out to a replica")
	}
	// Round-robin across the two replicas for lag-free sessions.
	a := c.route(false, 20*sim.Second, nil)
	b := c.route(false, 20*sim.Second, nil)
	if a == b || a == 0 || b == 0 {
		t.Fatalf("replica fan-out picked %d then %d, want alternating replicas", a, b)
	}
	rt.Reset()
	if rt.wrote {
		t.Fatal("Reset kept the write stamp")
	}
	// The degenerate cluster routes everything to the primary.
	d := NewDBCluster(&DBServer{}, nil, 0)
	if d.route(false, 0, &rt) != 0 || d.route(true, 0, &rt) != 0 {
		t.Fatal("degenerate cluster must route to the primary")
	}
}
