package tiers

import (
	"testing"

	"vwchar/internal/hw"
	"vwchar/internal/osmodel"
	"vwchar/internal/rng"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

func smallDataset() rubis.DatasetConfig {
	return rubis.DatasetConfig{
		Regions: 10, Categories: 8, Users: 400,
		ActiveItems: 150, OldItems: 250,
		BidsPerItem: 3, CommentsPerUser: 1, BufferPages: 48,
	}
}

type vmRig struct {
	k      *sim.Kernel
	hv     *xen.Hypervisor
	app    *rubis.App
	web    *WebAppServer
	db     *DBServer
	driver *Driver
}

func newVMRig(t *testing.T, clients int) *vmRig {
	t.Helper()
	k := sim.NewKernel()
	src := rng.NewSource(21)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	host := hw.NewServer(k, hw.ProLiantSpec("host"))
	hv := xen.New(k, host, xen.DefaultParams())
	webDom := hv.CreateGuest("web", 2, 2<<30, 256)
	dbDom := hv.CreateGuest("db", 2, 2<<30, 256)
	webBE := &VMBackend{HV: hv, Dom: webDom, Peer: dbDom}
	dbBE := &VMBackend{HV: hv, Dom: dbDom, Peer: webDom}
	db := NewDBServer(k, dbBE, app, DefaultDBParams("vm"))
	dbc := NewDBCluster(db, nil, 0)
	paths := []PathPair{{To: VMPath(hv, webDom, dbDom), From: VMPath(hv, dbDom, webDom)}}
	web := NewWebAppServer(k, webBE, dbc, paths, DefaultWebParams("vm"))
	fe := NewWebCluster(k, []*WebAppServer{web}, 1, nil)
	driver := NewDriver(k, app, rubis.BrowsingMix(), fe, rubis.DefaultCostParams(), clients, src)
	return &vmRig{k: k, hv: hv, app: app, web: web, db: db, driver: driver}
}

func TestVMDeploymentServesRequests(t *testing.T) {
	rig := newVMRig(t, 50)
	rig.driver.Start()
	rig.k.Run(60 * sim.Second)
	if rig.driver.Completed < 100 {
		t.Fatalf("completed only %d requests", rig.driver.Completed)
	}
	if rig.driver.Errors != 0 {
		t.Fatalf("%d interaction errors", rig.driver.Errors)
	}
	if rig.web.Served != rig.driver.Completed {
		t.Fatalf("web served %d != driver completed %d", rig.web.Served, rig.driver.Completed)
	}
	if rig.db.Queries == 0 {
		t.Fatal("no DB queries reached the back end")
	}
	// Every tier accumulated demand.
	guests := rig.hv.Guests()
	if guests[0].VirtCycles() <= 0 || guests[1].VirtCycles() <= 0 {
		t.Fatal("guest CPU counters did not advance")
	}
	if guests[0].NetRxBytes <= 0 || guests[1].NetRxBytes <= 0 {
		t.Fatal("guest network counters did not advance")
	}
	if rig.driver.MeanResponseTime() <= 0 {
		t.Fatal("no response times recorded")
	}
	if rig.driver.ResponseTimeQuantile(0.95) < rig.driver.ResponseTimeQuantile(0.5) {
		t.Fatal("response time quantiles out of order")
	}
}

func TestPMDeploymentServesRequests(t *testing.T) {
	k := sim.NewKernel()
	src := rng.NewSource(22)
	app, err := rubis.NewApp(smallDataset(), src.Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	webSrv := hw.NewServer(k, hw.ProLiantSpec("web-pm"))
	dbSrv := hw.NewServer(k, hw.ProLiantSpec("db-pm"))
	webOS := osmodel.New("web", webSrv.Mem, 100)
	dbOS := osmodel.New("db", dbSrv.Mem, 100)
	webBE := NewPMBackend(k, webSrv, dbSrv, DefaultPMParams("web"), src.Stream("n1"), webOS)
	dbBE := NewPMBackend(k, dbSrv, webSrv, DefaultPMParams("db"), src.Stream("n2"), dbOS)
	db := NewDBServer(k, dbBE, app, DefaultDBParams("pm"))
	dbc := NewDBCluster(db, nil, 0)
	paths := []PathPair{{To: PMPath(webBE), From: PMPath(dbBE)}}
	web := NewWebAppServer(k, webBE, dbc, paths, DefaultWebParams("pm"))
	fe := NewWebCluster(k, []*WebAppServer{web}, 1, nil)
	driver := NewDriver(k, app, rubis.BiddingMix(), fe, rubis.DefaultCostParams(), 50, src)
	driver.Start()
	k.Run(60 * sim.Second)
	if driver.Completed < 100 {
		t.Fatalf("completed only %d", driver.Completed)
	}
	// Inter-tier traffic crosses both physical NICs.
	if webSrv.NIC.TxBytes() <= 0 || dbSrv.NIC.RxBytes() <= 0 {
		t.Fatal("wire traffic between tiers missing")
	}
	if webSrv.CPU.TotalCycles() <= 0 || dbSrv.CPU.TotalCycles() <= 0 {
		t.Fatal("host CPUs idle")
	}
	if driver.WriteFraction() <= 0 {
		t.Fatal("bidding mix should issue writes")
	}
	counts := driver.InteractionCounts()
	if len(counts) < 5 {
		t.Fatalf("only %d interaction kinds exercised", len(counts))
	}
}

func TestWorkerPoolQueues(t *testing.T) {
	rig := newVMRig(t, 10)
	// Shrink the pool to force queueing.
	rig.web.params.Workers = 1
	for i := 0; i < 5; i++ {
		sess := &rubis.Session{UserID: 1, ItemID: 2, CategoryID: 1, ToUserID: 1}
		res, err := rig.app.Execute(rubis.ViewItem, sess, rng.NewSource(uint64(i)).Stream("x"), rubis.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		rig.web.HandleRequest(res, nil, nil, nil)
	}
	if len(rig.web.queue) != 4 {
		t.Fatalf("queue = %d, want 4 (1 active)", len(rig.web.queue))
	}
	rig.k.Run(10 * sim.Second)
	if rig.web.Served != 5 {
		t.Fatalf("served %d of 5 queued requests", rig.web.Served)
	}
	if rig.web.QueuePeak < 5 {
		t.Fatalf("QueuePeak = %d", rig.web.QueuePeak)
	}
}

func TestWebMemoryGrowsUnderLoad(t *testing.T) {
	rig := newVMRig(t, 400)
	base := rig.web.be.Mem().Get("apache")
	rig.driver.Start()
	rig.k.Run(120 * sim.Second)
	if rig.web.Growths() == 0 {
		t.Skip("no growth at this load level; jump mechanics covered by integration test")
	}
	if rig.web.be.Mem().Get("apache") <= base {
		t.Fatal("apache allocation did not grow despite Growths > 0")
	}
}

func TestDBMemoryWarmsWithReads(t *testing.T) {
	rig := newVMRig(t, 100)
	before := rig.db.be.Mem().Get("dbcache")
	rig.driver.Start()
	rig.k.Run(120 * sim.Second)
	after := rig.db.be.Mem().Get("dbcache")
	if after <= before {
		t.Fatalf("db cache did not warm: %v -> %v", before, after)
	}
}

func TestPMFlusherBatchesWrites(t *testing.T) {
	k := sim.NewKernel()
	srv := hw.NewServer(k, hw.ProLiantSpec("pm"))
	peer := hw.NewServer(k, hw.ProLiantSpec("peer"))
	os := osmodel.New("pm", srv.Mem, 10)
	be := NewPMBackend(k, srv, peer, DefaultPMParams("web"), rng.NewSource(1).Stream("n"), os)
	doneFast := false
	be.DiskIO(1e6, true, func(any) { doneFast = true }, nil)
	k.Run(sim.Millisecond)
	if !doneFast {
		t.Fatal("buffered write should complete quickly")
	}
	if srv.Disk.WrittenBytes() != 0 {
		t.Fatal("write should still be buffered")
	}
	k.Run(10 * sim.Second) // flusher fires at 6 s
	if srv.Disk.WrittenBytes() <= 0 {
		t.Fatal("flusher never wrote back")
	}
}

func TestPMFsyncHitsDiskDirectly(t *testing.T) {
	k := sim.NewKernel()
	srv := hw.NewServer(k, hw.ProLiantSpec("pm"))
	os := osmodel.New("pm", srv.Mem, 10)
	be := NewPMBackend(k, srv, srv, DefaultPMParams("db"), rng.NewSource(1).Stream("n"), os)
	be.Fsync(3)
	k.Run(sim.Second)
	if srv.Disk.WrittenBytes() != 3*4096 {
		t.Fatalf("fsync bytes = %v", srv.Disk.WrittenBytes())
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() uint64 {
		rig := newVMRig(t, 80)
		rig.driver.Start()
		rig.k.Run(45 * sim.Second)
		return rig.driver.Completed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different request counts: %d vs %d", a, b)
	}
}
