package hw

import (
	"fmt"

	"vwchar/internal/sim"
)

// Disk is a FIFO storage device. Each operation costs a positional
// overhead (seek+rotate, amortized for sequential batches by the caller)
// plus transfer time at the device bandwidth.
type Disk struct {
	k         *sim.Kernel
	name      string
	seek      sim.Time
	bytesPerS float64

	busyUntil sim.Time

	// cumulative counters
	readBytes    float64
	writtenBytes float64
	readOps      uint64
	writeOps     uint64
	busyTime     sim.Time
}

// NewDisk builds a disk with the given per-op overhead and bandwidth.
func NewDisk(k *sim.Kernel, name string, seek sim.Time, bytesPerS float64) *Disk {
	if bytesPerS <= 0 {
		panic(fmt.Sprintf("hw: disk %q needs positive bandwidth", name))
	}
	return &Disk{k: k, name: name, seek: seek, bytesPerS: bytesPerS}
}

// Submit enqueues an operation of the given size; done(arg) fires when
// the transfer finishes. write selects the direction counter.
func (d *Disk) Submit(bytes float64, write bool, done sim.Callback, arg any) {
	if bytes < 0 {
		bytes = 0
	}
	service := d.seek + sim.Time(bytes/d.bytesPerS*float64(sim.Second))
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	finish := start + service
	d.busyUntil = finish
	d.busyTime += service
	if write {
		d.writtenBytes += bytes
		d.writeOps++
	} else {
		d.readBytes += bytes
		d.readOps++
	}
	if done != nil {
		d.k.AtCall(finish, done, arg)
	}
}

// Account records I/O bytes without simulating queueing delay. The
// collector still sees the demand. Used for background activity (log
// flushes, page-cache writeback) whose latency nobody waits on.
func (d *Disk) Account(bytes float64, write bool) {
	if bytes < 0 {
		return
	}
	if write {
		d.writtenBytes += bytes
		d.writeOps++
	} else {
		d.readBytes += bytes
		d.readOps++
	}
}

// ReadBytes reports cumulative bytes read.
func (d *Disk) ReadBytes() float64 { return d.readBytes }

// WrittenBytes reports cumulative bytes written.
func (d *Disk) WrittenBytes() float64 { return d.writtenBytes }

// Ops reports cumulative (read, write) operation counts.
func (d *Disk) Ops() (reads, writes uint64) { return d.readOps, d.writeOps }

// BusyTime reports cumulative service time.
func (d *Disk) BusyTime() sim.Time { return d.busyTime }

// QueueDelay reports how far in the future the disk frees up.
func (d *Disk) QueueDelay() sim.Time {
	if d.busyUntil <= d.k.Now() {
		return 0
	}
	return d.busyUntil - d.k.Now()
}

// NIC is a full-duplex network interface with per-direction bandwidth and
// a fixed per-transfer latency.
type NIC struct {
	k         *sim.Kernel
	name      string
	latency   sim.Time
	bytesPerS float64

	rxBusyUntil sim.Time
	txBusyUntil sim.Time

	// cumulative counters
	rxBytes   float64
	txBytes   float64
	rxPackets uint64
	txPackets uint64
}

// NewNIC builds an interface with the given one-way latency and per
// direction bandwidth.
func NewNIC(k *sim.Kernel, name string, latency sim.Time, bytesPerS float64) *NIC {
	if bytesPerS <= 0 {
		panic(fmt.Sprintf("hw: nic %q needs positive bandwidth", name))
	}
	return &NIC{k: k, name: name, latency: latency, bytesPerS: bytesPerS}
}

// mtu is the packet size used to convert bytes to packet counters.
const mtu = 1500.0

// Send transmits bytes out of this interface; done(arg) fires when the
// last byte is on the wire plus latency.
func (n *NIC) Send(bytes float64, done sim.Callback, arg any) {
	if bytes < 0 {
		bytes = 0
	}
	service := sim.Time(bytes / n.bytesPerS * float64(sim.Second))
	start := n.k.Now()
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	finish := start + service
	n.txBusyUntil = finish
	n.txBytes += bytes
	n.txPackets += uint64(bytes/mtu) + 1
	if done != nil {
		n.k.AtCall(finish+n.latency, done, arg)
	}
}

// Receive accounts for inbound bytes; done(arg) fires after the
// transfer.
func (n *NIC) Receive(bytes float64, done sim.Callback, arg any) {
	if bytes < 0 {
		bytes = 0
	}
	service := sim.Time(bytes / n.bytesPerS * float64(sim.Second))
	start := n.k.Now()
	if n.rxBusyUntil > start {
		start = n.rxBusyUntil
	}
	finish := start + service
	n.rxBusyUntil = finish
	n.rxBytes += bytes
	n.rxPackets += uint64(bytes/mtu) + 1
	if done != nil {
		n.k.AtCall(finish, done, arg)
	}
}

// Account records traffic without simulating transfer delay.
func (n *NIC) Account(rx, tx float64) {
	if rx > 0 {
		n.rxBytes += rx
		n.rxPackets += uint64(rx/mtu) + 1
	}
	if tx > 0 {
		n.txBytes += tx
		n.txPackets += uint64(tx/mtu) + 1
	}
}

// RxBytes reports cumulative received bytes.
func (n *NIC) RxBytes() float64 { return n.rxBytes }

// TxBytes reports cumulative transmitted bytes.
func (n *NIC) TxBytes() float64 { return n.txBytes }

// Packets reports cumulative (rx, tx) packet counts.
func (n *NIC) Packets() (rx, tx uint64) { return n.rxPackets, n.txPackets }

// Memory tracks RAM usage against a capacity. Usage is labeled so the OS
// model can expose kernel/app/cache components separately.
type Memory struct {
	capacity float64
	used     map[string]float64
}

// NewMemory builds a memory of the given capacity in bytes.
func NewMemory(capacity float64) *Memory {
	if capacity <= 0 {
		panic("hw: memory needs positive capacity")
	}
	return &Memory{capacity: capacity, used: make(map[string]float64)}
}

// Capacity reports total bytes.
func (m *Memory) Capacity() float64 { return m.capacity }

// Set fixes the usage of a labeled component (e.g. "pagecache").
func (m *Memory) Set(label string, bytes float64) {
	if bytes <= 0 {
		delete(m.used, label)
		return
	}
	m.used[label] = bytes
}

// Get reports the usage of a labeled component.
func (m *Memory) Get(label string) float64 { return m.used[label] }

// Add adjusts a labeled component by delta, clamping at zero.
func (m *Memory) Add(label string, delta float64) {
	v := m.used[label] + delta
	if v <= 0 {
		delete(m.used, label)
		return
	}
	m.used[label] = v
}

// Used reports total bytes in use across all components, clamped to
// capacity.
func (m *Memory) Used() float64 {
	total := 0.0
	for _, v := range m.used {
		total += v
	}
	if total > m.capacity {
		total = m.capacity
	}
	return total
}

// Free reports capacity minus used.
func (m *Memory) Free() float64 { return m.capacity - m.Used() }
