package hw

import "vwchar/internal/sim"

// Spec describes a physical server's hardware.
type Spec struct {
	Name string
	// Cores and FreqHz describe the processor.
	Cores  int
	FreqHz float64
	// RAMBytes is installed memory.
	RAMBytes float64
	// DiskSeek and DiskBytesPerS describe the storage device.
	DiskSeek      sim.Time
	DiskBytesPerS float64
	// NICLatency and NICBytesPerS describe the network interface.
	NICLatency   sim.Time
	NICBytesPerS float64
}

// ProLiantSpec returns the paper's testbed server profile: 8 Intel Xeon
// 2.8 GHz cores, 32 GB RAM, 2 TB disk (7.2k SATA-class service model),
// gigabit Ethernet.
func ProLiantSpec(name string) Spec {
	return Spec{
		Name:          name,
		Cores:         8,
		FreqHz:        2.8e9,
		RAMBytes:      32 << 30,
		DiskSeek:      4 * sim.Millisecond,
		DiskBytesPerS: 120e6, // ~120 MB/s sequential
		NICLatency:    100 * sim.Microsecond,
		NICBytesPerS:  125e6, // 1 Gbit/s
	}
}

// Server composes the devices of one physical machine.
type Server struct {
	Spec Spec
	CPU  *CPU
	Disk *Disk
	NIC  *NIC
	Mem  *Memory
}

// NewServer instantiates the devices described by spec on kernel k.
func NewServer(k *sim.Kernel, spec Spec) *Server {
	return &Server{
		Spec: spec,
		CPU:  NewCPU(k, spec.Name+".cpu", spec.Cores, spec.FreqHz),
		Disk: NewDisk(k, spec.Name+".disk", spec.DiskSeek, spec.DiskBytesPerS),
		NIC:  NewNIC(k, spec.Name+".nic", spec.NICLatency, spec.NICBytesPerS),
		Mem:  NewMemory(spec.RAMBytes),
	}
}
