// Package hw models the physical resources of a cloud server: a
// multi-core processor-sharing CPU, a disk with seek+transfer service
// times, a network interface, and RAM accounting. The default profile
// matches the paper's testbed (HP ProLiant: 8 Intel Xeon 2.8 GHz cores,
// 32 GB RAM, 2 TB disk, gigabit Ethernet).
//
// All devices are driven by the discrete-event kernel in internal/sim and
// maintain cumulative demand counters that the sysstat collector samples
// every 2 seconds, exactly as the paper's monitoring did. Completion
// callbacks follow the kernel's closure-free (sim.Callback, arg)
// convention, and job/event state is pooled, so steady-state dispatch
// performs no heap allocations.
package hw

import (
	"math"

	"fmt"

	"vwchar/internal/sim"
)

// CPU is a processor-sharing multi-core CPU. Up to Cores jobs run at full
// speed; beyond that, capacity is divided equally (the classic PS model
// of a time-sharing OS scheduler at 2-second observation granularity).
//
// Speed scaling: SetSpeed adjusts the effective capacity, which is how
// the Xen credit scheduler throttles a domain's VCPUs without the devices
// knowing they are virtualized.
type CPU struct {
	k       *sim.Kernel
	name    string
	cores   int
	freqHz  float64
	speed   float64 // multiplier applied by a hypervisor scheduler
	jobs    []*cpuJob
	jobFree sim.FreeList[cpuJob]
	nextSeq uint64

	lastUpdate sim.Time
	completion sim.Event

	// doneScratch stages completed-job callbacks so job structs can be
	// recycled before the callbacks (which may submit new jobs) run.
	doneScratch []pendingDone

	// cumulative counters (sampled by the collector)
	totalCycles float64
	busyTime    sim.Time
	jobCount    uint64
}

type cpuJob struct {
	remaining float64 // cycles
	done      sim.Callback
	arg       any
	seq       uint64
}

type pendingDone struct {
	done sim.Callback
	arg  any
}

// NewCPU builds a CPU with the given core count and per-core frequency.
func NewCPU(k *sim.Kernel, name string, cores int, freqHz float64) *CPU {
	if cores <= 0 {
		panic(fmt.Sprintf("hw: CPU %q needs >=1 core", name))
	}
	if freqHz <= 0 {
		panic(fmt.Sprintf("hw: CPU %q needs positive frequency", name))
	}
	return &CPU{
		k:      k,
		name:   name,
		cores:  cores,
		freqHz: freqHz,
		speed:  1,
	}
}

// Cores reports the configured core count.
func (c *CPU) Cores() int { return c.cores }

// FreqHz reports the per-core frequency.
func (c *CPU) FreqHz() float64 { return c.freqHz }

// Active reports the number of in-flight jobs.
func (c *CPU) Active() int { return len(c.jobs) }

// TotalCycles reports the cumulative cycles executed so far.
func (c *CPU) TotalCycles() float64 {
	c.advance()
	return c.totalCycles
}

// BusyTime reports cumulative virtual time with at least one job running.
func (c *CPU) BusyTime() sim.Time {
	c.advance()
	return c.busyTime
}

// Jobs reports the cumulative number of submitted jobs.
func (c *CPU) Jobs() uint64 { return c.jobCount }

// perJobRate returns cycles/second granted to each active job.
func (c *CPU) perJobRate() float64 {
	n := len(c.jobs)
	if n == 0 {
		return 0
	}
	rate := c.freqHz * c.speed
	if n > c.cores {
		rate *= float64(c.cores) / float64(n)
	}
	return rate
}

// advance drains remaining cycles for the elapsed interval.
func (c *CPU) advance() {
	now := c.k.Now()
	dt := now - c.lastUpdate
	if dt <= 0 {
		c.lastUpdate = now
		return
	}
	if len(c.jobs) > 0 {
		rate := c.perJobRate()
		drained := rate * float64(dt) / float64(sim.Second)
		for _, j := range c.jobs {
			j.remaining -= drained
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		c.totalCycles += drained * float64(len(c.jobs))
		c.busyTime += dt
	}
	c.lastUpdate = now
}

// cpuComplete is the closure-free completion callback: one per CPU, the
// CPU itself is the context.
func cpuComplete(arg any) { arg.(*CPU).complete() }

// reschedule computes the next completion time and plants one event,
// moving the existing pooled event in place when possible.
func (c *CPU) reschedule() {
	if len(c.jobs) == 0 {
		c.completion.Cancel()
		c.completion = sim.Event{}
		return
	}
	rate := c.perJobRate()
	if rate <= 0 {
		// Domain currently descheduled: work is frozen until SetSpeed
		// grants capacity again.
		c.completion.Cancel()
		c.completion = sim.Event{}
		return
	}
	next := c.jobs[0]
	for _, j := range c.jobs[1:] {
		if j.remaining < next.remaining ||
			(j.remaining == next.remaining && j.seq < next.seq) {
			next = j
		}
	}
	// Round the completion delay up to a whole nanosecond. Rounding down
	// would leave sub-nanosecond residues that re-fire at the same
	// timestamp forever; together with the epsilon in complete() this
	// guarantees progress.
	delay := sim.Time(math.Ceil(next.remaining / rate * float64(sim.Second)))
	if delay < 1 {
		delay = 1
	}
	at := c.k.Now() + delay
	if !c.completion.Reschedule(at) {
		c.completion = c.k.AtCall(at, cpuComplete, c)
	}
}

// complete retires every job whose demand has drained. The epsilon is
// one nanosecond of work at the current rate: below that the job cannot
// be distinguished from done at the kernel's time resolution.
func (c *CPU) complete() {
	c.completion = sim.Event{}
	c.advance()
	eps := c.perJobRate() * 1e-9
	if eps < 1e-6 {
		eps = 1e-6
	}
	// Partition in place: jobs are stored in submission (seq) order, so
	// the filtered survivors and the finished set both stay seq-sorted,
	// which keeps completion order deterministic.
	c.doneScratch = c.doneScratch[:0]
	w := 0
	for _, j := range c.jobs {
		if j.remaining <= eps {
			c.doneScratch = append(c.doneScratch, pendingDone{j.done, j.arg})
			c.jobFree.Put(j)
			continue
		}
		c.jobs[w] = j
		w++
	}
	for i := w; i < len(c.jobs); i++ {
		c.jobs[i] = nil
	}
	c.jobs = c.jobs[:w]
	c.reschedule()
	for i := range c.doneScratch {
		d := &c.doneScratch[i]
		if d.done != nil {
			d.done(d.arg)
		}
		d.done = nil
		d.arg = nil
	}
}

// Submit enqueues cycles of CPU demand; done (optional, with its context
// arg) fires when they have been executed. Zero or negative demand
// completes on the next event tick.
func (c *CPU) Submit(cycles float64, done sim.Callback, arg any) {
	c.advance()
	if cycles < 0 {
		cycles = 0
	}
	j := c.jobFree.Get()
	j.remaining = cycles
	j.done = done
	j.arg = arg
	j.seq = c.nextSeq
	c.nextSeq++
	c.jobCount++
	c.jobs = append(c.jobs, j)
	c.reschedule()
}

// SetSpeed scales effective capacity by factor (>=0). The hypervisor's
// credit scheduler calls this each quantum; factor 0 freezes the domain.
func (c *CPU) SetSpeed(factor float64) {
	if factor < 0 {
		factor = 0
	}
	c.advance()
	c.speed = factor
	c.reschedule()
}

// Speed reports the current scaling factor.
func (c *CPU) Speed() float64 { return c.speed }

// Utilization reports the busy fraction over the window ending now,
// given the counter value at the window start.
func (c *CPU) Utilization(busyAtStart sim.Time, window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.BusyTime()-busyAtStart) / float64(window)
}
