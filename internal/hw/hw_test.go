package hw

import (
	"math"
	"testing"
	"testing/quick"

	"vwchar/internal/sim"
)

func TestCPUSingleJobTiming(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 4, 1e9)
	var doneAt sim.Time
	cpu.Submit(2e9, func(any) { doneAt = k.Now() }, nil) // 2s of work on one core
	k.Run(sim.MaxTime)
	if doneAt != 2*sim.Second {
		t.Fatalf("done at %v, want 2s", doneAt)
	}
	if got := cpu.TotalCycles(); !almostEq(got, 2e9, 1) {
		t.Fatalf("TotalCycles = %v", got)
	}
	if cpu.Jobs() != 1 {
		t.Fatalf("Jobs = %d", cpu.Jobs())
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCPUParallelJobsUseAllCores(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 4, 1e9)
	finish := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		cpu.Submit(1e9, func(any) { finish[i] = k.Now() }, nil)
	}
	k.Run(sim.MaxTime)
	for i, f := range finish {
		if f != sim.Second {
			t.Fatalf("job %d finished at %v, want 1s (4 cores, 4 jobs)", i, f)
		}
	}
}

func TestCPUOverloadSharesCapacity(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 2, 1e9)
	var finishes []sim.Time
	for i := 0; i < 4; i++ {
		cpu.Submit(1e9, func(any) { finishes = append(finishes, k.Now()) }, nil)
	}
	k.Run(sim.MaxTime)
	// 4 jobs on 2 cores: each runs at 0.5e9 cyc/s, so all finish at 2s.
	for _, f := range finishes {
		if f != 2*sim.Second {
			t.Fatalf("finish at %v, want 2s", f)
		}
	}
	if got := cpu.TotalCycles(); !almostEq(got, 4e9, 10) {
		t.Fatalf("TotalCycles = %v, want 4e9", got)
	}
}

func TestCPUSpeedScaling(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 1, 1e9)
	cpu.SetSpeed(0.5)
	var doneAt sim.Time
	cpu.Submit(1e9, func(any) { doneAt = k.Now() }, nil)
	k.Run(sim.MaxTime)
	if doneAt != 2*sim.Second {
		t.Fatalf("half-speed job done at %v, want 2s", doneAt)
	}
}

func TestCPUFreezeAndThaw(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 1, 1e9)
	var doneAt sim.Time
	cpu.Submit(1e9, func(any) { doneAt = k.Now() }, nil)
	k.At(500*sim.Millisecond, func() { cpu.SetSpeed(0) })
	k.At(1500*sim.Millisecond, func() { cpu.SetSpeed(1) })
	k.Run(sim.MaxTime)
	// 0.5s of work, 1s frozen, then remaining 0.5s: done at 2s.
	if doneAt != 2*sim.Second {
		t.Fatalf("frozen job done at %v, want 2s", doneAt)
	}
}

func TestCPUMidRunArrival(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 1, 1e9)
	var first, second sim.Time
	cpu.Submit(1e9, func(any) { first = k.Now() }, nil)
	k.At(500*sim.Millisecond, func() {
		cpu.Submit(0.5e9, func(any) { second = k.Now() }, nil)
	})
	k.Run(sim.MaxTime)
	// After 0.5s: job1 has 0.5e9 left, job2 has 0.5e9; sharing one core
	// they both finish at 0.5 + 1.0 = 1.5s.
	if first != 1500*sim.Millisecond || second != 1500*sim.Millisecond {
		t.Fatalf("first=%v second=%v, want 1.5s both", first, second)
	}
}

func TestCPUBusyTimeAndUtilization(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(k, "c", 1, 1e9)
	cpu.Submit(1e9, nil, nil)
	k.Run(4 * sim.Second)
	if got := cpu.BusyTime(); got != sim.Second {
		t.Fatalf("BusyTime = %v, want 1s", got)
	}
	if u := cpu.Utilization(0, 4*sim.Second); !almostEq(u, 0.25, 1e-9) {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

func TestCPUConstructorValidation(t *testing.T) {
	k := sim.NewKernel()
	for _, fn := range []func(){
		func() { NewCPU(k, "x", 0, 1e9) },
		func() { NewCPU(k, "x", 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid CPU construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDiskServiceTime(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, "d", 4*sim.Millisecond, 100e6)
	var doneAt sim.Time
	d.Submit(100e6, false, func(any) { doneAt = k.Now() }, nil) // 1s transfer + 4ms
	k.Run(sim.MaxTime)
	if doneAt != sim.Second+4*sim.Millisecond {
		t.Fatalf("done at %v", doneAt)
	}
	if d.ReadBytes() != 100e6 || d.WrittenBytes() != 0 {
		t.Fatalf("counters: r=%v w=%v", d.ReadBytes(), d.WrittenBytes())
	}
	r, w := d.Ops()
	if r != 1 || w != 0 {
		t.Fatalf("ops: %d/%d", r, w)
	}
}

func TestDiskFIFOQueueing(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, "d", 0, 100e6)
	var first, second sim.Time
	d.Submit(100e6, true, func(any) { first = k.Now() }, nil)
	d.Submit(100e6, true, func(any) { second = k.Now() }, nil)
	k.Run(sim.MaxTime)
	if first != sim.Second || second != 2*sim.Second {
		t.Fatalf("first=%v second=%v", first, second)
	}
	if d.QueueDelay() != 0 {
		t.Fatalf("QueueDelay after drain = %v", d.QueueDelay())
	}
}

func TestDiskAccount(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, "d", 0, 100e6)
	d.Account(500, true)
	d.Account(300, false)
	d.Account(-10, true) // ignored
	if d.WrittenBytes() != 500 || d.ReadBytes() != 300 {
		t.Fatalf("account: r=%v w=%v", d.ReadBytes(), d.WrittenBytes())
	}
}

func TestNICTransferAndCounters(t *testing.T) {
	k := sim.NewKernel()
	n := NewNIC(k, "n", sim.Millisecond, 125e6)
	var sentAt, recvAt sim.Time
	n.Send(125e6, func(any) { sentAt = k.Now() }, nil)
	n.Receive(125e6, func(any) { recvAt = k.Now() }, nil)
	k.Run(sim.MaxTime)
	if sentAt != sim.Second+sim.Millisecond {
		t.Fatalf("sentAt = %v", sentAt)
	}
	if recvAt != sim.Second {
		t.Fatalf("recvAt = %v", recvAt)
	}
	if n.TxBytes() != 125e6 || n.RxBytes() != 125e6 {
		t.Fatalf("bytes: tx=%v rx=%v", n.TxBytes(), n.RxBytes())
	}
	rx, tx := n.Packets()
	if rx == 0 || tx == 0 {
		t.Fatal("packet counters should advance")
	}
}

func TestNICFullDuplex(t *testing.T) {
	k := sim.NewKernel()
	n := NewNIC(k, "n", 0, 125e6)
	var sentAt, recvAt sim.Time
	n.Send(125e6, func(any) { sentAt = k.Now() }, nil)
	n.Receive(125e6, func(any) { recvAt = k.Now() }, nil)
	k.Run(sim.MaxTime)
	// Full duplex: both directions complete at 1s, not serialized.
	if sentAt != sim.Second || recvAt != sim.Second {
		t.Fatalf("sent=%v recv=%v, want 1s both", sentAt, recvAt)
	}
}

func TestMemoryAccounting(t *testing.T) {
	m := NewMemory(1000)
	m.Set("app", 300)
	m.Add("cache", 200)
	if m.Used() != 500 || m.Free() != 500 {
		t.Fatalf("used=%v free=%v", m.Used(), m.Free())
	}
	m.Add("cache", -500)
	if m.Get("cache") != 0 {
		t.Fatal("negative component should clamp to 0")
	}
	m.Set("app", 5000)
	if m.Used() != 1000 {
		t.Fatalf("Used should clamp to capacity, got %v", m.Used())
	}
	m.Set("app", 0)
	if m.Get("app") != 0 {
		t.Fatal("Set(0) should clear")
	}
}

func TestServerSpec(t *testing.T) {
	spec := ProLiantSpec("host0")
	if spec.Cores != 8 || spec.FreqHz != 2.8e9 {
		t.Fatalf("spec CPU: %+v", spec)
	}
	if spec.RAMBytes != 32<<30 {
		t.Fatalf("spec RAM: %v", spec.RAMBytes)
	}
	k := sim.NewKernel()
	s := NewServer(k, spec)
	if s.CPU.Cores() != 8 || s.Mem.Capacity() != float64(32<<30) {
		t.Fatal("server devices do not match spec")
	}
}

// Property: cycle conservation — total cycles consumed equals total
// cycles submitted once all jobs drain, for any job mix.
func TestPropertyCPUCycleConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		k := sim.NewKernel()
		cpu := NewCPU(k, "c", 3, 1e9)
		total := 0.0
		done := 0
		for _, r := range raw {
			cycles := float64(r) * 1e5
			total += cycles
			cpu.Submit(cycles, func(any) { done++ }, nil)
		}
		k.Run(sim.MaxTime)
		if done != len(raw) {
			return false
		}
		return almostEq(cpu.TotalCycles(), total, 1e-3*total+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: disk byte counters equal the sum of submitted sizes, split
// by direction.
func TestPropertyDiskByteConservation(t *testing.T) {
	f := func(raw []uint16, dirs []bool) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		k := sim.NewKernel()
		d := NewDisk(k, "d", sim.Millisecond, 100e6)
		var reads, writes float64
		for i, r := range raw {
			write := i < len(dirs) && dirs[i]
			b := float64(r)
			if write {
				writes += b
			} else {
				reads += b
			}
			d.Submit(b, write, nil, nil)
		}
		k.Run(sim.MaxTime)
		return d.ReadBytes() == reads && d.WrittenBytes() == writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
