package faults

import (
	"encoding/json"
	"reflect"
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", Schedule{}, true},
		{"recurring", Schedule{WebCrash: &Component{MTTFSeconds: 100, MTTRSeconds: 10}}, true},
		{"one-shot", Schedule{DBCrash: &Component{AtSeconds: 30}}, true},
		{"no-times", Schedule{WebCrash: &Component{}}, false},
		{"negative-mttf", Schedule{WebCrash: &Component{MTTFSeconds: -1}}, false},
		{"negative-target", Schedule{WebCrash: &Component{AtSeconds: 5, Targets: []int{-1}}}, false},
		{"slow-needs-factor", Schedule{SlowNode: &Component{AtSeconds: 5}}, false},
		{"slow-factor-one", Schedule{SlowNode: &Component{AtSeconds: 5, Value: 1}}, false},
		{"slow-ok", Schedule{SlowNode: &Component{AtSeconds: 5, Value: 2.5}}, true},
		{"lag-needs-value", Schedule{LagSpike: &Component{AtSeconds: 5}}, false},
		{"lag-ok", Schedule{LagSpike: &Component{AtSeconds: 5, Value: 0.5}}, true},
		{"delay-ok", Schedule{PathDelay: &Component{MTTFSeconds: 60, MTTRSeconds: 5, Value: 0.01}}, true},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestResilienceValidateAndDefaults(t *testing.T) {
	var nilSpec *ResilienceSpec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec: %v", err)
	}
	bad := []ResilienceSpec{
		{TimeoutMillis: -1},
		{Retries: -1},
		{RetryBudget: -0.5},
		{Breaker: &BreakerSpec{ErrorThreshold: 0}},
		{Breaker: &BreakerSpec{ErrorThreshold: 1.5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d]: want error", i)
		}
	}
	// High retry budgets are deliberately legal (retry-storm experiments).
	storm := ResilienceSpec{Retries: 3, RetryBudget: 4}
	if err := storm.Validate(); err != nil {
		t.Fatalf("storm budget: %v", err)
	}
	d := (ResilienceSpec{Retries: 2}).WithDefaults()
	if d.BackoffMillis != 50 || d.RetryBudget != 0.2 {
		t.Fatalf("retry defaults: %+v", d)
	}
	if d.HealthEverySeconds != 1 || d.EjectAfterChecks != 3 || d.FailoverDetectSeconds != 5 {
		t.Fatalf("health defaults: %+v", d)
	}
	b := (ResilienceSpec{Breaker: &BreakerSpec{ErrorThreshold: 0.5}}).WithDefaults()
	if b.Breaker.WindowRequests != 64 || b.Breaker.OpenMillis != 1000 {
		t.Fatalf("breaker defaults: %+v", b.Breaker)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{
		WebCrash: &Component{MTTFSeconds: 300, MTTRSeconds: 30, Targets: []int{1, 2}},
		DBCrash:  &Component{AtSeconds: 120},
		SlowNode: &Component{AtSeconds: 60, MTTRSeconds: 90, Value: 2},
	}
	raw, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
	}
}

func TestExpandOneShot(t *testing.T) {
	s := Schedule{DBCrash: &Component{AtSeconds: 10, MTTRSeconds: 5, Targets: []int{0}}}
	ev := s.Expand(sim.Seconds(60), Targets{Webs: 2, DBs: 2, Machines: 1}, rng.NewSource(1))
	want := []Event{
		{At: sim.Seconds(10), Kind: DBDown, Target: 0},
		{At: sim.Seconds(15), Kind: DBUp, Target: 0},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("got %+v want %+v", ev, want)
	}
	// Permanent one-shot: no recovery event.
	s = Schedule{DBCrash: &Component{AtSeconds: 10, Targets: []int{0}}}
	ev = s.Expand(sim.Seconds(60), Targets{DBs: 2}, rng.NewSource(1))
	if len(ev) != 1 || ev[0].Kind != DBDown {
		t.Fatalf("permanent: got %+v", ev)
	}
}

func TestExpandDeterministicAndSorted(t *testing.T) {
	s := Schedule{
		WebCrash:  &Component{MTTFSeconds: 40, MTTRSeconds: 8},
		SlowNode:  &Component{MTTFSeconds: 70, MTTRSeconds: 20, Value: 2},
		PathDelay: &Component{MTTFSeconds: 50, MTTRSeconds: 10, Value: 0.005},
	}
	tg := Targets{Webs: 3, DBs: 2, Machines: 2}
	a := s.Expand(sim.Seconds(600), tg, rng.NewSource(42))
	b := s.Expand(sim.Seconds(600), tg, rng.NewSource(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion not deterministic for a fixed seed")
	}
	if len(a) == 0 {
		t.Fatal("vacuous: no events expanded")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events not sorted at %d: %+v after %+v", i, a[i], a[i-1])
		}
	}
	// Down/Start events carry the component value.
	sawSlow := false
	for _, e := range a {
		if e.Kind == SlowStart {
			sawSlow = true
			if e.Value != 2 {
				t.Fatalf("slow-start value = %g, want 2", e.Value)
			}
		}
	}
	if !sawSlow {
		t.Fatal("no slow-start events in 600s with MTTF 70s")
	}
	// Adding an unrelated component must not perturb existing draws
	// (per-target named substreams).
	s2 := s
	s2.DBCrash = &Component{MTTFSeconds: 90, MTTRSeconds: 15}
	c := s2.Expand(sim.Seconds(600), tg, rng.NewSource(42))
	var filtered []Event
	for _, e := range c {
		if e.Kind != DBDown && e.Kind != DBUp {
			filtered = append(filtered, e)
		}
	}
	if !reflect.DeepEqual(a, filtered) {
		t.Fatal("adding db_crash perturbed other components' timelines")
	}
}

func TestExpandSkipsOutOfRangeTargets(t *testing.T) {
	s := Schedule{WebCrash: &Component{AtSeconds: 5, Targets: []int{0, 7}}}
	ev := s.Expand(sim.Seconds(60), Targets{Webs: 2}, rng.NewSource(1))
	if len(ev) != 1 || ev[0].Target != 0 {
		t.Fatalf("want only target 0, got %+v", ev)
	}
}

func TestCatalog(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 3 {
		t.Fatalf("catalog too small: %v", names)
	}
	for _, n := range names {
		sc, err := ScenarioByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Faults.Validate(); err != nil {
			t.Errorf("%s: fault schedule invalid: %v", n, err)
		}
		if err := sc.Resilience.Validate(); err != nil {
			t.Errorf("%s: resilience invalid: %v", n, err)
		}
		if sc.Faults.Empty() {
			t.Errorf("%s: empty fault schedule", n)
		}
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("want error for unknown scenario")
	}
}
