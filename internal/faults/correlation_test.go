package faults

import (
	"reflect"
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// TestCorrelationValidate pins the correlation validator's rejections.
func TestCorrelationValidate(t *testing.T) {
	bad := []Correlation{
		{Groups: []SharedFateGroup{{Machines: []int{0}, AtSeconds: 1}}},                                                           // no name
		{Groups: []SharedFateGroup{{Name: "g"}}},                                                                                  // no machines
		{Groups: []SharedFateGroup{{Name: "g", Machines: []int{0}}}},                                                              // no mttf/at
		{Groups: []SharedFateGroup{{Name: "g", Machines: []int{0}, MTTFSeconds: 1e-6}}},                                           // mttf below floor
		{Groups: []SharedFateGroup{{Name: "g", Machines: []int{0}, AtSeconds: 1}, {Name: "g", Machines: []int{1}, AtSeconds: 2}}}, // dup name
		{Storms: []Storm{{Name: "s", Component: "nope", RatePerHour: 1}}},                                                         // bad class
		{Storms: []Storm{{Name: "s", Component: "web_crash"}}},                                                                    // rate 0
		{Storms: []Storm{{Name: "s", Component: "web_crash", RatePerHour: 1, Profile: "square"}}},                                 // bad profile
		{Storms: []Storm{{Name: "s", Component: "web_crash", RatePerHour: 1e9, Profile: ProfileDiurnal}}},                         // over the cap
		{Triggers: []Trigger{{Name: "t", While: "rack", Component: "web_crash", MTTFSeconds: 10}}},                                // bad condition
		{Triggers: []Trigger{{Name: "t", While: ClassDB, Component: "web_crash"}}},                                                // mttf 0
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid correlation accepted: %+v", i, c)
		}
	}
	good := Correlation{
		Groups:   []SharedFateGroup{{Name: "rack0", Machines: []int{0, 1}, AtSeconds: 100, MTTRSeconds: 60}},
		Storms:   []Storm{{Name: "peak", Component: "web_crash", RatePerHour: 30, Profile: ProfileDiurnal, MTTRSeconds: 45}},
		Triggers: []Trigger{{Name: "pair", While: ClassWeb, Component: "web_crash", MTTFSeconds: 30, MTTRSeconds: 20}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid correlation rejected: %v", err)
	}
}

// TestGroupSharedFate pins the tentpole contract: every member machine
// of a shared-fate group goes down and recovers at the identical
// instants, with the group's name as origin.
func TestGroupSharedFate(t *testing.T) {
	s := Schedule{Correlation: &Correlation{
		Groups: []SharedFateGroup{{Name: "rack0", Machines: []int{0, 2}, AtSeconds: 100, MTTRSeconds: 60}},
	}}
	ev := s.Expand(400*sim.Second, Targets{Machines: 3}, rng.NewSource(1))
	byKind := map[Kind][]Event{}
	for _, e := range ev {
		if e.Origin != "rack0" {
			t.Fatalf("unexpected origin on %+v", e)
		}
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}
	downs, ups := byKind[MachineDown], byKind[MachineUp]
	if len(downs) != 2 || len(ups) != 2 {
		t.Fatalf("group events = %d down / %d up, want 2/2: %+v", len(downs), len(ups), ev)
	}
	if downs[0].At != downs[1].At || ups[0].At != ups[1].At {
		t.Fatalf("shared fate broken: members fail at different instants: %+v", ev)
	}
	if downs[0].At != 100*sim.Second {
		t.Fatalf("one-shot at = %v, want 100s", downs[0].At)
	}
	if got := map[int]bool{downs[0].Target: true, downs[1].Target: true}; !got[0] || !got[2] {
		t.Fatalf("wrong members hit: %+v", downs)
	}
}

// TestStormExpansion pins the storm process: a flat storm inside the
// horizon yields matched down/up pairs on in-range victims, all carrying
// the storm's origin, and is deterministic in the seed.
func TestStormExpansion(t *testing.T) {
	s := Schedule{Correlation: &Correlation{
		Storms: []Storm{{Name: "squall", Component: "web_crash", RatePerHour: 3600, MTTRSeconds: 10}},
	}}
	tg := Targets{Webs: 3}
	ev := s.Expand(600*sim.Second, tg, rng.NewSource(3))
	if len(ev) == 0 {
		t.Fatal("an hour-rate storm over 600s produced nothing")
	}
	downs := 0
	for _, e := range ev {
		if e.Origin != "squall" {
			t.Fatalf("unexpected origin on %+v", e)
		}
		if e.Target < 0 || e.Target >= tg.Webs {
			t.Fatalf("victim out of range: %+v", e)
		}
		if e.Kind == WebDown {
			downs++
		}
	}
	if downs == 0 {
		t.Fatal("storm produced no down events")
	}
	ev2 := s.Expand(600*sim.Second, tg, rng.NewSource(3))
	if !reflect.DeepEqual(ev, ev2) {
		t.Fatal("storm expansion not deterministic")
	}
}

// TestTriggerThinning pins the conditional hazard: trigger events land
// only inside the condition component's down intervals.
func TestTriggerThinning(t *testing.T) {
	s := Schedule{
		DBCrash: &Component{AtSeconds: 100, MTTRSeconds: 200, Targets: []int{0}},
		Correlation: &Correlation{
			Triggers: []Trigger{{
				Name: "overload", While: ClassDB, WhileTarget: 0,
				Component: "web_crash", MTTFSeconds: 5, MTTRSeconds: 2,
			}},
		},
	}
	ev := s.Expand(600*sim.Second, Targets{Webs: 2, DBs: 1}, rng.NewSource(9))
	fired := 0
	for _, e := range ev {
		if e.Origin != "overload" || e.Kind != WebDown {
			continue
		}
		fired++
		if e.At < 100*sim.Second || e.At >= 300*sim.Second {
			t.Fatalf("trigger fired outside the condition's down interval: %+v", e)
		}
	}
	// MTTF 5s over a 200s armed interval: many firings expected.
	if fired < 5 {
		t.Fatalf("trigger fired %d times over a 200s armed interval at MTTF 5s", fired)
	}
}

// TestCorrelationSubstreamIsolation is the determinism satellite:
// adding a correlation feature must not perturb the base component
// events, and adding a second storm must not perturb the first.
func TestCorrelationSubstreamIsolation(t *testing.T) {
	const dur = 600 * sim.Second
	tg := Targets{Webs: 3, DBs: 2, Machines: 2}
	filter := func(ev []Event, origin string) []Event {
		var out []Event
		for _, e := range ev {
			if e.Origin == origin {
				out = append(out, e)
			}
		}
		return out
	}

	base := Schedule{
		WebCrash: &Component{MTTFSeconds: 120, MTTRSeconds: 30},
		DBCrash:  &Component{AtSeconds: 200, MTTRSeconds: 50, Targets: []int{0}},
	}
	plain := base.Expand(dur, tg, rng.NewSource(42))

	withCorr := base
	withCorr.Correlation = &Correlation{
		Groups: []SharedFateGroup{{Name: "rack0", Machines: []int{0, 1}, AtSeconds: 150, MTTRSeconds: 40}},
		Storms: []Storm{{Name: "a", Component: "web_crash", RatePerHour: 120, MTTRSeconds: 20}},
	}
	mixed := withCorr.Expand(dur, tg, rng.NewSource(42))
	if got, want := filter(mixed, ""), filter(plain, ""); !reflect.DeepEqual(got, want) {
		t.Fatalf("correlation perturbed the base component events:\nwith: %+v\nwithout: %+v", got, want)
	}

	withB := withCorr
	withB.Correlation = &Correlation{
		Groups: withCorr.Correlation.Groups,
		Storms: append([]Storm{}, withCorr.Correlation.Storms[0],
			Storm{Name: "b", Component: "db_crash", RatePerHour: 60, MTTRSeconds: 20}),
	}
	both := withB.Expand(dur, tg, rng.NewSource(42))
	if got, want := filter(both, "a"), filter(mixed, "a"); !reflect.DeepEqual(got, want) {
		t.Fatalf("adding storm b perturbed storm a's events")
	}
	if got, want := filter(both, "rack0"), filter(mixed, "rack0"); !reflect.DeepEqual(got, want) {
		t.Fatalf("adding storm b perturbed the group's events")
	}
	if len(filter(both, "b")) == 0 {
		t.Fatal("storm b vacuous")
	}
}

// TestHazardBrownoutValidate pins the in-run specs' validators.
func TestHazardBrownoutValidate(t *testing.T) {
	badH := []HazardSpec{
		{UtilThreshold: 0, CrashProb: 0.1},
		{UtilThreshold: 2, CrashProb: 0},
		{UtilThreshold: 2, CrashProb: 1.5},
		{UtilThreshold: 2, CrashProb: 0.1, MTTRSeconds: -1},
	}
	for i, h := range badH {
		if err := h.Validate(); err == nil {
			t.Errorf("hazard case %d accepted: %+v", i, h)
		}
	}
	if err := (&HazardSpec{UtilThreshold: 4, CrashProb: 0.05, MTTRSeconds: 60}).Validate(); err != nil {
		t.Fatalf("valid hazard rejected: %v", err)
	}
	badB := []BrownoutSpec{
		{EnterUtil: 0},
		{EnterUtil: 2, ExitUtil: 3},
		{EnterUtil: 2, DropFraction: 1.5},
		{EnterUtil: 2, MaxLevel: -1},
	}
	for i, b := range badB {
		if err := b.Validate(); err == nil {
			t.Errorf("brownout case %d accepted: %+v", i, b)
		}
	}
	b := (&BrownoutSpec{EnterUtil: 3}).WithDefaults()
	if b.ExitUtil != 1.5 || b.DropFraction != 0.5 || b.MaxLevel != 2 {
		t.Fatalf("brownout defaults wrong: %+v", b)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("defaulted brownout rejected: %v", err)
	}
}
