// Package faults provides seed-deterministic fault injection for the
// simulated cluster: a validated, JSON round-trippable schedule of
// crash/restart and degraded-mode events, expanded into a concrete
// timeline from named rng substreams so a fixed seed yields a
// byte-identical fault sequence at any worker count.
//
// The package deliberately knows nothing about tiers: it produces a
// sorted []Event that internal/tiers applies to live servers. The
// reaction side (timeouts, retries, failover, breakers) is configured
// here too, via ResilienceSpec, so both halves of the robustness story
// ride on experiment.Config and round-trip through JSON.
package faults

import (
	"fmt"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// Component describes one fault class in the schedule. Two shapes are
// supported:
//
//   - Recurring: MTTFSeconds > 0. Failures arrive with exponentially
//     distributed inter-failure times (mean MTTF); each failure lasts
//     an exponentially distributed repair time (mean MTTR). MTTR <= 0
//     makes every failure permanent.
//   - One-shot: MTTFSeconds == 0 and AtSeconds > 0. A single failure
//     at exactly AtSeconds, repaired after exactly MTTRSeconds
//     (permanent when MTTRSeconds <= 0). AtSeconds also offsets the
//     first failure of a recurring component when both are set.
//
// Targets selects which instances the component applies to (web
// replica indices, DB instance indices where 0 is the primary, or
// machine indices); empty means all instances of that class. Value
// carries the degraded-mode magnitude: CPU slowdown factor for
// SlowNode (> 1), added replica lag in seconds for LagSpike, added
// cross-machine path delay in seconds for PathDelay.
type Component struct {
	MTTFSeconds float64 `json:"mttf_seconds,omitempty"`
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
	AtSeconds   float64 `json:"at_seconds,omitempty"`
	Targets     []int   `json:"targets,omitempty"`
	Value       float64 `json:"value,omitempty"`
}

// Schedule is the full fault configuration carried by
// experiment.Config. Every field is optional; a zero Schedule injects
// nothing. The schedule is expanded deterministically by Expand.
type Schedule struct {
	// WebCrash crashes and restarts web replicas.
	WebCrash *Component `json:"web_crash,omitempty"`
	// DBCrash crashes and restarts DB instances (target 0 is the
	// primary; 1..R are read replicas).
	DBCrash *Component `json:"db_crash,omitempty"`
	// MachineCrash takes down whole machines: every VM placed on the
	// target machine crashes and recovers together.
	MachineCrash *Component `json:"machine_crash,omitempty"`
	// SlowNode multiplies CPU service demand on the target machine's
	// co-placed servers by Value ("limpware"; Value > 1).
	SlowNode *Component `json:"slow_node,omitempty"`
	// LagSpike adds Value seconds to the DB replication lag while
	// active (single global target).
	LagSpike *Component `json:"lag_spike,omitempty"`
	// PathDelay adds Value seconds to every cross-machine transfer
	// while active (single global target).
	PathDelay *Component `json:"path_delay,omitempty"`
	// Correlation layers coupled failure modes (shared-fate groups,
	// storms, conditional triggers) on top of the independent
	// components above; nil adds nothing.
	Correlation *Correlation `json:"correlation,omitempty"`
	// Hazard couples crashes to load at run time: a per-window crash
	// probability for overloaded web replicas, drawn in-run from a
	// dedicated substream (it cannot be pre-expanded); nil disables.
	Hazard *HazardSpec `json:"hazard,omitempty"`
	// CacheCrash crashes and restarts the cache node (a restart is a
	// cold cache); QueueCrash crashes and restarts the write-behind
	// queue node (the journaled backlog survives, so recovery shows a
	// lag spike). Both are single-instance tiers: target 0.
	CacheCrash *Component `json:"cache_crash,omitempty"`
	QueueCrash *Component `json:"queue_crash,omitempty"`
}

// Empty reports whether the schedule injects no faults at all.
func (s *Schedule) Empty() bool {
	return s == nil || (s.WebCrash == nil && s.DBCrash == nil &&
		s.MachineCrash == nil && s.SlowNode == nil &&
		s.LagSpike == nil && s.PathDelay == nil &&
		s.CacheCrash == nil && s.QueueCrash == nil &&
		s.Correlation.Empty() && s.Hazard == nil)
}

func (c *Component) validate(name string, needValue bool, minValue float64) error {
	if c.MTTFSeconds < 0 || c.MTTRSeconds < 0 || c.AtSeconds < 0 {
		return fmt.Errorf("faults: %s: negative mttf/mttr/at", name)
	}
	if c.MTTFSeconds == 0 && c.AtSeconds == 0 {
		return fmt.Errorf("faults: %s: need mttf_seconds > 0 (recurring) or at_seconds > 0 (one-shot)", name)
	}
	if c.MTTFSeconds > 0 && c.MTTFSeconds < minMTTF {
		return fmt.Errorf("faults: %s: mttf_seconds below %g would explode the timeline", name, minMTTF)
	}
	for _, t := range c.Targets {
		if t < 0 {
			return fmt.Errorf("faults: %s: negative target index %d", name, t)
		}
	}
	if needValue && c.Value <= minValue {
		return fmt.Errorf("faults: %s: value must be > %g, got %g", name, minValue, c.Value)
	}
	return nil
}

// Validate checks the schedule for internal consistency. It does not
// check target indices against a topology (out-of-range targets are
// skipped at expansion time so one schedule can apply to several
// topologies).
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	type entry struct {
		c         *Component
		name      string
		needValue bool
		minValue  float64
	}
	for _, e := range []entry{
		{s.WebCrash, "web_crash", false, 0},
		{s.DBCrash, "db_crash", false, 0},
		{s.MachineCrash, "machine_crash", false, 0},
		{s.SlowNode, "slow_node", true, 1},
		{s.LagSpike, "lag_spike", true, 0},
		{s.PathDelay, "path_delay", true, 0},
		{s.CacheCrash, "cache_crash", false, 0},
		{s.QueueCrash, "queue_crash", false, 0},
	} {
		if e.c == nil {
			continue
		}
		if err := e.c.validate(e.name, e.needValue, e.minValue); err != nil {
			return err
		}
	}
	if err := s.Correlation.Validate(); err != nil {
		return err
	}
	return s.Hazard.Validate()
}

// Kind identifies a timeline event type. Down/Start events flip a
// component into its failed/degraded state; Up/End events restore it.
type Kind uint8

const (
	WebDown Kind = iota
	WebUp
	DBDown
	DBUp
	MachineDown
	MachineUp
	SlowStart
	SlowEnd
	LagStart
	LagEnd
	DelayStart
	DelayEnd
	CacheDown
	CacheUp
	QueueDown
	QueueUp
)

var kindNames = [...]string{
	WebDown: "web-down", WebUp: "web-up",
	DBDown: "db-down", DBUp: "db-up",
	MachineDown: "machine-down", MachineUp: "machine-up",
	SlowStart: "slow-start", SlowEnd: "slow-end",
	LagStart: "lag-start", LagEnd: "lag-end",
	DelayStart: "delay-start", DelayEnd: "delay-end",
	CacheDown: "cache-down", CacheUp: "cache-up",
	QueueDown: "queue-down", QueueUp: "queue-up",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one entry in the expanded fault timeline.
type Event struct {
	At     sim.Time `json:"at"`
	Kind   Kind     `json:"kind"`
	Target int      `json:"target"`
	// Value carries the degraded-mode magnitude for Slow/Lag/Delay
	// start events (same meaning as Component.Value); 0 otherwise.
	Value float64 `json:"value,omitempty"`
	// Origin names the correlation feature (group, storm, or trigger)
	// that produced the event; empty for base-component events.
	Origin string `json:"origin,omitempty"`
}

// Targets gives the instance counts a schedule expands against.
type Targets struct {
	Webs     int
	DBs      int
	Machines int
	// Caches/Queues are 1 when the corresponding tier is deployed
	// (single-instance tiers), 0 otherwise.
	Caches int
	Queues int
}

type expandSpec struct {
	c        *Component
	name     string
	down, up Kind
	n        int
	value    float64
}

// Expand turns the schedule into a concrete, sorted event timeline
// covering [0, duration). Each (component, target) pair draws from its
// own named substream of src, so the timeline is a pure function of
// the root seed: adding a component never perturbs another's draws,
// and the expansion is identical at any worker count.
func (s *Schedule) Expand(duration sim.Time, tg Targets, src *rng.Source) []Event {
	if s.Empty() {
		return nil
	}
	var events []Event
	for _, sp := range []expandSpec{
		{s.WebCrash, "web_crash", WebDown, WebUp, tg.Webs, 0},
		{s.DBCrash, "db_crash", DBDown, DBUp, tg.DBs, 0},
		{s.MachineCrash, "machine_crash", MachineDown, MachineUp, tg.Machines, 0},
		{s.SlowNode, "slow_node", SlowStart, SlowEnd, tg.Machines, 0},
		{s.LagSpike, "lag_spike", LagStart, LagEnd, 1, 0},
		{s.PathDelay, "path_delay", DelayStart, DelayEnd, 1, 0},
		{s.CacheCrash, "cache_crash", CacheDown, CacheUp, tg.Caches, 0},
		{s.QueueCrash, "queue_crash", QueueDown, QueueUp, tg.Queues, 0},
	} {
		if sp.c == nil {
			continue
		}
		switch sp.down {
		case SlowStart, LagStart, DelayStart:
			sp.value = sp.c.Value
		}
		targets := sp.c.Targets
		if len(targets) == 0 {
			targets = make([]int, sp.n)
			for i := range targets {
				targets[i] = i
			}
		}
		for _, t := range targets {
			if t < 0 || t >= sp.n {
				continue // schedule written for a larger topology
			}
			st := src.Stream(fmt.Sprintf("faults-%s-%d", sp.name, t))
			events = appendComponent(events, sp.c, sp.down, sp.up, t, sp.value, duration, st)
		}
	}
	if c := s.Correlation; !c.Empty() {
		events = c.expandGroups(events, duration, tg, src)
		events = c.expandStorms(events, duration, tg, src)
		// Triggers thin against the condition's down intervals, so the
		// pre-trigger timeline must be ordered first.
		sortEvents(events)
		events = c.expandTriggers(events, duration, tg, src)
	}
	sortEvents(events)
	return events
}

func appendComponent(events []Event, c *Component, down, up Kind, target int, value float64, duration sim.Time, st *rng.Stream) []Event {
	if c.MTTFSeconds == 0 {
		// One-shot: exact times, no randomness.
		at := sim.Seconds(c.AtSeconds)
		if at >= duration {
			return events
		}
		events = append(events, Event{At: at, Kind: down, Target: target, Value: value})
		if c.MTTRSeconds > 0 {
			if rec := at + sim.Seconds(c.MTTRSeconds); rec < duration {
				events = append(events, Event{At: rec, Kind: up, Target: target})
			}
		}
		return events
	}
	// Recurring: alternate Exp(MTTF) up-time and Exp(MTTR) down-time.
	t := sim.Seconds(c.AtSeconds)
	if c.AtSeconds == 0 {
		t = sim.Seconds(st.Exp(c.MTTFSeconds))
	}
	for t < duration {
		events = append(events, Event{At: t, Kind: down, Target: target, Value: value})
		if c.MTTRSeconds <= 0 {
			return events // permanent failure
		}
		t += sim.Seconds(st.Exp(c.MTTRSeconds))
		if t >= duration {
			return events
		}
		events = append(events, Event{At: t, Kind: up, Target: target})
		t += sim.Seconds(st.Exp(c.MTTFSeconds))
	}
	return events
}
