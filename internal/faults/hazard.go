package faults

import "fmt"

// HazardSpec configures the endogenous, load-coupled crash hazard.
// Unlike the pre-expanded Schedule components, the hazard must be
// evaluated in-run: at every telemetry window boundary each web
// replica whose utilization (resident requests / worker pool) is at or
// above UtilThreshold crashes with probability CrashProb. Determinism
// contract: one uniform draw is consumed per replica per window, in
// replica-index order, from the dedicated "fault-hazard" substream —
// whether or not the replica is armed — so the draw sequence is a pure
// function of (seed, topology, window count) and the run stays
// byte-identical across worker counts even though crashes feed back
// into load (crash -> retry storm -> higher load -> next crash).
type HazardSpec struct {
	// UtilThreshold arms the hazard for a replica whose resident
	// requests / workers is at or above it (e.g. 1.5 = queue half a
	// pool deep beyond the in-service requests).
	UtilThreshold float64 `json:"util_threshold"`
	// CrashProb is the per-window crash probability while armed, in
	// (0, 1].
	CrashProb float64 `json:"crash_prob"`
	// MTTRSeconds is the mean (exponential) repair time for hazard
	// crashes; <= 0 makes them permanent.
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
	// MaxCrashes caps total hazard crashes for the run; 0 = unlimited.
	MaxCrashes int `json:"max_crashes,omitempty"`
}

// Validate checks the hazard spec.
func (h *HazardSpec) Validate() error {
	if h == nil {
		return nil
	}
	if h.UtilThreshold <= 0 {
		return fmt.Errorf("faults: hazard: util_threshold must be > 0")
	}
	if h.CrashProb <= 0 || h.CrashProb > 1 {
		return fmt.Errorf("faults: hazard: crash_prob must be in (0,1], got %g", h.CrashProb)
	}
	if h.MTTRSeconds < 0 {
		return fmt.Errorf("faults: hazard: negative mttr_seconds")
	}
	if h.MaxCrashes < 0 {
		return fmt.Errorf("faults: hazard: negative max_crashes")
	}
	return nil
}

// BrownoutSpec configures the overload controller: a degradation level
// that climbs one step per telemetry window while the cluster's mean
// per-replica utilization is at or above EnterUtil and falls one step
// while at or below ExitUtil. The serving path consults the level:
//
//	level 1   drops DropFraction of optional (read-only) requests at
//	          admission, via a deterministic error-diffusion
//	          accumulator (no randomness), and the LB fast-fails
//	          dispatches to replicas whose resident queue exceeds
//	          QueueBound instead of letting them pile up.
//	level >=2 drops all optional read work.
//
// Dropped requests complete fast with OutcomeDegraded — degraded but
// available, instead of queueing into metastable collapse.
type BrownoutSpec struct {
	// EnterUtil raises the level at a window boundary when mean
	// utilization (resident requests / workers, averaged over active
	// replicas) is at or above it.
	EnterUtil float64 `json:"enter_util"`
	// ExitUtil lowers the level when utilization is at or below it
	// (default EnterUtil/2).
	ExitUtil float64 `json:"exit_util,omitempty"`
	// DropFraction of optional reads dropped at level 1 (default 0.5).
	DropFraction float64 `json:"drop_fraction,omitempty"`
	// MaxLevel caps escalation (default 2).
	MaxLevel int `json:"max_level,omitempty"`
	// QueueBound is the per-replica resident-request cap enforced
	// while degraded (level >= 1): a dispatch that would land on a
	// replica already holding this many is fast-failed as degraded.
	// Default 4 x the replica worker pool; < 0 disables the bound.
	QueueBound int `json:"queue_bound,omitempty"`
}

// WithDefaults returns a copy with unset knobs filled in.
func (b BrownoutSpec) WithDefaults() BrownoutSpec {
	if b.ExitUtil == 0 {
		b.ExitUtil = b.EnterUtil / 2
	}
	if b.DropFraction == 0 {
		b.DropFraction = 0.5
	}
	if b.MaxLevel == 0 {
		b.MaxLevel = 2
	}
	return b
}

// Validate checks the brownout spec.
func (b *BrownoutSpec) Validate() error {
	if b == nil {
		return nil
	}
	if b.EnterUtil <= 0 {
		return fmt.Errorf("faults: brownout: enter_util must be > 0")
	}
	if b.ExitUtil < 0 || b.ExitUtil > b.EnterUtil {
		return fmt.Errorf("faults: brownout: exit_util must be in [0, enter_util]")
	}
	if b.DropFraction < 0 || b.DropFraction > 1 {
		return fmt.Errorf("faults: brownout: drop_fraction must be in [0,1]")
	}
	if b.MaxLevel < 0 {
		return fmt.Errorf("faults: brownout: negative max_level")
	}
	return nil
}
