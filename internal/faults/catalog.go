package faults

import (
	"fmt"
	"sort"
)

// Scenario is a named chaos experiment: a fault schedule plus the
// resilience configuration it is meant to exercise, and the topology
// minimums it needs to be meaningful. Scenarios join the load
// catalog's role as reproducible starting points for experiments.
type Scenario struct {
	Name    string
	Summary string
	// Load names a load.Spec catalog entry the scenario pairs well
	// with ("" = caller's choice).
	Load string
	// Topology minimums: the scenario requires at least this many web
	// replicas / DB read replicas / machines.
	MinWebReplicas int
	MinDBReplicas  int
	MinMachines    int
	Faults         Schedule
	Resilience     ResilienceSpec
}

func scenarios() map[string]Scenario {
	return map[string]Scenario{
		"kill-web-replica": {
			Name:           "kill-web-replica",
			Summary:        "crash web replica 1 mid-flash-crowd, recover after 60s; health checks eject and readmit it",
			Load:           "flash-crowd",
			MinWebReplicas: 2,
			Faults: Schedule{
				WebCrash: &Component{AtSeconds: 150, MTTRSeconds: 60, Targets: []int{1}},
			},
			Resilience: *DefaultResilience(),
		},
		"primary-failover": {
			Name:          "primary-failover",
			Summary:       "kill the DB primary under steady load; a read replica is promoted after the detection window",
			Load:          "steady",
			MinDBReplicas: 1,
			Faults: Schedule{
				DBCrash: &Component{AtSeconds: 120, Targets: []int{0}},
			},
			Resilience: *DefaultResilience(),
		},
		"rack-loss": {
			Name:           "rack-loss",
			Summary:        "a shared-fate rack holding machines 0 and 1 fails together at t=180s and is restored after ~90s",
			Load:           "steady",
			MinWebReplicas: 2,
			MinMachines:    2,
			Faults: Schedule{
				Correlation: &Correlation{
					Groups: []SharedFateGroup{{
						Name: "rack0", Machines: []int{0, 1},
						AtSeconds: 180, MTTRSeconds: 90,
					}},
				},
			},
			Resilience: *DefaultResilience(),
		},
		"peak-storm": {
			Name:           "peak-storm",
			Summary:        "a diurnal fault storm crashes web replicas at 3x the base rate around the load peak",
			Load:           "diurnal",
			MinWebReplicas: 3,
			Faults: Schedule{
				Correlation: &Correlation{
					Storms: []Storm{{
						Name: "peak", Component: "web_crash",
						RatePerHour: 30, Profile: ProfileDiurnal,
						PeriodSeconds: 600, PeakSeconds: 300, PeakFactor: 3,
						MTTRSeconds: 45,
					}},
				},
			},
			Resilience: *DefaultResilience(),
		},
		"load-cascade": {
			Name:           "load-cascade",
			Summary:        "one web replica crashes exogenously; the survivors' overload feeds a load-coupled crash hazard",
			Load:           "flash-crowd",
			MinWebReplicas: 3,
			Faults: Schedule{
				WebCrash: &Component{AtSeconds: 150, MTTRSeconds: 120, Targets: []int{1}},
				Hazard:   &HazardSpec{UtilThreshold: 4, CrashProb: 0.05, MTTRSeconds: 60, MaxCrashes: 2},
			},
			Resilience: *DefaultResilience(),
		},
		"brownout": {
			Name:           "brownout",
			Summary:        "load-cascade with the overload controller armed: optional reads brown out before the hazard can compound",
			Load:           "flash-crowd",
			MinWebReplicas: 3,
			Faults: Schedule{
				WebCrash: &Component{AtSeconds: 150, MTTRSeconds: 120, Targets: []int{1}},
				Hazard:   &HazardSpec{UtilThreshold: 4, CrashProb: 0.05, MTTRSeconds: 60, MaxCrashes: 2},
			},
			Resilience: func() ResilienceSpec {
				r := *DefaultResilience()
				r.Brownout = &BrownoutSpec{EnterUtil: 2, ExitUtil: 1, DropFraction: 0.5, MaxLevel: 2}
				return r
			}(),
		},
		"autoscaler-chaos": {
			Name:           "autoscaler-chaos",
			Summary:        "web replicas crash mid-scale-up under a ramp; ejection must not starve minActive and the scaler must not double-provision",
			Load:           "flash-crowd",
			MinWebReplicas: 2,
			Faults: Schedule{
				WebCrash: &Component{AtSeconds: 200, MTTFSeconds: 240, MTTRSeconds: 90, Targets: []int{0, 1}},
			},
			Resilience: *DefaultResilience(),
		},
		"slow-machine": {
			Name:        "slow-machine",
			Summary:     "machine 0 limps at 3x CPU demand for 120s; retries and the breaker keep the tail bounded",
			Load:        "steady",
			MinMachines: 1,
			Faults: Schedule{
				SlowNode: &Component{AtSeconds: 100, MTTRSeconds: 120, Value: 3, Targets: []int{0}},
			},
			Resilience: func() ResilienceSpec {
				r := *DefaultResilience()
				r.Breaker = &BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 64, OpenMillis: 1000}
				return r
			}(),
		},
	}
}

// Scenarios returns the chaos catalog keyed by name.
func Scenarios() map[string]Scenario { return scenarios() }

// ScenarioNames lists catalog entries in sorted order.
func ScenarioNames() []string {
	m := scenarios()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScenarioByName looks up a catalog entry.
func ScenarioByName(name string) (Scenario, error) {
	if s, ok := scenarios()[name]; ok {
		return s, nil
	}
	return Scenario{}, fmt.Errorf("faults: unknown chaos scenario %q (have %v)", name, ScenarioNames())
}
