package faults

import "fmt"

// ResilienceSpec configures the serving path's reaction to faults:
// per-call timeouts, bounded retries with exponential backoff and a
// retry budget, health-check-driven replica ejection/readmission, DB
// primary failover, and an optional circuit breaker. The zero spec is
// fully inert; experiment.Run only wraps the dispatch path in a guard
// when a non-nil spec is configured, so the no-fault configuration
// stays byte-identical to the golden sweep output.
type ResilienceSpec struct {
	// TimeoutMillis bounds each dispatch attempt; 0 disables timeouts.
	TimeoutMillis float64 `json:"timeout_millis,omitempty"`
	// Retries is the maximum number of re-dispatches after the first
	// attempt fails or times out.
	Retries int `json:"retries,omitempty"`
	// BackoffMillis is the base of the exponential backoff before
	// retry k: backoff * 2^(k-1), plus deterministic jitter drawn from
	// a named rng substream (up to +50%).
	BackoffMillis float64 `json:"backoff_millis,omitempty"`
	// RetryBudget caps total retries at this fraction of issued
	// requests (e.g. 0.2 = at most 1 retry per 5 requests); values
	// above 1 deliberately allow retry storms for experiments.
	RetryBudget float64 `json:"retry_budget,omitempty"`
	// HealthEverySeconds is the health-check interval for replica
	// ejection and failover detection.
	HealthEverySeconds float64 `json:"health_every_seconds,omitempty"`
	// EjectAfterChecks ejects a web replica from the LB rotation after
	// this many consecutive failed health checks; it is readmitted on
	// the first healthy check.
	EjectAfterChecks int `json:"eject_after_checks,omitempty"`
	// FailoverDetectSeconds is how long the DB primary must be
	// continuously down before a read replica is promoted.
	FailoverDetectSeconds float64 `json:"failover_detect_seconds,omitempty"`
	// Breaker enables circuit breaking / load shedding; nil disables.
	Breaker *BreakerSpec `json:"breaker,omitempty"`
	// Brownout enables the overload controller (graceful degradation
	// under load); nil disables.
	Brownout *BrownoutSpec `json:"brownout,omitempty"`
}

// BreakerSpec configures the circuit breaker: when the failure
// fraction over the last WindowRequests outcomes reaches
// ErrorThreshold, the breaker opens and dispatches are shed fast-fail
// for OpenMillis before probing again.
type BreakerSpec struct {
	ErrorThreshold float64 `json:"error_threshold"`
	WindowRequests int     `json:"window_requests,omitempty"`
	OpenMillis     float64 `json:"open_millis,omitempty"`
}

// WithDefaults returns a copy with unset knobs filled in.
func (r ResilienceSpec) WithDefaults() ResilienceSpec {
	if r.Retries > 0 {
		if r.BackoffMillis == 0 {
			r.BackoffMillis = 50
		}
		if r.RetryBudget == 0 {
			r.RetryBudget = 0.2
		}
	}
	if r.HealthEverySeconds == 0 {
		r.HealthEverySeconds = 1
	}
	if r.EjectAfterChecks == 0 {
		r.EjectAfterChecks = 3
	}
	if r.FailoverDetectSeconds == 0 {
		r.FailoverDetectSeconds = 5
	}
	if r.Breaker != nil {
		b := *r.Breaker
		if b.WindowRequests == 0 {
			b.WindowRequests = 64
		}
		if b.OpenMillis == 0 {
			b.OpenMillis = 1000
		}
		r.Breaker = &b
	}
	if r.Brownout != nil {
		b := r.Brownout.WithDefaults()
		r.Brownout = &b
	}
	return r
}

// Validate checks the spec. Call on the raw spec; defaults are applied
// separately by WithDefaults.
func (r *ResilienceSpec) Validate() error {
	if r == nil {
		return nil
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("faults: resilience: negative timeout_millis")
	}
	if r.Retries < 0 {
		return fmt.Errorf("faults: resilience: negative retries")
	}
	if r.BackoffMillis < 0 || r.RetryBudget < 0 {
		return fmt.Errorf("faults: resilience: negative backoff_millis or retry_budget")
	}
	if r.HealthEverySeconds < 0 || r.FailoverDetectSeconds < 0 {
		return fmt.Errorf("faults: resilience: negative health/failover interval")
	}
	if r.EjectAfterChecks < 0 {
		return fmt.Errorf("faults: resilience: negative eject_after_checks")
	}
	if b := r.Breaker; b != nil {
		if b.ErrorThreshold <= 0 || b.ErrorThreshold > 1 {
			return fmt.Errorf("faults: breaker: error_threshold must be in (0,1], got %g", b.ErrorThreshold)
		}
		if b.WindowRequests < 0 || b.OpenMillis < 0 {
			return fmt.Errorf("faults: breaker: negative window_requests or open_millis")
		}
	}
	return r.Brownout.Validate()
}

// DefaultResilience is a sensible production-flavored spec: 1s
// timeouts, 2 retries with 100ms base backoff under a 25% budget,
// 1s health checks, 3-strike ejection, 5s failover detection.
func DefaultResilience() *ResilienceSpec {
	return &ResilienceSpec{
		TimeoutMillis:         1000,
		Retries:               2,
		BackoffMillis:         100,
		RetryBudget:           0.25,
		HealthEverySeconds:    1,
		EjectAfterChecks:      3,
		FailoverDetectSeconds: 5,
	}
}
