package faults

import (
	"fmt"
	"math"
	"sort"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// Correlation layers coupled failure modes on top of the independent
// per-(component, target) streams of the base Schedule. All three
// shapes stay pre-expanded and deterministic: every group, storm, and
// trigger draws from its own named substream, so adding one never
// perturbs the base components or each other, and the expansion is
// identical at any worker count.
type Correlation struct {
	// Groups are shared-fate machine groups: one crash draw fells every
	// member machine together (a rack loss; every VM placed on a member
	// goes down at the same instant).
	Groups []SharedFateGroup `json:"groups,omitempty"`
	// Storms are modulated cluster-wide crash processes whose intensity
	// follows a configurable profile (e.g. the diurnal peak), expanded
	// via thinning.
	Storms []Storm `json:"storms,omitempty"`
	// Triggers are conditional hazards: a component's MTTF shrinks to
	// the trigger's MTTF while another component is down.
	Triggers []Trigger `json:"triggers,omitempty"`
}

// SharedFateGroup names a set of machines that fail together. The
// crash process has the same two shapes as Component (recurring via
// MTTFSeconds, one-shot via AtSeconds); every member machine emits a
// MachineDown at the identical instant and recovers together.
type SharedFateGroup struct {
	Name        string  `json:"name"`
	Machines    []int   `json:"machines"`
	MTTFSeconds float64 `json:"mttf_seconds,omitempty"`
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
	AtSeconds   float64 `json:"at_seconds,omitempty"`
}

// Storm profile names.
const (
	// ProfileFlat is a homogeneous Poisson storm at RatePerHour.
	ProfileFlat = "flat"
	// ProfileDiurnal modulates the rate sinusoidally with the given
	// period, peaking at PeakFactor x RatePerHour at PeakSeconds.
	ProfileDiurnal = "diurnal"
)

// Storm is a cluster-wide crash process over one component class. Each
// occurrence picks a victim uniformly from Targets (or the whole
// class). The nonhomogeneous process is expanded by thinning: candidate
// arrivals are drawn homogeneously at the peak rate from the storm's
// named substream and accepted with probability rate(t)/peak, so the
// draw sequence is self-contained per storm.
type Storm struct {
	Name string `json:"name"`
	// Component selects the victim class: "web_crash", "db_crash", or
	// "machine_crash".
	Component string `json:"component"`
	// RatePerHour is the baseline storm intensity (occurrences/hour).
	RatePerHour float64 `json:"rate_per_hour"`
	// Profile is ProfileFlat (default) or ProfileDiurnal.
	Profile string `json:"profile,omitempty"`
	// PeriodSeconds is the diurnal period (default 86400).
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
	// PeakSeconds is when the diurnal intensity peaks (default
	// PeriodSeconds/2).
	PeakSeconds float64 `json:"peak_seconds,omitempty"`
	// PeakFactor is the peak/baseline intensity ratio (default 3).
	PeakFactor float64 `json:"peak_factor,omitempty"`
	// MTTRSeconds is the mean (exponential) repair time per occurrence;
	// <= 0 makes storm losses permanent.
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
	// Targets restricts victims; empty means the whole class.
	Targets []int `json:"targets,omitempty"`
}

// Trigger condition/component classes.
const (
	ClassWeb     = "web"
	ClassDB      = "db"
	ClassMachine = "machine"
)

// Trigger shrinks a component's MTTF while a condition component is
// down: while (While, WhileTarget) is down in the already-expanded
// timeline, each trigger target draws failures at rate 1/MTTFSeconds
// from its own named substream (thinned to the condition's down
// intervals), modeling e.g. a replica whose overload-failure odds jump
// while its peer is out.
type Trigger struct {
	Name string `json:"name"`
	// While and WhileTarget name the condition: "web", "db", or
	// "machine" instance whose down intervals arm the trigger.
	While       string `json:"while"`
	WhileTarget int    `json:"while_target"`
	// Component is the victim class ("web_crash", "db_crash",
	// "machine_crash").
	Component string `json:"component"`
	// Targets restricts victims; empty means the whole class.
	Targets []int `json:"targets,omitempty"`
	// MTTFSeconds is the conditional mean time to failure while armed.
	MTTFSeconds float64 `json:"mttf_seconds"`
	// MTTRSeconds is the mean (exponential) repair time; <= 0 permanent.
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
}

// Empty reports whether the correlation adds no events.
func (c *Correlation) Empty() bool {
	return c == nil || (len(c.Groups) == 0 && len(c.Storms) == 0 && len(c.Triggers) == 0)
}

// minMTTF is the smallest accepted mean time between failures; it
// bounds the expanded event count so hostile configs (fuzzing) cannot
// explode the timeline.
const minMTTF = 1e-3

// maxStormRatePerHour bounds storm intensity for the same reason
// (peak rate included: RatePerHour * PeakFactor must stay under it).
const maxStormRatePerHour = 3600 * 100

func crashKinds(component string) (down, up Kind, ok bool) {
	switch component {
	case "web_crash":
		return WebDown, WebUp, true
	case "db_crash":
		return DBDown, DBUp, true
	case "machine_crash":
		return MachineDown, MachineUp, true
	}
	return 0, 0, false
}

func classKinds(class string) (down, up Kind, ok bool) {
	switch class {
	case ClassWeb:
		return WebDown, WebUp, true
	case ClassDB:
		return DBDown, DBUp, true
	case ClassMachine:
		return MachineDown, MachineUp, true
	}
	return 0, 0, false
}

// Validate checks the correlation config. Like Schedule.Validate it
// does not check target indices against a topology.
func (c *Correlation) Validate() error {
	if c == nil {
		return nil
	}
	names := make(map[string]bool)
	unique := func(kind, name string) error {
		if name == "" {
			return fmt.Errorf("faults: correlation: %s needs a name (it seeds the substream)", kind)
		}
		key := kind + "/" + name
		if names[key] {
			return fmt.Errorf("faults: correlation: duplicate %s name %q", kind, name)
		}
		names[key] = true
		return nil
	}
	for i := range c.Groups {
		g := &c.Groups[i]
		if err := unique("group", g.Name); err != nil {
			return err
		}
		if len(g.Machines) == 0 {
			return fmt.Errorf("faults: group %q: needs at least one machine", g.Name)
		}
		for _, m := range g.Machines {
			if m < 0 {
				return fmt.Errorf("faults: group %q: negative machine index %d", g.Name, m)
			}
		}
		if g.MTTFSeconds < 0 || g.MTTRSeconds < 0 || g.AtSeconds < 0 {
			return fmt.Errorf("faults: group %q: negative mttf/mttr/at", g.Name)
		}
		if g.MTTFSeconds == 0 && g.AtSeconds == 0 {
			return fmt.Errorf("faults: group %q: need mttf_seconds > 0 or at_seconds > 0", g.Name)
		}
		if g.MTTFSeconds > 0 && g.MTTFSeconds < minMTTF {
			return fmt.Errorf("faults: group %q: mttf_seconds below %g", g.Name, minMTTF)
		}
	}
	for i := range c.Storms {
		s := &c.Storms[i]
		if err := unique("storm", s.Name); err != nil {
			return err
		}
		if _, _, ok := crashKinds(s.Component); !ok {
			return fmt.Errorf("faults: storm %q: component must be web_crash, db_crash, or machine_crash, got %q", s.Name, s.Component)
		}
		if s.RatePerHour <= 0 {
			return fmt.Errorf("faults: storm %q: rate_per_hour must be > 0", s.Name)
		}
		switch s.Profile {
		case "", ProfileFlat, ProfileDiurnal:
		default:
			return fmt.Errorf("faults: storm %q: unknown profile %q", s.Name, s.Profile)
		}
		if s.PeriodSeconds < 0 || s.PeakSeconds < 0 || s.MTTRSeconds < 0 {
			return fmt.Errorf("faults: storm %q: negative period/peak/mttr", s.Name)
		}
		if s.PeakFactor != 0 && s.PeakFactor < 1 {
			return fmt.Errorf("faults: storm %q: peak_factor must be >= 1", s.Name)
		}
		if s.RatePerHour*s.peakFactor() > maxStormRatePerHour {
			return fmt.Errorf("faults: storm %q: peak rate %g/h above cap %g/h", s.Name, s.RatePerHour*s.peakFactor(), float64(maxStormRatePerHour))
		}
		for _, t := range s.Targets {
			if t < 0 {
				return fmt.Errorf("faults: storm %q: negative target index %d", s.Name, t)
			}
		}
	}
	for i := range c.Triggers {
		t := &c.Triggers[i]
		if err := unique("trigger", t.Name); err != nil {
			return err
		}
		if _, _, ok := classKinds(t.While); !ok {
			return fmt.Errorf("faults: trigger %q: while must be web, db, or machine, got %q", t.Name, t.While)
		}
		if t.WhileTarget < 0 {
			return fmt.Errorf("faults: trigger %q: negative while_target", t.Name)
		}
		if _, _, ok := crashKinds(t.Component); !ok {
			return fmt.Errorf("faults: trigger %q: component must be web_crash, db_crash, or machine_crash, got %q", t.Name, t.Component)
		}
		if t.MTTFSeconds < minMTTF {
			return fmt.Errorf("faults: trigger %q: mttf_seconds must be >= %g", t.Name, minMTTF)
		}
		if t.MTTRSeconds < 0 {
			return fmt.Errorf("faults: trigger %q: negative mttr_seconds", t.Name)
		}
		for _, tg := range t.Targets {
			if tg < 0 {
				return fmt.Errorf("faults: trigger %q: negative target index %d", t.Name, tg)
			}
		}
	}
	return nil
}

func (s *Storm) peakFactor() float64 {
	if s.Profile != ProfileDiurnal {
		return 1
	}
	if s.PeakFactor == 0 {
		return 3
	}
	return s.PeakFactor
}

func (s *Storm) period() float64 {
	if s.PeriodSeconds == 0 {
		return 86400
	}
	return s.PeriodSeconds
}

// intensity is the storm rate (occurrences/second) at time t.
func (s *Storm) intensity(t float64) float64 {
	base := s.RatePerHour / 3600
	if s.Profile != ProfileDiurnal {
		return base
	}
	period := s.period()
	peakAt := s.PeakSeconds
	if peakAt == 0 {
		peakAt = period / 2
	}
	// Sinusoid between 1x and PeakFactor x the baseline, peaking at
	// peakAt and bottoming half a period away.
	phase := 2 * math.Pi * (t - peakAt) / period
	mod := 1 + (s.peakFactor()-1)*0.5*(1+math.Cos(phase))
	return base * mod
}

// expandGroups appends shared-fate machine events: one outage process
// per group, drawn from the group's own substream, replayed for every
// member machine at identical instants.
func (c *Correlation) expandGroups(events []Event, duration sim.Time, tg Targets, src *rng.Source) []Event {
	for i := range c.Groups {
		g := &c.Groups[i]
		st := src.Stream("faults-group-" + g.Name)
		spans := drawOutages(g.MTTFSeconds, g.MTTRSeconds, g.AtSeconds, duration, st)
		for _, sp := range spans {
			for _, m := range g.Machines {
				if m < 0 || m >= tg.Machines {
					continue
				}
				events = append(events, Event{At: sp.down, Kind: MachineDown, Target: m, Origin: g.Name})
				if sp.hasUp {
					events = append(events, Event{At: sp.up, Kind: MachineUp, Target: m, Origin: g.Name})
				}
			}
		}
	}
	return events
}

type outageSpan struct {
	down, up sim.Time
	hasUp    bool
}

// drawOutages draws the Component-shaped outage process (one-shot or
// recurring) as spans, consuming draws only from st.
func drawOutages(mttf, mttr, at float64, duration sim.Time, st *rng.Stream) []outageSpan {
	var spans []outageSpan
	if mttf == 0 {
		t := sim.Seconds(at)
		if t >= duration {
			return nil
		}
		sp := outageSpan{down: t}
		if mttr > 0 {
			if rec := t + sim.Seconds(mttr); rec < duration {
				sp.up, sp.hasUp = rec, true
			}
		}
		return append(spans, sp)
	}
	t := sim.Seconds(at)
	if at == 0 {
		t = sim.Seconds(st.Exp(mttf))
	}
	for t < duration {
		sp := outageSpan{down: t}
		if mttr <= 0 {
			return append(spans, sp) // permanent
		}
		t += sim.Seconds(st.Exp(mttr))
		if t < duration {
			sp.up, sp.hasUp = t, true
		}
		spans = append(spans, sp)
		if !sp.hasUp {
			return spans
		}
		t += sim.Seconds(st.Exp(mttf))
	}
	return spans
}

// expandStorms appends storm occurrences via thinning: homogeneous
// candidates at the peak rate, accepted with probability
// intensity(t)/peak; each accepted occurrence draws a victim and, when
// MTTR > 0, a repair delay, all from the storm's own substream.
func (c *Correlation) expandStorms(events []Event, duration sim.Time, tg Targets, src *rng.Source) []Event {
	for i := range c.Storms {
		s := &c.Storms[i]
		down, up, ok := crashKinds(s.Component)
		if !ok {
			continue
		}
		n := 0
		switch down {
		case WebDown:
			n = tg.Webs
		case DBDown:
			n = tg.DBs
		case MachineDown:
			n = tg.Machines
		}
		victims := s.Targets
		if len(victims) == 0 {
			victims = make([]int, n)
			for j := range victims {
				victims[j] = j
			}
		}
		// Keep the draw sequence fixed even when every named target is
		// out of range for this topology: candidates and accept/victim
		// draws happen regardless, only the append is skipped.
		st := src.Stream("faults-storm-" + s.Name)
		peak := s.RatePerHour * s.peakFactor() / 3600
		t := 0.0
		for {
			t += st.Exp(1 / peak)
			at := sim.Seconds(t)
			if at >= duration {
				break
			}
			accept := st.Float64() < s.intensity(t)/peak
			if len(victims) == 0 {
				continue
			}
			v := victims[st.Intn(len(victims))]
			var rec sim.Time
			if s.MTTRSeconds > 0 {
				rec = at + sim.Seconds(st.Exp(s.MTTRSeconds))
			}
			if !accept || v < 0 || v >= n {
				continue
			}
			events = append(events, Event{At: at, Kind: down, Target: v, Origin: s.Name})
			if s.MTTRSeconds > 0 && rec < duration {
				events = append(events, Event{At: rec, Kind: up, Target: v, Origin: s.Name})
			}
		}
	}
	return events
}

type interval struct{ lo, hi sim.Time }

// downIntervals extracts the condition component's down intervals from
// the (sorted) timeline expanded so far. A down with no matching up is
// open until the end of the run.
func downIntervals(events []Event, down, up Kind, target int, duration sim.Time) []interval {
	var out []interval
	open := sim.Time(-1)
	for _, e := range events {
		if e.Target != target {
			continue
		}
		switch e.Kind {
		case down:
			if open < 0 {
				open = e.At
			}
		case up:
			if open >= 0 {
				out = append(out, interval{open, e.At})
				open = -1
			}
		}
	}
	if open >= 0 {
		out = append(out, interval{open, duration})
	}
	return out
}

func inIntervals(t sim.Time, iv []interval) bool {
	for _, i := range iv {
		if t >= i.lo && t < i.hi {
			return true
		}
	}
	return false
}

// expandTriggers appends conditional-hazard events. Triggers expand
// against the timeline built so far (base + groups + storms), so the
// condition's down intervals are fully known; acceptance is pure
// thinning (deterministic given the candidate time), and each
// (trigger, target) pair has its own substream.
func (c *Correlation) expandTriggers(events []Event, duration sim.Time, tg Targets, src *rng.Source) []Event {
	if len(c.Triggers) == 0 {
		return events
	}
	base := events // condition intervals come from the pre-trigger timeline
	for i := range c.Triggers {
		tr := &c.Triggers[i]
		condDown, condUp, ok := classKinds(tr.While)
		if !ok {
			continue
		}
		down, up, ok := crashKinds(tr.Component)
		if !ok {
			continue
		}
		n := 0
		switch down {
		case WebDown:
			n = tg.Webs
		case DBDown:
			n = tg.DBs
		case MachineDown:
			n = tg.Machines
		}
		armed := downIntervals(base, condDown, condUp, tr.WhileTarget, duration)
		targets := tr.Targets
		if len(targets) == 0 {
			targets = make([]int, n)
			for j := range targets {
				targets[j] = j
			}
		}
		for _, v := range targets {
			st := src.Stream(fmt.Sprintf("faults-trigger-%s-%d", tr.Name, v))
			t := 0.0
			for {
				t += st.Exp(tr.MTTFSeconds)
				at := sim.Seconds(t)
				if at >= duration {
					break
				}
				var rec sim.Time
				if tr.MTTRSeconds > 0 {
					rec = at + sim.Seconds(st.Exp(tr.MTTRSeconds))
				}
				// Thinning: only candidates landing inside an armed
				// interval survive; the draw sequence is unaffected.
				if !inIntervals(at, armed) || v < 0 || v >= n {
					continue
				}
				events = append(events, Event{At: at, Kind: down, Target: v, Origin: tr.Name})
				if tr.MTTRSeconds > 0 && rec < duration {
					events = append(events, Event{At: rec, Kind: up, Target: v, Origin: tr.Name})
				}
			}
		}
	}
	return events
}

func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].Target < events[j].Target
	})
}
