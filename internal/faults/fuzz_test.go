package faults

import (
	"encoding/json"
	"reflect"
	"testing"

	"vwchar/internal/rng"
	"vwchar/internal/sim"
)

// FuzzScheduleRoundTrip feeds arbitrary JSON through the schedule's
// full lifecycle: unmarshal, validate, re-marshal, and — for schedules
// that validate — expand twice against the same seed. Nothing may
// panic, marshaling must be a fixed point after one round trip, and
// expansion must be deterministic. Validation is the safety boundary
// the fuzzer leans on: a schedule it accepts must expand a finite
// timeline in bounded time, which is why tiny MTTFs and unbounded
// storm rates are rejected there.
func FuzzScheduleRoundTrip(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"web_crash":{"mttf_seconds":300,"mttr_seconds":30}}`,
		`{"correlation":{"groups":[{"name":"r0","machines":[0,1],"at_seconds":100,"mttr_seconds":60}]}}`,
		`{"correlation":{"storms":[{"name":"s","component":"web_crash","rate_per_hour":30,"profile":"diurnal","mttr_seconds":45}]}}`,
		`{"correlation":{"triggers":[{"name":"t","while":"db","component":"web","mttf_seconds":50,"mttr_seconds":20}]}}`,
		`{"hazard":{"util_threshold":4,"crash_prob":0.1,"mttr_seconds":60}}`,
		`{"web_crash":{"mttf_seconds":1e-9}}`,
		`{"correlation":{"storms":[{"name":"s","component":"web_crash","rate_per_hour":1e18}]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Schedule
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		// One round trip reaches the canonical form; a second must be a
		// fixed point (marshal-stable schedules survive config files).
		b1, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("marshal after validate: %v", err)
		}
		var s2 Schedule
		if err := json.Unmarshal(b1, &s2); err != nil {
			t.Fatalf("re-unmarshal canonical form: %v", err)
		}
		b2, err := json.Marshal(&s2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("marshal not a fixed point:\n%s\n%s", b1, b2)
		}
		// Expansion is pure in the seed: two expansions of a validated
		// schedule against fresh sources are identical.
		const dur = 200 * sim.Second
		tg := Targets{Webs: 3, DBs: 2, Machines: 2}
		e1 := s.Expand(dur, tg, rng.NewSource(7))
		e2 := s.Expand(dur, tg, rng.NewSource(7))
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("expansion not deterministic: %d vs %d events", len(e1), len(e2))
		}
		for _, ev := range e1 {
			if ev.At < 0 || ev.At > dur {
				t.Fatalf("event outside the horizon: %+v", ev)
			}
		}
	})
}

// FuzzCorrelationValidate hammers the correlation validator alone with
// arbitrary JSON: it must never panic and must always return (accept
// or reject) — the timeline-explosion guards live here.
func FuzzCorrelationValidate(f *testing.F) {
	seeds := []string{
		`{"groups":[{"name":"","machines":[]}]}`,
		`{"storms":[{"name":"s","component":"nope","rate_per_hour":-1}]}`,
		`{"triggers":[{"name":"t","while":"web","component":"web","mttf_seconds":0}]}`,
		`{"groups":[{"name":"a","machines":[0]},{"name":"a","machines":[1]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Correlation
		if err := json.Unmarshal(data, &c); err != nil {
			return
		}
		_ = c.Validate()
	})
}
