package rubisdb

import (
	"container/list"
	"fmt"
)

// PageID identifies a page within the engine: a file (table heap, index,
// ...) and a page number within it.
type PageID struct {
	File   uint32
	PageNo uint32
}

// Store is the backing page store. The simulation uses an in-memory
// store; the buffer pool's miss/flush traffic is what the tier model
// charges to the simulated disk.
type Store interface {
	// Read fetches the page; it returns an error for never-written pages.
	Read(id PageID) (Page, error)
	// Write persists the page.
	Write(id PageID, p Page) error
	// Allocate extends file with one zeroed page, returning its id.
	Allocate(file uint32) PageID
}

// MemStore is the in-memory Store.
type MemStore struct {
	pages map[PageID]Page
	next  map[uint32]uint32
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[PageID]Page), next: make(map[uint32]uint32)}
}

// Read implements Store.
func (m *MemStore) Read(id PageID) (Page, error) {
	p, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("rubisdb: page %v not found", id)
	}
	out := make(Page, PageSize)
	copy(out, p)
	return out, nil
}

// Write implements Store.
func (m *MemStore) Write(id PageID, p Page) error {
	cp := make(Page, PageSize)
	copy(cp, p)
	m.pages[id] = cp
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate(file uint32) PageID {
	id := PageID{File: file, PageNo: m.next[file]}
	m.next[file]++
	m.pages[id] = NewPage()
	return id
}

// PageCount reports the number of allocated pages in file.
func (m *MemStore) PageCount(file uint32) uint32 { return m.next[file] }

// Meter accumulates the engine's physical work. The tier model samples
// and differences it to derive the DB server's resource demand.
type Meter struct {
	// PageHits and PageMisses count buffer pool lookups.
	PageHits   uint64
	PageMisses uint64
	// PagesWritten counts dirty page write-backs.
	PagesWritten uint64
	// WALBytes counts write-ahead log appends.
	WALBytes float64
	// RowsRead and RowsWritten count tuple touches.
	RowsRead    uint64
	RowsWritten uint64
	// BytesOut counts result bytes produced for clients.
	BytesOut float64
}

// Add accumulates other into m.
func (m *Meter) Add(other Meter) {
	m.PageHits += other.PageHits
	m.PageMisses += other.PageMisses
	m.PagesWritten += other.PagesWritten
	m.WALBytes += other.WALBytes
	m.RowsRead += other.RowsRead
	m.RowsWritten += other.RowsWritten
	m.BytesOut += other.BytesOut
}

// Sub returns m minus other (for window differencing).
func (m Meter) Sub(other Meter) Meter {
	return Meter{
		PageHits:     m.PageHits - other.PageHits,
		PageMisses:   m.PageMisses - other.PageMisses,
		PagesWritten: m.PagesWritten - other.PagesWritten,
		WALBytes:     m.WALBytes - other.WALBytes,
		RowsRead:     m.RowsRead - other.RowsRead,
		RowsWritten:  m.RowsWritten - other.RowsWritten,
		BytesOut:     m.BytesOut - other.BytesOut,
	}
}

type frame struct {
	id    PageID
	page  Page
	dirty bool
	pins  int
	elem  *list.Element
}

// BufferPool caches pages with LRU replacement and write-back of dirty
// pages on eviction.
type BufferPool struct {
	store    Store
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used
	meter    *Meter
}

// NewBufferPool builds a pool of capacity pages over store, metering
// into meter.
func NewBufferPool(store Store, capacity int, meter *Meter) *BufferPool {
	if capacity < 1 {
		panic("rubisdb: buffer pool needs capacity >= 1")
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		meter:    meter,
	}
}

// Len reports resident pages.
func (b *BufferPool) Len() int { return len(b.frames) }

// Get pins the page into the pool, loading it on a miss (possibly
// evicting an unpinned LRU victim). Callers must Unpin.
func (b *BufferPool) Get(id PageID) (Page, error) {
	if f, ok := b.frames[id]; ok {
		b.meter.PageHits++
		f.pins++
		b.lru.MoveToFront(f.elem)
		return f.page, nil
	}
	b.meter.PageMisses++
	p, err := b.store.Read(id)
	if err != nil {
		return nil, err
	}
	if err := b.makeRoom(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: p, pins: 1}
	f.elem = b.lru.PushFront(f)
	b.frames[id] = f
	return p, nil
}

// NewPage allocates a fresh page in file, resident and pinned.
func (b *BufferPool) NewPage(file uint32) (PageID, Page, error) {
	id := b.store.Allocate(file)
	if err := b.makeRoom(); err != nil {
		return PageID{}, nil, err
	}
	f := &frame{id: id, page: NewPage(), pins: 1, dirty: true}
	f.elem = b.lru.PushFront(f)
	b.frames[id] = f
	return id, f.page, nil
}

func (b *BufferPool) makeRoom() error {
	for len(b.frames) >= b.capacity {
		victim := (*frame)(nil)
		for e := b.lru.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*frame)
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("rubisdb: buffer pool exhausted (%d pages, all pinned)", len(b.frames))
		}
		if victim.dirty {
			if err := b.store.Write(victim.id, victim.page); err != nil {
				return err
			}
			b.meter.PagesWritten++
		}
		b.lru.Remove(victim.elem)
		delete(b.frames, victim.id)
	}
	return nil
}

// Unpin releases a pin, optionally marking the page dirty.
func (b *BufferPool) Unpin(id PageID, dirty bool) {
	f, ok := b.frames[id]
	if !ok {
		panic(fmt.Sprintf("rubisdb: Unpin of non-resident page %v", id))
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("rubisdb: Unpin of unpinned page %v", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FlushAll writes every dirty resident page back to the store (checkpoint).
func (b *BufferPool) FlushAll() error {
	_, err := b.FlushLimit(len(b.frames))
	return err
}

// FlushLimit writes back at most limit dirty pages in LRU order (a fuzzy
// checkpoint with an io-capacity cap, as InnoDB's background writer
// does) and reports how many were flushed.
func (b *BufferPool) FlushLimit(limit int) (int, error) {
	flushed := 0
	for e := b.lru.Back(); e != nil && flushed < limit; e = e.Prev() {
		f := e.Value.(*frame)
		if !f.dirty {
			continue
		}
		if err := b.store.Write(f.id, f.page); err != nil {
			return flushed, err
		}
		f.dirty = false
		b.meter.PagesWritten++
		flushed++
	}
	return flushed, nil
}

// HitRatio reports hits/(hits+misses), 0 when cold.
func (b *BufferPool) HitRatio() float64 {
	total := b.meter.PageHits + b.meter.PageMisses
	if total == 0 {
		return 0
	}
	return float64(b.meter.PageHits) / float64(total)
}
