package rubisdb

import "fmt"

// PageID identifies a page within the engine: a file (table heap, index,
// ...) and a page number within it.
type PageID struct {
	File   uint32
	PageNo uint32
}

// Store is the backing page store. The simulation uses an in-memory
// store; the buffer pool's miss/flush traffic is what the tier model
// charges to the simulated disk.
type Store interface {
	// ReadInto copies the page into dst (len PageSize) without
	// allocating; it returns an error for never-written pages.
	ReadInto(id PageID, dst Page) error
	// Write persists the page.
	Write(id PageID, p Page) error
	// Allocate extends file with one zeroed page, returning its id.
	Allocate(file uint32) PageID
}

// pagesPerSlab sizes the slabs that page buffers are carved from: 1 MB
// slabs mean one large allocation per 128 pages instead of 128 small
// ones, which takes both the per-object malloc bookkeeping and most of
// the explicit zeroing (fresh large spans arrive pre-zeroed from the OS)
// off the dataset-population path.
const pagesPerSlab = 128

// pageSlab carves fixed-size, zeroed page buffers out of large slabs.
// Carved pages are never returned to the slab; recycling happens at the
// consumer (the buffer pool's free list, the store's per-id reuse).
type pageSlab struct {
	buf []byte
}

func (s *pageSlab) take() Page {
	if len(s.buf) < PageSize {
		s.buf = make([]byte, PageSize*pagesPerSlab)
	}
	p := Page(s.buf[:PageSize:PageSize])
	s.buf = s.buf[PageSize:]
	return p
}

// SharedPager is implemented by stores that can hand out stable,
// immutable page buffers the pool may alias directly instead of copying
// on a miss (the copy-on-write view store over a sealed golden
// snapshot). A page obtained this way must never be mutated through the
// frame; writers privatize first (BufferPool.GetMut / Privatize).
type SharedPager interface {
	// SharedPage returns the immutable buffer for id when the page is
	// still golden (not privately overwritten), or (nil, false) when the
	// caller must fall back to a copying ReadInto.
	SharedPage(id PageID) (Page, bool)
}

// MemStore is the in-memory Store.
type MemStore struct {
	pages map[PageID]Page
	next  map[uint32]uint32
	slab  pageSlab
	// sealed freezes the store as an immutable golden snapshot
	// (Engine.Seal); any further Write or Allocate is a bug in the
	// copy-on-write layer and panics rather than corrupting every view.
	sealed bool
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[PageID]Page), next: make(map[uint32]uint32)}
}

// ReadInto implements Store.
func (m *MemStore) ReadInto(id PageID, dst Page) error {
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("rubisdb: page %v not found", id)
	}
	copy(dst, p)
	return nil
}

// Read returns an owned copy of the page (a convenience for tests and
// tools; the pool's hot path uses ReadInto).
func (m *MemStore) Read(id PageID) (Page, error) {
	out := make(Page, PageSize)
	if err := m.ReadInto(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Write implements Store. The destination buffer is reused across
// write-backs of the same page, so steady-state eviction traffic does
// not allocate.
func (m *MemStore) Write(id PageID, p Page) error {
	if m.sealed {
		panic(fmt.Sprintf("rubisdb: Write of page %v to sealed golden store", id))
	}
	dst, ok := m.pages[id]
	if !ok {
		dst = m.slab.take()
		m.pages[id] = dst
	}
	copy(dst, p)
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate(file uint32) PageID {
	if m.sealed {
		panic(fmt.Sprintf("rubisdb: Allocate in file %d on sealed golden store", file))
	}
	id := PageID{File: file, PageNo: m.next[file]}
	m.next[file]++
	m.pages[id] = m.slab.take()
	return id
}

// PageCount reports the number of allocated pages in file.
func (m *MemStore) PageCount(file uint32) uint32 { return m.next[file] }

// Meter accumulates the engine's physical work. The tier model samples
// and differences it to derive the DB server's resource demand.
type Meter struct {
	// PageHits and PageMisses count buffer pool lookups.
	PageHits   uint64
	PageMisses uint64
	// PagesWritten counts dirty page write-backs.
	PagesWritten uint64
	// WALBytes counts write-ahead log appends.
	WALBytes float64
	// RowsRead and RowsWritten count tuple touches.
	RowsRead    uint64
	RowsWritten uint64
	// BytesOut counts result bytes produced for clients.
	BytesOut float64
}

// Add accumulates other into m.
func (m *Meter) Add(other Meter) {
	m.PageHits += other.PageHits
	m.PageMisses += other.PageMisses
	m.PagesWritten += other.PagesWritten
	m.WALBytes += other.WALBytes
	m.RowsRead += other.RowsRead
	m.RowsWritten += other.RowsWritten
	m.BytesOut += other.BytesOut
}

// Sub returns m minus other (for window differencing).
func (m Meter) Sub(other Meter) Meter {
	return Meter{
		PageHits:     m.PageHits - other.PageHits,
		PageMisses:   m.PageMisses - other.PageMisses,
		PagesWritten: m.PagesWritten - other.PagesWritten,
		WALBytes:     m.WALBytes - other.WALBytes,
		RowsRead:     m.RowsRead - other.RowsRead,
		RowsWritten:  m.RowsWritten - other.RowsWritten,
		BytesOut:     m.BytesOut - other.BytesOut,
	}
}

// Frame is a pinned buffer-pool slot. Get and NewPage return the frame
// itself, so callers release their pin directly on it — no second map
// lookup. The frame (and its Page) is valid until Unpin; after the last
// pin is released the pool may evict and recycle it, so callers must
// capture ID() before unpinning if they still need it.
type Frame struct {
	// Page is the cached page image.
	Page Page

	id    PageID
	dirty bool
	// shared marks a frame whose Page aliases an immutable golden
	// snapshot buffer (see SharedPager): reads are free, but it must be
	// privatized (copied) before any mutation and its buffer is never
	// recycled into the pool's free lists.
	shared bool
	pins   int
	// prev/next form the pool's intrusive LRU list while the frame is
	// resident (no container/list allocation or interface boxing per
	// touch); next doubles as the free-list link after eviction.
	prev, next *Frame
}

// ID reports which page the frame holds.
func (f *Frame) ID() PageID { return f.id }

// Unpin releases one pin, optionally marking the page dirty.
func (f *Frame) Unpin(dirty bool) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("rubisdb: Unpin of unpinned page %v", f.id))
	}
	f.pins--
	if dirty {
		if f.shared {
			panic(fmt.Sprintf("rubisdb: page %v dirtied without Privatize (shared golden page)", f.id))
		}
		f.dirty = true
	}
}

// BufferPool caches pages with LRU replacement and write-back of dirty
// pages on eviction. Evicted frames and their page buffers park on free
// lists, so steady-state miss traffic allocates nothing.
type BufferPool struct {
	store    Store
	capacity int
	frames   map[PageID]*Frame
	// lru is the intrusive list sentinel: lru.next is the most recently
	// used resident frame, lru.prev the eviction candidate.
	lru       Frame
	meter     *Meter
	freeFrame *Frame // singly linked through next
	freePage  []Page
	slab      pageSlab
	// sharedSrc is non-nil when the store can serve zero-copy golden
	// pages (resolved once here so the miss path pays no type assertion).
	sharedSrc SharedPager
}

// NewBufferPool builds a pool of capacity pages over store, metering
// into meter.
func NewBufferPool(store Store, capacity int, meter *Meter) *BufferPool {
	if capacity < 1 {
		panic("rubisdb: buffer pool needs capacity >= 1")
	}
	b := &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		meter:    meter,
	}
	b.sharedSrc, _ = store.(SharedPager)
	b.lru.next = &b.lru
	b.lru.prev = &b.lru
	return b
}

// Len reports resident pages.
func (b *BufferPool) Len() int { return len(b.frames) }

func (b *BufferPool) pushFront(f *Frame) {
	f.prev = &b.lru
	f.next = b.lru.next
	f.prev.next = f
	f.next.prev = f
}

func (b *BufferPool) unlink(f *Frame) {
	f.prev.next = f.next
	f.next.prev = f.prev
	f.prev, f.next = nil, nil
}

func (b *BufferPool) moveToFront(f *Frame) {
	if b.lru.next == f {
		return
	}
	f.prev.next = f.next
	f.next.prev = f.prev
	b.pushFront(f)
}

func (b *BufferPool) takeFrame() *Frame {
	if f := b.freeFrame; f != nil {
		b.freeFrame = f.next
		f.next = nil
		return f
	}
	return &Frame{}
}

func (b *BufferPool) takePage() Page {
	if n := len(b.freePage); n > 0 {
		p := b.freePage[n-1]
		b.freePage = b.freePage[:n-1]
		return p
	}
	return b.slab.take()
}

// Get pins the page into the pool, loading it on a miss (possibly
// evicting an unpinned LRU victim). Callers must Unpin the returned
// frame.
func (b *BufferPool) Get(id PageID) (*Frame, error) {
	if f, ok := b.frames[id]; ok {
		b.meter.PageHits++
		f.pins++
		b.moveToFront(f)
		return f, nil
	}
	b.meter.PageMisses++
	// A page still backed by an immutable golden snapshot is aliased
	// zero-copy; the miss is metered identically, so a view's hit/miss/
	// eviction stream matches a freshly populated pool byte for byte.
	if b.sharedSrc != nil {
		if p, ok := b.sharedSrc.SharedPage(id); ok {
			if err := b.makeRoom(); err != nil {
				return nil, err
			}
			f := b.takeFrame()
			*f = Frame{Page: p, id: id, pins: 1, shared: true}
			b.pushFront(f)
			b.frames[id] = f
			return f, nil
		}
	}
	p := b.takePage()
	if err := b.store.ReadInto(id, p); err != nil {
		b.freePage = append(b.freePage, p)
		return nil, err
	}
	if err := b.makeRoom(); err != nil {
		b.freePage = append(b.freePage, p)
		return nil, err
	}
	f := b.takeFrame()
	*f = Frame{Page: p, id: id, pins: 1}
	b.pushFront(f)
	b.frames[id] = f
	return f, nil
}

// GetMut pins the page with write intent: like Get, but the returned
// frame is guaranteed private, copying a shared golden page on its first
// write. All mutation paths (heap appends, in-place updates, B-tree
// structural edits) go through GetMut or Privatize.
func (b *BufferPool) GetMut(id PageID) (*Frame, error) {
	f, err := b.Get(id)
	if err != nil {
		return nil, err
	}
	b.Privatize(f)
	return f, nil
}

// Privatize converts a shared golden frame into a private copy the
// caller may mutate; private frames pass through untouched. This is the
// copy-on-write fault: one PageSize copy, only on first write.
func (b *BufferPool) Privatize(f *Frame) {
	if !f.shared {
		return
	}
	p := b.takePage()
	copy(p, f.Page)
	f.Page = p
	f.shared = false
}

// NewPage allocates a fresh page in file, resident, pinned, and dirty.
// The page comes back zeroed with an initialized slot header (see
// NewPage in page.go).
func (b *BufferPool) NewPage(file uint32) (*Frame, error) {
	id := b.store.Allocate(file)
	if err := b.makeRoom(); err != nil {
		return nil, err
	}
	p := b.takePage()
	clear(p)
	p.initHeader()
	f := b.takeFrame()
	*f = Frame{Page: p, id: id, pins: 1, dirty: true}
	b.pushFront(f)
	b.frames[id] = f
	return f, nil
}

func (b *BufferPool) makeRoom() error {
	for len(b.frames) >= b.capacity {
		var victim *Frame
		for f := b.lru.prev; f != &b.lru; f = f.prev {
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("rubisdb: buffer pool exhausted (%d pages, all pinned)", len(b.frames))
		}
		if victim.dirty {
			if err := b.store.Write(victim.id, victim.Page); err != nil {
				return err
			}
			b.meter.PagesWritten++
		}
		b.unlink(victim)
		delete(b.frames, victim.id)
		// A shared frame aliases the immutable golden buffer: evicting it
		// must not feed that buffer into the free list where a later miss
		// would scribble over the snapshot.
		if !victim.shared {
			b.freePage = append(b.freePage, victim.Page)
		}
		*victim = Frame{next: b.freeFrame}
		b.freeFrame = victim
	}
	return nil
}

// FlushAll writes every dirty resident page back to the store (checkpoint).
func (b *BufferPool) FlushAll() error {
	_, err := b.FlushLimit(len(b.frames))
	return err
}

// FlushLimit writes back at most limit dirty pages in LRU order (a fuzzy
// checkpoint with an io-capacity cap, as InnoDB's background writer
// does) and reports how many were flushed.
func (b *BufferPool) FlushLimit(limit int) (int, error) {
	flushed := 0
	for f := b.lru.prev; f != &b.lru && flushed < limit; f = f.prev {
		if !f.dirty {
			continue
		}
		if err := b.store.Write(f.id, f.Page); err != nil {
			return flushed, err
		}
		f.dirty = false
		b.meter.PagesWritten++
		flushed++
	}
	return flushed, nil
}

// HitRatio reports hits/(hits+misses), 0 when cold.
func (b *BufferPool) HitRatio() float64 {
	total := b.meter.PageHits + b.meter.PageMisses
	if total == 0 {
		return 0
	}
	return float64(b.meter.PageHits) / float64(total)
}
