package rubisdb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newTestTree(t *testing.T, pages int) *BTree {
	t.Helper()
	meter := &Meter{}
	pool := NewBufferPool(NewMemStore(), pages, meter)
	tree, err := NewBTree(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBTreeInsertAndSearch(t *testing.T) {
	tree := newTestTree(t, 64)
	for i := int64(0); i < 100; i++ {
		if err := tree.Insert(i, uint64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i := int64(0); i < 100; i++ {
		vals, err := tree.Search(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i*10) {
			t.Fatalf("Search(%d) = %v", i, vals)
		}
	}
	if vals, _ := tree.Search(1000); len(vals) != 0 {
		t.Fatalf("Search(absent) = %v", vals)
	}
}

func TestBTreeDuplicateKeysDistinctValues(t *testing.T) {
	tree := newTestTree(t, 64)
	for v := uint64(0); v < 50; v++ {
		if err := tree.Insert(7, v); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := tree.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 50 {
		t.Fatalf("Search(7) returned %d values", len(vals))
	}
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("values not in order: %v", vals)
		}
	}
}

func TestBTreeExactDuplicateRejected(t *testing.T) {
	tree := newTestTree(t, 64)
	if err := tree.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, 2); err == nil {
		t.Fatal("exact duplicate insert should fail")
	}
}

func TestBTreeSplitsManyKeys(t *testing.T) {
	tree := newTestTree(t, 256)
	const n = 20000 // forces multiple levels (leafMax=511)
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("height = %d, expected splits", h)
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		vals, err := tree.Search(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i) {
			t.Fatalf("Search(%d) = %v after splits", i, vals)
		}
	}
}

func TestBTreeScanRangeOrderedAndBounded(t *testing.T) {
	tree := newTestTree(t, 256)
	for i := int64(0); i < 5000; i += 2 { // even keys only
		if err := tree.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	err := tree.ScanRange(100, 200, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 51 {
		t.Fatalf("range [100,200] returned %d keys", len(got))
	}
	for i, k := range got {
		if k != int64(100+2*i) {
			t.Fatalf("scan out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestBTreeScanRangeEarlyStop(t *testing.T) {
	tree := newTestTree(t, 64)
	for i := int64(0); i < 100; i++ {
		if err := tree.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tree.ScanRange(0, 99, func(k int64, v uint64) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Inverted range is a no-op.
	if err := tree.ScanRange(10, 5, func(int64, uint64) bool {
		t.Fatal("inverted range visited an entry")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeNegativeKeys(t *testing.T) {
	tree := newTestTree(t, 64)
	keys := []int64{-100, -1, 0, 1, 100}
	for _, k := range keys {
		if err := tree.Insert(k, uint64(k+200)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	if err := tree.ScanRange(-200, 200, func(k int64, _ uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("negative keys out of order: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(got), len(keys))
	}
}

func TestBTreeSurvivesTinyBufferPool(t *testing.T) {
	// A 8-page pool forces constant eviction during splits; correctness
	// must not depend on residency.
	tree := newTestTree(t, 8)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 53 {
		vals, err := tree.Search(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 {
			t.Fatalf("Search(%d) under eviction = %v", i, vals)
		}
	}
}

// Property: a B+tree behaves exactly like a sorted multimap for any
// insertion sequence.
func TestPropertyBTreeMatchesReferenceModel(t *testing.T) {
	f := func(rawKeys []int16, rawVals []uint16) bool {
		tree := newTestTree(&testing.T{}, 128)
		type pair struct {
			k int64
			v uint64
		}
		seen := map[pair]bool{}
		var ref []pair
		for i, rk := range rawKeys {
			v := uint64(i)
			if i < len(rawVals) {
				v = uint64(rawVals[i])
			}
			p := pair{int64(rk), v}
			if seen[p] {
				continue
			}
			seen[p] = true
			if err := tree.Insert(p.k, p.v); err != nil {
				return false
			}
			ref = append(ref, p)
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].k != ref[j].k {
				return ref[i].k < ref[j].k
			}
			return ref[i].v < ref[j].v
		})
		var got []pair
		if err := tree.ScanRange(-40000, 40000, func(k int64, v uint64) bool {
			got = append(got, pair{k, v})
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
