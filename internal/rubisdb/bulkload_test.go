package rubisdb

import (
	"math/rand"
	"sort"
	"testing"
)

func collectAll(t *testing.T, tree *BTree) []Entry {
	t.Helper()
	var got []Entry
	if err := tree.ScanRange(-1<<62, 1<<62, func(k int64, v uint64) bool {
		got = append(got, Entry{Key: k, Value: v})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestBulkLoadMatchesInsertPath(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 5000
	entries := make([]Entry, n)
	for i := range entries {
		// Small key space: long duplicate runs, like a secondary index.
		entries[i] = Entry{Key: int64(r.Intn(40)) - 20, Value: uint64(i)}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].Value < entries[j].Value
	})

	bulk := newTestTree(t, 256)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	incr := newTestTree(t, 256)
	for _, e := range entries {
		if err := incr.Insert(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != n || incr.Len() != n {
		t.Fatalf("Len: bulk=%d incr=%d", bulk.Len(), incr.Len())
	}
	got, want := collectAll(t, bulk), collectAll(t, incr)
	if len(got) != len(want) {
		t.Fatalf("scan lengths: bulk=%d incr=%d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: bulk=%v incr=%v", i, got[i], want[i])
		}
	}
	// Point lookups agree too.
	for k := int64(-20); k < 20; k++ {
		a, err := bulk.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := incr.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("Search(%d): bulk=%d incr=%d values", k, len(a), len(b))
		}
	}
}

func TestBulkLoadBuildsMultipleLevels(t *testing.T) {
	const n = 200000 // > leafBulkFill*(innerMax+1) leaves => height 3
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Value: uint64(i)}
	}
	tree := newTestTree(t, 4096)
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height = %d, want >= 3", h)
	}
	for i := 0; i < n; i += 997 {
		vals, err := tree.Search(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i) {
			t.Fatalf("Search(%d) = %v", i, vals)
		}
	}
	// The loaded tree accepts ordinary inserts and deletes afterwards.
	if err := tree.Insert(int64(n)+5, 1); err != nil {
		t.Fatal(err)
	}
	ok, err := tree.Delete(int64(n)+5, 1)
	if err != nil || !ok {
		t.Fatalf("Delete after load = %v, %v", ok, err)
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	tree := newTestTree(t, 64)
	if err := tree.BulkLoad([]Entry{{2, 0}, {1, 0}}); err == nil {
		t.Fatal("unsorted entries should error")
	}
	if err := tree.BulkLoad([]Entry{{1, 7}, {1, 7}}); err == nil {
		t.Fatal("exact duplicates should error")
	}
	if err := tree.BulkLoad(nil); err != nil {
		t.Fatalf("empty load should be a no-op: %v", err)
	}
	if err := tree.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad([]Entry{{2, 0}}); err == nil {
		t.Fatal("bulk load into a non-empty tree should error")
	}
}

func TestBulkLoadFailureLeavesConsistentEmptyTree(t *testing.T) {
	// A capacity-1 pool cannot hold the previous leaf pinned while the
	// next is allocated, so a multi-leaf load fails mid-build. The tree
	// must come back as a consistent empty tree, not a half-loaded one.
	tree := newTestTree(t, 1)
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Value: uint64(i)}
	}
	if err := tree.BulkLoad(entries); err == nil {
		t.Fatal("multi-leaf BulkLoad on a capacity-1 pool should fail")
	}
	if tree.Len() != 0 {
		t.Fatalf("Len after failed load = %d", tree.Len())
	}
	if got := collectAll(t, tree); len(got) != 0 {
		t.Fatalf("failed load left %d reachable entries", len(got))
	}
	// Ordinary single-leaf operation still works afterwards.
	for i := int64(0); i < 100; i++ {
		if err := tree.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := tree.Search(42)
	if err != nil || len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("Search after recovery = %v, %v", vals, err)
	}
}

// Regression: a duplicate-key run spanning a leaf split must stay fully
// reachable. With key-only separators (the pre-composite encoding) the
// descent lands right of the split point and Search drops the left
// leaf's duplicates.
func TestBTreeDuplicateRunSpansLeafSplits(t *testing.T) {
	tree := newTestTree(t, 256)
	const dups = 2000 // ~4 leaves of the same key
	r := rand.New(rand.NewSource(3))
	if err := tree.Insert(6, 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(8, 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Perm(dups) {
		if err := tree.Insert(7, uint64(v)); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := tree.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != dups {
		t.Fatalf("Search(7) = %d values, want %d", len(vals), dups)
	}
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("values out of order at %d: %d", i, v)
		}
	}
}

// Property: under a random interleaving of inserts and deletes at a
// scale that forces leaf and inner splits (with heavy duplication), the
// tree matches a reference map + sort oracle.
func TestBTreeInsertDeleteMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tree := newTestTree(t, 512)
	type pair struct {
		k int64
		v uint64
	}
	live := map[pair]bool{}
	var liveList []pair // insertion order, for picking delete victims
	const ops = 12000
	for i := 0; i < ops; i++ {
		if len(liveList) > 0 && r.Intn(10) < 3 {
			// Delete a random live entry.
			j := r.Intn(len(liveList))
			p := liveList[j]
			liveList[j] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, p)
			ok, err := tree.Delete(p.k, p.v)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("Delete(%d,%d) reported absent", p.k, p.v)
			}
			continue
		}
		p := pair{k: int64(r.Intn(48)) - 24, v: uint64(i)}
		if err := tree.Insert(p.k, p.v); err != nil {
			t.Fatal(err)
		}
		live[p] = true
		liveList = append(liveList, p)
	}
	// Deleting an absent entry is a clean no-op.
	if ok, err := tree.Delete(1000, 1); err != nil || ok {
		t.Fatalf("Delete(absent) = %v, %v", ok, err)
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len = %d, oracle has %d", tree.Len(), len(live))
	}
	want := make([]pair, 0, len(live))
	for p := range live {
		want = append(want, p)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].k != want[j].k {
			return want[i].k < want[j].k
		}
		return want[i].v < want[j].v
	})
	var got []pair
	if err := tree.ScanRange(-100, 100, func(k int64, v uint64) bool {
		got = append(got, pair{k, v})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan = %d entries, oracle = %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: tree=%v oracle=%v", i, got[i], want[i])
		}
	}
}

func TestTableBulkInsertMatchesInsert(t *testing.T) {
	mkRows := func(n int) []Row {
		r := rand.New(rand.NewSource(5))
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(i), "user", int64(r.Intn(7)), int64(0)}
		}
		return rows
	}
	const n = 2000

	bulkEng := NewEngine(512, DefaultCostModel())
	bulk, err := bulkEng.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkInsert(mkRows(n)); err != nil {
		t.Fatal(err)
	}
	incrEng := NewEngine(512, DefaultCostModel())
	incr, err := incrEng.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range mkRows(n) {
		if _, err := incr.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Rows() != n || incr.Rows() != n {
		t.Fatalf("rows: bulk=%d incr=%d", bulk.Rows(), incr.Rows())
	}
	for _, tbl := range []*Table{bulk, incr} {
		row, err := tbl.GetByPK(123)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil || row[0] != int64(123) {
			t.Fatalf("GetByPK: %v", row)
		}
	}
	for reg := int64(0); reg < 7; reg++ {
		a, err := bulk.LookupBy("region", reg, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := incr.LookupBy("region", reg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("region %d: bulk=%d incr=%d rows", reg, len(a), len(b))
		}
	}
	// Same logical write work is metered (hits/misses differ by design).
	if bulkEng.Meter().RowsWritten != incrEng.Meter().RowsWritten {
		t.Fatalf("RowsWritten: bulk=%d incr=%d", bulkEng.Meter().RowsWritten, incrEng.Meter().RowsWritten)
	}
	// WAL traffic differs by design: the bulk path frames one batched
	// record per heap page (LOAD DATA), the incremental path one record
	// per row. TestBulkInsertWALBatchRecoveryEquivalence pins that the
	// two streams carry identical row images; here it suffices that
	// batching only ever removed framing overhead.
	if b, i := bulkEng.Meter().WALBytes, incrEng.Meter().WALBytes; b >= i {
		t.Fatalf("batched WAL (%v bytes) should undercut per-row framing (%v bytes)", b, i)
	}
	// After bulk load the table behaves normally for writes.
	if _, err := bulk.Insert(Row{int64(n + 1), "late", int64(1), int64(0)}); err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkInsert(mkRows(1)); err == nil {
		t.Fatal("BulkInsert into populated table should error")
	}
	unsorted := []Row{{int64(5), "a", int64(0), int64(0)}, {int64(4), "b", int64(0), int64(0)}}
	empty := NewEngine(64, DefaultCostModel())
	et, err := empty.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	if err := et.BulkInsert(unsorted); err == nil {
		t.Fatal("unsorted BulkInsert should error")
	}
}

// TestBulkInsertWALBatchRecoveryEquivalence pins the WAL batching
// contract: a bulk load logs one framed batch record per heap page,
// and the payload those batches carry — each row image plus its length
// prefix — is byte-equivalent to what per-row framing carries, so a
// recovery replay would reconstruct identical row images from either
// stream. The difference between the two streams is exactly the framing
// overhead: per-row pays frame+header per row, batched pays it per page
// plus a u16 prefix per row.
func TestBulkInsertWALBatchRecoveryEquivalence(t *testing.T) {
	mkRows := func(n int) []Row {
		r := rand.New(rand.NewSource(9))
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(i), "user", int64(r.Intn(7)), int64(0)}
		}
		return rows
	}
	const n = 3000
	rows := mkRows(n)

	// The ground truth: the images both paths must log.
	imageBytes := 0
	for _, row := range rows {
		img, err := EncodeRow(usersSchema(), row)
		if err != nil {
			t.Fatal(err)
		}
		imageBytes += len(img)
	}

	bulkEng := NewEngine(512, DefaultCostModel())
	bulk, err := bulkEng.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	incrEng := NewEngine(512, DefaultCostModel())
	incr, err := incrEng.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if _, err := incr.Insert(row); err != nil {
			t.Fatal(err)
		}
	}

	// Per-row framing: n records of frame + header + image.
	perRowOverhead := float64(n * (walFrameOverhead + walRecordHeader))
	if got, want := incrEng.Meter().WALBytes, perRowOverhead+float64(imageBytes); got != want {
		t.Fatalf("per-row WAL bytes = %v, want %v", got, want)
	}

	// Batched framing: one record per heap page (the LSN counter counts
	// appended records), frame + batch header each, plus a length
	// prefix per row, plus the identical images.
	batches := int(bulkEng.wal.NextLSN())
	pages := int(bulk.heap.last.PageNo-firstHeapPage(bulk)) + 1
	if batches != pages {
		t.Fatalf("bulk load appended %d WAL records over %d heap pages", batches, pages)
	}
	batchOverhead := float64(batches*(walFrameOverhead+walBatchHeader) + n*walBatchRowPrefix)
	if got, want := bulkEng.Meter().WALBytes, batchOverhead+float64(imageBytes); got != want {
		t.Fatalf("batched WAL bytes = %v, want %v", got, want)
	}

	// Recovery equivalence: strip each stream's known framing and the
	// same image payload must remain.
	perRowImages := incrEng.Meter().WALBytes - perRowOverhead
	batchImages := bulkEng.Meter().WALBytes - batchOverhead
	if perRowImages != batchImages {
		t.Fatalf("recovered image payloads differ: per-row=%v batched=%v", perRowImages, batchImages)
	}
}

// firstHeapPage reports the page number of the table's first heap page.
func firstHeapPage(tb *Table) uint32 {
	rids, err := tb.pk.Search(0)
	if err != nil || len(rids) == 0 {
		panic("firstHeapPage: pk 0 missing")
	}
	return DecodeRID(rids[0]).PageNo
}
