package rubisdb

import "fmt"

// RID locates a tuple: page number and slot within the heap file.
// Encoded as uint64 (pageNo<<16 | slot) for storage in index values.
type RID struct {
	PageNo uint32
	Slot   uint16
}

// Encode packs the RID for use as a B+tree value.
func (r RID) Encode() uint64 { return uint64(r.PageNo)<<16 | uint64(r.Slot) }

// DecodeRID unpacks an encoded RID.
func DecodeRID(v uint64) RID {
	return RID{PageNo: uint32(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// Heap is an append-only heap file of variable-length tuples.
type Heap struct {
	pool *BufferPool
	file uint32
	last PageID
	has  bool
	// Rows counts stored tuples.
	Rows int
}

// NewHeap creates an empty heap in file.
func NewHeap(pool *BufferPool, file uint32) *Heap {
	return &Heap{pool: pool, file: file}
}

// Insert appends a tuple and returns its RID.
func (h *Heap) Insert(tuple []byte) (RID, error) {
	if len(tuple) > PageSize/2 {
		return RID{}, fmt.Errorf("rubisdb: tuple of %d bytes exceeds half page", len(tuple))
	}
	if h.has {
		f, err := h.pool.GetMut(h.last)
		if err != nil {
			return RID{}, err
		}
		if slot, err := f.Page.InsertCell(tuple); err == nil {
			f.Unpin(true)
			h.Rows++
			return RID{PageNo: h.last.PageNo, Slot: uint16(slot)}, nil
		}
		f.Unpin(false)
	}
	f, err := h.pool.NewPage(h.file)
	if err != nil {
		return RID{}, err
	}
	slot, err := f.Page.InsertCell(tuple)
	if err != nil {
		f.Unpin(false)
		return RID{}, err
	}
	id := f.ID()
	f.Unpin(true)
	h.last = id
	h.has = true
	h.Rows++
	return RID{PageNo: id.PageNo, Slot: uint16(slot)}, nil
}

// Fetch returns a copy of the tuple at rid.
func (h *Heap) Fetch(rid RID) ([]byte, error) {
	f, err := h.pool.Get(PageID{File: h.file, PageNo: rid.PageNo})
	if err != nil {
		return nil, err
	}
	cell, err := f.Page.Cell(int(rid.Slot))
	if err != nil {
		f.Unpin(false)
		return nil, err
	}
	out := append([]byte(nil), cell...)
	f.Unpin(false)
	return out, nil
}

// UpdateInPlace overwrites the tuple at rid with a same-length payload.
func (h *Heap) UpdateInPlace(rid RID, tuple []byte) error {
	f, err := h.pool.GetMut(PageID{File: h.file, PageNo: rid.PageNo})
	if err != nil {
		return err
	}
	err = f.Page.UpdateCellInPlace(int(rid.Slot), tuple)
	f.Unpin(err == nil)
	return err
}

// PageCounter reports per-file allocated page counts; both MemStore and
// the copy-on-write view store implement it.
type PageCounter interface {
	PageCount(file uint32) uint32
}

// Scan visits every tuple in heap order; fn returning false stops early.
func (h *Heap) Scan(store PageCounter, fn func(rid RID, tuple []byte) bool) error {
	n := store.PageCount(h.file)
	for pn := uint32(0); pn < n; pn++ {
		f, err := h.pool.Get(PageID{File: h.file, PageNo: pn})
		if err != nil {
			return err
		}
		cells := f.Page.NumCells()
		for s := 0; s < cells; s++ {
			cell, err := f.Page.Cell(s)
			if err != nil {
				f.Unpin(false)
				return err
			}
			if !fn(RID{PageNo: pn, Slot: uint16(s)}, cell) {
				f.Unpin(false)
				return nil
			}
		}
		f.Unpin(false)
	}
	return nil
}
