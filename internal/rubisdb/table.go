package rubisdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// ColType is a column type.
type ColType int

// Column types supported by the RUBiS schema.
const (
	TInt64 ColType = iota
	TFloat64
	TString
)

// Column describes one schema column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema []Column

// ColIndex returns the position of the named column or an error.
func (s Schema) ColIndex(name string) (int, error) {
	for i, c := range s {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("rubisdb: no column %q", name)
}

// Row is one tuple; element i must match Schema[i].Type (int64, float64,
// or string).
type Row []any

// EncodeRow serializes row against schema. Int64 and Float64 are 8 bytes
// big-endian; strings are length-prefixed (u16).
func EncodeRow(schema Schema, row Row) ([]byte, error) {
	return AppendRow(schema, nil, row)
}

// AppendRow serializes row against schema, appending to dst and
// returning the extended buffer. Every storage-side consumer of a tuple
// copies it (pages, the WAL framing buffer), so hot paths pass a reused
// scratch buffer and encode without allocating.
func AppendRow(schema Schema, dst []byte, row Row) ([]byte, error) {
	if len(row) != len(schema) {
		return nil, fmt.Errorf("rubisdb: row arity %d != schema arity %d", len(row), len(schema))
	}
	out := dst
	for i, col := range schema {
		switch col.Type {
		case TInt64:
			v, ok := row[i].(int64)
			if !ok {
				return nil, fmt.Errorf("rubisdb: column %q wants int64, got %T", col.Name, row[i])
			}
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(v))
			out = append(out, b[:]...)
		case TFloat64:
			v, ok := row[i].(float64)
			if !ok {
				return nil, fmt.Errorf("rubisdb: column %q wants float64, got %T", col.Name, row[i])
			}
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
			out = append(out, b[:]...)
		case TString:
			v, ok := row[i].(string)
			if !ok {
				return nil, fmt.Errorf("rubisdb: column %q wants string, got %T", col.Name, row[i])
			}
			if len(v) > 0xFFFF {
				return nil, fmt.Errorf("rubisdb: column %q string too long (%d)", col.Name, len(v))
			}
			var b [2]byte
			binary.BigEndian.PutUint16(b[:], uint16(len(v)))
			out = append(out, b[:]...)
			out = append(out, v...)
		default:
			return nil, fmt.Errorf("rubisdb: column %q has unknown type %d", col.Name, col.Type)
		}
	}
	return out, nil
}

// DecodeRow parses a tuple serialized by EncodeRow.
func DecodeRow(schema Schema, data []byte) (Row, error) {
	row := make(Row, 0, len(schema))
	off := 0
	for _, col := range schema {
		switch col.Type {
		case TInt64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("rubisdb: truncated tuple at column %q", col.Name)
			}
			row = append(row, int64(binary.BigEndian.Uint64(data[off:])))
			off += 8
		case TFloat64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("rubisdb: truncated tuple at column %q", col.Name)
			}
			row = append(row, math.Float64frombits(binary.BigEndian.Uint64(data[off:])))
			off += 8
		case TString:
			if off+2 > len(data) {
				return nil, fmt.Errorf("rubisdb: truncated tuple at column %q", col.Name)
			}
			n := int(binary.BigEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("rubisdb: truncated string at column %q", col.Name)
			}
			row = append(row, string(data[off:off+n]))
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("rubisdb: %d trailing bytes after tuple", len(data)-off)
	}
	return row, nil
}

// Table is a heap file with a unique int64 primary key index and any
// number of (non-unique) int64 secondary indexes.
type Table struct {
	Name   string
	Schema Schema

	id      uint32
	heap    *Heap
	pkCol   int
	pk      *BTree
	secCols []int
	secs    []*BTree

	engine *Engine
	// rowScratch is the reused tuple-encoding buffer for this table's
	// write paths; safe because pages and the WAL copy the bytes.
	rowScratch []byte
}

// walInsert and walUpdate are WAL op codes.
const (
	walInsert = 1
	walUpdate = 2
)

// encode serializes row into the table's reused scratch buffer. The
// returned slice is valid until the next encode on this table.
func (t *Table) encode(row Row) ([]byte, error) {
	buf, err := AppendRow(t.Schema, t.rowScratch[:0], row)
	if err != nil {
		return nil, err
	}
	t.rowScratch = buf
	return buf, nil
}

// Insert validates and stores row, maintaining all indexes, and returns
// its RID.
func (t *Table) Insert(row Row) (RID, error) {
	tuple, err := t.encode(row)
	if err != nil {
		return RID{}, fmt.Errorf("table %s: %w", t.Name, err)
	}
	key, ok := row[t.pkCol].(int64)
	if !ok {
		return RID{}, fmt.Errorf("table %s: primary key must be int64", t.Name)
	}
	if existing, err := t.pk.Search(key); err != nil {
		return RID{}, err
	} else if len(existing) > 0 {
		return RID{}, fmt.Errorf("table %s: duplicate primary key %d", t.Name, key)
	}
	rid, err := t.heap.Insert(tuple)
	if err != nil {
		return RID{}, err
	}
	if err := t.pk.Insert(key, rid.Encode()); err != nil {
		return RID{}, err
	}
	for i, col := range t.secCols {
		sk, ok := row[col].(int64)
		if !ok {
			return RID{}, fmt.Errorf("table %s: secondary key column %d must be int64", t.Name, col)
		}
		if err := t.secs[i].Insert(sk, rid.Encode()); err != nil {
			return RID{}, err
		}
	}
	t.engine.meter.RowsWritten++
	t.engine.wal.AppendRecord(t.id, walInsert, tuple)
	return rid, nil
}

// BulkInsert loads rows into an empty table through the sorted
// bulk-load path: tuples are appended to the heap once, then the
// primary-key and secondary indexes are built with BTree.BulkLoad
// instead of one root-to-leaf descent per row. Rows must be sorted by
// strictly ascending primary key (the dataset generators emit them that
// way); secondary entries are sorted here before loading. WAL traffic
// is batched — one framed record per heap page of rows rather than one
// per row (the LOAD DATA shape) — carrying the same row images with far
// less framing overhead.
func (t *Table) BulkInsert(rows []Row) error {
	if t.heap.Rows != 0 || t.pk.Len() != 0 {
		return fmt.Errorf("table %s: BulkInsert needs an empty table", t.Name)
	}
	if len(rows) == 0 {
		return nil
	}
	pkEntries := make([]Entry, 0, len(rows))
	secEntries := make([][]Entry, len(t.secCols))
	for i := range secEntries {
		secEntries[i] = make([]Entry, 0, len(rows))
	}
	var lastKey int64
	// One WAL record accumulates per heap page; rows land on ascending
	// pages, so a page switch means the previous batch is complete.
	var batchPage uint32
	var batchRows, batchBytes int
	for ri, row := range rows {
		tuple, err := t.encode(row)
		if err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
		key, ok := row[t.pkCol].(int64)
		if !ok {
			return fmt.Errorf("table %s: primary key must be int64", t.Name)
		}
		if ri > 0 && key <= lastKey {
			return fmt.Errorf("table %s: BulkInsert rows must be sorted by unique primary key (%d after %d)", t.Name, key, lastKey)
		}
		lastKey = key
		rid, err := t.heap.Insert(tuple)
		if err != nil {
			return err
		}
		if batchRows > 0 && rid.PageNo != batchPage {
			t.engine.wal.AppendBatchRecord(t.id, walInsert, batchRows, batchBytes)
			batchRows, batchBytes = 0, 0
		}
		batchPage = rid.PageNo
		batchRows++
		batchBytes += len(tuple)
		enc := rid.Encode()
		pkEntries = append(pkEntries, Entry{Key: key, Value: enc})
		for si, col := range t.secCols {
			sk, ok := row[col].(int64)
			if !ok {
				return fmt.Errorf("table %s: secondary key column %d must be int64", t.Name, col)
			}
			secEntries[si] = append(secEntries[si], Entry{Key: sk, Value: enc})
		}
		t.engine.meter.RowsWritten++
	}
	if batchRows > 0 {
		t.engine.wal.AppendBatchRecord(t.id, walInsert, batchRows, batchBytes)
	}
	if err := t.pk.BulkLoad(pkEntries); err != nil {
		return err
	}
	for si, entries := range secEntries {
		sortEntriesByKey(entries)
		if err := t.secs[si].BulkLoad(entries); err != nil {
			return err
		}
	}
	return nil
}

// sortEntriesByKey sorts index entries by (Key, Value). BulkInsert
// appends entries in strictly increasing Value (RID) order, so any
// stable sort by Key alone yields the full (Key, Value) order; when the
// key range is dense — secondary keys are row ids drawn from a bounded
// id space — a stable counting sort replaces the O(n log n) comparison
// sort that used to dominate dataset population. Sparse or negative key
// ranges fall back to the comparison sort.
func sortEntriesByKey(entries []Entry) {
	if len(entries) < 64 {
		slices.SortFunc(entries, compareEntries)
		return
	}
	lo, hi := entries[0].Key, entries[0].Key
	for _, e := range entries[1:] {
		if e.Key < lo {
			lo = e.Key
		}
		if e.Key > hi {
			hi = e.Key
		}
	}
	// Unsigned subtraction is exact for any int64 pair with hi >= lo,
	// so a span wider than int64 (lo near MinInt64, hi near MaxInt64)
	// falls through to the comparison sort instead of wrapping.
	span := uint64(hi) - uint64(lo)
	if span > uint64(4*len(entries))+1024 {
		slices.SortFunc(entries, compareEntries)
		return
	}
	counts := make([]int32, span+2)
	for _, e := range entries {
		counts[uint64(e.Key)-uint64(lo)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := make([]Entry, len(entries))
	for _, e := range entries {
		c := uint64(e.Key) - uint64(lo)
		out[counts[c]] = e
		counts[c]++
	}
	copy(entries, out)
}

// compareEntries orders index entries by (Key, Value) with an explicit
// short-circuit: the generic cmp.Or(cmp.Compare, cmp.Compare) form
// evaluates both comparisons on every call, which shows up hard in the
// bulk-load sort of every replication's dataset population.
func compareEntries(a, b Entry) int {
	if a.Key != b.Key {
		if a.Key < b.Key {
			return -1
		}
		return 1
	}
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	return 0
}

// GetByPK returns the row with the given primary key, or nil when absent.
func (t *Table) GetByPK(key int64) (Row, error) {
	rids, err := t.pk.Search(key)
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, nil
	}
	return t.fetch(DecodeRID(rids[0]))
}

func (t *Table) fetch(rid RID) (Row, error) {
	tuple, err := t.heap.Fetch(rid)
	if err != nil {
		return nil, err
	}
	t.engine.meter.RowsRead++
	t.engine.meter.BytesOut += float64(len(tuple))
	return DecodeRow(t.Schema, tuple)
}

// LookupBy returns up to limit rows whose indexed column equals key
// (limit <= 0 means unlimited). The column must have a secondary index.
func (t *Table) LookupBy(column string, key int64, limit int) ([]Row, error) {
	return t.RangeBy(column, key, key, limit)
}

// RangeBy returns up to limit rows with lo <= column <= hi in index
// order. The column must be the primary key or carry a secondary index.
func (t *Table) RangeBy(column string, lo, hi int64, limit int) ([]Row, error) {
	tree, err := t.indexFor(column)
	if err != nil {
		return nil, err
	}
	var rids []RID
	err = tree.ScanRange(lo, hi, func(_ int64, v uint64) bool {
		rids = append(rids, DecodeRID(v))
		return limit <= 0 || len(rids) < limit
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(rids))
	for _, rid := range rids {
		row, err := t.fetch(rid)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CountBy counts index entries with lo <= column <= hi without fetching
// rows (an index-only scan).
func (t *Table) CountBy(column string, lo, hi int64) (int, error) {
	tree, err := t.indexFor(column)
	if err != nil {
		return 0, err
	}
	n := 0
	err = tree.ScanRange(lo, hi, func(int64, uint64) bool {
		n++
		return true
	})
	return n, err
}

func (t *Table) indexFor(column string) (*BTree, error) {
	ci, err := t.Schema.ColIndex(column)
	if err != nil {
		return nil, err
	}
	if ci == t.pkCol {
		return t.pk, nil
	}
	for i, col := range t.secCols {
		if col == ci {
			return t.secs[i], nil
		}
	}
	return nil, fmt.Errorf("rubisdb: table %s has no index on %q", t.Name, column)
}

// UpdateNumeric overwrites fixed-width (int64/float64) columns of the row
// with the given primary key. Indexed columns cannot be changed — the
// RUBiS write paths only touch unindexed numerics (price, counters).
func (t *Table) UpdateNumeric(key int64, updates map[string]any) error {
	rids, err := t.pk.Search(key)
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("table %s: no row with pk %d", t.Name, key)
	}
	rid := DecodeRID(rids[0])
	row, err := t.fetch(rid)
	if err != nil {
		return err
	}
	for name, val := range updates {
		ci, err := t.Schema.ColIndex(name)
		if err != nil {
			return err
		}
		if ci == t.pkCol {
			return fmt.Errorf("table %s: cannot update primary key", t.Name)
		}
		for i, col := range t.secCols {
			_ = i
			if col == ci {
				return fmt.Errorf("table %s: cannot update indexed column %q", t.Name, name)
			}
		}
		switch t.Schema[ci].Type {
		case TInt64:
			if _, ok := val.(int64); !ok {
				return fmt.Errorf("table %s: update %q wants int64, got %T", t.Name, name, val)
			}
		case TFloat64:
			if _, ok := val.(float64); !ok {
				return fmt.Errorf("table %s: update %q wants float64, got %T", t.Name, name, val)
			}
		default:
			return fmt.Errorf("table %s: UpdateNumeric cannot update string column %q", t.Name, name)
		}
		row[ci] = val
	}
	tuple, err := t.encode(row)
	if err != nil {
		return err
	}
	if err := t.heap.UpdateInPlace(rid, tuple); err != nil {
		return err
	}
	t.engine.meter.RowsWritten++
	t.engine.wal.AppendRecord(t.id, walUpdate, tuple)
	return nil
}

// Rows reports the stored tuple count.
func (t *Table) Rows() int { return t.heap.Rows }
