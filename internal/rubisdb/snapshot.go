package rubisdb

import "fmt"

// Golden dataset snapshots.
//
// Populating a RUBiS dataset costs ~100 ms and millions of allocations,
// and a sweep repeats it for every replication. Seal captures a
// populated engine — the sealed MemStore pages plus every piece of
// mutable engine state (buffer-pool residency in exact LRU order, meter,
// WAL position, per-table heap/B-tree cursors) — as an immutable Golden.
// NewView then builds a copy-on-write engine over it in microseconds:
// reads alias golden pages directly (see SharedPager in buffer.go) and a
// page is copied only on first write, so a replication's view starts
// byte-identical to a fresh population and diverges privately. Rearm
// rewinds a released view back to the sealed state, recycling its
// private pages and frames through the existing free lists, which makes
// the steady-state attach path allocation-free.

// walState captures the WAL position at seal time. buffered matters:
// group-commit flush timing after attach must match what a fresh
// population would have left behind.
type walState struct {
	lsn        uint64
	buffered   float64
	threshold  float64
	flushes    uint64
	totalBytes float64
}

// tableState captures one table's mutable cursors in registration order.
type tableState struct {
	name     string
	schema   Schema
	id       uint32
	pkCol    int
	secCols  []int
	heapLast PageID
	heapHas  bool
	heapRows int
	pkRoot   PageID
	pkSize   int
	secRoots []PageID
	secSizes []int
}

// Golden is a sealed, immutable engine snapshot that any number of
// copy-on-write views can attach to concurrently.
type Golden struct {
	store    *MemStore
	meter    Meter
	queryOps uint64
	wal      walState
	cost     CostModel
	capacity int
	nextID   uint32
	// residents is the buffer pool's resident set at seal time, most
	// recently used first, so a view's LRU order (and therefore its
	// future eviction sequence) matches a fresh population exactly.
	residents []PageID
	tables    []tableState
}

// Seal freezes the engine into a Golden snapshot. All dirty pages are
// flushed first (a no-op on the meter when the caller already
// checkpointed, as dataset population does) and no frame may be pinned.
// The engine's store becomes immutable; the engine itself must not be
// used afterwards — attach views instead.
func (e *Engine) Seal() (*Golden, error) {
	ms, ok := e.store.(*MemStore)
	if !ok {
		return nil, fmt.Errorf("rubisdb: Seal of a copy-on-write view")
	}
	if err := e.pool.FlushAll(); err != nil {
		return nil, err
	}
	g := &Golden{
		store:    ms,
		meter:    *e.meter,
		queryOps: e.queryOps,
		wal: walState{
			lsn:        e.wal.lsn,
			buffered:   e.wal.buffered,
			threshold:  e.wal.FlushThreshold,
			flushes:    e.wal.Flushes,
			totalBytes: e.wal.TotalBytes,
		},
		cost:     e.cost,
		capacity: e.pool.capacity,
		nextID:   e.nextID,
	}
	for f := e.pool.lru.next; f != &e.pool.lru; f = f.next {
		if f.pins != 0 {
			return nil, fmt.Errorf("rubisdb: Seal with page %v still pinned", f.id)
		}
		g.residents = append(g.residents, f.id)
	}
	for _, t := range e.tableOrder {
		ts := tableState{
			name:     t.Name,
			schema:   t.Schema,
			id:       t.id,
			pkCol:    t.pkCol,
			secCols:  t.secCols,
			heapLast: t.heap.last,
			heapHas:  t.heap.has,
			heapRows: t.heap.Rows,
			pkRoot:   t.pk.root,
			pkSize:   t.pk.size,
		}
		for _, sec := range t.secs {
			ts.secRoots = append(ts.secRoots, sec.root)
			ts.secSizes = append(ts.secSizes, sec.size)
		}
		g.tables = append(g.tables, ts)
	}
	ms.sealed = true
	return g, nil
}

// NewView builds a fresh copy-on-write engine over the snapshot. Views
// are independent: each has its own buffer pool, meter, WAL, and private
// page set, so concurrent views never observe each other. For the
// allocation-free path, recycle a finished view with Rearm instead.
func (g *Golden) NewView() *Engine {
	meter := &Meter{}
	cow := &cowStore{
		golden: g.store,
		priv:   make(map[PageID]Page),
		next:   make(map[uint32]uint32, len(g.store.next)),
	}
	e := &Engine{
		store:  cow,
		pool:   NewBufferPool(cow, g.capacity, meter),
		wal:    NewWAL(meter),
		meter:  meter,
		cost:   g.cost,
		tables: make(map[string]*Table, len(g.tables)),
	}
	for i := range g.tables {
		ts := &g.tables[i]
		t := &Table{
			Name:    ts.name,
			Schema:  ts.schema,
			id:      ts.id,
			heap:    NewHeap(e.pool, ts.id),
			pkCol:   ts.pkCol,
			pk:      &BTree{pool: e.pool, file: ts.id + 1},
			secCols: ts.secCols,
			engine:  e,
		}
		for j := range ts.secRoots {
			t.secs = append(t.secs, &BTree{pool: e.pool, file: ts.id + 2 + uint32(j)})
		}
		e.tables[ts.name] = t
		e.tableOrder = append(e.tableOrder, t)
	}
	g.Rearm(e)
	return e
}

// Rearm rewinds a view created by NewView back to the sealed state:
// private pages and frames return to the free lists, the warm resident
// set is rebuilt over golden pages in sealed LRU order, and the meter,
// WAL, and table cursors are restored. Steady-state Rearm allocates
// nothing, which is what makes replication attach effectively free.
// The view must be quiescent (no outstanding frame references).
func (g *Golden) Rearm(e *Engine) {
	cow := e.store.(*cowStore)
	cow.reset(g.store)
	e.pool.dropAllFrames()
	for i := len(g.residents) - 1; i >= 0; i-- {
		id := g.residents[i]
		f := e.pool.takeFrame()
		*f = Frame{Page: g.store.pages[id], id: id, shared: true}
		e.pool.pushFront(f)
		e.pool.frames[id] = f
	}
	*e.meter = g.meter
	e.queryOps = g.queryOps
	e.nextID = g.nextID
	e.wal.lsn = g.wal.lsn
	e.wal.buffered = g.wal.buffered
	e.wal.FlushThreshold = g.wal.threshold
	e.wal.Flushes = g.wal.flushes
	e.wal.TotalBytes = g.wal.totalBytes
	for i := range g.tables {
		ts := &g.tables[i]
		t := e.tableOrder[i]
		t.heap.last = ts.heapLast
		t.heap.has = ts.heapHas
		t.heap.Rows = ts.heapRows
		t.pk.root = ts.pkRoot
		t.pk.size = ts.pkSize
		for j := range t.secs {
			t.secs[j].root = ts.secRoots[j]
			t.secs[j].size = ts.secSizes[j]
		}
	}
}

// dropAllFrames evicts every resident frame without write-back,
// recycling private page buffers and all frame structs through the free
// lists. Used when rearming a view: its private changes are discarded by
// design.
func (b *BufferPool) dropAllFrames() {
	for f := b.lru.next; f != &b.lru; {
		next := f.next
		if !f.shared {
			b.freePage = append(b.freePage, f.Page)
		}
		*f = Frame{next: b.freeFrame}
		b.freeFrame = f
		f = next
	}
	b.lru.next = &b.lru
	b.lru.prev = &b.lru
	clear(b.frames)
}

// cowStore is the Store behind a view: reads hit the private overlay
// first and fall back to the sealed golden pages; writes (pool
// write-backs) and allocations land in the overlay. It also implements
// SharedPager so the pool can alias still-golden pages zero-copy.
type cowStore struct {
	golden *MemStore
	priv   map[PageID]Page
	next   map[uint32]uint32
	free   []Page
	slab   pageSlab
}

func (c *cowStore) takePage() Page {
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free = c.free[:n-1]
		return p
	}
	return c.slab.take()
}

// reset discards the private overlay (recycling its buffers) and
// restores the allocation cursors to the golden state.
func (c *cowStore) reset(golden *MemStore) {
	for _, p := range c.priv {
		c.free = append(c.free, p)
	}
	clear(c.priv)
	clear(c.next)
	for file, n := range golden.next {
		c.next[file] = n
	}
}

// SharedPage implements SharedPager: still-golden pages may be aliased.
func (c *cowStore) SharedPage(id PageID) (Page, bool) {
	if _, ok := c.priv[id]; ok {
		return nil, false
	}
	p, ok := c.golden.pages[id]
	return p, ok
}

// ReadInto implements Store.
func (c *cowStore) ReadInto(id PageID, dst Page) error {
	if p, ok := c.priv[id]; ok {
		copy(dst, p)
		return nil
	}
	if p, ok := c.golden.pages[id]; ok {
		copy(dst, p)
		return nil
	}
	return fmt.Errorf("rubisdb: page %v not found", id)
}

// Write implements Store: write-backs land in the private overlay, never
// in the golden snapshot.
func (c *cowStore) Write(id PageID, p Page) error {
	dst, ok := c.priv[id]
	if !ok {
		dst = c.takePage()
		c.priv[id] = dst
	}
	copy(dst, p)
	return nil
}

// Allocate implements Store: new pages extend the view privately. The
// buffer is cleared because recycled free-list pages carry stale bytes,
// where MemStore hands out slab pages that are already zero.
func (c *cowStore) Allocate(file uint32) PageID {
	id := PageID{File: file, PageNo: c.next[file]}
	c.next[file]++
	p := c.takePage()
	clear(p)
	c.priv[id] = p
	return id
}

// PageCount reports allocated pages in file (golden plus private growth).
func (c *cowStore) PageCount(file uint32) uint32 { return c.next[file] }
