package rubisdb

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// B+tree index over (int64 key, uint64 value) pairs, stored in buffer
// pool pages. Duplicate keys are supported by ordering entries on the
// composite (key, value); secondary indexes rely on this.
//
// Keys are stored in an order-preserving encoding — big-endian with the
// sign bit flipped — so every comparison on the hot path is a raw
// uint64 compare with no int64 conversion, and composite order is plain
// lexicographic order on the (encodedKey, value) uint64 pair. Node
// search is binary throughout.
//
// Node page layout (fixed-format, not slotted):
//
//	byte 0      node type: 0 leaf, 1 internal
//	bytes 1..2  entry count (u16)
//	bytes 3..6  leaf only: next-leaf page number (u32), ^0 for none
//	byte 7      reserved
//	byte 8...   entries
//
// Leaf entry: encoded key u64 | value u64 (16 bytes). Internal layout:
// child0 u32 followed by (encoded key u64 | value u64 | child u32)
// repeated (20 bytes each); separator i is the smallest composite
// (key, value) in child i+1's subtree. Separators carry the full
// composite so that a duplicate-key run spanning a leaf split still
// routes lookups to the leftmost leaf holding the key.
const (
	nodeLeaf     = 0
	nodeInternal = 1

	btHeader   = 8
	leafEntry  = 16
	leafMax    = (PageSize - btHeader) / leafEntry
	innerEntry = 20
	innerMax   = (PageSize - btHeader - 4) / innerEntry
	noNext     = ^uint32(0)

	// leafBulkFill is the leaf fill target for BulkLoad: slightly below
	// leafMax (InnoDB-style 15/16) so post-load inserts don't split on
	// first touch.
	leafBulkFill = leafMax - leafMax/16
)

// signFlip maps int64 order onto uint64 order.
const signFlip = 1 << 63

func encodeKey(k int64) uint64 { return uint64(k) ^ signFlip }
func decodeKey(e uint64) int64 { return int64(e ^ signFlip) }

// BTree is a B+tree index backed by a buffer pool file.
type BTree struct {
	pool *BufferPool
	file uint32
	root PageID
	size int
}

// NewBTree creates an empty tree in file.
func NewBTree(pool *BufferPool, file uint32) (*BTree, error) {
	f, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	initLeaf(f.Page)
	id := f.ID()
	f.Unpin(true)
	return &BTree{pool: pool, file: file, root: id}, nil
}

// Len reports the number of stored entries.
func (t *BTree) Len() int { return t.size }

// initLeaf and initInternal only reset the 8-byte node header; bytes
// past the entry count are never read, so stale entry bytes are
// harmless (and deterministic for a deterministic op sequence).
func initLeaf(p Page) {
	p[0] = nodeLeaf
	p[1], p[2] = 0, 0
	binary.BigEndian.PutUint32(p[3:7], noNext)
	p[7] = 0
}

func initInternal(p Page) {
	p[0] = nodeInternal
	p[1], p[2] = 0, 0
	binary.BigEndian.PutUint32(p[3:7], 0)
	p[7] = 0
}

func nodeCount(p Page) int         { return int(binary.BigEndian.Uint16(p[1:3])) }
func setNodeCount(p Page, n int)   { binary.BigEndian.PutUint16(p[1:3], uint16(n)) }
func leafNext(p Page) uint32       { return binary.BigEndian.Uint32(p[3:7]) }
func setLeafNext(p Page, v uint32) { binary.BigEndian.PutUint32(p[3:7], v) }

func leafRawKey(p Page, i int) uint64 {
	return binary.BigEndian.Uint64(p[btHeader+i*leafEntry:])
}
func leafVal(p Page, i int) uint64 {
	return binary.BigEndian.Uint64(p[btHeader+i*leafEntry+8:])
}
func setLeafEntry(p Page, i int, ek, v uint64) {
	off := btHeader + i*leafEntry
	binary.BigEndian.PutUint64(p[off:], ek)
	binary.BigEndian.PutUint64(p[off+8:], v)
}

// shiftLeafRight opens a one-entry hole at position pos in a leaf of n
// entries with a single bulk copy (entries are plain bytes).
func shiftLeafRight(p Page, pos, n int) {
	copy(p[btHeader+(pos+1)*leafEntry:btHeader+(n+1)*leafEntry],
		p[btHeader+pos*leafEntry:btHeader+n*leafEntry])
}

// shiftLeafLeft closes the one-entry hole at position pos in a leaf of
// n entries.
func shiftLeafLeft(p Page, pos, n int) {
	copy(p[btHeader+pos*leafEntry:btHeader+(n-1)*leafEntry],
		p[btHeader+(pos+1)*leafEntry:btHeader+n*leafEntry])
}

func innerChild(p Page, i int) uint32 {
	if i == 0 {
		return binary.BigEndian.Uint32(p[btHeader:])
	}
	return binary.BigEndian.Uint32(p[btHeader+4+(i-1)*innerEntry+16:])
}
func setInnerChild0(p Page, c uint32) { binary.BigEndian.PutUint32(p[btHeader:], c) }
func innerRawKey(p Page, i int) uint64 {
	return binary.BigEndian.Uint64(p[btHeader+4+i*innerEntry:])
}
func innerVal(p Page, i int) uint64 {
	return binary.BigEndian.Uint64(p[btHeader+4+i*innerEntry+8:])
}
func setInnerEntry(p Page, i int, ek, v uint64, child uint32) {
	off := btHeader + 4 + i*innerEntry
	binary.BigEndian.PutUint64(p[off:], ek)
	binary.BigEndian.PutUint64(p[off+8:], v)
	binary.BigEndian.PutUint32(p[off+16:], child)
}

// shiftInnerRight opens a one-entry hole at position pos among n inner
// separators with a single bulk copy.
func shiftInnerRight(p Page, pos, n int) {
	base := btHeader + 4
	copy(p[base+(pos+1)*innerEntry:base+(n+1)*innerEntry],
		p[base+pos*innerEntry:base+n*innerEntry])
}

// compLess orders composite (encodedKey, value) pairs.
func compLess(ak, av, bk, bv uint64) bool {
	if ak != bk {
		return ak < bk
	}
	return av < bv
}

// leafLowerBound returns the first index in the leaf whose composite is
// >= (ek, v).
func leafLowerBound(p Page, n int, ek, v uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compLess(leafRawKey(p, mid), leafVal(p, mid), ek, v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// innerChildIndex returns the child to descend into for composite
// (ek, v): the number of separators <= (ek, v).
func innerChildIndex(p Page, n int, ek, v uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if !compLess(ek, v, innerRawKey(p, mid), innerVal(p, mid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds the (key, value) pair. Inserting an exact duplicate
// (key AND value) is rejected: it always indicates a primary-key or
// row-id collision upstream.
func (t *BTree) Insert(key int64, value uint64) error {
	sepK, sepV, newChild, err := t.insertInto(t.root, encodeKey(key), value)
	if err != nil {
		return err
	}
	if newChild != noNext {
		// Root split: build a new internal root.
		f, err := t.pool.NewPage(t.file)
		if err != nil {
			return err
		}
		initInternal(f.Page)
		setInnerChild0(f.Page, t.root.PageNo)
		setInnerEntry(f.Page, 0, sepK, sepV, newChild)
		setNodeCount(f.Page, 1)
		id := f.ID()
		f.Unpin(true)
		t.root = id
	}
	t.size++
	return nil
}

// insertInto descends into page id; on child split it returns the
// promoted separator composite and new right-sibling page number
// (noNext when no split happened). The node stays pinned across the
// recursive descent, so a split never re-fetches its parent.
func (t *BTree) insertInto(id PageID, ek, value uint64) (uint64, uint64, uint32, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return 0, 0, noNext, err
	}
	page := f.Page
	if page[0] == nodeLeaf {
		return t.insertLeaf(f, ek, value)
	}
	n := nodeCount(page)
	childIdx := innerChildIndex(page, n, ek, value)
	child := PageID{File: t.file, PageNo: innerChild(page, childIdx)}
	sepK, sepV, newChild, err := t.insertInto(child, ek, value)
	if err != nil || newChild == noNext {
		f.Unpin(false)
		return 0, 0, noNext, err
	}
	// The child split propagates an edit into this node; copy a shared
	// golden page before touching it.
	t.pool.Privatize(f)
	page = f.Page
	if n < innerMax {
		shiftInnerRight(page, childIdx, n)
		setInnerEntry(page, childIdx, sepK, sepV, newChild)
		setNodeCount(page, n+1)
		f.Unpin(true)
		return 0, 0, noNext, nil
	}
	// Internal split: gather separators, insert, split in half around a
	// promoted median.
	keys := make([]uint64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	children := make([]uint32, 0, n+2)
	children = append(children, innerChild(page, 0))
	for i := 0; i < n; i++ {
		keys = append(keys, innerRawKey(page, i))
		vals = append(vals, innerVal(page, i))
		children = append(children, innerChild(page, i+1))
	}
	keys = slices.Insert(keys, childIdx, sepK)
	vals = slices.Insert(vals, childIdx, sepV)
	children = slices.Insert(children, childIdx+1, newChild)

	mid := len(keys) / 2
	upK, upV := keys[mid], vals[mid]
	rf, err := t.pool.NewPage(t.file)
	if err != nil {
		f.Unpin(false)
		return 0, 0, noNext, err
	}
	rpage := rf.Page
	initInternal(rpage)
	setInnerChild0(rpage, children[mid+1])
	for i := mid + 1; i < len(keys); i++ {
		setInnerEntry(rpage, i-mid-1, keys[i], vals[i], children[i+1])
	}
	setNodeCount(rpage, len(keys)-mid-1)
	rid := rf.ID()
	rf.Unpin(true)

	initInternal(page)
	setInnerChild0(page, children[0])
	for i := 0; i < mid; i++ {
		setInnerEntry(page, i, keys[i], vals[i], children[i+1])
	}
	setNodeCount(page, mid)
	f.Unpin(true)
	return upK, upV, rid.PageNo, nil
}

func (t *BTree) insertLeaf(f *Frame, ek, value uint64) (uint64, uint64, uint32, error) {
	page := f.Page
	n := nodeCount(page)
	pos := leafLowerBound(page, n, ek, value)
	if pos < n && leafRawKey(page, pos) == ek && leafVal(page, pos) == value {
		f.Unpin(false)
		return 0, 0, noNext, fmt.Errorf("rubisdb: duplicate index entry (%d,%d)", decodeKey(ek), value)
	}
	// Both remaining paths edit this leaf (in-place insert, or the left
	// half of a split); copy a shared golden page first.
	t.pool.Privatize(f)
	page = f.Page
	if n < leafMax {
		shiftLeafRight(page, pos, n)
		setLeafEntry(page, pos, ek, value)
		setNodeCount(page, n+1)
		f.Unpin(true)
		return 0, 0, noNext, nil
	}
	// Leaf split: distribute the n existing entries plus the new one so
	// the left leaf keeps mid entries, moving bytes with bulk copies
	// instead of per-entry decode/encode.
	rf, err := t.pool.NewPage(t.file)
	if err != nil {
		f.Unpin(false)
		return 0, 0, noNext, err
	}
	rpage := rf.Page
	initLeaf(rpage)
	mid := (n + 1) / 2
	if pos < mid {
		// New entry lands left: entries mid-1..n-1 move right.
		copy(rpage[btHeader:], page[btHeader+(mid-1)*leafEntry:btHeader+n*leafEntry])
		shiftLeafRight(page, pos, mid-1)
		setLeafEntry(page, pos, ek, value)
	} else {
		// New entry lands right between pos-1 and pos.
		k := pos - mid
		copy(rpage[btHeader:], page[btHeader+mid*leafEntry:btHeader+pos*leafEntry])
		setLeafEntry(rpage, k, ek, value)
		copy(rpage[btHeader+(k+1)*leafEntry:], page[btHeader+pos*leafEntry:btHeader+n*leafEntry])
	}
	setNodeCount(rpage, n+1-mid)
	setNodeCount(page, mid)
	setLeafNext(rpage, leafNext(page))
	sepK, sepV := leafRawKey(rpage, 0), leafVal(rpage, 0)
	rid := rf.ID()
	rf.Unpin(true)
	setLeafNext(page, rid.PageNo)
	f.Unpin(true)
	return sepK, sepV, rid.PageNo, nil
}

// Delete removes the exact (key, value) entry, reporting whether it was
// present. Deletion is lazy (as InnoDB's purge leaves pages unmerged):
// the entry is cut out of its leaf, but leaves are never rebalanced or
// reclaimed — later inserts refill them.
func (t *BTree) Delete(key int64, value uint64) (bool, error) {
	ek := encodeKey(key)
	f, err := t.findLeaf(ek, value)
	if err != nil {
		return false, err
	}
	page := f.Page
	n := nodeCount(page)
	pos := leafLowerBound(page, n, ek, value)
	if pos >= n || leafRawKey(page, pos) != ek || leafVal(page, pos) != value {
		f.Unpin(false)
		return false, nil
	}
	t.pool.Privatize(f)
	page = f.Page
	shiftLeafLeft(page, pos, n)
	setNodeCount(page, n-1)
	f.Unpin(true)
	t.size--
	return true, nil
}

// findLeaf descends to the leaf that would hold composite (ek, v) and
// returns it pinned; the caller unpins.
func (t *BTree) findLeaf(ek, v uint64) (*Frame, error) {
	id := t.root
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		if f.Page[0] == nodeLeaf {
			return f, nil
		}
		idx := innerChildIndex(f.Page, nodeCount(f.Page), ek, v)
		id = PageID{File: t.file, PageNo: innerChild(f.Page, idx)}
		f.Unpin(false)
	}
}

// Search returns all values stored under key, in value order.
func (t *BTree) Search(key int64) ([]uint64, error) {
	var out []uint64
	err := t.ScanRange(key, key, func(k int64, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// ScanRange visits entries with lo <= key <= hi in order, calling fn for
// each; fn returning false stops the scan early.
func (t *BTree) ScanRange(lo, hi int64, fn func(key int64, value uint64) bool) error {
	if lo > hi {
		return nil
	}
	elo, ehi := encodeKey(lo), encodeKey(hi)
	// Value 0 is the minimal composite under elo, so the descent lands
	// on the leftmost leaf that can hold key lo.
	f, err := t.findLeaf(elo, 0)
	if err != nil {
		return err
	}
	start := leafLowerBound(f.Page, nodeCount(f.Page), elo, 0)
	for {
		page := f.Page
		n := nodeCount(page)
		for i := start; i < n; i++ {
			ek := leafRawKey(page, i)
			if ek > ehi {
				f.Unpin(false)
				return nil
			}
			if !fn(decodeKey(ek), leafVal(page, i)) {
				f.Unpin(false)
				return nil
			}
		}
		next := leafNext(page)
		f.Unpin(false)
		if next == noNext {
			return nil
		}
		f, err = t.pool.Get(PageID{File: t.file, PageNo: next})
		if err != nil {
			return err
		}
		start = 0
	}
}

// Height reports the tree depth (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			return 0, err
		}
		if f.Page[0] == nodeLeaf {
			f.Unpin(false)
			return h, nil
		}
		id = PageID{File: t.file, PageNo: innerChild(f.Page, 0)}
		f.Unpin(false)
		h++
	}
}

// Entry is one (key, value) pair for BulkLoad.
type Entry struct {
	Key   int64
	Value uint64
}

// BulkLoad populates an empty tree from entries sorted ascending by
// composite (key, value) with no exact duplicates. Leaves are built
// left-to-right at leafBulkFill occupancy and internal levels are
// assembled bottom-up, so loading n entries costs O(n) page touches
// instead of n root-to-leaf descents. The dataset-population phase of
// every replication uses this through Table.BulkInsert.
func (t *BTree) BulkLoad(entries []Entry) error {
	if t.size != 0 {
		return fmt.Errorf("rubisdb: BulkLoad needs an empty tree, have %d entries", t.size)
	}
	if len(entries) == 0 {
		return nil
	}
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.Key > b.Key || (a.Key == b.Key && a.Value >= b.Value) {
			return fmt.Errorf("rubisdb: BulkLoad entries unsorted or duplicated at index %d", i)
		}
	}
	if err := t.bulkBuild(entries); err != nil {
		// A mid-build failure (pool exhaustion, store write error) may
		// have filled the reused root leaf or built orphan levels.
		// Restore the root to an empty leaf so the tree stays a
		// consistent empty tree; already-built pages are leaked to the
		// store, like the error paths of an interrupted split.
		if f, rerr := t.pool.GetMut(t.root); rerr == nil {
			initLeaf(f.Page)
			f.Unpin(true)
		}
		return err
	}
	t.size = len(entries)
	return nil
}

// bulkBuild constructs the leaf chain and internal levels for BulkLoad,
// updating t.root only after the whole tree exists.
func (t *BTree) bulkBuild(entries []Entry) error {
	// ref carries one built node up to its parent level: the smallest
	// composite in its subtree plus its page number.
	type ref struct {
		ek, v uint64
		page  uint32
	}
	level := make([]ref, 0, (len(entries)+leafBulkFill-1)/leafBulkFill)

	// Leaf level. The previous leaf stays pinned until the current one
	// exists so its next pointer can be chained (needs pool capacity 2).
	var prev *Frame
	for off := 0; off < len(entries); {
		n := min(leafBulkFill, len(entries)-off)
		var f *Frame
		var err error
		if off == 0 {
			// Reuse the empty root page as the first leaf (GetMut: it is
			// about to be rewritten, and may be a shared golden page).
			f, err = t.pool.GetMut(t.root)
			if err == nil && (f.Page[0] != nodeLeaf || nodeCount(f.Page) != 0) {
				f.Unpin(false)
				err = fmt.Errorf("rubisdb: BulkLoad needs a fresh tree (root is not an empty leaf)")
			}
		} else {
			f, err = t.pool.NewPage(t.file)
		}
		if err != nil {
			if prev != nil {
				prev.Unpin(true)
			}
			return err
		}
		initLeaf(f.Page)
		for j := 0; j < n; j++ {
			setLeafEntry(f.Page, j, encodeKey(entries[off+j].Key), entries[off+j].Value)
		}
		setNodeCount(f.Page, n)
		if prev != nil {
			setLeafNext(prev.Page, f.ID().PageNo)
			prev.Unpin(true)
		}
		level = append(level, ref{encodeKey(entries[off].Key), entries[off].Value, f.ID().PageNo})
		prev = f
		off += n
	}
	prev.Unpin(true)

	// Internal levels, bottom-up until one root remains.
	for len(level) > 1 {
		next := make([]ref, 0, len(level)/(innerMax+1)+1)
		for i := 0; i < len(level); {
			take := min(innerMax+1, len(level)-i)
			if len(level)-i-take == 1 {
				// Never leave a trailing separator-less node.
				take--
			}
			group := level[i : i+take]
			f, err := t.pool.NewPage(t.file)
			if err != nil {
				return err
			}
			initInternal(f.Page)
			setInnerChild0(f.Page, group[0].page)
			for j := 1; j < len(group); j++ {
				setInnerEntry(f.Page, j-1, group[j].ek, group[j].v, group[j].page)
			}
			setNodeCount(f.Page, len(group)-1)
			pn := f.ID().PageNo
			f.Unpin(true)
			next = append(next, ref{group[0].ek, group[0].v, pn})
			i += take
		}
		level = next
	}
	t.root = PageID{File: t.file, PageNo: level[0].page}
	return nil
}
