package rubisdb

import (
	"encoding/binary"
	"fmt"
)

// B+tree index over (int64 key, uint64 value) pairs, stored in buffer
// pool pages. Duplicate keys are supported by ordering entries on the
// composite (key, value); secondary indexes rely on this.
//
// Node page layout (fixed-format, not slotted):
//
//	byte 0      node type: 0 leaf, 1 internal
//	bytes 1..2  entry count (u16)
//	bytes 3..6  leaf only: next-leaf page number (u32), ^0 for none
//	byte 7      reserved
//	byte 8...   entries
//
// Leaf entry: key i64 | value u64 (16 bytes). Internal layout: child0 u32
// followed by (key i64 | child u32) repeated (12 bytes each); keys[i] is
// the smallest composite key in child i+1's subtree.
const (
	nodeLeaf     = 0
	nodeInternal = 1

	btHeader   = 8
	leafEntry  = 16
	leafMax    = (PageSize - btHeader) / leafEntry
	innerEntry = 12
	innerMax   = (PageSize - btHeader - 4) / innerEntry
	noNext     = ^uint32(0)
)

// BTree is a B+tree index backed by a buffer pool file.
type BTree struct {
	pool *BufferPool
	file uint32
	root PageID
	size int
}

// NewBTree creates an empty tree in file.
func NewBTree(pool *BufferPool, file uint32) (*BTree, error) {
	id, page, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	initLeaf(page)
	pool.Unpin(id, true)
	return &BTree{pool: pool, file: file, root: id}, nil
}

// Len reports the number of stored entries.
func (t *BTree) Len() int { return t.size }

func initLeaf(p Page) {
	for i := range p {
		p[i] = 0
	}
	p[0] = nodeLeaf
	binary.BigEndian.PutUint32(p[3:7], noNext)
}

func initInternal(p Page) {
	for i := range p {
		p[i] = 0
	}
	p[0] = nodeInternal
}

func nodeCount(p Page) int         { return int(binary.BigEndian.Uint16(p[1:3])) }
func setNodeCount(p Page, n int)   { binary.BigEndian.PutUint16(p[1:3], uint16(n)) }
func leafNext(p Page) uint32       { return binary.BigEndian.Uint32(p[3:7]) }
func setLeafNext(p Page, v uint32) { binary.BigEndian.PutUint32(p[3:7], v) }

func leafKey(p Page, i int) int64 {
	return int64(binary.BigEndian.Uint64(p[btHeader+i*leafEntry:]))
}
func leafVal(p Page, i int) uint64 {
	return binary.BigEndian.Uint64(p[btHeader+i*leafEntry+8:])
}
func setLeafEntry(p Page, i int, k int64, v uint64) {
	binary.BigEndian.PutUint64(p[btHeader+i*leafEntry:], uint64(k))
	binary.BigEndian.PutUint64(p[btHeader+i*leafEntry+8:], v)
}

func innerChild(p Page, i int) uint32 {
	if i == 0 {
		return binary.BigEndian.Uint32(p[btHeader:])
	}
	return binary.BigEndian.Uint32(p[btHeader+4+(i-1)*innerEntry+8:])
}
func setInnerChild0(p Page, c uint32) { binary.BigEndian.PutUint32(p[btHeader:], c) }
func innerRawKey(p Page, i int) int64 {
	return int64(binary.BigEndian.Uint64(p[btHeader+4+i*innerEntry:]))
}
func setInnerEntry(p Page, i int, k int64, child uint32) {
	off := btHeader + 4 + i*innerEntry
	binary.BigEndian.PutUint64(p[off:], uint64(k))
	binary.BigEndian.PutUint32(p[off+8:], child)
}

// compositeLess orders (key, value) pairs.
func compositeLess(k1 int64, v1 uint64, k2 int64, v2 uint64) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return v1 < v2
}

// Insert adds the (key, value) pair. Inserting an exact duplicate
// (key AND value) is rejected: it always indicates a primary-key or
// row-id collision upstream.
func (t *BTree) Insert(key int64, value uint64) error {
	promoted, newChild, err := t.insertInto(t.root, key, value)
	if err != nil {
		return err
	}
	if newChild != noNext {
		// Root split: build a new internal root.
		id, page, err := t.pool.NewPage(t.file)
		if err != nil {
			return err
		}
		initInternal(page)
		setInnerChild0(page, t.root.PageNo)
		setInnerEntry(page, 0, promoted, newChild)
		setNodeCount(page, 1)
		t.pool.Unpin(id, true)
		t.root = id
	}
	t.size++
	return nil
}

// insertInto descends into page pn; on child split it returns the
// promoted separator key and new right-sibling page number (noNext when
// no split happened).
func (t *BTree) insertInto(id PageID, key int64, value uint64) (int64, uint32, error) {
	page, err := t.pool.Get(id)
	if err != nil {
		return 0, noNext, err
	}
	if page[0] == nodeLeaf {
		sep, right, err := t.insertLeaf(id, page, key, value)
		return sep, right, err
	}
	n := nodeCount(page)
	// Find child: last entry whose key <= search key.
	childIdx := 0
	for i := 0; i < n; i++ {
		if innerRawKey(page, i) <= key {
			childIdx = i + 1
		} else {
			break
		}
	}
	childPage := innerChild(page, childIdx)
	t.pool.Unpin(id, false)
	promoted, newChild, err := t.insertInto(PageID{File: t.file, PageNo: childPage}, key, value)
	if err != nil || newChild == noNext {
		return 0, noNext, err
	}
	// Re-pin to add the separator.
	page, err = t.pool.Get(id)
	if err != nil {
		return 0, noNext, err
	}
	n = nodeCount(page)
	if n < innerMax {
		// Shift entries right of childIdx.
		for i := n; i > childIdx; i-- {
			k := innerRawKey(page, i-1)
			c := innerChild(page, i)
			setInnerEntry(page, i, k, c)
		}
		setInnerEntry(page, childIdx, promoted, newChild)
		setNodeCount(page, n+1)
		t.pool.Unpin(id, true)
		return 0, noNext, nil
	}
	// Internal split: gather entries, insert, split in half.
	keys := make([]int64, 0, n+1)
	children := make([]uint32, 0, n+2)
	children = append(children, innerChild(page, 0))
	for i := 0; i < n; i++ {
		keys = append(keys, innerRawKey(page, i))
		children = append(children, innerChild(page, i+1))
	}
	keys = append(keys[:childIdx], append([]int64{promoted}, keys[childIdx:]...)...)
	children = append(children[:childIdx+1], append([]uint32{newChild}, children[childIdx+1:]...)...)

	mid := len(keys) / 2
	sep := keys[mid]
	rid, rpage, err := t.pool.NewPage(t.file)
	if err != nil {
		t.pool.Unpin(id, false)
		return 0, noNext, err
	}
	initInternal(rpage)
	setInnerChild0(rpage, children[mid+1])
	for i := mid + 1; i < len(keys); i++ {
		setInnerEntry(rpage, i-mid-1, keys[i], children[i+1])
	}
	setNodeCount(rpage, len(keys)-mid-1)
	t.pool.Unpin(rid, true)

	initInternal(page)
	setInnerChild0(page, children[0])
	for i := 0; i < mid; i++ {
		setInnerEntry(page, i, keys[i], children[i+1])
	}
	setNodeCount(page, mid)
	t.pool.Unpin(id, true)
	return sep, rid.PageNo, nil
}

func (t *BTree) insertLeaf(id PageID, page Page, key int64, value uint64) (int64, uint32, error) {
	n := nodeCount(page)
	// Binary search for insertion point on composite order.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if compositeLess(leafKey(page, mid), leafVal(page, mid), key, value) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && leafKey(page, lo) == key && leafVal(page, lo) == value {
		t.pool.Unpin(id, false)
		return 0, noNext, fmt.Errorf("rubisdb: duplicate index entry (%d,%d)", key, value)
	}
	if n < leafMax {
		for i := n; i > lo; i-- {
			setLeafEntry(page, i, leafKey(page, i-1), leafVal(page, i-1))
		}
		setLeafEntry(page, lo, key, value)
		setNodeCount(page, n+1)
		t.pool.Unpin(id, true)
		return 0, noNext, nil
	}
	// Leaf split.
	keys := make([]int64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	for i := 0; i < n; i++ {
		keys = append(keys, leafKey(page, i))
		vals = append(vals, leafVal(page, i))
	}
	keys = append(keys[:lo], append([]int64{key}, keys[lo:]...)...)
	vals = append(vals[:lo], append([]uint64{value}, vals[lo:]...)...)

	mid := len(keys) / 2
	rid, rpage, err := t.pool.NewPage(t.file)
	if err != nil {
		t.pool.Unpin(id, false)
		return 0, noNext, err
	}
	initLeaf(rpage)
	for i := mid; i < len(keys); i++ {
		setLeafEntry(rpage, i-mid, keys[i], vals[i])
	}
	setNodeCount(rpage, len(keys)-mid)
	setLeafNext(rpage, leafNext(page))
	t.pool.Unpin(rid, true)

	initLeaf(page)
	for i := 0; i < mid; i++ {
		setLeafEntry(page, i, keys[i], vals[i])
	}
	setNodeCount(page, mid)
	setLeafNext(page, rid.PageNo)
	t.pool.Unpin(id, true)
	return keys[mid], rid.PageNo, nil
}

// findLeaf descends to the leaf that may contain key, returning its id.
func (t *BTree) findLeaf(key int64) (PageID, error) {
	id := t.root
	for {
		page, err := t.pool.Get(id)
		if err != nil {
			return PageID{}, err
		}
		if page[0] == nodeLeaf {
			t.pool.Unpin(id, false)
			return id, nil
		}
		n := nodeCount(page)
		childIdx := 0
		for i := 0; i < n; i++ {
			if innerRawKey(page, i) <= key {
				childIdx = i + 1
			} else {
				break
			}
		}
		next := PageID{File: t.file, PageNo: innerChild(page, childIdx)}
		t.pool.Unpin(id, false)
		id = next
	}
}

// Search returns all values stored under key, in value order.
func (t *BTree) Search(key int64) ([]uint64, error) {
	var out []uint64
	err := t.ScanRange(key, key, func(k int64, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// ScanRange visits entries with lo <= key <= hi in order, calling fn for
// each; fn returning false stops the scan early.
func (t *BTree) ScanRange(lo, hi int64, fn func(key int64, value uint64) bool) error {
	if lo > hi {
		return nil
	}
	id, err := t.findLeaf(lo)
	if err != nil {
		return err
	}
	for {
		page, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		n := nodeCount(page)
		for i := 0; i < n; i++ {
			k := leafKey(page, i)
			if k < lo {
				continue
			}
			if k > hi {
				t.pool.Unpin(id, false)
				return nil
			}
			if !fn(k, leafVal(page, i)) {
				t.pool.Unpin(id, false)
				return nil
			}
		}
		next := leafNext(page)
		t.pool.Unpin(id, false)
		if next == noNext {
			return nil
		}
		id = PageID{File: t.file, PageNo: next}
	}
}

// Height reports the tree depth (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		page, err := t.pool.Get(id)
		if err != nil {
			return 0, err
		}
		if page[0] == nodeLeaf {
			t.pool.Unpin(id, false)
			return h, nil
		}
		next := PageID{File: t.file, PageNo: innerChild(page, 0)}
		t.pool.Unpin(id, false)
		id = next
		h++
	}
}
