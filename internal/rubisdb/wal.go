package rubisdb

// WAL is the engine's write-ahead log. Records are framed and appended;
// the meter tracks bytes so the tier model can charge journaled write
// traffic to the simulated disk (the reason bid-heavy workloads show more
// physical disk demand than browse-heavy ones).
type WAL struct {
	meter *Meter
	// lsn is the next log sequence number.
	lsn uint64
	// buffered bytes awaiting a group-commit flush.
	buffered float64
	// FlushThreshold triggers a flush when buffered bytes exceed it.
	FlushThreshold float64
	// Flushes counts group commits.
	Flushes uint64
	// TotalBytes counts all framed bytes ever appended.
	TotalBytes float64
}

// walFrameOverhead is the per-record framing: lsn + length + checksum.
const walFrameOverhead = 8 + 4 + 4

// walRecordHeader is the typed-record header: table id + op code.
const walRecordHeader = 4 + 1

// Batched records extend the header with a row count, and every row
// image inside the batch carries a u16 length prefix so recovery can
// split the payload back into the exact per-row images a row-at-a-time
// log would have carried.
const (
	walBatchHeader    = walRecordHeader + 4
	walBatchRowPrefix = 2
)

// NewWAL builds a log metering into meter with a 32 KB group-commit
// threshold.
func NewWAL(meter *Meter) *WAL {
	return &WAL{meter: meter, FlushThreshold: 32 << 10}
}

// Append frames and buffers a record, returning its LSN. The record
// contents are accounted, not retained: recovery is out of scope for the
// workload study, and the byte stream is what the figures need.
func (w *WAL) Append(payload []byte) uint64 {
	return w.appendSized(len(payload))
}

// AppendRecord frames a typed record (table id + op code + image).
// Append accounts by length only — the in-memory log never rereads the
// payload — so framing is pure size arithmetic and the image is not
// copied.
func (w *WAL) AppendRecord(table uint32, op byte, image []byte) uint64 {
	return w.appendSized(walRecordHeader + len(image))
}

// AppendBatchRecord frames one record covering rows row images that
// total imageBytes: header, row count, then each image with its length
// prefix. Bulk loads log one batch per heap page instead of one record
// per row (the LOAD DATA shape), which drops the per-row frame+header
// overhead while the logged images stay byte-equivalent to per-row
// framing — the recovery-equivalence property the tests pin.
func (w *WAL) AppendBatchRecord(table uint32, op byte, rows, imageBytes int) uint64 {
	return w.appendSized(walBatchHeader + rows*walBatchRowPrefix + imageBytes)
}

// appendSized appends a record of the given framed length.
func (w *WAL) appendSized(payloadLen int) uint64 {
	lsn := w.lsn
	w.lsn++
	n := float64(payloadLen + walFrameOverhead)
	w.buffered += n
	w.TotalBytes += n
	w.meter.WALBytes += n
	if w.buffered >= w.FlushThreshold {
		w.Flush()
	}
	return lsn
}

// Flush commits buffered bytes.
func (w *WAL) Flush() {
	if w.buffered == 0 {
		return
	}
	w.buffered = 0
	w.Flushes++
}

// NextLSN reports the next sequence number to be assigned.
func (w *WAL) NextLSN() uint64 { return w.lsn }
