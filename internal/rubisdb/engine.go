package rubisdb

import "fmt"

// CostModel converts metered engine work into CPU cycles (in the
// guest-visible cycle scale used throughout the simulation).
type CostModel struct {
	CyclesPerPageHit  float64
	CyclesPerPageMiss float64
	CyclesPerRowRead  float64
	CyclesPerRowWrite float64
	CyclesPerByteOut  float64
	CyclesPerWALByte  float64
	// BaseCyclesPerQuery covers parse/plan/protocol per operation.
	BaseCyclesPerQuery float64
}

// DefaultCostModel returns the calibrated MySQL-tier cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		CyclesPerPageHit:   7200,
		CyclesPerPageMiss:  59000,
		CyclesPerRowRead:   11800,
		CyclesPerRowWrite:  25000,
		CyclesPerByteOut:   13.6,
		CyclesPerWALByte:   5.0,
		BaseCyclesPerQuery: 204000,
	}
}

// Receipt reports the physical work of one operation window.
type Receipt struct {
	Work Meter
	// CPUCycles is the estimated compute in guest-visible cycles.
	CPUCycles float64
	// DiskReadBytes and DiskWriteBytes are the storage traffic implied
	// by buffer misses, write-backs, and WAL appends.
	DiskReadBytes  float64
	DiskWriteBytes float64
	// ResultBytes is the payload handed back to the application tier.
	ResultBytes float64
}

// Engine is the storage engine instance standing in for MySQL. The
// store is a MemStore for a directly built engine and a cowStore for a
// view attached to a Golden snapshot (see snapshot.go).
type Engine struct {
	store Store
	pool  *BufferPool
	wal   *WAL
	meter *Meter
	cost  CostModel

	tables map[string]*Table
	// tableOrder keeps registration order so Seal/Rearm pair table state
	// deterministically (the tables map iterates in random order).
	tableOrder []*Table
	nextID     uint32
	queryOps   uint64
}

// NewEngine builds an engine with a buffer pool of bufferPages pages.
func NewEngine(bufferPages int, cost CostModel) *Engine {
	meter := &Meter{}
	store := NewMemStore()
	return &Engine{
		store:  store,
		pool:   NewBufferPool(store, bufferPages, meter),
		wal:    NewWAL(meter),
		meter:  meter,
		cost:   cost,
		tables: make(map[string]*Table),
		nextID: 1,
	}
}

// filesPerTable spaces out the file-id range of each table: heap, pk
// index, then secondary indexes.
const filesPerTable = 16

// CreateTable registers a table with the given primary key column
// (int64) and secondary index columns (int64).
func (e *Engine) CreateTable(name string, schema Schema, pkCol string, secondaryCols ...string) (*Table, error) {
	if _, exists := e.tables[name]; exists {
		return nil, fmt.Errorf("rubisdb: table %q already exists", name)
	}
	pki, err := schema.ColIndex(pkCol)
	if err != nil {
		return nil, err
	}
	if schema[pki].Type != TInt64 {
		return nil, fmt.Errorf("rubisdb: primary key %q must be int64", pkCol)
	}
	base := e.nextID * filesPerTable
	e.nextID++
	pk, err := NewBTree(e.pool, base+1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   name,
		Schema: schema,
		id:     base,
		heap:   NewHeap(e.pool, base),
		pkCol:  pki,
		pk:     pk,
		engine: e,
	}
	for i, col := range secondaryCols {
		ci, err := schema.ColIndex(col)
		if err != nil {
			return nil, err
		}
		if schema[ci].Type != TInt64 {
			return nil, fmt.Errorf("rubisdb: secondary index column %q must be int64", col)
		}
		sec, err := NewBTree(e.pool, base+2+uint32(i))
		if err != nil {
			return nil, err
		}
		t.secCols = append(t.secCols, ci)
		t.secs = append(t.secs, sec)
	}
	e.tables[name] = t
	e.tableOrder = append(e.tableOrder, t)
	return t, nil
}

// Table returns a registered table or an error.
func (e *Engine) Table(name string) (*Table, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("rubisdb: no table %q", name)
	}
	return t, nil
}

// MustTable returns a registered table, panicking when absent; intended
// for application setup paths where the schema is static.
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Meter exposes the cumulative engine meter.
func (e *Engine) Meter() Meter { return *e.meter }

// BufferHitRatio reports the buffer pool hit ratio so far.
func (e *Engine) BufferHitRatio() float64 { return e.pool.HitRatio() }

// Checkpoint flushes all dirty pages (background writer behaviour).
func (e *Engine) Checkpoint() error { return e.pool.FlushAll() }

// FuzzyCheckpoint flushes at most limit dirty pages.
func (e *Engine) FuzzyCheckpoint(limit int) (int, error) { return e.pool.FlushLimit(limit) }

// Snapshot captures the meter for later differencing.
func (e *Engine) Snapshot() Meter { return *e.meter }

// ReceiptSince converts the work done since snapshot into a Receipt.
func (e *Engine) ReceiptSince(snapshot Meter) Receipt {
	d := e.meter.Sub(snapshot)
	e.queryOps++
	c := e.cost
	cycles := c.BaseCyclesPerQuery +
		float64(d.PageHits)*c.CyclesPerPageHit +
		float64(d.PageMisses)*c.CyclesPerPageMiss +
		float64(d.RowsRead)*c.CyclesPerRowRead +
		float64(d.RowsWritten)*c.CyclesPerRowWrite +
		d.BytesOut*c.CyclesPerByteOut +
		d.WALBytes*c.CyclesPerWALByte
	return Receipt{
		Work:           d,
		CPUCycles:      cycles,
		DiskReadBytes:  float64(d.PageMisses) * PageSize,
		DiskWriteBytes: float64(d.PagesWritten)*PageSize + d.WALBytes,
		ResultBytes:    d.BytesOut,
	}
}

// Queries reports the number of receipts issued.
func (e *Engine) Queries() uint64 { return e.queryOps }
