// Package rubisdb implements the storage engine that stands in for the
// paper's MySQL back end: 8 KB slotted pages, an LRU buffer pool, B+tree
// indexes, a write-ahead log, and a table layer with typed tuples.
//
// Every query the RUBiS application model issues actually executes here.
// The engine meters its own work (pages touched, buffer misses, WAL
// bytes, rows and bytes produced) and the tier model converts those
// receipts into simulated CPU, disk, and network demand — so the DB
// tier's demand shape in the reproduced figures emerges from real engine
// mechanics (buffer-pool warmup, journaled writes) rather than from a
// hand-drawn curve.
package rubisdb

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the on-disk page size in bytes (InnoDB-like 8 KB here).
const PageSize = 8192

// pageHeaderSize reserves bytes for slot count and free-space pointers.
const pageHeaderSize = 6

// Page is a slotted page: a 2-byte slot directory grows from the front,
// cell payloads grow from the back.
//
// Layout: [nSlots u16][freeStart u16][freeEnd u16][slot offsets u16...]
// ... free space ... [cells].
type Page []byte

// NewPage returns an initialized empty page.
func NewPage() Page {
	p := make(Page, PageSize)
	p.initHeader()
	return p
}

// initHeader resets the slot header of a zeroed page: no slots, all
// space between the header and the page end free. The buffer pool uses
// it when recycling page buffers so the layout lives only here.
func (p Page) initHeader() {
	p.setNSlots(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
}

func (p Page) nSlots() int        { return int(binary.BigEndian.Uint16(p[0:2])) }
func (p Page) setNSlots(n int)    { binary.BigEndian.PutUint16(p[0:2], uint16(n)) }
func (p Page) freeStart() int     { return int(binary.BigEndian.Uint16(p[2:4])) }
func (p Page) setFreeStart(v int) { binary.BigEndian.PutUint16(p[2:4], uint16(v)) }
func (p Page) freeEnd() int       { return int(binary.BigEndian.Uint16(p[4:6])) }
func (p Page) setFreeEnd(v int)   { binary.BigEndian.PutUint16(p[4:6], uint16(v)) }
func (p Page) slotOffset(i int) int {
	return int(binary.BigEndian.Uint16(p[pageHeaderSize+2*i:]))
}
func (p Page) setSlotOffset(i, off int) {
	binary.BigEndian.PutUint16(p[pageHeaderSize+2*i:], uint16(off))
}

// NumCells reports the number of cells stored in the page.
func (p Page) NumCells() int { return p.nSlots() }

// FreeSpace reports the bytes available for one more cell (including its
// slot entry).
func (p Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - 2
	if free < 0 {
		return 0
	}
	return free
}

// InsertCell appends a cell and returns its slot index. It returns an
// error when the cell does not fit; callers allocate a fresh page then.
func (p Page) InsertCell(data []byte) (int, error) {
	need := len(data) + 4 // 2 slot bytes + 2 length bytes
	if p.FreeSpace() < need-2 {
		return 0, fmt.Errorf("rubisdb: page full (%d free, %d needed)", p.FreeSpace(), need)
	}
	end := p.freeEnd()
	start := end - len(data) - 2
	binary.BigEndian.PutUint16(p[start:], uint16(len(data)))
	copy(p[start+2:], data)
	slot := p.nSlots()
	p.setSlotOffset(slot, start)
	p.setNSlots(slot + 1)
	p.setFreeStart(pageHeaderSize + 2*(slot+1))
	p.setFreeEnd(start)
	return slot, nil
}

// Cell returns the payload of slot i. The returned slice aliases the
// page; callers must copy before mutating.
func (p Page) Cell(i int) ([]byte, error) {
	if i < 0 || i >= p.nSlots() {
		return nil, fmt.Errorf("rubisdb: slot %d out of range (page has %d)", i, p.nSlots())
	}
	off := p.slotOffset(i)
	n := int(binary.BigEndian.Uint16(p[off:]))
	return p[off+2 : off+2+n], nil
}

// UpdateCellInPlace overwrites slot i with data of the same length.
// Variable-length updates are not needed by the RUBiS schema (updates
// touch fixed-width numeric columns only).
func (p Page) UpdateCellInPlace(i int, data []byte) error {
	old, err := p.Cell(i)
	if err != nil {
		return err
	}
	if len(old) != len(data) {
		return fmt.Errorf("rubisdb: in-place update size mismatch (%d != %d)", len(old), len(data))
	}
	copy(old, data)
	return nil
}
