package rubisdb

import (
	"math/rand"
	"testing"
)

func BenchmarkBTreeInsertSequential(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsertRandom(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(r.Int63(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearchWarm(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(int64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearchColdPool(b *testing.B) {
	// A pool far below the index size: every search pays eviction traffic.
	pool := NewBufferPool(NewMemStore(), 16, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(int64(r.Intn(n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 1024, &Meter{})
	h := NewHeap(pool, 1)
	payload := make([]byte, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineQueryMix(b *testing.B) {
	e := NewEngine(1024, DefaultCostModel())
	users, err := e.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 20000; i++ {
		if _, err := users.Insert(Row{i, "user", i % 50, int64(0)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := e.Snapshot()
		if _, err := users.GetByPK(int64(i % 20000)); err != nil {
			b.Fatal(err)
		}
		if _, err := users.LookupBy("region", int64(i%50), 10); err != nil {
			b.Fatal(err)
		}
		_ = e.ReceiptSince(snap)
	}
}
