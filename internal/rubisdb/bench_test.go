package rubisdb

import (
	"math/rand"
	"testing"
)

func BenchmarkBTreeInsertSequential(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsertRandom(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(r.Int63(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearchWarm(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(int64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearchColdPool(b *testing.B) {
	// A pool far below the index size: every search pays eviction traffic.
	pool := NewBufferPool(NewMemStore(), 16, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(int64(r.Intn(n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreeInsert is the duplicate-heavy pattern secondary indexes
// see at runtime: a bounded key space with a unique value per entry.
func BenchmarkBTreeInsert(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(int64(r.Intn(5000)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeScanRange(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(int64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64((i * 997) % (n - 100))
		count := 0
		err := tree.ScanRange(lo, lo+99, func(int64, uint64) bool {
			count++
			return true
		})
		if err != nil || count != 100 {
			b.Fatalf("scan = %d, %v", count, err)
		}
	}
}

// BenchmarkBufferPoolGet times the resident hit path: one map lookup,
// a pin, and an intrusive LRU move — no allocation.
func BenchmarkBufferPoolGet(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 128, &Meter{})
	ids := make([]PageID, 64)
	for i := range ids {
		f, err := pool.NewPage(1)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = f.ID()
		f.Unpin(false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pool.Get(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		f.Unpin(false)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	const n = 100000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Value: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := NewBufferPool(NewMemStore(), 4096, &Meter{})
		tree, err := NewBTree(pool, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
		if tree.Len() != n {
			b.Fatal("short load")
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 1024, &Meter{})
	h := NewHeap(pool, 1)
	payload := make([]byte, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOWFirstWrite measures privatizing a shared golden page: the
// one-time per-page cost a view pays on its first write intent (an 8 KB
// copy into a pooled buffer). Each pass touches every resident golden
// page once, then rearms the view so the next pass privatizes again.
func BenchmarkCOWFirstWrite(b *testing.B) {
	eng, _ := buildPopulated(b, 5000, 256)
	g, err := eng.Seal()
	if err != nil {
		b.Fatal(err)
	}
	v := g.NewView()
	ids := make([]PageID, len(g.residents))
	copy(ids, g.residents)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(ids) == 0 && i > 0 {
			b.StopTimer()
			g.Rearm(v)
			b.StartTimer()
		}
		f, err := v.pool.GetMut(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		f.Unpin(true)
	}
}

func BenchmarkEngineQueryMix(b *testing.B) {
	e := NewEngine(1024, DefaultCostModel())
	users, err := e.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 20000; i++ {
		if _, err := users.Insert(Row{i, "user", i % 50, int64(0)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := e.Snapshot()
		if _, err := users.GetByPK(int64(i % 20000)); err != nil {
			b.Fatal(err)
		}
		if _, err := users.LookupBy("region", int64(i%50), 10); err != nil {
			b.Fatal(err)
		}
		_ = e.ReceiptSince(snap)
	}
}
