package rubisdb

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPageInsertAndReadBack(t *testing.T) {
	p := NewPage()
	a, err := p.InsertCell([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.InsertCell([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != 2 {
		t.Fatalf("NumCells = %d", p.NumCells())
	}
	ca, _ := p.Cell(a)
	cb, _ := p.Cell(b)
	if string(ca) != "hello" || string(cb) != "world!" {
		t.Fatalf("cells: %q %q", ca, cb)
	}
	if _, err := p.Cell(5); err == nil {
		t.Fatal("out-of-range cell should error")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := NewPage()
	payload := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.InsertCell(payload); err != nil {
			break
		}
		n++
		if n > 20 {
			t.Fatal("page never filled")
		}
	}
	if n != 8 { // 8*(1000+4) = 8032 < 8186 usable, 9th doesn't fit
		t.Fatalf("fit %d 1000-byte cells", n)
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := NewPage()
	i, _ := p.InsertCell([]byte("aaaa"))
	if err := p.UpdateCellInPlace(i, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Cell(i)
	if string(c) != "bbbb" {
		t.Fatalf("cell = %q", c)
	}
	if err := p.UpdateCellInPlace(i, []byte("toolong")); err == nil {
		t.Fatal("size-changing update should error")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	meter := &Meter{}
	store := NewMemStore()
	pool := NewBufferPool(store, 2, meter)
	f1, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	id1 := f1.ID()
	f1.Page[100] = 42
	f1.Unpin(true)
	f2, _ := pool.NewPage(1)
	f2.Unpin(true)
	f3, _ := pool.NewPage(1) // evicts id1 (LRU), which is dirty
	f3.Unpin(true)
	if pool.Len() != 2 {
		t.Fatalf("pool len = %d", pool.Len())
	}
	if meter.PagesWritten == 0 {
		t.Fatal("dirty eviction should write back")
	}
	// Re-reading id1 is a miss but must see the dirty byte.
	f, err := pool.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Page[100] != 42 {
		t.Fatal("dirty data lost on eviction")
	}
	f.Unpin(false)
	if meter.PageMisses == 0 || meter.PageHits != 0 {
		t.Fatalf("meter: %+v", meter)
	}
	f, _ = pool.Get(id1) // now a hit
	f.Unpin(false)
	if meter.PageHits != 1 {
		t.Fatalf("hits = %d", meter.PageHits)
	}
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 1, &Meter{})
	f, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.NewPage(1); err == nil {
		t.Fatal("exhausted pool should error")
	}
	f.Unpin(false)
	f2, err := pool.NewPage(1)
	if err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	f2.Unpin(false)
}

func TestBufferPoolGetAllPinnedFails(t *testing.T) {
	// Exhaustion through the Get path: the only frame is pinned, so a
	// miss that needs to evict must fail rather than steal it.
	pool := NewBufferPool(NewMemStore(), 1, &Meter{})
	f1, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	id1 := f1.ID()
	f1.Unpin(true)
	f2, err := pool.NewPage(1) // evicts and writes back page 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(id1); err == nil {
		t.Fatal("Get with all frames pinned should error")
	}
	f2.Unpin(false)
	f, err := pool.Get(id1)
	if err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	f.Unpin(false)
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 2, &Meter{})
	f, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin(false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin should panic")
		}
	}()
	f.Unpin(false)
}

// orderStore records the order of page write-backs.
type orderStore struct {
	*MemStore
	writes []PageID
}

func (o *orderStore) Write(id PageID, p Page) error {
	o.writes = append(o.writes, id)
	return o.MemStore.Write(id, p)
}

func TestFlushLimitWritesInLRUOrder(t *testing.T) {
	store := &orderStore{MemStore: NewMemStore()}
	pool := NewBufferPool(store, 4, &Meter{})
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := pool.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		f.Unpin(true)
	}
	// Touch page 0 so page 1 becomes the eviction candidate; recency is
	// now 1 (oldest), 2, 0 (newest).
	f, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin(false)
	n, err := pool.FlushLimit(1)
	if err != nil || n != 1 {
		t.Fatalf("FlushLimit = %d, %v", n, err)
	}
	if len(store.writes) != 1 || store.writes[0] != ids[1] {
		t.Fatalf("first flush should hit the LRU dirty page %v, wrote %v", ids[1], store.writes)
	}
	// The rest follow in LRU order, skipping the already-clean page.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	want := []PageID{ids[1], ids[2], ids[0]}
	if len(store.writes) != 3 {
		t.Fatalf("writes = %v", store.writes)
	}
	for i, id := range want {
		if store.writes[i] != id {
			t.Fatalf("flush order = %v, want %v", store.writes, want)
		}
	}
}

func TestHeapInsertFetchAcrossPages(t *testing.T) {
	meter := &Meter{}
	store := NewMemStore()
	pool := NewBufferPool(store, 16, meter)
	h := NewHeap(pool, 3)
	payload := strings.Repeat("x", 3000)
	var rids []RID
	for i := 0; i < 10; i++ { // 2 per page -> 5 pages
		rid, err := h.Insert([]byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if store.PageCount(3) < 4 {
		t.Fatalf("expected multiple pages, got %d", store.PageCount(3))
	}
	for _, rid := range rids {
		got, err := h.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatal("fetch mismatch")
		}
	}
	if h.Rows != 10 {
		t.Fatalf("Rows = %d", h.Rows)
	}
}

func TestHeapRejectsGiantTuple(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 4, &Meter{})
	h := NewHeap(pool, 1)
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("giant tuple should error")
	}
}

func TestRIDEncodeDecode(t *testing.T) {
	r := RID{PageNo: 123456, Slot: 789}
	if DecodeRID(r.Encode()) != r {
		t.Fatalf("round trip failed: %+v", DecodeRID(r.Encode()))
	}
}

func TestWALFraming(t *testing.T) {
	meter := &Meter{}
	w := NewWAL(meter)
	lsn0 := w.Append([]byte("abc"))
	lsn1 := w.AppendRecord(7, walInsert, []byte("payload"))
	if lsn0 != 0 || lsn1 != 1 {
		t.Fatalf("lsns: %d %d", lsn0, lsn1)
	}
	wantBytes := float64(3+walFrameOverhead) + float64(5+7+walFrameOverhead)
	if w.TotalBytes != wantBytes || meter.WALBytes != wantBytes {
		t.Fatalf("bytes: wal=%v meter=%v want %v", w.TotalBytes, meter.WALBytes, wantBytes)
	}
	if w.NextLSN() != 2 {
		t.Fatalf("NextLSN = %d", w.NextLSN())
	}
}

func TestWALGroupCommit(t *testing.T) {
	w := NewWAL(&Meter{})
	w.FlushThreshold = 100
	w.Append(make([]byte, 50))
	if w.Flushes != 0 {
		t.Fatal("premature flush")
	}
	w.Append(make([]byte, 50))
	if w.Flushes != 1 {
		t.Fatalf("Flushes = %d", w.Flushes)
	}
	w.Flush() // empty flush is a no-op
	if w.Flushes != 1 {
		t.Fatal("empty flush should not count")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "id", Type: TInt64},
		{Name: "price", Type: TFloat64},
		{Name: "name", Type: TString},
	}
	row := Row{int64(-7), 3.25, "widget"}
	data, err := EncodeRow(schema, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != int64(-7) || got[1] != 3.25 || got[2] != "widget" {
		t.Fatalf("round trip: %v", got)
	}
}

func TestRowCodecErrors(t *testing.T) {
	schema := Schema{{Name: "id", Type: TInt64}}
	if _, err := EncodeRow(schema, Row{"nope"}); err == nil {
		t.Fatal("type mismatch should error")
	}
	if _, err := EncodeRow(schema, Row{int64(1), int64(2)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if _, err := DecodeRow(schema, []byte{1, 2}); err == nil {
		t.Fatal("truncated tuple should error")
	}
	if _, err := DecodeRow(schema, append(make([]byte, 8), 0xFF)); err == nil {
		t.Fatal("trailing bytes should error")
	}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(512, DefaultCostModel())
}

func usersSchema() Schema {
	return Schema{
		{Name: "id", Type: TInt64},
		{Name: "nickname", Type: TString},
		{Name: "region", Type: TInt64},
		{Name: "rating", Type: TInt64},
	}
}

func TestEngineCreateInsertQuery(t *testing.T) {
	e := newTestEngine(t)
	users, err := e.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		_, err := users.Insert(Row{i, "user", i % 10, int64(0)})
		if err != nil {
			t.Fatal(err)
		}
	}
	row, err := users.GetByPK(123)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0] != int64(123) {
		t.Fatalf("GetByPK: %v", row)
	}
	if row, _ := users.GetByPK(9999); row != nil {
		t.Fatal("absent pk should return nil row")
	}
	inRegion, err := users.LookupBy("region", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inRegion) != 50 {
		t.Fatalf("region lookup returned %d rows", len(inRegion))
	}
	n, err := users.CountBy("region", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Fatalf("CountBy = %d", n)
	}
	limited, err := users.RangeBy("id", 0, 499, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 25 {
		t.Fatalf("limit ignored: %d", len(limited))
	}
}

func TestEngineConstraints(t *testing.T) {
	e := newTestEngine(t)
	users, err := e.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("users", usersSchema(), "id"); err == nil {
		t.Fatal("duplicate table should error")
	}
	if _, err := e.CreateTable("bad", usersSchema(), "nickname"); err == nil {
		t.Fatal("string pk should error")
	}
	if _, err := e.CreateTable("bad2", usersSchema(), "id", "nickname"); err == nil {
		t.Fatal("string secondary index should error")
	}
	if _, err := users.Insert(Row{int64(1), "a", int64(0), int64(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := users.Insert(Row{int64(1), "b", int64(0), int64(0)}); err == nil {
		t.Fatal("duplicate pk should error")
	}
	if _, err := e.Table("missing"); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestEngineUpdateNumeric(t *testing.T) {
	e := newTestEngine(t)
	items, err := e.CreateTable("items", Schema{
		{Name: "id", Type: TInt64},
		{Name: "name", Type: TString},
		{Name: "price", Type: TFloat64},
		{Name: "bids", Type: TInt64},
		{Name: "seller", Type: TInt64},
	}, "id", "seller")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := items.Insert(Row{int64(1), "vase", 10.0, int64(0), int64(9)}); err != nil {
		t.Fatal(err)
	}
	if err := items.UpdateNumeric(1, map[string]any{"price": 12.5, "bids": int64(1)}); err != nil {
		t.Fatal(err)
	}
	row, _ := items.GetByPK(1)
	if row[2] != 12.5 || row[3] != int64(1) {
		t.Fatalf("update lost: %v", row)
	}
	if err := items.UpdateNumeric(1, map[string]any{"id": int64(5)}); err == nil {
		t.Fatal("pk update should error")
	}
	if err := items.UpdateNumeric(1, map[string]any{"seller": int64(5)}); err == nil {
		t.Fatal("indexed column update should error")
	}
	if err := items.UpdateNumeric(1, map[string]any{"name": "x"}); err == nil {
		t.Fatal("string update should error")
	}
	if err := items.UpdateNumeric(99, map[string]any{"price": 1.0}); err == nil {
		t.Fatal("absent row update should error")
	}
	if err := items.UpdateNumeric(1, map[string]any{"price": int64(3)}); err == nil {
		t.Fatal("wrong-typed update should error")
	}
}

func TestEngineReceipts(t *testing.T) {
	e := newTestEngine(t)
	users, _ := e.CreateTable("users", usersSchema(), "id", "region")
	for i := int64(0); i < 100; i++ {
		if _, err := users.Insert(Row{i, "u", i % 5, int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	if _, err := users.LookupBy("region", 2, 0); err != nil {
		t.Fatal(err)
	}
	r := e.ReceiptSince(snap)
	if r.Work.RowsRead != 20 {
		t.Fatalf("receipt rows = %d", r.Work.RowsRead)
	}
	if r.CPUCycles <= DefaultCostModel().BaseCyclesPerQuery {
		t.Fatalf("receipt cycles = %v", r.CPUCycles)
	}
	if r.ResultBytes <= 0 {
		t.Fatal("receipt should report result bytes")
	}
	// A write receipt carries WAL traffic.
	snap = e.Snapshot()
	if _, err := users.Insert(Row{int64(1000), "w", int64(0), int64(0)}); err != nil {
		t.Fatal(err)
	}
	r = e.ReceiptSince(snap)
	if r.Work.WALBytes <= 0 || r.DiskWriteBytes <= 0 {
		t.Fatalf("write receipt: %+v", r)
	}
	if e.Queries() != 2 {
		t.Fatalf("Queries = %d", e.Queries())
	}
}

func TestEngineBufferWarmupImprovesHitRatio(t *testing.T) {
	e := NewEngine(4096, DefaultCostModel())
	users, _ := e.CreateTable("users", usersSchema(), "id", "region")
	for i := int64(0); i < 2000; i++ {
		if _, err := users.Insert(Row{i, strings.Repeat("u", 40), i % 50, int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := e.Meter()
	for i := int64(0); i < 2000; i++ {
		if _, err := users.GetByPK(i); err != nil {
			t.Fatal(err)
		}
	}
	mid := e.Meter().Sub(before)
	for i := int64(0); i < 2000; i++ {
		if _, err := users.GetByPK(i); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Meter().Sub(before).Sub(mid)
	if after.PageMisses > mid.PageMisses {
		t.Fatalf("warm pass missed more: %d vs %d", after.PageMisses, mid.PageMisses)
	}
	if e.BufferHitRatio() <= 0.5 {
		t.Fatalf("hit ratio = %v", e.BufferHitRatio())
	}
}

// Property: row codec round-trips arbitrary values.
func TestPropertyRowCodecRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "a", Type: TInt64},
		{Name: "b", Type: TFloat64},
		{Name: "c", Type: TString},
	}
	f := func(a int64, b float64, c string) bool {
		if b != b { // NaN: bit pattern survives but != comparison fails
			return true
		}
		if len(c) > 0xFFFF {
			c = c[:0xFFFF]
		}
		data, err := EncodeRow(schema, Row{a, b, c})
		if err != nil {
			return false
		}
		got, err := DecodeRow(schema, data)
		if err != nil {
			return false
		}
		return got[0] == a && got[1] == b && got[2] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: meter differencing is consistent: (m+d)-m == d.
func TestPropertyMeterSubAdd(t *testing.T) {
	f := func(h1, m1, w1 uint16, wal1 uint32, h2, m2, w2 uint16, wal2 uint32) bool {
		a := Meter{PageHits: uint64(h1), PageMisses: uint64(m1), PagesWritten: uint64(w1), WALBytes: float64(wal1)}
		d := Meter{PageHits: uint64(h2), PageMisses: uint64(m2), PagesWritten: uint64(w2), WALBytes: float64(wal2)}
		sum := a
		sum.Add(d)
		back := sum.Sub(a)
		return back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
