package rubisdb

import (
	"errors"
	"fmt"
	"testing"
)

// faultStore wraps MemStore and fails operations on command, exercising
// the error paths that a real device would hit.
type faultStore struct {
	*MemStore
	failReads  bool
	failWrites bool
	reads      int
	writes     int
}

var errInjected = errors.New("injected I/O failure")

func (f *faultStore) ReadInto(id PageID, dst Page) error {
	f.reads++
	if f.failReads {
		return fmt.Errorf("read %v: %w", id, errInjected)
	}
	return f.MemStore.ReadInto(id, dst)
}

func (f *faultStore) Write(id PageID, p Page) error {
	f.writes++
	if f.failWrites {
		return fmt.Errorf("write %v: %w", id, errInjected)
	}
	return f.MemStore.Write(id, p)
}

func TestBufferPoolSurfacesReadFailures(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore()}
	pool := NewBufferPool(fs, 4, &Meter{})
	f, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Unpin(true)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Evict it by filling the pool, then fail the re-read.
	for i := 0; i < 4; i++ {
		nf, err := pool.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		nf.Unpin(false)
	}
	fs.failReads = true
	if _, err := pool.Get(id); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

func TestBufferPoolSurfacesWriteFailuresOnEviction(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore()}
	pool := NewBufferPool(fs, 1, &Meter{})
	f, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin(true) // dirty
	fs.failWrites = true
	// Allocating a second page forces eviction of the dirty page.
	if _, err := pool.NewPage(1); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

func TestFlushLimitSurfacesWriteFailures(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore()}
	pool := NewBufferPool(fs, 4, &Meter{})
	f, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin(true)
	fs.failWrites = true
	if _, err := pool.FlushLimit(10); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

func TestBTreePropagatesStorageFailures(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore()}
	pool := NewBufferPool(fs, 8, &Meter{})
	tree, err := NewBTree(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill beyond the pool so lookups must re-read evicted pages.
	for i := int64(0); i < 5000; i++ {
		if err := tree.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs.failReads = true
	if _, err := tree.Search(1); !errors.Is(err, errInjected) {
		t.Fatalf("Search should surface storage failure, got %v", err)
	}
	if err := tree.ScanRange(0, 100, func(int64, uint64) bool { return true }); !errors.Is(err, errInjected) {
		t.Fatalf("ScanRange should surface storage failure, got %v", err)
	}
}

func TestHeapPropagatesStorageFailures(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore()}
	pool := NewBufferPool(fs, 2, &Meter{})
	h := NewHeap(pool, 1)
	rid, err := h.Insert([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Evict the heap page.
	for i := 0; i < 2; i++ {
		nf, err := pool.NewPage(2)
		if err != nil {
			t.Fatal(err)
		}
		nf.Unpin(false)
	}
	fs.failReads = true
	if _, err := h.Fetch(rid); !errors.Is(err, errInjected) {
		t.Fatalf("Fetch should surface storage failure, got %v", err)
	}
}

func TestHeapFetchBadSlot(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 4, &Meter{})
	h := NewHeap(pool, 1)
	rid, err := h.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	bad := RID{PageNo: rid.PageNo, Slot: 99}
	if _, err := h.Fetch(bad); err == nil {
		t.Fatal("fetching a bogus slot should error")
	}
}

func TestHeapUpdateFailurePaths(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 4, &Meter{})
	h := NewHeap(pool, 1)
	rid, err := h.Insert([]byte("abcd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UpdateInPlace(rid, []byte("too long")); err == nil {
		t.Fatal("size-changing update should error")
	}
	if err := h.UpdateInPlace(RID{PageNo: 999, Slot: 0}, []byte("abcd")); err == nil {
		t.Fatal("updating a missing page should error")
	}
}
