package rubisdb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// buildPopulated creates an engine with one indexed table, bulk-loads
// rows of it, and checkpoints — the same shape dataset population
// leaves behind. The small pool forces evictions so runtime ops exercise
// the miss/write-back paths over shared pages.
func buildPopulated(t testing.TB, rows, bufferPages int) (*Engine, *Table) {
	t.Helper()
	e := NewEngine(bufferPages, DefaultCostModel())
	tb, err := e.CreateTable("users", usersSchema(), "id", "region")
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Row, 0, rows)
	for i := int64(0); i < int64(rows); i++ {
		batch = append(batch, Row{i, fmt.Sprintf("user%06d", i), i % 50, int64(0)})
	}
	if err := tb.BulkInsert(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return e, tb
}

// goldenHash digests every sealed store page in deterministic order.
func goldenHash(g *Golden) [32]byte {
	ids := make([]PageID, 0, len(g.store.pages))
	for id := range g.store.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].File != ids[j].File {
			return ids[i].File < ids[j].File
		}
		return ids[i].PageNo < ids[j].PageNo
	})
	h := sha256.New()
	var idbuf [8]byte
	for _, id := range ids {
		binary.BigEndian.PutUint32(idbuf[:4], id.File)
		binary.BigEndian.PutUint32(idbuf[4:], id.PageNo)
		h.Write(idbuf[:])
		h.Write(g.store.pages[id])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// writeHeavyMix runs a deterministic insert/update/delete/read mix
// against the view's table, offsetting primary keys by base so two
// views' write sets are disjoint and their cross-visibility can be
// asserted.
func writeHeavyMix(t testing.TB, tb *Table, base int64, ops int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	next := base
	for i := 0; i < ops; i++ {
		switch r.Intn(4) {
		case 0, 1:
			if _, err := tb.Insert(Row{next, "view-user", next % 50, int64(0)}); err != nil {
				t.Fatal(err)
			}
			next++
		case 2:
			if err := tb.UpdateNumeric(int64(r.Intn(1000)), map[string]any{"rating": int64(i)}); err != nil {
				t.Fatal(err)
			}
		case 3:
			if _, err := tb.LookupBy("region", int64(r.Intn(50)), 8); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentViewsDoNotPerturbGoldenOrEachOther is the COW isolation
// property: two views over one golden run write-heavy mixes
// concurrently; the sealed pages stay byte-identical and each view sees
// only its own writes. Run with -race, this also proves golden reads
// are safely shared across goroutines.
func TestConcurrentViewsDoNotPerturbGoldenOrEachOther(t *testing.T) {
	eng, _ := buildPopulated(t, 5000, 64)
	g, err := eng.Seal()
	if err != nil {
		t.Fatal(err)
	}
	before := goldenHash(g)

	views := []*Engine{g.NewView(), g.NewView()}
	bases := []int64{1 << 20, 2 << 20}
	var wg sync.WaitGroup
	for i, v := range views {
		wg.Add(1)
		go func(v *Engine, base int64, seed int64) {
			defer wg.Done()
			writeHeavyMix(t, v.MustTable("users"), base, 4000, seed)
		}(v, bases[i], int64(100+i))
	}
	wg.Wait()

	if goldenHash(g) != before {
		t.Fatal("golden pages changed under concurrent copy-on-write views")
	}
	for i, v := range views {
		tb := v.MustTable("users")
		own, err := tb.GetByPK(bases[i])
		if err != nil || own == nil {
			t.Fatalf("view %d lost its own insert (row=%v err=%v)", i, own, err)
		}
		other, err := tb.GetByPK(bases[1-i])
		if err != nil {
			t.Fatal(err)
		}
		if other != nil {
			t.Fatalf("view %d sees view %d's insert: cross-replication bleed", i, 1-i)
		}
	}
}

// TestViewMatchesFreshEngine is byte-equivalence: the same runtime op
// sequence on a freshly populated engine and on a COW view of an
// identically populated golden must produce identical meters, WAL
// state, and receipts — the property that keeps the sweep's golden
// SHA-256 unchanged with snapshots enabled.
func TestViewMatchesFreshEngine(t *testing.T) {
	fresh, freshTb := buildPopulated(t, 5000, 64)
	sealedSrc, _ := buildPopulated(t, 5000, 64)
	g, err := sealedSrc.Seal()
	if err != nil {
		t.Fatal(err)
	}
	view := g.NewView()
	viewTb := view.MustTable("users")

	if fresh.Meter() != view.Meter() {
		t.Fatalf("meters differ before any runtime op:\nfresh %+v\nview  %+v", fresh.Meter(), view.Meter())
	}
	writeHeavyMix(t, freshTb, 1<<20, 4000, 7)
	writeHeavyMix(t, viewTb, 1<<20, 4000, 7)
	if fresh.Meter() != view.Meter() {
		t.Fatalf("meters diverged:\nfresh %+v\nview  %+v", fresh.Meter(), view.Meter())
	}
	if fresh.wal.lsn != view.wal.lsn || fresh.wal.buffered != view.wal.buffered ||
		fresh.wal.Flushes != view.wal.Flushes || fresh.wal.TotalBytes != view.wal.TotalBytes {
		t.Fatalf("WAL state diverged: fresh %+v view %+v", *fresh.wal, *view.wal)
	}
	fr, err := freshTb.GetByPK(1<<20 + 3)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := viewTb.GetByPK(1<<20 + 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fr) != fmt.Sprint(vr) {
		t.Fatalf("row diverged: fresh %v view %v", fr, vr)
	}
}

// TestRearmRewindsView: after arbitrary writes, Rearm must restore the
// exact sealed state, so a recycled view replays a replication
// identically to a fresh one.
func TestRearmRewindsView(t *testing.T) {
	eng, _ := buildPopulated(t, 5000, 64)
	g, err := eng.Seal()
	if err != nil {
		t.Fatal(err)
	}
	v := g.NewView()
	sealedMeter := v.Meter()

	runOnce := func() Meter {
		writeHeavyMix(t, v.MustTable("users"), 1<<20, 3000, 11)
		return v.Meter()
	}
	first := runOnce()
	g.Rearm(v)
	if v.Meter() != sealedMeter {
		t.Fatalf("Rearm did not restore the sealed meter: %+v vs %+v", v.Meter(), sealedMeter)
	}
	if row, err := v.MustTable("users").GetByPK(1 << 20); err != nil || row != nil {
		t.Fatalf("Rearm leaked a private write (row=%v err=%v)", row, err)
	}
	// The probe above metered a couple of page hits; rearm again so the
	// second run replays from the exact sealed state.
	g.Rearm(v)
	second := runOnce()
	if first != second {
		t.Fatalf("recycled view diverged from its first run:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestSealedStoreRejectsWrites: the golden store must panic rather than
// let a stray write-back corrupt every attached view.
func TestSealedStoreRejectsWrites(t *testing.T) {
	eng, _ := buildPopulated(t, 200, 64)
	g, err := eng.Seal()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Write to sealed store did not panic")
		}
	}()
	_ = g.store.Write(PageID{File: 16, PageNo: 0}, make(Page, PageSize))
}

// TestSealRequiresMemStore: views cannot be re-sealed (their private
// overlay is not a dataset).
func TestSealRequiresMemStore(t *testing.T) {
	eng, _ := buildPopulated(t, 200, 64)
	g, err := eng.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.NewView().Seal(); err == nil {
		t.Fatal("Seal of a COW view should fail")
	}
}
