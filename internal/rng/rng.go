// Package rng provides deterministic, named random substreams and the
// distributions used by the workload models.
//
// Every stochastic component of the simulation draws from its own
// substream, derived from the experiment seed and a stable name. Adding a
// new component therefore never perturbs the draws seen by existing
// components, which keeps calibrated experiments stable as the codebase
// grows.
package rng

import (
	"math"
	"math/rand"
)

// splitmix64 advances the SplitMix64 generator; it is used only to derive
// well-mixed substream seeds from (seed, name) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashName folds a stream name into a 64-bit value (FNV-1a).
func hashName(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// Source derives named substreams from a root seed.
type Source struct {
	seed uint64
}

// NewSource returns a substream factory rooted at seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Stream returns the deterministic substream for name. Calling Stream
// twice with the same name yields independent generators with identical
// state, so callers should create each stream once and keep it.
func (s *Source) Stream(name string) *Stream {
	return &Stream{r: rand.New(rand.NewSource(int64(s.SeedFor(name))))}
}

// SeedFor derives the well-mixed 64-bit root seed for the named
// substream without constructing it. Experiment sweeps use this to give
// every (point, replication) pair an independent deterministic seed that
// depends only on the root seed and the stable name — never on
// scheduling order or worker count.
func (s *Source) SeedFor(name string) uint64 {
	return splitmix64(s.seed ^ splitmix64(hashName(name)))
}

// NewStream builds a stream directly from a derived substream seed, as
// returned by Source.SeedFor. NewStream(src.SeedFor(name)) is
// byte-identical to src.Stream(name), which lets callers store the seed
// (a comparable cache key) and reconstruct the exact stream later.
func NewStream(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(int64(seed)))}
}

// Stream is a deterministic random stream with distribution helpers.
type Stream struct {
	r *rand.Rand
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63n returns a uniform draw in [0,n).
func (s *Stream) Int63n(n int64) int64 { return s.r.Int63n(n) }

// Uniform returns a uniform draw in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal draw with mean mu and standard deviation sigma.
func (s *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// NormalPos returns a normal draw truncated below at zero.
func (s *Stream) NormalPos(mu, sigma float64) float64 {
	v := s.Normal(mu, sigma)
	if v < 0 {
		return 0
	}
	return v
}

// LogNormal returns a lognormal draw where the underlying normal has mean
// mu and standard deviation sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMean returns a lognormal draw with the given arithmetic mean
// and coefficient of variation. This parameterization is what workload
// cost models want: "around m, with cv relative spread".
func (s *Stream) LogNormalMean(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.LogNormal(mu, math.Sqrt(sigma2))
}

// Pareto returns a bounded Pareto draw with shape alpha and minimum xm.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Geometric returns a draw from the geometric distribution on {1,2,...}
// with the given mean: the trial count up to and including the first
// success at p = 1/mean, via the inverse CDF (one uniform per draw).
// Means at or below one degenerate to the constant 1.
func (s *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-1/mean)))
	if n < 1 {
		n = 1
	}
	return n
}

// Poisson returns a Poisson draw with the given mean (Knuth's method for
// small means, normal approximation above 30).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical draws an index with probability proportional to weights.
// It panics when weights is empty or sums to a non-positive value, since
// a transition table with no mass is a model bug.
func (s *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: categorical distribution with no mass")
	}
	u := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf returns draws in [0,n) with Zipfian skew s>1 approximated via the
// standard library generator. Used for item popularity.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over [0,n) with exponent skew (>1).
func (s *Stream) NewZipf(skew float64, n uint64) *Zipf {
	if skew <= 1 {
		skew = 1.0001
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(s.r, skew, 1, n-1)}
}

// Draw returns the next Zipf sample.
func (z *Zipf) Draw() uint64 { return z.z.Uint64() }

// Shuffle permutes the integers [0,n) deterministically.
func (s *Stream) Shuffle(n int) []int {
	p := s.r.Perm(n)
	return p
}
