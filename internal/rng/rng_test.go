package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamsAreDeterministic(t *testing.T) {
	a := NewSource(42).Stream("think")
	b := NewSource(42).Stream("think")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same (seed,name) diverged at draw %d", i)
		}
	}
}

func TestStreamsAreIndependentByName(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("think")
	b := src.Stream("service")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names matched %d/100 draws", same)
	}
}

func TestStreamsDifferBySeed(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(7).Stream("exp")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(7.0)
	}
	mean := sum / n
	if math.Abs(mean-7.0) > 0.1 {
		t.Fatalf("Exp(7) sample mean = %v", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestLogNormalMeanMatchesTarget(t *testing.T) {
	s := NewSource(7).Stream("ln")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.LogNormalMean(100, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-100)/100 > 0.02 {
		t.Fatalf("LogNormalMean(100,0.5) sample mean = %v", mean)
	}
	if v := s.LogNormalMean(100, 0); v != 100 {
		t.Fatalf("cv=0 should return the mean, got %v", v)
	}
	if v := s.LogNormalMean(0, 1); v != 0 {
		t.Fatalf("mean<=0 should return 0, got %v", v)
	}
}

func TestNormalPosNeverNegative(t *testing.T) {
	s := NewSource(3).Stream("np")
	for i := 0; i < 10000; i++ {
		if v := s.NormalPos(1, 5); v < 0 {
			t.Fatalf("NormalPos returned %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(3).Stream("u")
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	s := NewSource(3).Stream("p")
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(1.5, 2.5); v < 1.5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestPoisson(t *testing.T) {
	s := NewSource(9).Stream("poisson")
	if s.Poisson(0) != 0 || s.Poisson(-2) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
	const n = 100000
	for _, mean := range []float64{3, 50} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := NewSource(11).Stream("cat")
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Categorical([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanicsOnNoMass(t *testing.T) {
	s := NewSource(1).Stream("cat")
	for _, weights := range [][]float64{nil, {}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", weights)
				}
			}()
			s.Categorical(weights)
		}()
	}
}

func TestCategoricalPanicsOnNegative(t *testing.T) {
	s := NewSource(1).Stream("cat")
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	s.Categorical([]float64{1, -1})
}

func TestZipfSkewsTowardZero(t *testing.T) {
	s := NewSource(5).Stream("zipf")
	z := s.NewZipf(1.2, 1000)
	low, high := 0, 0
	for i := 0; i < 20000; i++ {
		v := z.Draw()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		if v < 100 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Fatalf("Zipf not skewed: low=%d high=%d", low, high)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewSource(5).Stream("perm")
	p := s.Shuffle(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Categorical always returns a valid index for positive
// weight vectors.
func TestPropertyCategoricalInRange(t *testing.T) {
	s := NewSource(13).Stream("prop")
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r) + 0.001
			total += weights[i]
		}
		i := s.Categorical(weights)
		return i >= 0 && i < len(weights)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: substream derivation is stable — the first draw from a
// (seed,name) pair never depends on other streams having been created.
func TestPropertySubstreamStability(t *testing.T) {
	f := func(seed uint64, name string) bool {
		s1 := NewSource(seed)
		_ = s1.Stream("noise-a")
		_ = s1.Stream("noise-b")
		v1 := s1.Stream(name).Float64()
		v2 := NewSource(seed).Stream(name).Float64()
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	s := NewSource(1).Stream("geom")
	for _, mean := range []float64{1, 2.5, 10} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			d := s.Geometric(mean)
			if d < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, d)
			}
			sum += float64(d)
		}
		got := sum / n
		if got < 0.97*mean || got > 1.03*mean {
			t.Fatalf("Geometric(%v) empirical mean = %v", mean, got)
		}
	}
	// Degenerate means are the constant 1.
	for i := 0; i < 100; i++ {
		if d := s.Geometric(0.5); d != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", d)
		}
	}
}
