package rubis

import (
	"testing"

	"vwchar/internal/rng"
)

// smallDataset keeps test setup fast.
func smallDataset() DatasetConfig {
	return DatasetConfig{
		Regions:         10,
		Categories:      8,
		Users:           400,
		ActiveItems:     150,
		OldItems:        250,
		BidsPerItem:     3,
		CommentsPerUser: 1,
		BufferPages:     256,
	}
}

func newTestApp(t *testing.T) *App {
	t.Helper()
	app, err := NewApp(smallDataset(), rng.NewSource(7).Stream("data"))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestDatasetPopulation(t *testing.T) {
	app := newTestApp(t)
	if app.TotalUsers() != 400 {
		t.Fatalf("users = %d", app.TotalUsers())
	}
	if app.TotalItems() != 400 {
		t.Fatalf("items = %d", app.TotalItems())
	}
	// Spot-check the data is queryable.
	users, err := app.Engine.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	row, err := users.GetByPK(200)
	if err != nil || row == nil {
		t.Fatalf("user 200 missing: %v", err)
	}
	bids, _ := app.Engine.Table("bids")
	if bids.Rows() == 0 {
		t.Fatal("no bids populated")
	}
}

func TestAllInteractionsExecute(t *testing.T) {
	app := newTestApp(t)
	r := rng.NewSource(9).Stream("exec")
	params := DefaultCostParams()
	sess := &Session{UserID: 5, ItemID: 10, CategoryID: 2, RegionID: 3, ToUserID: 7}
	for _, kind := range AllInteractions() {
		res, err := app.Execute(kind, sess, r, params)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Interaction != kind {
			t.Fatalf("%s: wrong interaction in result", kind)
		}
		if res.WebCycles <= 0 {
			t.Fatalf("%s: no web cycles", kind)
		}
		if res.ResponseBytes <= 0 || res.RequestBytes <= 0 {
			t.Fatalf("%s: missing transfer sizes", kind)
		}
		for qi, q := range res.Queries {
			if q.Receipt.CPUCycles <= 0 {
				t.Fatalf("%s query %d: no DB cycles", kind, qi)
			}
			if q.RequestBytes <= 0 {
				t.Fatalf("%s query %d: no request bytes", kind, qi)
			}
		}
	}
	if _, err := app.Execute(Interaction("Nope"), sess, r, params); err == nil {
		t.Fatal("unknown interaction should error")
	}
}

func TestWriteInteractionsPersist(t *testing.T) {
	app := newTestApp(t)
	r := rng.NewSource(9).Stream("w")
	params := DefaultCostParams()
	sess := &Session{UserID: 5, ItemID: 10, CategoryID: 2, ToUserID: 7}

	bidsBefore := app.Engine.MustTable("bids").Rows()
	res, err := app.Execute(StoreBid, sess, r, params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWrite {
		t.Fatal("StoreBid should be a write")
	}
	if app.Engine.MustTable("bids").Rows() != bidsBefore+1 {
		t.Fatal("StoreBid did not insert")
	}
	// The bid also bumps the item's counters.
	item, _ := app.Engine.MustTable("items").GetByPK(10)
	if item[7].(int64) != 1 {
		t.Fatalf("nb_bids = %v after StoreBid", item[7])
	}

	usersBefore := app.TotalUsers()
	if _, err := app.Execute(RegisterUser, sess, r, params); err != nil {
		t.Fatal(err)
	}
	if app.TotalUsers() != usersBefore+1 {
		t.Fatal("RegisterUser did not create a user")
	}

	itemsBefore := app.TotalItems()
	if _, err := app.Execute(RegisterItem, sess, r, params); err != nil {
		t.Fatal(err)
	}
	if app.TotalItems() != itemsBefore+1 {
		t.Fatal("RegisterItem did not create an item")
	}

	if _, err := app.Execute(StoreComment, sess, r, params); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Execute(StoreBuyNow, sess, r, params); err != nil {
		t.Fatal(err)
	}
}

func TestReadsAreNotWrites(t *testing.T) {
	app := newTestApp(t)
	r := rng.NewSource(9).Stream("ro")
	sess := &Session{UserID: 5, ItemID: 10, CategoryID: 2, ToUserID: 7}
	for _, kind := range []Interaction{Home, SearchItemsInCategory, ViewItem, ViewUserInfo, ViewBidHistory, AboutMe} {
		res, err := app.Execute(kind, sess, r, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if res.IsWrite {
			t.Fatalf("%s should not be a write", kind)
		}
	}
}

func TestDBTransferAccounting(t *testing.T) {
	app := newTestApp(t)
	r := rng.NewSource(9).Stream("xfer")
	sess := &Session{UserID: 5, ItemID: 10, CategoryID: 2, ToUserID: 7}
	res, err := app.Execute(ViewItem, sess, r, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	toDB, fromDB := res.DBTransferBytes()
	if toDB <= 0 || fromDB <= 0 {
		t.Fatalf("ViewItem transfers: to=%v from=%v", toDB, fromDB)
	}
	if res.TotalDBCycles() <= 0 {
		t.Fatal("ViewItem should consume DB cycles")
	}
	// Menu pages are served from the app-tier cache: no DB calls.
	res, err = app.Execute(BrowseCategories, sess, r, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 0 {
		t.Fatal("BrowseCategories should not hit the DB (cached menu)")
	}
}

func TestMixValidation(t *testing.T) {
	for _, m := range []*Mix{BrowsingMix(), BiddingMix()} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestBrowsingMixIsReadOnly(t *testing.T) {
	m := BrowsingMix()
	writes := map[Interaction]bool{
		RegisterUser: true, RegisterItem: true, StoreBid: true,
		StoreBuyNow: true, StoreComment: true,
	}
	for _, s := range m.States() {
		if writes[s] {
			t.Fatalf("browsing mix contains write state %s", s)
		}
	}
}

func TestBiddingMixReachesWrites(t *testing.T) {
	m := BiddingMix()
	r := rng.NewSource(3).Stream("walk")
	seen := map[Interaction]bool{}
	cur := m.Start
	for i := 0; i < 20000; i++ {
		cur = m.Next(cur, r)
		seen[cur] = true
	}
	for _, want := range []Interaction{StoreBid, StoreBuyNow, StoreComment, RegisterItem, RegisterUser} {
		if !seen[want] {
			t.Fatalf("bidding mix never reached %s in 20k steps", want)
		}
	}
}

func TestMixThinkTimes(t *testing.T) {
	browse, bid := BrowsingMix(), BiddingMix()
	if browse.ThinkMeanSeconds != 7.0 {
		t.Fatalf("browse think = %v, paper sets 7 s", browse.ThinkMeanSeconds)
	}
	if bid.ThinkMeanSeconds <= browse.ThinkMeanSeconds {
		t.Fatal("bidding think time should be longer (paper §4.1)")
	}
	r := rng.NewSource(3).Stream("think")
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += browse.Think(r)
	}
	if mean := sum / n; mean < 6.8 || mean > 7.2 {
		t.Fatalf("think sample mean = %v", mean)
	}
}

func TestMixUnknownStateRestarts(t *testing.T) {
	m := BrowsingMix()
	r := rng.NewSource(3).Stream("x")
	if next := m.Next(StoreBid, r); next != m.Start {
		t.Fatalf("unknown state should restart at %s, got %s", m.Start, next)
	}
}

func TestCompositeMix(t *testing.T) {
	c := NewCompositeMix(0.7)
	if c.MixName() != "70%browse-30%bid" {
		t.Fatalf("name = %q", c.MixName())
	}
	r := rng.NewSource(3).Stream("comp")
	seen := map[Interaction]bool{}
	cur := c.StartState()
	for i := 0; i < 50000; i++ {
		cur = c.NextInteraction(cur, r)
		seen[cur] = true
	}
	if !seen[StoreBid] {
		t.Fatal("composite mix should reach bid states")
	}
	if !seen[ViewItem] {
		t.Fatal("composite mix should reach browse states")
	}
	think := c.ThinkSeconds(r)
	if think < 0 {
		t.Fatalf("think = %v", think)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range browse fraction should panic")
		}
	}()
	NewCompositeMix(1.5)
}

func TestMixStationaryWriteFraction(t *testing.T) {
	m := BiddingMix()
	r := rng.NewSource(11).Stream("wf")
	writes := map[Interaction]bool{
		RegisterUser: true, RegisterItem: true, StoreBid: true,
		StoreBuyNow: true, StoreComment: true,
	}
	count := 0
	cur := m.Start
	const n = 100000
	for i := 0; i < n; i++ {
		cur = m.Next(cur, r)
		if writes[cur] {
			count++
		}
	}
	frac := float64(count) / n
	// The RUBiS bidding mix is ~10-15% read-write interactions; our
	// table should land in a sane band.
	if frac < 0.04 || frac > 0.2 {
		t.Fatalf("write fraction = %v", frac)
	}
}
